// l2l::cache unit suite: digest stability goldens, hit/miss/evict
// accounting, the LRU bound, the persistent tier round-trip with
// corrupt-entry quarantine, the kill switch, and byte-identical stats
// export at any L2L_THREADS. The digest goldens pin the hash across
// refactors: the persistent tier's file names ARE digests, so an
// accidental hash change would silently orphan every on-disk entry.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/digest.hpp"
#include "mooc/grading_queue.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace l2l {
namespace {

namespace fs = std::filesystem;

/// A scratch directory under the system temp root, wiped on entry and
/// exit. Each test names its own so concurrent ctest jobs never collide.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

cache::CacheKey make_key(const std::string& engine, const std::string& input,
                         std::uint64_t config_salt = 0) {
  cache::Hasher h;
  h.u64(config_salt);
  return {engine, cache::digest_bytes(input), h.finish()};
}

// ---- digest -------------------------------------------------------------

TEST(DigestTest, GoldenValuesArePinned) {
  // Regenerating these is a format break: bump the facade format versions
  // and say so in DESIGN.md before touching them.
  EXPECT_EQ(cache::digest_bytes("").hex(), "a47a67fd25a30513d603a4d010e5e2a0");
  EXPECT_EQ(cache::digest_bytes("hello world\n").hex(),
            "55d8e84207145071acca02e0bc48a0f2");
  EXPECT_EQ(cache::digest_bytes("p cnf 2 2\n1 2 0\n-1 2 0\n").hex(),
            "1fc948e033fff370d3b0cfceb5ad8f1d");
  cache::Hasher h;
  h.str("sat").u64(1).boolean(true).f64(0.5);
  EXPECT_EQ(h.finish().hex(), "fc947dcaf26b0a93c8f1040c1267c0ea");
}

TEST(DigestTest, TypedFramingPreventsConcatenationCollisions) {
  cache::Hasher ab_c;
  ab_c.str("ab").str("c");
  cache::Hasher a_bc;
  a_bc.str("a").str("bc");
  EXPECT_NE(ab_c.finish(), a_bc.finish());

  cache::Hasher with_empty;
  with_empty.str("x").str("");
  cache::Hasher without;
  without.str("x");
  EXPECT_NE(with_empty.finish(), without.finish());
}

TEST(DigestTest, SingleByteChangesTheDigest) {
  const std::string base(1000, 'a');
  std::string flipped = base;
  flipped[500] = 'b';
  EXPECT_NE(cache::digest_bytes(base), cache::digest_bytes(flipped));
  EXPECT_EQ(cache::digest_bytes(base), cache::digest_bytes(std::string(base)));
}

// ---- serialization ------------------------------------------------------

TEST(RecordTest, RoundTripsMixedRecords) {
  std::string bytes;
  cache::append_record(bytes, "first\nrecord with newline");
  cache::append_i64(bytes, -42);
  cache::append_f64(bytes, 0.1);  // not exactly representable: bit test
  cache::append_record(bytes, "");

  cache::RecordReader in(bytes);
  std::string s;
  std::int64_t v = 0;
  double d = 0;
  ASSERT_TRUE(in.next_string(s));
  EXPECT_EQ(s, "first\nrecord with newline");
  ASSERT_TRUE(in.next_i64(v));
  EXPECT_EQ(v, -42);
  ASSERT_TRUE(in.next_f64(d));
  EXPECT_EQ(d, 0.1);
  ASSERT_TRUE(in.next_string(s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(in.complete());
}

TEST(RecordTest, TruncatedAndMalformedInputFailsCleanly) {
  std::string bytes;
  cache::append_record(bytes, "payload");
  cache::RecordReader truncated(
      std::string_view(bytes).substr(0, bytes.size() - 3));
  std::string s;
  EXPECT_FALSE(truncated.next_string(s));
  EXPECT_TRUE(truncated.failed());

  cache::RecordReader garbage("banana\nsplit");
  EXPECT_FALSE(garbage.next_string(s));
  EXPECT_FALSE(garbage.complete());
}

// ---- in-memory tier -----------------------------------------------------

TEST(CacheTest, HitMissAndStats) {
  cache::Cache c;
  const auto key = make_key("test", "input-a");
  EXPECT_FALSE(c.lookup(key).has_value());
  c.insert(key, "value-a");
  const auto hit = c.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value-a");
  // Same input, different config: a different entry.
  EXPECT_FALSE(c.lookup(make_key("test", "input-a", 7)).has_value());
  // Same digests, different engine: a different entry.
  EXPECT_FALSE(c.lookup(make_key("other", "input-a")).has_value());

  const auto st = c.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 3);
  EXPECT_EQ(st.inserts, 1);
  EXPECT_EQ(st.entries, 1);
  EXPECT_EQ(st.bytes, 7);  // strlen("value-a")
}

TEST(CacheTest, LruEvictionRespectsTheBound) {
  cache::CacheOptions opt;
  opt.max_entries_per_shard = 2;
  cache::Cache c(opt);
  // 64 distinct keys spread over 16 shards, bound 2 each: at most 32
  // entries survive and evictions happened.
  for (int i = 0; i < 64; ++i)
    c.insert(make_key("test", "input-" + std::to_string(i)),
             "v" + std::to_string(i));
  const auto st = c.stats();
  EXPECT_EQ(st.inserts, 64);
  EXPECT_LE(st.entries, 32);
  EXPECT_GT(st.evictions, 0);
  EXPECT_EQ(st.entries + st.evictions, 64);
}

TEST(CacheTest, ByteBoundEvictsOldEntries) {
  cache::CacheOptions opt;
  opt.max_bytes_per_shard = 64;
  cache::Cache c(opt);
  const std::string big(48, 'x');
  // Two 48-byte values that land wherever they land: no shard may hold
  // both plus a third, so total bytes stays under 16 shards * 64.
  for (int i = 0; i < 32; ++i)
    c.insert(make_key("test", "k" + std::to_string(i)), big);
  EXPECT_LE(c.stats().bytes, 16 * 64);
}

TEST(CacheTest, KillSwitchMakesLookupMissAndInsertNoOp) {
  cache::Cache c;
  const auto key = make_key("test", "ks");
  c.insert(key, "v");
  ASSERT_TRUE(c.lookup(key).has_value());
  cache::set_enabled(false);
  EXPECT_FALSE(c.lookup(key).has_value());
  c.insert(make_key("test", "ks2"), "w");
  cache::set_enabled(true);
  EXPECT_FALSE(c.lookup(make_key("test", "ks2")).has_value());
  EXPECT_TRUE(c.lookup(key).has_value());
}

// ---- persistent tier ----------------------------------------------------

TEST(CacheDiskTest, RoundTripsThroughTheDiskTier) {
  ScratchDir dir("l2l-cache-test-roundtrip");
  const auto key = make_key("test", "disk-entry");
  {
    cache::CacheOptions opt;
    opt.disk_dir = dir.path;
    cache::Cache writer(opt);
    writer.insert(key, "persisted-value");
  }
  // A different cache instance (fresh memory) finds the entry on disk.
  cache::CacheOptions opt;
  opt.disk_dir = dir.path;
  cache::Cache reader(opt);
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "persisted-value");
  // And the disk hit was promoted: clear the dir, memory still serves it.
  fs::remove_all(dir.path);
  EXPECT_TRUE(reader.lookup(key).has_value());
}

TEST(CacheDiskTest, CorruptEntryIsQuarantinedNotBelieved) {
  ScratchDir dir("l2l-cache-test-quarantine");
  const auto key = make_key("test", "to-corrupt");
  cache::CacheOptions opt;
  opt.disk_dir = dir.path;
  {
    cache::Cache writer(opt);
    writer.insert(key, "honest bytes");
  }
  // Flip payload bytes behind the checksum's back.
  const std::string path = dir.path + "/" + key.file_stem() + ".l2lc";
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    f << "EVIL";
  }
  cache::Cache reader(opt);
  EXPECT_FALSE(reader.lookup(key).has_value());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".quarantine"));
  // A truncated entry degrades the same way.
  const auto key2 = make_key("test", "to-truncate");
  {
    cache::Cache writer(opt);
    writer.insert(key2, std::string(256, 'z'));
  }
  const std::string path2 = dir.path + "/" + key2.file_stem() + ".l2lc";
  fs::resize_file(path2, 20);
  EXPECT_FALSE(reader.lookup(key2).has_value());
  EXPECT_TRUE(fs::exists(path2 + ".quarantine"));
}

// ---- deterministic stats export -----------------------------------------

std::string counters_only_export() {
  std::string out;
  for (const auto& [name, v] : obs::Registry::global().snapshot().counters)
    out += "counter " + name + " " + std::to_string(v) + "\n";
  return out;
}

TEST(CacheStatsTest, QueueDrainExportIsThreadCountInvariant) {
  // The grading queue issues its cache traffic from the sequential
  // pre-pass, so a cold-then-warm drain pair must export byte-identical
  // cache.hit/cache.miss counters at 1, 2, and 8 threads.
  obs::set_enabled(true);
  std::vector<std::string> subs;
  for (int i = 0; i < 20; ++i) subs.push_back("s" + std::to_string(i % 5));
  mooc::QueueOptions qopt;
  qopt.cache_domain = "cache-test.queue";
  const auto grade = [](const std::string& s, const util::Budget&) {
    return static_cast<double>(s.size());
  };

  std::vector<std::string> exports;
  for (const int t : {1, 2, 8}) {
    util::set_num_threads(t);
    obs::Registry::global().reset();
    cache::Cache::global().clear();
    const auto cold = mooc::drain_queue(subs, grade, qopt);
    const auto warm = mooc::drain_queue(subs, grade, qopt);
    EXPECT_EQ(cold.stats.cache_hits, 0) << t << " threads";
    EXPECT_EQ(warm.stats.cache_hits, 5) << t << " threads";
    exports.push_back(counters_only_export());
  }
  util::set_num_threads(0);
  cache::Cache::global().clear();
  obs::Registry::global().reset();
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_NE(exports[0].find("counter mooc.queue.cache_hits 5"),
            std::string::npos)
      << exports[0];
  EXPECT_EQ(exports[0], exports[1]) << "threads 1 vs 2";
  EXPECT_EQ(exports[0], exports[2]) << "threads 1 vs 8";
}

}  // namespace
}  // namespace l2l
