#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "mooc/cohort.hpp"
#include "mooc/datasets.hpp"
#include "mooc/wordcloud.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::mooc {
namespace {

TEST(Datasets, FunnelMatchesPaper) {
  const auto& f = participation_funnel();
  ASSERT_EQ(f.size(), 6u);
  EXPECT_EQ(f[0].count, 17500);
  EXPECT_EQ(f[1].count, 7191);
  EXPECT_EQ(f[2].count, 1377);
  EXPECT_EQ(f[3].count, 369);
  EXPECT_EQ(f[4].count, 530);
  EXPECT_EQ(f[5].count, 386);
}

TEST(Datasets, LectureAggregatesMatchPaper) {
  const auto& v = lecture_videos();
  EXPECT_EQ(v.size(), 69u);  // "69 total lecture videos"
  double total = 0;
  for (const auto& video : v) {
    EXPECT_GT(video.minutes, 5.0);
    EXPECT_LT(video.minutes, 25.0);
    total += video.minutes;
  }
  EXPECT_NEAR(total / 69.0, 15.0, 0.01);   // "average length 15 minutes"
  EXPECT_NEAR(total / 60.0, 17.25, 0.05);  // "17 total hours"
  // 8 content weeks + tutorials present.
  std::set<int> weeks;
  for (const auto& video : v) weeks.insert(video.week);
  EXPECT_EQ(weeks.size(), 9u);
}

TEST(Datasets, ConceptMapTotals) {
  const auto totals = concept_map_totals();
  EXPECT_EQ(totals.total_slides_full_course, 948);
  EXPECT_EQ(totals.unique_concepts, 102);
  EXPECT_EQ(totals.mooc_slides, 615);
  // The listed entries' slides sum to the full course total.
  int sum = 0;
  for (const auto& e : concept_map()) sum += e.slides;
  EXPECT_EQ(sum, totals.total_slides_full_course);
  // BDD block matches Fig. 1's roster.
  int bdd_entries = 0;
  for (const auto& e : concept_map())
    if (e.topic == "BDDs") ++bdd_entries;
  EXPECT_EQ(bdd_entries, 6);
}

TEST(Datasets, ViewersDecayWithLandmarks) {
  const auto& v = viewers_per_video();
  ASSERT_EQ(v.size(), 69u);
  EXPECT_NEAR(v.front(), 7000, 300);  // intro ~7000
  EXPECT_NEAR(v.back(), 2000, 300);   // completion ~2000
  // Mid-course near 5000 somewhere in the first third.
  bool mid = false;
  for (std::size_t i = 10; i < 30; ++i) mid |= std::abs(v[i] - 5000) < 400;
  EXPECT_TRUE(mid);
  // Globally decreasing trend (allow ripple): compare thirds.
  const auto third = v.size() / 3;
  auto avg = [&](std::size_t a, std::size_t b) {
    return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(a),
                           v.begin() + static_cast<std::ptrdiff_t>(b), 0.0) /
           static_cast<double>(b - a);
  };
  EXPECT_GT(avg(0, third), avg(third, 2 * third));
  EXPECT_GT(avg(third, 2 * third), avg(2 * third, v.size()));
}

TEST(Datasets, CountrySharesSumTo100) {
  double total = 0;
  for (const auto& c : participation_by_country()) total += c.percent;
  EXPECT_NEAR(total, 100.0, 0.01);
  EXPECT_EQ(participation_by_country()[0].country, "United States");
  EXPECT_EQ(participation_by_country()[1].country, "India");
}

TEST(Cohort, ReproducesPaperFunnelWithin10Percent) {
  util::Rng rng(161);
  const auto res = simulate_cohort({}, rng);
  const auto& ref = participation_funnel();
  ASSERT_EQ(res.funnel.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    EXPECT_LT(relative_error(res.funnel[k], ref[k].count), 0.10)
        << ref[k].name << ": sim " << res.funnel[k] << " vs " << ref[k].count;
}

TEST(Cohort, ViewerCurveMatchesShape) {
  util::Rng rng(162);
  const auto res = simulate_cohort({}, rng);
  const auto& ref = viewers_per_video();
  ASSERT_EQ(res.viewers_per_video.size(), ref.size());
  // First and last videos within 15% of the published numbers.
  EXPECT_LT(relative_error(res.viewers_per_video.front(), ref.front()), 0.15);
  EXPECT_LT(relative_error(res.viewers_per_video.back(), ref.back()), 0.30);
  // Monotone non-increasing by construction.
  for (std::size_t i = 1; i < res.viewers_per_video.size(); ++i)
    EXPECT_LE(res.viewers_per_video[i], res.viewers_per_video[i - 1]);
}

TEST(Cohort, DemographicsMatch) {
  util::Rng rng(163);
  const auto res = simulate_cohort({}, rng);
  const auto demo = demographics();
  EXPECT_NEAR(res.average_age, demo.average_age, 1.0);
  EXPECT_NEAR(res.female_percent, demo.female_percent, 1.5);
  ASSERT_FALSE(res.by_country.empty());
  // US and India lead, as in Fig. 10 ("Other" is an aggregate bucket).
  std::vector<std::string> top;
  for (std::size_t k = 0; k < 3 && k < res.by_country.size(); ++k)
    top.push_back(res.by_country[k].first);
  EXPECT_NE(std::find(top.begin(), top.end(), "United States"), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), "India"), top.end());
}

TEST(Cohort, DeterministicPerSeed) {
  util::Rng r1(7), r2(7);
  CohortOptions opt;
  opt.registered = 2000;
  const auto a = simulate_cohort(opt, r1);
  const auto b = simulate_cohort(opt, r2);
  EXPECT_EQ(a.funnel, b.funnel);
  EXPECT_EQ(a.viewers_per_video, b.viewers_per_video);
}

TEST(Cohort, MoreVideosLowerCompletion) {
  // The paper chose a shorter course citing retention; the model should
  // show completion (certificates per registrant) fall as videos grow.
  CohortOptions short_course;
  short_course.num_videos = 40;
  CohortOptions long_course;
  long_course.num_videos = 120;
  util::Rng r1(8), r2(8);
  const auto a = simulate_cohort(short_course, r1);
  const auto b = simulate_cohort(long_course, r2);
  // Viewers of the *last* video drop with course length.
  EXPECT_GT(a.viewers_per_video.back(), b.viewers_per_video.back());
}

TEST(SubmissionTrace, DeterministicPerSeedAndSorted) {
  TraceOptions opt;
  opt.num_students = 3000;
  opt.num_courses = 3;
  util::Rng r1(9), r2(9);
  const auto a = generate_submission_trace(opt, r1);
  const auto b = generate_submission_trace(opt, r2);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.bodies, b.bodies);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].course, b.events[i].course);
    EXPECT_EQ(a.events[i].student, b.events[i].student);
    EXPECT_EQ(a.events[i].body, b.events[i].body);
    EXPECT_EQ(a.events[i].arrival_tick, b.events[i].arrival_tick);
    EXPECT_EQ(a.events[i].deadline_tick, b.events[i].deadline_tick);
    EXPECT_EQ(a.events[i].lane, b.events[i].lane);
  }
  // Sorted by arrival (the service's sweep is a single pointer walk),
  // every event inside bounds, deadline at or after arrival.
  for (std::size_t i = 1; i < a.events.size(); ++i)
    EXPECT_LE(a.events[i - 1].arrival_tick, a.events[i].arrival_tick);
  for (const auto& ev : a.events) {
    EXPECT_LT(ev.course, 3u);
    EXPECT_LT(ev.arrival_tick, a.ticks);
    EXPECT_GE(ev.deadline_tick, ev.arrival_tick);
    EXPECT_LT(ev.body, a.bodies.size());
    EXPECT_LE(ev.lane, 1);
  }
}

TEST(SubmissionTrace, LanesFollowFirstSubmitThenResubmits) {
  TraceOptions opt;
  opt.num_students = 2000;
  opt.resubmit_rate = 0.7;
  util::Rng rng(4);
  const auto trace = generate_submission_trace(opt, rng);
  // Per student: exactly one lane-0 first submit, everything else lane 1.
  std::map<std::uint32_t, int> firsts;
  int resubmits = 0;
  for (const auto& ev : trace.events) {
    if (ev.lane == 0)
      ++firsts[ev.student];
    else
      ++resubmits;
  }
  for (const auto& [student, n] : firsts) EXPECT_EQ(n, 1) << student;
  EXPECT_GT(resubmits, 0);
  // The pool keeps the trace duplicate-heavy: far more events than
  // distinct bodies.
  EXPECT_GT(trace.events.size(), trace.bodies.size());
}

TEST(WordCloud, CountsAndFilters) {
  const auto counts = count_words({"More timing please", "timing and SAT",
                                   "the SAT part was great", "more routing"});
  // "timing" and "sat" counted twice; stop words dropped.
  auto find = [&](const std::string& w) {
    for (const auto& [word, n] : counts)
      if (word == w) return n;
    return 0;
  };
  EXPECT_EQ(find("timing"), 2);
  EXPECT_EQ(find("sat"), 2);
  EXPECT_EQ(find("the"), 0);
  EXPECT_EQ(find("and"), 0);
}

TEST(WordCloud, RenderOrdersByWeight) {
  const auto cloud = render_word_cloud({{"verification", 42}, {"drc", 8}});
  EXPECT_LT(cloud.find("VERIFICATION"), cloud.find("drc"));
  EXPECT_NE(cloud.find("(42)"), std::string::npos);
}

TEST(WordCloud, SurveyPipelineRecoversPublishedWeights) {
  const auto responses = synthesize_survey_responses(17);
  const auto counts = count_words(responses);
  // The mined counts must recover each published topic weight exactly
  // (the synthesis embeds each word `weight` times).
  for (const auto& w : survey_topics()) {
    bool found = false;
    for (const auto& [word, n] : counts) {
      if (word == util::to_lower(w.word)) {
        EXPECT_EQ(n, w.weight) << w.word;
        found = true;
      }
    }
    EXPECT_TRUE(found) << w.word;
  }
}

}  // namespace
}  // namespace l2l::mooc
