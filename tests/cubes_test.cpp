#include <gtest/gtest.h>

#include "cubes/cover.hpp"
#include "cubes/cube.hpp"
#include "cubes/urp.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace l2l::cubes {
namespace {

using tt::TruthTable;

// Build a random cover with `k` random cubes over n variables.
Cover random_cover(int n, int k, util::Rng& rng) {
  Cover f(n);
  for (int i = 0; i < k; ++i) {
    Cube c(n);
    for (int v = 0; v < n; ++v) {
      switch (rng.next_below(3)) {
        case 0: c.set_code(v, Pcn::kNeg); break;
        case 1: c.set_code(v, Pcn::kPos); break;
        default: break;  // don't care
      }
    }
    f.add(std::move(c));
  }
  return f;
}

TEST(Cube, ParseAndPrint) {
  const auto c = Cube::parse("1-0");
  EXPECT_EQ(c.to_string(), "1-0");
  EXPECT_EQ(c.code(0), Pcn::kPos);
  EXPECT_EQ(c.code(1), Pcn::kDontCare);
  EXPECT_EQ(c.code(2), Pcn::kNeg);
  EXPECT_EQ(c.num_literals(), 2);
  EXPECT_THROW(Cube::parse("1x"), std::invalid_argument);
}

TEST(Cube, UniversalAndEmpty) {
  Cube u(3);
  EXPECT_TRUE(u.is_universal());
  EXPECT_FALSE(u.is_empty());
  u.set_code(1, Pcn::kEmpty);
  EXPECT_TRUE(u.is_empty());
}

TEST(Cube, IntersectOppositePhasesIsEmpty) {
  const auto a = Cube::parse("1--");
  const auto b = Cube::parse("0--");
  EXPECT_TRUE(a.intersect(b).is_empty());
  EXPECT_EQ(a.distance(b), 1);
}

TEST(Cube, IntersectMatchesSetIntersection) {
  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    Cover fa = random_cover(4, 1, rng);
    Cover fb = random_cover(4, 1, rng);
    const Cube& a = fa.cube(0);
    const Cube& b = fb.cube(0);
    const Cube c = a.intersect(b);
    for (std::uint64_t m = 0; m < 16; ++m)
      EXPECT_EQ(c.eval(m), a.eval(m) && b.eval(m));
  }
}

TEST(Cube, ContainsIffPointwise) {
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Cover fa = random_cover(4, 1, rng);
    Cover fb = random_cover(4, 1, rng);
    const Cube& a = fa.cube(0);
    const Cube& b = fb.cube(0);
    bool pointwise = true;
    for (std::uint64_t m = 0; m < 16; ++m)
      if (b.eval(m) && !a.eval(m)) pointwise = false;
    EXPECT_EQ(a.contains(b), pointwise) << a.to_string() << " vs " << b.to_string();
  }
}

TEST(Cube, ConsensusOnlyAtDistanceOne) {
  const auto a = Cube::parse("1-1");
  const auto b = Cube::parse("0-1");
  const auto c = a.consensus(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->to_string(), "--1");
  // Distance 0 and 2 both fail.
  EXPECT_FALSE(Cube::parse("1--").consensus(Cube::parse("-1-")).has_value());
  EXPECT_FALSE(Cube::parse("11-").consensus(Cube::parse("00-")).has_value());
}

TEST(Cube, ConsensusIsImpliedByUnion) {
  // Consensus theorem: xy + x'z implies xy + x'z + yz; the consensus cube
  // is contained in the union of the two parents.
  util::Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    Cover f = random_cover(5, 2, rng);
    if (f.size() != 2) continue;
    const auto c = f.cube(0).consensus(f.cube(1));
    if (!c) continue;
    for (std::uint64_t m = 0; m < 32; ++m) {
      if (c->eval(m)) {
        EXPECT_TRUE(f.cube(0).eval(m) || f.cube(1).eval(m));
      }
    }
  }
}

TEST(Cube, CofactorDropsLiteral) {
  const auto c = Cube::parse("10-");
  const auto c1 = c.cofactor(0, true);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->to_string(), "-0-");
  EXPECT_FALSE(c.cofactor(0, false).has_value());
  const auto c2 = c.cofactor(2, true);  // absent variable: unchanged cube
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->to_string(), "10-");
}

TEST(Cover, ParseAndEval) {
  const auto f = Cover::parse(3, "1-0\n-11\n");
  EXPECT_EQ(f.size(), 2);
  EXPECT_TRUE(f.eval(0b001));   // 1-0 matches x0=1,x2=0
  EXPECT_TRUE(f.eval(0b110));   // -11 matches x1=1,x2=1
  EXPECT_FALSE(f.eval(0b000));
}

TEST(Cover, FromTruthTableRoundTrip) {
  util::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = TruthTable::random(4, rng);
    EXPECT_EQ(Cover::from_truth_table(f).to_truth_table(), f);
  }
}

TEST(Cover, AndOrMatchOracle) {
  util::Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(4, 3, rng);
    const auto g = random_cover(4, 3, rng);
    EXPECT_EQ((f | g).to_truth_table(), f.to_truth_table() | g.to_truth_table());
    EXPECT_EQ((f & g).to_truth_table(), f.to_truth_table() & g.to_truth_table());
  }
}

TEST(Cover, CofactorMatchesOracle) {
  util::Rng rng(15);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(4, 4, rng);
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(f.cofactor(v, true).to_truth_table(),
                f.to_truth_table().cofactor(v, true));
      EXPECT_EQ(f.cofactor(v, false).to_truth_table(),
                f.to_truth_table().cofactor(v, false));
    }
  }
}

TEST(Cover, RemoveContainedCubesPreservesFunction) {
  util::Rng rng(16);
  for (int trial = 0; trial < 30; ++trial) {
    auto f = random_cover(5, 6, rng);
    const auto before = f.to_truth_table();
    f.remove_contained_cubes();
    EXPECT_EQ(f.to_truth_table(), before);
  }
}

TEST(Cover, RemoveContainedCubesDropsDuplicates) {
  auto f = Cover::parse(3, "1-0\n1-0\n110\n");
  f.remove_contained_cubes();
  EXPECT_EQ(f.size(), 1);  // 110 is inside 1-0; duplicate dropped
  EXPECT_EQ(f.cube(0).to_string(), "1-0");
}

// ---- URP -------------------------------------------------------------

TEST(Urp, TautologyBasics) {
  EXPECT_FALSE(is_tautology(Cover(3)));                       // constant 0
  EXPECT_TRUE(is_tautology(Cover::universal(3)));             // constant 1
  EXPECT_TRUE(is_tautology(Cover::parse(1, "0\n1\n")));       // x + x'
  EXPECT_FALSE(is_tautology(Cover::parse(2, "1-\n01\n")));    // misses 00
  EXPECT_TRUE(is_tautology(Cover::parse(2, "1-\n01\n-0\n")));
}

TEST(Urp, TautologyMatchesOracleRandomized) {
  util::Rng rng(17);
  int taut_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Mix of wide cubes to make tautologies reasonably likely.
    const int k = 1 + static_cast<int>(rng.next_below(6));
    const auto f = random_cover(4, k, rng);
    const bool oracle = f.to_truth_table().is_constant_one();
    EXPECT_EQ(is_tautology(f), oracle) << f.to_string();
    taut_seen += oracle;
  }
  EXPECT_GT(taut_seen, 0);  // the sweep actually exercised both outcomes
}

TEST(Urp, IsUnate) {
  EXPECT_TRUE(is_unate(Cover::parse(3, "1-0\n1--\n--0\n")));
  EXPECT_FALSE(is_unate(Cover::parse(3, "1--\n0--\n")));
  EXPECT_TRUE(is_unate(Cover(3)));
}

TEST(Urp, SelectSplitVarPrefersBinate) {
  // x0 appears in both phases; x1 only positively.
  const auto f = Cover::parse(2, "1-\n0-\n-1\n");
  EXPECT_EQ(select_split_var(f), 0);
  EXPECT_EQ(select_split_var(Cover(2)), -1);
}

TEST(Urp, ComplementMatchesOracle) {
  util::Rng rng(18);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = static_cast<int>(rng.next_below(6));
    const auto f = random_cover(4, k, rng);
    EXPECT_EQ(complement(f).to_truth_table(), ~f.to_truth_table())
        << f.to_string();
  }
}

TEST(Urp, ComplementEdgeCases) {
  EXPECT_TRUE(is_tautology(complement(Cover(2))));
  EXPECT_TRUE(complement(Cover::universal(2)).empty());
  // Single cube De Morgan: (x0 x1')' = x0' + x1.
  const auto f = complement(Cover::parse(2, "10\n"));
  EXPECT_EQ(f.to_truth_table(), ~Cover::parse(2, "10\n").to_truth_table());
  EXPECT_EQ(f.size(), 2);
}

TEST(Urp, SharpMatchesOracle) {
  util::Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = random_cover(4, 3, rng);
    const auto g = random_cover(4, 3, rng);
    EXPECT_EQ(sharp(f, g).to_truth_table(),
              f.to_truth_table() & ~g.to_truth_table());
  }
}

TEST(Urp, XorMatchesOracle) {
  util::Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = random_cover(3, 2, rng);
    const auto g = random_cover(3, 2, rng);
    EXPECT_EQ(exclusive_or(f, g).to_truth_table(),
              f.to_truth_table() ^ g.to_truth_table());
  }
}

TEST(Urp, QuantifiersMatchOracle) {
  util::Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = random_cover(4, 3, rng);
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(exists(f, v).to_truth_table(), f.to_truth_table().exists(v));
      EXPECT_EQ(forall(f, v).to_truth_table(), f.to_truth_table().forall(v));
    }
  }
}

TEST(Urp, BooleanDifferenceMatchesOracle) {
  util::Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(3, 3, rng);
    for (int v = 0; v < 3; ++v)
      EXPECT_EQ(boolean_difference(f, v).to_truth_table(),
                f.to_truth_table().boolean_difference(v));
  }
}

TEST(Urp, CoverContainsCube) {
  const auto f = Cover::parse(3, "1--\n-1-\n");
  EXPECT_TRUE(cover_contains_cube(f, Cube::parse("11-")));
  EXPECT_TRUE(cover_contains_cube(f, Cube::parse("1-0")));
  EXPECT_FALSE(cover_contains_cube(f, Cube::parse("--1")));
}

TEST(Urp, CoversEqualUpToRepresentation) {
  // xy + x'y + xz == y(x+x') + xz == y + xz
  const auto f = Cover::parse(3, "11-\n01-\n1-1\n");
  const auto g = Cover::parse(3, "-1-\n1-1\n");
  EXPECT_TRUE(covers_equal(f, g));
  EXPECT_FALSE(covers_equal(f, Cover::parse(3, "-1-\n")));
}

TEST(Urp, SimplifyPreservesFunctionAndNeverGrows) {
  util::Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 1 + static_cast<int>(rng.next_below(8));
    const auto f = random_cover(5, k, rng);
    const auto s = simplify(f);
    EXPECT_EQ(s.to_truth_table(), f.to_truth_table()) << f.to_string();
    EXPECT_LE(s.num_literals(), f.num_literals());
  }
}

TEST(Urp, SimplifyMergesComplementaryPair) {
  // x y + x' y should simplify to y.
  const auto s = simplify(Cover::parse(2, "11\n01\n"));
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.cube(0).to_string(), "-1");
}

// Parameterized property sweep: URP identities on random covers of
// every arity from 1..6.
class UrpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UrpPropertyTest, ComplementInvolution) {
  const int n = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_cover(n, 1 + static_cast<int>(rng.next_below(5)), rng);
    EXPECT_EQ(complement(complement(f)).to_truth_table(), f.to_truth_table());
  }
}

TEST_P(UrpPropertyTest, FOrNotFIsTautology) {
  const int n = GetParam();
  util::Rng rng(200 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_cover(n, 1 + static_cast<int>(rng.next_below(5)), rng);
    EXPECT_TRUE(is_tautology(f | complement(f)));
  }
}

TEST_P(UrpPropertyTest, FAndNotFIsEmptyFunction) {
  const int n = GetParam();
  util::Rng rng(300 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_cover(n, 1 + static_cast<int>(rng.next_below(5)), rng);
    EXPECT_TRUE((f & complement(f)).to_truth_table().is_constant_zero());
  }
}

TEST_P(UrpPropertyTest, ShannonExpansionHolds) {
  const int n = GetParam();
  util::Rng rng(400 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = random_cover(n, 1 + static_cast<int>(rng.next_below(5)), rng);
    const auto ft = f.to_truth_table();
    for (int v = 0; v < n; ++v) {
      const auto x = TruthTable::variable(n, v);
      EXPECT_EQ((x & f.cofactor(v, true).to_truth_table()) |
                    (~x & f.cofactor(v, false).to_truth_table()),
                ft);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, UrpPropertyTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace l2l::cubes
