// The hardened-grading-service contract, exercised end to end:
//
//   1. No parser may terminate or hang the process on hostile text. The
//      strict parsers throw a typed std::exception with a useful message;
//      the lenient ones return line/column-anchored diagnostics.
//   2. Graders never throw. Malformed submissions score 0 (or partial
//      credit for the salvageable nets) and carry diagnostics.
//   3. Every Budget-accepting engine stops within its guard on
//      adversarial input and hands back a partial result plus a Status.
//   4. The fault-injecting GradingQueue degrades gracefully: non-poison
//      submissions still grade correctly, poison yields diagnostics.
//
// Hostile fixtures live in tests/data/hostile/ (see its README); the
// 10 MB single-line submission is generated here rather than checked in.

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "api/esop.hpp"
#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "esop/esop.hpp"
#include "espresso/pla.hpp"
#include "tt/truth_table.hpp"
#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "linalg/cg.hpp"
#include "linalg/sparse.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_queue.hpp"
#include "mooc/grading_service.hpp"
#include "network/blif.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace l2l {
namespace {

std::string hostile_path(const std::string& name) {
  return std::string(L2L_TEST_DATA_DIR) + "/hostile/" + name;
}

std::string load(const std::string& name) {
  std::ifstream in(hostile_path(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kFiles = {
      "truncated.cnf",      "huge_header.cnf",  "bad_literals.cnf",
      "truncated.blif",     "garbage.blif",     "truncated.pla",
      "garbage.pla",        "garbage_route.sol", "out_of_range_route.sol",
      "huge_grid.problem",  "bad_placement.txt", "binary.junk",
      "huge_arity.pla",     "esop_overwide.pla", "esop_contradiction.pla"};
  return kFiles;
}

/// A 10 MB single-line submission: the pathological paste. Generated
/// in-test so the repository stays small.
std::string ten_megabyte_line() {
  std::string s;
  s.reserve(10'000'000);
  while (s.size() < 10'000'000) s += "net 0 (1 2 x ";
  return s;
}

/// Run `fn` expecting it to either succeed or throw a typed
/// std::exception. Anything else -- a non-std exception, a crash, a
/// hang past the test timeout -- fails the suite, which is the point.
template <typename Fn>
void parse_or_typed_throw(const std::string& label, Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    EXPECT_FALSE(std::string(e.what()).empty())
        << label << ": exception with no message";
  }
}

// ---------------------------------------------------------------------------
// 0. The exact-ESOP facade: hostile text in, typed Status out, never an
//    allocation proportional to an attacker-chosen header and never a
//    wrong answer (a failed model verification is exit 5, and the engine
//    refuses to print it as a result).

TEST(HostileEsop, FacadeSurvivesWholeCorpus) {
  for (const auto& name : corpus()) {
    api::EsopRequest req;
    req.input = load(name);
    req.use_cache = false;
    req.max_terms = 8;  // keep even accidentally-valid inputs fast
    const auto res = api::synthesize_esop(req);
    EXPECT_TRUE(res.exit_code == util::kExitOk ||
                res.exit_code == util::kExitParse ||
                res.exit_code == util::kExitBudget)
        << name << ": exit " << res.exit_code << " ("
        << res.status.to_string() << ")";
  }
}

TEST(HostileEsop, OversizedArityRejectedBeforeAllocation) {
  // .i 99999999 dies in PLA header validation; .i 17 parses but must be
  // refused by the facade's pre-allocation arity gate -- a 2^17 truth
  // table is never materialized for it.
  for (const char* name : {"huge_arity.pla", "esop_overwide.pla"}) {
    api::EsopRequest req;
    req.input = load(name);
    req.use_cache = false;
    const auto res = api::synthesize_esop(req);
    EXPECT_EQ(res.exit_code, util::kExitParse) << name;
    EXPECT_FALSE(res.status.ok()) << name;
  }
  // The engine's own defensive gate (facade bypassed).
  const auto r = esop::synthesize_minimum(tt::TruthTable(esop::kMaxVars + 1));
  EXPECT_EQ(r.status.code, util::StatusCode::kInvalidInput);
}

TEST(HostileEsop, ContradictoryAndEmptyCoversRejected) {
  for (const std::string input :
       {load("esop_contradiction.pla"), std::string(""), std::string("\n\n"),
        std::string("# only a comment\n")}) {
    api::EsopRequest req;
    req.input = input;
    req.use_cache = false;
    const auto res = api::synthesize_esop(req);
    EXPECT_EQ(res.exit_code, util::kExitParse)
        << "input: " << input.substr(0, 40);
  }
}

TEST(HostileEsop, BudgetExhaustionIsPartialStatusNotThrow) {
  api::EsopRequest req;
  req.input = "0110100110010110\n";
  req.prop_limit = 0;
  req.show_stats = true;
  req.use_cache = false;
  const auto res = api::synthesize_esop(req);
  EXPECT_EQ(res.exit_code, util::kExitBudget);
  EXPECT_EQ(res.status.code, util::StatusCode::kBudgetExceeded);
  // The stats channel still reports the proven bracket.
  EXPECT_NE(res.stats_output.find("partial"), std::string::npos)
      << res.stats_output;
}

TEST(HostileEsop, TenMegabytePasteIsRejectedQuickly) {
  api::EsopRequest req;
  req.input = ten_megabyte_line();
  req.use_cache = false;
  const auto res = api::synthesize_esop(req);
  EXPECT_EQ(res.exit_code, util::kExitParse);
}

// ---------------------------------------------------------------------------
// 1. Parsers survive the whole corpus.

TEST(HostileParsers, EveryStrictParserEveryFile) {
  for (const auto& name : corpus()) {
    const auto text = load(name);
    parse_or_typed_throw("parse_dimacs(" + name + ")",
                         [&] { sat::parse_dimacs(text); });
    parse_or_typed_throw("parse_blif(" + name + ")",
                         [&] { network::parse_blif(text); });
    parse_or_typed_throw("parse_pla(" + name + ")",
                         [&] { espresso::parse_pla(text); });
    parse_or_typed_throw("parse_problem(" + name + ")",
                         [&] { route::parse_problem(text); });
    parse_or_typed_throw("parse_solution(" + name + ")",
                         [&] { route::parse_solution(text); });
    parse_or_typed_throw("parse_placement_text(" + name + ")",
                         [&] { grader::parse_placement_text(text, 16); });
  }
}

TEST(HostileParsers, LenientParsersNeverThrow) {
  for (const auto& name : corpus()) {
    const auto text = load(name);
    EXPECT_NO_THROW({
      const auto parsed = route::parse_solution_lenient(text);
      for (const auto& d : parsed.diagnostics) EXPECT_GE(d.line, 0);
    }) << name;
    EXPECT_NO_THROW(grader::parse_placement_diagnostics(text, 16)) << name;
  }
}

TEST(HostileParsers, ResourceExhaustionHeadersRejectedUpFront) {
  // These must throw from header validation, never reach an allocation.
  EXPECT_THROW(sat::parse_dimacs(load("huge_header.cnf")),
               std::invalid_argument);
  EXPECT_THROW(route::parse_problem(load("huge_grid.problem")),
               std::invalid_argument);
}

TEST(HostileParsers, DiagnosticsAreAnchoredAndTruncated) {
  const auto parsed = route::parse_solution_lenient(load("garbage_route.sol"));
  ASSERT_FALSE(parsed.clean());
  // The bad cell "(1 0 zebra)" is on line 4 of the fixture.
  bool found = false;
  for (const auto& d : parsed.diagnostics)
    if (d.line == 4 && d.message.find("bad cell") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
  // The well-formed net 1 block was salvaged.
  ASSERT_EQ(parsed.solution.nets.size(), 1u);
  EXPECT_EQ(parsed.solution.nets[0].net_id, 1);

  // A megabyte-long line must be excerpted, not embedded.
  const auto huge = route::parse_solution_lenient(ten_megabyte_line());
  ASSERT_FALSE(huge.clean());
  for (const auto& d : huge.diagnostics) EXPECT_LT(d.message.size(), 200u);
}

TEST(HostileParsers, PlacementParserCollectsAllProblemsInOnePass) {
  const auto parsed =
      grader::parse_placement_diagnostics(load("bad_placement.txt"), 8);
  ASSERT_FALSE(parsed.clean());
  // One pass reports the bad number, the out-of-range index, the junk
  // line, the duplicate, and the missing cells -- at least 4 findings.
  EXPECT_GE(parsed.diagnostics.size(), 4u);
  bool out_of_range = false, duplicate = false, missing = false;
  for (const auto& d : parsed.diagnostics) {
    if (d.message.find("out of range") != std::string::npos) out_of_range = true;
    if (d.message.find("twice") != std::string::npos) duplicate = true;
    if (d.message.find("missing") != std::string::npos) missing = true;
  }
  EXPECT_TRUE(out_of_range);
  EXPECT_TRUE(duplicate);
  EXPECT_TRUE(missing);
}

// ---------------------------------------------------------------------------
// 2. Graders never throw; salvageable work earns partial credit.

class HostileGraders : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(42);
    gen::RoutingGenOptions ropt;
    ropt.width = ropt.height = 16;
    ropt.num_nets = 6;
    rp_ = gen::generate_routing(ropt, rng);

    gen::PlacementGenOptions popt;
    popt.num_cells = 20;
    pp_ = gen::generate_placement(popt, rng);
    grid_ = place::Grid{5, 5, pp_.width, pp_.height};
  }

  gen::RoutingProblem rp_;
  gen::PlacementProblem pp_;
  place::Grid grid_;
};

TEST_F(HostileGraders, RouteGraderSurvivesCorpus) {
  for (const auto& name : corpus()) {
    const auto g = grader::grade_routing_text(rp_, load(name));
    EXPECT_GE(g.score, 0.0) << name;
    EXPECT_LE(g.score, 100.0) << name;
    EXPECT_FALSE(g.report.empty()) << name;
  }
  const auto g = grader::grade_routing_text(rp_, ten_megabyte_line());
  EXPECT_DOUBLE_EQ(g.score, 0.0);
  // Diagnostics excerpt hostile lines; the report must stay readable.
  EXPECT_LT(g.report.size(), 10'000u);
}

TEST_F(HostileGraders, PlaceGraderSurvivesCorpus) {
  for (const auto& name : corpus()) {
    const auto g = grader::grade_placement_text(pp_, grid_, load(name), 1.0);
    EXPECT_DOUBLE_EQ(g.score, 0.0) << name;
    EXPECT_FALSE(g.report.empty()) << name;
    EXPECT_FALSE(g.diagnostics.empty()) << name;
  }
  EXPECT_NO_THROW(
      grader::grade_placement_text(pp_, grid_, ten_megabyte_line(), 1.0));
}

TEST_F(HostileGraders, OutOfRangeIndicesAreDiagnosedNotFatal) {
  // Syntactically valid coordinates light-years outside the grid: the
  // grader must report "out of bounds", not index into p.blocked.
  const auto g = grader::grade_routing_text(rp_, load("out_of_range_route.sol"));
  EXPECT_DOUBLE_EQ(g.score, 0.0);
  EXPECT_NE(g.report.find("missing"), std::string::npos);
}

TEST_F(HostileGraders, PartialCreditSurvivesMalformedBlocks) {
  // One real routed net serialized next to a garbage block: the good net
  // still earns its fraction of the score.
  const auto sol = route::route_all(rp_);
  std::string text = route::write_solution(sol);
  text += "net 9999\n(not a cell\n";  // malformed trailing block
  const auto g = grader::grade_routing_text(rp_, text);
  EXPECT_GT(g.score, 0.0);
  EXPECT_FALSE(g.diagnostics.empty());
  EXPECT_NE(g.report.find("still graded"), std::string::npos);
}

TEST_F(HostileGraders, BatchGradingIsolatesEverySubmission) {
  std::vector<std::string> submissions;
  for (const auto& name : corpus()) submissions.push_back(load(name));
  submissions.push_back(route::write_solution(route::route_all(rp_)));
  const auto grades = grader::grade_routing_batch(rp_, submissions);
  ASSERT_EQ(grades.size(), submissions.size());
  // The hostile ones scored 0 (or partial); the real one scored full.
  EXPECT_DOUBLE_EQ(grades.back().score, 100.0);
}

// ---------------------------------------------------------------------------
// 3. Budgets terminate every engine on adversarial input.

TEST(Budgets, SatSolverStopsOnStepBudget) {
  // Pigeonhole php(5, 4): UNSAT, conflict-heavy -- adversarial for a
  // CDCL solver. A one-step propagation budget must stop it almost
  // immediately with INDETERMINATE, not burn to refutation.
  std::string cnf = "p cnf 20 45\n";
  auto v = [](int p, int h) { return p * 4 + h + 1; };
  for (int p = 0; p < 5; ++p) {
    for (int h = 0; h < 4; ++h) cnf += std::to_string(v(p, h)) + " ";
    cnf += "0\n";
  }
  for (int h = 0; h < 4; ++h)
    for (int p1 = 0; p1 < 5; ++p1)
      for (int p2 = p1 + 1; p2 < 5; ++p2)
        cnf += "-" + std::to_string(v(p1, h)) + " -" +
               std::to_string(v(p2, h)) + " 0\n";

  const auto f = sat::parse_dimacs(cnf);
  const auto budget = util::Budget::with_step_limit(1);
  sat::SolverOptions opt;
  opt.budget = &budget;
  sat::Solver solver(opt);
  ASSERT_TRUE(sat::load_into_solver(f, solver));
  EXPECT_EQ(solver.solve(), sat::LBool::kUndef);
  EXPECT_FALSE(solver.stop_reason().ok());
  EXPECT_EQ(solver.stop_reason().code, util::StatusCode::kBudgetExceeded);

  // Without the guard the same instance refutes fine.
  sat::Solver free_solver;
  ASSERT_TRUE(sat::load_into_solver(f, free_solver));
  EXPECT_EQ(free_solver.solve(), sat::LBool::kFalse);
}

TEST(Budgets, BddManagerUnwindsOnNodeBudget) {
  bdd::Manager mgr(0);
  std::vector<bdd::Bdd> vars;
  for (int i = 0; i < 24; ++i) vars.push_back(mgr.var(mgr.new_var()));

  const auto budget = util::Budget::with_step_limit(8);
  mgr.set_budget(&budget);
  EXPECT_THROW(
      {
        bdd::Bdd f = vars[0];
        for (int i = 1; i < 24; ++i) f = f ^ vars[i];
      },
      util::BudgetExceededError);

  // The manager survives the unwind: lift the guard and keep working.
  mgr.set_budget(nullptr);
  const bdd::Bdd g = vars[0] & vars[1];
  EXPECT_FALSE(g.is_constant());
}

TEST(Budgets, RouterReturnsPartialSolutionOnBudget) {
  util::Rng rng(7);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 32;
  gopt.num_nets = 24;
  const auto p = gen::generate_routing(gopt, rng);

  const auto budget = util::Budget::with_step_limit(1);
  route::RouterOptions opt;
  opt.budget = &budget;
  const auto sol = route::route_all(p, opt);
  EXPECT_FALSE(sol.status.ok());
  EXPECT_EQ(sol.status.code, util::StatusCode::kBudgetExceeded);
  // Partial result: the solution object is intact and gradeable.
  EXPECT_NO_THROW(grader::grade_routing(p, sol));
}

TEST(Budgets, PlacerStopsOnRegionBudget) {
  util::Rng rng(8);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 200;
  const auto p = gen::generate_placement(gopt, rng);

  const auto budget = util::Budget::with_step_limit(1);
  place::QuadraticOptions opt;
  opt.budget = &budget;
  place::QuadraticStats stats;
  const auto placement = place::place_quadratic(p, opt, &stats);
  EXPECT_FALSE(stats.status.ok());
  EXPECT_EQ(placement.x.size(), static_cast<std::size_t>(p.num_cells));
}

TEST(Budgets, ConjugateGradientHonorsExpiredDeadline) {
  constexpr int kN = 1000;
  linalg::SparseMatrix a(kN);
  std::vector<double> b(kN, 1.0);
  for (int i = 0; i < kN; ++i) a.add(i, i, 2.0);
  a.compress();

  const auto budget = util::Budget::with_deadline_ms(0);  // already expired
  linalg::CgOptions opt;
  opt.budget = &budget;
  const auto res = linalg::conjugate_gradient(a, b, opt);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_FALSE(res.converged);
}

TEST(Budgets, FlowStopsAtStageBoundaryWithPartialResult) {
  const auto net = gen::adder_network(2);

  const auto tiny = util::Budget::with_step_limit(1);
  flow::FlowOptions opt;
  opt.budget = &tiny;
  const auto res = flow::run_flow(net, opt);
  EXPECT_FALSE(res.status.ok());
  EXPECT_FALSE(res.stopped_stage.empty());

  flow::FlowOptions free_opt;
  const auto full = flow::run_flow(net, free_opt);
  EXPECT_TRUE(full.status.ok()) << full.status.to_string();
  EXPECT_TRUE(full.stopped_stage.empty());
}

TEST(Budgets, CancellationStopsTheRouterFromOutside) {
  util::Rng rng(9);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 24;
  gopt.num_nets = 12;
  const auto p = gen::generate_routing(gopt, rng);

  util::Budget budget;
  budget.cancel();  // fire before the run: every checkpoint sees it
  route::RouterOptions opt;
  opt.budget = &budget;
  const auto sol = route::route_all(p, opt);
  EXPECT_FALSE(sol.status.ok());
  EXPECT_EQ(sol.status.code, util::StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// 4. The fault-injected grading queue degrades gracefully.

double parse_score(const std::string& s) {
  return static_cast<double>(util::parse_int(s.substr(1)).value());
}

TEST(GradingQueue, CleanQueueGradesEverything) {
  std::vector<std::string> subs;
  for (int i = 0; i < 8; ++i) subs.push_back("s" + std::to_string(i));
  const auto res = mooc::drain_queue(
      subs, [](const std::string& s, const util::Budget&) {
        return parse_score(s);
      });
  ASSERT_EQ(res.outcomes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(res.outcomes[static_cast<std::size_t>(i)].kind,
              mooc::OutcomeKind::kGraded);
    EXPECT_DOUBLE_EQ(res.outcomes[static_cast<std::size_t>(i)].score, i);
    EXPECT_EQ(res.outcomes[static_cast<std::size_t>(i)].attempts, 1);
  }
  EXPECT_EQ(res.stats.graded, 8);
  EXPECT_EQ(res.stats.total_attempts, 8);
}

TEST(GradingQueue, PoisonSubmissionsFailWithDiagnosticsOthersGrade) {
  std::vector<std::string> subs = {"s10", "poison", "s30", "poison", "s50"};
  mooc::QueueOptions opt;
  opt.max_retries = 2;
  const auto res = mooc::drain_queue(
      subs,
      [](const std::string& s, const util::Budget&) {
        if (s == "poison") throw std::runtime_error("unreadable submission");
        return parse_score(s);
      },
      opt);
  EXPECT_EQ(res.outcomes[0].kind, mooc::OutcomeKind::kGraded);
  EXPECT_DOUBLE_EQ(res.outcomes[0].score, 10.0);
  EXPECT_EQ(res.outcomes[1].kind, mooc::OutcomeKind::kFailed);
  EXPECT_EQ(res.outcomes[1].attempts, 3);  // 1 + 2 retries
  EXPECT_NE(res.outcomes[1].diagnostic.find("unreadable submission"),
            std::string::npos);
  EXPECT_EQ(res.outcomes[4].kind, mooc::OutcomeKind::kGraded);
  EXPECT_EQ(res.stats.graded, 3);
  EXPECT_EQ(res.stats.failed, 2);
}

TEST(GradingQueue, SlowSubmissionsHitTheirBudgetAndAreNotRetried) {
  std::vector<std::string> subs = {"s10", "slow", "s30"};
  mooc::QueueOptions opt;
  opt.step_limit = 4;
  opt.max_retries = 3;
  const auto res = mooc::drain_queue(
      subs,
      [](const std::string& s, const util::Budget& budget) {
        if (s == "slow") {
          while (budget.consume(1)) {
          }
          return 0.0;  // honored the guard, gave up
        }
        budget.consume(1);
        return parse_score(s);
      },
      opt);
  EXPECT_EQ(res.outcomes[0].kind, mooc::OutcomeKind::kGraded);
  EXPECT_EQ(res.outcomes[1].kind, mooc::OutcomeKind::kBudget);
  EXPECT_EQ(res.outcomes[1].attempts, 1);  // deterministic: never retried
  EXPECT_FALSE(res.outcomes[1].status.ok());
  EXPECT_EQ(res.outcomes[2].kind, mooc::OutcomeKind::kGraded);
  EXPECT_EQ(res.stats.budget_exceeded, 1);
}

TEST(GradingQueue, InjectedFaultsAreRetriedWithBackoff) {
  std::vector<std::string> subs;
  for (int i = 0; i < 40; ++i) subs.push_back("s" + std::to_string(i % 10));
  mooc::QueueOptions opt;
  opt.fault_seed = 1234;
  opt.transient_fault_rate = 0.4;
  opt.stall_rate = 0.2;
  opt.max_retries = 4;
  const auto res = mooc::drain_queue(
      subs,
      [](const std::string& s, const util::Budget&) { return parse_score(s); },
      opt);
  // With 5 attempts at a 60% compound fault rate, nearly everything
  // grades; whatever does not is marked exhausted, never lost.
  int graded = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto& out = res.outcomes[i];
    if (out.kind == mooc::OutcomeKind::kGraded) {
      ++graded;
      EXPECT_DOUBLE_EQ(out.score, parse_score(subs[i]));
      if (out.attempts > 1) EXPECT_GT(out.backoff_ticks, 0);
    } else {
      EXPECT_EQ(out.kind, mooc::OutcomeKind::kExhausted);
      EXPECT_EQ(out.attempts, 5);
    }
  }
  EXPECT_GT(graded, 30);
  EXPECT_GT(res.stats.injected_transients, 0);
  EXPECT_GT(res.stats.injected_stalls, 0);
  EXPECT_EQ(res.stats.graded + res.stats.retries_exhausted,
            static_cast<int>(subs.size()));
}

TEST(GradingQueue, RealGraderBehindTheQueueSurvivesHostileCorpus) {
  util::Rng rng(42);
  gen::RoutingGenOptions ropt;
  ropt.width = ropt.height = 16;
  ropt.num_nets = 6;
  const auto p = gen::generate_routing(ropt, rng);
  const auto good = route::write_solution(route::route_all(p));

  std::vector<std::string> subs;
  for (const auto& name : corpus()) subs.push_back(load(name));
  subs.push_back(good);

  const auto res = mooc::drain_queue(
      subs, [&](const std::string& text, const util::Budget& budget) {
        return grader::grade_routing_text(p, text, &budget).score;
      });
  // Graders never throw, so every hostile file still "grades" (score 0
  // or partial) and the real submission scores full marks.
  for (const auto& out : res.outcomes)
    EXPECT_EQ(out.kind, mooc::OutcomeKind::kGraded);
  EXPECT_DOUBLE_EQ(res.outcomes.back().score, 100.0);
}

TEST(GradingQueue, BackoffSaturatesAtMaxRetries64) {
  // Regression: backoff_base_ticks << (attempt - 1) shifted past the
  // width of int (UB) once retries ran deep. The shift is now clamped
  // and the accumulated total saturates, so a 64-retry poison drain is
  // well-defined and finishes with the counter pinned at INT_MAX.
  mooc::QueueOptions opt;
  opt.max_retries = 64;
  opt.backoff_base_ticks = 3;
  const auto res = mooc::drain_queue(
      {"poison"}, [](const std::string&, const util::Budget&) -> double {
        throw std::runtime_error("always fails");
      },
      opt);
  ASSERT_EQ(res.outcomes.size(), 1u);
  EXPECT_EQ(res.outcomes[0].kind, mooc::OutcomeKind::kFailed);
  EXPECT_EQ(res.outcomes[0].attempts, 65);  // 1 + 64 retries
  EXPECT_EQ(res.outcomes[0].backoff_ticks, std::numeric_limits<int>::max());
}

// ---------------------------------------------------------------------------
// 5. The persistent grading service survives overload deterministically:
//    admission rejects are recorded, sheds are recorded, breakers degrade
//    instead of failing -- and every run is bit-identical at any
//    L2L_THREADS value, which these tests check by fingerprinting whole
//    runs at 1/2/8 threads.

/// Hand-built trace: one course, one body string per event so dedup
/// cannot blur per-event assertions.
mooc::SubmissionTrace service_trace(
    std::uint32_t ticks,
    const std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>>&
        events /* (arrival, deadline, lane) in arrival order */) {
  mooc::SubmissionTrace trace;
  trace.ticks = ticks;
  trace.num_courses = 1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    trace.bodies.push_back("s" + std::to_string(10 * (i + 1)));
    mooc::SubmissionEvent ev;
    ev.body = static_cast<std::uint32_t>(i);
    ev.arrival_tick = std::get<0>(events[i]);
    ev.deadline_tick = std::get<1>(events[i]);
    ev.lane = std::get<2>(events[i]);
    trace.events.push_back(ev);
  }
  return trace;
}

double service_grade(const std::string& s, const util::Budget&) {
  return parse_score(s);
}

/// Everything deterministic about a run, flattened for equality checks
/// across thread counts.
std::string service_fingerprint(const mooc::ServiceResult& r) {
  std::ostringstream ss;
  const auto& s = r.stats;
  ss << s.ticks << '/' << s.arrivals << '/' << s.admitted << '/'
     << s.rejected_quota << '/' << s.rejected_full << '/' << s.shed << '/'
     << s.graded << '/' << s.degraded << '/' << s.failed << '/'
     << s.budget_exceeded << '/' << s.retries_exhausted << '/'
     << s.lint_rejected << '/' << s.dedup_hits << '/' << s.cache_hits << '/'
     << s.breaker_trips << '/' << s.breaker_probes << '/'
     << s.breaker_recoveries << '/' << s.total_attempts << '/'
     << s.injected_transients << '/' << s.injected_stalls << '/'
     << s.peak_depth_first << '/' << s.peak_depth_resubmit << '\n';
  for (const auto& o : r.outcomes)
    ss << static_cast<int>(o.disposition) << ':' << static_cast<int>(o.lane)
       << ':' << o.replayed << ':' << o.attempts << ':'
       << static_cast<int>(o.status) << ':' << o.final_tick << ':'
       << o.backoff_ticks << ':' << o.score << ':' << o.diagnostic.size()
       << ';';
  return ss.str();
}

/// Run the scenario at 1, 2, and 8 threads; assert the runs are
/// bit-identical and hand back the (shared) result.
mooc::ServiceResult run_thread_invariant(const mooc::ServiceOptions& opt,
                                         const mooc::SubmissionTrace& trace,
                                         mooc::GradeFn grade = service_grade) {
  const mooc::GradingService service(opt, std::move(grade));
  mooc::ServiceResult first;
  std::string first_print;
  for (const int t : {1, 2, 8}) {
    util::set_num_threads(t);
    auto res = service.run(trace);
    EXPECT_TRUE(res.accounting_ok())
        << "silent drop at " << t << " threads: admitted " << res.stats.admitted
        << " + rejected " << res.stats.rejected() << " + shed "
        << res.stats.shed << " != arrivals " << res.stats.arrivals;
    const auto print = service_fingerprint(res);
    if (first_print.empty()) {
      first = std::move(res);
      first_print = print;
    } else {
      EXPECT_EQ(print, first_print) << "run differs at " << t << " threads";
    }
  }
  util::set_num_threads(0);
  return first;
}

TEST(GradingService, AdmissionRejectsBeyondQuota) {
  // Ten arrivals in one tick against a quota of four: four serviced, six
  // rejected with a recorded reason -- in submission-id order, because
  // the arrival sweep is sequential.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>> events;
  for (int i = 0; i < 10; ++i) events.emplace_back(0, 2, 0);
  const auto trace = service_trace(3, events);
  mooc::ServiceOptions opt;
  opt.admit_quota = 4;
  opt.queue_cap = 100;
  opt.service_rate = 100;
  const auto res = run_thread_invariant(opt, trace);
  EXPECT_EQ(res.stats.arrivals, 10);
  EXPECT_EQ(res.stats.admitted, 4);
  EXPECT_EQ(res.stats.rejected_quota, 6);
  EXPECT_EQ(res.stats.shed, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(res.outcomes[static_cast<std::size_t>(i)].disposition,
              mooc::Disposition::kGraded);
    EXPECT_DOUBLE_EQ(res.outcomes[static_cast<std::size_t>(i)].score,
                     10.0 * (i + 1));
  }
  for (int i = 4; i < 10; ++i) {
    const auto& o = res.outcomes[static_cast<std::size_t>(i)];
    EXPECT_EQ(o.disposition, mooc::Disposition::kRejectedQuota);
    EXPECT_EQ(o.final_tick, 0u);
    EXPECT_TRUE(o.diagnostic.empty());
  }
}

TEST(GradingService, OverloadShedsResubmitLaneByPolicy) {
  // One first submit plus three resubmits into a queue of two. The shed
  // policy picks the victim from the resubmit lane: oldest deadline
  // first, or the newest arrival, or -- under `none` -- nobody (the
  // queue rejects at admission instead). Every variant keeps the books.
  const auto trace = service_trace(8, {{0, 5, 0},    // e0: first submit
                                       {0, 3, 1},    // e1: resubmit, d=3
                                       {0, 7, 1},    // e2: resubmit, d=7
                                       {0, 2, 1}});  // e3: resubmit, d=2
  mooc::ServiceOptions opt;
  opt.queue_cap = 2;
  opt.admit_quota = 100;
  opt.service_rate = 1;

  opt.shed_policy = mooc::ShedPolicy::kOldestDeadline;
  auto res = run_thread_invariant(opt, trace);
  EXPECT_EQ(res.stats.shed, 2);
  EXPECT_EQ(res.stats.admitted, 2);
  // e1 (deadline 3) evicted when e2 arrives; e3 (deadline 2) evicts
  // itself on arrival. The first-submit lane is never touched.
  EXPECT_EQ(res.outcomes[0].disposition, mooc::Disposition::kGraded);
  EXPECT_EQ(res.outcomes[1].disposition, mooc::Disposition::kShed);
  EXPECT_EQ(res.outcomes[2].disposition, mooc::Disposition::kGraded);
  EXPECT_EQ(res.outcomes[3].disposition, mooc::Disposition::kShed);
  // Priority lanes: the first submit is serviced before the resubmit.
  EXPECT_LT(res.outcomes[0].final_tick, res.outcomes[2].final_tick);

  opt.shed_policy = mooc::ShedPolicy::kNewestFirst;
  res = run_thread_invariant(opt, trace);
  EXPECT_EQ(res.stats.shed, 2);
  // Newest arrivals (e2, then e3) leave first; e1 survives.
  EXPECT_EQ(res.outcomes[1].disposition, mooc::Disposition::kGraded);
  EXPECT_EQ(res.outcomes[2].disposition, mooc::Disposition::kShed);
  EXPECT_EQ(res.outcomes[3].disposition, mooc::Disposition::kShed);

  opt.shed_policy = mooc::ShedPolicy::kNone;
  res = run_thread_invariant(opt, trace);
  EXPECT_EQ(res.stats.shed, 0);
  EXPECT_EQ(res.stats.rejected_full, 2);
  EXPECT_EQ(res.outcomes[2].disposition, mooc::Disposition::kRejectedFull);
  EXPECT_EQ(res.outcomes[3].disposition, mooc::Disposition::kRejectedFull);
}

TEST(GradingService, BreakerTripsDegradesThenRecovers) {
  // One submission per tick into a fault storm covering ticks [0, 12).
  // With every attempt faulting, two consecutive exhausted outcomes trip
  // the breaker; the course degrades to lint-only service while open;
  // half-open probes fail on the deterministic schedule until the storm
  // passes, then the first clean probe closes the breaker again.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>> events;
  for (std::uint32_t i = 0; i < 30; ++i) events.emplace_back(i, i + 5, 0);
  const auto trace = service_trace(40, events);
  mooc::ServiceOptions opt;
  opt.service_rate = 1;
  opt.admit_quota = 10;
  opt.queue_cap = 100;
  opt.breaker_threshold = 2;
  opt.breaker_probe_interval = 2;
  opt.storm_begin_tick = 0;
  opt.storm_end_tick = 12;
  opt.storm_transient_rate = 1.0;
  opt.queue.max_retries = 1;
  const auto res = run_thread_invariant(opt, trace);

  EXPECT_EQ(res.stats.breaker_trips, 1);
  EXPECT_EQ(res.stats.breaker_recoveries, 1);
  // Probes fire on ticks 3, 5, 7, 9, 11 (failing -- storm) and 13 (clean).
  EXPECT_EQ(res.stats.breaker_probes, 6);
  // Exhausted: the two that tripped it plus the five failed probes.
  EXPECT_EQ(res.stats.retries_exhausted, 7);
  // Degraded: the non-probe ticks while open during/just after the storm.
  EXPECT_EQ(res.stats.degraded, 6);
  EXPECT_EQ(res.stats.graded, 17);
  EXPECT_EQ(res.stats.admitted, 30);

  EXPECT_EQ(res.outcomes[0].disposition, mooc::Disposition::kExhausted);
  EXPECT_EQ(res.outcomes[1].disposition, mooc::Disposition::kExhausted);
  EXPECT_EQ(res.outcomes[2].disposition, mooc::Disposition::kDegraded);
  EXPECT_EQ(res.outcomes[3].disposition, mooc::Disposition::kExhausted);
  EXPECT_EQ(res.outcomes[13].disposition, mooc::Disposition::kGraded);
  EXPECT_EQ(res.outcomes[29].disposition, mooc::Disposition::kGraded);
}

TEST(GradingService, GeneratedSemesterUnderOverloadNeverDropsSilently) {
  // The acceptance drill in miniature: a generated deadline-spiked trace
  // against a queue cap far below the arrival rate. Whatever the mix of
  // graded/rejected/shed, the books must close exactly -- at any thread
  // count (run_thread_invariant checks both).
  mooc::TraceOptions topt;
  topt.num_students = 4000;
  topt.num_courses = 3;
  topt.ticks = 100;
  util::Rng rng(11);
  const auto trace = mooc::generate_submission_trace(topt, rng);
  mooc::ServiceOptions opt;
  opt.queue_cap = 32;
  opt.admit_quota = 24;
  opt.service_rate = 4;
  opt.storm_begin_tick = 30;
  opt.storm_end_tick = 60;
  opt.storm_transient_rate = 0.9;
  opt.storm_stall_rate = 0.4;
  const auto res = run_thread_invariant(
      opt, trace, [](const std::string& s, const util::Budget&) {
        return static_cast<double>(s.size() % 101);
      });
  EXPECT_GT(res.stats.shed, 0);
  EXPECT_GT(res.stats.rejected_quota, 0);
  EXPECT_GT(res.stats.graded, 0);
  EXPECT_EQ(res.stats.arrivals,
            static_cast<std::int64_t>(trace.events.size()));
}

}  // namespace
}  // namespace l2l
