// Crash-recovery property tests for the grading-service journal
// (mooc/journal.hpp) and the consistent-hash shard map
// (mooc/shard_map.hpp). The central property, pinned from several
// directions: a service killed at ANY point -- any tick boundary, any
// byte offset of a torn write -- and restarted with --recover reaches a
// final state byte-identical to the uninterrupted run's: same outcomes,
// same stats, same deterministic obs counters (modulo the journal.*
// family, which legitimately describes THIS process's journal I/O), at
// any L2L_THREADS. And the sharding property: an N-shard drain, merged,
// equals the single-process drain submission for submission.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_service.hpp"
#include "mooc/journal.hpp"
#include "mooc/shard_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace l2l {
namespace {

std::atomic<std::int64_t> g_grade_calls{0};

double counting_grade(const std::string& s, const util::Budget&) {
  g_grade_calls.fetch_add(1, std::memory_order_relaxed);
  return static_cast<double>(s.size() % 101);
}

/// A compact semester that walks every service path the journal records:
/// overload (quota rejects + sheds), a fault storm (breaker trips,
/// degraded service, probes, recoveries), duplicate-heavy uploads
/// (dedup memo replays), and a lint rule (lint rejections + memo).
mooc::SubmissionTrace make_trace(int students = 1500, int courses = 2,
                                 std::uint32_t ticks = 80,
                                 std::uint64_t seed = 5) {
  mooc::TraceOptions topt;
  topt.num_students = students;
  topt.num_courses = courses;
  topt.ticks = ticks;
  util::Rng rng(seed);
  return mooc::generate_submission_trace(topt, rng);
}

mooc::ServiceOptions make_options() {
  mooc::ServiceOptions sopt;
  sopt.queue_cap = 48;
  sopt.admit_quota = 32;
  sopt.service_rate = 8;
  sopt.breaker_threshold = 4;
  sopt.breaker_probe_interval = 4;
  sopt.storm_begin_tick = 20;
  sopt.storm_end_tick = 40;
  sopt.storm_transient_rate = 0.95;
  sopt.storm_stall_rate = 0.3;
  sopt.queue.max_retries = 1;
  // A pure-in-the-bytes lint rule with both verdicts represented: the
  // replay path re-runs lint and cross-checks it against the journal.
  sopt.queue.lint = [](const std::string& body) {
    std::vector<util::Diagnostic> out;
    std::uint32_t sum = 0;
    for (const char c : body) sum += static_cast<unsigned char>(c);
    if (sum % 7 == 0)
      out.push_back(util::make_error(1, 1, "checksum lint tripped"));
    return out;
  };
  return sopt;
}

/// One service process: clean registry/tracer, cold in-memory cache.
mooc::ServiceResult run_service(const mooc::SubmissionTrace& trace,
                                const mooc::ServiceOptions& sopt,
                                const mooc::RunRequest& req,
                                util::Status& status) {
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  cache::Cache::global().clear();
  const mooc::GradingService service(sopt, counting_grade);
  return service.run(trace, req, status);
}

/// Counter slice of the export, minus the journal.* family (the one
/// metric family that legitimately differs between an uninterrupted run
/// and a crash+recovery pair).
std::string counters_sans_journal() {
  std::string out;
  for (const auto& [name, v] : obs::Registry::global().snapshot().counters)
    if (name.rfind("journal.", 0) != 0)
      out += "counter " + name + " " + std::to_string(v) + "\n";
  return out;
}

void expect_same_result(const mooc::ServiceResult& got,
                        const mooc::ServiceResult& want,
                        const std::string& label) {
  EXPECT_TRUE(got.stats == want.stats) << label << ": stats diverged";
  ASSERT_EQ(got.outcomes.size(), want.outcomes.size()) << label;
  for (std::size_t i = 0; i < want.outcomes.size(); ++i)
    ASSERT_TRUE(got.outcomes[i] == want.outcomes[i])
        << label << ": outcome " << i << " diverged";
}

std::string temp_journal(const std::string& name) {
  return ::testing::TempDir() + "l2l_journal_test_" + name + ".l2lj";
}

void remove_journal(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".quarantine", ec);
}

class JournalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::set_num_threads(0);
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
    cache::Cache::global().clear();
  }
};

TEST_F(JournalTest, CleanRunRoundTrip) {
  const auto trace = make_trace();
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_TRUE(plain.accounting_ok());
  // The scenario genuinely exercises what the journal must record.
  EXPECT_GT(plain.stats.shed, 0);
  EXPECT_GT(plain.stats.rejected_quota, 0);
  EXPECT_GT(plain.stats.breaker_trips, 0);
  EXPECT_GT(plain.stats.dedup_hits, 0);
  EXPECT_GT(plain.stats.lint_rejected, 0);

  const std::string path = temp_journal("clean");
  remove_journal(path);
  mooc::RunRequest req;
  req.journal_path = path;
  const auto journaled = run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(journaled, plain, "journaled vs plain");

  const auto scan = mooc::scan_journal(path);
  ASSERT_TRUE(scan.status.ok()) << scan.status.to_string();
  EXPECT_TRUE(scan.found);
  EXPECT_TRUE(scan.run_complete);
  EXPECT_EQ(scan.torn_bytes, 0);
  EXPECT_EQ(static_cast<std::int64_t>(scan.ticks.size()),
            plain.stats.ticks);
  EXPECT_EQ(scan.header.num_events, trace.events.size());
  remove_journal(path);
}

TEST_F(JournalTest, FullReplayInvokesNoGrading) {
  const auto trace = make_trace();
  const auto sopt = make_options();
  const std::string path = temp_journal("full_replay");
  remove_journal(path);
  util::Status st;
  mooc::RunRequest req;
  req.journal_path = path;
  const auto original = run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok()) << st.to_string();

  g_grade_calls.store(0);
  req.recover = true;
  const auto replayed = run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(g_grade_calls.load(), 0)
      << "a full replay must substitute journaled outcomes, not regrade";
  expect_same_result(replayed, original, "replayed vs original");
  remove_journal(path);
}

/// The heart of the tentpole: kill before tick k, recover, and the final
/// report AND the deterministic obs counters match the uninterrupted
/// run's. The tier1 sweep samples k; the soak sweep (below) takes every
/// tick.
void kill_recover_sweep(const std::vector<std::int64_t>& kill_ticks) {
  const auto trace = make_trace();
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());
  const std::string want_counters = counters_sans_journal();
  ASSERT_FALSE(want_counters.empty());

  for (const std::int64_t k : kill_ticks) {
    const std::string path =
        temp_journal("kill_" + std::to_string(k));
    remove_journal(path);
    mooc::RunRequest crash;
    crash.journal_path = path;
    crash.halt_after_ticks = k;
    const auto halted = run_service(trace, sopt, crash, st);
    ASSERT_TRUE(st.ok()) << "k=" << k << ": " << st.to_string();
    EXPECT_EQ(halted.halted, k < plain.stats.ticks) << "k=" << k;

    mooc::RunRequest recover;
    recover.journal_path = path;
    recover.recover = true;
    const auto recovered = run_service(trace, sopt, recover, st);
    ASSERT_TRUE(st.ok()) << "k=" << k << ": " << st.to_string();
    expect_same_result(recovered, plain, "k=" + std::to_string(k));
    EXPECT_EQ(counters_sans_journal(), want_counters)
        << "obs counters diverged after recovery at k=" << k;
    remove_journal(path);
  }
}

TEST_F(JournalTest, KillAtSampledTicksRecoversExactly) {
  kill_recover_sweep({0, 1, 5, 17, 21, 33, 39, 59, 1000});
}

// The exhaustive sweep -- every tick of the semester. Heavy, so it runs
// only under the soak ctest row (tests/CMakeLists.txt sets the env var).
TEST_F(JournalTest, FullKillSweep) {
  if (std::getenv("L2L_FULL_KILL_SWEEP") == nullptr)
    GTEST_SKIP() << "set L2L_FULL_KILL_SWEEP=1 (soak tier) to run";
  const auto trace = make_trace();
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());
  std::vector<std::int64_t> every;
  for (std::int64_t k = 0; k <= plain.stats.ticks; ++k) every.push_back(k);
  kill_recover_sweep(every);
}

TEST_F(JournalTest, ByteTruncationNeverCrashesAndRecovers) {
  const auto trace = make_trace(300, 2, 30, 11);
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  const std::string path = temp_journal("trunc_src");
  remove_journal(path);
  mooc::RunRequest req;
  req.journal_path = path;
  (void)run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 1000u);

  const std::string cut = temp_journal("trunc_cut");
  for (std::size_t len = 0; len <= bytes.size(); len += 311) {
    remove_journal(cut);
    {
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    const auto scan = mooc::scan_journal(cut);
    ASSERT_TRUE(scan.status.ok()) << "len=" << len;
    EXPECT_EQ(scan.valid_bytes + scan.torn_bytes,
              static_cast<std::int64_t>(len))
        << "len=" << len;

    mooc::RunRequest recover;
    recover.journal_path = cut;
    recover.recover = true;
    const auto recovered = run_service(trace, sopt, recover, st);
    ASSERT_TRUE(st.ok()) << "len=" << len << ": " << st.to_string();
    expect_same_result(recovered, plain, "len=" + std::to_string(len));
    remove_journal(cut);
  }
  remove_journal(path);
}

TEST_F(JournalTest, CorruptMidFileByteIsTruncatedAndRecovered) {
  const auto trace = make_trace(300, 2, 30, 11);
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  const std::string path = temp_journal("flip");
  remove_journal(path);
  mooc::RunRequest req;
  req.journal_path = path;
  (void)run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::int64_t>(f.tellg());
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(size / 2);
    f.write(&c, 1);
  }
  mooc::RunRequest recover;
  recover.journal_path = path;
  recover.recover = true;
  const auto recovered = run_service(trace, sopt, recover, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(recovered, plain, "mid-file corruption");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  remove_journal(path);
}

TEST_F(JournalTest, GarbageTailIsQuarantinedNotTrusted) {
  const auto trace = make_trace(300, 2, 30, 11);
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  const std::string path = temp_journal("garbage_tail");
  remove_journal(path);
  mooc::RunRequest req;
  req.journal_path = path;
  (void)run_service(trace, sopt, req, st);
  ASSERT_TRUE(st.ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x07garbage past the run-end frame\xff\xfe";
  }
  const auto scan = mooc::scan_journal(path);
  ASSERT_TRUE(scan.status.ok());
  EXPECT_TRUE(scan.run_complete);
  EXPECT_GT(scan.torn_bytes, 0);

  mooc::RunRequest recover;
  recover.journal_path = path;
  recover.recover = true;
  const auto recovered = run_service(trace, sopt, recover, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(recovered, plain, "garbage tail");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  remove_journal(path);
}

TEST_F(JournalTest, CorruptHeaderStartsFresh) {
  const auto trace = make_trace(300, 2, 30, 11);
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  const std::string path = temp_journal("bad_header");
  remove_journal(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a journal at all";
  }
  mooc::RunRequest recover;
  recover.journal_path = path;
  recover.recover = true;
  const auto recovered = run_service(trace, sopt, recover, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(recovered, plain, "fresh start after bad header");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  // And the rewritten journal is a valid complete run.
  const auto scan = mooc::scan_journal(path);
  EXPECT_TRUE(scan.found);
  EXPECT_TRUE(scan.run_complete);
  remove_journal(path);
}

TEST_F(JournalTest, MissingJournalRecoversToFreshStart) {
  const auto trace = make_trace(300, 2, 30, 11);
  const auto sopt = make_options();
  util::Status st;
  const auto plain = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  const std::string path = temp_journal("missing");
  remove_journal(path);
  mooc::RunRequest recover;
  recover.journal_path = path;
  recover.recover = true;
  const auto recovered = run_service(trace, sopt, recover, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(recovered, plain, "recover with no journal");
  remove_journal(path);
}

TEST_F(JournalTest, ForeignJournalIsRefused) {
  const auto trace_a = make_trace(300, 2, 30, 11);
  const auto trace_b = make_trace(300, 2, 30, 12);  // different seed
  const auto sopt = make_options();
  util::Status st;
  const std::string path = temp_journal("foreign");
  remove_journal(path);
  mooc::RunRequest req;
  req.journal_path = path;
  (void)run_service(trace_a, sopt, req, st);
  ASSERT_TRUE(st.ok());

  mooc::RunRequest recover;
  recover.journal_path = path;
  recover.recover = true;
  (void)run_service(trace_b, sopt, recover, st);
  EXPECT_EQ(st.code, util::StatusCode::kInvalidInput)
      << "a journal for another trace must be refused, got "
      << st.to_string();

  // A different config is refused too.
  auto hot = make_options();
  hot.queue.max_retries = 3;
  (void)run_service(trace_a, hot, recover, st);
  EXPECT_EQ(st.code, util::StatusCode::kInvalidInput) << st.to_string();
  remove_journal(path);
}

TEST_F(JournalTest, RecoveredCountersAreThreadCountInvariant) {
  const auto trace = make_trace();
  const auto sopt = make_options();
  util::Status st;
  std::vector<std::string> exports;
  for (const int threads : {1, 2, 8}) {
    util::set_num_threads(threads);
    const std::string path =
        temp_journal("threads_" + std::to_string(threads));
    remove_journal(path);
    mooc::RunRequest crash;
    crash.journal_path = path;
    crash.halt_after_ticks = 13;
    (void)run_service(trace, sopt, crash, st);
    ASSERT_TRUE(st.ok());
    mooc::RunRequest recover;
    recover.journal_path = path;
    recover.recover = true;
    const auto recovered = run_service(trace, sopt, recover, st);
    ASSERT_TRUE(st.ok());
    EXPECT_TRUE(recovered.accounting_ok());
    exports.push_back(counters_sans_journal());
    remove_journal(path);
  }
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]) << "threads 1 vs 2";
  EXPECT_EQ(exports[0], exports[2]) << "threads 1 vs 8";
}

// ---- shard map -----------------------------------------------------------

TEST_F(JournalTest, ShardMapIsDeterministicBalancedAndStable) {
  const mooc::ShardMap a(4);
  const mooc::ShardMap b(4);
  for (std::uint32_t c = 0; c < 4096; ++c)
    ASSERT_EQ(a.shard_for_course(c), b.shard_for_course(c)) << c;

  const auto per = a.courses_per_shard(4096);
  ASSERT_EQ(per.size(), 4u);
  int lo = per[0], hi = per[0];
  for (const int n : per) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(lo, 0);
  EXPECT_LT(hi, 4 * lo) << "ring too lumpy: " << lo << " .. " << hi;

  // Consistent-hash stability: 4 -> 5 shards re-homes roughly 1/5 of the
  // courses, never a wholesale reshuffle.
  const mooc::ShardMap wider(5);
  int moved = 0;
  for (std::uint32_t c = 0; c < 4096; ++c)
    if (wider.shard_for_course(c) != a.shard_for_course(c)) ++moved;
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 4096 * 2 / 5) << "adding a shard re-homed " << moved
                                 << "/4096 courses";
}

TEST_F(JournalTest, ShardedDrainMergesToSingleProcess) {
  const auto trace = make_trace(1200, 8, 60, 7);
  const auto sopt = make_options();
  util::Status st;
  const auto single = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  constexpr int kShards = 4;
  const mooc::ShardMap map(kShards);
  std::vector<mooc::ServiceResult> parts;
  for (int s = 0; s < kShards; ++s) {
    auto shard_opt = sopt;
    shard_opt.num_shards = kShards;
    shard_opt.shard = s;
    parts.push_back(run_service(trace, shard_opt, {}, st));
    ASSERT_TRUE(st.ok()) << "shard " << s;
    EXPECT_TRUE(parts.back().accounting_ok()) << "shard " << s;
  }
  const auto merged = mooc::merge_sharded(trace, map, parts, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(merged, single, "merged vs single-process");
  EXPECT_TRUE(merged.accounting_ok());
}

TEST_F(JournalTest, ShardedRecoveryComposesWithMerge) {
  const auto trace = make_trace(600, 8, 40, 7);
  const auto sopt = make_options();
  util::Status st;
  const auto single = run_service(trace, sopt, {}, st);
  ASSERT_TRUE(st.ok());

  constexpr int kShards = 3;
  const mooc::ShardMap map(kShards);
  std::vector<mooc::ServiceResult> parts;
  for (int s = 0; s < kShards; ++s) {
    auto shard_opt = sopt;
    shard_opt.num_shards = kShards;
    shard_opt.shard = s;
    const std::string path =
        temp_journal("shard_rec_" + std::to_string(s));
    remove_journal(path);
    mooc::RunRequest crash;
    crash.journal_path = path;
    crash.halt_after_ticks = 9 + s;  // shards die at different ticks
    (void)run_service(trace, shard_opt, crash, st);
    ASSERT_TRUE(st.ok());
    mooc::RunRequest recover;
    recover.journal_path = path;
    recover.recover = true;
    parts.push_back(run_service(trace, shard_opt, recover, st));
    ASSERT_TRUE(st.ok()) << "shard " << s;
    remove_journal(path);
  }
  const auto merged = mooc::merge_sharded(trace, map, parts, st);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_same_result(merged, single, "recovered shards, merged");
}

// ---- trace options validation (satellite: the TraceOptions contract) ----

TEST_F(JournalTest, TraceOptionsValidation) {
  EXPECT_TRUE(mooc::validate(mooc::TraceOptions{}).ok());

  auto expect_invalid = [](mooc::TraceOptions t, const char* what) {
    const auto st = mooc::validate(t);
    EXPECT_EQ(st.code, util::StatusCode::kInvalidInput) << what;
  };
  mooc::TraceOptions t;
  t.num_students = -1;
  expect_invalid(t, "negative students");
  t = {};
  t.num_courses = 0;
  expect_invalid(t, "zero courses");
  t = {};
  t.num_courses = 5000;
  expect_invalid(t, "too many courses");
  t = {};
  t.ticks = 1;
  expect_invalid(t, "degenerate semester");
  t = {};
  t.deadline_every = 1;
  expect_invalid(t, "deadline every tick");
  t = {};
  t.deadline_every = 500;  // > ticks (200)
  expect_invalid(t, "deadline past semester");
  t = {};
  t.participation_rate = 1.5;
  expect_invalid(t, "participation > 1");
  t = {};
  t.resubmit_rate = -0.1;
  expect_invalid(t, "negative resubmit rate");
  t = {};
  t.max_submissions = 0;
  expect_invalid(t, "zero submissions");
  t = {};
  t.unique_bodies_per_course = 0;
  expect_invalid(t, "empty body pool");
  t = {};
  t.body_bytes = 8;
  expect_invalid(t, "bodies below digest floor");
}

}  // namespace
}  // namespace l2l
