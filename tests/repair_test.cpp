#include <gtest/gtest.h>

#include "gen/function_gen.hpp"
#include "network/blif.hpp"
#include "network/equivalence.hpp"
#include "repair/repair.hpp"
#include "util/rng.hpp"

namespace l2l::repair {
namespace {

using network::Network;
using network::parse_blif;
using network::write_blif;

Network golden_adder() { return gen::adder_network(2); }

TEST(Repair, FixesSingleCorruptedGate) {
  const auto spec = golden_adder();
  util::Rng rng(141);
  for (int trial = 0; trial < 10; ++trial) {
    auto impl = parse_blif(write_blif(spec));
    const auto victim = inject_error(impl, rng);
    // Sanity: the corruption broke something (occasionally it doesn't
    // propagate to outputs; skip those trials).
    const bool broken = !network::check_equivalence(
                             impl, spec, network::EquivalenceMethod::kBdd)
                             .equivalent;
    if (!broken) continue;
    const auto r = repair_network(impl, spec);
    ASSERT_TRUE(r.has_value()) << "trial " << trial;
    EXPECT_TRUE(network::check_equivalence(impl, spec,
                                           network::EquivalenceMethod::kBdd)
                    .equivalent);
    (void)victim;
  }
}

TEST(Repair, DiagnoseFindsTheCorruptedGate) {
  const auto spec = golden_adder();
  util::Rng rng(142);
  auto impl = parse_blif(write_blif(spec));
  const auto victim = inject_error(impl, rng);
  if (network::check_equivalence(impl, spec, network::EquivalenceMethod::kBdd)
          .equivalent)
    GTEST_SKIP() << "corruption did not propagate";
  const auto candidates = diagnose(impl, spec);
  bool found = false;
  for (const auto& c : candidates) found |= c.node == victim;
  EXPECT_TRUE(found) << "victim " << victim << " not among candidates";
  // Every candidate must actually work.
  for (const auto& c : candidates) {
    auto copy = parse_blif(write_blif(impl));
    // Node ids survive the BLIF round trip only if order is stable; apply
    // to the original instead.
    auto impl2 = impl;
    apply_repair(impl2, c);
    EXPECT_TRUE(network::check_equivalence(impl2, spec,
                                           network::EquivalenceMethod::kBdd)
                    .equivalent)
        << "candidate " << c.node;
    (void)copy;
  }
}

TEST(Repair, CorrectNetworkIsTriviallyRepairable) {
  // On an already-correct network, every gate is "repairable" (keep its
  // function) and repair_network returns the first gate unchanged in
  // behaviour.
  const auto spec = golden_adder();
  auto impl = parse_blif(write_blif(spec));
  const auto candidates = diagnose(impl, spec);
  EXPECT_GT(candidates.size(), 0u);
  auto r = repair_network(impl, spec);
  EXPECT_TRUE(r.has_value());
  EXPECT_TRUE(network::check_equivalence(impl, spec,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

TEST(Repair, UnrepairableWhenTwoGatesWrong) {
  // Corrupt two independent gates; single-gate repair at either one alone
  // cannot fix both (usually). Use a crafted case to be deterministic:
  // impl computes x = a AND b, y = c AND d; spec wants OR for both.
  const auto spec = parse_blif(
      ".model s\n.inputs a b c d\n.outputs x y\n"
      ".names a b x\n1- 1\n-1 1\n"
      ".names c d y\n1- 1\n-1 1\n.end\n");
  auto impl = parse_blif(
      ".model s\n.inputs a b c d\n.outputs x y\n"
      ".names a b x\n11 1\n"
      ".names c d y\n11 1\n.end\n");
  EXPECT_TRUE(diagnose(impl, spec).empty());
  EXPECT_FALSE(repair_network(impl, spec).has_value());
}

TEST(Repair, UsesUnreachablePatternsAsDontCares) {
  // t1 = ab, t2 = a'b; y sees (t1, t2) and pattern 11 never occurs, so the
  // repair of y has at least one don't-care pattern.
  const auto spec = parse_blif(
      ".model s\n.inputs a b\n.outputs y\n"
      ".names a b t1\n11 1\n"
      ".names a b t2\n01 1\n"
      ".names t1 t2 y\n1- 1\n-1 1\n.end\n");
  auto impl = parse_blif(
      ".model s\n.inputs a b\n.outputs y\n"
      ".names a b t1\n11 1\n"
      ".names a b t2\n01 1\n"
      ".names t1 t2 y\n00 1\n.end\n");  // wrong gate at y
  const auto r = try_repair_node(impl, spec, *impl.find("y"));
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->dc_patterns, 1);
  apply_repair(impl, *r);
  EXPECT_TRUE(network::check_equivalence(impl, spec,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

TEST(Repair, RespectsWidthLimits) {
  const auto spec = golden_adder();
  auto impl = parse_blif(write_blif(spec));
  RepairOptions opt;
  opt.max_fanins = 0;  // everything too wide
  EXPECT_TRUE(diagnose(impl, spec, opt).empty());
}

TEST(Repair, InjectErrorChangesBehaviourEventually) {
  util::Rng rng(143);
  int broke = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto impl = golden_adder();
    inject_error(impl, rng);
    if (!network::check_equivalence(impl, golden_adder(),
                                    network::EquivalenceMethod::kBdd)
             .equivalent)
      ++broke;
  }
  EXPECT_GT(broke, 5);
}

// Property: for random networks with one injected error, repair always
// succeeds at some gate (the corrupted gate itself is always a candidate
// when the replacement is expressible -- which it is, since the original
// function existed over the same fanins).
class RepairPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RepairPropertyTest, SingleErrorAlwaysFixable) {
  util::Rng rng(1400 + static_cast<std::uint64_t>(GetParam()));
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 5;
  gopt.num_nodes = 8;
  gopt.num_outputs = 3;
  gopt.max_arity = 3;
  const auto spec = gen::random_network(gopt, rng);
  auto impl = parse_blif(write_blif(spec));
  inject_error(impl, rng);
  const auto r = repair_network(impl, spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(network::check_equivalence(impl, spec,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace l2l::repair
