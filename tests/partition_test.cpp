#include <gtest/gtest.h>

#include "gen/placement_gen.hpp"
#include "partition/fm.hpp"
#include "partition/hypergraph.hpp"
#include "partition/kl.hpp"
#include "util/rng.hpp"

namespace l2l::partition {
namespace {

// Two dense clusters joined by a few bridge nets: optimal cut = bridges.
Hypergraph two_clusters(int cluster_size, int bridges) {
  std::vector<std::vector<int>> nets;
  for (int k = 0; k + 1 < cluster_size; ++k) {
    nets.push_back({k, k + 1});
    nets.push_back({cluster_size + k, cluster_size + k + 1});
    if (k + 2 < cluster_size) {
      nets.push_back({k, k + 2});
      nets.push_back({cluster_size + k, cluster_size + k + 2});
    }
  }
  for (int b = 0; b < bridges; ++b)
    nets.push_back({b, cluster_size + b});
  return Hypergraph::from_nets(2 * cluster_size, std::move(nets));
}

TEST(Hypergraph, Construction) {
  const auto g = Hypergraph::from_nets(4, {{0, 1}, {1, 2, 3}, {2, 2}, {3}});
  EXPECT_EQ(g.num_cells, 4);
  EXPECT_EQ(g.nets.size(), 2u);  // degenerate nets dropped
  EXPECT_EQ(g.nets_of[1].size(), 2u);
  EXPECT_THROW(Hypergraph::from_nets(2, {{0, 5}}), std::invalid_argument);
}

TEST(Hypergraph, CutSize) {
  const auto g = Hypergraph::from_nets(4, {{0, 1}, {2, 3}, {1, 2}});
  Bipartition p;
  p.side = {false, false, true, true};
  EXPECT_EQ(cut_size(g, p), 1);
  p.side = {false, true, false, true};
  EXPECT_EQ(cut_size(g, p), 3);
}

TEST(Hypergraph, RandomBipartitionBalanced) {
  util::Rng rng(211);
  const auto g = two_clusters(10, 2);
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = random_bipartition(g, rng);
    EXPECT_TRUE(is_balanced(p, 0));
  }
}

TEST(Fm, FindsTheClusterCut) {
  util::Rng rng(212);
  const auto g = two_clusters(16, 3);
  FmStats stats;
  const auto p = fm_partition(g, rng, {}, &stats);
  EXPECT_TRUE(is_balanced(p, 2));
  // Optimal is 3 (the bridges); FM must get close from a random start.
  EXPECT_LE(stats.final_cut, 6);
  EXPECT_LT(stats.final_cut, stats.initial_cut);
  EXPECT_GE(stats.passes, 1);
}

TEST(Fm, NeverWorsensAndStaysBalanced) {
  util::Rng rng(213);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 120;
  const auto prob = gen::generate_placement(gopt, rng);
  const auto g = Hypergraph::from_placement(prob);
  for (int trial = 0; trial < 5; ++trial) {
    const auto start = random_bipartition(g, rng);
    const int before = cut_size(g, start);
    FmStats stats;
    const auto refined = fm_refine(g, start, {}, &stats);
    EXPECT_LE(stats.final_cut, before);
    EXPECT_EQ(cut_size(g, refined), stats.final_cut);
    EXPECT_TRUE(is_balanced(refined, 2));
  }
}

TEST(Fm, RespectsBalanceTolerance) {
  util::Rng rng(214);
  const auto g = two_clusters(8, 1);
  FmOptions opt;
  opt.balance_tolerance = 4;
  const auto p = fm_partition(g, rng, opt);
  EXPECT_TRUE(is_balanced(p, 4));
}

TEST(Kl, ImprovesTwoClusterCut) {
  util::Rng rng(215);
  const auto g = two_clusters(8, 2);
  const auto start = random_bipartition(g, rng);
  KlStats stats;
  const auto p = kl_refine(g, start, 8, &stats);
  EXPECT_LE(stats.final_cut, stats.initial_cut);
  EXPECT_TRUE(is_balanced(p, 0));  // swaps preserve exact balance
  EXPECT_LE(stats.final_cut, 5);
}

TEST(FmVsKl, FmAtLeastAsGoodOnClusters) {
  util::Rng rng(216);
  const auto g = two_clusters(12, 2);
  int fm_total = 0, kl_total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto start = random_bipartition(g, rng);
    FmStats fs;
    fm_refine(g, start, {}, &fs);
    KlStats ks;
    kl_refine(g, start, 8, &ks);
    fm_total += fs.final_cut;
    kl_total += ks.final_cut;
  }
  EXPECT_LE(fm_total, kl_total + 2);  // FM should not lose meaningfully
}

// Property: FM cut equals recomputed cut (internal bookkeeping integrity)
// across seeds and sizes.
class FmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FmPropertyTest, InternalCutBookkeepingConsistent) {
  util::Rng rng(1300 + static_cast<std::uint64_t>(GetParam()));
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 40 + GetParam() * 20;
  const auto prob = gen::generate_placement(gopt, rng);
  const auto g = Hypergraph::from_placement(prob);
  FmStats stats;
  const auto p = fm_partition(g, rng, {}, &stats);
  EXPECT_EQ(cut_size(g, p), stats.final_cut);
  EXPECT_TRUE(is_balanced(p, 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace l2l::partition
