// Cross-module integration tests: the same question answered by two
// independent engines must agree (URP vs BDD vs SAT vs truth tables),
// and multi-stage pipelines must preserve functionality end to end.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cubes/urp.hpp"
#include "espresso/minimize.hpp"
#include "espresso/pla.hpp"
#include "gen/function_gen.hpp"
#include "mls/script.hpp"
#include "network/blif.hpp"
#include "network/cnf.hpp"
#include "network/equivalence.hpp"
#include "repair/repair.hpp"
#include "sat/solver.hpp"
#include "techmap/mapper.hpp"
#include "util/rng.hpp"

namespace l2l {
namespace {

// Build a BDD for a cube cover.
bdd::Bdd cover_to_bdd(const cubes::Cover& f, bdd::Manager& mgr) {
  bdd::Bdd r = mgr.zero();
  for (const auto& c : f.cubes()) {
    bdd::Bdd term = mgr.one();
    for (int v = 0; v < f.num_vars(); ++v) {
      if (c.code(v) == cubes::Pcn::kPos) term = term & mgr.var(v);
      if (c.code(v) == cubes::Pcn::kNeg) term = term & mgr.nvar(v);
    }
    r = r | term;
  }
  return r;
}

TEST(CrossCheck, UrpAndBddAgreeOnTautologyAndComplement) {
  util::Rng rng(201);
  for (int trial = 0; trial < 40; ++trial) {
    const auto f = gen::random_cover(5, 1 + static_cast<int>(rng.next_below(7)), rng);
    bdd::Manager mgr(5);
    const auto fb = cover_to_bdd(f, mgr);
    EXPECT_EQ(cubes::is_tautology(f), fb.is_one());
    const auto fc = cubes::complement(f);
    EXPECT_TRUE(cover_to_bdd(fc, mgr) == !fb);
  }
}

TEST(CrossCheck, BddSatCountVsSatEnumeration) {
  // Count models of a CNF with BDDs, check one SAT model satisfies it.
  util::Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    const int nv = 6;
    std::vector<std::vector<sat::Lit>> clauses;
    bdd::Manager mgr(nv);
    bdd::Bdd formula = mgr.one();
    for (int k = 0; k < 10; ++k) {
      std::vector<sat::Lit> clause;
      bdd::Bdd cb = mgr.zero();
      for (int j = 0; j < 3; ++j) {
        const int v = static_cast<int>(rng.next_below(nv));
        const bool neg = rng.next_bool();
        clause.push_back(sat::Lit(v, neg));
        cb = cb | (neg ? mgr.nvar(v) : mgr.var(v));
      }
      clauses.push_back(clause);
      formula = formula & cb;
    }
    sat::Solver solver;
    solver.reserve_vars(nv);
    bool consistent = true;
    for (const auto& c : clauses) consistent = solver.add_clause(c) && consistent;
    const auto verdict = consistent ? solver.solve() : sat::LBool::kFalse;
    EXPECT_EQ(verdict == sat::LBool::kTrue, !formula.is_zero());
    if (verdict == sat::LBool::kTrue) {
      std::vector<bool> model;
      for (int v = 0; v < nv; ++v) model.push_back(solver.model_value(v));
      EXPECT_TRUE(formula.eval(model));
    }
  }
}

TEST(CrossCheck, EquivalenceMethodsAgreeOnMutants) {
  // For each mutant network, BDD-based and SAT-based checking must return
  // the same verdict.
  util::Rng rng(203);
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 5;
  gopt.num_nodes = 8;
  gopt.num_outputs = 2;
  int disagreements = 0, inequivalent_seen = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto spec = gen::random_network(gopt, rng);
    auto mutant = network::parse_blif(network::write_blif(spec));
    if (trial % 2 == 0) repair::inject_error(mutant, rng);
    const auto r1 =
        network::check_equivalence(spec, mutant, network::EquivalenceMethod::kBdd);
    const auto r2 =
        network::check_equivalence(spec, mutant, network::EquivalenceMethod::kSat);
    if (r1.equivalent != r2.equivalent) ++disagreements;
    if (!r1.equivalent) ++inequivalent_seen;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(inequivalent_seen, 0);  // the sweep exercised the UNSAT side too
}

TEST(Pipeline, PlaThroughEspressoStaysEquivalent) {
  // PLA -> minimize -> rebuild as network -> equivalence vs original.
  const auto pla = espresso::parse_pla(
      ".i 4\n.o 2\n"
      "0000 10\n0001 10\n0011 10\n0111 11\n1111 01\n1001 01\n1011 0-\n.e\n");
  for (const auto& out : pla.outputs) {
    const auto minimized = espresso::minimize(out.on, out.dc);
    EXPECT_TRUE(espresso::is_legal_implementation(minimized, out.on, out.dc));
  }
}

TEST(Pipeline, OptimizeThenMapThenVerify) {
  util::Rng rng(204);
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 6;
  gopt.num_nodes = 14;
  gopt.num_outputs = 3;
  for (int trial = 0; trial < 3; ++trial) {
    const auto original = gen::random_network(gopt, rng);
    auto work = network::parse_blif(network::write_blif(original));
    mls::optimize(work);
    const auto mapped =
        techmap::technology_map(work, techmap::default_library(),
                                techmap::MapObjective::kArea);
    // Transitivity: original == optimized == mapped.
    EXPECT_TRUE(network::check_equivalence(original, work,
                                           network::EquivalenceMethod::kBdd)
                    .equivalent);
    EXPECT_TRUE(network::check_equivalence(original, mapped.netlist,
                                           network::EquivalenceMethod::kSat)
                    .equivalent);
  }
}

TEST(Pipeline, RepairAfterOptimizationStillWorks) {
  // Optimize a network, corrupt the optimized version, repair against the
  // *original* spec.
  util::Rng rng(205);
  const auto spec = gen::adder_network(2);
  auto impl = network::parse_blif(network::write_blif(spec));
  mls::optimize(impl);
  repair::inject_error(impl, rng);
  if (!network::check_equivalence(impl, spec, network::EquivalenceMethod::kBdd)
           .equivalent) {
    const auto r = repair::repair_network(impl, spec);
    if (r) {
      EXPECT_TRUE(network::check_equivalence(impl, spec,
                                             network::EquivalenceMethod::kBdd)
                      .equivalent);
    }
    // (Single-gate repair may genuinely be impossible after optimization
    // restructuring; no repair found is an acceptable outcome.)
  }
}

TEST(Pipeline, TseitinModelsMatchSimulation64) {
  // Random network: SAT-enumerate some models and check against the
  // bit-parallel simulator.
  util::Rng rng(206);
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 5;
  gopt.num_nodes = 10;
  const auto net = gen::random_network(gopt, rng);
  sat::Solver solver;
  const auto map = network::encode_network(net, solver);
  ASSERT_EQ(solver.solve(), sat::LBool::kTrue);
  std::vector<std::uint64_t> words(net.inputs().size(), 0);
  // One pattern: the SAT model's input assignment in bit 0.
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    if (solver.model_value(map.node_var[static_cast<std::size_t>(net.inputs()[i])]))
      words[i] |= 1;
  const auto sim = net.simulate64(words);
  for (network::NodeId id = 0; id < net.num_nodes(); ++id)
    EXPECT_EQ(sim[static_cast<std::size_t>(id)] & 1,
              static_cast<std::uint64_t>(
                  solver.model_value(map.node_var[static_cast<std::size_t>(id)])));
}

}  // namespace
}  // namespace l2l
