#include <gtest/gtest.h>

#include <numeric>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "bdd/reorder.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace l2l::bdd {
namespace {

using tt::TruthTable;

// Build a BDD for an arbitrary truth table by Shannon expansion (test
// helper; deliberately independent of the package's ITE machinery).
Bdd from_truth_table(Manager& mgr, const TruthTable& f) {
  Bdd r = mgr.zero();
  for (const auto m : f.minterms()) {
    Bdd cube = mgr.one();
    for (int v = 0; v < f.num_vars(); ++v)
      cube = cube & (((m >> v) & 1) ? mgr.var(v) : mgr.nvar(v));
    r = r | cube;
  }
  return r;
}

TEST(Bdd, ConstantsAreDistinctAndComplementary) {
  Manager mgr(2);
  EXPECT_TRUE(mgr.one().is_one());
  EXPECT_TRUE(mgr.zero().is_zero());
  EXPECT_FALSE(mgr.one() == mgr.zero());
  EXPECT_TRUE((!mgr.one()) == mgr.zero());
}

TEST(Bdd, VariableSemantics) {
  Manager mgr(3);
  const auto x1 = mgr.var(1);
  EXPECT_EQ(x1.to_truth_table(), TruthTable::variable(3, 1));
  EXPECT_EQ(mgr.nvar(1).to_truth_table(), ~TruthTable::variable(3, 1));
  EXPECT_EQ(x1.top_var(), 1);
  EXPECT_THROW(mgr.var(3), std::invalid_argument);
}

TEST(Bdd, CanonicityGivesPointerEquality) {
  Manager mgr(3);
  // (x0 & x1) | (x0 & x2)  ==  x0 & (x1 | x2): same canonical BDD.
  const auto a = (mgr.var(0) & mgr.var(1)) | (mgr.var(0) & mgr.var(2));
  const auto b = mgr.var(0) & (mgr.var(1) | mgr.var(2));
  EXPECT_TRUE(a == b);
}

TEST(Bdd, ComplementIsConstantTime) {
  Manager mgr(4);
  const auto f = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  const auto before = mgr.num_allocated_nodes();
  const auto g = !f;
  EXPECT_EQ(mgr.num_allocated_nodes(), before);  // negation arc: no new nodes
  EXPECT_EQ(g.to_truth_table(), ~f.to_truth_table());
}

TEST(Bdd, OperatorsMatchOracleRandomized) {
  util::Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    Manager mgr(4);
    const auto ft = TruthTable::random(4, rng);
    const auto gt = TruthTable::random(4, rng);
    const auto f = from_truth_table(mgr, ft);
    const auto g = from_truth_table(mgr, gt);
    EXPECT_EQ((f & g).to_truth_table(), ft & gt);
    EXPECT_EQ((f | g).to_truth_table(), ft | gt);
    EXPECT_EQ((f ^ g).to_truth_table(), ft ^ gt);
    EXPECT_EQ((!f).to_truth_table(), ~ft);
  }
}

TEST(Bdd, IteMatchesOracle) {
  util::Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    Manager mgr(4);
    const auto ft = TruthTable::random(4, rng);
    const auto gt = TruthTable::random(4, rng);
    const auto ht = TruthTable::random(4, rng);
    const auto r = from_truth_table(mgr, ft)
                       .ite(from_truth_table(mgr, gt), from_truth_table(mgr, ht));
    EXPECT_EQ(r.to_truth_table(), (ft & gt) | (~ft & ht));
  }
}

TEST(Bdd, CofactorComposeQuantify) {
  util::Rng rng(33);
  for (int trial = 0; trial < 15; ++trial) {
    Manager mgr(4);
    const auto ft = TruthTable::random(4, rng);
    const auto gt = TruthTable::random(4, rng);
    const auto f = from_truth_table(mgr, ft);
    const auto g = from_truth_table(mgr, gt);
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(f.cofactor(v, true).to_truth_table(), ft.cofactor(v, true));
      EXPECT_EQ(f.cofactor(v, false).to_truth_table(), ft.cofactor(v, false));
      EXPECT_EQ(f.exists(v).to_truth_table(), ft.exists(v));
      EXPECT_EQ(f.forall(v).to_truth_table(), ft.forall(v));
      EXPECT_EQ(f.boolean_difference(v).to_truth_table(),
                ft.boolean_difference(v));
      // compose: f[x_v <- g] pointwise.
      const auto composed = f.compose(v, g).to_truth_table();
      const auto x = TruthTable::variable(4, v);
      const auto expect =
          (gt & ft.cofactor(v, true)) | (~gt & ft.cofactor(v, false));
      EXPECT_EQ(composed, expect);
    }
  }
}

TEST(Bdd, MultiVarQuantification) {
  Manager mgr(3);
  const auto f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  EXPECT_TRUE(f.exists({0, 1, 2}).is_one());
  EXPECT_TRUE(f.forall({0, 1, 2}).is_zero());
  // forall x2 . f  =  x0 & x1  (must hold when x2=0).
  EXPECT_TRUE(f.forall(2) == (mgr.var(0) & mgr.var(1)));
}

TEST(Bdd, ImpliesAndTautologyChecks) {
  Manager mgr(3);
  const auto f = mgr.var(0) & mgr.var(1);
  const auto g = mgr.var(0);
  EXPECT_TRUE(f.implies(g));
  EXPECT_FALSE(g.implies(f));
  EXPECT_TRUE((f | !f).is_one());
  EXPECT_TRUE((f & !f).is_zero());
}

TEST(Bdd, SatCountMatchesOracle) {
  util::Rng rng(34);
  for (int trial = 0; trial < 25; ++trial) {
    Manager mgr(5);
    const auto ft = TruthTable::random(5, rng);
    EXPECT_EQ(from_truth_table(mgr, ft).sat_count(), ft.count_ones());
  }
}

TEST(Bdd, SatCountConstants) {
  Manager mgr(6);
  EXPECT_EQ(mgr.one().sat_count(), 64u);
  EXPECT_EQ(mgr.zero().sat_count(), 0u);
  EXPECT_EQ(mgr.var(3).sat_count(), 32u);
}

TEST(Bdd, OneSatFindsSatisfyingAssignment) {
  util::Rng rng(35);
  for (int trial = 0; trial < 25; ++trial) {
    Manager mgr(5);
    const auto ft = TruthTable::random(5, rng);
    const auto f = from_truth_table(mgr, ft);
    const auto sat = f.one_sat();
    if (ft.is_constant_zero()) {
      EXPECT_FALSE(sat.has_value());
      continue;
    }
    ASSERT_TRUE(sat.has_value());
    // Complete don't-cares to 0 and evaluate.
    std::vector<bool> a(5);
    for (int v = 0; v < 5; ++v) a[static_cast<std::size_t>(v)] = (*sat)[static_cast<std::size_t>(v)] == 1;
    EXPECT_TRUE(f.eval(a));
  }
}

TEST(Bdd, SupportListsDependentVars) {
  Manager mgr(5);
  const auto f = (mgr.var(1) & mgr.var(3)) | mgr.var(1);
  EXPECT_EQ(f.support(), (std::vector<int>{1}));  // absorbs to x1
  const auto g = mgr.var(0) ^ mgr.var(4);
  EXPECT_EQ(g.support(), (std::vector<int>{0, 4}));
  EXPECT_TRUE(mgr.one().support().empty());
}

TEST(Bdd, SizeOfXorChainIsLinear) {
  // XOR of n variables has exactly n nodes with complement edges.
  Manager mgr(8);
  Bdd f = mgr.zero();
  for (int v = 0; v < 8; ++v) f = f ^ mgr.var(v);
  EXPECT_EQ(f.size(), 8u);
}

TEST(Bdd, SharedDagSizeCountsOnce) {
  Manager mgr(4);
  const auto f = mgr.var(0) & mgr.var(1);
  const auto g = f | mgr.var(2);
  EXPECT_LE(dag_size({f, g}), f.size() + g.size());
  EXPECT_GE(dag_size({f, g}), g.size());
}

TEST(Bdd, GarbageCollectReclaimsDeadNodes) {
  Manager mgr(10);
  {
    Bdd f = mgr.one();
    for (int v = 0; v < 10; ++v) f = f & mgr.var(v);
    EXPECT_GT(mgr.num_live_nodes(), 0u);
  }
  // All handles dropped: nodes are dead, a GC reclaims them.
  mgr.garbage_collect();
  EXPECT_EQ(mgr.num_live_nodes(), 0u);
  EXPECT_GT(mgr.gc_count(), 0);
  // The manager is still usable after collection.
  const auto g = mgr.var(0) | mgr.var(9);
  EXPECT_EQ(g.sat_count(), 768u);  // 3/4 of 2^10
}

TEST(Bdd, HandleCopySemantics) {
  Manager mgr(2);
  Bdd a = mgr.var(0);
  Bdd b = a;           // copy
  Bdd c = std::move(a);  // move leaves a null
  EXPECT_TRUE(a.is_null());
  EXPECT_TRUE(b == c);
  b = b;  // self-assignment safe
  EXPECT_FALSE(b.is_null());
  EXPECT_THROW(a.sat_count(), std::logic_error);
}

TEST(Bdd, MixingManagersThrows) {
  Manager m1(2), m2(2);
  EXPECT_THROW(m1.var(0) & m2.var(0), std::logic_error);
}

TEST(Bdd, DotExportMentionsAllNodes) {
  Manager mgr(3);
  const auto f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const auto dot = f.to_dot("f");
  EXPECT_NE(dot.find("digraph f"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x2"), std::string::npos);
}

// ---- Reordering -------------------------------------------------------

TEST(Reorder, IdentityOrderPreservesSize) {
  Manager mgr(4);
  const auto f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3));
  const auto res = reorder_with_order({f}, {0, 1, 2, 3});
  EXPECT_EQ(res.size_before, res.size_after);
  EXPECT_EQ(res.roots[0].to_truth_table(), f.to_truth_table());
}

TEST(Reorder, PermutedFunctionIsConsistent) {
  Manager mgr(4);
  const auto f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3));
  const std::vector<int> order{3, 1, 0, 2};
  const auto res = reorder_with_order({f}, order);
  // Check semantics: new var k = old var order[k].
  const auto ft = f.to_truth_table();
  const auto gt = res.roots[0].to_truth_table();
  for (std::uint64_t m = 0; m < 16; ++m) {
    std::uint64_t pm = 0;  // permuted minterm index
    for (int k = 0; k < 4; ++k)
      if ((m >> order[static_cast<std::size_t>(k)]) & 1) pm |= 1ull << k;
    EXPECT_EQ(gt.get(pm), ft.get(m));
  }
}

TEST(Reorder, InterleavedComparatorShrinksUnderGoodOrder) {
  // f = (a0<=>b0)(a1<=>b1)(a2<=>b2) with vars a0 a1 a2 b0 b1 b2: the
  // blocked order is exponential, the interleaved order is linear.
  constexpr int kBits = 3;
  Manager mgr(2 * kBits);
  Bdd f = mgr.one();
  for (int i = 0; i < kBits; ++i)
    f = f & !(mgr.var(i) ^ mgr.var(kBits + i));
  const std::vector<int> interleaved{0, 3, 1, 4, 2, 5};
  const auto res = reorder_with_order({f}, interleaved);
  EXPECT_LT(res.size_after, res.size_before);
}

TEST(Reorder, SiftNeverIncreasesSize) {
  util::Rng rng(36);
  for (int trial = 0; trial < 5; ++trial) {
    Manager mgr(6);
    const auto ft = TruthTable::random(6, rng);
    const auto f = from_truth_table(mgr, ft);
    const auto res = sift({f});
    EXPECT_LE(res.size_after, res.size_before);
  }
}

TEST(Reorder, SiftFindsInterleavedOrderForComparator) {
  constexpr int kBits = 4;
  Manager mgr(2 * kBits);
  Bdd f = mgr.one();
  for (int i = 0; i < kBits; ++i)
    f = f & !(mgr.var(i) ^ mgr.var(kBits + i));
  const auto res = sift({f});
  // The optimal interleaved order gives 2 nodes/bit + terminal-side nodes;
  // blocked order needs ~3 * 2^kBits. Sifting must find something linear.
  EXPECT_LE(res.size_after, static_cast<std::size_t>(3 * kBits + 2));
}

TEST(Reorder, RejectsBadPermutations) {
  Manager mgr(3);
  const auto f = mgr.var(0);
  EXPECT_THROW(reorder_with_order({f}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(reorder_with_order({f}, {0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(reorder_with_order({}, {}), std::invalid_argument);
}

// Parameterized: XOR chains of every width keep linear size and correct
// sat counts (2^{n-1} satisfying assignments).
class XorChainTest : public ::testing::TestWithParam<int> {};

TEST_P(XorChainTest, LinearSizeAndHalfSatCount) {
  const int n = GetParam();
  Manager mgr(n);
  Bdd f = mgr.zero();
  for (int v = 0; v < n; ++v) f = f ^ mgr.var(v);
  EXPECT_EQ(f.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(f.sat_count(), 1ull << (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Widths, XorChainTest, ::testing::Values(1, 2, 4, 8, 12, 16));

// Flat-table stress (see util/flat_map.hpp): build well past the unique
// table's initial capacity so it grows several times, then GC -- the
// tombstone-free rebuild must preserve exactly the live nodes and keep
// serving canonical hits afterwards.
TEST(Bdd, FlatUniqueTableSurvivesGrowthAndGcRebuild) {
  const int n = 16;
  Manager mgr(n);
  Bdd f = mgr.zero();
  {
    // A multiplexer tree plus xor chain: thousands of distinct nodes.
    Bdd g = mgr.one();
    for (int v = 0; v < n; ++v) {
      f = f ^ mgr.var(v);
      g = (mgr.var(v) & g) | (mgr.nvar(v) & f);
    }
    // Every created node sits in the unique table until GC, so this forces
    // the table through several capacity doublings from its initial 16.
    EXPECT_GT(mgr.stats().nodes_created, 100);
    // g dies here; f (the xor chain, n nodes) stays referenced.
  }
  mgr.garbage_collect();
  EXPECT_EQ(mgr.num_live_nodes(), static_cast<std::size_t>(n));
  EXPECT_EQ(mgr.num_allocated_nodes(), static_cast<std::size_t>(n) + 1);

  // The rebuilt table still canonicalizes. Rebuilding the chain recreates
  // the dead prefix intermediates, but a second rebuild right after must
  // be pure unique-table hits -- zero fresh nodes.
  Bdd f2 = mgr.zero();
  for (int v = 0; v < n; ++v) f2 = f2 ^ mgr.var(v);
  const auto created_after_rebuild = mgr.stats().nodes_created;
  Bdd f3 = mgr.zero();
  for (int v = 0; v < n; ++v) f3 = f3 ^ mgr.var(v);
  EXPECT_EQ(mgr.stats().nodes_created, created_after_rebuild);
  EXPECT_GT(mgr.stats().unique_hits, 0);
  EXPECT_EQ(f2.sat_count(), 1ull << (n - 1));
  EXPECT_EQ((f ^ f2).size(), 0u);  // identical edges -> constant zero
  EXPECT_EQ((f2 ^ f3).size(), 0u);
}

// Dead nodes reclaimed by GC leave free slots that later allocations must
// reuse without confusing the rebuilt unique table.
TEST(Bdd, FlatUniqueTableReusesFreedSlotsAfterGc) {
  Manager mgr(12);
  { Bdd scratch = mgr.var(0) & mgr.var(1) & mgr.var(2) & mgr.var(3); }
  mgr.garbage_collect();
  const auto allocated = mgr.num_allocated_nodes();
  Bdd keep = mgr.var(4) & mgr.var(5) & mgr.var(6);
  EXPECT_GE(mgr.num_allocated_nodes(), allocated);
  EXPECT_EQ(mgr.num_live_nodes(), keep.size());
  // Same structure twice: second build is all unique hits.
  const auto created = mgr.stats().nodes_created;
  Bdd again = mgr.var(4) & mgr.var(5) & mgr.var(6);
  EXPECT_EQ(mgr.stats().nodes_created, created);
}

}  // namespace
}  // namespace l2l::bdd
