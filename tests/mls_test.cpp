#include <gtest/gtest.h>

#include "mls/factor.hpp"
#include "mls/kernels.hpp"
#include "mls/passes.hpp"
#include "mls/script.hpp"
#include "mls/sop.hpp"
#include "network/blif.hpp"
#include "network/equivalence.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::mls {
namespace {

using network::Network;
using network::NodeId;

// Network with inputs a..f and one big node: the textbook kernel example
// f = adf + aef + bdf + bef + cdf + cef + g   (kernels: {a+b+c, d+e, ...}).
struct Fixture {
  Network net;
  NodeId out;
  std::vector<NodeId> in;

  explicit Fixture(const std::string& sop_spec, int num_inputs) {
    for (int i = 0; i < num_inputs; ++i)
      in.push_back(net.add_input(std::string(1, static_cast<char>('a' + i))));
    out = net.add_logic("F", {}, cubes::Cover(0));
    // sop_spec: terms separated by '+', literals as letters, ' = negated.
    Sop sop;
    for (const auto& term_str : util::split(sop_spec, "+")) {
      Term t;
      for (std::size_t k = 0; k < term_str.size(); ++k) {
        if (std::isspace(static_cast<unsigned char>(term_str[k]))) continue;
        const int var = term_str[k] - 'a';
        const bool neg = k + 1 < term_str.size() && term_str[k + 1] == '\'';
        t.push_back(mk_glit(in[static_cast<std::size_t>(var)], neg));
        if (neg) ++k;
      }
      std::sort(t.begin(), t.end());
      sop.push_back(std::move(t));
    }
    set_node_sop(net, out, normalized(std::move(sop)));
    net.mark_output(out);
  }
};

TEST(Sop, RoundTripThroughNode) {
  Fixture fx("ab + c'd", 4);
  const Sop s = sop_of_node(fx.net, fx.out);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(sop_literals(s), 4);
  EXPECT_EQ(sop_to_string(fx.net, s), "a b + c' d");
}

TEST(Sop, TermOps) {
  const Term ab{0, 2}, b{2}, abc{0, 2, 4};
  EXPECT_TRUE(term_contains(abc, ab));
  EXPECT_FALSE(term_contains(ab, abc));
  EXPECT_EQ(term_product(ab, b), ab);
  EXPECT_EQ(term_quotient(abc, b), (Term{0, 4}));
}

TEST(Sop, CommonCubeAndCubeFree) {
  // ab + ac: common cube a.
  const Sop f{{0, 2}, {0, 4}};
  EXPECT_EQ(common_cube(f), Term{0});
  EXPECT_FALSE(is_cube_free(f));
  const Sop g{{0, 2}, {4}};
  EXPECT_TRUE(is_cube_free(g));
}

TEST(Sop, NormalizedDropsContainedTerms) {
  // ab + a -> a.
  const Sop f = normalized({{0, 2}, {0}});
  EXPECT_EQ(f, Sop{{0}});
}

TEST(Sop, DivideTextbook) {
  // f = ac + ad + bc + bd + e; d = a + b -> q = c + d, r = e.
  // encode a=0,b=2,c=4,d=6,e=8.
  const Sop f{{0, 4}, {0, 6}, {2, 4}, {2, 6}, {8}};
  const Sop d{{0}, {2}};
  const auto [q, r] = divide(f, d);
  EXPECT_EQ(q, (Sop{{4}, {6}}));
  EXPECT_EQ(r, (Sop{{8}}));
  // Reconstruction.
  EXPECT_EQ(normalized(multiply_add(d, q, r)), normalized(Sop(f)));
}

TEST(Sop, DivideNonDivisor) {
  const Sop f{{0, 4}};
  const Sop d{{2}};
  const auto [q, r] = divide(f, d);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(r, f);
}

TEST(Kernels, TextbookExample) {
  // f = adf + aef + bdf + bef + cdf + cef + g (Brayton's example):
  // kernels include (d+e), (a+b+c), and f itself... here the co-kernel
  // algebra: all_kernels must find (a+b+c) with co-kernels df, ef, and
  // (d+e) with co-kernels af, bf, cf.
  // encode a..g = 0,2,4,6,8,10,12.
  Sop f;
  for (const int x : {0, 2, 4})
    for (const int y : {6, 8}) f.push_back(Term{x, y, 10});
  f.push_back(Term{12});
  f = normalized(std::move(f));
  const auto ks = all_kernels(f);
  bool found_abc = false, found_de = false;
  for (const auto& k : ks) {
    if (k.kernel == Sop{{0}, {2}, {4}}) found_abc = true;
    if (k.kernel == Sop{{6}, {8}}) found_de = true;
  }
  EXPECT_TRUE(found_abc);
  EXPECT_TRUE(found_de);
  // f itself is cube-free (g has no common literal), so f is a kernel too.
  bool found_self = false;
  for (const auto& k : ks)
    if (k.kernel == f && k.co_kernel.empty()) found_self = true;
  EXPECT_TRUE(found_self);
}

TEST(Kernels, CubeFreeKernelsOnly) {
  Sop f{{0, 4}, {0, 6}, {2, 4}, {2, 6}};
  for (const auto& k : all_kernels(f)) {
    EXPECT_TRUE(is_cube_free(k.kernel))
        << "non-cube-free kernel found";
  }
}

TEST(Kernels, NoKernelsForSingleCube) {
  EXPECT_TRUE(all_kernels(Sop{{0, 2, 4}}).empty());
}

TEST(Kernels, Level0AreKernelFree) {
  Sop f;
  for (const int x : {0, 2, 4})
    for (const int y : {6, 8}) f.push_back(Term{x, y});
  f = normalized(std::move(f));
  const auto l0 = level0_kernels(f);
  EXPECT_FALSE(l0.empty());
  for (const auto& k : l0)
    for (const auto& inner : all_kernels(k.kernel))
      EXPECT_EQ(inner.kernel, k.kernel);
}

TEST(Factor, PreservesFunctionAndSavesLiterals) {
  // f = ac + ad + bc + bd + ae' (classic factoring win).
  Fixture fx("ac + ad + bc + bd + ae'", 5);
  const Sop f = sop_of_node(fx.net, fx.out);
  const Expr e = factor(f);
  EXPECT_EQ(normalized(expr_to_sop(e)), normalized(Sop(f)));
  EXPECT_LT(expr_literals(e), sop_literals(f));
  EXPECT_LE(expr_literals(e), 7);  // (a+b)(c+d) + ae' = 6 literals
}

TEST(Factor, Constants) {
  EXPECT_EQ(factor({}).kind, Expr::Kind::kConst0);
  const Expr one = factor({Term{}});
  EXPECT_EQ(expr_literals(one), 0);
  EXPECT_EQ(expr_to_sop(one), Sop{Term{}});
}

TEST(Factor, RandomSopsRoundTrip) {
  util::Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    Sop f;
    const int nterms = 1 + static_cast<int>(rng.next_below(6));
    for (int t = 0; t < nterms; ++t) {
      Term term;
      const int nlits = 1 + static_cast<int>(rng.next_below(4));
      for (int k = 0; k < nlits; ++k) {
        const int var = static_cast<int>(rng.next_below(5));
        term.push_back(mk_glit(var, false));  // positive-unate random SOPs
      }
      std::sort(term.begin(), term.end());
      term.erase(std::unique(term.begin(), term.end()), term.end());
      f.push_back(std::move(term));
    }
    f = normalized(std::move(f));
    const Expr e = factor(f);
    EXPECT_EQ(normalized(expr_to_sop(e)), f);
    EXPECT_LE(expr_literals(e), sop_literals(f));
  }
}

TEST(Factor, ExprToString) {
  Fixture fx("ac + ad + bc + bd", 4);
  const Expr e = factor(sop_of_node(fx.net, fx.out));
  const auto s = expr_to_string(fx.net, e);
  // Must be a product of two sums, e.g. "(a + b) (c + d)".
  EXPECT_NE(s.find('('), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

// ---- Network passes ---------------------------------------------------

TEST(Passes, SweepFoldsConstantsAndBuffers) {
  auto net = network::parse_blif(
      ".model s\n.inputs a b\n.outputs y\n"
      ".names one\n1\n"
      ".names a buf\n1 1\n"
      ".names one buf b y\n111 1\n"
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  sweep(net);
  net.validate();
  // After sweep, y should depend directly on a and b.
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
  const auto& y = net.node(net.outputs()[0]);
  EXPECT_EQ(y.fanins.size(), 2u);
}

TEST(Passes, EliminateCollapsesSmallNodes) {
  auto net = network::parse_blif(
      ".model e\n.inputs a b c\n.outputs y\n"
      ".names a b t\n11 1\n"
      ".names t c y\n11 1\n"
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  const int n = eliminate(net, 5);
  EXPECT_GE(n, 1);
  net.validate();
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
  EXPECT_EQ(net.num_logic_nodes(), 1);  // t collapsed into y
}

TEST(Passes, EliminateHandlesNegativePhase) {
  auto net = network::parse_blif(
      ".model e\n.inputs a b c\n.outputs y\n"
      ".names a b t\n11 1\n"
      ".names t c y\n01 1\n"   // y = t' c
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  eliminate(net, 5);
  net.validate();
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
}

TEST(Passes, ExtractKernelsSharesLogic) {
  // Two outputs sharing the kernel (c + d).
  auto net = network::parse_blif(
      ".model k\n.inputs a b c d\n.outputs x y\n"
      ".names a c d x\n11- 1\n1-1 1\n"   // x = a(c+d)
      ".names b c d y\n11- 1\n1-1 1\n"   // y = b(c+d)
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  const int lits_before = net.num_literals();
  const int created = extract_kernels(net);
  net.validate();
  EXPECT_GE(created, 1);
  EXPECT_LT(net.num_literals(), lits_before);
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
}

TEST(Passes, ExtractCubesSharesProducts) {
  // abc, abd, abe share cube ab across three outputs (two occurrences are
  // only break-even: 2*(2-1) - 2 = 0; three pay off).
  auto net = network::parse_blif(
      ".model c\n.inputs a b c d e\n.outputs x y z\n"
      ".names a b c x\n111 1\n"
      ".names a b d y\n111 1\n"
      ".names a b e z\n111 1\n"
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  const int created = extract_cubes(net);
  net.validate();
  EXPECT_GE(created, 1);
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
}

TEST(Passes, SimplifyWithSdcUsesUnreachablePatterns) {
  // t = ab, u = a'b; node y sees (t,u) and pattern t=u=1 is impossible.
  auto net = network::parse_blif(
      ".model s\n.inputs a b\n.outputs y\n"
      ".names a b t\n11 1\n"
      ".names a b u\n01 1\n"
      ".names t u y\n10 1\n01 1\n"   // y = t u' + t' u == t + u given SDC
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  const int saved = simplify_with_sdc(net);
  net.validate();
  EXPECT_GT(saved, 0);
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
}

TEST(Script, OptimizePreservesFunctionAndReducesLiterals) {
  auto net = network::parse_blif(
      ".model opt\n.inputs a b c d e\n.outputs x y\n"
      ".names a c d x\n110 1\n1-1 1\n101 1\n"
      ".names b c d e y\n11-0 1\n1-1- 1\n1011 1\n0111 1\n"
      ".end\n");
  const auto before = network::parse_blif(network::write_blif(net));
  const auto stats = optimize(net);
  net.validate();
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd)
          .equivalent);
  EXPECT_TRUE(
      network::check_equivalence(before, net, network::EquivalenceMethod::kSat)
          .equivalent);
  EXPECT_LE(stats.literals_after, stats.literals_before);
  EXPECT_FALSE(stats.to_string().empty());
}

// Property: the full script preserves functionality on random networks.
class ScriptPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ScriptPropertyTest, RandomNetworksStayEquivalent) {
  util::Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < 5; ++i)
    pool.push_back(net.add_input(util::format("i%d", i)));
  for (int k = 0; k < 10; ++k) {
    const int arity = 2 + static_cast<int>(rng.next_below(3));
    std::vector<NodeId> fanins;
    for (int j = 0; j < arity; ++j)
      fanins.push_back(pool[static_cast<std::size_t>(rng.next_below(pool.size()))]);
    cubes::Cover cover(arity);
    const int ncubes = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < ncubes; ++c) {
      cubes::Cube cube(arity);
      for (int v = 0; v < arity; ++v) {
        switch (rng.next_below(3)) {
          case 0: cube.set_code(v, cubes::Pcn::kNeg); break;
          case 1: cube.set_code(v, cubes::Pcn::kPos); break;
          default: break;
        }
      }
      cover.add(std::move(cube));
    }
    pool.push_back(
        net.add_logic(util::format("n%d", k), std::move(fanins), std::move(cover)));
  }
  for (int k = 0; k < 3; ++k)
    net.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(k)]);

  const auto before = network::parse_blif(network::write_blif(net));
  const auto stats = optimize(net);
  net.validate();
  const auto res =
      network::check_equivalence(before, net, network::EquivalenceMethod::kBdd);
  EXPECT_TRUE(res.equivalent) << "failing output: " << res.failing_output;
  EXPECT_LE(stats.literals_after, stats.literals_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace l2l::mls
