#include <gtest/gtest.h>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace l2l::tt {
namespace {

TEST(TruthTable, DefaultIsZero) {
  TruthTable f(3);
  EXPECT_TRUE(f.is_constant_zero());
  EXPECT_EQ(f.count_ones(), 0u);
  EXPECT_EQ(f.num_minterms(), 8u);
}

TEST(TruthTable, FromBitsRoundTrip) {
  const auto f = TruthTable::from_bits("0110");
  EXPECT_EQ(f.to_bits(), "0110");
  EXPECT_EQ(f.num_vars(), 2);
  EXPECT_FALSE(f.get(0));
  EXPECT_TRUE(f.get(1));
}

TEST(TruthTable, FromBitsRejectsNonPowerOfTwo) {
  EXPECT_THROW(TruthTable::from_bits("011"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_bits("01a1"), std::invalid_argument);
}

TEST(TruthTable, VariableProjection) {
  const auto x1 = TruthTable::variable(3, 1);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(x1.get(m), ((m >> 1) & 1) != 0);
}

TEST(TruthTable, ConstantOne) {
  const auto one = TruthTable::constant(4, true);
  EXPECT_TRUE(one.is_constant_one());
  EXPECT_EQ(one.count_ones(), 16u);
}

TEST(TruthTable, XorOfVariables) {
  const auto f = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  EXPECT_EQ(f.to_bits(), "0110");
}

TEST(TruthTable, DeMorgan) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = TruthTable::random(4, rng);
    const auto g = TruthTable::random(4, rng);
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
  }
}

TEST(TruthTable, DoubleComplementIsIdentity) {
  util::Rng rng(2);
  const auto f = TruthTable::random(5, rng);
  EXPECT_EQ(~~f, f);
}

TEST(TruthTable, CofactorShannon) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = TruthTable::random(5, rng);
    for (int v = 0; v < 5; ++v) {
      const auto x = TruthTable::variable(5, v);
      // Shannon expansion: f = x f_x + x' f_x'
      const auto rebuilt =
          (x & f.cofactor(v, true)) | (~x & f.cofactor(v, false));
      EXPECT_EQ(rebuilt, f);
    }
  }
}

TEST(TruthTable, CofactorIndependence) {
  util::Rng rng(4);
  const auto f = TruthTable::random(4, rng);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(f.cofactor(v, true).is_independent_of(v));
    EXPECT_TRUE(f.cofactor(v, false).is_independent_of(v));
  }
}

TEST(TruthTable, QuantificationBracketsFunction) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = TruthTable::random(4, rng);
    for (int v = 0; v < 4; ++v) {
      EXPECT_TRUE(f.forall(v).implies(f));
      EXPECT_TRUE(f.implies(f.exists(v)));
    }
  }
}

TEST(TruthTable, BooleanDifferenceDetectsDependence) {
  // f = x0 x1: df/dx0 = x1.
  const auto f = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  EXPECT_EQ(f.boolean_difference(0), TruthTable::variable(2, 1));
  // Constant functions have zero difference everywhere.
  const auto one = TruthTable::constant(3, true);
  for (int v = 0; v < 3; ++v)
    EXPECT_TRUE(one.boolean_difference(v).is_constant_zero());
}

TEST(TruthTable, ImpliesIsPartialOrder) {
  util::Rng rng(6);
  const auto f = TruthTable::random(4, rng);
  const auto g = TruthTable::random(4, rng);
  EXPECT_TRUE((f & g).implies(f));
  EXPECT_TRUE(f.implies(f | g));
  EXPECT_TRUE(f.implies(f));
}

TEST(TruthTable, MintermsMatchCountOnes) {
  util::Rng rng(7);
  const auto f = TruthTable::random(6, rng);
  EXPECT_EQ(f.minterms().size(), f.count_ones());
  for (const auto m : f.minterms()) EXPECT_TRUE(f.get(m));
}

TEST(TruthTable, LargeArityWordBoundaries) {
  // 8 vars = 256 bits = 4 words; exercise cross-word behaviour.
  util::Rng rng(8);
  const auto f = TruthTable::random(8, rng);
  EXPECT_EQ((f ^ f).count_ones(), 0u);
  EXPECT_EQ((f ^ ~f).count_ones(), 256u);
}

TEST(TruthTable, ArityMismatchThrows) {
  const TruthTable f(2), g(3);
  EXPECT_THROW(f & g, std::invalid_argument);
  EXPECT_THROW(f ^ g, std::invalid_argument);
}

TEST(TruthTable, ZeroVarTables) {
  const auto zero = TruthTable::constant(0, false);
  const auto one = TruthTable::constant(0, true);
  EXPECT_TRUE(zero.is_constant_zero());
  EXPECT_TRUE(one.is_constant_one());
  EXPECT_EQ(one.num_minterms(), 1u);
}

}  // namespace
}  // namespace l2l::tt
