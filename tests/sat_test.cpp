#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace l2l::sat {
namespace {

// Brute-force SAT check of a clause list (oracle for property tests).
bool brute_force_sat(int num_vars, const std::vector<std::vector<Lit>>& cls) {
  for (std::uint64_t m = 0; m < (1ull << num_vars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool any = false;
      for (const Lit p : c) {
        const bool v = (m >> p.var()) & 1;
        if (v != p.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// Pigeonhole principle CNF: n+1 pigeons into n holes -- classically UNSAT
// and exponential for resolution; small n keeps it fast.
void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  // var(p, h) = p * holes + h
  s.reserve_vars(pigeons * holes);
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> at_least;
    for (int h = 0; h < holes; ++h) at_least.push_back(mk_lit(p * holes + h));
    s.add_clause(at_least);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({~mk_lit(p1 * holes + h), ~mk_lit(p2 * holes + h)});
}

TEST(Lit, EncodingRoundTrip) {
  const Lit p = mk_lit(5, true);
  EXPECT_EQ(p.var(), 5);
  EXPECT_TRUE(p.sign());
  EXPECT_EQ((~p).var(), 5);
  EXPECT_FALSE((~p).sign());
  EXPECT_EQ(~~p, p);
}

TEST(Luby, FirstTerms) {
  const std::vector<std::int64_t> expect{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(luby(static_cast<std::int64_t>(i)), expect[i]) << i;
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_satisfies_formula());
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  EXPECT_FALSE(s.add_clause({~mk_lit(a)}));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  s.new_var();
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, TautologyClausesIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(a), ~mk_lit(a)}));
  EXPECT_EQ(s.num_clauses(), 0);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, DuplicateLiteralsDeduped) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({mk_lit(a), mk_lit(a), mk_lit(b)});
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, UnitPropagationChain) {
  // a, a->b, b->c, c->d: all forced true without decisions.
  Solver s;
  s.reserve_vars(4);
  s.add_clause({mk_lit(0)});
  s.add_clause({~mk_lit(0), mk_lit(1)});
  s.add_clause({~mk_lit(1), mk_lit(2)});
  s.add_clause({~mk_lit(2), mk_lit(3)});
  EXPECT_EQ(s.solve(), LBool::kTrue);
  for (Var v = 0; v < 4; ++v) EXPECT_TRUE(s.model_value(v));
  EXPECT_EQ(s.stats().decisions, 0);
}

TEST(Solver, XorChainSat) {
  // (a xor b xor c) = 1 encoded as CNF; satisfiable with odd parity.
  Solver s;
  s.reserve_vars(3);
  s.add_clause({mk_lit(0), mk_lit(1), mk_lit(2)});
  s.add_clause({mk_lit(0), ~mk_lit(1), ~mk_lit(2)});
  s.add_clause({~mk_lit(0), mk_lit(1), ~mk_lit(2)});
  s.add_clause({~mk_lit(0), ~mk_lit(1), mk_lit(2)});
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.model_value(0) ^ s.model_value(1) ^ s.model_value(2));
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 5; ++holes) {
    Solver s;
    add_pigeonhole(s, holes);
    EXPECT_EQ(s.solve(), LBool::kFalse) << "holes=" << holes;
    EXPECT_GT(s.stats().conflicts, 0);
  }
}

TEST(Solver, PigeonholeSatWhenEqual) {
  // n pigeons, n holes is satisfiable: drop the extra pigeon's clauses.
  Solver s;
  const int n = 4;
  s.reserve_vars(n * n);
  for (int p = 0; p < n; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < n; ++h) c.push_back(mk_lit(p * n + h));
    s.add_clause(c);
  }
  for (int h = 0; h < n; ++h)
    for (int p1 = 0; p1 < n; ++p1)
      for (int p2 = p1 + 1; p2 < n; ++p2)
        s.add_clause({~mk_lit(p1 * n + h), ~mk_lit(p2 * n + h)});
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.model_satisfies_formula());
}

TEST(Solver, RandomFormulasMatchBruteForce) {
  util::Rng rng(41);
  int sat_count = 0, unsat_count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int nv = 4 + static_cast<int>(rng.next_below(5));     // 4..8 vars
    const int nc = static_cast<int>(rng.next_below(40)) + nv;  // near threshold
    std::vector<std::vector<Lit>> cls;
    for (int i = 0; i < nc; ++i) {
      std::vector<Lit> c;
      for (int k = 0; k < 3; ++k)
        c.push_back(Lit(static_cast<Var>(rng.next_below(static_cast<std::uint64_t>(nv))),
                        rng.next_bool()));
      cls.push_back(c);
    }
    Solver s;
    s.reserve_vars(nv);
    bool ok = true;
    for (const auto& c : cls) ok = s.add_clause(c) && ok;
    const bool expect = brute_force_sat(nv, cls);
    const LBool got = ok ? s.solve() : LBool::kFalse;
    EXPECT_EQ(got == LBool::kTrue, expect) << "trial " << trial;
    if (got == LBool::kTrue) {
      EXPECT_TRUE(s.model_satisfies_formula());
      ++sat_count;
    } else {
      ++unsat_count;
    }
  }
  EXPECT_GT(sat_count, 10);
  EXPECT_GT(unsat_count, 10);
}

TEST(Solver, AblationsStillCorrect) {
  // VSIDS off / restarts off must not change answers, only performance.
  for (const bool vsids : {false, true}) {
    for (const bool restarts : {false, true}) {
      SolverOptions opt;
      opt.use_vsids = vsids;
      opt.use_restarts = restarts;
      Solver s(opt);
      add_pigeonhole(s, 4);
      EXPECT_EQ(s.solve(), LBool::kFalse);
    }
  }
}

TEST(Solver, ConflictLimitReturnsUndef) {
  SolverOptions opt;
  opt.conflict_limit = 1;
  Solver s(opt);
  add_pigeonhole(s, 5);
  EXPECT_EQ(s.solve(), LBool::kUndef);
}

TEST(Solver, IncrementalSolveWithAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({mk_lit(a), mk_lit(b)});
  EXPECT_EQ(s.solve({~mk_lit(a)}), LBool::kTrue);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({~mk_lit(a), ~mk_lit(b)}), LBool::kFalse);
  // Solver still usable: without assumptions it is satisfiable.
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, IncrementalAddClauseBetweenSolves) {
  Solver s;
  s.reserve_vars(2);
  s.add_clause({mk_lit(0), mk_lit(1)});
  EXPECT_EQ(s.solve(), LBool::kTrue);
  s.add_clause({~mk_lit(0)});
  s.add_clause({~mk_lit(1)});
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, AddClauseValidatesVariables) {
  Solver s;
  s.new_var();
  EXPECT_THROW(s.add_clause({mk_lit(3)}), std::invalid_argument);
}

TEST(Solver, LearnsClausesOnHardInstance) {
  Solver s;
  add_pigeonhole(s, 5);
  s.solve();
  EXPECT_GT(s.stats().learnt_clauses, 0);
  EXPECT_GT(s.stats().propagations, 0);
}

TEST(Dimacs, ParseBasic) {
  const auto f = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(f.num_vars, 3);
  ASSERT_EQ(f.clauses.size(), 2u);
  EXPECT_EQ(f.clauses[0][0], mk_lit(0, false));
  EXPECT_EQ(f.clauses[0][1], mk_lit(1, true));
}

TEST(Dimacs, ParseMultiLineClause) {
  const auto f = parse_dimacs("p cnf 2 1\n1\n-2\n0\n");
  ASSERT_EQ(f.clauses.size(), 1u);
  EXPECT_EQ(f.clauses[0].size(), 2u);
}

TEST(Dimacs, ParseErrors) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n2 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 2 5\n1 0\n"), std::invalid_argument);
}

TEST(Dimacs, WriteParseRoundTrip) {
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{mk_lit(0), ~mk_lit(2)}, {mk_lit(1)}};
  const auto g = parse_dimacs(write_dimacs(f));
  EXPECT_EQ(g.num_vars, f.num_vars);
  EXPECT_EQ(g.clauses, f.clauses);
}

TEST(Dimacs, EndToEndSolve) {
  const auto f = parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n");
  Solver s;
  ASSERT_TRUE(load_into_solver(f, s));
  const auto r = s.solve();
  EXPECT_EQ(r, LBool::kTrue);
  const auto text = result_text(s, r);
  EXPECT_NE(text.find("SATISFIABLE"), std::string::npos);
  EXPECT_NE(text.find(" 2 "), std::string::npos);  // var 2 must be true
}

// Parameterized sweep: random instances at several clause/var ratios keep
// solver agreement with brute force (the classic phase-transition sweep).
class RatioTest : public ::testing::TestWithParam<double> {};

TEST_P(RatioTest, AgreesWithBruteForce) {
  const double ratio = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(ratio * 1000));
  for (int trial = 0; trial < 30; ++trial) {
    const int nv = 6;
    const int nc = static_cast<int>(ratio * nv);
    std::vector<std::vector<Lit>> cls;
    for (int i = 0; i < nc; ++i) {
      std::vector<Lit> c;
      while (c.size() < 3) {
        const Lit p(static_cast<Var>(rng.next_below(nv)), rng.next_bool());
        bool dup = false;
        for (const Lit q : c) dup |= q.var() == p.var();
        if (!dup) c.push_back(p);
      }
      cls.push_back(c);
    }
    Solver s;
    s.reserve_vars(nv);
    bool ok = true;
    for (const auto& c : cls) ok = s.add_clause(c) && ok;
    const LBool got = ok ? s.solve() : LBool::kFalse;
    EXPECT_EQ(got == LBool::kTrue, brute_force_sat(nv, cls));
  }
}

INSTANTIATE_TEST_SUITE_P(ClauseVarRatios, RatioTest,
                         ::testing::Values(1.0, 2.0, 3.0, 4.3, 6.0, 8.0));

}  // namespace
}  // namespace l2l::sat
