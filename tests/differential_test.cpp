// Differential/property tier (ctest label `diff`): ~200 seeded random
// functions from gen::random_cover, cross-checked across four independent
// implementations of Boolean semantics:
//
//   truth table   -- Cover::to_truth_table(), the ground-truth oracle
//   BDD           -- an OR-of-AND build through bdd::Manager, read back
//                    via Bdd::to_truth_table()
//   SAT           -- a Tseitin encoding of the cover into l2l::sat,
//                    checked for satisfiability, tautology, and
//                    (via assumption miters) equivalence
//   espresso      -- minimize() output must stay equivalent to its input
//                    (and stay within the don't-care bounds when a DC
//                    cover is supplied)
//   exact ESOP    -- esop::synthesize_minimum must return a proven-minimal
//                    XOR cover that folds back to the same truth table and
//                    respects the theorem-backed size bounds against the
//                    minterm fallback and the espresso SOP (its own
//                    200-seed sweep below)
//
// A disagreement anywhere is shrunk to a minimal failing cover -- greedy
// cube removal, then literal widening -- and printed with its seed, so a
// red run hands the debugger a two-line reproduction, not a 40-cube blob.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cubes/cover.hpp"
#include "esop/esop.hpp"
#include "espresso/minimize.hpp"
#include "gen/function_gen.hpp"
#include "network/bdd_build.hpp"
#include "network/network.hpp"
#include "sat/solver.hpp"
#include "sema/sema.hpp"
#include "sat/types.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using l2l::cubes::Cover;
using l2l::cubes::Cube;
using l2l::cubes::Pcn;
using l2l::tt::TruthTable;

// ---- BDD oracle ---------------------------------------------------------

l2l::bdd::Bdd bdd_from_cover(l2l::bdd::Manager& mgr, const Cover& f) {
  l2l::bdd::Bdd out = mgr.zero();
  for (const Cube& c : f.cubes()) {
    l2l::bdd::Bdd product = mgr.one();
    for (int v = 0; v < f.num_vars(); ++v) {
      switch (c.code(v)) {
        case Pcn::kPos: product = product & mgr.var(v); break;
        case Pcn::kNeg: product = product & mgr.nvar(v); break;
        case Pcn::kEmpty: product = mgr.zero(); break;
        case Pcn::kDontCare: break;
      }
    }
    out = out | product;
  }
  return out;
}

// ---- SAT oracle ---------------------------------------------------------

/// Tseitin-encodes `f` into `solver` over input vars 0..num_vars-1
/// (created by the caller) and returns the literal representing the
/// cover's output: aux var c_j <-> AND(literals of cube j), output
/// <-> OR(c_j).
l2l::sat::Lit encode_cover(l2l::sat::Solver& solver, const Cover& f) {
  using l2l::sat::Lit;
  const l2l::sat::Var out = solver.new_var();
  std::vector<Lit> any_cube;  // out -> c_1 | ... | c_m
  any_cube.push_back(Lit(out, true));
  for (const Cube& c : f.cubes()) {
    bool contradiction = false;
    std::vector<Lit> lits;
    for (int v = 0; v < f.num_vars(); ++v) {
      switch (c.code(v)) {
        case Pcn::kPos: lits.push_back(Lit(v, false)); break;
        case Pcn::kNeg: lits.push_back(Lit(v, true)); break;
        case Pcn::kEmpty: contradiction = true; break;
        case Pcn::kDontCare: break;
      }
    }
    if (contradiction) continue;
    const l2l::sat::Var cj = solver.new_var();
    std::vector<Lit> reverse;  // lits all true -> c_j
    reverse.push_back(Lit(cj, false));
    for (const Lit& l : lits) {
      solver.add_clause({Lit(cj, true), l});  // c_j -> each literal
      reverse.push_back(~l);
    }
    solver.add_clause(reverse);
    solver.add_clause({Lit(cj, true), Lit(out, false)});  // c_j -> out
    any_cube.push_back(Lit(cj, false));
  }
  solver.add_clause(any_cube);
  return Lit(out, false);
}

struct SatOracle {
  l2l::sat::Solver solver;
  l2l::sat::Lit out{0, false};

  explicit SatOracle(const Cover& f) {
    for (int v = 0; v < f.num_vars(); ++v) solver.new_var();
    out = encode_cover(solver, f);
  }
  bool satisfiable() {
    return solver.solve({out}) == l2l::sat::LBool::kTrue;
  }
  bool tautology() {
    return solver.solve({l2l::sat::Lit(out.var(), true)}) ==
           l2l::sat::LBool::kFalse;
  }
};

/// SAT-checked equivalence of two covers over the same inputs: encode
/// both into one solver and probe both difference directions with
/// assumptions. UNSAT both ways <=> equivalent.
bool sat_equivalent(const Cover& a, const Cover& b) {
  using l2l::sat::Lit;
  l2l::sat::Solver solver;
  for (int v = 0; v < a.num_vars(); ++v) solver.new_var();
  const Lit fa = encode_cover(solver, a);
  const Lit fb = encode_cover(solver, b);
  if (solver.solve({fa, Lit(fb.var(), true)}) == l2l::sat::LBool::kTrue)
    return false;  // a & !b satisfiable
  if (solver.solve({Lit(fa.var(), true), fb}) == l2l::sat::LBool::kTrue)
    return false;  // !a & b satisfiable
  return true;
}

// ---- the cross-check ----------------------------------------------------

/// Runs every differential property on `f` (with optional don't-care
/// cover `dc` for the espresso legality check). Returns std::nullopt when
/// all oracles agree, else a description of the first disagreement.
std::optional<std::string> cross_check(const Cover& f, const Cover* dc) {
  const TruthTable want = f.to_truth_table();

  // BDD vs truth table.
  {
    l2l::bdd::Manager mgr(f.num_vars());
    const TruthTable got = bdd_from_cover(mgr, f).to_truth_table();
    if (!(got == want)) return "BDD truth table != cover truth table";
  }

  // SAT vs truth table.
  {
    SatOracle sat(f);
    if (sat.satisfiable() != !want.is_constant_zero())
      return "SAT satisfiability disagrees with truth table";
    if (sat.tautology() != want.is_constant_one())
      return "SAT tautology check disagrees with truth table";
  }

  // espresso::minimize must preserve the function exactly (empty DC)...
  {
    const Cover g = l2l::espresso::minimize(f);
    if (!(g.to_truth_table() == want))
      return "espresso cover truth table != input truth table";
    if (!sat_equivalent(f, g))
      return "SAT miter says espresso cover != input";
    if (!l2l::espresso::is_legal_implementation(g, f, Cover(f.num_vars())))
      return "espresso cover fails is_legal_implementation (no DC)";
  }

  // ...and stay within [f \ dc, f | dc] when a DC cover is given.
  if (dc != nullptr) {
    const Cover g =
        l2l::espresso::minimize(f, *dc, l2l::espresso::MinimizeOptions{},
                                nullptr);
    if (!l2l::espresso::is_legal_implementation(g, f, *dc))
      return "espresso cover fails is_legal_implementation (with DC)";
    const TruthTable got = g.to_truth_table();
    const TruthTable dct = dc->to_truth_table();
    for (std::uint64_t m = 0; m < want.num_minterms(); ++m) {
      if (dct.get(m)) continue;  // don't-care point: either value legal
      if (got.get(m) != want.get(m))
        return "espresso cover leaves the DC bounds";
    }
  }
  return std::nullopt;
}

// ---- shrinking ----------------------------------------------------------

/// Greedily shrinks `f` while `cross_check(f, dc)` still fails: first
/// whole-cube removal, then widening single literals to don't-care. The
/// result is locally minimal -- removing any one cube or literal makes
/// the failure disappear.
Cover shrink_failure(Cover f, const Cover* dc) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Cube removal.
    for (int i = 0; i < f.size(); ++i) {
      std::vector<Cube> keep;
      for (int j = 0; j < f.size(); ++j)
        if (j != i) keep.push_back(f.cubes()[static_cast<std::size_t>(j)]);
      Cover candidate(f.num_vars(), keep);
      if (cross_check(candidate, dc).has_value()) {
        f = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Literal widening.
    for (int i = 0; i < f.size() && !changed; ++i) {
      for (int v = 0; v < f.num_vars() && !changed; ++v) {
        const Cube& c = f.cubes()[static_cast<std::size_t>(i)];
        if (c.code(v) == Pcn::kDontCare) continue;
        std::vector<Cube> cubes = f.cubes();
        cubes[static_cast<std::size_t>(i)].set_code(v, Pcn::kDontCare);
        Cover candidate(f.num_vars(), std::move(cubes));
        if (cross_check(candidate, dc).has_value()) {
          f = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return f;
}

// ---- the 200-seed sweep -------------------------------------------------

TEST(DifferentialTest, TwoHundredRandomFunctionsAgreeAcrossEngines) {
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    l2l::util::Rng rng(0xd1ffull * 1000003ull + seed);
    const int num_vars = 3 + static_cast<int>(rng.next_below(4));   // 3..6
    const int num_cubes = 1 + static_cast<int>(rng.next_below(8));  // 1..8
    const Cover f = l2l::gen::random_cover(num_vars, num_cubes, rng);
    // A small random DC cover on every other seed exercises the
    // minimize-with-DC legality bounds.
    std::optional<Cover> dc;
    if (seed % 2 == 1)
      dc = l2l::gen::random_cover(num_vars,
                                  static_cast<int>(rng.next_below(3)), rng);
    const Cover* dcp = dc ? &*dc : nullptr;

    const auto failure = cross_check(f, dcp);
    if (failure.has_value()) {
      const Cover minimal = shrink_failure(f, dcp);
      const auto why = cross_check(minimal, dcp);
      FAIL() << "seed " << seed << ": " << *failure
             << "\nminimal failing cover (" << minimal.num_vars()
             << " vars):\n"
             << minimal.to_string()
             << (dc ? "with DC cover:\n" + dc->to_string() : std::string())
             << "shrunk failure: " << why.value_or(*failure);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

// Directed corner cases the random sweep is unlikely to hit exactly.
TEST(DifferentialTest, ConstantAndSingleLiteralCovers) {
  // Constant 0 (empty cover) and constant 1 (universal cube).
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(cross_check(Cover(n), nullptr), std::nullopt) << "empty, n=" << n;
    EXPECT_EQ(cross_check(Cover::universal(n), nullptr), std::nullopt)
        << "universal, n=" << n;
    // Each single positive / negative literal.
    for (int v = 0; v < n; ++v) {
      Cube pos(n), neg(n);
      pos.set_code(v, Pcn::kPos);
      neg.set_code(v, Pcn::kNeg);
      EXPECT_EQ(cross_check(Cover(n, {pos}), nullptr), std::nullopt);
      EXPECT_EQ(cross_check(Cover(n, {neg}), nullptr), std::nullopt);
    }
  }
}

// ---- exact ESOP vs the oracles ------------------------------------------

/// Differential properties of the exact-ESOP engine on one cover:
///   equivalence  -- XOR-folding the synthesized terms over all minterms
///                   (esop_truth_table) must reproduce the cover's truth
///                   table, and the SAT miter must agree in OR semantics
///                   when the ESOP is re-read as a plain cover of its own
///                   truth table's minterm expansion;
///   minimality   -- the proven-minimal flag must be set, and the exact
///                   term count must respect both theorem-backed upper
///                   bounds: the |ON|-minterm fallback, and the GF(2)
///                   inclusion-exclusion expansion of the espresso SOP
///                   (OR of s cubes == XOR of its <= 2^s - 1 nonempty
///                   subset products, each of which is a cube). The naive
///                   "exact ESOP <= espresso SOP size" is NOT a theorem:
///                   this very harness falsified it and shrank the
///                   counterexample (see EsopCanExceedSopSize below), so
///                   the sweep checks the bounds that are actually true.
std::optional<std::string> esop_check(const Cover& f) {
  const TruthTable want = f.to_truth_table();
  const auto r = l2l::esop::synthesize_minimum(want);
  if (!r.status.ok())
    return "esop engine returned non-ok on an unguarded run: " +
           r.status.to_string();
  if (!r.minimal) return "esop engine did not prove minimality";
  if (!(l2l::esop::esop_truth_table(r.cover) == want))
    return "esop XOR-fold truth table != cover truth table";
  if (r.terms != r.cover.size())
    return "esop term count disagrees with decoded cover size";
  const auto on_set = static_cast<long long>(want.count_ones());
  if (r.terms > on_set)
    return "exact ESOP (" + std::to_string(r.terms) +
           " terms) larger than the minterm fallback (" +
           std::to_string(on_set) + ")";
  const Cover sop = l2l::espresso::minimize(f);
  if (!(sop.to_truth_table() == want))
    return "espresso cover truth table != input truth table";
  // Subset-product bound, saturated once it can no longer bind.
  if (sop.size() < 20) {
    const long long ie_bound = (1ll << sop.size()) - 1;
    if (r.terms > ie_bound)
      return "exact ESOP (" + std::to_string(r.terms) +
             " terms) above the 2^s-1 inclusion-exclusion bound of the " +
             std::to_string(sop.size()) + "-cube espresso SOP";
  }
  return std::nullopt;
}

/// Same greedy shrink protocol as shrink_failure, but driven by
/// esop_check: the printed cover is minimal for the ESOP disagreement.
Cover shrink_esop_failure(Cover f) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < f.size(); ++i) {
      std::vector<Cube> keep;
      for (int j = 0; j < f.size(); ++j)
        if (j != i) keep.push_back(f.cubes()[static_cast<std::size_t>(j)]);
      Cover candidate(f.num_vars(), keep);
      if (esop_check(candidate).has_value()) {
        f = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    for (int i = 0; i < f.size() && !changed; ++i) {
      for (int v = 0; v < f.num_vars() && !changed; ++v) {
        const Cube& c = f.cubes()[static_cast<std::size_t>(i)];
        if (c.code(v) == Pcn::kDontCare) continue;
        std::vector<Cube> cubes = f.cubes();
        cubes[static_cast<std::size_t>(i)].set_code(v, Pcn::kDontCare);
        Cover candidate(f.num_vars(), std::move(cubes));
        if (esop_check(candidate).has_value()) {
          f = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return f;
}

TEST(DifferentialTest, TwoHundredRandomFunctionsExactEsop) {
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    // Same generator discipline as the four-oracle sweep, offset so the
    // two tests draw different functions.
    l2l::util::Rng rng(0xe50full * 1000003ull + seed);
    const int num_vars = 3 + static_cast<int>(rng.next_below(4));   // 3..6
    const int num_cubes = 1 + static_cast<int>(rng.next_below(8));  // 1..8
    const Cover f = l2l::gen::random_cover(num_vars, num_cubes, rng);

    const auto failure = esop_check(f);
    if (failure.has_value()) {
      const Cover minimal = shrink_esop_failure(f);
      const auto why = esop_check(minimal);
      FAIL() << "seed " << seed << ": " << *failure
             << "\nminimal failing cover (" << minimal.num_vars()
             << " vars):\n"
             << minimal.to_string()
             << "shrunk failure: " << why.value_or(*failure);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

// Found and shrunk by this harness's first run: the OR of two overlapping
// products on disjoint supports has a 2-cube SOP but minimum ESOP 3
// (a | b = a ^ b ^ ab, and a case analysis over the power-of-two ON-set
// sizes of XOR pairs shows no 2-term ESOP reaches this 7-minterm
// function). This is the counterexample that killed the naive
// "exact ESOP <= espresso SOP size" property -- pinned so the corrected
// sweep bound above never quietly regresses back to the false claim.
TEST(DifferentialTest, EsopCanExceedSopSize) {
  Cube a(4), b(4);
  a.set_code(0, Pcn::kPos);
  a.set_code(1, Pcn::kNeg);  // x0 !x1
  b.set_code(2, Pcn::kPos);
  b.set_code(3, Pcn::kNeg);  // x2 !x3
  const Cover f(4, {a, b});
  const Cover sop = l2l::espresso::minimize(f);
  EXPECT_EQ(sop.size(), 2);
  const auto r = l2l::esop::synthesize_minimum(f.to_truth_table());
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_TRUE(r.minimal);
  EXPECT_EQ(r.terms, 3) << "minimum ESOP of two overlapping products";
  EXPECT_EQ(esop_check(f), std::nullopt)
      << "the corrected sweep bounds must accept this function";
}

// Hand-picked ESOP corners: parity (worst case for SOP, linear for ESOP)
// and majority (same size in both representations).
TEST(DifferentialTest, EsopDirectedCorners) {
  // Parity over 4 vars as a cover: 8 disjoint minterm cubes. Espresso
  // cannot merge any (no two differ in one literal with equal value), so
  // SOP stays at 8 while the exact ESOP drops to 4.
  TruthTable par(4);
  for (std::uint64_t m = 0; m < par.num_minterms(); ++m)
    par.set(m, __builtin_popcountll(m) % 2 == 1);
  const auto r = l2l::esop::synthesize_minimum(par);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.terms, 4);
  EXPECT_TRUE(r.minimal);

  // maj3 = ab | bc | ca = ab ^ bc ^ ca: three terms in both worlds.
  Cube ab(3), bc(3), ca(3);
  ab.set_code(0, Pcn::kPos);
  ab.set_code(1, Pcn::kPos);
  bc.set_code(1, Pcn::kPos);
  bc.set_code(2, Pcn::kPos);
  ca.set_code(2, Pcn::kPos);
  ca.set_code(0, Pcn::kPos);
  const Cover maj(3, {ab, bc, ca});
  EXPECT_EQ(esop_check(maj), std::nullopt);
  const auto rm = l2l::esop::synthesize_minimum(maj.to_truth_table());
  ASSERT_TRUE(rm.status.ok());
  EXPECT_EQ(rm.terms, 3);
}

// A cover whose cubes together form a tautology without any single cube
// being universal -- the classic SAT-tautology trap.
TEST(DifferentialTest, NonObviousTautology) {
  const int n = 2;
  Cube a(n), b(n);
  a.set_code(0, Pcn::kPos);
  b.set_code(0, Pcn::kNeg);
  const Cover f(n, {a, b});  // x0 | !x0 == 1
  ASSERT_TRUE(f.to_truth_table().is_constant_one());
  EXPECT_EQ(cross_check(f, nullptr), std::nullopt);
}

// ---- sema stuck-at vs BDD -----------------------------------------------

// The semantic analyzer's L2L-N006 verdicts are claimed to be theorems
// (exact const-prop: cofactor substitution, then empty-cover = 0 and
// URP tautology = 1). Sweep 100 seeded random networks and confirm every
// claimed constant against an independent BDD build -- sema must never
// cry wolf, because a false stuck-at report would tell a student to
// delete live logic.
TEST(DifferentialTest, SemaStuckAtVerdictsAreBddConfirmed) {
  int verdicts = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    l2l::util::Rng rng(seed);
    const l2l::gen::NetworkGenOptions opt;  // 8 in, 30 nodes, arity <= 4
    const auto net = l2l::gen::random_network(opt, rng);
    const auto analysis = l2l::sema::analyze_network(net);
    if (analysis.stuck_at.empty()) continue;
    l2l::bdd::Manager mgr(static_cast<int>(net.inputs().size()));
    const auto bdds = l2l::network::build_bdds(net, mgr);
    for (const auto& [name, value] : analysis.stuck_at) {
      const auto id = net.find(name);
      ASSERT_TRUE(id.has_value()) << "seed " << seed << ": sema reported "
                                  << "unknown net '" << name << "'";
      const auto& f = bdds.node[static_cast<std::size_t>(*id)];
      if (value) {
        EXPECT_TRUE(f.is_one())
            << "seed " << seed << ": '" << name
            << "' reported stuck-at-1 but its BDD is not constant one";
      } else {
        EXPECT_TRUE(f.is_zero())
            << "seed " << seed << ": '" << name
            << "' reported stuck-at-0 but its BDD is not constant zero";
      }
      ++verdicts;
    }
  }
  // The sweep must actually exercise the claim: random covers produce
  // constants (an all-don't-care cube is a tautology) often enough that
  // a zero-verdict run means the generator or the analyzer broke.
  EXPECT_GT(verdicts, 0) << "no stuck-at verdicts across 100 seeds";
}

}  // namespace
