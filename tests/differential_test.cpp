// Differential/property tier (ctest label `diff`): ~200 seeded random
// functions from gen::random_cover, cross-checked across four independent
// implementations of Boolean semantics:
//
//   truth table   -- Cover::to_truth_table(), the ground-truth oracle
//   BDD           -- an OR-of-AND build through bdd::Manager, read back
//                    via Bdd::to_truth_table()
//   SAT           -- a Tseitin encoding of the cover into l2l::sat,
//                    checked for satisfiability, tautology, and
//                    (via assumption miters) equivalence
//   espresso      -- minimize() output must stay equivalent to its input
//                    (and stay within the don't-care bounds when a DC
//                    cover is supplied)
//
// A disagreement anywhere is shrunk to a minimal failing cover -- greedy
// cube removal, then literal widening -- and printed with its seed, so a
// red run hands the debugger a two-line reproduction, not a 40-cube blob.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cubes/cover.hpp"
#include "espresso/minimize.hpp"
#include "gen/function_gen.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using l2l::cubes::Cover;
using l2l::cubes::Cube;
using l2l::cubes::Pcn;
using l2l::tt::TruthTable;

// ---- BDD oracle ---------------------------------------------------------

l2l::bdd::Bdd bdd_from_cover(l2l::bdd::Manager& mgr, const Cover& f) {
  l2l::bdd::Bdd out = mgr.zero();
  for (const Cube& c : f.cubes()) {
    l2l::bdd::Bdd product = mgr.one();
    for (int v = 0; v < f.num_vars(); ++v) {
      switch (c.code(v)) {
        case Pcn::kPos: product = product & mgr.var(v); break;
        case Pcn::kNeg: product = product & mgr.nvar(v); break;
        case Pcn::kEmpty: product = mgr.zero(); break;
        case Pcn::kDontCare: break;
      }
    }
    out = out | product;
  }
  return out;
}

// ---- SAT oracle ---------------------------------------------------------

/// Tseitin-encodes `f` into `solver` over input vars 0..num_vars-1
/// (created by the caller) and returns the literal representing the
/// cover's output: aux var c_j <-> AND(literals of cube j), output
/// <-> OR(c_j).
l2l::sat::Lit encode_cover(l2l::sat::Solver& solver, const Cover& f) {
  using l2l::sat::Lit;
  const l2l::sat::Var out = solver.new_var();
  std::vector<Lit> any_cube;  // out -> c_1 | ... | c_m
  any_cube.push_back(Lit(out, true));
  for (const Cube& c : f.cubes()) {
    bool contradiction = false;
    std::vector<Lit> lits;
    for (int v = 0; v < f.num_vars(); ++v) {
      switch (c.code(v)) {
        case Pcn::kPos: lits.push_back(Lit(v, false)); break;
        case Pcn::kNeg: lits.push_back(Lit(v, true)); break;
        case Pcn::kEmpty: contradiction = true; break;
        case Pcn::kDontCare: break;
      }
    }
    if (contradiction) continue;
    const l2l::sat::Var cj = solver.new_var();
    std::vector<Lit> reverse;  // lits all true -> c_j
    reverse.push_back(Lit(cj, false));
    for (const Lit& l : lits) {
      solver.add_clause({Lit(cj, true), l});  // c_j -> each literal
      reverse.push_back(~l);
    }
    solver.add_clause(reverse);
    solver.add_clause({Lit(cj, true), Lit(out, false)});  // c_j -> out
    any_cube.push_back(Lit(cj, false));
  }
  solver.add_clause(any_cube);
  return Lit(out, false);
}

struct SatOracle {
  l2l::sat::Solver solver;
  l2l::sat::Lit out{0, false};

  explicit SatOracle(const Cover& f) {
    for (int v = 0; v < f.num_vars(); ++v) solver.new_var();
    out = encode_cover(solver, f);
  }
  bool satisfiable() {
    return solver.solve({out}) == l2l::sat::LBool::kTrue;
  }
  bool tautology() {
    return solver.solve({l2l::sat::Lit(out.var(), true)}) ==
           l2l::sat::LBool::kFalse;
  }
};

/// SAT-checked equivalence of two covers over the same inputs: encode
/// both into one solver and probe both difference directions with
/// assumptions. UNSAT both ways <=> equivalent.
bool sat_equivalent(const Cover& a, const Cover& b) {
  using l2l::sat::Lit;
  l2l::sat::Solver solver;
  for (int v = 0; v < a.num_vars(); ++v) solver.new_var();
  const Lit fa = encode_cover(solver, a);
  const Lit fb = encode_cover(solver, b);
  if (solver.solve({fa, Lit(fb.var(), true)}) == l2l::sat::LBool::kTrue)
    return false;  // a & !b satisfiable
  if (solver.solve({Lit(fa.var(), true), fb}) == l2l::sat::LBool::kTrue)
    return false;  // !a & b satisfiable
  return true;
}

// ---- the cross-check ----------------------------------------------------

/// Runs every differential property on `f` (with optional don't-care
/// cover `dc` for the espresso legality check). Returns std::nullopt when
/// all oracles agree, else a description of the first disagreement.
std::optional<std::string> cross_check(const Cover& f, const Cover* dc) {
  const TruthTable want = f.to_truth_table();

  // BDD vs truth table.
  {
    l2l::bdd::Manager mgr(f.num_vars());
    const TruthTable got = bdd_from_cover(mgr, f).to_truth_table();
    if (!(got == want)) return "BDD truth table != cover truth table";
  }

  // SAT vs truth table.
  {
    SatOracle sat(f);
    if (sat.satisfiable() != !want.is_constant_zero())
      return "SAT satisfiability disagrees with truth table";
    if (sat.tautology() != want.is_constant_one())
      return "SAT tautology check disagrees with truth table";
  }

  // espresso::minimize must preserve the function exactly (empty DC)...
  {
    const Cover g = l2l::espresso::minimize(f);
    if (!(g.to_truth_table() == want))
      return "espresso cover truth table != input truth table";
    if (!sat_equivalent(f, g))
      return "SAT miter says espresso cover != input";
    if (!l2l::espresso::is_legal_implementation(g, f, Cover(f.num_vars())))
      return "espresso cover fails is_legal_implementation (no DC)";
  }

  // ...and stay within [f \ dc, f | dc] when a DC cover is given.
  if (dc != nullptr) {
    const Cover g =
        l2l::espresso::minimize(f, *dc, l2l::espresso::MinimizeOptions{},
                                nullptr);
    if (!l2l::espresso::is_legal_implementation(g, f, *dc))
      return "espresso cover fails is_legal_implementation (with DC)";
    const TruthTable got = g.to_truth_table();
    const TruthTable dct = dc->to_truth_table();
    for (std::uint64_t m = 0; m < want.num_minterms(); ++m) {
      if (dct.get(m)) continue;  // don't-care point: either value legal
      if (got.get(m) != want.get(m))
        return "espresso cover leaves the DC bounds";
    }
  }
  return std::nullopt;
}

// ---- shrinking ----------------------------------------------------------

/// Greedily shrinks `f` while `cross_check(f, dc)` still fails: first
/// whole-cube removal, then widening single literals to don't-care. The
/// result is locally minimal -- removing any one cube or literal makes
/// the failure disappear.
Cover shrink_failure(Cover f, const Cover* dc) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Cube removal.
    for (int i = 0; i < f.size(); ++i) {
      std::vector<Cube> keep;
      for (int j = 0; j < f.size(); ++j)
        if (j != i) keep.push_back(f.cubes()[static_cast<std::size_t>(j)]);
      Cover candidate(f.num_vars(), keep);
      if (cross_check(candidate, dc).has_value()) {
        f = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Literal widening.
    for (int i = 0; i < f.size() && !changed; ++i) {
      for (int v = 0; v < f.num_vars() && !changed; ++v) {
        const Cube& c = f.cubes()[static_cast<std::size_t>(i)];
        if (c.code(v) == Pcn::kDontCare) continue;
        std::vector<Cube> cubes = f.cubes();
        cubes[static_cast<std::size_t>(i)].set_code(v, Pcn::kDontCare);
        Cover candidate(f.num_vars(), std::move(cubes));
        if (cross_check(candidate, dc).has_value()) {
          f = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return f;
}

// ---- the 200-seed sweep -------------------------------------------------

TEST(DifferentialTest, TwoHundredRandomFunctionsAgreeAcrossEngines) {
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    l2l::util::Rng rng(0xd1ffull * 1000003ull + seed);
    const int num_vars = 3 + static_cast<int>(rng.next_below(4));   // 3..6
    const int num_cubes = 1 + static_cast<int>(rng.next_below(8));  // 1..8
    const Cover f = l2l::gen::random_cover(num_vars, num_cubes, rng);
    // A small random DC cover on every other seed exercises the
    // minimize-with-DC legality bounds.
    std::optional<Cover> dc;
    if (seed % 2 == 1)
      dc = l2l::gen::random_cover(num_vars,
                                  static_cast<int>(rng.next_below(3)), rng);
    const Cover* dcp = dc ? &*dc : nullptr;

    const auto failure = cross_check(f, dcp);
    if (failure.has_value()) {
      const Cover minimal = shrink_failure(f, dcp);
      const auto why = cross_check(minimal, dcp);
      FAIL() << "seed " << seed << ": " << *failure
             << "\nminimal failing cover (" << minimal.num_vars()
             << " vars):\n"
             << minimal.to_string()
             << (dc ? "with DC cover:\n" + dc->to_string() : std::string())
             << "shrunk failure: " << why.value_or(*failure);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

// Directed corner cases the random sweep is unlikely to hit exactly.
TEST(DifferentialTest, ConstantAndSingleLiteralCovers) {
  // Constant 0 (empty cover) and constant 1 (universal cube).
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(cross_check(Cover(n), nullptr), std::nullopt) << "empty, n=" << n;
    EXPECT_EQ(cross_check(Cover::universal(n), nullptr), std::nullopt)
        << "universal, n=" << n;
    // Each single positive / negative literal.
    for (int v = 0; v < n; ++v) {
      Cube pos(n), neg(n);
      pos.set_code(v, Pcn::kPos);
      neg.set_code(v, Pcn::kNeg);
      EXPECT_EQ(cross_check(Cover(n, {pos}), nullptr), std::nullopt);
      EXPECT_EQ(cross_check(Cover(n, {neg}), nullptr), std::nullopt);
    }
  }
}

// A cover whose cubes together form a tautology without any single cube
// being universal -- the classic SAT-tautology trap.
TEST(DifferentialTest, NonObviousTautology) {
  const int n = 2;
  Cube a(n), b(n);
  a.set_code(0, Pcn::kPos);
  b.set_code(0, Pcn::kNeg);
  const Cover f(n, {a, b});  // x0 | !x0 == 1
  ASSERT_TRUE(f.to_truth_table().is_constant_one());
  EXPECT_EQ(cross_check(f, nullptr), std::nullopt);
}

}  // namespace
