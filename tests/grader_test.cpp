#include <gtest/gtest.h>

#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "place/annealing.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "route/router.hpp"
#include "util/rng.hpp"

namespace l2l::grader {
namespace {

gen::RoutingProblem route_problem(util::Rng& rng) {
  gen::RoutingGenOptions opt;
  opt.width = 24;
  opt.height = 24;
  opt.num_nets = 8;
  opt.obstacle_fraction = 0.05;
  return gen::generate_routing(opt, rng);
}

TEST(RouteGrader, AcceptsRouterOutput) {
  util::Rng rng(151);
  const auto p = route_problem(rng);
  const auto sol = route::route_all(p);
  const auto g = grade_routing(p, sol);
  EXPECT_EQ(g.legal_nets, g.total_nets);
  EXPECT_DOUBLE_EQ(g.score, 100.0);
  EXPECT_NE(g.report.find("OK"), std::string::npos);
}

TEST(RouteGrader, DetectsMissingNet) {
  util::Rng rng(152);
  const auto p = route_problem(rng);
  auto sol = route::route_all(p);
  sol.nets[0].cells.clear();
  const auto g = grade_routing(p, sol);
  EXPECT_EQ(g.legal_nets, g.total_nets - 1);
  EXPECT_LT(g.score, 100.0);
  EXPECT_NE(g.report.find("missing"), std::string::npos);
}

TEST(RouteGrader, DetectsDisconnection) {
  util::Rng rng(153);
  const auto p = route_problem(rng);
  auto sol = route::route_all(p);
  // Find a net with a removable middle cell (non-pin).
  for (auto& net : sol.nets) {
    if (net.cells.size() < 4) continue;
    std::set<gen::GridPoint> pins(p.nets[static_cast<std::size_t>(net.net_id)].pins.begin(),
                                  p.nets[static_cast<std::size_t>(net.net_id)].pins.end());
    for (std::size_t k = 0; k < net.cells.size(); ++k) {
      if (pins.count(net.cells[k])) continue;
      net.cells.erase(net.cells.begin() + static_cast<std::ptrdiff_t>(k));
      break;
    }
    break;
  }
  const auto g = grade_routing(p, sol);
  EXPECT_LT(g.legal_nets, g.total_nets);
}

TEST(RouteGrader, DetectsObstacleViolation) {
  gen::RoutingProblem p;
  p.width = p.height = 4;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(16, false));
  p.blocked[0][1] = true;  // (1,0,0)
  p.nets.push_back({0, {{0, 0, 0}, {2, 0, 0}}});
  route::RouteSolution sol;
  route::NetRoute net;
  net.net_id = 0;
  net.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};  // through the obstacle
  sol.nets.push_back(net);
  const auto g = grade_routing(p, sol);
  EXPECT_EQ(g.legal_nets, 0);
  EXPECT_NE(g.report.find("obstacle"), std::string::npos);
}

TEST(RouteGrader, DetectsOverlap) {
  gen::RoutingProblem p;
  p.width = p.height = 4;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(16, false));
  p.nets.push_back({0, {{0, 0, 0}, {2, 0, 0}}});
  p.nets.push_back({1, {{0, 1, 0}, {2, 1, 0}}});
  route::RouteSolution sol;
  route::NetRoute n0, n1;
  n0.net_id = 0;
  n0.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  n1.net_id = 1;
  n1.cells = {{0, 1, 0}, {1, 0, 0}, {1, 1, 0}, {2, 1, 0}};  // reuses (1,0,0)
  sol.nets = {n0, n1};
  const auto g = grade_routing(p, sol);
  EXPECT_EQ(g.legal_nets, 1);
  EXPECT_NE(g.report.find("overlaps"), std::string::npos);
}

TEST(RouteGrader, TextPathHandlesGarbage) {
  util::Rng rng(154);
  const auto p = route_problem(rng);
  const auto g = grade_routing_text(p, "this is not a solution");
  EXPECT_DOUBLE_EQ(g.score, 0.0);
  EXPECT_NE(g.report.find("parse error"), std::string::npos);
}

TEST(RouteGrader, TextRoundTripKeepsScore) {
  util::Rng rng(155);
  const auto p = route_problem(rng);
  const auto sol = route::route_all(p);
  const auto g = grade_routing_text(p, route::write_solution(sol));
  EXPECT_DOUBLE_EQ(g.score, 100.0);
}

TEST(PlaceGrader, AcceptsLegalizedQuadratic) {
  util::Rng rng(156);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 80;
  const auto p = gen::generate_placement(gopt, rng);
  const place::Grid grid{10, 10, p.width, p.height};
  const auto gp = place::legalize(p, place::place_quadratic(p), grid);
  const double ref = place::hpwl(p, gp.to_continuous(grid));
  const auto g = grade_placement(p, grid, gp, ref);
  EXPECT_TRUE(g.legal);
  EXPECT_DOUBLE_EQ(g.score, 100.0);  // matches its own reference
}

TEST(PlaceGrader, RejectsCollision) {
  util::Rng rng(157);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 20;
  const auto p = gen::generate_placement(gopt, rng);
  const place::Grid grid{5, 5, p.width, p.height};
  auto gp = place::legalize(p, place::place_quadratic(p), grid);
  gp.col[1] = gp.col[0];
  gp.row[1] = gp.row[0];
  const auto g = grade_placement(p, grid, gp, 100.0);
  EXPECT_FALSE(g.legal);
  EXPECT_DOUBLE_EQ(g.score, 0.0);
}

TEST(PlaceGrader, BetterPlacementScoresHigher) {
  util::Rng rng(158);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 80;
  const auto p = gen::generate_placement(gopt, rng);
  const place::Grid grid{10, 10, p.width, p.height};
  const auto good = place::legalize(p, place::place_quadratic(p), grid);
  util::Rng r2(1);
  const auto bad = place::random_grid_placement(p, grid, r2);
  const double ref = place::hpwl(p, good.to_continuous(grid));
  const auto gg = grade_placement(p, grid, good, ref);
  const auto gb = grade_placement(p, grid, bad, ref);
  EXPECT_GT(gg.score, gb.score);
  EXPECT_GE(gb.score, 50.0);  // legal still earns legality points
}

TEST(PlaceGrader, TextRoundTrip) {
  util::Rng rng(159);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 30;
  const auto p = gen::generate_placement(gopt, rng);
  const place::Grid grid{6, 6, p.width, p.height};
  const auto gp = place::legalize(p, place::place_quadratic(p), grid);
  const auto text = write_placement_text(gp);
  const auto again = parse_placement_text(text, p.num_cells);
  EXPECT_EQ(again.col, gp.col);
  EXPECT_EQ(again.row, gp.row);
  const double ref = place::hpwl(p, gp.to_continuous(grid));
  EXPECT_TRUE(grade_placement_text(p, grid, text, ref).legal);
}

TEST(PlaceGrader, TextErrors) {
  util::Rng rng(160);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 10;
  const auto p = gen::generate_placement(gopt, rng);
  const place::Grid grid{4, 4, p.width, p.height};
  EXPECT_DOUBLE_EQ(grade_placement_text(p, grid, "gibberish", 1.0).score, 0.0);
  EXPECT_DOUBLE_EQ(grade_placement_text(p, grid, "cell 0 1 1\n", 1.0).score,
                   0.0);  // cells missing
  EXPECT_THROW(parse_placement_text("cell 99 0 0\n", 10), std::invalid_argument);
}

}  // namespace
}  // namespace l2l::grader
