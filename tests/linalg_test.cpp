#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace l2l::linalg {
namespace {

// Random SPD system: A = M^T M + n*I (diagonally boosted), b random.
std::pair<DenseMatrix, std::vector<double>> random_spd(int n, util::Rng& rng) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.next_gaussian();
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = i == j ? n : 0.0;
      for (int k = 0; k < n; ++k) s += m.at(k, i) * m.at(k, j);
      a.at(i, j) = s;
    }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_gaussian();
  return {a, b};
}

SparseMatrix to_sparse(const DenseMatrix& a) {
  SparseMatrix s(a.rows());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      if (a.at(i, j) != 0.0) s.add(i, j, a.at(i, j));
  s.compress();
  return s;
}

double residual(const DenseMatrix& a, const std::vector<double>& x,
                const std::vector<double>& b) {
  double worst = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    double acc = -b[static_cast<std::size_t>(i)];
    for (int j = 0; j < a.cols(); ++j)
      acc += a.at(i, j) * x[static_cast<std::size_t>(j)];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

TEST(Sparse, BuildAndMultiply) {
  SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.add(1, 1, 2.0);
  a.add(2, 2, 1.0);
  a.add(0, 0, 1.0);  // duplicate accumulates -> 3.0
  a.compress();
  EXPECT_EQ(a.nnz(), 5u);
  EXPECT_TRUE(a.is_symmetric());
  std::vector<double> y;
  a.multiply({1.0, 2.0, 3.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 4.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  EXPECT_EQ(a.diagonal(), (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(Sparse, ErrorsAndEdgeCases) {
  SparseMatrix a(2);
  EXPECT_THROW(a.add(2, 0, 1.0), std::invalid_argument);
  std::vector<double> y;
  EXPECT_THROW(a.multiply({1.0, 2.0}, y), std::logic_error);
  a.add(0, 0, 1.0);
  a.compress();
  EXPECT_THROW(a.add(0, 0, 1.0), std::logic_error);
  EXPECT_THROW(a.compress(), std::logic_error);
  EXPECT_THROW(a.multiply({1.0}, y), std::invalid_argument);
}

TEST(Sparse, EmptyRowsHandled) {
  SparseMatrix a(4);
  a.add(3, 3, 5.0);  // rows 0..2 empty
  a.compress();
  std::vector<double> y;
  a.multiply({1, 1, 1, 2}, y);
  EXPECT_EQ(y, (std::vector<double>{0, 0, 0, 10}));
}

TEST(Sparse, AsymmetryDetected) {
  SparseMatrix a(2);
  a.add(0, 1, 1.0);
  a.compress();
  EXPECT_FALSE(a.is_symmetric());
}

TEST(Gauss, SolvesSmallSystem) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_gauss(a, {5, 10});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Gauss, SingularReturnsNullopt) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(solve_gauss(a, {1, 2}).has_value());
}

TEST(Gauss, NeedsPivoting) {
  // Zero in the (0,0) position forces a row swap.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_gauss(a, {3, 7});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Cholesky, MatchesGaussOnSpd) {
  util::Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    const auto [a, b] = random_spd(8, rng);
    const auto xc = solve_cholesky(a, b);
    const auto xg = solve_gauss(a, b);
    ASSERT_TRUE(xc.has_value());
    ASSERT_TRUE(xg.has_value());
    for (int i = 0; i < 8; ++i)
      EXPECT_NEAR((*xc)[static_cast<std::size_t>(i)],
                  (*xg)[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = -1;
  EXPECT_FALSE(solve_cholesky(a, {1, 1}).has_value());
}

TEST(Cg, SolvesLaplacianChain) {
  // 1-D Laplacian with Dirichlet boundary: classic placement-like system.
  const int n = 50;
  SparseMatrix a(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  a.compress();
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;  // boundary pull
  const auto res = conjugate_gradient(a, b);
  EXPECT_TRUE(res.converged);
  // Exact solution: x_i = (n - i) / (n + 1).
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(res.x[static_cast<std::size_t>(i)],
                static_cast<double>(n - i) / (n + 1), 1e-6);
}

TEST(Cg, MatchesDenseOnRandomSpd) {
  util::Rng rng(82);
  for (int trial = 0; trial < 10; ++trial) {
    const auto [a, b] = random_spd(12, rng);
    const auto xd = solve_cholesky(a, b);
    const auto res = conjugate_gradient(to_sparse(a), b);
    ASSERT_TRUE(xd.has_value());
    EXPECT_TRUE(res.converged);
    for (int i = 0; i < 12; ++i)
      EXPECT_NEAR(res.x[static_cast<std::size_t>(i)],
                  (*xd)[static_cast<std::size_t>(i)], 1e-6);
    EXPECT_LT(residual(a, res.x, b), 1e-6);
  }
}

TEST(Cg, ZeroRhsIsZeroSolution) {
  SparseMatrix a(3);
  for (int i = 0; i < 3; ++i) a.add(i, i, 1.0);
  a.compress();
  const auto res = conjugate_gradient(a, {0, 0, 0});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_EQ(res.x, (std::vector<double>{0, 0, 0}));
}

TEST(Cg, PreconditionerReducesIterations) {
  // Badly scaled diagonal system: Jacobi preconditioning should fix it.
  const int n = 100;
  SparseMatrix a(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, i % 2 == 0 ? 1.0 : 1e4);
    if (i > 0) a.add(i, i - 1, -0.1);
    if (i + 1 < n) a.add(i, i + 1, -0.1);
  }
  a.compress();
  std::vector<double> b(n, 1.0);
  CgOptions plain;
  plain.jacobi_preconditioner = false;
  CgOptions jacobi;
  const auto r0 = conjugate_gradient(a, b, plain);
  const auto r1 = conjugate_gradient(a, b, jacobi);
  EXPECT_TRUE(r1.converged);
  EXPECT_LE(r1.iterations, r0.iterations);
}

TEST(Cg, IterationLimitReported) {
  const int n = 200;
  SparseMatrix a(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 2.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  a.compress();
  CgOptions opt;
  opt.max_iterations = 3;
  const auto res = conjugate_gradient(a, std::vector<double>(n, 1.0), opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

}  // namespace
}  // namespace l2l::linalg
