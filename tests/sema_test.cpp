// l2l::sema test suite, mirroring lint_test's shape one layer up: every
// registered semantic rule fires on a seeded defect and stays silent on a
// clean artifact, the repo's own data/ artifacts are semantically clean,
// the hostile corpus (cyclic netlists, multi-driven nets, a 10k-gate SCC
// ring) is diagnosed without crashing, the grading queue rejects
// semantically broken submissions before any engine runs, and reports
// render byte-identically at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "mooc/grading_queue.hpp"
#include "mooc/submission_lint.hpp"
#include "network/blif.hpp"
#include "obs/metrics.hpp"
#include "sema/sema.hpp"
#include "util/parallel.hpp"

namespace l2l::sema {
namespace {

using lint::Format;

// ---- fixtures -----------------------------------------------------------

/// One artifact per analyzed format that every rule of its pack must
/// accept: no cycles, every net driven once and read, no constants, no
/// duplicate structure; distinct irredundant clauses with both phases of
/// every variable; disjoint fully-specified PLA rows.
const char* clean_text(Format f) {
  switch (f) {
    case Format::kBlif:
      return ".model t\n.inputs a b\n.outputs y z\n"
             ".names a b y\n11 1\n.names a b z\n00 1\n.end\n";
    case Format::kCnf:
      return "p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n";
    case Format::kPla:
      return ".i 2\n.o 1\n.p 2\n00 1\n11 1\n.e\n";
    default:
      return "";
  }
}

bool has_rule(const std::vector<Finding>& findings, std::string_view id) {
  for (const auto& f : findings)
    if (f.rule == id) return true;
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- the rule table: one seeded defect per registered rule --------------

struct RuleCase {
  const char* rule;
  Format format;
  const char* dirty;  ///< minimal artifact that must trigger `rule`
};

const RuleCase kRuleCases[] = {
    // N-pack: BLIF name-graph semantics.
    {"L2L-N001", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names q y\n1 1\n"
     ".names y q\n1 1\n.end\n"},
    {"L2L-N002", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names b y\n1 1\n.end\n"},
    {"L2L-N003", Format::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n"
     ".names b y\n1 1\n.end\n"},
    {"L2L-N004", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
     ".names a z\n0 1\n.end\n"},
    {"L2L-N005", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
     ".names a t\n0 1\n.names t u\n0 1\n.end\n"},
    {"L2L-N006", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a a y\n10 1\n.end\n"},
    {"L2L-N007", Format::kBlif,
     ".model m\n.inputs a b\n.outputs y z\n.names a b y\n11 1\n"
     ".names a b z\n11 1\n.end\n"},
    // C-pack: DIMACS CNF semantics.
    {"L2L-C101", Format::kCnf, "p cnf 2 3\n1 2 0\n2 1 0\n-1 -2 0\n"},
    {"L2L-C102", Format::kCnf, "p cnf 1 1\n1 -1 0\n"},
    {"L2L-C103", Format::kCnf, "p cnf 2 2\n1 2 0\n1 -2 0\n"},
    {"L2L-C104", Format::kCnf, "p cnf 1 2\n1 0\n-1 0\n"},
    // P-pack: PLA semantics.
    {"L2L-P101", Format::kPla, ".i 2\n.o 1\n1- 1\n11 1\n.e\n"},
    {"L2L-P102", Format::kPla, ".i 2\n.o 1\n1- 1\n11 0\n.e\n"},
    {"L2L-P103", Format::kPla, ".i 2\n.o 1\n11 1\n1- -\n.e\n"},
};

// ---- per-rule positive and negative cases -------------------------------

TEST(SemaRules, EveryRegisteredRuleFiresOnItsSeededDefect) {
  for (const auto& c : kRuleCases) {
    const auto findings = analyze_text("case", c.dirty, c.format).findings;
    EXPECT_TRUE(has_rule(findings, c.rule))
        << c.rule << " did not fire on its seeded defect";
    const lint::RuleInfo* info = rule_info(c.rule);
    ASSERT_NE(info, nullptr) << c.rule << " missing from all_rules()";
    for (const auto& f : findings)
      if (f.rule == c.rule) {
        EXPECT_EQ(f.severity, info->severity)
            << c.rule << " fired at a severity differing from its registry "
            << "default";
      }
  }
}

TEST(SemaRules, NoRuleFiresOnItsFormatsCleanArtifact) {
  for (const auto& c : kRuleCases) {
    const auto findings =
        analyze_text("case", clean_text(c.format), c.format).findings;
    EXPECT_TRUE(findings.empty())
        << lint::format_name(c.format) << " clean artifact tripped "
        << (findings.empty() ? "" : findings.front().to_string());
  }
}

TEST(SemaRules, TableCoversTheEntireRegistry) {
  std::set<std::string> in_table;
  for (const auto& c : kRuleCases) in_table.insert(c.rule);
  std::set<std::string> registered;
  for (const auto& r : all_rules()) registered.insert(r.id);
  EXPECT_EQ(in_table, registered)
      << "every registered sema rule needs a positive case here (and "
      << "every tested rule must be registered)";
}

TEST(SemaRules, RegistryIsPackGroupedUniqueAndDisjointFromLint) {
  const auto& rules = all_rules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string> ids;
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_TRUE(ids.insert(rules[i].id).second)
        << rules[i].id << " registered twice";
    if (i > 0 && rules[i - 1].id[4] == rules[i].id[4]) {
      EXPECT_LT(std::string(rules[i - 1].id), std::string(rules[i].id));
    }
  }
  for (const auto& r : rules) EXPECT_EQ(rule_info(r.id), &r);
  EXPECT_EQ(rule_info("L2L-N999"), nullptr);
  // The two registries version independently: no sema ID may collide
  // with a lint ID, and neither layer lists the other's rules.
  for (const auto& r : rules) {
    EXPECT_EQ(lint::rule_info(r.id), nullptr)
        << r.id << " also registered in lint::all_rules()";
  }
}

// ---- targeted semantics -------------------------------------------------

TEST(SemaNetwork, CycleFindingNamesEveryMemberGate) {
  // The acceptance-criterion shape: a syntactically valid BLIF whose
  // gates form a loop must produce one error naming the cycle's members.
  const auto analysis = analyze_blif(read_file(
      std::string(L2L_TEST_DATA_DIR) + "/hostile/cyclic.blif"));
  ASSERT_TRUE(has_rule(analysis.findings, "L2L-N001"));
  for (const auto& f : analysis.findings)
    if (f.rule == "L2L-N001") {
      EXPECT_NE(f.message.find("p"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("q"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("y"), std::string::npos) << f.message;
    }
}

TEST(SemaNetwork, StuckAtVerdictsAreExactAndPropagate) {
  // y = a AND NOT a is constant 0; z = y OR y inherits it. Both verdicts
  // land in stuck_at (name order) for the differential suite to check.
  const auto analysis = analyze_blif(
      ".model m\n.inputs a\n.outputs z\n.names a a y\n10 1\n"
      ".names y y z\n1- 1\n-1 1\n.end\n");
  ASSERT_EQ(analysis.stuck_at.size(), 2u);
  EXPECT_EQ(analysis.stuck_at[0].first, "y");
  EXPECT_FALSE(analysis.stuck_at[0].second);
  EXPECT_EQ(analysis.stuck_at[1].first, "z");
  EXPECT_FALSE(analysis.stuck_at[1].second);
  // The converse polarity: NOT of a constant 0 is stuck at 1.
  const auto inv = analyze_blif(
      ".model m\n.inputs a\n.outputs z\n.names a a y\n10 1\n"
      ".names y z\n0 1\n.end\n");
  ASSERT_EQ(inv.stuck_at.size(), 2u);
  EXPECT_EQ(inv.stuck_at[1].first, "z");
  EXPECT_TRUE(inv.stuck_at[1].second);
}

TEST(SemaNetwork, InputShadowGetsItsOwnDiagnosticEverywhere) {
  // Satellite regression: a .names block whose output is also a declared
  // model input. Strict parse rejects, lenient parse diagnoses with the
  // dedicated message, sema reports it as the N003 multi-driven variant.
  const std::string text = read_file(
      std::string(L2L_TEST_DATA_DIR) + "/hostile/input_shadow.blif");
  EXPECT_THROW((void)network::parse_blif(text), std::invalid_argument);
  const auto parsed = network::parse_blif_lenient(text);
  ASSERT_FALSE(parsed.clean());
  bool dedicated = false;
  for (const auto& d : parsed.diagnostics)
    if (d.message.find("also a declared model input") != std::string::npos)
      dedicated = true;
  EXPECT_TRUE(dedicated) << parsed.diagnostics.front().to_string();
  const auto analysis = analyze_blif(text);
  ASSERT_TRUE(has_rule(analysis.findings, "L2L-N003"));
  bool sema_names_it = false;
  for (const auto& f : analysis.findings)
    if (f.rule == "L2L-N003" &&
        f.message.find("also a declared model input") != std::string::npos)
      sema_names_it = true;
  EXPECT_TRUE(sema_names_it);
}

TEST(SemaDispatch, FormatsWithoutAPassProduceCleanReports) {
  EXPECT_TRUE(applies(Format::kBlif));
  EXPECT_TRUE(applies(Format::kCnf));
  EXPECT_TRUE(applies(Format::kPla));
  EXPECT_FALSE(applies(Format::kPlacement));
  EXPECT_FALSE(applies(Format::kUnknown));
  // A placement upload and arbitrary junk both come back clean -- sema
  // never invents findings for formats it has no pass for (--sema must
  // be uniform across the course tools).
  const auto place = analyze_text("hw.place", "cell 0 0 0\ncell 1 1 0\n");
  EXPECT_TRUE(place.findings.empty());
  const auto junk = analyze_text("mystery.bin", "total gibberish here\n");
  EXPECT_TRUE(junk.findings.empty());
  // Extension beats sniff, flag beats extension -- same ladder as lint.
  const char* cyclic =
      ".model m\n.inputs a\n.outputs y\n.names q y\n1 1\n"
      ".names y q\n1 1\n.end\n";
  EXPECT_TRUE(has_rule(analyze_text("loop.blif", cyclic).findings,
                       "L2L-N001"));
  EXPECT_TRUE(has_rule(analyze_text("loop.bin", cyclic).findings,
                       "L2L-N001"));  // sniffed
  EXPECT_TRUE(analyze_text("loop.bin", cyclic, Format::kPla)
                  .findings.empty());  // flag wins: no PLA rows present
}

TEST(SemaDispatch, MalformedArtifactsYieldNoFindings) {
  // Well-formedness is lint's job: sema stays silent rather than piling
  // semantic guesses on top of a parse wreck.
  EXPECT_TRUE(analyze_cnf("p cnf banana\n1 2 0\n").empty());
  EXPECT_TRUE(analyze_cnf("no header at all\n").empty());
  EXPECT_TRUE(analyze_pla("00 1\n.i 2\n.o 1\n.e\n").empty());
  EXPECT_TRUE(analyze_pla(".i -5\n.o 1\n00 1\n").empty());
}

// ---- queue/service integration ------------------------------------------

TEST(SemaQueue, SemanticErrorsRejectBeforeAnyEngineRuns) {
  // The acceptance criterion's service half: a submission whose payload
  // is a cyclic BLIF must come back kRejected with the grading callback
  // never invoked -- sema gates the queue exactly like the lint pack.
  const std::string cyclic = read_file(
      std::string(L2L_TEST_DATA_DIR) + "/hostile/cyclic.blif");
  mooc::QueueOptions opt;
  opt.lint = mooc::sema_submission_lint(/*require_header=*/false);
  std::atomic<int> graded{0};
  const auto grade = [&](const std::string&, const util::Budget&) {
    ++graded;
    return 100.0;
  };
  const auto res = mooc::drain_queue(
      {cyclic, "course hw1\n" + cyclic, clean_text(Format::kBlif)}, grade,
      opt);
  ASSERT_EQ(res.outcomes.size(), 3u);
  EXPECT_EQ(res.outcomes[0].kind, mooc::OutcomeKind::kRejected);
  EXPECT_NE(res.outcomes[0].diagnostic.find("L2L-N001"), std::string::npos);
  // The portal header line is skipped, not analyzed as netlist text.
  EXPECT_EQ(res.outcomes[1].kind, mooc::OutcomeKind::kRejected);
  EXPECT_EQ(res.outcomes[2].kind, mooc::OutcomeKind::kGraded);
  EXPECT_EQ(graded.load(), 1);
  EXPECT_EQ(res.stats.lint_rejected, 2);
}

TEST(SemaQueue, HeaderRequirementComposesWithSema) {
  // --lint --sema on the service binds both behaviors: a missing course
  // header is itself an error, and a clean payload with the header
  // passes through to grading.
  const auto check = mooc::sema_submission_lint(/*require_header=*/true);
  const auto missing = check("cell 0 0 0\n");
  ASSERT_FALSE(missing.empty());
  EXPECT_EQ(missing.front().severity, util::Severity::kError);
  EXPECT_TRUE(check(std::string("course hw1\n") +
                    clean_text(Format::kBlif)).empty());
}

// ---- observability ------------------------------------------------------

TEST(SemaReport, PerRuleObsCountersTally) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  (void)analyze_files({{"dup.cnf", "p cnf 2 3\n1 2 0\n2 1 0\n-1 -2 0\n"},
                       {"stuck.blif",
                        ".model m\n.inputs a\n.outputs y\n"
                        ".names a a y\n10 1\n.end\n"}});
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  EXPECT_EQ(snap.counters.at("sema.files"), 2);
  EXPECT_GE(snap.counters.at("sema.rule.L2L-C101"), 1);
  EXPECT_GE(snap.counters.at("sema.rule.L2L-N006"), 1);
  EXPECT_GE(snap.counters.at("sema.findings"), 2);
}

// ---- repo artifacts and the hostile corpus ------------------------------

TEST(SemaCorpus, ShippedDataArtifactsAreSemanticallyClean) {
  // Every artifact the repo itself ships must pass its own analyzer --
  // including data/sample.cnf's pure-literal-free clause set.
  namespace fs = std::filesystem;
  for (const auto& entry : fs::directory_iterator(L2L_REPO_DATA_DIR)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const auto fr = analyze_text(name, read_file(entry.path().string()));
    EXPECT_TRUE(fr.findings.empty())
        << name << " should be semantically clean:\n"
        << (fr.findings.empty() ? "" : fr.findings.front().to_string());
  }
}

TEST(SemaCorpus, HostileFilesAreDiagnosedNeverCrash) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(L2L_TEST_DATA_DIR) / "hostile";
  int analyzed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "README.md") continue;
    const std::string text = read_file(entry.path().string());
    lint::FileReport fr;
    ASSERT_NO_THROW(fr = analyze_text(name, text)) << name;
    for (const auto& f : fr.findings) ASSERT_NO_THROW((void)f.to_string());
    ++analyzed;
  }
  EXPECT_GE(analyzed, 10) << "hostile corpus went missing";
  // The seeded semantic defects are found, not merely survived.
  const auto expect_rule = [&](const char* file, const char* rule) {
    const auto fr = analyze_text(
        file, read_file((dir / file).string()));
    EXPECT_TRUE(has_rule(fr.findings, rule)) << file;
  };
  expect_rule("cyclic.blif", "L2L-N001");
  expect_rule("multi_driven.blif", "L2L-N003");
  expect_rule("input_shadow.blif", "L2L-N003");
  // The 10k-gate single-SCC ring: one cycle finding, linear time, and --
  // because the Tarjan walk is iterative -- no stack overflow.
  const auto ring =
      analyze_text("scc_chain_10k.blif",
                   read_file((dir / "scc_chain_10k.blif").string()));
  EXPECT_TRUE(has_rule(ring.findings, "L2L-N001"));
}

// ---- determinism across the worker pool ---------------------------------

TEST(SemaDeterminism, ReportBytesAreThreadCountInvariant) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (const auto& c : kRuleCases)
    batch.emplace_back(std::string(c.rule) + ".case", c.dirty);
  for (Format f : {Format::kBlif, Format::kCnf, Format::kPla})
    batch.emplace_back(std::string("clean.") + lint::format_name(f),
                       clean_text(f));

  std::vector<std::string> texts, jsons;
  for (const int t : {1, 2, 8}) {
    util::set_num_threads(t);
    const lint::Report r = analyze_files(batch);
    texts.push_back(r.to_text());
    jsons.push_back(r.to_json());
  }
  util::set_num_threads(0);
  EXPECT_EQ(texts[0], texts[1]);
  EXPECT_EQ(texts[0], texts[2]);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
  EXPECT_NE(texts[0].find("error"), std::string::npos);
}

}  // namespace
}  // namespace l2l::sema
