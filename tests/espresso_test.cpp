#include <gtest/gtest.h>

#include "cubes/urp.hpp"
#include "espresso/minimize.hpp"
#include "espresso/pla.hpp"
#include "espresso/qm.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace l2l::espresso {
namespace {

using cubes::Cover;
using cubes::Cube;
using tt::TruthTable;

Cover random_cover(int n, int k, util::Rng& rng) {
  Cover f(n);
  for (int i = 0; i < k; ++i) {
    Cube c(n);
    for (int v = 0; v < n; ++v) {
      switch (rng.next_below(3)) {
        case 0: c.set_code(v, cubes::Pcn::kNeg); break;
        case 1: c.set_code(v, cubes::Pcn::kPos); break;
        default: break;
      }
    }
    f.add(std::move(c));
  }
  return f;
}

// Is every cube of g a prime implicant of the function on | dc?
bool all_cubes_prime(const Cover& g, const Cover& on, const Cover& dc) {
  const Cover allowed = on | dc;
  for (const auto& c : g.cubes()) {
    if (!cubes::cover_contains_cube(allowed, c)) return false;
    for (int v = 0; v < c.num_vars(); ++v) {
      if (c.code(v) == cubes::Pcn::kDontCare) continue;
      Cube raised = c;
      raised.set_code(v, cubes::Pcn::kDontCare);
      if (cubes::cover_contains_cube(allowed, raised)) return false;  // not maximal
    }
  }
  return true;
}

TEST(Expand, ProducesPrimes) {
  util::Rng rng(51);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(4, 3, rng);
    if (f.empty()) continue;
    const Cover dc(4);
    const auto off = cubes::complement(f);
    const auto e = expand(f, off);
    EXPECT_TRUE(is_legal_implementation(e, f, dc)) << f.to_string();
    EXPECT_TRUE(all_cubes_prime(e, f, dc)) << f.to_string();
  }
}

TEST(Irredundant, RemovesRedundantCube) {
  // y + xz + xy: the consensus cube xz... actually xy is inside y. Check
  // the textbook case: f = x + x'y + y -> x + y (x'y redundant).
  const auto f = Cover::parse(2, "1-\n01\n-1\n");
  const auto r = irredundant(f, Cover(2));
  EXPECT_TRUE(cubes::covers_equal(r, f));
  EXPECT_LE(r.size(), 2);
}

TEST(Irredundant, ResultHasNoRedundantCubes) {
  util::Rng rng(52);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(4, 5, rng);
    const auto r = irredundant(f, Cover(4));
    EXPECT_TRUE(cubes::covers_equal(r, f));
    // Each remaining cube must NOT be covered by the others.
    for (int i = 0; i < r.size(); ++i) {
      Cover rest(4);
      for (int j = 0; j < r.size(); ++j)
        if (j != i) rest.add(r.cube(j));
      EXPECT_FALSE(cubes::cover_contains_cube(rest, r.cube(i)));
    }
  }
}

TEST(Reduce, PreservesFunction) {
  util::Rng rng(53);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = random_cover(4, 4, rng);
    const auto r = reduce(f, Cover(4));
    EXPECT_TRUE(cubes::covers_equal(r, f)) << f.to_string();
  }
}

TEST(Minimize, TextbookExamples) {
  // f = a'b' + a'b + ab' = a' + b'  (2 cubes, 2 literals)
  const auto f = Cover::parse(2, "00\n01\n10\n");
  const auto m = minimize(f);
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.num_literals(), 2);
  EXPECT_TRUE(cubes::covers_equal(m, f));

  // Full cover of 2 vars -> single universal cube.
  const auto g = Cover::parse(2, "00\n01\n10\n11\n");
  const auto mg = minimize(g);
  EXPECT_EQ(mg.size(), 1);
  EXPECT_TRUE(mg.cube(0).is_universal());
}

TEST(Minimize, UsesDontCares) {
  // ON = {11}, DC = {10, 01}: minimal result is a single-literal cube.
  const auto on = Cover::parse(2, "11\n");
  const auto dc = Cover::parse(2, "10\n01\n");
  const auto m = minimize(on, dc);
  EXPECT_EQ(m.size(), 1);
  EXPECT_EQ(m.cube(0).num_literals(), 1);
  EXPECT_TRUE(is_legal_implementation(m, on, dc));
}

TEST(Minimize, LegalAndNeverWorseRandomized) {
  util::Rng rng(54);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const auto f = random_cover(n, 2 + static_cast<int>(rng.next_below(6)), rng);
    if (f.empty()) continue;
    const auto dc = random_cover(n, static_cast<int>(rng.next_below(3)), rng);
    MinimizeStats stats;
    const auto m = minimize(f, dc, {}, &stats);
    EXPECT_TRUE(is_legal_implementation(m, f, dc))
        << "F:\n" << f.to_string() << "DC:\n" << dc.to_string();
    EXPECT_LE(m.size(), stats.initial_cubes);
    EXPECT_GE(stats.iterations, 1);
  }
}

TEST(Minimize, EmptyAndTautology) {
  EXPECT_TRUE(minimize(Cover(3)).empty());
  const auto taut = minimize(Cover::universal(3));
  EXPECT_EQ(taut.size(), 1);
  EXPECT_TRUE(taut.cube(0).is_universal());
}

TEST(Qm, AllPrimesOfXor) {
  // XOR has exactly 2 primes (the two minterm cubes) in 2 vars.
  const auto f = Cover::parse(2, "01\n10\n");
  const auto primes = all_primes(f, Cover(2));
  EXPECT_EQ(primes.size(), 2u);
}

TEST(Qm, AllPrimesTextbook) {
  // f(a,b,c) = sum m(0,1,2,5,6,7): classic cyclic function, 6 primes.
  Cover f(3);
  for (const std::uint64_t m : {0, 1, 2, 5, 6, 7}) {
    Cube c(3);
    for (int v = 0; v < 3; ++v)
      c.set_code(v, ((m >> v) & 1) ? cubes::Pcn::kPos : cubes::Pcn::kNeg);
    f.add(std::move(c));
  }
  const auto primes = all_primes(f, Cover(3));
  EXPECT_EQ(primes.size(), 6u);
  // Exact cover of the cycle needs 3 cubes.
  ExactStats stats;
  const auto exact = exact_minimize(f, Cover(3), &stats);
  EXPECT_EQ(exact.size(), 3);
  EXPECT_TRUE(cubes::covers_equal(exact, f));
  EXPECT_GT(stats.branch_nodes, 0);  // the cyclic core forced branching
}

TEST(Qm, PrimesAreActuallyPrime) {
  util::Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_cover(4, 4, rng);
    if (f.empty()) continue;
    const auto primes = all_primes(f, Cover(4));
    Cover pc(4, primes);
    EXPECT_TRUE(all_cubes_prime(pc, f, Cover(4)));
  }
}

TEST(Qm, ExactMatchesFunctionRandomized) {
  util::Rng rng(56);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(2));
    const auto ft = TruthTable::random(n, rng);
    const auto f = Cover::from_truth_table(ft);
    const auto m = exact_minimize(f);
    EXPECT_EQ(m.to_truth_table(), ft);
  }
}

TEST(Qm, ExactNeverWorseThanHeuristic) {
  util::Rng rng(57);
  for (int trial = 0; trial < 20; ++trial) {
    const auto ft = TruthTable::random(4, rng);
    const auto f = Cover::from_truth_table(ft);
    if (f.empty()) continue;
    const auto heuristic = minimize(f);
    const auto exact = exact_minimize(f);
    EXPECT_LE(exact.size(), heuristic.size());
  }
}

TEST(Qm, ExactWithDontCares) {
  const auto on = Cover::parse(3, "111\n");
  const auto dc = Cover::parse(3, "110\n101\n011\n");
  const auto m = exact_minimize(on, dc);
  // With those DCs, a single 1-literal or 2-literal cube suffices.
  EXPECT_EQ(m.size(), 1);
  EXPECT_TRUE(is_legal_implementation(m, on, dc));
}

TEST(Pla, ParseBasic) {
  const auto pla = parse_pla(
      ".i 3\n.o 2\n.ilb a b c\n.ob f g\n"
      "11- 10\n--1 01\n1-1 1-\n.e\n");
  EXPECT_EQ(pla.num_inputs, 3);
  EXPECT_EQ(pla.num_outputs(), 2);
  EXPECT_EQ(pla.input_names[1], "b");
  EXPECT_EQ(pla.outputs[0].name, "f");
  EXPECT_EQ(pla.outputs[0].on.size(), 2);  // "11- 10" and "1-1 1-"
  EXPECT_EQ(pla.outputs[1].on.size(), 1);
  EXPECT_EQ(pla.outputs[1].dc.size(), 1);  // "1-1 1-" marks DC for output 1
}

TEST(Pla, ParseErrors) {
  EXPECT_THROW(parse_pla("11 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n111 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n11 11\n"), std::invalid_argument);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n11 x\n"), std::invalid_argument);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.bogus\n"), std::invalid_argument);
}

TEST(Pla, WriteParseRoundTrip) {
  const auto pla = parse_pla(".i 2\n.o 1\n11 1\n0- 1\n10 -\n.e\n");
  const auto again = parse_pla(write_pla(pla));
  EXPECT_EQ(again.num_inputs, 2);
  ASSERT_EQ(again.num_outputs(), 1);
  EXPECT_TRUE(cubes::covers_equal(again.outputs[0].on, pla.outputs[0].on));
  EXPECT_TRUE(cubes::covers_equal(again.outputs[0].dc, pla.outputs[0].dc));
}

TEST(Pla, MinimizeWholeFile) {
  // Minimize each output of a small PLA and verify legality.
  const auto pla = parse_pla(
      ".i 3\n.o 2\n"
      "000 10\n001 10\n010 10\n101 01\n111 01\n110 0-\n.e\n");
  for (const auto& out : pla.outputs) {
    const auto m = minimize(out.on, out.dc);
    EXPECT_TRUE(is_legal_implementation(m, out.on, out.dc));
    EXPECT_LE(m.size(), out.on.size());
  }
}

// Property sweep: heuristic and exact minimization agree with the original
// function for every arity 2..5 on random dense/sparse inputs.
class MinimizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeSweep, HeuristicPreservesFunction) {
  const int n = GetParam();
  util::Rng rng(500 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 15; ++trial) {
    const auto ft = TruthTable::random(n, rng);
    const auto f = Cover::from_truth_table(ft);
    EXPECT_EQ(minimize(f).to_truth_table(), ft);
  }
}

TEST_P(MinimizeSweep, SinglePassAblationStillLegal) {
  const int n = GetParam();
  util::Rng rng(600 + static_cast<std::uint64_t>(n));
  MinimizeOptions opt;
  opt.single_pass = true;
  for (int trial = 0; trial < 10; ++trial) {
    const auto ft = TruthTable::random(n, rng);
    const auto f = Cover::from_truth_table(ft);
    const auto m = minimize(f, Cover(n), opt, nullptr);
    EXPECT_EQ(m.to_truth_table(), ft);
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, MinimizeSweep, ::testing::Range(2, 6));

}  // namespace
}  // namespace l2l::espresso
