#include <gtest/gtest.h>

#include <set>

#include "route/maze.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "util/rng.hpp"

namespace l2l::route {
namespace {

gen::RoutingProblem empty_grid(int w, int h) {
  gen::RoutingProblem p;
  p.width = w;
  p.height = h;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(static_cast<std::size_t>(w) *
                                            static_cast<std::size_t>(h),
                                        false));
  return p;
}

// Is the net's cell set connected (orthogonal steps in-layer, vias between
// layers at the same x,y)?
bool connected(const NetRoute& net) {
  if (net.cells.empty()) return false;
  std::set<GridPoint> cells(net.cells.begin(), net.cells.end());
  std::vector<GridPoint> stack{net.cells.front()};
  std::set<GridPoint> seen;
  while (!stack.empty()) {
    const auto c = stack.back();
    stack.pop_back();
    if (!seen.insert(c).second) continue;
    const GridPoint nbrs[6] = {{c.x + 1, c.y, c.layer}, {c.x - 1, c.y, c.layer},
                               {c.x, c.y + 1, c.layer}, {c.x, c.y - 1, c.layer},
                               {c.x, c.y, c.layer + 1}, {c.x, c.y, c.layer - 1}};
    for (const auto& n : nbrs)
      if (cells.count(n)) stack.push_back(n);
  }
  return seen.size() == cells.size();
}

TEST(Maze, StraightShot) {
  const auto p = empty_grid(10, 10);
  Occupancy occ(p);
  const auto path = find_path(occ, {{0, 5, 0}}, {{9, 5, 0}}, 0, {});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cells.size(), 10u);
  EXPECT_DOUBLE_EQ(path->cost, 9.0);  // 9 steps on the preferred layer
}

TEST(Maze, NoPathThroughWall) {
  auto p = empty_grid(10, 10);
  // Wall across both layers at x=5.
  for (int layer = 0; layer < 2; ++layer)
    for (int y = 0; y < 10; ++y)
      p.blocked[static_cast<std::size_t>(layer)]
               [static_cast<std::size_t>(y) * 10 + 5] = true;
  Occupancy occ(p);
  EXPECT_FALSE(find_path(occ, {{0, 0, 0}}, {{9, 9, 0}}, 0, {}).has_value());
}

TEST(Maze, RoutesAroundObstacle) {
  auto p = empty_grid(10, 10);
  // Partial wall on layer 0 only; gap at the top.
  for (int y = 0; y < 9; ++y)
    p.blocked[0][static_cast<std::size_t>(y) * 10 + 5] = true;
  RouteCosts costs;
  costs.via = 1000.0;  // discourage layer change: must go around
  Occupancy occ(p);
  const auto path = find_path(occ, {{0, 0, 0}}, {{9, 0, 0}}, 0, costs);
  ASSERT_TRUE(path.has_value());
  bool visits_top = false;
  for (const auto& c : path->cells) {
    EXPECT_FALSE(p.is_blocked(c));
    if (c.y == 9) visits_top = true;
    EXPECT_EQ(c.layer, 0);
  }
  EXPECT_TRUE(visits_top);
}

TEST(Maze, CheapViaPrefersLayerChange) {
  auto p = empty_grid(10, 10);
  for (int y = 0; y < 10; ++y)
    p.blocked[0][static_cast<std::size_t>(y) * 10 + 5] = true;  // full wall, layer 0
  RouteCosts costs;
  costs.via = 2.0;
  Occupancy occ(p);
  const auto path = find_path(occ, {{0, 0, 0}}, {{9, 0, 0}}, 0, costs);
  ASSERT_TRUE(path.has_value());
  bool uses_layer1 = false;
  for (const auto& c : path->cells) uses_layer1 |= c.layer == 1;
  EXPECT_TRUE(uses_layer1);
}

TEST(Maze, PreferredDirectionPenaltyShapesRoute) {
  // Vertical run on layer 0 (horizontal-preferred) should switch to
  // layer 1 when vias are cheap, stay on layer 0 when vias are dear.
  const auto p = empty_grid(20, 20);
  Occupancy occ(p);
  RouteCosts cheap_via;
  cheap_via.via = 1.0;
  const auto with_via = find_path(occ, {{10, 0, 0}}, {{10, 19, 0}}, 0, cheap_via);
  ASSERT_TRUE(with_via.has_value());
  bool layer1 = false;
  for (const auto& c : with_via->cells) layer1 |= c.layer == 1;
  EXPECT_TRUE(layer1);

  RouteCosts dear_via;
  dear_via.via = 1e6;
  const auto without = find_path(occ, {{10, 0, 0}}, {{10, 19, 0}}, 0, dear_via);
  ASSERT_TRUE(without.has_value());
  for (const auto& c : without->cells) EXPECT_EQ(c.layer, 0);
  EXPECT_GT(without->cost, with_via->cost);
}

TEST(Maze, AStarAndDijkstraAgreeOnCost) {
  util::Rng rng(121);
  gen::RoutingGenOptions gopt;
  gopt.width = 24;
  gopt.height = 24;
  gopt.num_nets = 8;
  const auto p = gen::generate_routing(gopt, rng);
  Occupancy occ(p);
  for (const auto& net : p.nets) {
    RouteCosts astar;
    RouteCosts dijkstra;
    dijkstra.use_astar = false;
    const auto pa = find_path(occ, {net.pins[0]}, {net.pins[1]}, net.id, astar);
    const auto pd = find_path(occ, {net.pins[0]}, {net.pins[1]}, net.id, dijkstra);
    ASSERT_EQ(pa.has_value(), pd.has_value());
    if (pa) {
      EXPECT_NEAR(pa->cost, pd->cost, 1e-9);
      EXPECT_LE(pa->expansions, pd->expansions);  // A* is never worse
    }
  }
}

TEST(Maze, OwnCellsAreFreeToReuse) {
  const auto p = empty_grid(10, 10);
  Occupancy occ(p);
  // Pre-claim a backbone for net 7.
  for (int x = 0; x < 10; ++x) occ.set({x, 5, 0}, 7);
  const auto path = find_path(occ, {{0, 5, 0}}, {{9, 5, 0}}, 7, {});
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 0.0);  // rides its own metal
}

TEST(Maze, OtherNetsBlock) {
  const auto p = empty_grid(10, 10);
  Occupancy occ(p);
  for (int y = 0; y < 10; ++y)
    for (int layer = 0; layer < 2; ++layer) occ.set({5, y, layer}, 3);
  EXPECT_FALSE(find_path(occ, {{0, 0, 0}}, {{9, 0, 0}}, 0, {}).has_value());
}

TEST(Router, RoutesCleanProblemCompletely) {
  util::Rng rng(122);
  gen::RoutingGenOptions gopt;
  gopt.width = 32;
  gopt.height = 32;
  gopt.num_nets = 16;
  gopt.obstacle_fraction = 0.05;
  const auto p = gen::generate_routing(gopt, rng);
  const auto sol = route_all(p);
  EXPECT_EQ(sol.stats.failed, 0);
  EXPECT_EQ(sol.stats.routed, 16);
  for (const auto& net : sol.nets) {
    EXPECT_TRUE(net.routed);
    EXPECT_TRUE(connected(net)) << "net " << net.net_id;
  }
  // No two nets share a cell.
  std::set<GridPoint> all;
  for (const auto& net : sol.nets)
    for (const auto& c : net.cells)
      EXPECT_TRUE(all.insert(c).second) << "overlap at net " << net.net_id;
}

TEST(Router, MultiPinNetsFormTrees) {
  util::Rng rng(123);
  gen::RoutingGenOptions gopt;
  gopt.width = 32;
  gopt.height = 32;
  gopt.num_nets = 8;
  gopt.max_pins_per_net = 5;
  const auto p = gen::generate_routing(gopt, rng);
  const auto sol = route_all(p);
  for (std::size_t n = 0; n < p.nets.size(); ++n) {
    if (!sol.nets[n].routed) continue;
    EXPECT_TRUE(connected(sol.nets[n]));
    std::set<GridPoint> cells(sol.nets[n].cells.begin(), sol.nets[n].cells.end());
    for (const auto& pin : p.nets[n].pins)
      EXPECT_TRUE(cells.count(pin)) << "pin missing from net " << n;
  }
}

TEST(Router, RipUpRecoversCongestion) {
  // Dense crossing pattern that sequential routing may fail without rip-up.
  auto p = empty_grid(16, 16);
  // Nets crossing through the center from all sides.
  int id = 0;
  for (int k = 2; k < 14; k += 2) {
    p.nets.push_back({id++, {{0, k, 0}, {15, k, 0}}});
    p.nets.push_back({id++, {{k, 0, 0}, {k, 15, 0}}});
  }
  RouterOptions opt;
  opt.max_ripup_iterations = 5;
  const auto sol = route_all(p, opt);
  EXPECT_EQ(sol.stats.failed, 0) << "failed " << sol.stats.failed;
}

TEST(Router, NegotiationBeatsSequentialOnCongestion) {
  // A deliberately congested die: PathFinder-style negotiation must route
  // at least as many nets as plain sequential rip-up (in practice more),
  // and both answers must be legal (checked by the overlap sweep below).
  util::Rng rng(99);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 32;
  gopt.num_nets = 40;
  gopt.max_pins_per_net = 3;
  const auto p = gen::generate_routing(gopt, rng);
  RouterOptions nego;
  nego.max_negotiation_iterations = 15;
  RouterOptions seq;
  seq.negotiated = false;
  const auto s1 = route_all(p, nego);
  const auto s2 = route_all(p, seq);
  EXPECT_GE(s1.stats.routed, s2.stats.routed);
  EXPECT_GT(s1.stats.routed, 0);
  for (const auto* sol : {&s1, &s2}) {
    std::set<GridPoint> all;
    for (const auto& net : sol->nets) {
      if (!net.routed) continue;
      EXPECT_TRUE(connected(net));
      for (const auto& c : net.cells) EXPECT_TRUE(all.insert(c).second);
    }
  }
}

TEST(Solution, WriteParseRoundTrip) {
  util::Rng rng(124);
  gen::RoutingGenOptions gopt;
  gopt.width = 16;
  gopt.height = 16;
  gopt.num_nets = 5;
  const auto p = gen::generate_routing(gopt, rng);
  const auto sol = route_all(p);
  const auto again = parse_solution(write_solution(sol));
  ASSERT_EQ(again.nets.size(), sol.nets.size());
  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    EXPECT_EQ(again.nets[n].net_id, sol.nets[n].net_id);
    EXPECT_EQ(again.nets[n].cells, sol.nets[n].cells);
  }
}

TEST(Solution, ParseErrors) {
  EXPECT_THROW(parse_solution(""), std::invalid_argument);
  EXPECT_THROW(parse_solution("1\n(0 0 0)\n"), std::invalid_argument);
  EXPECT_THROW(parse_solution("2\nnet 0\n!\n"), std::invalid_argument);
  EXPECT_THROW(parse_solution("1\nnet 0\n(1 2)\n!\n"), std::invalid_argument);
  EXPECT_THROW(parse_solution("1\nnet 0\nxyz\n!\n"), std::invalid_argument);
}

TEST(Solution, ProblemRoundTrip) {
  util::Rng rng(125);
  gen::RoutingGenOptions gopt;
  gopt.width = 16;
  gopt.height = 12;
  gopt.num_nets = 4;
  const auto p = gen::generate_routing(gopt, rng);
  const auto again = parse_problem(write_problem(p));
  EXPECT_EQ(again.width, p.width);
  EXPECT_EQ(again.height, p.height);
  EXPECT_EQ(again.blocked, p.blocked);
  ASSERT_EQ(again.nets.size(), p.nets.size());
  for (std::size_t n = 0; n < p.nets.size(); ++n)
    EXPECT_EQ(again.nets[n].pins, p.nets[n].pins);
}

TEST(Solution, AsciiRenderShowsNetsAndPins) {
  auto p = empty_grid(8, 8);
  p.nets.push_back({0, {{0, 0, 0}, {7, 0, 0}}});
  const auto sol = route_all(p);
  const auto art = render_ascii(p, sol, 0);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('a'), std::string::npos);
}

// The Figure-6 unit tests of the MOOC router project: short wires in one
// layer, vertical segments, bends, obstacle detours -- run as a
// parameterized suite.
struct UnitCase {
  const char* name;
  GridPoint from, to;
  int wall_x;  // -1 = none; else vertical wall on layer 0 with top gap
};

class RouterUnitTests : public ::testing::TestWithParam<UnitCase> {};

TEST_P(RouterUnitTests, RoutesAndVerifies) {
  const auto& tc = GetParam();
  auto p = empty_grid(12, 12);
  if (tc.wall_x >= 0)
    for (int y = 0; y < 11; ++y)
      p.blocked[0][static_cast<std::size_t>(y) * 12 +
                   static_cast<std::size_t>(tc.wall_x)] = true;
  p.nets.push_back({0, {tc.from, tc.to}});
  const auto sol = route_all(p);
  ASSERT_TRUE(sol.nets[0].routed) << tc.name;
  EXPECT_TRUE(connected(sol.nets[0])) << tc.name;
  for (const auto& c : sol.nets[0].cells) EXPECT_FALSE(p.is_blocked(c));
}

INSTANTIATE_TEST_SUITE_P(
    Fig6, RouterUnitTests,
    ::testing::Values(
        UnitCase{"short_horizontal", {1, 1, 0}, {4, 1, 0}, -1},
        UnitCase{"short_vertical", {2, 1, 0}, {2, 6, 0}, -1},
        UnitCase{"single_bend", {1, 1, 0}, {8, 8, 0}, -1},
        UnitCase{"cross_layer", {1, 1, 0}, {8, 8, 1}, -1},
        UnitCase{"around_obstacle", {1, 1, 0}, {10, 1, 0}, 6},
        UnitCase{"adjacent_cells", {5, 5, 0}, {5, 6, 0}, -1}),
    [](const ::testing::TestParamInfo<UnitCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace l2l::route
