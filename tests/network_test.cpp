#include <gtest/gtest.h>

#include "network/bdd_build.hpp"
#include "network/blif.hpp"
#include "network/cnf.hpp"
#include "network/equivalence.hpp"
#include "network/network.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::network {
namespace {

// A full adder: sum = a^b^cin, cout = ab + cin(a^b).
Network full_adder() {
  Network net("full_adder");
  const auto a = net.add_input("a");
  const auto b = net.add_input("b");
  const auto cin = net.add_input("cin");
  const auto axb =
      net.add_logic("axb", {a, b}, cubes::Cover::parse(2, "10\n01\n"));
  const auto sum =
      net.add_logic("sum", {axb, cin}, cubes::Cover::parse(2, "10\n01\n"));
  const auto cout = net.add_logic(
      "cout", {a, b, cin, axb}, cubes::Cover::parse(4, "11--\n--11\n"));
  net.mark_output(sum);
  net.mark_output(cout);
  return net;
}

TEST(Network, BuildAndQuery) {
  const auto net = full_adder();
  EXPECT_EQ(net.inputs().size(), 3u);
  EXPECT_EQ(net.outputs().size(), 2u);
  EXPECT_EQ(net.num_logic_nodes(), 3);
  EXPECT_TRUE(net.find("axb").has_value());
  EXPECT_FALSE(net.find("nope").has_value());
  net.validate();
}

TEST(Network, DuplicateNamesRejected) {
  Network net;
  net.add_input("a");
  EXPECT_THROW(net.add_input("a"), std::invalid_argument);
  EXPECT_THROW(net.add_logic("a", {}, cubes::Cover(0)), std::invalid_argument);
}

TEST(Network, ArityMismatchRejected) {
  Network net;
  const auto a = net.add_input("a");
  EXPECT_THROW(net.add_logic("y", {a}, cubes::Cover(2)), std::invalid_argument);
}

TEST(Network, TopologicalOrderRespectsEdges) {
  const auto net = full_adder();
  const auto order = net.topological_order();
  std::vector<int> pos(static_cast<std::size_t>(net.num_nodes()));
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    for (const NodeId f : net.node(id).fanins)
      EXPECT_LT(pos[static_cast<std::size_t>(f)], pos[static_cast<std::size_t>(id)]);
}

TEST(Network, LevelsOfFullAdder) {
  const auto net = full_adder();
  const auto lvl = net.levels();
  EXPECT_EQ(lvl[static_cast<std::size_t>(*net.find("a"))], 0);
  EXPECT_EQ(lvl[static_cast<std::size_t>(*net.find("axb"))], 1);
  EXPECT_EQ(lvl[static_cast<std::size_t>(*net.find("sum"))], 2);
  EXPECT_EQ(lvl[static_cast<std::size_t>(*net.find("cout"))], 2);
}

TEST(Network, SimulateFullAdderTruth) {
  const auto net = full_adder();
  for (int m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, cin = (m >> 2) & 1;
    const auto vals = net.simulate({a, b, cin});
    const int total = a + b + cin;
    EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[0])], total % 2 == 1) << m;
    EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[1])], total >= 2) << m;
  }
}

TEST(Network, Simulate64MatchesScalar) {
  const auto net = full_adder();
  // Encode all 8 input patterns into the low 8 bits of each word.
  std::vector<std::uint64_t> words(3, 0);
  for (int m = 0; m < 8; ++m)
    for (int i = 0; i < 3; ++i)
      if ((m >> i) & 1) words[static_cast<std::size_t>(i)] |= 1ull << m;
  const auto wide = net.simulate64(words);
  for (int m = 0; m < 8; ++m) {
    const auto vals =
        net.simulate({static_cast<bool>(m & 1), static_cast<bool>((m >> 1) & 1),
                      static_cast<bool>((m >> 2) & 1)});
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      EXPECT_EQ((wide[static_cast<std::size_t>(id)] >> m) & 1,
                static_cast<std::uint64_t>(vals[static_cast<std::size_t>(id)]));
  }
}

TEST(Network, ConstantNodes) {
  Network net;
  const auto one = net.add_constant("one", true);
  const auto zero = net.add_constant("zero", false);
  net.mark_output(one);
  net.mark_output(zero);
  const auto vals = net.simulate({});
  EXPECT_TRUE(vals[static_cast<std::size_t>(one)]);
  EXPECT_FALSE(vals[static_cast<std::size_t>(zero)]);
}

TEST(Network, SweepRemovesDanglingLogic) {
  Network net;
  const auto a = net.add_input("a");
  const auto used = net.add_logic("used", {a}, cubes::Cover::parse(1, "0\n"));
  net.add_logic("unused", {a}, cubes::Cover::parse(1, "1\n"));
  net.mark_output(used);
  EXPECT_EQ(net.sweep_dangling(), 1);
  EXPECT_TRUE(net.is_dead(*net.find("unused") ? 2 : 2));
  net.validate();
  EXPECT_EQ(net.num_logic_nodes(), 1);
}

TEST(Network, CycleDetected) {
  Network net;
  const auto a = net.add_input("a");
  const auto x = net.add_logic("x", {a}, cubes::Cover::parse(1, "1\n"));
  const auto y = net.add_logic("y", {x}, cubes::Cover::parse(1, "1\n"));
  net.replace_fanin(x, a, y);  // x <- y <- x
  EXPECT_THROW(net.topological_order(), std::logic_error);
}

TEST(Blif, ParseFullAdder) {
  const auto net = parse_blif(
      ".model fa\n"
      ".inputs a b cin\n"
      ".outputs sum cout\n"
      ".names a b axb\n10 1\n01 1\n"
      ".names axb cin sum\n10 1\n01 1\n"
      ".names a b cin cout\n11- 1\n1-1 1\n-11 1\n"
      ".end\n");
  EXPECT_EQ(net.model_name(), "fa");
  for (int m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, cin = (m >> 2) & 1;
    const auto vals = net.simulate({a, b, cin});
    const int total = a + b + cin;
    EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[0])], total % 2 == 1);
    EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[1])], total >= 2);
  }
}

TEST(Blif, OutOfOrderBlocksResolved) {
  const auto net = parse_blif(
      ".model ooo\n.inputs a\n.outputs y\n"
      ".names m y\n1 1\n"   // y depends on m, defined later
      ".names a m\n0 1\n"
      ".end\n");
  const auto vals = net.simulate({true});
  EXPECT_FALSE(vals[static_cast<std::size_t>(net.outputs()[0])]);
}

TEST(Blif, ZeroOutputColumnMeansOffset) {
  // .names with 0-rows: the ON-set is the complement of the given rows.
  const auto net = parse_blif(
      ".model inv\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n");
  EXPECT_TRUE(net.simulate({false})[static_cast<std::size_t>(net.outputs()[0])]);
  EXPECT_FALSE(net.simulate({true})[static_cast<std::size_t>(net.outputs()[0])]);
}

TEST(Blif, ConstantBlocks) {
  const auto net = parse_blif(
      ".model c\n.inputs\n.outputs one zero\n"
      ".names one\n1\n"
      ".names zero\n"
      ".end\n");
  const auto vals = net.simulate({});
  EXPECT_TRUE(vals[static_cast<std::size_t>(net.outputs()[0])]);
  EXPECT_FALSE(vals[static_cast<std::size_t>(net.outputs()[1])]);
}

TEST(Blif, LineContinuation) {
  const auto net = parse_blif(
      ".model k\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(net.inputs().size(), 2u);
}

TEST(Blif, Errors) {
  EXPECT_THROW(parse_blif(".model m\n.latch a b\n.end\n"), std::invalid_argument);
  EXPECT_THROW(parse_blif("11 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs y\n.end\n"),
               std::invalid_argument);  // undriven output
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs y\n"
                          ".names a y\n11 1\n.end\n"),
               std::invalid_argument);  // cube width mismatch
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs y\n"
                          ".names a y\n1 1\n0 0\n.end\n"),
               std::invalid_argument);  // mixed output column
}

TEST(Blif, WriteParseRoundTripPreservesFunction) {
  const auto net = full_adder();
  const auto again = parse_blif(write_blif(net));
  const auto res = check_equivalence(net, again, EquivalenceMethod::kBdd);
  EXPECT_TRUE(res.equivalent);
}

TEST(Bdds, FullAdderOutputsMatchSimulation) {
  const auto net = full_adder();
  bdd::Manager mgr(3);
  const auto bdds = build_bdds(net, mgr);
  for (int m = 0; m < 8; ++m) {
    std::vector<bool> in{static_cast<bool>(m & 1), static_cast<bool>((m >> 1) & 1),
                         static_cast<bool>((m >> 2) & 1)};
    const auto vals = net.simulate(in);
    for (std::size_t o = 0; o < net.outputs().size(); ++o)
      EXPECT_EQ(bdds.outputs[o].eval(in),
                vals[static_cast<std::size_t>(net.outputs()[o])]);
  }
}

TEST(Cnf, EncodingConsistentWithSimulation) {
  const auto net = full_adder();
  util::Rng rng(61);
  for (int trial = 0; trial < 8; ++trial) {
    sat::Solver solver;
    const auto map = encode_network(net, solver);
    // Pin the inputs to a random pattern; outputs must propagate to match.
    std::vector<bool> in;
    for (std::size_t i = 0; i < 3; ++i) in.push_back(rng.next_bool());
    for (std::size_t i = 0; i < 3; ++i)
      solver.add_unit(sat::mk_lit(map.node_var[static_cast<std::size_t>(net.inputs()[i])], !in[i]));
    ASSERT_EQ(solver.solve(), sat::LBool::kTrue);
    const auto vals = net.simulate(in);
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      EXPECT_EQ(solver.model_value(map.node_var[static_cast<std::size_t>(id)]),
                vals[static_cast<std::size_t>(id)]);
  }
}

TEST(Equivalence, IdenticalNetworksEquivalentBothMethods) {
  const auto a = full_adder();
  const auto b = full_adder();
  EXPECT_TRUE(check_equivalence(a, b, EquivalenceMethod::kBdd).equivalent);
  EXPECT_TRUE(check_equivalence(a, b, EquivalenceMethod::kSat).equivalent);
}

TEST(Equivalence, StructurallyDifferentButEquivalent) {
  // cout via the axb shortcut vs. the flat 3-cube version.
  const auto a = full_adder();
  const auto b = parse_blif(
      ".model fa\n.inputs a b cin\n.outputs sum cout\n"
      ".names a b cin sum\n100 1\n010 1\n001 1\n111 1\n"
      ".names a b cin cout\n11- 1\n1-1 1\n-11 1\n.end\n");
  EXPECT_TRUE(check_equivalence(a, b, EquivalenceMethod::kBdd).equivalent);
  EXPECT_TRUE(check_equivalence(a, b, EquivalenceMethod::kSat).equivalent);
}

TEST(Equivalence, DetectsBugWithCounterexample) {
  const auto a = full_adder();
  // Buggy adder: cout missing one cube.
  const auto b = parse_blif(
      ".model fa\n.inputs a b cin\n.outputs sum cout\n"
      ".names a b cin sum\n100 1\n010 1\n001 1\n111 1\n"
      ".names a b cin cout\n11- 1\n1-1 1\n.end\n");
  for (const auto method : {EquivalenceMethod::kBdd, EquivalenceMethod::kSat}) {
    const auto res = check_equivalence(a, b, method);
    EXPECT_FALSE(res.equivalent);
    EXPECT_EQ(res.failing_output, "cout");
    ASSERT_TRUE(res.counterexample.has_value());
    // The counterexample must actually distinguish the two networks.
    const auto va = a.simulate(*res.counterexample);
    const auto vb = b.simulate(*res.counterexample);
    EXPECT_NE(va[static_cast<std::size_t>(a.outputs()[1])],
              vb[static_cast<std::size_t>(b.outputs()[1])]);
  }
}

TEST(Equivalence, InterfaceMismatchThrows) {
  Network a;
  a.mark_output(a.add_input("x"));
  Network b;
  b.mark_output(b.add_input("y"));
  EXPECT_THROW(check_equivalence(a, b, EquivalenceMethod::kBdd),
               std::invalid_argument);
}

// Property: random networks survive BLIF round-trips and both equivalence
// methods agree with each other.
class RandomNetworkTest : public ::testing::TestWithParam<int> {};

Network random_network(int num_inputs, int num_nodes, util::Rng& rng) {
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < num_inputs; ++i)
    pool.push_back(net.add_input(util::format("i%d", i)));
  for (int k = 0; k < num_nodes; ++k) {
    const int arity = 1 + static_cast<int>(rng.next_below(3));
    std::vector<NodeId> fanins;
    for (int j = 0; j < arity; ++j)
      fanins.push_back(pool[static_cast<std::size_t>(rng.next_below(pool.size()))]);
    cubes::Cover cover(arity);
    const int ncubes = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < ncubes; ++c) {
      cubes::Cube cube(arity);
      for (int v = 0; v < arity; ++v) {
        switch (rng.next_below(3)) {
          case 0: cube.set_code(v, cubes::Pcn::kNeg); break;
          case 1: cube.set_code(v, cubes::Pcn::kPos); break;
          default: break;
        }
      }
      cover.add(std::move(cube));
    }
    pool.push_back(net.add_logic(util::format("n%d", k), std::move(fanins),
                                 std::move(cover)));
  }
  // Mark the last few nodes as outputs.
  for (int k = 0; k < 3; ++k)
    net.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(k)]);
  return net;
}

TEST_P(RandomNetworkTest, BlifRoundTripAndMethodsAgree) {
  util::Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
  const auto net = random_network(4, 8, rng);
  const auto again = parse_blif(write_blif(net));
  const auto r1 = check_equivalence(net, again, EquivalenceMethod::kBdd);
  const auto r2 = check_equivalence(net, again, EquivalenceMethod::kSat);
  EXPECT_TRUE(r1.equivalent);
  EXPECT_TRUE(r2.equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace l2l::network
