#include <gtest/gtest.h>

#include "fault/atpg.hpp"
#include "fault/faults.hpp"
#include "fault/simulator.hpp"
#include "gen/function_gen.hpp"
#include "network/blif.hpp"
#include "util/rng.hpp"

namespace l2l::fault {
namespace {

using network::Network;
using network::parse_blif;

Network and_gate() {
  return parse_blif(
      ".model a\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
}

TEST(Faults, EnumerationAndNames) {
  const auto net = and_gate();
  const auto faults = enumerate_faults(net);
  EXPECT_EQ(faults.size(), 6u);  // 3 nodes x 2 polarities
  EXPECT_NE(faults[0].to_string(net).find("stuck-at-0"), std::string::npos);
}

TEST(Faults, CollapseDropsBufferFaults) {
  const auto net = parse_blif(
      ".model b\n.inputs a\n.outputs y\n"
      ".names a t\n1 1\n"   // buffer
      ".names t y\n0 1\n"   // inverter
      ".end\n");
  const auto all = enumerate_faults(net);
  const auto collapsed = collapse_faults(net, all);
  EXPECT_LT(collapsed.size(), all.size());
}

TEST(Simulator, AndGateTruth) {
  const auto net = and_gate();
  const auto y = *net.find("y");
  // Pattern (1,1) detects y stuck-at-0; (0,1)/(1,0)/(0,0) detect y s-a-1.
  FaultSimResult r1 = simulate_faults(net, {{y, false}}, {{true, true}});
  EXPECT_EQ(r1.detected, 1);
  FaultSimResult r2 = simulate_faults(net, {{y, false}}, {{false, true}});
  EXPECT_EQ(r2.detected, 0);
  FaultSimResult r3 = simulate_faults(net, {{y, true}}, {{false, true}});
  EXPECT_EQ(r3.detected, 1);
}

TEST(Simulator, InputFaults) {
  const auto net = and_gate();
  const auto a = *net.find("a");
  // a stuck-at-0 detected by (1,1) only.
  EXPECT_EQ(simulate_faults(net, {{a, false}}, {{true, true}}).detected, 1);
  EXPECT_EQ(simulate_faults(net, {{a, false}}, {{true, false}}).detected, 0);
  // a stuck-at-1 detected by (0,1).
  EXPECT_EQ(simulate_faults(net, {{a, true}}, {{false, true}}).detected, 1);
}

TEST(Simulator, ExhaustivePatternsDetectAllAdderFaults) {
  const auto net = gen::adder_network(2);
  const auto faults = enumerate_faults(net);
  std::vector<std::vector<bool>> patterns;
  for (int m = 0; m < 32; ++m) {
    std::vector<bool> p;
    for (int i = 0; i < 5; ++i) p.push_back((m >> i) & 1);
    patterns.push_back(p);
  }
  const auto res = simulate_faults(net, faults, patterns);
  // The adder is irredundant: exhaustive patterns detect every fault.
  EXPECT_EQ(res.detected, res.total_faults) << res.undetected.size();
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
}

TEST(Simulator, MoreRandomPatternsNeverLowerCoverage) {
  const auto net = gen::adder_network(3);
  const auto faults = enumerate_faults(net);
  util::Rng r1(31), r2(31);
  const auto few = random_pattern_coverage(net, faults, 4, r1);
  const auto many = random_pattern_coverage(net, faults, 64, r2);
  EXPECT_GE(many.coverage(), few.coverage());
  EXPECT_GT(many.coverage(), 0.9);
}

TEST(Simulator, PatternArityChecked) {
  const auto net = and_gate();
  EXPECT_THROW(simulate_faults(net, enumerate_faults(net), {{true}}),
               std::invalid_argument);
}

TEST(Atpg, GeneratesVerifiedTestsForAdder) {
  const auto net = gen::adder_network(2);
  const auto faults = enumerate_faults(net);
  const auto res = run_atpg(net, faults);
  // Irredundant circuit: every fault testable; every vector verified.
  EXPECT_EQ(res.untestable, 0);
  EXPECT_EQ(res.testable, static_cast<int>(faults.size()));
  for (const auto& [fault, vec] : res.tests) {
    const auto check = simulate_faults(net, {fault}, {vec});
    EXPECT_EQ(check.detected, 1) << fault.to_string(net);
  }
}

TEST(Atpg, ProvesRedundantFaultUntestable) {
  // y = a + a'b == a + b: the a' literal is redundant... build the
  // classic redundancy: y = ab + a'c + bc (consensus term bc redundant):
  // a stuck fault inside the bc term region... Use a simpler guaranteed
  // redundancy: t = a AND a' (constant 0) feeding an OR.
  const auto net = parse_blif(
      ".model r\n.inputs a b\n.outputs y\n"
      ".names a na\n0 1\n"
      ".names a na t\n11 1\n"   // t = a & a' == 0 always
      ".names t b y\n1- 1\n-1 1\n"  // y = t + b == b
      ".end\n");
  const auto t = *net.find("t");
  // t stuck-at-0 is undetectable (t is always 0 anyway).
  const auto res = run_atpg(net, {{t, false}});
  EXPECT_EQ(res.untestable, 1);
  // t stuck-at-1 IS detectable (set b=0, y flips).
  const auto res2 = run_atpg(net, {{t, true}});
  EXPECT_EQ(res2.testable, 1);
}

TEST(Atpg, SingleFaultApi) {
  const auto net = and_gate();
  const auto y = *net.find("y");
  const auto vec = generate_test(net, {y, false});
  ASSERT_TRUE(vec.has_value());
  EXPECT_TRUE((*vec)[0] && (*vec)[1]);  // only (1,1) activates y s-a-0
}

TEST(Atpg, CoverageClosureLoop) {
  // Random patterns first, ATPG for the leftovers: total coverage 100%
  // minus provably redundant faults.
  const auto net = gen::adder_network(2);
  const auto faults = enumerate_faults(net);
  util::Rng rng(33);
  const auto sim = random_pattern_coverage(net, faults, 8, rng);
  const auto atpg = run_atpg(net, sim.undetected);
  EXPECT_EQ(atpg.untestable, 0);
  EXPECT_EQ(sim.detected + atpg.testable, static_cast<int>(faults.size()));
}

}  // namespace
}  // namespace l2l::fault
