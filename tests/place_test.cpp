#include <gtest/gtest.h>

#include <cmath>

#include "gen/placement_gen.hpp"
#include "place/annealing.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "util/rng.hpp"

namespace l2l::place {
namespace {

gen::PlacementProblem small_problem(util::Rng& rng, int cells = 120) {
  gen::PlacementGenOptions opt;
  opt.num_cells = cells;
  opt.num_pads = 16;
  return gen::generate_placement(opt, rng);
}

TEST(Generator, ProducesValidDeterministicProblems) {
  util::Rng a(91), b(91), c(92);
  const auto p1 = small_problem(a);
  const auto p2 = small_problem(b);
  const auto p3 = small_problem(c);
  EXPECT_EQ(p1.nets.size(), p2.nets.size());
  for (std::size_t n = 0; n < p1.nets.size(); ++n)
    EXPECT_EQ(p1.nets[n].size(), p2.nets[n].size());
  // Different seed differs somewhere.
  bool differs = p1.nets.size() != p3.nets.size();
  for (std::size_t n = 0; !differs && n < std::min(p1.nets.size(), p3.nets.size()); ++n)
    differs = p1.nets[n].size() != p3.nets[n].size() ||
              (p1.nets[n][0].index != p3.nets[n][0].index);
  EXPECT_TRUE(differs);
}

TEST(Wirelength, HpwlSimpleNet) {
  gen::PlacementProblem p;
  p.num_cells = 2;
  p.width = p.height = 10;
  p.nets = {{{false, 0}, {false, 1}}};
  Placement pl;
  pl.x = {1.0, 4.0};
  pl.y = {2.0, 6.0};
  EXPECT_DOUBLE_EQ(hpwl(p, pl), 3.0 + 4.0);
}

TEST(Wirelength, HpwlWithPad) {
  gen::PlacementProblem p;
  p.num_cells = 1;
  p.width = p.height = 10;
  p.pads = {{0.0, 0.0, "p0"}};
  p.nets = {{{false, 0}, {true, 0}}};
  Placement pl;
  pl.x = {3.0};
  pl.y = {4.0};
  EXPECT_DOUBLE_EQ(hpwl(p, pl), 7.0);
}

TEST(Quadratic, TwoCellsBetweenTwoPads) {
  // pad(0) - c0 - c1 - pad(10): optimum is even spacing 10/3, 20/3.
  gen::PlacementProblem p;
  p.num_cells = 2;
  p.width = p.height = 10;
  p.pads = {{0.0, 5.0, "l"}, {10.0, 5.0, "r"}};
  p.nets = {{{true, 0}, {false, 0}},
            {{false, 0}, {false, 1}},
            {{false, 1}, {true, 1}}};
  const auto pl = solve_global(p);
  EXPECT_NEAR(pl.x[0], 10.0 / 3, 1e-3);
  EXPECT_NEAR(pl.x[1], 20.0 / 3, 1e-3);
  EXPECT_NEAR(pl.y[0], 5.0, 1e-3);
  EXPECT_NEAR(pl.y[1], 5.0, 1e-3);
}

TEST(Quadratic, GlobalSolveBeatsRandomOnQuadraticObjective) {
  util::Rng rng(93);
  const auto p = small_problem(rng);
  const auto solved = solve_global(p);
  Placement random;
  for (int c = 0; c < p.num_cells; ++c) {
    random.x.push_back(rng.next_double() * p.width);
    random.y.push_back(rng.next_double() * p.height);
  }
  EXPECT_LT(quadratic_wirelength(p, solved), quadratic_wirelength(p, random));
}

TEST(Quadratic, RecursionSpreadsCells) {
  util::Rng rng(94);
  const auto p = small_problem(rng, 200);
  QuadraticStats gstats, rstats;
  const auto global_only = solve_global(p, {}, &gstats);
  const auto recursive = place_quadratic(p, {}, &rstats);
  EXPECT_EQ(gstats.regions_solved, 1);
  EXPECT_GT(rstats.regions_solved, 1);
  EXPECT_GT(rstats.levels, 1);

  // Spreading metric: mean pairwise min distance must improve (global
  // solutions clump near the center). Use coordinate variance as a proxy.
  auto variance = [&](const Placement& pl) {
    double mx = 0, my = 0;
    for (int c = 0; c < p.num_cells; ++c) {
      mx += pl.x[static_cast<std::size_t>(c)];
      my += pl.y[static_cast<std::size_t>(c)];
    }
    mx /= p.num_cells;
    my /= p.num_cells;
    double v = 0;
    for (int c = 0; c < p.num_cells; ++c) {
      const double dx = pl.x[static_cast<std::size_t>(c)] - mx;
      const double dy = pl.y[static_cast<std::size_t>(c)] - my;
      v += dx * dx + dy * dy;
    }
    return v / p.num_cells;
  };
  EXPECT_GT(variance(recursive), 1.5 * variance(global_only));
}

TEST(Quadratic, StarAndCliqueBothReasonable) {
  util::Rng rng(95);
  const auto p = small_problem(rng);
  QuadraticOptions clique;
  QuadraticOptions star;
  star.net_model = NetModel::kStar;
  const auto pc = place_quadratic(p, clique);
  const auto ps = place_quadratic(p, star);
  const double hc = hpwl(p, pc);
  const double hs = hpwl(p, ps);
  // Same ballpark: within 2x of each other (models differ, quality close).
  EXPECT_LT(hc, 2.0 * hs);
  EXPECT_LT(hs, 2.0 * hc);
}

TEST(Legalize, ProducesLegalPlacement) {
  util::Rng rng(96);
  const auto p = small_problem(rng);
  const auto pl = place_quadratic(p);
  const Grid grid{12, 12, p.width, p.height};
  const auto gp = legalize(p, pl, grid);
  EXPECT_TRUE(is_legal(gp, grid));
}

TEST(Legalize, ThrowsWhenTooSmall) {
  util::Rng rng(97);
  const auto p = small_problem(rng, 50);
  const auto pl = solve_global(p);
  EXPECT_THROW(legalize(p, pl, Grid{4, 4, p.width, p.height}),
               std::invalid_argument);
}

TEST(Legalize, RoughlyPreservesPositions) {
  util::Rng rng(98);
  const auto p = small_problem(rng);
  const auto pl = place_quadratic(p);
  const Grid grid{16, 16, p.width, p.height};
  const auto gp = legalize(p, pl, grid);
  const auto snapped = gp.to_continuous(grid);
  // Legalization must not explode the wirelength (allow 2.5x).
  EXPECT_LT(hpwl(p, snapped), 2.5 * hpwl(p, pl) + 100.0);
}

TEST(Annealing, ImprovesRandomStart) {
  util::Rng rng(99);
  const auto p = small_problem(rng);
  const Grid grid{12, 12, p.width, p.height};
  const auto start = random_grid_placement(p, grid, rng);
  AnnealingStats stats;
  AnnealingOptions opt;
  opt.moves_per_cell_per_stage = 6;  // keep the test fast
  const auto result = anneal(p, grid, start, opt, rng, &stats);
  EXPECT_TRUE(is_legal(result, grid));
  EXPECT_LT(stats.final_cost, stats.initial_cost);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_GT(stats.initial_temperature, 0.0);
}

TEST(Annealing, DeterministicForSameSeed) {
  util::Rng prng(100);
  const auto p = small_problem(prng);
  const Grid grid{12, 12, p.width, p.height};
  AnnealingOptions opt;
  opt.moves_per_cell_per_stage = 3;
  util::Rng r1(7), r2(7);
  const auto s1 = random_grid_placement(p, grid, r1);
  const auto s2 = random_grid_placement(p, grid, r2);
  const auto a1 = anneal(p, grid, s1, opt, r1);
  const auto a2 = anneal(p, grid, s2, opt, r2);
  EXPECT_EQ(a1.col, a2.col);
  EXPECT_EQ(a1.row, a2.row);
}

TEST(Annealing, BeatsGreedyOnAverage) {
  util::Rng prng(101);
  const auto p = small_problem(prng, 80);
  const Grid grid{10, 10, p.width, p.height};
  double anneal_total = 0, greedy_total = 0;
  for (int trial = 0; trial < 3; ++trial) {
    util::Rng r(200 + static_cast<std::uint64_t>(trial));
    const auto start = random_grid_placement(p, grid, r);
    AnnealingOptions full;
    full.moves_per_cell_per_stage = 6;
    AnnealingOptions greedy = full;
    greedy.greedy = true;
    util::Rng ra(300 + static_cast<std::uint64_t>(trial));
    util::Rng rg(300 + static_cast<std::uint64_t>(trial));
    AnnealingStats sa, sg;
    anneal(p, grid, start, full, ra, &sa);
    anneal(p, grid, start, greedy, rg, &sg);
    anneal_total += sa.final_cost;
    greedy_total += sg.final_cost;
  }
  // Hill-climbing escape should help (allow slack: <= 1.05x).
  EXPECT_LE(anneal_total, greedy_total * 1.05);
}

TEST(Annealing, QuadraticSeedBeatsRandomSeed) {
  util::Rng prng(102);
  const auto p = small_problem(prng);
  const Grid grid{12, 12, p.width, p.height};
  const auto quad_seed = legalize(p, place_quadratic(p), grid);
  util::Rng r(5);
  const auto rand_seed = random_grid_placement(p, grid, r);
  const auto quad_cont = quad_seed.to_continuous(grid);
  const auto rand_cont = rand_seed.to_continuous(grid);
  EXPECT_LT(hpwl(p, quad_cont), hpwl(p, rand_cont));
}

// Sweep: the full flow (quadratic -> legalize -> anneal) monotonically
// improves HPWL at several sizes.
class FlowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowSweep, QuadraticPlusAnnealImprovesHpwl) {
  util::Rng rng(1200 + static_cast<std::uint64_t>(GetParam()));
  gen::PlacementGenOptions gopt;
  gopt.num_cells = GetParam();
  const auto p = gen::generate_placement(gopt, rng);
  const int side = static_cast<int>(std::ceil(std::sqrt(p.num_cells * 1.3)));
  const Grid grid{side, side, p.width, p.height};

  const auto quad = place_quadratic(p);
  const auto legal = legalize(p, quad, grid);
  AnnealingOptions opt;
  opt.moves_per_cell_per_stage = 4;
  AnnealingStats stats;
  const auto final_pl = anneal(p, grid, legal, opt, rng, &stats);
  EXPECT_TRUE(is_legal(final_pl, grid));
  EXPECT_LE(stats.final_cost, stats.initial_cost);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSweep, ::testing::Values(60, 150, 300));

}  // namespace
}  // namespace l2l::place
