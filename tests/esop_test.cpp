// Unit tests for the SAT-based exact ESOP engine (src/esop/) and its
// facade (api::synthesize_esop).
//
// The load-bearing cases pin hand-computed minimum term counts: the
// engine must both FIND a k-term ESOP (SAT at k, checked by decoding and
// re-evaluating the model) and PROVE none smaller exists (UNSAT at k-1,
// checked by re-running with max_terms = k-1 and demanding the partial
// bracket's lower bound equal k). Parity is the canonical family -- the
// minimum ESOP of x1 ^ ... ^ xn is exactly n terms -- and is pinned up
// to n = 5.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/esop.hpp"
#include "cache/cache.hpp"
#include "esop/esop.hpp"
#include "gen/function_gen.hpp"
#include "tt/truth_table.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace l2l::esop {
namespace {

using tt::TruthTable;

TruthTable parity(int n) {
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m)
    f.set(m, __builtin_popcountll(m) % 2 == 1);
  return f;
}

/// Assert the minimum ESOP size of `f` is exactly `k`: SAT at k with a
/// verified decode, and (for k > 0) UNSAT everywhere below via the
/// max_terms = k-1 partial bracket.
void expect_minimum(const TruthTable& f, int k) {
  const auto r = synthesize_minimum(f);
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_EQ(r.terms, k);
  EXPECT_TRUE(r.minimal);
  EXPECT_EQ(r.lower_bound, k);
  EXPECT_EQ(r.upper_bound, k);
  EXPECT_EQ(static_cast<int>(r.cover.size()), k);
  EXPECT_TRUE(esop_truth_table(r.cover) == f);
  if (k > 0) {
    SynthesisOptions opt;
    opt.max_terms = k - 1;
    const auto below = synthesize_minimum(f, opt);
    EXPECT_EQ(below.status.code, util::StatusCode::kBudgetExceeded)
        << "a " << (k - 1) << "-term ESOP should not exist";
    EXPECT_EQ(below.lower_bound, k)
        << "UNSAT at every level <= k-1 must prove lower_bound == k";
    // The partial result still carries a verified (fallback) cover.
    ASSERT_GE(below.upper_bound, k);
    EXPECT_TRUE(esop_truth_table(below.cover) == f);
  }
}

TEST(EsopPinned, ConstantZero) {
  expect_minimum(TruthTable::constant(3, false), 0);
}

TEST(EsopPinned, ConstantOne) {
  // The all-don't-care term: one product covering everything.
  expect_minimum(TruthTable::constant(3, true), 1);
}

TEST(EsopPinned, SingleLiteral) {
  TruthTable f(3);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, (m >> 1) & 1);
  expect_minimum(f, 1);
}

TEST(EsopPinned, And) {
  TruthTable f(3);
  f.set(7, true);
  expect_minimum(f, 1);
}

TEST(EsopPinned, Or2) {
  // x0 | x1 = x0 ^ x1 ^ x0x1 = 1 ^ x0'x1' -- two terms either way, and
  // one term is impossible (a product has a power-of-two ON-set; OR has 3
  // minterms).
  TruthTable f(2);
  f.set(1, true);
  f.set(2, true);
  f.set(3, true);
  expect_minimum(f, 2);
}

TEST(EsopPinned, ParityFamily) {
  for (int n = 2; n <= 5; ++n) {
    SCOPED_TRACE("parity n=" + std::to_string(n));
    expect_minimum(parity(n), n);
  }
}

TEST(EsopPinned, ParityWithProduct) {
  // x0x1 ^ x2 ^ x3: minimum 3 (mid-bracket for the gallop schedule).
  TruthTable f(4);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m)
    f.set(m, ((m & 3) == 3) ^ (((m >> 2) & 1) != 0) ^ (((m >> 3) & 1) != 0));
  expect_minimum(f, 3);
}

TEST(EsopSemantics, MintermFallbackMatchesFunction) {
  util::Rng rng(0x1357);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(5));
    TruthTable f(n);
    for (std::uint64_t m = 0; m < f.num_minterms(); ++m)
      f.set(m, rng.next_below(2) != 0);
    const auto cover = minterm_esop(f);
    EXPECT_EQ(static_cast<std::uint64_t>(cover.size()), f.count_ones());
    EXPECT_TRUE(esop_truth_table(cover) == f);
  }
}

TEST(EsopSemantics, EvalXorNotOr) {
  // Two overlapping don't-care-free products: OR covers the overlap, XOR
  // cancels it.
  cubes::Cover cover(2);
  cubes::Cube a(2), b(2);
  a.set_code(0, cubes::Pcn::kPos);  // x0
  b.set_code(1, cubes::Pcn::kPos);  // x1
  cover.add(a);
  cover.add(b);
  EXPECT_TRUE(eval_esop(cover, 1));
  EXPECT_TRUE(eval_esop(cover, 2));
  EXPECT_FALSE(eval_esop(cover, 3)) << "overlap must cancel under XOR";
  EXPECT_FALSE(eval_esop(cover, 0));
}

TEST(EsopDecode, RoundTripRandomFunctions) {
  // Decoded models must re-evaluate to the input function exactly; the
  // engine verifies internally (a mismatch would come back as
  // kInternalError), and we re-verify here through the public helpers.
  util::Rng rng(0xe50f);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    const auto cover =
        gen::random_cover(n, 2 + static_cast<int>(rng.next_below(4)), rng);
    const TruthTable f = cover.to_truth_table();
    const auto r = synthesize_minimum(f);
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_TRUE(r.minimal);
    EXPECT_TRUE(esop_truth_table(r.cover) == f)
        << "trial " << trial << ": decoded cover does not match input";
  }
}

TEST(EsopGuards, ArityCapRejectedBeforeAllocation) {
  // kMaxVars is enforced by the facade's parsers pre-allocation; the
  // engine itself also refuses an over-cap table defensively.
  api::EsopRequest req;
  req.input = ".i 17\n.o 1\n.e\n";
  req.use_cache = false;
  const auto res = api::synthesize_esop(req);
  EXPECT_EQ(res.status.code, util::StatusCode::kInvalidInput);
  EXPECT_EQ(res.exit_code, util::kExitParse);
}

TEST(EsopGuards, BudgetExhaustionIsPartialNotThrow) {
  util::Budget budget;
  budget.set_step_limit(0);
  SynthesisOptions opt;
  opt.budget = &budget;
  const TruthTable f = parity(4);
  const auto r = synthesize_minimum(f, opt);
  EXPECT_EQ(r.status.code, util::StatusCode::kBudgetExceeded);
  EXPECT_GE(r.lower_bound, 1);
  // The fallback minterm cover is installed before any solving, so even a
  // zero budget returns a usable (verified) ESOP.
  ASSERT_GT(r.upper_bound, 0);
  EXPECT_EQ(static_cast<int>(r.cover.size()), r.terms);
  EXPECT_TRUE(esop_truth_table(r.cover) == f);
  EXPECT_FALSE(r.minimal);
}

TEST(EsopGuards, ConflictLimitIsPartialNotThrow) {
  SynthesisOptions opt;
  opt.conflict_limit = 1;
  const auto r = synthesize_minimum(parity(5), opt);
  EXPECT_EQ(r.status.code, util::StatusCode::kBudgetExceeded);
  EXPECT_GT(r.stats.queries_undef, 0);
  EXPECT_TRUE(esop_truth_table(r.cover) == parity(5));
}

TEST(EsopGuards, MaxTermsCapReportsBracket) {
  SynthesisOptions opt;
  opt.max_terms = 2;
  const auto r = synthesize_minimum(parity(4), opt);
  EXPECT_EQ(r.status.code, util::StatusCode::kBudgetExceeded);
  EXPECT_EQ(r.lower_bound, 3) << "UNSAT at 1 and 2 proves minimum >= 3";
  EXPECT_EQ(r.upper_bound, 8) << "fallback minterm cover has |ON| terms";
}

TEST(EsopFacade, CacheColdWarmByteIdentical) {
  cache::Cache::global().clear();
  cache::set_enabled(true);
  api::EsopRequest req;
  req.input = ".i 4\n.o 2\n.ob f g\n1100 10\n0011 10\n1-1- 01\n-1-1 01\n.e\n";
  req.show_stats = true;
  const auto cold = api::synthesize_esop(req);
  const auto warm = api::synthesize_esop(req);
  EXPECT_FALSE(cold.cached);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_EQ(cold.stats_output, warm.stats_output);
  EXPECT_EQ(cold.terms, warm.terms);
  EXPECT_EQ(cold.exit_code, warm.exit_code);
  // Different config digest -> different entry, not a false hit.
  api::EsopRequest other = req;
  other.conflict_limit = 123456;
  EXPECT_FALSE(api::synthesize_esop(other).cached);
  cache::Cache::global().clear();
}

TEST(EsopFacade, TruthTableRowInput) {
  api::EsopRequest req;
  req.input = "# parity\n0110\n";
  req.use_cache = false;
  const auto res = api::synthesize_esop(req);
  ASSERT_TRUE(res.status.ok()) << res.status.to_string();
  EXPECT_EQ(res.terms, 2);
  EXPECT_TRUE(res.minimal);
  EXPECT_NE(res.output.find(".type esop"), std::string::npos);
}

TEST(EsopFacade, RejectsNonPowerOfTwoRow) {
  api::EsopRequest req;
  req.input = "01101\n";
  req.use_cache = false;
  const auto res = api::synthesize_esop(req);
  EXPECT_EQ(res.status.code, util::StatusCode::kParseError);
  EXPECT_EQ(res.exit_code, util::kExitParse);
}

TEST(EsopFacade, StatsCountersAreSelfConsistent) {
  const auto r = synthesize_minimum(parity(4));
  ASSERT_TRUE(r.status.ok());
  // Minimality needs at least one SAT witness and one UNSAT proof.
  EXPECT_GE(r.stats.queries_sat, 1);
  EXPECT_GE(r.stats.queries_unsat, 1);
  EXPECT_EQ(r.stats.queries_undef, 0);
  EXPECT_GE(r.stats.encoded_terms, r.terms);
  EXPECT_GT(r.stats.solver_clauses, 0);
  // verify: the fallback cover plus each decoded candidate, 16 points per
  // pass on a 4-variable function.
  EXPECT_GE(r.stats.verify_points, 2 * 16);
}

}  // namespace
}  // namespace l2l::esop
