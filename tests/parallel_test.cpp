#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace l2l::util {
namespace {

/// Restores the default (env/hardware) thread count after each test so the
/// suite's tests cannot leak overrides into each other.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_F(ParallelTest, ForCoversEveryIndexExactlyOnce) {
  set_num_threads(4);
  constexpr int kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kN, 64, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST_F(ParallelTest, ChunksTileTheRangeExactly) {
  set_num_threads(3);
  std::atomic<std::int64_t> total{0};
  parallel_for_chunks(5, 1001, 37, [&](std::int64_t b, std::int64_t e) {
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, 37);
    EXPECT_EQ((b - 5) % 37, 0);  // grain-aligned: thread-count independent
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 1001 - 5);
}

TEST_F(ParallelTest, EmptyAndReversedRangesAreNoOps) {
  int calls = 0;
  parallel_for(0, 0, 8, [&](std::int64_t) { ++calls; });
  parallel_for(10, 3, 8, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, LowestIndexExceptionPropagates) {
  set_num_threads(4);
  try {
    parallel_for(0, 512, 1, [&](std::int64_t i) {
      if (i == 37 || i == 400)
        throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 37");
  }
}

TEST_F(ParallelTest, WorkContinuesAfterException) {
  // An exception must not wedge the pool: the same pool instance serves
  // later parallel regions.
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 64, 1,
                            [](std::int64_t) { throw std::logic_error("x"); }),
               std::logic_error);
  std::atomic<int> count{0};
  parallel_for(0, 64, 1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST_F(ParallelTest, NestedUseRunsInlineWithoutDeadlock) {
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h.store(0);
  parallel_for(0, 16, 1, [&](std::int64_t outer) {
    const auto id = std::this_thread::get_id();
    parallel_for(0, 16, 1, [&](std::int64_t inner) {
      // Inner region must run on the same lane (inline fallback).
      EXPECT_EQ(std::this_thread::get_id(), id);
      hits[static_cast<std::size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, SingleThreadRunsOnCaller) {
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  parallel_for(0, 100, 4, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST_F(ParallelTest, EnvOverrideControlsDefault) {
  ASSERT_EQ(setenv("L2L_THREADS", "3", 1), 0);
  set_num_threads(0);  // re-resolve from the environment
  EXPECT_EQ(num_threads(), 3);
  ASSERT_EQ(setenv("L2L_THREADS", "not-a-number", 1), 0);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);  // falls back to hardware_concurrency
  ASSERT_EQ(unsetenv("L2L_THREADS"), 0);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

TEST_F(ParallelTest, PoolConstructsAndShutsDownRepeatedly) {
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> sum{0};
    pool.run(100, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }  // destructor joins all workers each round
  ThreadPool idle(8);  // shutdown with no job ever run
  ThreadPool one(1);
  int x = 0;
  one.run(3, [&](int) { ++x; });  // single-lane pool runs inline
  EXPECT_EQ(x, 3);
}

TEST_F(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Awkward magnitudes so that any re-association would change the sum.
  std::vector<double> v(40'000);
  double seed = 1.0;
  for (auto& x : v) {
    seed = seed * 1.0000001 + 0.1;
    x = seed * ((static_cast<int>(seed) % 2) ? 1e-7 : 1e7);
  }
  auto sum_at = [&](int threads) {
    set_num_threads(threads);
    return parallel_reduce<double>(
        0, static_cast<std::int64_t>(v.size()), 1024, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i)
            s += v[static_cast<std::size_t>(i)];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double s1 = sum_at(1);
  const double s2 = sum_at(2);
  const double s8 = sum_at(8);
  EXPECT_EQ(s1, s2);  // exact: chunking is grain-defined, not lane-defined
  EXPECT_EQ(s1, s8);
}

}  // namespace
}  // namespace l2l::util
