#include <gtest/gtest.h>

#include <set>

#include "util/ascii_chart.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMeanNearZero) {
  Rng r(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.next_gaussian();
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(99);
  const auto a = r.next_u64();
  r.next_u64();
  r.reseed(99);
  EXPECT_EQ(r.next_u64(), a);
}

TEST(Strings, SplitBasic) {
  const auto t = split("a b  c\t d\n");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[3], "d");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(split("  \t ").empty()); }

TEST(Strings, SplitCustomDelims) {
  const auto t = split("a,b;;c", ",;");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "b");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-1"), "abc-1"); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(".model foo", ".model"));
  EXPECT_FALSE(starts_with(".mod", ".model"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(AsciiChart, BarChartScalesToMax) {
  const auto s = render_bar_chart({{"a", 10}, {"bb", 5}}, [] { util::BarChartOptions o; o.width = 10; return o; }());
  // The max bar is exactly `width` fills; half value gets half the fill.
  EXPECT_NE(s.find("a  |########## 10"), std::string::npos);
  EXPECT_NE(s.find("bb |##### 5"), std::string::npos);
}

TEST(AsciiChart, EmptyChart) {
  EXPECT_EQ(render_bar_chart({}), "");
}

TEST(AsciiChart, ZeroValuesNoBars) {
  const auto s = render_bar_chart({{"a", 0}}, [] { util::BarChartOptions o; o.width = 10; return o; }());
  EXPECT_EQ(s.find('#'), std::string::npos);
}

TEST(AsciiChart, TablePadsColumns) {
  const auto s = render_table({"name", "n"}, {{"x", "1"}, {"longer", "22"}});
  EXPECT_NE(s.find("name    n"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
}

}  // namespace
}  // namespace l2l::util
