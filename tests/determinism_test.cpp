// Cross-thread-count determinism: the hard design constraint of the
// parallel execution core. Router, placer solve, fault simulation, and
// batch grading must produce byte-identical results for L2L_THREADS in
// {1, 2, 8}, because the auto-grader contract ("same submission, same
// score") cannot depend on the machine that graded it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/esop.hpp"
#include "cache/cache.hpp"
#include "fault/faults.hpp"
#include "fault/simulator.hpp"
#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "linalg/cg.hpp"
#include "lint/lint.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_queue.hpp"
#include "mooc/grading_service.hpp"
#include "network/blif.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "sema/sema.hpp"
#include "util/budget.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_num_threads(0); }
};

TEST_F(DeterminismTest, NegotiatedRouterIsThreadCountInvariant) {
  util::Rng rng(2026);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 40;
  gopt.num_nets = 36;
  gopt.max_pins_per_net = 4;
  const auto p = gen::generate_routing(gopt, rng);

  std::vector<route::RouteSolution> sols;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    sols.push_back(route::route_all(p));
  }
  for (std::size_t s = 1; s < sols.size(); ++s) {
    EXPECT_EQ(sols[s].stats.routed, sols[0].stats.routed);
    EXPECT_EQ(sols[s].stats.expansions, sols[0].stats.expansions);
    EXPECT_EQ(sols[s].stats.negotiation_iterations,
              sols[0].stats.negotiation_iterations);
    ASSERT_EQ(sols[s].nets.size(), sols[0].nets.size());
    for (std::size_t n = 0; n < sols[0].nets.size(); ++n) {
      EXPECT_EQ(sols[s].nets[n].routed, sols[0].nets[n].routed);
      EXPECT_EQ(sols[s].nets[n].cells, sols[0].nets[n].cells)
          << "net " << n << " differs at " << kThreadCounts[s] << " threads";
    }
    // The ASCII solution text -- what a grader would see -- matches too.
    EXPECT_EQ(route::write_solution(sols[s]), route::write_solution(sols[0]));
  }
}

TEST_F(DeterminismTest, QuadraticPlacerIsThreadCountInvariant) {
  util::Rng rng(2027);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 300;
  const auto p = gen::generate_placement(gopt, rng);

  std::vector<place::Placement> placements;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    placements.push_back(place::place_quadratic(p));
  }
  for (std::size_t s = 1; s < placements.size(); ++s) {
    ASSERT_EQ(placements[s].x.size(), placements[0].x.size());
    for (std::size_t c = 0; c < placements[0].x.size(); ++c) {
      // Bit-exact double equality, not EXPECT_NEAR: the reductions are
      // chunk-ordered, so no thread count may perturb a single ulp.
      EXPECT_EQ(placements[s].x[c], placements[0].x[c]) << "cell " << c;
      EXPECT_EQ(placements[s].y[c], placements[0].y[c]) << "cell " << c;
    }
  }
}

TEST_F(DeterminismTest, ConjugateGradientIsThreadCountInvariant) {
  // A system large enough to span many reduction chunks.
  constexpr int kN = 20'000;
  linalg::SparseMatrix a(kN);
  std::vector<double> b(kN);
  for (int i = 0; i < kN; ++i) {
    a.add(i, i, 4.0 + 0.001 * i);
    if (i + 1 < kN) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
    b[static_cast<std::size_t>(i)] = std::sin(0.1 * i);
  }
  a.compress();

  std::vector<linalg::CgResult> results;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    results.push_back(linalg::conjugate_gradient(a, b));
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[s].iterations, results[0].iterations);
    EXPECT_EQ(results[s].residual, results[0].residual);
    for (int i = 0; i < kN; ++i)
      ASSERT_EQ(results[s].x[static_cast<std::size_t>(i)],
                results[0].x[static_cast<std::size_t>(i)])
          << "x[" << i << "] at " << kThreadCounts[s] << " threads";
  }
}

TEST_F(DeterminismTest, FaultSimulationIsThreadCountInvariant) {
  const auto net = gen::adder_network(3);
  const auto faults = fault::enumerate_faults(net);

  std::vector<fault::FaultSimResult> results;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    util::Rng rng(77);  // fresh identically-seeded pattern stream each run
    results.push_back(fault::random_pattern_coverage(net, faults, 24, rng));
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[s].detected, results[0].detected);
    ASSERT_EQ(results[s].undetected.size(), results[0].undetected.size());
    for (std::size_t f = 0; f < results[0].undetected.size(); ++f) {
      EXPECT_EQ(results[s].undetected[f].node, results[0].undetected[f].node);
      EXPECT_EQ(results[s].undetected[f].stuck_value,
                results[0].undetected[f].stuck_value);
    }
  }
}

TEST_F(DeterminismTest, BatchGradingIsThreadCountInvariant) {
  util::Rng rng(2028);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 24;
  gopt.num_nets = 10;
  const auto p = gen::generate_routing(gopt, rng);

  // A spread of submissions: a good one, a truncated one, garbage.
  const auto good = route::write_solution(route::route_all(p));
  std::vector<std::string> submissions;
  for (int s = 0; s < 12; ++s) {
    if (s % 3 == 0)
      submissions.push_back(good);
    else if (s % 3 == 1)
      submissions.push_back(good.substr(0, good.size() / 2));
    else
      submissions.push_back("this is not a routing solution");
  }

  std::vector<std::vector<grader::RouteGrade>> all;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    all.push_back(grader::grade_routing_batch(p, submissions));
  }
  for (std::size_t s = 1; s < all.size(); ++s) {
    ASSERT_EQ(all[s].size(), all[0].size());
    for (std::size_t i = 0; i < all[0].size(); ++i) {
      EXPECT_EQ(all[s][i].score, all[0][i].score);
      EXPECT_EQ(all[s][i].report, all[0][i].report);
    }
  }
}

// A step-limited Budget is part of the determinism contract: the limit is
// consumed at algorithmic boundaries (negotiation iterations, region
// solves), never per wall-clock tick, so a guarded run that stops early
// must stop at the SAME point -- bit-identical partial results -- at any
// thread count. A grader that cuts a submission off must cut it off at
// the same net on every machine.

TEST_F(DeterminismTest, StepLimitedRouterIsThreadCountInvariant) {
  util::Rng rng(2029);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 40;
  gopt.num_nets = 36;
  const auto p = gen::generate_routing(gopt, rng);

  std::vector<route::RouteSolution> sols;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto budget = util::Budget::with_step_limit(2);
    route::RouterOptions opt;
    opt.budget = &budget;
    sols.push_back(route::route_all(p, opt));
  }
  for (std::size_t s = 1; s < sols.size(); ++s) {
    EXPECT_EQ(sols[s].status.code, sols[0].status.code);
    EXPECT_FALSE(sols[s].status.ok());  // the tiny budget really tripped
    // The partial solution -- what a grader would score -- is identical.
    EXPECT_EQ(route::write_solution(sols[s]), route::write_solution(sols[0]))
        << "budget-limited partial solution differs at " << kThreadCounts[s]
        << " threads";
  }
}

TEST_F(DeterminismTest, StepLimitedPlacerIsThreadCountInvariant) {
  util::Rng rng(2030);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 300;
  const auto p = gen::generate_placement(gopt, rng);

  std::vector<place::Placement> placements;
  std::vector<place::QuadraticStats> stats;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto budget = util::Budget::with_step_limit(3);
    place::QuadraticOptions opt;
    opt.budget = &budget;
    place::QuadraticStats st;
    placements.push_back(place::place_quadratic(p, opt, &st));
    stats.push_back(st);
  }
  for (std::size_t s = 1; s < placements.size(); ++s) {
    EXPECT_EQ(stats[s].status.code, stats[0].status.code);
    EXPECT_FALSE(stats[s].status.ok());
    ASSERT_EQ(placements[s].x.size(), placements[0].x.size());
    for (std::size_t c = 0; c < placements[0].x.size(); ++c) {
      EXPECT_EQ(placements[s].x[c], placements[0].x[c]) << "cell " << c;
      EXPECT_EQ(placements[s].y[c], placements[0].y[c]) << "cell " << c;
    }
  }
}

TEST_F(DeterminismTest, FaultInjectedQueueDrainIsThreadCountInvariant) {
  std::vector<std::string> subs;
  for (int i = 0; i < 24; ++i) subs.push_back(std::to_string(i));
  mooc::QueueOptions qopt;
  qopt.fault_seed = 99;
  qopt.transient_fault_rate = 0.3;
  qopt.stall_rate = 0.15;
  qopt.max_retries = 3;
  qopt.step_limit = 10;
  const auto grade = [](const std::string& s, const util::Budget& budget) {
    // Submission k consumes k steps: some submissions blow the budget,
    // deterministically.
    const int k = util::parse_int(s).value();
    for (int q = 0; q < k; ++q)
      if (!budget.consume(1)) break;
    return static_cast<double>(k);
  };

  std::vector<mooc::QueueResult> runs;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    runs.push_back(mooc::drain_queue(subs, grade, qopt));
  }
  for (std::size_t s = 1; s < runs.size(); ++s) {
    ASSERT_EQ(runs[s].outcomes.size(), runs[0].outcomes.size());
    for (std::size_t i = 0; i < runs[0].outcomes.size(); ++i) {
      const auto& a = runs[0].outcomes[i];
      const auto& b = runs[s].outcomes[i];
      EXPECT_EQ(b.kind, a.kind) << "submission " << i;
      EXPECT_EQ(b.score, a.score) << "submission " << i;
      EXPECT_EQ(b.attempts, a.attempts) << "submission " << i;
      EXPECT_EQ(b.backoff_ticks, a.backoff_ticks) << "submission " << i;
      EXPECT_EQ(b.status.code, a.status.code) << "submission " << i;
      EXPECT_EQ(b.diagnostic, a.diagnostic) << "submission " << i;
    }
    EXPECT_EQ(runs[s].stats.graded, runs[0].stats.graded);
    EXPECT_EQ(runs[s].stats.failed, runs[0].stats.failed);
    EXPECT_EQ(runs[s].stats.budget_exceeded, runs[0].stats.budget_exceeded);
    EXPECT_EQ(runs[s].stats.retries_exhausted,
              runs[0].stats.retries_exhausted);
    EXPECT_EQ(runs[s].stats.total_attempts, runs[0].stats.total_attempts);
    EXPECT_EQ(runs[s].stats.injected_transients,
              runs[0].stats.injected_transients);
    EXPECT_EQ(runs[s].stats.injected_stalls, runs[0].stats.injected_stalls);
  }
}

// ---- observability layer ------------------------------------------------

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The counters-only slice of the metrics export: the part of the
/// deterministic contract the golden file pins down (gauges and histogram
/// residual buckets stay out so the golden survives FP-flag variance).
std::string counters_only_export() {
  std::string out;
  for (const auto& [name, v] : obs::Registry::global().snapshot().counters)
    out += "counter " + name + " " + std::to_string(v) + "\n";
  return out;
}

/// Runs the full flow on data/fulladder.blif with a clean registry and a
/// cold result cache, and returns the counters-only export. The cache
/// clear keeps every run cold: without it the second run would replay
/// the synthesis/placement/routing results and the engine counters would
/// vanish from the export.
std::string full_flow_counters(int threads) {
  const std::string blif = read_file_or_empty(L2L_REPO_DATA_DIR
                                              "/fulladder.blif");
  EXPECT_FALSE(blif.empty()) << "cannot read data/fulladder.blif";
  util::set_num_threads(threads);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  cache::Cache::global().clear();
  const auto net = network::parse_blif(blif);
  const auto res = flow::run_flow(net, flow::FlowOptions{});
  EXPECT_TRUE(res.status.ok()) << res.status.to_string();
  return counters_only_export();
}

TEST_F(DeterminismTest, FullFlowMetricsCountersAreThreadCountInvariant) {
  obs::set_enabled(true);
  std::vector<std::string> exports;
  for (const int t : kThreadCounts) exports.push_back(full_flow_counters(t));
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]) << "threads 1 vs 2";
  EXPECT_EQ(exports[0], exports[2]) << "threads 1 vs 8";
  // The flow actually reported: stage spans and engine counters present.
  EXPECT_NE(exports[0].find("counter flow.runs 1"), std::string::npos);
  EXPECT_NE(exports[0].find("counter span.flow.stage.routing 1"),
            std::string::npos);
  EXPECT_NE(exports[0].find("counter place.regions_solved"),
            std::string::npos);
  EXPECT_NE(exports[0].find("counter route.calls 1"), std::string::npos);
}

// ---- lint ---------------------------------------------------------------

TEST_F(DeterminismTest, LintReportIsThreadCountInvariant) {
  // lint_files fans each artifact out to a worker; the rendered report
  // (text and JSON) must come back byte-identical at any L2L_THREADS --
  // the pre-grade lint pass feeds student-visible reports, so it lives
  // under the same contract as the engines. The batch mixes the repo's
  // own clean artifacts with the hostile corpus.
  std::vector<std::pair<std::string, std::string>> batch;
  for (const char* rel :
       {L2L_REPO_DATA_DIR "/fulladder.blif", L2L_REPO_DATA_DIR "/sample.pla",
        L2L_REPO_DATA_DIR "/sample.cnf", L2L_REPO_DATA_DIR "/sample.kbdd",
        L2L_REPO_DATA_DIR "/sample.axb",
        L2L_TEST_DATA_DIR "/hostile/garbage.blif",
        L2L_TEST_DATA_DIR "/hostile/bad_literals.cnf",
        L2L_TEST_DATA_DIR "/hostile/truncated.pla",
        L2L_TEST_DATA_DIR "/hostile/bad_placement.txt",
        L2L_TEST_DATA_DIR "/hostile/binary.junk"}) {
    const std::string text = read_file_or_empty(rel);
    ASSERT_FALSE(text.empty()) << "cannot read " << rel;
    batch.emplace_back(rel, text);
  }

  std::vector<std::string> texts, jsons;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto report = lint::lint_files(batch);
    texts.push_back(report.to_text());
    jsons.push_back(report.to_json());
  }
  for (size_t s = 1; s < texts.size(); ++s) {
    EXPECT_EQ(texts[s], texts[0])
        << "lint text differs at " << kThreadCounts[s] << " threads";
    EXPECT_EQ(jsons[s], jsons[0])
        << "lint json differs at " << kThreadCounts[s] << " threads";
  }
  // The batch genuinely exercised both sides of the gate.
  EXPECT_NE(texts[0].find("error"), std::string::npos);
  EXPECT_NE(texts[0].find("lint: 10 file(s)"), std::string::npos);
}

// ---- sema ---------------------------------------------------------------

/// The sema determinism batch: clean repo artifacts plus the semantic
/// half of the hostile corpus (cycles, multi-driven nets, the 10k-gate
/// SCC ring). Shared by the thread-invariance check and the golden pin.
std::vector<std::pair<std::string, std::string>> sema_batch() {
  std::vector<std::pair<std::string, std::string>> batch;
  for (const char* rel :
       {L2L_REPO_DATA_DIR "/fulladder.blif", L2L_REPO_DATA_DIR "/sample.pla",
        L2L_REPO_DATA_DIR "/sample.cnf",
        L2L_TEST_DATA_DIR "/hostile/cyclic.blif",
        L2L_TEST_DATA_DIR "/hostile/multi_driven.blif",
        L2L_TEST_DATA_DIR "/hostile/input_shadow.blif",
        L2L_TEST_DATA_DIR "/hostile/scc_chain_10k.blif"}) {
    const std::string text = read_file_or_empty(rel);
    EXPECT_FALSE(text.empty()) << "cannot read " << rel;
    batch.emplace_back(rel, text);
  }
  return batch;
}

TEST_F(DeterminismTest, SemaReportIsThreadCountInvariant) {
  // sema::analyze_files fans out like lint_files and feeds the same
  // student-visible report renderers, so it lives under the identical
  // byte-for-byte contract at any L2L_THREADS.
  const auto batch = sema_batch();
  std::vector<std::string> texts, jsons;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto report = sema::analyze_files(batch);
    texts.push_back(report.to_text());
    jsons.push_back(report.to_json());
  }
  for (size_t s = 1; s < texts.size(); ++s) {
    EXPECT_EQ(texts[s], texts[0])
        << "sema text differs at " << kThreadCounts[s] << " threads";
    EXPECT_EQ(jsons[s], jsons[0])
        << "sema json differs at " << kThreadCounts[s] << " threads";
  }
  EXPECT_NE(texts[0].find("L2L-N001"), std::string::npos);
  EXPECT_NE(texts[0].find("L2L-N003"), std::string::npos);
}

// Byte-for-byte golden pin of the sema.* counter export (same protocol
// as the other goldens: L2L_UPDATE_GOLDEN=1 regenerates, then commit
// tests/data/golden/sema_metrics.txt).
TEST_F(DeterminismTest, SemaMetricsMatchGoldenFile) {
  obs::set_enabled(true);
  util::set_num_threads(2);
  obs::Registry::global().reset();
  (void)sema::analyze_files(sema_batch());
  std::string got;
  for (const auto& [name, v] :
       obs::Registry::global().snapshot().counters)
    if (name.rfind("sema.", 0) == 0)
      got += "counter " + name + " " + std::to_string(v) + "\n";
  obs::Registry::global().reset();
  const std::string golden_path =
      L2L_TEST_DATA_DIR "/golden/sema_metrics.txt";
  if (std::getenv("L2L_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "golden file regenerated";
  }
  const std::string want = read_file_or_empty(golden_path);
  ASSERT_FALSE(want.empty())
      << "missing golden file tests/data/golden/sema_metrics.txt";
  EXPECT_EQ(got, want) << "actual:\n" << got;
}

// The same export must match the checked-in golden file byte for byte --
// an unannounced change to any engine's deterministic counters (or to the
// export format) fails here first. To regenerate after an intentional
// change, run this test alone with L2L_UPDATE_GOLDEN=1 in the
// environment and commit the rewritten
// tests/data/golden/fulladder_metrics.txt.
TEST_F(DeterminismTest, FullFlowMetricsMatchGoldenFile) {
  obs::set_enabled(true);
  const std::string got = full_flow_counters(2);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  const std::string golden_path =
      L2L_TEST_DATA_DIR "/golden/fulladder_metrics.txt";
  if (std::getenv("L2L_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "golden file regenerated";
  }
  const std::string want = read_file_or_empty(golden_path);
  ASSERT_FALSE(want.empty())
      << "missing golden file tests/data/golden/fulladder_metrics.txt";
  EXPECT_EQ(got, want) << "actual:\n" << got;
}

// ---- exact ESOP ---------------------------------------------------------

/// Runs a fixed batch of exact-ESOP syntheses (cold cache, clean
/// registry) and returns {tool-visible report, counters-only export}.
/// The batch covers both input formats, a multi-output PLA, and a
/// deterministic partial (conflict-limited) run, so the esop.* counters
/// include the sat/unsat/undef query mix.
std::pair<std::string, std::string> esop_batch_report(int threads) {
  util::set_num_threads(threads);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  cache::Cache::global().clear();
  std::string report;
  for (const char* input :
       {"0110100110010110\n",
        ".i 4\n.o 2\n.ob f g\n1100 10\n0011 10\n1-1- 01\n-1-1 01\n.e\n",
        ".i 3\n.o 1\n1-- 1\n-1- 1\n--1 1\n.e\n"}) {
    api::EsopRequest req;
    req.input = input;
    req.show_stats = true;
    req.use_cache = false;
    const auto res = api::synthesize_esop(req);
    EXPECT_TRUE(res.status.ok()) << res.status.to_string();
    report += res.stats_output + res.output;
  }
  {
    api::EsopRequest req;  // conflict-limited: the undef/partial path
    req.input = "01101001100101101001011001101001\n";
    req.conflict_limit = 10;
    req.show_stats = true;
    req.use_cache = false;
    const auto res = api::synthesize_esop(req);
    EXPECT_FALSE(res.status.ok()) << "conflict limit 10 should trip";
    report += res.stats_output + res.status.to_string() + "\n";
  }
  return {report, counters_only_export()};
}

TEST_F(DeterminismTest, EsopReportAndCountersAreThreadCountInvariant) {
  obs::set_enabled(true);
  std::vector<std::pair<std::string, std::string>> runs;
  for (const int t : kThreadCounts) runs.push_back(esop_batch_report(t));
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  for (std::size_t s = 1; s < runs.size(); ++s) {
    EXPECT_EQ(runs[s].first, runs[0].first)
        << "esop report differs at " << kThreadCounts[s] << " threads";
    EXPECT_EQ(runs[s].second, runs[0].second)
        << "esop counters differ at " << kThreadCounts[s] << " threads";
  }
  // The batch genuinely hit the engine: calls, query mix, proofs.
  EXPECT_NE(runs[0].second.find("counter esop.synth_calls 5"),
            std::string::npos)
      << runs[0].second;
  EXPECT_NE(runs[0].second.find("counter esop.queries_unsat"),
            std::string::npos);
  EXPECT_NE(runs[0].second.find("counter esop.queries_undef 1"),
            std::string::npos);
  EXPECT_NE(runs[0].second.find("counter esop.minimal_proven 4"),
            std::string::npos);
  EXPECT_NE(runs[0].second.find("counter esop.partial_results 1"),
            std::string::npos);
}

// Byte-for-byte golden pin of the esop.* counter export (same protocol
// as fulladder_metrics.txt: regenerate with L2L_UPDATE_GOLDEN=1 and
// commit tests/data/golden/esop_metrics.txt).
TEST_F(DeterminismTest, EsopMetricsMatchGoldenFile) {
  obs::set_enabled(true);
  const std::string got = esop_batch_report(2).second;
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  const std::string golden_path = L2L_TEST_DATA_DIR "/golden/esop_metrics.txt";
  if (std::getenv("L2L_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "golden file regenerated";
  }
  const std::string want = read_file_or_empty(golden_path);
  ASSERT_FALSE(want.empty())
      << "missing golden file tests/data/golden/esop_metrics.txt";
  EXPECT_EQ(got, want) << "actual:\n" << got;
}

// ---- grading service ----------------------------------------------------

/// A small semester that exercises every service path: overload (sheds +
/// quota rejects), a mid-semester fault storm (breaker trips, degraded
/// service, probes, recovery), and duplicate-heavy uploads (dedup).
std::string service_drain_counters(int threads, mooc::ServiceStats* stats) {
  mooc::TraceOptions topt;
  topt.num_students = 1500;
  topt.num_courses = 2;
  topt.ticks = 80;
  util::Rng rng(5);
  const auto trace = mooc::generate_submission_trace(topt, rng);

  mooc::ServiceOptions sopt;
  sopt.queue_cap = 48;
  sopt.admit_quota = 32;
  sopt.service_rate = 8;
  sopt.breaker_threshold = 4;
  sopt.breaker_probe_interval = 4;
  sopt.storm_begin_tick = 20;
  sopt.storm_end_tick = 40;
  sopt.storm_transient_rate = 0.95;
  sopt.storm_stall_rate = 0.3;
  sopt.queue.max_retries = 1;

  util::set_num_threads(threads);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  cache::Cache::global().clear();
  const mooc::GradingService service(
      sopt, [](const std::string& s, const util::Budget&) {
        return static_cast<double>(s.size() % 101);
      });
  const auto res = service.run(trace);
  EXPECT_TRUE(res.accounting_ok()) << "silent drop at " << threads
                                   << " threads";
  if (stats != nullptr) *stats = res.stats;
  return counters_only_export();
}

TEST_F(DeterminismTest, ServiceDrainCountersAreThreadCountInvariant) {
  obs::set_enabled(true);
  std::vector<std::string> exports;
  mooc::ServiceStats stats{};
  for (const int t : kThreadCounts)
    exports.push_back(service_drain_counters(t, &stats));
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]) << "threads 1 vs 2";
  EXPECT_EQ(exports[0], exports[2]) << "threads 1 vs 8";
  // The scenario genuinely exercised the overload and breaker machinery.
  EXPECT_GT(stats.shed, 0);
  EXPECT_GT(stats.rejected_quota, 0);
  EXPECT_GT(stats.breaker_trips, 0);
  EXPECT_GT(stats.degraded, 0);
  EXPECT_GT(stats.dedup_hits, 0);
  EXPECT_NE(exports[0].find("counter mooc.service.runs 1"),
            std::string::npos);
  EXPECT_NE(exports[0].find("counter mooc.service.shed"), std::string::npos);
}

// The service's counters-only export, pinned byte for byte. Regenerate
// after an intentional change with L2L_UPDATE_GOLDEN=1 and commit the
// rewritten tests/data/golden/service_metrics.txt.
TEST_F(DeterminismTest, ServiceMetricsMatchGoldenFile) {
  obs::set_enabled(true);
  const std::string got = service_drain_counters(2, nullptr);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  const std::string golden_path =
      L2L_TEST_DATA_DIR "/golden/service_metrics.txt";
  if (std::getenv("L2L_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "golden file regenerated";
  }
  const std::string want = read_file_or_empty(golden_path);
  ASSERT_FALSE(want.empty())
      << "missing golden file tests/data/golden/service_metrics.txt";
  EXPECT_EQ(got, want) << "actual:\n" << got;
}

// ---- result cache -------------------------------------------------------

// The cache contract: a warm run replays engine results byte-for-byte.
// One cold flow fills the cache; re-runs at every thread count must
// reproduce the placement, routing, and HPWL exactly (the HPWL compare is
// ==, not near -- the serialized f64 round-trips its IEEE bits).
TEST_F(DeterminismTest, FullFlowColdAndWarmRunsAreByteIdentical) {
  const std::string blif = read_file_or_empty(L2L_REPO_DATA_DIR
                                              "/fulladder.blif");
  ASSERT_FALSE(blif.empty()) << "cannot read data/fulladder.blif";
  const auto net = network::parse_blif(blif);

  cache::Cache::global().clear();
  util::set_num_threads(1);
  const auto cold = flow::run_flow(net, flow::FlowOptions{});
  ASSERT_TRUE(cold.status.ok()) << cold.status.to_string();

  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto warm = flow::run_flow(net, flow::FlowOptions{});
    ASSERT_TRUE(warm.status.ok()) << warm.status.to_string();
    EXPECT_EQ(warm.literals_after, cold.literals_after) << t << " threads";
    EXPECT_EQ(warm.placement.col, cold.placement.col) << t << " threads";
    EXPECT_EQ(warm.placement.row, cold.placement.row) << t << " threads";
    EXPECT_EQ(warm.hpwl, cold.hpwl) << t << " threads";
    EXPECT_EQ(route::write_solution(warm.routing),
              route::write_solution(cold.routing))
        << t << " threads";
  }
  cache::Cache::global().clear();
}

// L2L_CACHE=0 equivalence: with the kill switch down, back-to-back flows
// re-run every engine and the metrics export mentions no cache counters
// at all -- byte-identical to the pre-cache codebase.
TEST_F(DeterminismTest, CacheKillSwitchRestoresUncachedCounters) {
  obs::set_enabled(true);
  cache::set_enabled(false);
  const auto first = full_flow_counters(2);
  const auto second = full_flow_counters(2);
  cache::set_enabled(true);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("counter cache."), std::string::npos)
      << "cache counters leaked into the kill-switch export:\n" << first;
  EXPECT_NE(first.find("counter route.calls 1"), std::string::npos);
  EXPECT_NE(first.find("counter place.calls 1"), std::string::npos);
}

// Cross-drain replay: a re-drain of the same cohort under the same
// cache_domain answers every unique submission from the cache, at any
// thread count, with outcomes byte-identical to the cold drain.
TEST_F(DeterminismTest, QueueWarmRedrainReplaysByteIdenticalOutcomes) {
  std::vector<std::string> subs;
  for (int i = 0; i < 30; ++i) subs.push_back("sub" + std::to_string(i % 10));
  mooc::QueueOptions qopt;
  qopt.cache_domain = "determinism-test.queue";
  qopt.step_limit = 100;
  const auto grade = [](const std::string& s, const util::Budget&) {
    return static_cast<double>(s.size());
  };

  cache::Cache::global().clear();
  util::set_num_threads(1);
  const auto cold = mooc::drain_queue(subs, grade, qopt);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  EXPECT_EQ(cold.stats.deduped, 20);  // 10 unique, each uploaded 3x

  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    const auto warm = mooc::drain_queue(subs, grade, qopt);
    EXPECT_EQ(warm.stats.cache_hits, 10) << t << " threads";
    EXPECT_EQ(warm.stats.graded, cold.stats.graded) << t << " threads";
    EXPECT_EQ(warm.stats.total_attempts, cold.stats.total_attempts)
        << t << " threads";
    ASSERT_EQ(warm.outcomes.size(), cold.outcomes.size());
    for (std::size_t i = 0; i < cold.outcomes.size(); ++i) {
      EXPECT_EQ(warm.outcomes[i].kind, cold.outcomes[i].kind) << i;
      EXPECT_EQ(warm.outcomes[i].score, cold.outcomes[i].score) << i;
      EXPECT_EQ(warm.outcomes[i].attempts, cold.outcomes[i].attempts) << i;
      EXPECT_EQ(warm.outcomes[i].backoff_ticks, cold.outcomes[i].backoff_ticks)
          << i;
      EXPECT_EQ(warm.outcomes[i].status.code, cold.outcomes[i].status.code)
          << i;
      EXPECT_EQ(warm.outcomes[i].diagnostic, cold.outcomes[i].diagnostic) << i;
    }
  }
  cache::Cache::global().clear();
}

}  // namespace
}  // namespace l2l
