// Cross-thread-count determinism: the hard design constraint of the
// parallel execution core. Router, placer solve, fault simulation, and
// batch grading must produce byte-identical results for L2L_THREADS in
// {1, 2, 8}, because the auto-grader contract ("same submission, same
// score") cannot depend on the machine that graded it.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/faults.hpp"
#include "fault/simulator.hpp"
#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "linalg/cg.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace l2l {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_num_threads(0); }
};

TEST_F(DeterminismTest, NegotiatedRouterIsThreadCountInvariant) {
  util::Rng rng(2026);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 40;
  gopt.num_nets = 36;
  gopt.max_pins_per_net = 4;
  const auto p = gen::generate_routing(gopt, rng);

  std::vector<route::RouteSolution> sols;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    sols.push_back(route::route_all(p));
  }
  for (std::size_t s = 1; s < sols.size(); ++s) {
    EXPECT_EQ(sols[s].stats.routed, sols[0].stats.routed);
    EXPECT_EQ(sols[s].stats.expansions, sols[0].stats.expansions);
    EXPECT_EQ(sols[s].stats.negotiation_iterations,
              sols[0].stats.negotiation_iterations);
    ASSERT_EQ(sols[s].nets.size(), sols[0].nets.size());
    for (std::size_t n = 0; n < sols[0].nets.size(); ++n) {
      EXPECT_EQ(sols[s].nets[n].routed, sols[0].nets[n].routed);
      EXPECT_EQ(sols[s].nets[n].cells, sols[0].nets[n].cells)
          << "net " << n << " differs at " << kThreadCounts[s] << " threads";
    }
    // The ASCII solution text -- what a grader would see -- matches too.
    EXPECT_EQ(route::write_solution(sols[s]), route::write_solution(sols[0]));
  }
}

TEST_F(DeterminismTest, QuadraticPlacerIsThreadCountInvariant) {
  util::Rng rng(2027);
  gen::PlacementGenOptions gopt;
  gopt.num_cells = 300;
  const auto p = gen::generate_placement(gopt, rng);

  std::vector<place::Placement> placements;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    placements.push_back(place::place_quadratic(p));
  }
  for (std::size_t s = 1; s < placements.size(); ++s) {
    ASSERT_EQ(placements[s].x.size(), placements[0].x.size());
    for (std::size_t c = 0; c < placements[0].x.size(); ++c) {
      // Bit-exact double equality, not EXPECT_NEAR: the reductions are
      // chunk-ordered, so no thread count may perturb a single ulp.
      EXPECT_EQ(placements[s].x[c], placements[0].x[c]) << "cell " << c;
      EXPECT_EQ(placements[s].y[c], placements[0].y[c]) << "cell " << c;
    }
  }
}

TEST_F(DeterminismTest, ConjugateGradientIsThreadCountInvariant) {
  // A system large enough to span many reduction chunks.
  constexpr int kN = 20'000;
  linalg::SparseMatrix a(kN);
  std::vector<double> b(kN);
  for (int i = 0; i < kN; ++i) {
    a.add(i, i, 4.0 + 0.001 * i);
    if (i + 1 < kN) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
    b[static_cast<std::size_t>(i)] = std::sin(0.1 * i);
  }
  a.compress();

  std::vector<linalg::CgResult> results;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    results.push_back(linalg::conjugate_gradient(a, b));
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[s].iterations, results[0].iterations);
    EXPECT_EQ(results[s].residual, results[0].residual);
    for (int i = 0; i < kN; ++i)
      ASSERT_EQ(results[s].x[static_cast<std::size_t>(i)],
                results[0].x[static_cast<std::size_t>(i)])
          << "x[" << i << "] at " << kThreadCounts[s] << " threads";
  }
}

TEST_F(DeterminismTest, FaultSimulationIsThreadCountInvariant) {
  const auto net = gen::adder_network(3);
  const auto faults = fault::enumerate_faults(net);

  std::vector<fault::FaultSimResult> results;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    util::Rng rng(77);  // fresh identically-seeded pattern stream each run
    results.push_back(fault::random_pattern_coverage(net, faults, 24, rng));
  }
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_EQ(results[s].detected, results[0].detected);
    ASSERT_EQ(results[s].undetected.size(), results[0].undetected.size());
    for (std::size_t f = 0; f < results[0].undetected.size(); ++f) {
      EXPECT_EQ(results[s].undetected[f].node, results[0].undetected[f].node);
      EXPECT_EQ(results[s].undetected[f].stuck_value,
                results[0].undetected[f].stuck_value);
    }
  }
}

TEST_F(DeterminismTest, BatchGradingIsThreadCountInvariant) {
  util::Rng rng(2028);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 24;
  gopt.num_nets = 10;
  const auto p = gen::generate_routing(gopt, rng);

  // A spread of submissions: a good one, a truncated one, garbage.
  const auto good = route::write_solution(route::route_all(p));
  std::vector<std::string> submissions;
  for (int s = 0; s < 12; ++s) {
    if (s % 3 == 0)
      submissions.push_back(good);
    else if (s % 3 == 1)
      submissions.push_back(good.substr(0, good.size() / 2));
    else
      submissions.push_back("this is not a routing solution");
  }

  std::vector<std::vector<grader::RouteGrade>> all;
  for (const int t : kThreadCounts) {
    util::set_num_threads(t);
    all.push_back(grader::grade_routing_batch(p, submissions));
  }
  for (std::size_t s = 1; s < all.size(); ++s) {
    ASSERT_EQ(all[s].size(), all[0].size());
    for (std::size_t i = 0; i < all[0].size(); ++i) {
      EXPECT_EQ(all[s][i].score, all[0][i].score);
      EXPECT_EQ(all[s][i].report, all[0][i].report);
    }
  }
}

}  // namespace
}  // namespace l2l
