#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "geom/drc.hpp"
#include "geom/extract.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "network/equivalence.hpp"
#include "util/rng.hpp"

namespace l2l::flow {
namespace {

TEST(Flow, AdderEndToEnd) {
  const auto net = gen::adder_network(3);
  const auto res = run_flow(net);

  // Synthesis did not grow the network.
  EXPECT_LE(res.literals_after, res.literals_before);
  // Mapping is functionally correct.
  EXPECT_TRUE(network::check_equivalence(net, res.mapped.netlist,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
  // Placement is legal.
  EXPECT_TRUE(place::is_legal(res.placement, res.grid));
  EXPECT_GT(res.hpwl, 0.0);
  // Routing is fully legal by the auto-grader's standards.
  const auto rg = grader::grade_routing(res.routing_problem, res.routing);
  EXPECT_EQ(rg.legal_nets, rg.total_nets) << rg.report;
  // Timing includes both gate and wire contributions.
  EXPECT_GE(res.timing.critical_delay, res.gate_delay);
  EXPECT_GT(res.worst_wire_delay, 0.0);
  EXPECT_FALSE(res.report().empty());
  // Physical verification: DRC clean and LVS matches the intended nets.
  const auto drc = geom::check_drc(res.routing);
  EXPECT_TRUE(drc.clean()) << drc.report();
  const auto lvs = geom::lvs(res.routing_problem, res.routing);
  EXPECT_TRUE(lvs.clean) << lvs.report();
}

TEST(Flow, ParityTree) {
  const auto net = gen::parity_network(6);
  const auto res = run_flow(net);
  EXPECT_TRUE(network::check_equivalence(net, res.mapped.netlist,
                                         network::EquivalenceMethod::kSat)
                  .equivalent);
  const auto rg = grader::grade_routing(res.routing_problem, res.routing);
  EXPECT_EQ(rg.legal_nets, rg.total_nets) << rg.report;
}

TEST(Flow, DelayObjectiveNoWorseGateDelay) {
  const auto net = gen::adder_network(3);
  FlowOptions area;
  FlowOptions delay;
  delay.objective = techmap::MapObjective::kDelay;
  const auto ra = run_flow(net, area);
  const auto rd = run_flow(net, delay);
  EXPECT_LE(rd.mapped.critical_delay, ra.mapped.critical_delay + 1e-9);
}

TEST(Flow, RandomNetworksSurviveWholeFlow) {
  util::Rng rng(171);
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 6;
  gopt.num_nodes = 12;
  gopt.num_outputs = 3;
  for (int trial = 0; trial < 3; ++trial) {
    const auto net = gen::random_network(gopt, rng);
    const auto res = run_flow(net);
    EXPECT_TRUE(network::check_equivalence(net, res.mapped.netlist,
                                           network::EquivalenceMethod::kBdd)
                    .equivalent)
        << "trial " << trial;
    EXPECT_TRUE(place::is_legal(res.placement, res.grid));
    const auto rg = grader::grade_routing(res.routing_problem, res.routing);
    EXPECT_EQ(rg.legal_nets, rg.total_nets) << rg.report;
  }
}

TEST(Flow, OptimizationCanBeDisabled) {
  const auto net = gen::adder_network(2);
  FlowOptions opt;
  opt.optimize_logic = false;
  const auto res = run_flow(net, opt);
  EXPECT_EQ(res.literals_after, res.literals_before);
}

}  // namespace
}  // namespace l2l::flow
