#include <gtest/gtest.h>

#include <set>

#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "util/rng.hpp"

namespace l2l::gen {
namespace {

TEST(PlacementGen, RespectsOptions) {
  util::Rng rng(111);
  PlacementGenOptions opt;
  opt.num_cells = 100;
  opt.num_pads = 20;
  const auto p = generate_placement(opt, rng);
  EXPECT_EQ(p.num_cells, 100);
  EXPECT_EQ(p.pads.size(), 20u);
  EXPECT_GE(p.nets.size(), 100u);
  p.validate();
}

TEST(PlacementGen, PadsOnBoundary) {
  util::Rng rng(112);
  const auto p = generate_placement({}, rng);
  for (const auto& pad : p.pads) {
    const bool on_edge = pad.x == 0.0 || pad.y == 0.0 ||
                         pad.x == p.width || pad.y == p.height;
    EXPECT_TRUE(on_edge) << pad.name;
  }
}

TEST(PlacementGen, NetDegreesSane) {
  util::Rng rng(113);
  const auto p = generate_placement({}, rng);
  double total = 0;
  for (const auto& net : p.nets) {
    EXPECT_GE(net.size(), 2u);
    EXPECT_LE(net.size(), 13u);
    total += static_cast<double>(net.size());
  }
  const double mean = total / static_cast<double>(p.nets.size());
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 5.0);
}

TEST(RoutingGen, ValidPins) {
  util::Rng rng(114);
  RoutingGenOptions opt;
  opt.num_nets = 30;
  opt.max_pins_per_net = 4;
  const auto p = generate_routing(opt, rng);
  EXPECT_EQ(p.nets.size(), 30u);
  std::set<std::pair<int, int>> seen;
  for (const auto& net : p.nets) {
    EXPECT_GE(net.pins.size(), 2u);
    for (const auto& pin : net.pins) {
      EXPECT_TRUE(p.in_bounds(pin));
      EXPECT_FALSE(p.is_blocked(pin));
      EXPECT_TRUE(seen.insert({pin.x, pin.y}).second) << "pin collision";
    }
  }
}

TEST(RoutingGen, ObstacleFractionApproximate) {
  util::Rng rng(115);
  RoutingGenOptions opt;
  opt.obstacle_fraction = 0.10;
  const auto p = generate_routing(opt, rng);
  std::size_t blocked = 0;
  for (const auto& layer : p.blocked)
    for (const bool b : layer) blocked += b;
  const double frac = static_cast<double>(blocked) /
                      (2.0 * p.width * p.height);
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.12);
}

TEST(FunctionGen, AdderComputesAddition) {
  const auto net = adder_network(4);
  EXPECT_EQ(net.inputs().size(), 9u);
  EXPECT_EQ(net.outputs().size(), 5u);
  for (int a = 0; a < 16; a += 3) {
    for (int b = 0; b < 16; b += 5) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back((a >> i) & 1);
      for (int i = 0; i < 4; ++i) in.push_back((b >> i) & 1);
      in.push_back(false);
      const auto vals = net.simulate(in);
      int sum = 0;
      for (int i = 0; i < 5; ++i)
        if (vals[static_cast<std::size_t>(net.outputs()[static_cast<std::size_t>(i)])])
          sum |= 1 << i;
      EXPECT_EQ(sum, a + b);
    }
  }
}

TEST(FunctionGen, ParityIsXor) {
  const auto net = parity_network(5);
  for (int m = 0; m < 32; ++m) {
    std::vector<bool> in;
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      in.push_back((m >> i) & 1);
      ones += (m >> i) & 1;
    }
    const auto vals = net.simulate(in);
    EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[0])], ones % 2 == 1);
  }
}

TEST(FunctionGen, MuxSelects) {
  const auto net = mux_network(2);
  EXPECT_EQ(net.inputs().size(), 6u);  // 2 select + 4 data
  for (int sel = 0; sel < 4; ++sel) {
    for (int data = 0; data < 16; data += 7) {
      std::vector<bool> in;
      for (int s = 0; s < 2; ++s) in.push_back((sel >> s) & 1);
      for (int d = 0; d < 4; ++d) in.push_back((data >> d) & 1);
      const auto vals = net.simulate(in);
      EXPECT_EQ(vals[static_cast<std::size_t>(net.outputs()[0])],
                ((data >> sel) & 1) != 0);
    }
  }
}

TEST(FunctionGen, RandomNetworkIsValid) {
  util::Rng rng(116);
  const auto net = random_network({}, rng);
  net.validate();
  EXPECT_EQ(net.inputs().size(), 8u);
  EXPECT_EQ(net.outputs().size(), 4u);
}

}  // namespace
}  // namespace l2l::gen
