2
net 0
(0 0 0)
(1 0 zebra)
!
net 1
(0 1 0)
(1 1 0)
!
net before terminator is fine but this line is not
