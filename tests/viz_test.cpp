#include <gtest/gtest.h>

#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "route/router.hpp"
#include "util/rng.hpp"
#include "viz/svg.hpp"

namespace l2l::viz {
namespace {

TEST(Svg, PlacementRendersAllCellsAndPads) {
  util::Rng rng(231);
  gen::PlacementGenOptions opt;
  opt.num_cells = 40;
  opt.num_pads = 8;
  const auto p = gen::generate_placement(opt, rng);
  const place::Grid grid{8, 8, p.width, p.height};
  const auto gp = place::legalize(p, place::place_quadratic(p), grid);
  const auto svg = placement_svg(p, grid, gp);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per cell (identifiable by the title element).
  std::size_t cells = 0, pos = 0;
  while ((pos = svg.find("<title>cell", pos)) != std::string::npos) {
    ++cells;
    pos += 10;
  }
  EXPECT_EQ(cells, 40u);
  EXPECT_NE(svg.find("p0"), std::string::npos);  // pad names present
}

TEST(Svg, RoutingRendersWiresViasAndObstacles) {
  util::Rng rng(232);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 16;
  opt.num_nets = 6;
  const auto p = gen::generate_routing(opt, rng);
  const auto sol = route::route_all(p);
  const auto svg = routing_svg(p, sol);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("fill-opacity=\"0.5\""), std::string::npos);  // obstacle
  EXPECT_NE(svg.find("net 0"), std::string::npos);                 // pin title
  // Vias present iff any net crosses layers.
  bool has_via_net = false;
  for (const auto& net : sol.nets) has_via_net |= route::count_vias(net) > 0;
  EXPECT_EQ(svg.find("<circle") != std::string::npos, has_via_net);
}

TEST(Svg, GridOptionDrawsLines) {
  util::Rng rng(233);
  gen::PlacementGenOptions popt;
  popt.num_cells = 10;
  const auto p = gen::generate_placement(popt, rng);
  const place::Grid grid{4, 4, p.width, p.height};
  const auto gp = place::legalize(p, place::place_quadratic(p), grid);
  SvgOptions opt;
  opt.show_grid = true;
  const auto svg = placement_svg(p, grid, gp, opt);
  EXPECT_NE(svg.find("<line"), std::string::npos);
}

TEST(Svg, DeterministicOutput) {
  util::Rng r1(234), r2(234);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 12;
  opt.num_nets = 4;
  const auto p1 = gen::generate_routing(opt, r1);
  const auto p2 = gen::generate_routing(opt, r2);
  EXPECT_EQ(routing_svg(p1, route::route_all(p1)),
            routing_svg(p2, route::route_all(p2)));
}

}  // namespace
}  // namespace l2l::viz
