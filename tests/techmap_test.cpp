#include <gtest/gtest.h>

#include "network/blif.hpp"
#include "network/equivalence.hpp"
#include "techmap/library.hpp"
#include "techmap/mapper.hpp"
#include "techmap/subject_graph.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::techmap {
namespace {

using network::Network;
using network::parse_blif;

Network adder() {
  return parse_blif(
      ".model fa\n.inputs a b cin\n.outputs sum cout\n"
      ".names a b cin sum\n100 1\n010 1\n001 1\n111 1\n"
      ".names a b cin cout\n11- 1\n1-1 1\n-11 1\n.end\n");
}

TEST(Library, DefaultLibraryCellsAreConsistent) {
  const auto lib = default_library();
  EXPECT_GE(lib.cells.size(), 9u);
  for (const auto& c : lib.cells) {
    EXPECT_GT(c.area, 0.0) << c.name;
    EXPECT_GT(c.delay, 0.0) << c.name;
    EXPECT_EQ(c.function.num_vars(), c.num_inputs) << c.name;
    EXPECT_FALSE(c.patterns.empty()) << c.name;
  }
  EXPECT_NE(lib.find("NAND2"), nullptr);
  EXPECT_EQ(lib.find("BOGUS"), nullptr);
}

TEST(SubjectGraph, PreservesFunction) {
  const auto net = adder();
  const auto g = build_subject_graph(net);
  EXPECT_EQ(g.inputs.size(), 3u);
  EXPECT_EQ(g.outputs.size(), 2u);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in{static_cast<bool>(m & 1),
                               static_cast<bool>((m >> 1) & 1),
                               static_cast<bool>((m >> 2) & 1)};
    const auto sv = g.simulate(in);
    const auto nv = net.simulate(in);
    for (std::size_t o = 0; o < g.outputs.size(); ++o)
      EXPECT_EQ(sv[static_cast<std::size_t>(g.outputs[o])],
                nv[static_cast<std::size_t>(net.outputs()[o])])
          << "minterm " << m;
  }
}

TEST(SubjectGraph, StructuralHashingSharesNodes) {
  // Two identical expressions must share subject nodes.
  const auto net = parse_blif(
      ".model s\n.inputs a b\n.outputs x y\n"
      ".names a b x\n11 1\n"
      ".names a b y\n11 1\n"
      ".end\n");
  const auto g = build_subject_graph(net);
  // One NAND + one INV serve both outputs.
  EXPECT_EQ(g.num_nand(), 1);
  EXPECT_EQ(g.num_inv(), 1);
  EXPECT_EQ(g.outputs[0], g.outputs[1]);
}

TEST(SubjectGraph, InverterPairsCancel) {
  const auto net = parse_blif(
      ".model s\n.inputs a\n.outputs y\n"
      ".names a t\n0 1\n"
      ".names t y\n0 1\n"   // y = (a')' = a
      ".end\n");
  const auto g = build_subject_graph(net);
  EXPECT_EQ(g.num_inv(), 0);
  EXPECT_EQ(g.num_nand(), 0);
}

TEST(Mapper, RequiresBaseCells) {
  Library empty;
  EXPECT_THROW(technology_map(adder(), empty), std::invalid_argument);
}

TEST(Mapper, MappedNetlistIsEquivalent) {
  const auto net = adder();
  const auto lib = default_library();
  for (const auto obj : {MapObjective::kArea, MapObjective::kDelay}) {
    const auto res = technology_map(net, lib, obj);
    res.netlist.validate();
    EXPECT_GT(res.total_area, 0.0);
    EXPECT_GT(res.critical_delay, 0.0);
    EXPECT_FALSE(res.gates.empty());
    const auto eq = network::check_equivalence(net, res.netlist,
                                               network::EquivalenceMethod::kBdd);
    EXPECT_TRUE(eq.equivalent) << "objective " << static_cast<int>(obj)
                               << " failing output " << eq.failing_output;
  }
}

TEST(Mapper, RichLibraryBeatsNandInvOnArea) {
  const auto net = adder();
  const auto rich = technology_map(net, default_library(), MapObjective::kArea);
  const auto base = technology_map(net, nand2_inv_library(), MapObjective::kArea);
  EXPECT_LE(rich.total_area, base.total_area);
  EXPECT_TRUE(network::check_equivalence(net, base.netlist,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

TEST(Mapper, DelayModeNoWorseThanAreaModeOnDelay) {
  const auto net = adder();
  const auto lib = default_library();
  const auto area_mapped = technology_map(net, lib, MapObjective::kArea);
  const auto delay_mapped = technology_map(net, lib, MapObjective::kDelay);
  EXPECT_LE(delay_mapped.critical_delay, area_mapped.critical_delay + 1e-9);
}

TEST(Mapper, UsesComplexCellsWhenProfitable) {
  // y = (ab + cd)' is exactly AOI22.
  const auto net = parse_blif(
      ".model aoi\n.inputs a b c d\n.outputs y\n"
      ".names a b c d y\n11-- 0\n--11 0\n"
      ".end\n");
  const auto res = technology_map(net, default_library(), MapObjective::kArea);
  bool used_aoi = false;
  for (const auto& gate : res.gates)
    if (gate.cell == "AOI22" || gate.cell == "AOI21") used_aoi = true;
  EXPECT_TRUE(used_aoi);
  EXPECT_TRUE(network::check_equivalence(net, res.netlist,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

TEST(Mapper, XorPatternWithRepeatedLeavesMatches) {
  const auto net = parse_blif(
      ".model x\n.inputs a b\n.outputs y\n"
      ".names a b y\n10 1\n01 1\n"
      ".end\n");
  const auto res = technology_map(net, default_library(), MapObjective::kArea);
  EXPECT_TRUE(network::check_equivalence(net, res.netlist,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
  // XOR2 (area 5) must beat the 4-gate NAND implementation (area >= 12).
  bool used_xor = false;
  for (const auto& gate : res.gates)
    if (gate.cell == "XOR2") used_xor = true;
  EXPECT_TRUE(used_xor);
}

TEST(Mapper, ConstantOutputs) {
  const auto net = parse_blif(
      ".model c\n.inputs a\n.outputs y\n"
      ".names a y\n1 1\n0 1\n"  // tautology -> constant 1
      ".end\n");
  const auto res = technology_map(net, default_library(), MapObjective::kArea);
  res.netlist.validate();
  EXPECT_TRUE(res.netlist.simulate({false})[static_cast<std::size_t>(
      res.netlist.outputs()[0])]);
  EXPECT_TRUE(res.netlist.simulate({true})[static_cast<std::size_t>(
      res.netlist.outputs()[0])]);
}

TEST(Mapper, PassThroughOutput) {
  const auto net = parse_blif(
      ".model p\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
  const auto res = technology_map(net, default_library(), MapObjective::kArea);
  res.netlist.validate();
  EXPECT_TRUE(network::check_equivalence(net, res.netlist,
                                         network::EquivalenceMethod::kBdd)
                  .equivalent);
}

// Property sweep: random networks map correctly under both objectives and
// both libraries.
class MapperPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MapperPropertyTest, RandomNetworksMapEquivalent) {
  util::Rng rng(1100 + static_cast<std::uint64_t>(GetParam()));
  Network net("rand");
  std::vector<network::NodeId> pool;
  for (int i = 0; i < 4; ++i)
    pool.push_back(net.add_input(util::format("i%d", i)));
  for (int k = 0; k < 6; ++k) {
    const int arity = 2 + static_cast<int>(rng.next_below(2));
    std::vector<network::NodeId> fanins;
    for (int j = 0; j < arity; ++j)
      fanins.push_back(pool[static_cast<std::size_t>(rng.next_below(pool.size()))]);
    cubes::Cover cover(arity);
    const int ncubes = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < ncubes; ++c) {
      cubes::Cube cube(arity);
      for (int v = 0; v < arity; ++v) {
        switch (rng.next_below(3)) {
          case 0: cube.set_code(v, cubes::Pcn::kNeg); break;
          case 1: cube.set_code(v, cubes::Pcn::kPos); break;
          default: break;
        }
      }
      cover.add(std::move(cube));
    }
    pool.push_back(net.add_logic(util::format("n%d", k), std::move(fanins),
                                 std::move(cover)));
  }
  net.mark_output(pool.back());
  net.mark_output(pool[pool.size() - 2]);

  for (const auto obj : {MapObjective::kArea, MapObjective::kDelay}) {
    const auto res = technology_map(net, default_library(), obj);
    res.netlist.validate();
    const auto eq = network::check_equivalence(net, res.netlist,
                                               network::EquivalenceMethod::kBdd);
    EXPECT_TRUE(eq.equivalent) << "failing " << eq.failing_output;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace l2l::techmap
