// Differential property test for the packed 2-bit cube layout
// (src/cubes/cube.hpp): every word-parallel kernel is checked against a
// straightforward byte-per-variable reference implementation on seeded
// random cubes, at arities chosen to cross the 32-variable word and the
// 64-variable inline/heap boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cubes/cube.hpp"
#include "util/rng.hpp"

namespace {

using l2l::cubes::Cube;
using l2l::cubes::Pcn;

/// Reference cube: one Pcn per variable, ops straight from the PCN
/// definition (this is the layout the packed class replaced).
using RefCube = std::vector<Pcn>;

RefCube ref_of(const Cube& c) {
  RefCube r(static_cast<std::size_t>(c.num_vars()));
  for (int v = 0; v < c.num_vars(); ++v)
    r[static_cast<std::size_t>(v)] = c.code(v);
  return r;
}

int ref_num_literals(const RefCube& c) {
  int n = 0;
  for (const Pcn p : c)
    if (p != Pcn::kDontCare) ++n;
  return n;
}

bool ref_is_empty(const RefCube& c) {
  return std::any_of(c.begin(), c.end(),
                     [](Pcn p) { return p == Pcn::kEmpty; });
}

RefCube ref_intersect(const RefCube& a, const RefCube& b) {
  RefCube r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] & b[i];
  return r;
}

bool ref_contains(const RefCube& a, const RefCube& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & b[i]) != b[i]) return false;
  return true;
}

int ref_distance(const RefCube& a, const RefCube& b) {
  int d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & b[i]) == Pcn::kEmpty) ++d;
  return d;
}

bool ref_less(const RefCube& a, const RefCube& b) {
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] != b[i])
      return static_cast<std::uint8_t>(a[i]) < static_cast<std::uint8_t>(b[i]);
  }
  return a.size() < b.size();
}

std::optional<RefCube> ref_consensus(const RefCube& a, const RefCube& b) {
  if (ref_distance(a, b) != 1) return std::nullopt;
  RefCube r = ref_intersect(a, b);
  for (auto& p : r)
    if (p == Pcn::kEmpty) p = Pcn::kDontCare;
  return r;
}

/// Random cube over the three storable codes (no kEmpty).
Cube random_cube(int vars, l2l::util::Rng& rng) {
  Cube c(vars);
  for (int v = 0; v < vars; ++v)
    c.set_code(v, static_cast<Pcn>(rng.next_below(3) + 1));
  return c;
}

// Arities probing the packing edges: inside one word, at the 32-variable
// word boundary, at the 64-variable inline/heap boundary, and far beyond.
const int kArities[] = {1, 5, 31, 32, 33, 63, 64, 65, 96, 200, 231};

TEST(CubesPacked, KernelsMatchByteReferenceOnRandomPairs) {
  l2l::util::Rng rng(2024);
  for (const int vars : kArities) {
    for (int trial = 0; trial < 200; ++trial) {
      const Cube a = random_cube(vars, rng);
      const Cube b = random_cube(vars, rng);
      const RefCube ra = ref_of(a), rb = ref_of(b);

      EXPECT_EQ(a.num_literals(), ref_num_literals(ra));
      EXPECT_EQ(a.is_empty(), ref_is_empty(ra));
      EXPECT_EQ(a.distance(b), ref_distance(ra, rb)) << "vars=" << vars;
      EXPECT_EQ(a.contains(b), ref_contains(ra, rb));
      EXPECT_EQ(b.contains(a), ref_contains(rb, ra));
      EXPECT_EQ(a < b, ref_less(ra, rb));
      EXPECT_EQ(b < a, ref_less(rb, ra));
      EXPECT_EQ(a == b, ra == rb);

      // The intersection usually carries kEmpty positions -- the kernels
      // must agree on those codes too.
      const Cube x = a.intersect(b);
      EXPECT_EQ(ref_of(x), ref_intersect(ra, rb));
      EXPECT_EQ(x.num_literals(), ref_num_literals(ref_intersect(ra, rb)));
      EXPECT_EQ(x.is_empty(), ref_is_empty(ref_intersect(ra, rb)));

      const auto cons = a.consensus(b);
      const auto rcons = ref_consensus(ra, rb);
      ASSERT_EQ(cons.has_value(), rcons.has_value()) << "vars=" << vars;
      if (cons) {
        EXPECT_EQ(ref_of(*cons), *rcons);
      }
    }
  }
}

TEST(CubesPacked, ContainmentOnSparseCubes) {
  // Sparse cubes (mostly don't-care) make real containments likely, which
  // the uniform-random pairs above almost never produce.
  l2l::util::Rng rng(7);
  for (const int vars : kArities) {
    for (int trial = 0; trial < 100; ++trial) {
      Cube a(vars);
      const int lits = static_cast<int>(rng.next_below(4));
      for (int k = 0; k < lits; ++k)
        a.set_code(static_cast<int>(
                       rng.next_below(static_cast<std::uint64_t>(vars))),
                   rng.next_bool() ? Pcn::kPos : Pcn::kNeg);
      // b = a with one extra literal: a must contain b, not vice versa
      // (unless the extra literal collides with an existing position).
      Cube b = a;
      const int extra =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vars)));
      b.set_code(extra, rng.next_bool() ? Pcn::kPos : Pcn::kNeg);
      EXPECT_EQ(a.contains(b), ref_contains(ref_of(a), ref_of(b)));
      EXPECT_TRUE(ref_contains(ref_of(a), ref_of(b)) || a.code(extra) != Pcn::kDontCare);
      EXPECT_EQ(b.contains(a), ref_contains(ref_of(b), ref_of(a)));
    }
  }
}

TEST(CubesPacked, CofactorAndOrWithMatchReference) {
  l2l::util::Rng rng(11);
  for (const int vars : kArities) {
    for (int trial = 0; trial < 100; ++trial) {
      const Cube a = random_cube(vars, rng);
      const Cube b = random_cube(vars, rng);
      const int v =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vars)));
      const bool phase = rng.next_bool();

      const auto cf = a.cofactor(v, phase);
      const Pcn need = phase ? Pcn::kPos : Pcn::kNeg;
      if (a.code(v) != Pcn::kDontCare && a.code(v) != need) {
        EXPECT_FALSE(cf.has_value());
      } else {
        ASSERT_TRUE(cf.has_value());
        RefCube expect = ref_of(a);
        expect[static_cast<std::size_t>(v)] = Pcn::kDontCare;
        EXPECT_EQ(ref_of(*cf), expect);
      }

      Cube raised = a;
      raised.or_with(b);
      RefCube expect = ref_of(a);
      const RefCube rb = ref_of(b);
      for (std::size_t i = 0; i < expect.size(); ++i)
        expect[i] = expect[i] | rb[i];
      EXPECT_EQ(ref_of(raised), expect);
    }
  }
}

TEST(CubesPacked, ParseToStringRoundTrip) {
  l2l::util::Rng rng(13);
  for (const int vars : kArities) {
    for (int trial = 0; trial < 50; ++trial) {
      std::string s(static_cast<std::size_t>(vars), '-');
      for (auto& ch : s) ch = "01-"[rng.next_below(3)];
      const Cube c = Cube::parse(s);
      EXPECT_EQ(c.to_string(), s);
      EXPECT_EQ(c.num_vars(), vars);
      // Re-parsing the printed form yields an identical cube (canonical
      // padding makes operator== exact).
      EXPECT_EQ(Cube::parse(c.to_string()), c);
    }
  }
}

TEST(CubesPacked, EvalMatchesLiteralSemantics) {
  l2l::util::Rng rng(17);
  for (const int vars : {1, 5, 12, 20}) {
    for (int trial = 0; trial < 50; ++trial) {
      const Cube c = random_cube(vars, rng);
      const std::uint64_t m = rng.next_below(1ull << vars);
      bool expect = true;
      for (int v = 0; v < vars; ++v) {
        const bool value = (m >> v) & 1;
        if (c.code(v) == Pcn::kPos && !value) expect = false;
        if (c.code(v) == Pcn::kNeg && value) expect = false;
      }
      EXPECT_EQ(c.eval(m), expect);
    }
  }
}

TEST(CubesPacked, OrderingIsTotalAndSortStable) {
  // Sorting packed cubes must equal sorting their reference vectors --
  // this is what keeps Cover::sorted() (and the determinism goldens)
  // byte-identical across the layout change.
  l2l::util::Rng rng(19);
  for (const int vars : {31, 32, 33, 64, 65, 200}) {
    std::vector<Cube> cubes;
    for (int i = 0; i < 128; ++i) cubes.push_back(random_cube(vars, rng));
    // A few deliberate near-duplicates differing only at word boundaries.
    for (const int v : {0, 31, 32, 63, 64, vars - 1}) {
      Cube c = cubes[0];
      c.set_code(v, Pcn::kPos);
      cubes.push_back(c);
      c.set_code(v, Pcn::kNeg);
      cubes.push_back(std::move(c));
    }
    std::vector<RefCube> refs;
    refs.reserve(cubes.size());
    for (const auto& c : cubes) refs.push_back(ref_of(c));
    std::sort(cubes.begin(), cubes.end());
    std::sort(refs.begin(), refs.end(), ref_less);
    for (std::size_t i = 0; i < cubes.size(); ++i)
      EXPECT_EQ(ref_of(cubes[i]), refs[i]) << "position " << i;
  }
}

TEST(CubesPacked, UniversalAndEmptyEdges) {
  for (const int vars : kArities) {
    const Cube u(vars);
    EXPECT_TRUE(u.is_universal());
    EXPECT_FALSE(u.is_empty());
    EXPECT_EQ(u.num_literals(), 0);

    Cube pos = u;
    pos.set_code(vars - 1, Pcn::kPos);  // last variable: trailing-word field
    EXPECT_FALSE(pos.is_universal());
    EXPECT_EQ(pos.num_literals(), 1);

    Cube neg = u;
    neg.set_code(vars - 1, Pcn::kNeg);
    const Cube clash = pos.intersect(neg);
    EXPECT_TRUE(clash.is_empty());
    EXPECT_EQ(pos.distance(neg), 1);
  }
}

}  // namespace
