// l2l::lint test suite: every registered rule fires on a seeded defect
// and stays silent on a clean artifact, the repo's own data/ files lint
// with zero errors, the hostile corpus produces diagnostics instead of
// crashes (including through parse_blif_lenient), and a multi-file
// report renders byte-identically at any thread count.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "network/blif.hpp"
#include "obs/metrics.hpp"
#include "route/solution.hpp"
#include "util/parallel.hpp"

namespace l2l::lint {
namespace {

// ---- fixtures -----------------------------------------------------------

// The routing problem every placement/solution case checks against:
// 4x4x1 grid, one obstacle at (1 1 0), one two-pin net with id 0.
const char kProblemText[] =
    "grid 4 4 1\n"
    "obstacles 1\n"
    "(1 1 0)\n"
    "nets 1\n"
    "net 0 2\n"
    "(0 0 0)\n"
    "(3 3 0)\n";

const gen::RoutingProblem& test_problem() {
  static const gen::RoutingProblem p = route::parse_problem(kProblemText);
  return p;
}

// One artifact per format that every rule of its pack must accept.
const char* clean_text(Format f) {
  switch (f) {
    case Format::kBlif:
      return ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n";
    case Format::kPla:
      return ".i 2\n.o 1\n.p 2\n00 1\n11 1\n.e\n";
    case Format::kCnf:
      return "p cnf 2 2\n1 2 0\n-1 2 0\n";
    case Format::kPlacement:
      return "cell 0 0 0\ncell 1 1 0\n";
    case Format::kRouteProblem:
      return kProblemText;
    case Format::kRouteSolution:
      // Routes net 0 around the (1 1 0) obstacle.
      return "1\nnet 0\n(0 0 0)\n(1 0 0)\n(2 0 0)\n(3 0 0)\n(3 1 0)\n"
             "(3 2 0)\n(3 3 0)\n!\n";
    case Format::kKbddScript:
      return "var a b\nf = a & b\nsize f\n";
    case Format::kAxb:
      return "2\n2 -1\n-1 2\n0 3\n";
    default:
      return "";
  }
}

std::vector<Finding> run_pack(Format f, const std::string& text) {
  LintOptions opt;
  opt.format = f;
  opt.placement = {/*num_cells=*/2, /*cols=*/2, /*rows=*/2};
  if (f == Format::kRouteSolution) opt.route_problem = &test_problem();
  return lint_text("case", text, opt).findings;
}

bool has_rule(const std::vector<Finding>& findings, std::string_view id) {
  for (const auto& f : findings)
    if (f.rule == id) return true;
  return false;
}

std::string data_path(const char* name) {
  return std::string(L2L_REPO_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- the rule table: one seeded defect per registered rule --------------

struct RuleCase {
  const char* rule;
  Format format;
  const char* dirty;  ///< minimal artifact that must trigger `rule`
};

const RuleCase kRuleCases[] = {
    // BLIF / network
    {"L2L-B001", Format::kBlif, "this is not blif\n.end\n"},
    {"L2L-B002", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n"
     ".names a y\n1 1\n.end\n"},
    {"L2L-B003", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names b y\n1 1\n.end\n"},
    {"L2L-B004", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
     ".names a y\n0 1\n.end\n"},
    {"L2L-B005", Format::kBlif,
     ".model m\n.inputs a\n.outputs y\n.names q y\n1 1\n"
     ".names y q\n1 1\n.end\n"},
    {"L2L-B006", Format::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n"
     ".names a b z\n11 1\n.end\n"},
    {"L2L-B007", Format::kBlif,
     ".model m\n.inputs a\n.outputs y y\n.names a y\n1 1\n.end\n"},
    {"L2L-B008", Format::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"},
    {"L2L-B009", Format::kBlif,
     ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.end\n"},
    // PLA
    {"L2L-P001", Format::kPla, "00 1\n.i 2\n.o 1\n.e\n"},
    {"L2L-P002", Format::kPla, ".i 2\n.o 1\n001 1\n.e\n"},
    {"L2L-P003", Format::kPla, ".i 2\n.o 1\n00 11\n.e\n"},
    {"L2L-P004", Format::kPla, ".i 2\n.o 1\n0x 1\n.e\n"},
    {"L2L-P005", Format::kPla, ".i 2\n.o 1\n00 1\n00 1\n.e\n"},
    {"L2L-P006", Format::kPla, ".i 2\n.o 1\n00 1\n00 0\n.e\n"},
    {"L2L-P007", Format::kPla, ".i 2\n.o 1\n.p 5\n00 1\n.e\n"},
    {"L2L-P008", Format::kPla, ".i 2\n.o 1\n00 0\n.e\n"},
    // DIMACS CNF
    {"L2L-C001", Format::kCnf, "not dimacs\n"},
    {"L2L-C002", Format::kCnf, "p cnf 2 1\n1 3 0\n"},
    {"L2L-C003", Format::kCnf, "p cnf 2 2\n1 2 0\n"},
    {"L2L-C004", Format::kCnf, "p cnf 2 2\n1 0\n0\n"},
    {"L2L-C005", Format::kCnf, "p cnf 2 2\n1 2 0\n1 2 0\n"},
    {"L2L-C006", Format::kCnf, "p cnf 2 1\n1 -1 0\n"},
    {"L2L-C007", Format::kCnf, "p cnf 2 1\n1 1 2 0\n"},
    {"L2L-C008", Format::kCnf, "p cnf 3 1\n1 2 0\n"},
    // placement text (checked against spec: 2 cells on a 2x2 grid)
    {"L2L-L001", Format::kPlacement, "cell x 0 0\ncell 0 0 0\ncell 1 1 1\n"},
    {"L2L-L002", Format::kPlacement, "cell 0 0 0\ncell 0 1 1\ncell 1 1 0\n"},
    {"L2L-L003", Format::kPlacement, "cell 5 0 0\ncell 0 0 0\ncell 1 1 0\n"},
    {"L2L-L004", Format::kPlacement, "cell 0 9 9\ncell 1 0 0\n"},
    {"L2L-L005", Format::kPlacement, "cell 0 0 0\ncell 1 0 0\n"},
    {"L2L-L006", Format::kPlacement, "cell 0 0 0\n"},
    // routing problem
    {"L2L-R001", Format::kRouteProblem, "grid banana\n"},
    {"L2L-R002", Format::kRouteProblem,
     "grid 100000 100000 64\nobstacles 0\nnets 0\n"},
    {"L2L-R003", Format::kRouteProblem,
     "grid 4 4 1\nobstacles 0\nnets 1\nnet 0 2\n(0 0 0)\n(9 9 0)\n"},
    {"L2L-R004", Format::kRouteProblem,
     "grid 4 4 1\nobstacles 1\n(1 1 0)\nnets 1\nnet 0 2\n(1 1 0)\n(3 3 0)\n"},
    {"L2L-R005", Format::kRouteProblem,
     "grid 4 4 1\nobstacles 0\nnets 2\nnet 0 2\n(0 0 0)\n(1 1 0)\n"
     "net 0 2\n(2 2 0)\n(3 3 0)\n"},
    {"L2L-R006", Format::kRouteProblem,
     "grid 4 4 1\nobstacles 0\nnets 1\nnet 0 2\n(0 0 0)\n(0 0 0)\n"},
    // routing solution (checked against test_problem())
    {"L2L-S001", Format::kRouteSolution, "1\nnet banana\n"},
    {"L2L-S002", Format::kRouteSolution,
     "2\nnet 0\n(0 0 0)\n(1 0 0)\n!\nnet 0\n(2 0 0)\n(3 0 0)\n!\n"},
    {"L2L-S003", Format::kRouteSolution, "1\nnet 0\n(9 9 0)\n!\n"},
    {"L2L-S004", Format::kRouteSolution, "1\nnet 0\n(1 1 0)\n!\n"},
    {"L2L-S005", Format::kRouteSolution, "1\nnet 7\n(0 0 0)\n!\n"},
    {"L2L-S006", Format::kRouteSolution, "2\nnet 0\n(0 0 0)\n!\n"},
    // kbdd calculator scripts
    {"L2L-K001", Format::kKbddScript, "frobnicate a\n"},
    {"L2L-K002", Format::kKbddScript, "var a\nsize nosuch\n"},
    {"L2L-K003", Format::kKbddScript, "var a\nvar a\n"},
    {"L2L-K004", Format::kKbddScript, "var a\nf = (a\n"},
    // axb linear systems
    {"L2L-A001", Format::kAxb, "0\n"},
    {"L2L-A002", Format::kAxb, "2\n1 0 0\n"},
    {"L2L-A003", Format::kAxb, "1\n2\n3\n4\n"},
    {"L2L-A004", Format::kAxb, "2\n1 2\n3 4\n0 0\n"},
};

// ---- per-rule positive and negative cases -------------------------------

TEST(LintRules, EveryRegisteredRuleFiresOnItsSeededDefect) {
  for (const auto& c : kRuleCases) {
    const auto findings = run_pack(c.format, c.dirty);
    EXPECT_TRUE(has_rule(findings, c.rule))
        << c.rule << " did not fire on its seeded defect";
    // The stable ID must resolve in the registry with the severity the
    // finding actually carries.
    const RuleInfo* info = rule_info(c.rule);
    ASSERT_NE(info, nullptr) << c.rule << " missing from all_rules()";
    for (const auto& f : findings)
      if (f.rule == c.rule)
        EXPECT_EQ(f.severity, info->severity)
            << c.rule << " fired at a severity differing from its registry "
            << "default";
  }
}

TEST(LintRules, NoRuleFiresOnItsFormatsCleanArtifact) {
  for (const auto& c : kRuleCases) {
    const auto findings = run_pack(c.format, clean_text(c.format));
    EXPECT_TRUE(findings.empty())
        << format_name(c.format) << " clean artifact tripped "
        << (findings.empty() ? "" : findings.front().to_string());
    EXPECT_FALSE(has_rule(findings, c.rule));
  }
}

TEST(LintRules, TableCoversTheEntireRegistry) {
  std::set<std::string> in_table;
  for (const auto& c : kRuleCases) in_table.insert(c.rule);
  std::set<std::string> registered;
  for (const auto& r : all_rules()) registered.insert(r.id);
  EXPECT_EQ(in_table, registered)
      << "every registered rule needs a positive case here (and every "
      << "tested rule must be registered)";
}

TEST(LintRules, RegistryIsPackGroupedUniqueAndLookupAgrees) {
  // `--rules` prints the registry in pack order (B, P, C, L, R, S, K, A)
  // with IDs ascending within each pack; IDs are globally unique.
  const auto& rules = all_rules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string> ids;
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_TRUE(ids.insert(rules[i].id).second)
        << rules[i].id << " registered twice";
    if (i > 0 && rules[i - 1].id[4] == rules[i].id[4])
      EXPECT_LT(std::string(rules[i - 1].id), std::string(rules[i].id));
  }
  for (const auto& r : rules) EXPECT_EQ(rule_info(r.id), &r);
  EXPECT_EQ(rule_info("L2L-Z999"), nullptr);
}

// ---- format resolution --------------------------------------------------

TEST(LintFormats, ExtensionThenSniffThenUnknownNote) {
  EXPECT_EQ(format_from_path("designs/adder.blif"), Format::kBlif);
  EXPECT_EQ(format_from_path("hw3.cnf"), Format::kCnf);
  EXPECT_EQ(format_from_path("mystery.bin"), Format::kAuto);
  EXPECT_EQ(sniff_format("p cnf 2 1\n1 2 0\n"), Format::kCnf);
  EXPECT_EQ(sniff_format(".model top\n.end\n"), Format::kBlif);

  // Unrecognized bytes produce exactly one file-level note, zero errors:
  // hostile uploads must never make the linter itself fail.
  const auto fr = lint_text("mystery.bin", "total gibberish here\n");
  EXPECT_EQ(fr.format, Format::kUnknown);
  ASSERT_EQ(fr.findings.size(), 1u);
  EXPECT_EQ(fr.findings.front().rule, "L2L-X000");
  EXPECT_EQ(fr.findings.front().severity, util::Severity::kNote);
  EXPECT_EQ(fr.errors(), 0);
}

TEST(LintFormats, FlagNamesRoundTrip) {
  for (const char* name : {"blif", "pla", "cnf", "place", "route-problem",
                           "route-solution", "kbdd", "axb"}) {
    const auto f = parse_format_name(name);
    ASSERT_TRUE(f.has_value()) << name;
    EXPECT_NE(*f, Format::kUnknown);
  }
  EXPECT_FALSE(parse_format_name("verilog").has_value());
}

// ---- findings and report rendering --------------------------------------

TEST(LintReport, FindingsComeOutSortedAndRenderTheirHints) {
  // The B004 artifact yields multiple findings across several lines.
  const auto findings = run_pack(
      Format::kBlif,
      ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
      ".names a y\n0 1\n.end\n");
  ASSERT_GE(findings.size(), 1u);
  for (size_t i = 1; i < findings.size(); ++i) {
    const auto& a = findings[i - 1];
    const auto& b = findings[i];
    EXPECT_LE(std::tie(a.line, a.column, a.rule), std::tie(b.line, b.column, b.rule));
  }
  // to_string carries the anchor, the bracketed rule ID, and the hint.
  Finding f{"L2L-B003", util::Severity::kError, 3, 1, "undriven net 'q'",
            "drive it or drop it"};
  const std::string s = f.to_string();
  EXPECT_NE(s.find("line 3"), std::string::npos);
  EXPECT_NE(s.find("[L2L-B003]"), std::string::npos);
  EXPECT_NE(s.find("drive it or drop it"), std::string::npos);
  // to_diagnostic keeps the stable ID visible in grader reports.
  EXPECT_NE(f.to_diagnostic().message.find("L2L-B003"), std::string::npos);
}

TEST(LintReport, MixedBatchRendersCountsAndKeepsInputOrder) {
  const std::vector<std::pair<std::string, std::string>> batch = {
      {"ok.cnf", clean_text(Format::kCnf)},
      {"bad.cnf", "p cnf 2 1\n1 3 0\n"},
      {"warn.pla", ".i 2\n.o 1\n.p 5\n00 1\n.e\n"},
  };
  const Report r = lint_files(batch);
  ASSERT_EQ(r.files.size(), 3u);
  EXPECT_EQ(r.files[0].file, "ok.cnf");
  EXPECT_EQ(r.files[1].file, "bad.cnf");
  EXPECT_EQ(r.files[2].file, "warn.pla");
  EXPECT_EQ(r.errors(), 1);
  EXPECT_GE(r.warnings(), 1);
  EXPECT_FALSE(r.pass());

  const std::string text = r.to_text();
  EXPECT_NE(text.find("[L2L-C002]"), std::string::npos);
  EXPECT_NE(text.find("lint: 3 file(s)"), std::string::npos);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"bad.cnf\""), std::string::npos);
  EXPECT_NE(json.find("\"L2L-C002\""), std::string::npos);
}

TEST(LintReport, WerrorPromotesWarningsToGateFailures) {
  const Report r = lint_files({{"warn.pla", ".i 2\n.o 1\n.p 5\n00 1\n.e\n"}});
  EXPECT_EQ(r.errors(), 0);
  EXPECT_GE(r.warnings(), 1);
  EXPECT_TRUE(r.pass(/*werror=*/false));
  EXPECT_FALSE(r.pass(/*werror=*/true));
}

TEST(LintReport, PerRuleObsCountersTally) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  (void)lint_files({{"bad.cnf", "p cnf 2 1\n1 3 0\n"},
                    {"dup.cnf", "p cnf 2 2\n1 2 0\n1 2 0\n"}});
  const auto snap = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  EXPECT_EQ(snap.counters.at("lint.files"), 2);
  EXPECT_GE(snap.counters.at("lint.rule.L2L-C002"), 1);
  EXPECT_GE(snap.counters.at("lint.rule.L2L-C005"), 1);
}

// ---- repo artifacts and the hostile corpus ------------------------------

TEST(LintCorpus, ShippedDataArtifactsLintWithZeroErrors) {
  // Every artifact the repo itself ships must pass its own linter.
  for (const char* name : {"fulladder.blif", "sample.pla", "sample.cnf",
                           "sample.kbdd", "sample.axb"}) {
    const auto fr = lint_text(name, read_file(data_path(name)));
    EXPECT_EQ(fr.errors(), 0)
        << name << " should be clean:\n"
        << (fr.findings.empty() ? "" : fr.findings.front().to_string());
  }
}

TEST(LintCorpus, HostileFilesProduceDiagnosticsNeverCrashes) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(L2L_TEST_DATA_DIR) / "hostile";
  int linted = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "README.md") continue;
    const std::string text = read_file(entry.path().string());
    FileReport fr;
    ASSERT_NO_THROW(fr = lint_text(name, text)) << name;
    // Rendering must survive arbitrary bytes too.
    for (const auto& f : fr.findings) ASSERT_NO_THROW((void)f.to_string());
    // out_of_range_route.sol only violates geometry, which standalone
    // lint (no problem handed in) deliberately skips, and
    // esop_overwide.pla is well-formed PLA whose 17 inputs only the
    // ESOP engine's arity cap rejects; everything else must yield at
    // least one finding.
    if (name != "out_of_range_route.sol" && name != "esop_overwide.pla")
      EXPECT_FALSE(fr.findings.empty()) << name << " linted silently";
    ++linted;
  }
  EXPECT_GE(linted, 10) << "hostile corpus went missing";
}

TEST(LintCorpus, LenientBlifParseNeverThrowsOnHostileBytes) {
  // Satellite regression for parse_blif_lenient: the whole corpus --
  // including non-BLIF binary junk -- must come back as diagnostics,
  // never as an exception.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(L2L_TEST_DATA_DIR) / "hostile";
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "README.md") continue;
    const std::string text = read_file(entry.path().string());
    network::ParsedBlif parsed;
    ASSERT_NO_THROW(parsed = network::parse_blif_lenient(text)) << name;
    if (name == "garbage.blif" || name == "truncated.blif")
      EXPECT_FALSE(parsed.clean()) << name << " parsed without diagnostics";
  }
}

TEST(LintCorpus, LenientBlifSalvagesAroundLocalizedDefects) {
  // A malformed cube row poisons only its own .names block: the sibling
  // output still parses, and both defects surface as diagnostics (the
  // bad row, then the output its block would have driven).
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs y z\n"
      ".names a b y\n"
      "11 1\n"
      ".names a b z\n"
      "banana row\n"
      ".end\n";
  const auto parsed = network::parse_blif_lenient(text);
  ASSERT_GE(parsed.diagnostics.size(), 2u);
  EXPECT_EQ(parsed.diagnostics.front().line, 7);  // anchored at the bad row
  EXPECT_EQ(parsed.network.outputs().size(), 1u);
  EXPECT_THROW((void)network::parse_blif(text), std::invalid_argument);
}

// ---- determinism across the worker pool ---------------------------------

TEST(LintDeterminism, ReportBytesAreThreadCountInvariant) {
  // A batch wide enough to spread across workers, mixing every format
  // plus hostile bytes. Both renderings must be byte-identical at any
  // L2L_THREADS -- same contract as the engines (determinism_test pins
  // the same property against the full fixture set).
  std::vector<std::pair<std::string, std::string>> batch;
  for (const auto& c : kRuleCases)
    batch.emplace_back(std::string(c.rule) + ".case", c.dirty);
  for (Format f : {Format::kBlif, Format::kPla, Format::kCnf,
                   Format::kKbddScript, Format::kAxb})
    batch.emplace_back(std::string("clean.") + format_name(f), clean_text(f));

  std::vector<std::string> texts, jsons;
  for (const int t : {1, 2, 8}) {
    util::set_num_threads(t);
    const Report r = lint_files(batch);
    texts.push_back(r.to_text());
    jsons.push_back(r.to_json());
  }
  util::set_num_threads(0);
  EXPECT_EQ(texts[0], texts[1]);
  EXPECT_EQ(texts[0], texts[2]);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
  EXPECT_NE(texts[0].find("error"), std::string::npos);
}

}  // namespace
}  // namespace l2l::lint
