// Tests for the observability layer (src/obs): registry semantics,
// histogram bucket edges, shard-merge determinism at 1/2/8 threads, and
// trace JSON well-formedness.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace obs = l2l::obs;

namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
  }
  void TearDown() override {
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
    obs::set_enabled(true);
    l2l::util::set_num_threads(0);
  }
};

// ---- registry semantics -------------------------------------------------

TEST_F(ObsTest, CountersAccumulate) {
  obs::count("a", 2);
  obs::count("a", 3);
  obs::count("b");
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5);
  EXPECT_EQ(snap.counters.at("b"), 1);
}

TEST_F(ObsTest, GaugeSetLastWriteAndGaugeMax) {
  obs::gauge_set("g", 7);
  obs::gauge_set("g", 3);
  obs::gauge_max("m", 4);
  obs::gauge_max("m", 9);
  obs::gauge_max("m", 2);
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.gauges.at("g"), 3);
  EXPECT_EQ(snap.gauges.at("m"), 9);
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::count("a");
  obs::gauge_set("g", 1);
  obs::observe("h", 5);
  obs::Registry::global().reset();
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsTest, KillSwitchDropsUpdates) {
  obs::set_enabled(false);
  obs::count("a");
  obs::observe("h", 1);
  { obs::ScopedSpan span("s"); }
  obs::set_enabled(true);
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.count("a"), 0u);
  EXPECT_EQ(snap.counters.count("span.s"), 0u);
  EXPECT_TRUE(snap.histograms.empty());
}

// ---- histogram bucket edges ---------------------------------------------

TEST_F(ObsTest, HistogramBucketEdges) {
  // Bucket i counts values <= 2^i; values < 1 land in bucket 0.
  EXPECT_EQ(obs::histogram_bucket_index(-5), 0);
  EXPECT_EQ(obs::histogram_bucket_index(0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(1), 0);
  EXPECT_EQ(obs::histogram_bucket_index(2), 1);
  EXPECT_EQ(obs::histogram_bucket_index(3), 2);
  EXPECT_EQ(obs::histogram_bucket_index(4), 2);
  EXPECT_EQ(obs::histogram_bucket_index(5), 3);
  EXPECT_EQ(obs::histogram_bucket_index(1024), 10);
  EXPECT_EQ(obs::histogram_bucket_index(1025), 11);
  // The overflow bucket catches everything past the last finite bound.
  EXPECT_EQ(obs::histogram_bucket_index((std::int64_t{1} << 20) + 1),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_index(std::int64_t{1} << 40),
            obs::kHistogramBuckets - 1);
  // Bounds line up with the indexing rule: v = bound(i) indexes bucket i.
  for (int i = 0; i < obs::kHistogramBuckets - 1; ++i)
    EXPECT_EQ(obs::histogram_bucket_index(obs::histogram_bucket_bound(i)), i)
        << "bucket " << i;
}

TEST_F(ObsTest, HistogramCountAndSum) {
  obs::observe("h", 1);
  obs::observe("h", 2);
  obs::observe("h", 100);
  const auto snap = obs::Registry::global().snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 3);
  EXPECT_EQ(h.sum, 103);
  EXPECT_EQ(h.buckets[0], 1);  // value 1
  EXPECT_EQ(h.buckets[1], 1);  // value 2
  EXPECT_EQ(h.buckets[7], 1);  // 100 <= 128
}

// ---- shard-merge determinism --------------------------------------------

// The same deterministic parallel workload must export byte-identical
// counters at any thread count: every lane's increments are commutative
// sums, and the export sorts by name.
TEST_F(ObsTest, ExportIsIdenticalAcrossThreadCounts) {
  const int kThreadCounts[] = {1, 2, 8};
  std::vector<std::string> exports;
  for (const int threads : kThreadCounts) {
    l2l::util::set_num_threads(threads);
    obs::Registry::global().reset();
    l2l::util::parallel_for(0, 1000, 16, [](std::int64_t i) {
      obs::count("work.items");
      obs::count(i % 2 == 0 ? "work.even" : "work.odd");
      obs::observe("work.value", i);
      obs::gauge_max("work.max_index", i);
    });
    exports.push_back(obs::Registry::global().export_deterministic_text());
  }
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
  // Sanity: the export actually contains the workload's totals.
  EXPECT_NE(exports[0].find("counter work.items 1000"), std::string::npos);
  EXPECT_NE(exports[0].find("counter work.even 500"), std::string::npos);
  EXPECT_NE(exports[0].find("gauge work.max_index 999"), std::string::npos);
}

TEST_F(ObsTest, ShardsMergeAcrossExplicitThreads) {
  // Raw std::threads (not the pool): every thread gets its own shard and
  // the snapshot folds them all.
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t)
    ts.emplace_back([] {
      for (int i = 0; i < 100; ++i) obs::count("threads.ticks");
    });
  for (auto& t : ts) t.join();
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("threads.ticks"), 800);
}

// ---- span tracer --------------------------------------------------------

TEST_F(ObsTest, SpanCountsAreDeterministicCounters) {
  { obs::ScopedSpan a("alpha"); }
  { obs::ScopedSpan a("alpha"); }
  { obs::ScopedSpan b("beta", "cat"); }
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("span.alpha"), 2);
  EXPECT_EQ(snap.counters.at("span.beta"), 1);
  const std::string text = obs::Tracer::global().text();
  EXPECT_NE(text.find("span alpha count 2"), std::string::npos);
  EXPECT_NE(text.find("span beta count 1"), std::string::npos);
}

TEST_F(ObsTest, DurationsStayOutOfDeterministicExport) {
  { obs::ScopedSpan a("alpha"); }
  const std::string det = obs::Registry::global().export_deterministic_text();
  EXPECT_EQ(det.find("total_us"), std::string::npos);
  const std::string report = obs::metrics_report();
  const auto split = report.find("# nondeterministic");
  ASSERT_NE(split, std::string::npos);
  // Durations appear only after the nondeterministic marker.
  EXPECT_EQ(report.substr(0, split).find("total_us"), std::string::npos);
  EXPECT_NE(report.substr(split).find("total_us"), std::string::npos);
}

// Minimal JSON validator: enough to catch unbalanced structure and
// unescaped quotes in the fixed-shape trace we emit.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(ObsTest, ChromeTraceJsonWellFormed) {
  { obs::ScopedSpan a("alpha", "cat"); }
  {
    // Hostile span name: quotes, backslashes, newline, control char.
    obs::ScopedSpan b("we\"ird\\na\nme\x01", "c\"at");
  }
  const std::string json = obs::Tracer::global().chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
}

TEST_F(ObsTest, EmptyTraceIsStillValidJson) {
  const std::string json = obs::Tracer::global().chrome_json();
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST_F(ObsTest, TraceEventsLandOnPerThreadTracks) {
  l2l::util::set_num_threads(4);
  l2l::util::parallel_for(0, 64, 1, [](std::int64_t) {
    obs::ScopedSpan s("work");
  });
  // Deterministic count regardless of how lanes split the work...
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("span.work"), 64);
  // ...and every event carries a positive tid.
  const std::string json = obs::Tracer::global().chrome_json();
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

}  // namespace
