#include <gtest/gtest.h>

#include "cubes/urp.hpp"
#include "cubes/cover.hpp"
#include "homework/quiz.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::homework {
namespace {

TEST(Quiz, DeterministicPerSeed) {
  for (int week = 1; week <= 8; ++week) {
    const auto a = weekly_assignment(week, 42, 3);
    const auto b = weekly_assignment(week, 42, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].question, b[k].question);
      EXPECT_EQ(a[k].answer, b[k].answer);
    }
  }
}

TEST(Quiz, SeedsIndividualize) {
  // "Aggressive randomization": different student tokens get different
  // problems (allow occasional collisions; require most to differ).
  int distinct = 0;
  const auto base = weekly_assignment(2, 1, 1);
  for (std::uint64_t seed = 2; seed < 12; ++seed) {
    const auto other = weekly_assignment(2, seed, 1);
    distinct += other[0].question != base[0].question;
  }
  EXPECT_GE(distinct, 8);
}

TEST(Quiz, UrpAnswersAreCorrect) {
  util::Rng rng(301);
  int yes = 0, no = 0;
  for (int k = 0; k < 30; ++k) {
    const auto q = urp_tautology_quiz(rng);
    (q.answer == "yes" ? yes : no)++;
    EXPECT_TRUE(q.answer == "yes" || q.answer == "no");
    EXPECT_NE(q.question.find("tautology"), std::string::npos);
  }
  // Both outcomes occur in the pool (the over-supply property).
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(Quiz, SatAnswersBothOutcomes) {
  util::Rng rng(302);
  int sat = 0, unsat = 0;
  for (int k = 0; k < 30; ++k) {
    const auto q = sat_quiz(rng);
    (q.answer == "sat" ? sat : unsat)++;
  }
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

TEST(Quiz, PlacementClosedForm) {
  util::Rng rng(303);
  const auto q = placement_quiz(rng);
  // The answer is parseable and inside the die.
  const double x = util::parse_double(q.answer).value();
  EXPECT_GE(x, 0.0);
  EXPECT_LE(x, 50.0 * 4);
}

TEST(Quiz, RoutingAnswerPositiveOrUnroutable) {
  util::Rng rng(304);
  for (int k = 0; k < 5; ++k) {
    const auto q = routing_quiz(rng);
    if (q.answer != "unroutable") EXPECT_GT(util::parse_double(q.answer).value(), 0.0);
  }
}

TEST(Quiz, GraderNormalizes) {
  Quiz q;
  q.answer = "Yes";
  EXPECT_TRUE(grade_answer(q, " yes "));
  EXPECT_TRUE(grade_answer(q, "YES"));
  EXPECT_FALSE(grade_answer(q, "no"));
  q.answer = "13.33";
  EXPECT_TRUE(grade_answer(q, "13.33"));
  EXPECT_FALSE(grade_answer(q, "13.3"));
}

TEST(Quiz, WeekValidation) {
  EXPECT_THROW(weekly_assignment(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(weekly_assignment(9, 1, 1), std::invalid_argument);
}

TEST(Quiz, AllWeeksProduceNonEmptyQuizzes) {
  for (int week = 1; week <= 8; ++week) {
    const auto a = weekly_assignment(week, 7, 2);
    ASSERT_EQ(a.size(), 2u) << week;
    for (const auto& q : a) {
      EXPECT_FALSE(q.question.empty());
      EXPECT_FALSE(q.answer.empty());
      EXPECT_FALSE(q.topic.empty());
    }
  }
}

}  // namespace
}  // namespace l2l::homework
