#include <gtest/gtest.h>

#include "gen/routing_gen.hpp"
#include "geom/drc.hpp"
#include "geom/extract.hpp"
#include "geom/scanline.hpp"
#include "route/router.hpp"
#include "util/rng.hpp"

namespace l2l::geom {
namespace {

TEST(Rect, OverlapAndGap) {
  const Rect a{0, 0, 2, 2, 0, 0};
  const Rect b{2, 2, 4, 4, 0, 1};
  const Rect c{4, 0, 5, 1, 0, 2};
  const Rect d{0, 0, 2, 2, 1, 3};  // other layer
  EXPECT_TRUE(a.overlaps(b));  // corner touch counts (closed rects)
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(d));
  EXPECT_EQ(a.gap(c), 2);  // x gap: cells 3..3 between
  EXPECT_EQ(a.gap(b), 0);
  EXPECT_EQ(a.area(), 9);
}

TEST(Scanline, FindsAllOverlapsBruteForceAgreement) {
  util::Rng rng(221);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rect> rects;
    for (int k = 0; k < 30; ++k) {
      Rect r;
      r.x1 = static_cast<int>(rng.next_below(40));
      r.y1 = static_cast<int>(rng.next_below(40));
      r.x2 = r.x1 + static_cast<int>(rng.next_below(8));
      r.y2 = r.y1 + static_cast<int>(rng.next_below(8));
      r.layer = static_cast<int>(rng.next_below(2));
      r.owner = k;
      rects.push_back(r);
    }
    auto scan = overlapping_pairs(rects);
    std::vector<std::pair<int, int>> brute;
    for (int i = 0; i < 30; ++i)
      for (int j = i + 1; j < 30; ++j)
        if (rects[static_cast<std::size_t>(i)].overlaps(rects[static_cast<std::size_t>(j)]))
          brute.emplace_back(i, j);
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(scan, brute) << "trial " << trial;
  }
}

TEST(Scanline, SpacingViolations) {
  // Rects spanning x 0..1 and 3..4: one empty column between, boundary
  // gap 2. Violation iff 0 < gap < min_space.
  std::vector<Rect> rects{{0, 0, 1, 1, 0, 0}, {3, 0, 4, 1, 0, 1}};
  EXPECT_TRUE(spacing_violations(rects, 1).empty());
  EXPECT_TRUE(spacing_violations(rects, 2).empty());
  EXPECT_EQ(spacing_violations(rects, 3).size(), 1u);
  // Same owner: never a violation.
  rects[1].owner = 0;
  EXPECT_TRUE(spacing_violations(rects, 3).empty());
}

TEST(Drc, RoutedSolutionsAreClean) {
  util::Rng rng(222);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 32;
  opt.num_nets = 16;
  const auto p = gen::generate_routing(opt, rng);
  const auto sol = route::route_all(p);
  const auto drc = check_drc(sol);
  EXPECT_TRUE(drc.clean()) << drc.report();
  EXPECT_GT(drc.rect_count, 0);
}

TEST(Drc, DetectsInjectedShort) {
  route::RouteSolution sol;
  route::NetRoute a, b;
  a.net_id = 0;
  a.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  b.net_id = 1;
  b.cells = {{2, 0, 0}, {3, 0, 0}};  // shares (2,0,0) with net 0
  sol.nets = {a, b};
  const auto drc = check_drc(sol);
  ASSERT_EQ(drc.violations.size(), 1u);
  EXPECT_EQ(drc.violations[0].kind, DrcViolation::Kind::kShort);
  EXPECT_NE(drc.report().find("SHORT"), std::string::npos);
}

TEST(Drc, SpacingRuleWidensViolations) {
  route::RouteSolution sol;
  route::NetRoute a, b;
  a.net_id = 0;
  a.cells = {{0, 0, 0}, {1, 0, 0}};
  b.net_id = 1;
  b.cells = {{0, 2, 0}, {1, 2, 0}};  // 1 empty row between
  sol.nets = {a, b};
  EXPECT_TRUE(check_drc(sol, 1).clean());
  EXPECT_FALSE(check_drc(sol, 3).clean());
}

TEST(Drc, RectMergingIsMaximal) {
  route::RouteSolution sol;
  route::NetRoute a;
  a.net_id = 0;
  for (int x = 0; x < 10; ++x) a.cells.push_back({x, 5, 0});
  sol.nets = {a};
  const auto rects = rects_from_solution(sol);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0].x1, 0);
  EXPECT_EQ(rects[0].x2, 9);
}

TEST(Extract, ComponentsMatchNets) {
  util::Rng rng(223);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 32;
  opt.num_nets = 12;
  opt.max_pins_per_net = 4;
  const auto p = gen::generate_routing(opt, rng);
  const auto sol = route::route_all(p);
  const auto ext = extract_connectivity(sol);
  // Every routed net = exactly one component; total components = routed nets.
  int routed = 0;
  for (const auto& net : sol.nets) routed += net.routed;
  EXPECT_EQ(ext.num_components, routed);
}

TEST(Lvs, CleanOnRouterOutput) {
  util::Rng rng(224);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 24;
  opt.num_nets = 10;
  const auto p = gen::generate_routing(opt, rng);
  const auto sol = route::route_all(p);
  const auto r = lvs(p, sol);
  EXPECT_TRUE(r.clean) << r.report();
}

TEST(Lvs, DetectsOpen) {
  gen::RoutingProblem p;
  p.width = p.height = 8;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(64, false));
  p.nets.push_back({0, {{0, 0, 0}, {5, 0, 0}}});
  route::RouteSolution sol;
  route::NetRoute broken;
  broken.net_id = 0;
  broken.routed = true;
  // Gap at x=3: two disconnected islands.
  broken.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {4, 0, 0}, {5, 0, 0}};
  sol.nets = {broken};
  const auto r = lvs(p, sol);
  EXPECT_FALSE(r.clean);
  ASSERT_EQ(r.opens.size(), 1u);
  EXPECT_EQ(r.opens[0], 0);
  EXPECT_NE(r.report().find("open"), std::string::npos);
}

TEST(Lvs, DetectsShort) {
  gen::RoutingProblem p;
  p.width = p.height = 8;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(64, false));
  p.nets.push_back({0, {{0, 0, 0}, {2, 0, 0}}});
  p.nets.push_back({1, {{0, 1, 0}, {2, 1, 0}}});
  route::RouteSolution sol;
  route::NetRoute a, b;
  a.net_id = 0;
  a.routed = true;
  a.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  b.net_id = 1;
  b.routed = true;
  b.cells = {{0, 1, 0}, {1, 1, 0}, {2, 1, 0}, {1, 0, 0}};  // touches net 0
  sol.nets = {a, b};
  const auto r = lvs(p, sol);
  EXPECT_FALSE(r.clean);
  ASSERT_EQ(r.shorts.size(), 1u);
  EXPECT_EQ(r.shorts[0], (std::pair<int, int>{0, 1}));
}

TEST(Lvs, ViasConnectAcrossLayers) {
  gen::RoutingProblem p;
  p.width = p.height = 8;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(64, false));
  p.nets.push_back({0, {{0, 0, 0}, {3, 0, 1}}});
  route::RouteSolution sol;
  route::NetRoute a;
  a.net_id = 0;
  a.routed = true;
  a.cells = {{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {2, 0, 1}, {3, 0, 1}};
  sol.nets = {a};
  EXPECT_TRUE(lvs(p, sol).clean);
  // Remove the via landing: now an open.
  a.cells = {{0, 0, 0}, {1, 0, 0}, {2, 0, 1}, {3, 0, 1}};
  sol.nets = {a};
  EXPECT_FALSE(lvs(p, sol).clean);
}

}  // namespace
}  // namespace l2l::geom
