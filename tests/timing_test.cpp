#include <gtest/gtest.h>

#include "gen/function_gen.hpp"
#include "route/router.hpp"
#include "techmap/mapper.hpp"
#include "timing/elmore.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"

namespace l2l::timing {
namespace {

using network::Network;
using network::NodeId;

TEST(Sta, ChainDelays) {
  // a -> n1 -> n2 -> n3 (unit delays): critical delay 3.
  Network net;
  const auto a = net.add_input("a");
  auto prev = a;
  for (int k = 0; k < 3; ++k)
    prev = net.add_logic("n" + std::to_string(k), {prev},
                         cubes::Cover::parse(1, "1\n"));
  net.mark_output(prev);
  const auto res = analyze(net, unit_delays(net));
  EXPECT_DOUBLE_EQ(res.critical_delay, 3.0);
  EXPECT_DOUBLE_EQ(res.arrival[static_cast<std::size_t>(a)], 0.0);
  EXPECT_DOUBLE_EQ(res.worst_slack, 0.0);
  EXPECT_EQ(res.critical_path.size(), 4u);
  EXPECT_EQ(res.critical_path.front(), a);
  EXPECT_EQ(res.critical_path.back(), prev);
}

TEST(Sta, ReconvergentPathsTakeMax) {
  // a feeds a short path (1 gate) and a long path (3 gates) into y.
  Network net;
  const auto a = net.add_input("a");
  const auto s = net.add_logic("s", {a}, cubes::Cover::parse(1, "1\n"));
  const auto l1 = net.add_logic("l1", {a}, cubes::Cover::parse(1, "0\n"));
  const auto l2 = net.add_logic("l2", {l1}, cubes::Cover::parse(1, "0\n"));
  const auto y =
      net.add_logic("y", {s, l2}, cubes::Cover::parse(2, "11\n"));
  net.mark_output(y);
  const auto res = analyze(net, unit_delays(net));
  EXPECT_DOUBLE_EQ(res.critical_delay, 3.0);
  // The short branch has slack 2 at node s... s arrives at 1, required at
  // critical (3) minus delay(y)=1 -> 2, slack 1.
  EXPECT_DOUBLE_EQ(res.slack[static_cast<std::size_t>(s)], 1.0);
  EXPECT_DOUBLE_EQ(res.slack[static_cast<std::size_t>(l1)], 0.0);
  EXPECT_DOUBLE_EQ(res.slack[static_cast<std::size_t>(l2)], 0.0);
}

TEST(Sta, RequiredTimeGivesNegativeSlack) {
  Network net;
  const auto a = net.add_input("a");
  auto prev = a;
  for (int k = 0; k < 4; ++k)
    prev = net.add_logic("n" + std::to_string(k), {prev},
                         cubes::Cover::parse(1, "1\n"));
  net.mark_output(prev);
  const auto res = analyze(net, unit_delays(net), 2.0);
  EXPECT_DOUBLE_EQ(res.worst_slack, -2.0);
}

TEST(Sta, CellDelaysFromMappedNetlist) {
  const auto net = gen::adder_network(2);
  const auto lib = techmap::default_library();
  const auto mapped = techmap::technology_map(net, lib,
                                              techmap::MapObjective::kDelay);
  const auto delays = cell_delays(mapped.netlist, lib);
  const auto res = analyze(mapped.netlist, delays);
  // STA must agree with the mapper's own critical-delay computation.
  EXPECT_NEAR(res.critical_delay, mapped.critical_delay, 1e-9);
}

TEST(Sta, DelayVectorSizeChecked) {
  Network net;
  net.mark_output(net.add_input("a"));
  EXPECT_THROW(analyze(net, std::vector<double>{}), std::invalid_argument);
}

TEST(Elmore, SingleSegment) {
  // Root -- R=2, C=3 node: delay = 2*3 = 6.
  RcTree t;
  t.nodes.push_back({-1, 0.0, 0.0});
  t.nodes.push_back({0, 2.0, 3.0});
  const auto d = elmore_delays(t);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_DOUBLE_EQ(total_capacitance(t), 3.0);
}

TEST(Elmore, ClassicLadder) {
  // R1=1,C1=1; R2=1,C2=1 chain:
  // delay(1) = R1*(C1+C2) = 2; delay(2) = delay(1) + R2*C2 = 3.
  RcTree t;
  t.nodes.push_back({-1, 0.0, 0.0});
  t.nodes.push_back({0, 1.0, 1.0});
  t.nodes.push_back({1, 1.0, 1.0});
  const auto d = elmore_delays(t);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(Elmore, BranchingTree) {
  //      root
  //       | R=1, C=1          (node 1)
  //   left: R=1,C=2  right: R=2,C=1   (nodes 2 and 3)
  RcTree t;
  t.nodes.push_back({-1, 0.0, 0.0});
  t.nodes.push_back({0, 1.0, 1.0});
  t.nodes.push_back({1, 1.0, 2.0});
  t.nodes.push_back({1, 2.0, 1.0});
  const auto d = elmore_delays(t);
  EXPECT_DOUBLE_EQ(d[1], 1.0 * (1 + 2 + 1));  // all downstream C
  EXPECT_DOUBLE_EQ(d[2], d[1] + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(d[3], d[1] + 2.0 * 1.0);
}

TEST(Elmore, ValidationRejectsBadTrees) {
  RcTree empty;
  EXPECT_THROW(elmore_delays(empty), std::logic_error);
  RcTree bad;
  bad.nodes.push_back({-1, 0, 0});
  bad.nodes.push_back({5, 1, 1});  // parent after child
  EXPECT_THROW(elmore_delays(bad), std::logic_error);
}

TEST(Elmore, FromRoutedNetStraightWire) {
  route::NetRoute net;
  net.net_id = 0;
  for (int x = 0; x <= 4; ++x) net.cells.push_back({x, 0, 0});
  WireParasitics par;
  par.r_per_unit = 1.0;
  par.c_per_unit = 1.0;
  par.sink_c = 0.0;
  const auto d = net_sink_delays(net, {0, 0, 0}, {{4, 0, 0}}, par);
  ASSERT_EQ(d.size(), 1u);
  // Ladder of 4 RC segments: delay = sum_{k=1..4} k = ... computed from
  // downstream caps: R*(4) + R*(3) + R*(2) + R*(1) = 10.
  EXPECT_DOUBLE_EQ(d[0], 10.0);
}

TEST(Elmore, ViasCostMore) {
  route::NetRoute flat, via;
  flat.net_id = 0;
  via.net_id = 1;
  for (int x = 0; x <= 2; ++x) flat.cells.push_back({x, 0, 0});
  via.cells = {{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {2, 0, 1}};
  WireParasitics par;
  const auto df = net_sink_delays(flat, {0, 0, 0}, {{2, 0, 0}}, par);
  const auto dv = net_sink_delays(via, {0, 0, 0}, {{2, 0, 1}}, par);
  EXPECT_GT(dv[0], df[0]);
}

TEST(Elmore, RealRoutedNetDelaysPositiveAndOrdered) {
  util::Rng rng(131);
  gen::RoutingGenOptions gopt;
  gopt.width = 24;
  gopt.height = 24;
  gopt.num_nets = 6;
  gopt.max_pins_per_net = 4;
  const auto p = gen::generate_routing(gopt, rng);
  const auto sol = route::route_all(p);
  for (std::size_t n = 0; n < p.nets.size(); ++n) {
    if (!sol.nets[n].routed) continue;
    const auto& pins = p.nets[n].pins;
    std::vector<route::GridPoint> sinks(pins.begin() + 1, pins.end());
    const auto d = net_sink_delays(sol.nets[n], pins[0], sinks);
    for (const double delay : d) EXPECT_GT(delay, 0.0);
  }
}

TEST(Elmore, SourceMustBeOnNet) {
  route::NetRoute net;
  net.cells = {{0, 0, 0}};
  EXPECT_THROW(net_sink_delays(net, {5, 5, 0}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace l2l::timing
