// Quickstart: the whole "logic to layout" arc in one page.
//
// Builds a 4-bit ripple-carry adder as a logic network, then runs the
// complete course flow -- multi-level synthesis, technology mapping,
// quadratic placement, 2-layer maze routing, and static timing with
// Elmore wire delays -- and prints the flow report.

#include <iostream>

#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "network/blif.hpp"

int main() {
  // Any BLIF netlist works here; we generate a classic structured one.
  const auto adder = l2l::gen::adder_network(4);
  std::cout << "=== input netlist (" << adder.model_name() << ") ===\n"
            << l2l::network::write_blif(adder) << "\n";

  l2l::flow::FlowOptions opt;
  opt.objective = l2l::techmap::MapObjective::kArea;
  const auto result = l2l::flow::run_flow(adder, opt);

  std::cout << "=== flow report ===\n" << result.report();
  std::cout << "\ncritical path nodes:";
  for (const auto id : result.timing.critical_path)
    std::cout << " " << result.mapped.netlist.node(id).name;
  std::cout << "\n";
  return 0;
}
