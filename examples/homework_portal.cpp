// homework_portal: the §2.2 assignment pipeline -- generate an
// individualized weekly homework for a "student token" (seed), print it,
// then demonstrate the auto-grader on correct and incorrect submissions.
//
// Usage: homework_portal [week=2] [student-token=1234]

#include <cstdlib>
#include <iostream>

#include "homework/quiz.hpp"

int main(int argc, char** argv) {
  const int week = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::uint64_t token = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1234;

  const auto assignment = l2l::homework::weekly_assignment(week, token, 3);
  std::cout << "=== homework for week " << week << ", student token " << token
            << " ===\n\n";
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    const auto& q = assignment[k];
    std::cout << "Q" << k + 1 << " [" << q.topic << "]\n"
              << q.question << "\n\n";
  }

  std::cout << "=== auto-grader demo ===\n";
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    const auto& q = assignment[k];
    const bool right = l2l::homework::grade_answer(q, q.answer);
    const bool wrong = l2l::homework::grade_answer(q, "definitely-wrong");
    std::cout << "Q" << k + 1 << ": correct submission -> "
              << (right ? "ACCEPTED" : "REJECTED")
              << ", wrong submission -> " << (wrong ? "ACCEPTED" : "REJECTED")
              << "  (answer key: " << q.answer << ")\n";
  }
  return 0;
}
