// A tour of the front-end (Weeks 1-4): computational Boolean algebra with
// the URP, canonical BDDs, SAT-based verification, two-level minimization,
// and multi-level factoring -- the course's logic-side story on one screen.

#include <iostream>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cubes/cover.hpp"
#include "cubes/urp.hpp"
#include "espresso/minimize.hpp"
#include "espresso/qm.hpp"
#include "mls/factor.hpp"
#include "mls/script.hpp"
#include "mls/sop.hpp"
#include "network/blif.hpp"
#include "network/equivalence.hpp"

int main() {
  using namespace l2l;

  // ---- Week 1: cubes and the Unate Recursive Paradigm -------------------
  std::cout << "== Week 1: positional cube notation & URP ==\n";
  // f(a,b,c) = ab + b'c + abc' (3 vars; '-' = absent).
  const auto f = cubes::Cover::parse(3, "11-\n-01\n110\n");
  std::cout << "f as cubes:\n" << f.to_string();
  std::cout << "tautology(f) = " << (cubes::is_tautology(f) ? "yes" : "no")
            << "\n";
  const auto fc = cubes::complement(f);
  std::cout << "URP complement has " << fc.size() << " cubes\n";
  std::cout << "f | f' tautology: "
            << (cubes::is_tautology(f | fc) ? "yes" : "no") << "\n\n";

  // ---- Week 2a: BDDs -----------------------------------------------------
  std::cout << "== Week 2: canonical BDDs ==\n";
  bdd::Manager mgr(3);
  const auto a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const auto g1 = (a & b) | ((!b) & c) | (a & b & (!c));
  const auto g2 = (a & b) | ((!b) & c);  // absorbed the redundant term
  std::cout << "g1 == g2 (O(1) canonical compare): "
            << (g1 == g2 ? "EQUAL" : "NOT EQUAL") << "\n";
  std::cout << "satcount(g1) = " << g1.sat_count() << " of 8\n";
  std::cout << "BDD nodes: " << g1.size() << "\n\n";

  // ---- Week 2b: SAT ------------------------------------------------------
  std::cout << "== Week 2: SAT-based equivalence ==\n";
  const auto impl = network::parse_blif(
      ".model impl\n.inputs a b c\n.outputs y\n"
      ".names a b c y\n11- 1\n-01 1\n110 1\n.end\n");
  const auto spec = network::parse_blif(
      ".model spec\n.inputs a b c\n.outputs y\n"
      ".names a b c y\n11- 1\n-01 1\n.end\n");
  const auto eq =
      network::check_equivalence(impl, spec, network::EquivalenceMethod::kSat);
  std::cout << "miter SAT check: " << (eq.equivalent ? "equivalent" : "BUG")
            << "\n\n";

  // ---- Week 3: two-level minimization ------------------------------------
  std::cout << "== Week 3: espresso ==\n";
  espresso::MinimizeStats stats;
  const auto minimized =
      espresso::minimize(f, cubes::Cover(3), {}, &stats);
  std::cout << "espresso: " << stats.initial_cubes << " cubes/"
            << stats.initial_literals << " literals -> " << stats.final_cubes
            << "/" << stats.final_literals << " in " << stats.iterations
            << " iterations\n";
  const auto exact = espresso::exact_minimize(f);
  std::cout << "exact (Quine-McCluskey): " << exact.size() << " cubes\n\n";

  // ---- Week 4: multi-level -----------------------------------------------
  std::cout << "== Week 4: algebraic factoring & the script ==\n";
  auto net = network::parse_blif(
      ".model m\n.inputs a b c d e\n.outputs x y\n"
      ".names a c d x\n11- 1\n1-1 1\n"
      ".names b c d e y\n11-- 1\n1-1- 1\n---1 1\n.end\n");
  const auto xid = *net.find("x");
  const auto sop = mls::sop_of_node(net, xid);
  const auto expr = mls::factor(sop);
  std::cout << "x = " << mls::sop_to_string(net, sop) << "  ->  "
            << mls::expr_to_string(net, expr) << "\n";
  const auto sstats = mls::optimize(net);
  std::cout << "script.algebraic: " << sstats.to_string() << "\n";
  return 0;
}
