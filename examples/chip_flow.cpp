// chip_flow: a larger design through the back end, with the routed layout
// rendered as ASCII art and area-vs-delay mapping compared side by side.

#include <fstream>
#include <iostream>

#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "grader/route_grader.hpp"
#include "route/solution.hpp"
#include "viz/svg.hpp"

int main() {
  using namespace l2l;
  const auto design = gen::adder_network(6);

  std::cout << "design: " << design.model_name() << " ("
            << design.inputs().size() << " inputs, "
            << design.outputs().size() << " outputs)\n\n";

  for (const auto objective :
       {techmap::MapObjective::kArea, techmap::MapObjective::kDelay}) {
    flow::FlowOptions opt;
    opt.objective = objective;
    const auto res = flow::run_flow(design, opt);
    std::cout << "--- objective: "
              << (objective == techmap::MapObjective::kArea ? "min-area"
                                                            : "min-delay")
              << " ---\n"
              << res.report();
    const auto grade = grader::grade_routing(res.routing_problem, res.routing);
    std::cout << "auto-grader: " << grade.legal_nets << "/" << grade.total_nets
              << " nets legal, score " << grade.score << "\n\n";
    if (objective == techmap::MapObjective::kArea) {
      std::cout << "layer 0 (horizontal-preferred) routed layout:\n"
                << route::render_ascii(res.routing_problem, res.routing, 0)
                << "\n";
      // The browser-viewable layout, like the MOOC's HTML5 viewer.
      std::ofstream svg("chip_flow_layout.svg");
      svg << viz::routing_svg(res.routing_problem, res.routing);
      std::ofstream psvg("chip_flow_placement.svg");
      psvg << viz::placement_svg(res.placement_problem, res.grid,
                                 res.placement);
      std::cout << "wrote chip_flow_layout.svg and chip_flow_placement.svg\n\n";
    }
  }
  return 0;
}
