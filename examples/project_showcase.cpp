// project_showcase: the four MOOC software projects (Fig. 5), end to end,
// each graded the way the cloud auto-graders did it.

#include <iostream>

#include "cubes/cover.hpp"
#include "cubes/urp.hpp"
#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "network/blif.hpp"
#include "network/equivalence.hpp"
#include "place/annealing.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "repair/repair.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  util::Rng rng(2013);  // the course year, naturally

  // ---- Project 1: Boolean data structures & computation (URP, PCN) ------
  std::cout << "== Project 1: URP/PCN Boolean engine ==\n";
  const auto f = cubes::Cover::parse(4, "11--\n--11\n1-01\n");
  std::cout << "f has " << f.size() << " cubes, " << f.num_literals()
            << " literals\n";
  std::cout << "tautology: " << (cubes::is_tautology(f) ? "yes" : "no") << "\n";
  const auto fc = cubes::complement(f);
  std::cout << "complement: " << fc.size() << " cubes; f|f' tautology: "
            << (cubes::is_tautology(f | fc) ? "yes" : "no") << "\n";
  std::cout << "df/dx0 cubes: " << cubes::boolean_difference(f, 0).size()
            << "\n\n";

  // ---- Project 2: BDD-based formal network repair ------------------------
  std::cout << "== Project 2: BDD-based network repair ==\n";
  const auto spec = gen::adder_network(2);
  auto broken = network::parse_blif(network::write_blif(spec));
  const auto victim = repair::inject_error(broken, rng);
  std::cout << "injected error at gate '" << broken.node(victim).name << "'\n";
  const auto before =
      network::check_equivalence(broken, spec, network::EquivalenceMethod::kBdd);
  std::cout << "equivalence before repair: "
            << (before.equivalent ? "equivalent (error masked)" : "BROKEN")
            << "\n";
  if (const auto r = repair::repair_network(broken, spec)) {
    std::cout << "repaired gate '" << broken.node(r->node).name << "' ("
              << r->dc_patterns << " don't-care patterns available)\n";
    std::cout << "verified equivalent after repair\n\n";
  } else {
    std::cout << "no single-gate repair found\n\n";
  }

  // ---- Project 3: quadratic placement ------------------------------------
  std::cout << "== Project 3: quadratic placement ==\n";
  gen::PlacementGenOptions popt;
  popt.num_cells = 300;
  const auto prob = gen::generate_placement(popt, rng);
  const place::Grid grid{20, 20, prob.width, prob.height};
  const auto quad = place::place_quadratic(prob);
  const auto legal = place::legalize(prob, quad, grid);
  const double ref_hpwl = place::hpwl(prob, legal.to_continuous(grid));
  std::cout << "quadratic+legalized HPWL: " << ref_hpwl << "\n";
  place::AnnealingOptions aopt;
  aopt.moves_per_cell_per_stage = 6;
  place::AnnealingStats astats;
  const auto annealed = place::anneal(prob, grid, legal, aopt, rng, &astats);
  std::cout << "after annealing: " << astats.final_cost << " ("
            << astats.stages << " stages, "
            << astats.accepted << "/" << astats.moves << " moves accepted)\n";
  const auto pg = grader::grade_placement(prob, grid, annealed, ref_hpwl);
  std::cout << "auto-grader: " << pg.report << "\n";

  // ---- Project 4: maze routing --------------------------------------------
  std::cout << "== Project 4: 2-layer maze routing ==\n";
  gen::RoutingGenOptions ropt;
  ropt.width = 48;
  ropt.height = 48;
  ropt.num_nets = 30;
  ropt.max_pins_per_net = 3;
  const auto rprob = gen::generate_routing(ropt, rng);
  const auto sol = route::route_all(rprob);
  std::cout << "routed " << sol.stats.routed << "/" << rprob.nets.size()
            << " nets, wire " << sol.stats.total_wire << ", vias "
            << sol.stats.total_vias << ", search expansions "
            << sol.stats.expansions << "\n";
  const auto rg = grader::grade_routing(rprob, sol);
  std::cout << "auto-grader score: " << rg.score << "\n";
  return 0;
}
