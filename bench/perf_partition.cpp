// Partitioning benchmarks: FM vs KL quality and runtime, and FM pass
// scaling on MCNC-sized hypergraphs.

#include <benchmark/benchmark.h>

#include "gen/placement_gen.hpp"
#include "partition/fm.hpp"
#include "partition/kl.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

partition::Hypergraph hypergraph(int cells, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::PlacementGenOptions opt;
  opt.num_cells = cells;
  return partition::Hypergraph::from_placement(
      gen::generate_placement(opt, rng));
}

void BM_FmPartition(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const auto g = hypergraph(cells, 77);
  int cut = 0;
  for (auto _ : state) {
    util::Rng rng(5);
    partition::FmStats stats;
    benchmark::DoNotOptimize(partition::fm_partition(g, rng, {}, &stats));
    cut = stats.final_cut;
    state.counters["cut"] = cut;
  }
  (void)cut;
}
BENCHMARK(BM_FmPartition)->Arg(100)->Arg(400)->Arg(1000)->Iterations(1);

void BM_KlPartition(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const auto g = hypergraph(cells, 77);
  int cut = 0;
  for (auto _ : state) {
    util::Rng rng(5);
    const auto start = partition::random_bipartition(g, rng);
    partition::KlStats stats;
    benchmark::DoNotOptimize(partition::kl_refine(g, start, 4, &stats));
    cut = stats.final_cut;
    state.counters["cut"] = cut;
  }
  (void)cut;
  state.SetLabel("KL is the O(n^2) historical baseline");
}
BENCHMARK(BM_KlPartition)->Arg(100)->Arg(200)->Iterations(1);

void BM_FmMultiStart(benchmark::State& state) {
  // Quality ablation: best of k random starts.
  const int starts = static_cast<int>(state.range(0));
  const auto g = hypergraph(300, 78);
  int best_cut = 0;
  for (auto _ : state) {
    best_cut = 1 << 30;
    for (int k = 0; k < starts; ++k) {
      util::Rng rng(static_cast<std::uint64_t>(k));
      partition::FmStats stats;
      partition::fm_partition(g, rng, {}, &stats);
      best_cut = std::min(best_cut, stats.final_cut);
    }
    state.counters["best_cut"] = best_cut;
    benchmark::DoNotOptimize(best_cut);
  }
  (void)best_cut;
}
BENCHMARK(BM_FmMultiStart)->Arg(1)->Arg(4)->Iterations(1);

}  // namespace
