// Multi-level synthesis benchmarks: the algebraic script on random and
// structured networks, kernel extraction scaling, and the SDC-simplify
// ablation.

#include <benchmark/benchmark.h>

#include "gen/function_gen.hpp"
#include "mls/kernels.hpp"
#include "mls/passes.hpp"
#include "mls/script.hpp"
#include "mls/sop.hpp"
#include "network/blif.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

void BM_AlgebraicScript(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool sdc = state.range(1) != 0;
  util::Rng rng(55);
  gen::NetworkGenOptions gopt;
  gopt.num_inputs = 8;
  gopt.num_nodes = nodes;
  gopt.num_outputs = 4;
  const auto base = gen::random_network(gopt, rng);
  int lits_after = 0, lits_before = 0;
  for (auto _ : state) {
    auto net = network::parse_blif(network::write_blif(base));
    mls::ScriptOptions opt;
    opt.use_sdc_simplify = sdc;
    const auto stats = mls::optimize(net, opt);
    lits_before = stats.literals_before;
    lits_after = stats.literals_after;
    state.counters["lits_before"] = lits_before;
    state.counters["lits_after"] = lits_after;
  }
  (void)lits_before;
  (void)lits_after;
  state.SetLabel(sdc ? "with SDC simplify" : "no don't-cares");
}
BENCHMARK(BM_AlgebraicScript)
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({40, 0})
    ->Args({40, 1})
    ->Iterations(1);

void BM_KernelEnumeration(benchmark::State& state) {
  const int terms = static_cast<int>(state.range(0));
  // Dense SOP over 12 literals with shared structure.
  mls::Sop f;
  for (int t = 0; t < terms; ++t) {
    mls::Term term;
    term.push_back(2 * (t % 4));
    term.push_back(2 * (4 + t % 3));
    term.push_back(2 * (7 + t % 5));
    std::sort(term.begin(), term.end());
    term.erase(std::unique(term.begin(), term.end()), term.end());
    f.push_back(std::move(term));
  }
  f = mls::normalized(std::move(f));
  std::size_t kernels = 0;
  for (auto _ : state) {
    kernels = mls::all_kernels(f).size();
    state.counters["kernels"] = static_cast<double>(kernels);
  }
  (void)kernels;
}
BENCHMARK(BM_KernelEnumeration)->Arg(8)->Arg(16)->Arg(32);

void BM_AdderOptimization(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto base = gen::adder_network(bits);
  int lits = 0;
  for (auto _ : state) {
    auto net = network::parse_blif(network::write_blif(base));
    mls::optimize(net);
    lits = net.num_literals();
    state.counters["literals"] = lits;
  }
  (void)lits;
}
BENCHMARK(BM_AdderOptimization)->Arg(4)->Arg(8)->Iterations(1);

}  // namespace
