// Figure 7: placement and routing on larger (MCNC-scale) benchmarks --
// "bigger netlists" for the Extra Credit assignments. Sweeps synthetic
// netlists across the MCNC size range and reports placer and router
// quality, including the random-placement baseline the projects were
// graded against.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/route_grader.hpp"
#include "place/annealing.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "route/router.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  std::printf("=== Figure 7: placement & routing at MCNC scale ===\n\n");

  std::vector<std::vector<std::string>> prows;
  for (const int cells : {100, 250, 500, 1000}) {
    util::Rng rng(42 + static_cast<std::uint64_t>(cells));
    gen::PlacementGenOptions popt;
    popt.num_cells = cells;
    popt.num_pads = 32;
    const auto prob = gen::generate_placement(popt, rng);
    const int side = static_cast<int>(std::ceil(std::sqrt(cells * 1.4)));
    const place::Grid grid{side, side, prob.width, prob.height};

    const auto t0 = std::chrono::steady_clock::now();
    const auto quad = place::place_quadratic(prob);
    const auto legal = place::legalize(prob, quad, grid);
    const auto t1 = std::chrono::steady_clock::now();

    util::Rng r2(7);
    const auto random_gp = place::random_grid_placement(prob, grid, r2);
    const double h_quad = place::hpwl(prob, legal.to_continuous(grid));
    const double h_rand = place::hpwl(prob, random_gp.to_continuous(grid));

    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    prows.push_back({util::format("%d", cells),
                     util::format("%.0f", h_rand),
                     util::format("%.0f", h_quad),
                     util::format("%.2fx", h_rand / h_quad),
                     util::format("%.0f ms", ms)});
  }
  std::printf("placement (recursive quadratic vs random baseline):\n%s\n",
              util::render_table({"cells", "random HPWL", "quadratic HPWL",
                                  "improvement", "runtime"},
                                 prows)
                  .c_str());

  std::vector<std::vector<std::string>> rrows;
  for (const int size : {32, 64, 96}) {
    util::Rng rng(137 + static_cast<std::uint64_t>(size));
    gen::RoutingGenOptions ropt;
    ropt.width = ropt.height = size;
    ropt.num_nets = size;  // density grows with the die
    ropt.max_pins_per_net = 3;
    const auto prob = gen::generate_routing(ropt, rng);

    route::RouterOptions router_opt;
    router_opt.max_negotiation_iterations = 12;  // bounded for the sweep
    const auto t0 = std::chrono::steady_clock::now();
    const auto sol = route::route_all(prob, router_opt);
    const auto t1 = std::chrono::steady_clock::now();
    const auto g = grader::grade_routing(prob, sol);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rrows.push_back({util::format("%dx%dx2", size, size),
                     util::format("%d", static_cast<int>(prob.nets.size())),
                     util::format("%d/%d", g.legal_nets, g.total_nets),
                     util::format("%d", g.total_wirelength),
                     util::format("%d", g.total_vias),
                     util::format("%.0f ms", ms)});
  }
  std::printf("routing (2-layer maze, rip-up & reroute):\n%s",
              util::render_table(
                  {"grid", "nets", "routed", "wire", "vias", "runtime"}, rrows)
                  .c_str());
  return 0;
}
