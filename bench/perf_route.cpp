// Router benchmarks + ablations: A* vs Dijkstra search effort, the
// preferred-direction penalty's effect on vias/quality, via-cost sweeps,
// and multi-thread scaling of the negotiated-congestion router.

#include <benchmark/benchmark.h>

#include "gen/routing_gen.hpp"
#include "route/maze.hpp"
#include "route/router.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

gen::RoutingProblem problem(int size, int nets, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RoutingGenOptions opt;
  opt.width = opt.height = size;
  opt.num_nets = nets;
  opt.max_pins_per_net = 3;
  return gen::generate_routing(opt, rng);
}

void BM_AStarVsDijkstra(benchmark::State& state) {
  const bool astar = state.range(0) != 0;
  const auto p = problem(64, 32, 21);
  long long expansions = 0;
  for (auto _ : state) {
    route::RouterOptions opt;
    opt.costs.use_astar = astar;
    const auto sol = route::route_all(p, opt);
    expansions = sol.stats.expansions;
    state.counters["expansions"] = static_cast<double>(expansions);
  }
  (void)expansions;
  state.SetLabel(astar ? "A* (manhattan lower bound)" : "Dijkstra/Lee");
}
BENCHMARK(BM_AStarVsDijkstra)->Arg(1)->Arg(0)->Iterations(1);

void BM_PreferredDirections(benchmark::State& state) {
  const bool preferred = state.range(0) != 0;
  const auto p = problem(64, 40, 22);
  int vias = 0, routed = 0;
  double wire = 0;
  for (auto _ : state) {
    route::RouterOptions opt;
    opt.costs.preferred_directions = preferred;
    const auto sol = route::route_all(p, opt);
    vias = sol.stats.total_vias;
    wire = sol.stats.total_wire;
    routed = sol.stats.routed;
    state.counters["vias"] = vias;
    state.counters["wire"] = wire;
    state.counters["routed"] = routed;
  }
  (void)routed;
  state.SetLabel(preferred ? "layer-preferred directions" : "isotropic");
}
BENCHMARK(BM_PreferredDirections)->Arg(1)->Arg(0)->Iterations(1);

void BM_ViaCostSweep(benchmark::State& state) {
  const double via_cost = static_cast<double>(state.range(0));
  const auto p = problem(48, 30, 23);
  int vias = 0;
  for (auto _ : state) {
    route::RouterOptions opt;
    opt.costs.via = via_cost;
    const auto sol = route::route_all(p, opt);
    vias = sol.stats.total_vias;
    state.counters["vias"] = vias;
  }
  (void)vias;
}
BENCHMARK(BM_ViaCostSweep)->Arg(1)->Arg(5)->Arg(20)->Iterations(1);

void BM_NegotiatedVsSequential(benchmark::State& state) {
  // The headline router ablation: PathFinder-style negotiation vs plain
  // sequential rip-up on a congested die.
  const bool negotiated = state.range(0) != 0;
  const auto p = problem(48, 40, 25);
  int routed = 0, iterations = 0;
  for (auto _ : state) {
    route::RouterOptions opt;
    opt.negotiated = negotiated;
    const auto sol = route::route_all(p, opt);
    routed = sol.stats.routed;
    iterations = sol.stats.negotiation_iterations;
    state.counters["routed_of_40"] = routed;
    state.counters["iterations"] = iterations;
  }
  (void)routed;
  (void)iterations;
  state.SetLabel(negotiated ? "negotiated congestion" : "sequential rip-up");
}
BENCHMARK(BM_NegotiatedVsSequential)->Arg(1)->Arg(0)->Iterations(1);

void BM_RouteThreadScaling(benchmark::State& state) {
  // The tentpole measurement: negotiated routing on the largest generated
  // die at 1/2/4/8 threads. Wall-clock (real time) is the speedup metric;
  // the routed/wire counters double as a determinism cross-check -- they
  // must not move with the thread count.
  const int threads = static_cast<int>(state.range(0));
  const auto p = problem(128, 160, 27);
  util::set_num_threads(threads);
  int routed = 0;
  double wire = 0;
  for (auto _ : state) {
    const auto sol = route::route_all(p);
    routed = sol.stats.routed;
    wire = sol.stats.total_wire;
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["routed"] = routed;
  state.counters["wire"] = wire;
}
BENCHMARK(BM_RouteThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GridScaling(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  const auto p = problem(size, size / 2, 24);
  for (auto _ : state) {
    const auto sol = route::route_all(p);
    benchmark::DoNotOptimize(sol.stats.routed);
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_GridScaling)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)->Complexity();

}  // namespace
