// Observability layer benchmarks: what a counter bump, a histogram
// observation, and a span cost when metrics are enabled, and -- the
// number DESIGN.md's zero-cost-when-disabled claim rests on -- what they
// cost with L2L_OBS off. Also measures snapshot/export, the sequential
// merge the deterministic contract pays once per report.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace {

using namespace l2l;

void BM_CounterEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  for (auto _ : state) obs::count("bench.counter");
  state.SetItemsProcessed(state.iterations());
  obs::Registry::global().reset();
}
BENCHMARK(BM_CounterEnabled);

void BM_CounterDisabled(benchmark::State& state) {
  // The kill-switch path: one relaxed atomic load, no shard touch.
  obs::set_enabled(false);
  for (auto _ : state) obs::count("bench.counter");
  state.SetItemsProcessed(state.iterations());
  obs::set_enabled(true);
  obs::Registry::global().reset();
}
BENCHMARK(BM_CounterDisabled);

void BM_HistogramEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  std::int64_t v = 0;
  for (auto _ : state) obs::observe("bench.hist", ++v & 1023);
  state.SetItemsProcessed(state.iterations());
  obs::Registry::global().reset();
}
BENCHMARK(BM_HistogramEnabled);

void BM_HistogramDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  std::int64_t v = 0;
  for (auto _ : state) obs::observe("bench.hist", ++v & 1023);
  state.SetItemsProcessed(state.iterations());
  obs::set_enabled(true);
  obs::Registry::global().reset();
}
BENCHMARK(BM_HistogramDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
  obs::set_enabled(true);
  obs::Tracer::global().reset();
}
BENCHMARK(BM_SpanDisabled);

void BM_SnapshotMerge(benchmark::State& state) {
  // Fold `threads` populated shards into one deterministic snapshot.
  const int threads = static_cast<int>(state.range(0));
  obs::set_enabled(true);
  obs::Registry::global().reset();
  util::set_num_threads(threads);
  util::parallel_for(0, 4096, 64, [](std::int64_t i) {
    obs::count("bench.merge." + std::to_string(i % 32));
    obs::observe("bench.merge.hist", i);
  });
  for (auto _ : state) {
    auto snap = obs::Registry::global().snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  obs::Registry::global().reset();
}
BENCHMARK(BM_SnapshotMerge)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DeterministicExport(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  for (int i = 0; i < 64; ++i) {
    obs::count("bench.export." + std::to_string(i), i + 1);
    obs::observe("bench.export.hist", i * i);
  }
  for (auto _ : state) {
    std::string text = obs::Registry::global().export_deterministic_text();
    benchmark::DoNotOptimize(text.data());
  }
  obs::Registry::global().reset();
}
BENCHMARK(BM_DeterministicExport);

}  // namespace
