// Result-cache benchmarks: what a content-addressed hit costs (the
// latency every deduplicated submission pays instead of a grade), digest
// throughput over realistic submission sizes, and the headline workload
// from DESIGN.md "Caching & dedup" -- a 1000-submission queue drain where
// 90% of uploads are duplicates, cold vs warm vs kill-switch. The warm
// drain is the number the ROADMAP's "never compute the same answer
// twice" line rests on.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/digest.hpp"
#include "mooc/grading_queue.hpp"
#include "util/budget.hpp"
#include "util/parallel.hpp"

namespace {

using namespace l2l;

void BM_DigestThroughput(benchmark::State& state) {
  const std::string text(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto d = cache::digest_bytes(text);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_DigestThroughput)->Range(64, 1 << 16);

void BM_CacheHitLatency(benchmark::State& state) {
  cache::Cache c;
  const cache::CacheKey key{"bench", cache::digest_bytes("submission"),
                            cache::digest_bytes("config")};
  c.insert(key, std::string(256, 'r'));
  for (auto _ : state) {
    auto hit = c.lookup(key);
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitLatency);

void BM_CacheMissLatency(benchmark::State& state) {
  cache::Cache c;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    cache::Hasher h;
    h.u64(++salt);
    const cache::CacheKey key{"bench", h.finish(), cache::Digest128{}};
    auto miss = c.lookup(key);
    benchmark::DoNotOptimize(miss);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissLatency);

// ---- the 90%-duplicates queue drain -------------------------------------

/// 1000 submissions, 100 unique (every upload repeated 10x) -- the shape
/// of a cohort resubmitting around a deadline. Each body is a few hundred
/// bytes so digesting is realistic, not free.
std::vector<std::string> duplicate_heavy_corpus() {
  std::vector<std::string> subs;
  subs.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    subs.push_back("solution variant " + std::to_string(i % 100) + "\n" +
                   std::string(300, static_cast<char>('a' + i % 26)));
  return subs;
}

/// A deliberately non-trivial grade: re-digests the submission 64 times,
/// standing in for a real grader's parse+verify pass. Deterministic, so
/// the cache may replay it.
double slow_grade(const std::string& s, const util::Budget&) {
  cache::Digest128 d = cache::digest_bytes(s);
  for (int r = 0; r < 64; ++r) {
    cache::Hasher h;
    h.u64(d.hi).u64(d.lo).str(s);
    d = h.finish();
  }
  return static_cast<double>(d.lo % 101);
}

void BM_QueueDrainColdCache(benchmark::State& state) {
  const auto subs = duplicate_heavy_corpus();
  mooc::QueueOptions qopt;
  qopt.cache_domain = "bench.queue";
  for (auto _ : state) {
    cache::Cache::global().clear();  // every drain starts cold
    auto res = mooc::drain_queue(subs, slow_grade, qopt);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(subs.size()));
  cache::Cache::global().clear();
}
BENCHMARK(BM_QueueDrainColdCache)->Unit(benchmark::kMillisecond);

void BM_QueueDrainWarmCache(benchmark::State& state) {
  const auto subs = duplicate_heavy_corpus();
  mooc::QueueOptions qopt;
  qopt.cache_domain = "bench.queue";
  cache::Cache::global().clear();
  {
    auto prefill = mooc::drain_queue(subs, slow_grade, qopt);
    benchmark::DoNotOptimize(prefill);
  }
  for (auto _ : state) {
    auto res = mooc::drain_queue(subs, slow_grade, qopt);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(subs.size()));
  cache::Cache::global().clear();
}
BENCHMARK(BM_QueueDrainWarmCache)->Unit(benchmark::kMillisecond);

void BM_QueueDrainKillSwitch(benchmark::State& state) {
  // L2L_CACHE=0 equivalent: the verbatim grade-everything path, the
  // baseline both cached drains are measured against.
  const auto subs = duplicate_heavy_corpus();
  mooc::QueueOptions qopt;
  qopt.cache_domain = "bench.queue";
  cache::set_enabled(false);
  for (auto _ : state) {
    auto res = mooc::drain_queue(subs, slow_grade, qopt);
    benchmark::DoNotOptimize(res);
  }
  cache::set_enabled(true);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(subs.size()));
}
BENCHMARK(BM_QueueDrainKillSwitch)->Unit(benchmark::kMillisecond);

}  // namespace
