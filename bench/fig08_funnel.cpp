// Figure 8: the MOOC participation "funnel". Prints the paper's published
// counts next to the cohort simulator's, with relative errors, plus the
// derived stage-to-stage survival rates the paper quotes ("about 1/2 ...
// never show up", "around 1/5 of those who watched tried a homework").

#include <cstdio>

#include "mooc/cohort.hpp"
#include "mooc/datasets.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  util::Rng rng(17500);
  const auto sim = mooc::simulate_cohort({}, rng);
  const auto& ref = mooc::participation_funnel();

  std::printf("=== Figure 8: participation funnel ===\n\n");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    rows.push_back({ref[k].name, util::format("%d", ref[k].count),
                    util::format("%d", sim.funnel[k]),
                    util::format("%.1f%%",
                                 100.0 * mooc::relative_error(
                                             sim.funnel[k], ref[k].count))});
  }
  std::printf("%s\n",
              util::render_table({"stage", "paper", "simulated", "rel err"},
                                 rows)
                  .c_str());

  std::printf("derived rates (paper's round numbers in quotes):\n");
  auto rate = [&](int a, int b) {
    return util::format("%.1f%%", 100.0 * sim.funnel[static_cast<std::size_t>(b)] /
                                      static_cast<double>(sim.funnel[static_cast<std::size_t>(a)]));
  };
  std::printf("%s",
              util::render_table(
                  {"transition", "paper", "simulated"},
                  {{"registered -> watched", "\"about 1/2 never show\"",
                    rate(0, 1)},
                   {"watched -> homework", "\"around 1/5\"", rate(1, 2)},
                   {"homework -> software", "\"about 1/4\"", rate(2, 3)},
                   {"homework -> final", "\"about 40%\"", rate(2, 4)}})
                  .c_str());

  std::printf("\nfunnel bars (simulated):\n");
  std::vector<util::BarDatum> bars;
  for (std::size_t k = 0; k < ref.size(); ++k)
    bars.push_back({ref[k].name, static_cast<double>(sim.funnel[k])});
  util::BarChartOptions opt;
  opt.width = 50;
  std::printf("%s", util::render_bar_chart(bars, opt).c_str());
  return 0;
}
