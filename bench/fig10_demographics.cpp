// Figure 10 / §4: participation demographics -- by-country shares (US and
// India lead; Brazil and Egypt called out), age and gender statistics.

#include <cstdio>

#include "mooc/cohort.hpp"
#include "mooc/datasets.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  util::Rng rng(1000);
  const auto sim = mooc::simulate_cohort({}, rng);
  const auto demo = mooc::demographics();

  std::printf("=== Figure 10: participation by country ===\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& ref : mooc::participation_by_country()) {
    double simulated = 0;
    for (const auto& [c, pct] : sim.by_country)
      if (c == ref.country) simulated = pct;
    rows.push_back({ref.country, util::format("%.1f%%", ref.percent),
                    util::format("%.1f%%", simulated)});
  }
  std::printf("%s\n",
              util::render_table({"country", "paper", "simulated"}, rows).c_str());

  int min_age = 200, max_age = 0;
  for (const auto& p : sim.people) {
    min_age = std::min(min_age, p.age);
    max_age = std::max(max_age, p.age);
  }
  std::printf("=== §4 demographics ===\n%s",
              util::render_table(
                  {"metric", "paper", "simulated"},
                  {{"average age", "30", util::format("%.1f", sim.average_age)},
                   {"min age", "15", util::format("%d", min_age)},
                   {"max age", "75", util::format("%d", max_age)},
                   {"female", "12%",
                    util::format("%.1f%%", sim.female_percent)},
                   {"male", "88%",
                    util::format("%.1f%%", 100.0 - sim.female_percent)},
                   {"bachelor's degree", "30%", "30% (sampled from paper)"},
                   {"MS/PhD", "29%", "29% (sampled from paper)"}})
                  .c_str());
  (void)demo;
  return 0;
}
