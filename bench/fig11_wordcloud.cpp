// Figure 11: the survey word cloud of requested additional topics. Runs
// the full mining pipeline -- synthesize free-text responses from the
// published weights, tokenize, stop-word filter, count, render -- and
// verifies the counts recover the published weights.

#include <cstdio>

#include "mooc/datasets.hpp"
#include "mooc/wordcloud.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/strings.hpp"

int main() {
  using namespace l2l;
  const auto responses = mooc::synthesize_survey_responses(2013);
  std::printf("=== Figure 11: survey word cloud ===\n\n");
  std::printf("mined %d survey responses\n\n",
              static_cast<int>(responses.size()));

  const auto counts = mooc::count_words(responses);
  std::printf("%s\n", mooc::render_word_cloud(counts, 24).c_str());

  std::printf("top requested topics (mined vs published weight):\n");
  std::vector<std::vector<std::string>> rows;
  int matched = 0;
  for (const auto& w : mooc::survey_topics()) {
    int mined = 0;
    for (const auto& [word, n] : counts)
      if (word == util::to_lower(w.word)) mined = n;
    if (rows.size() < 12)
      rows.push_back({w.word, util::format("%d", w.weight),
                      util::format("%d", mined)});
    matched += mined == w.weight;
  }
  std::printf("%s\n", util::render_table({"topic", "paper", "mined"}, rows).c_str());
  std::printf("%d/%d published weights recovered exactly\n", matched,
              static_cast<int>(mooc::survey_topics().size()));
  return 0;
}
