// Figure 9: viewers per lecture video (1..69), with the paper's landmark
// callouts: ~7000 intro viewers ("roughly the employees of the largest EDA
// vendors"), ~5000 mid-course ("roughly DAC'13 attendance"), ~2000 watched
// everything ("40 years of the on-campus course").

#include <cstdio>

#include "mooc/cohort.hpp"
#include "mooc/datasets.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  util::Rng rng(69);
  const auto sim = mooc::simulate_cohort({}, rng);
  const auto& ref = mooc::viewers_per_video();

  std::printf("=== Figure 9: viewers per lecture video ===\n\n");
  std::vector<util::BarDatum> bars;
  for (std::size_t v = 0; v < sim.viewers_per_video.size(); ++v) {
    if (v % 4 != 0 && v + 1 != sim.viewers_per_video.size()) continue;
    bars.push_back({util::format("video %2d", static_cast<int>(v + 1)),
                    static_cast<double>(sim.viewers_per_video[v])});
  }
  util::BarChartOptions opt;
  opt.width = 45;
  opt.value_suffix = " viewers";
  std::printf("%s\n", util::render_bar_chart(bars, opt).c_str());

  std::printf("landmarks (paper vs simulated):\n%s",
              util::render_table(
                  {"landmark", "paper", "simulated"},
                  {{"intro video viewers (~EDA-vendor headcount)", "~7000",
                    util::format("%d", sim.viewers_per_video.front())},
                   {"mid-course viewers (~DAC'13 attendance)", "~5000",
                    util::format("%d", sim.viewers_per_video[17])},
                   {"watched all 69 (~40 on-campus years)", "~2000",
                    util::format("%d", sim.viewers_per_video.back())}})
                  .c_str());

  double max_err = 0;
  for (std::size_t v = 0; v < ref.size(); ++v)
    max_err = std::max(max_err, mooc::relative_error(sim.viewers_per_video[v],
                                                     ref[v]));
  std::printf("\nmax relative error vs published curve: %.1f%%\n",
              100.0 * max_err);
  return 0;
}
