// Figure 5: the four software design projects, run end to end with their
// auto-graders -- "two logic and two layout tasks".

#include <cstdio>

#include "cubes/cover.hpp"
#include "cubes/urp.hpp"
#include "gen/function_gen.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"
#include "network/blif.hpp"
#include "network/equivalence.hpp"
#include "place/annealing.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "repair/repair.hpp"
#include "route/router.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

int main() {
  using namespace l2l;
  util::Rng rng(2013);
  std::vector<std::vector<std::string>> rows;

  // Project 1: URP/PCN Boolean computation, validated against the oracle.
  {
    int checks = 0, passed = 0;
    for (int trial = 0; trial < 50; ++trial) {
      const auto f = gen::random_cover(5, 1 + static_cast<int>(rng.next_below(6)), rng);
      const auto fc = cubes::complement(f);
      ++checks;
      if ((f & fc).to_truth_table().is_constant_zero() &&
          cubes::is_tautology(f | fc))
        ++passed;
    }
    rows.push_back({"1. Boolean data structures (URP/PCN)",
                    util::format("%d/%d complement identities verified",
                                 passed, checks)});
  }

  // Project 2: BDD-based network repair on corrupted adders.
  {
    int fixed = 0, broken = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto spec = gen::adder_network(2);
      auto impl = network::parse_blif(network::write_blif(spec));
      repair::inject_error(impl, rng);
      if (network::check_equivalence(impl, spec,
                                     network::EquivalenceMethod::kBdd)
              .equivalent)
        continue;  // error masked
      ++broken;
      if (repair::repair_network(impl, spec)) ++fixed;
    }
    rows.push_back({"2. BDD-based network repair",
                    util::format("%d/%d corrupted designs repaired & verified",
                                 fixed, broken)});
  }

  // Project 3: quadratic placement, graded.
  {
    gen::PlacementGenOptions popt;
    popt.num_cells = 400;
    const auto prob = gen::generate_placement(popt, rng);
    const place::Grid grid{23, 23, prob.width, prob.height};
    const auto gp = place::legalize(prob, place::place_quadratic(prob), grid);
    util::Rng r2(1);
    const auto random_gp = place::random_grid_placement(prob, grid, r2);
    const double hq = place::hpwl(prob, gp.to_continuous(grid));
    const double hr = place::hpwl(prob, random_gp.to_continuous(grid));
    const auto g = grader::grade_placement(prob, grid, gp, hq);
    rows.push_back({"3. Quadratic placement",
                    util::format("legal=%s, HPWL %.0f (random start %.0f, "
                                 "%.1fx better), score %.0f",
                                 g.legal ? "yes" : "no", hq, hr, hr / hq,
                                 g.score)});
  }

  // Project 4: maze routing, graded.
  {
    gen::RoutingGenOptions ropt;
    ropt.width = 64;
    ropt.height = 64;
    ropt.num_nets = 40;
    ropt.max_pins_per_net = 3;
    const auto prob = gen::generate_routing(ropt, rng);
    const auto sol = route::route_all(prob);
    const auto g = grader::grade_routing(prob, sol);
    rows.push_back({"4. Maze routing",
                    util::format("%d/%d nets legal, wire %d, vias %d, score %.0f",
                                 g.legal_nets, g.total_nets,
                                 g.total_wirelength, g.total_vias, g.score)});
  }

  std::printf("=== Figure 5: the four software design projects ===\n\n%s",
              util::render_table({"project", "result"}, rows).c_str());
  return 0;
}
