// Exact-ESOP synthesis benchmarks: the structured-instance SAT workload
// the eighth engine adds. Parity is the classic hard case (minimum ESOP
// of x1^...^xn is exactly n, and the UNSAT proof at n-1 is where the
// conflicts are); the random covers mirror the differential sweep's
// distribution; the facade pair measures the result-cache hit path the
// portal serves on duplicate submissions.
//
// Recorded as BENCH_esop.{seed.,}json by tools/run_benches.sh (see
// EXPERIMENTS.md "Exact ESOP synthesis").

#include <benchmark/benchmark.h>

#include <string>

#include "api/esop.hpp"
#include "cache/cache.hpp"
#include "esop/esop.hpp"
#include "gen/function_gen.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using l2l::tt::TruthTable;

TruthTable parity(int n) {
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m)
    f.set(m, __builtin_popcountll(m) % 2 == 1);
  return f;
}

/// Minimum-ESOP of the n-variable parity: gallop to n, prove UNSAT at
/// n-1. The proof cost grows steeply with n -- this is the engine's
/// conflict-heavy regime.
void BM_EsopParity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TruthTable f = parity(n);
  std::int64_t terms = 0;
  for (auto _ : state) {
    const auto r = l2l::esop::synthesize_minimum(f);
    terms = r.terms;
    benchmark::DoNotOptimize(r.cover);
  }
  state.counters["terms"] = static_cast<double>(terms);
}
BENCHMARK(BM_EsopParity)->DenseRange(2, 5);

/// Random covers at the differential sweep's sizes: the typical-case
/// latency a grader sees per submission.
void BM_EsopRandomCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  l2l::util::Rng rng(0xe50bull * 1000003ull + static_cast<std::uint64_t>(n));
  const auto cover = l2l::gen::random_cover(n, 5, rng);
  const TruthTable f = cover.to_truth_table();
  for (auto _ : state) {
    const auto r = l2l::esop::synthesize_minimum(f);
    benchmark::DoNotOptimize(r.terms);
  }
}
BENCHMARK(BM_EsopRandomCover)->DenseRange(3, 6);

/// The incremental win: one minimal answer needs several SAT queries
/// (gallop + binary search); this isolates the per-query overhead on a
/// function whose minimum is mid-bracket.
void BM_EsopQuerySchedule(benchmark::State& state) {
  // x0*x1 ^ x2 ^ x3: minimum 3 over 4 vars; gallop 1,2 UNSAT then 4 SAT,
  // then binary search settles 3.
  TruthTable f(4);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
    const bool t = ((m & 3) == 3);
    f.set(m, t ^ (((m >> 2) & 1) != 0) ^ (((m >> 3) & 1) != 0));
  }
  for (auto _ : state) {
    const auto r = l2l::esop::synthesize_minimum(f);
    benchmark::DoNotOptimize(r.stats.queries_sat);
  }
}
BENCHMARK(BM_EsopQuerySchedule);

/// Facade cold vs warm: the second identical request replays from the
/// result cache (engine id "esop") -- the portal's duplicate-submission
/// path.
void BM_EsopFacadeWarmCache(benchmark::State& state) {
  l2l::cache::Cache::global().clear();
  l2l::cache::set_enabled(true);
  l2l::api::EsopRequest req;
  req.input = ".i 4\n.o 1\n1100 1\n0011 1\n1-1- 1\n.e\n";
  req.show_stats = true;
  (void)l2l::api::synthesize_esop(req);  // prime
  for (auto _ : state) {
    const auto res = l2l::api::synthesize_esop(req);
    benchmark::DoNotOptimize(res.output);
  }
  l2l::cache::Cache::global().clear();
}
BENCHMARK(BM_EsopFacadeWarmCache);

}  // namespace
