// Figure 2: week-by-week video lecture content. Reproduces the per-video
// minutes series (69 videos) and the paper's aggregates: average 15
// minutes per video, 17 total hours across 8 topic weeks plus tutorials.

#include <cstdio>
#include <map>

#include "mooc/datasets.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

int main() {
  using namespace l2l;
  const auto& videos = mooc::lecture_videos();

  std::printf("=== Figure 2: 69 lecture videos, minutes per video ===\n\n");
  std::vector<util::BarDatum> bars;
  for (const auto& v : videos)
    bars.push_back({v.id, v.minutes});
  util::BarChartOptions opt;
  opt.width = 30;
  opt.value_suffix = " min";
  std::printf("%s\n", util::render_bar_chart(bars, opt).c_str());

  double total = 0;
  std::map<int, std::pair<std::string, int>> weeks;
  for (const auto& v : videos) {
    total += v.minutes;
    weeks[v.week].first = v.topic;
    weeks[v.week].second++;
  }
  std::printf("week breakdown:\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [w, info] : weeks)
    rows.push_back({util::format("%d", w), info.first,
                    util::format("%d", info.second)});
  std::printf("%s\n", util::render_table({"week", "topic", "videos"}, rows).c_str());

  std::printf("paper vs reproduction:\n%s",
              util::render_table(
                  {"metric", "paper", "repro"},
                  {{"total videos", "69", util::format("%d", static_cast<int>(videos.size()))},
                   {"average minutes", "15", util::format("%.2f", total / videos.size())},
                   {"total hours", "17", util::format("%.2f", total / 60.0)}})
                  .c_str());
  return 0;
}
