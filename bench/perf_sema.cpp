// Semantic-analyzer benchmarks: the N/C/P passes on growing artifacts,
// the hostile guard (a 10k-gate SCC ring must diagnose in milliseconds,
// stack-safe), and analyze_files scaling across the worker pool -- the
// numbers that justify running sema ahead of every grade, the same
// position perf_lint argues for the textual layer.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "sema/sema.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

// A well-formed chain-of-ANDs BLIF with `blocks` logic nodes: acyclic,
// fully live, no constants -- the zero-findings fast path.
std::string synthetic_blif(int blocks) {
  std::string s = ".model chain\n.inputs x0 x1\n.outputs y\n";
  for (int i = 0; i < blocks; ++i) {
    const std::string in = i == 0 ? "x0" : "n" + std::to_string(i - 1);
    const std::string out =
        i + 1 == blocks ? "y" : "n" + std::to_string(i);
    s += ".names " + in + " x1 " + out + "\n11 1\n";
  }
  s += ".end\n";
  return s;
}

// A single `gates`-long combinational ring: one SCC covering the whole
// file, the worst case for the iterative Tarjan walk.
std::string synthetic_ring(int gates) {
  std::string s = ".model ring\n.inputs x\n.outputs y\n";
  for (int i = 0; i < gates; ++i)
    s += ".names n" + std::to_string((i + 1) % gates) + " n" +
         std::to_string(i) + "\n1 1\n";
  s += ".names n0 y\n1 1\n.end\n";
  return s;
}

// A satisfiable-looking random 3-CNF with `clauses` clauses.
std::string synthetic_cnf(int vars, int clauses, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string s =
      "p cnf " + std::to_string(vars) + " " + std::to_string(clauses) + "\n";
  for (int c = 0; c < clauses; ++c) {
    for (int k = 0; k < 3; ++k) {
      const int v = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint32_t>(vars)));
      s += std::to_string(rng.next_below(2) ? v : -v) + " ";
    }
    s += "0\n";
  }
  return s;
}

// A random multi-output PLA with `rows` cube rows.
std::string synthetic_pla(int inputs, int outputs, int rows,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::string s = ".i " + std::to_string(inputs) + "\n.o " +
                  std::to_string(outputs) + "\n";
  const char in_chars[3] = {'0', '1', '-'};
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < inputs; ++i) s += in_chars[rng.next_below(3)];
    s += ' ';
    for (int o = 0; o < outputs; ++o) s += rng.next_below(4) == 0 ? '1' : '0';
    s += '\n';
  }
  s += ".e\n";
  return s;
}

void BM_SemaBlifPass(benchmark::State& state) {
  const auto text = synthetic_blif(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto analysis = sema::analyze_blif(text);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SemaBlifPass)->Arg(64)->Arg(512)->Arg(4096);

// The diagnose-never-crash guard: the whole netlist is one SCC. Cost must
// stay linear in the gate count and the walk must not recurse (the 10k
// ring in the hostile corpus is this shape).
void BM_SemaSccRing(benchmark::State& state) {
  const auto text = synthetic_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto analysis = sema::analyze_blif(text);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SemaSccRing)->Arg(1000)->Arg(10000);

void BM_SemaCnfPass(benchmark::State& state) {
  const auto text =
      synthetic_cnf(200, static_cast<int>(state.range(0)), 2026);
  for (auto _ : state) {
    auto findings = sema::analyze_cnf(text);
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SemaCnfPass)->Arg(256)->Arg(2048)->Arg(16384);

void BM_SemaPlaPass(benchmark::State& state) {
  const auto text =
      synthetic_pla(16, 4, static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto findings = sema::analyze_pla(text);
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SemaPlaPass)->Arg(64)->Arg(512)->Arg(2048);

// Hostile headers: astronomical declared sizes must analyze in time
// proportional to the bytes present (same promise as the lint packs).
void BM_SemaHostileHeaders(benchmark::State& state) {
  const std::vector<std::pair<std::string, std::string>> hostile = {
      {"huge.cnf", "p cnf 2000000000 2000000000\n1 2 0\n"},
      {"huge.pla", ".i 1000000\n.o 1000000\n.p 2000000000\n"},
      {"huge.blif", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"},
  };
  for (auto _ : state) {
    auto report = sema::analyze_files(hostile);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SemaHostileHeaders);

// Batch analysis across the pool: Arg is the thread count; the batch is
// one submission-sized artifact per simulated student.
void BM_SemaFilesScaling(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.emplace_back("hw" + std::to_string(i) + ".blif",
                       synthetic_blif(256));
    batch.emplace_back("hw" + std::to_string(i) + ".cnf",
                       synthetic_cnf(100, 512, 100 + i));
  }
  util::set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = sema::analyze_files(batch);
    benchmark::DoNotOptimize(report);
  }
  util::set_num_threads(0);
  state.counters["files"] = static_cast<double>(batch.size());
}
BENCHMARK(BM_SemaFilesScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
