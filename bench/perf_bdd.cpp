// BDD package microbenchmarks + the variable-order ablation the Week-2
// lectures dramatize: a comparator's BDD under blocked vs. interleaved
// orders, and sifting's ability to recover the good order.

#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "bdd/reorder.hpp"
#include "gen/function_gen.hpp"
#include "network/bdd_build.hpp"

namespace {

using namespace l2l;

void BM_BuildAdderBdds(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto net = gen::adder_network(bits);
  for (auto _ : state) {
    bdd::Manager mgr(static_cast<int>(net.inputs().size()));
    auto bdds = network::build_bdds(net, mgr);
    benchmark::DoNotOptimize(bdds.outputs.front().size());
  }
  state.SetLabel("ripple-carry adder outputs");
}
BENCHMARK(BM_BuildAdderBdds)->Arg(4)->Arg(8)->Arg(12);

void BM_ComparatorOrder(benchmark::State& state) {
  // Blocked order a0..an-1 b0..bn-1 is exponential; measure node count.
  const int bits = static_cast<int>(state.range(0));
  const bool interleave = state.range(1) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    bdd::Manager mgr(2 * bits);
    bdd::Bdd f = mgr.one();
    for (int i = 0; i < bits; ++i) {
      const int a = interleave ? 2 * i : i;
      const int b = interleave ? 2 * i + 1 : bits + i;
      f = f & !(mgr.var(a) ^ mgr.var(b));
    }
    nodes = f.size();
    state.counters["bdd_nodes"] = static_cast<double>(nodes);
  }
  (void)nodes;
  state.SetLabel(interleave ? "interleaved order (linear)"
                            : "blocked order (exponential)");
}
BENCHMARK(BM_ComparatorOrder)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({12, 0})
    ->Args({12, 1});

void BM_SiftComparator(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  std::size_t before = 0, after = 0;
  for (auto _ : state) {
    bdd::Manager mgr(2 * bits);
    bdd::Bdd f = mgr.one();
    for (int i = 0; i < bits; ++i)
      f = f & !(mgr.var(i) ^ mgr.var(bits + i));
    const auto res = bdd::sift({f});
    before = res.size_before;
    after = res.size_after;
    state.counters["nodes_before"] = static_cast<double>(before);
    state.counters["nodes_after"] = static_cast<double>(after);
  }
  (void)before;
  (void)after;
}
BENCHMARK(BM_SiftComparator)->Arg(5)->Arg(7)->Iterations(1);

void BM_IteThroughput(benchmark::State& state) {
  // Repeated ANDs over a parity basis: exercises ITE + computed table.
  const int n = static_cast<int>(state.range(0));
  bdd::Manager mgr(n);
  std::vector<bdd::Bdd> basis;
  for (int i = 0; i < n; ++i) basis.push_back(mgr.var(i));
  for (auto _ : state) {
    bdd::Bdd acc = mgr.zero();
    for (int i = 0; i < n; ++i) acc = acc ^ basis[static_cast<std::size_t>(i)];
    for (int i = 0; i + 1 < n; ++i)
      acc = acc | (basis[static_cast<std::size_t>(i)] & basis[static_cast<std::size_t>(i + 1)]);
    benchmark::DoNotOptimize(acc.sat_count());
  }
}
BENCHMARK(BM_IteThroughput)->Arg(12)->Arg(18);

void BM_GarbageCollection(benchmark::State& state) {
  for (auto _ : state) {
    bdd::Manager mgr(16);
    for (int round = 0; round < 20; ++round) {
      bdd::Bdd f = mgr.one();
      for (int i = 0; i < 16; ++i) f = f & (mgr.var(i) ^ mgr.var((i + 5) % 16));
    }  // all dead now
    mgr.garbage_collect();
    benchmark::DoNotOptimize(mgr.num_live_nodes());
  }
}
BENCHMARK(BM_GarbageCollection);

}  // namespace
