// Figure 4: the tool-portal architecture. Exercises each of the five
// cloud-deployed tools through the same text-in/text-out contract the
// portals used: kbdd (BDD calculator), miniSAT (DIMACS), Espresso (PLA),
// SIS (multi-level scripting), and Ax=b (linear systems).

#include <cstdio>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "espresso/minimize.hpp"
#include "espresso/pla.hpp"
#include "linalg/dense.hpp"
#include "mls/script.hpp"
#include "network/blif.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/strings.hpp"

int main() {
  using namespace l2l;
  std::printf("=== Figure 4: five tool portals, text in -> text out ===\n\n");

  // kbdd: canonical comparison of two formulas.
  {
    bdd::Manager mgr(3);
    const auto a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
    const auto f = (a & b) | c;
    const auto g = !((!a | !b) & !c);  // De Morgan'd form
    std::printf("[kbdd]     (a&b)|c vs !((!a|!b)&!c): %s, satcount %llu/8\n",
                f == g ? "EQUAL" : "NOT EQUAL",
                static_cast<unsigned long long>(f.sat_count()));
  }

  // miniSAT: DIMACS text round trip.
  {
    const char* dimacs = "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
    const auto formula = sat::parse_dimacs(dimacs);
    sat::Solver solver;
    sat::load_into_solver(formula, solver);
    const auto result = solver.solve();
    std::printf("[miniSAT]  3-var instance: %s",
                sat::result_text(solver, result).c_str());
  }

  // Espresso: PLA text round trip.
  {
    const char* pla_text =
        ".i 3\n.o 1\n000 1\n001 1\n010 1\n011 1\n101 1\n.e\n";
    auto pla = espresso::parse_pla(pla_text);
    const int before = pla.outputs[0].on.size();
    pla.outputs[0].on = espresso::minimize(pla.outputs[0].on);
    std::printf("[espresso] %d cubes -> %d cubes\n", before,
                pla.outputs[0].on.size());
  }

  // SIS: BLIF in, optimized BLIF out.
  {
    auto net = network::parse_blif(
        ".model portal\n.inputs a b c d\n.outputs x y\n"
        ".names a c d x\n11- 1\n1-1 1\n"
        ".names b c d y\n11- 1\n1-1 1\n.end\n");
    const auto stats = mls::optimize(net);
    std::printf("[SIS]      %s\n", stats.to_string().c_str());
  }

  // Ax=b: the quadratic-placement homework helper.
  {
    linalg::DenseMatrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = -1;
    a.at(1, 0) = -1;
    a.at(1, 1) = 2;
    const auto x = linalg::solve_gauss(a, {0.0, 10.0});
    std::printf("[Ax=b]     2-cell placement system: x = (%.3f, %.3f)\n",
                (*x)[0], (*x)[1]);
  }

  std::printf("\nall five portals answered (auto-graders share the same "
              "text contract; see fig05/fig06)\n");
  return 0;
}
