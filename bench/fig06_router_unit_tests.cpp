// Figure 6: unit-test examples for the auto-graded maze-router project --
// short wires in one layer, short vertical/horizontal segments, wires with
// a few bends, wires around obstacles, vias, etc. Each case is routed and
// then judged by the auto-grader, exactly the MOOC's regression scheme.

#include <cstdio>

#include "grader/route_grader.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

namespace {

using l2l::gen::GridPoint;
using l2l::gen::RoutingProblem;

RoutingProblem grid12() {
  RoutingProblem p;
  p.width = p.height = 12;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(144, false));
  return p;
}

}  // namespace

int main() {
  using namespace l2l;

  struct Case {
    const char* name;
    RoutingProblem problem;
  };
  std::vector<Case> cases;

  {
    auto p = grid12();
    p.nets.push_back({0, {{1, 1, 0}, {5, 1, 0}}});
    cases.push_back({"short wire, one layer (horizontal)", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{2, 1, 0}, {2, 7, 0}}});
    cases.push_back({"short vertical segment", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{1, 10, 0}, {10, 1, 0}}});
    cases.push_back({"wire with a few bends", std::move(p)});
  }
  {
    auto p = grid12();
    for (int y = 0; y < 11; ++y) p.blocked[0][static_cast<std::size_t>(y) * 12 + 6] = true;
    p.nets.push_back({0, {{1, 1, 0}, {10, 1, 0}}});
    cases.push_back({"wire around an obstacle", std::move(p)});
  }
  {
    auto p = grid12();
    for (int y = 0; y < 12; ++y) p.blocked[0][static_cast<std::size_t>(y) * 12 + 6] = true;
    p.nets.push_back({0, {{1, 1, 0}, {10, 1, 0}}});
    cases.push_back({"full wall: must use vias + layer 2", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{1, 1, 0}, {10, 10, 1}}});
    cases.push_back({"cross-layer pin pair", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{1, 1, 0}, {10, 1, 0}, {5, 10, 0}}});
    cases.push_back({"3-pin net (Steiner tree)", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{0, 0, 0}, {11, 0, 0}}});
    p.nets.push_back({1, {{0, 2, 0}, {11, 2, 0}}});
    p.nets.push_back({2, {{0, 1, 0}, {11, 1, 0}}});
    cases.push_back({"three parallel nets, no overlap", std::move(p)});
  }
  {
    auto p = grid12();
    // Crossing pair: must resolve with the second layer.
    p.nets.push_back({0, {{0, 5, 0}, {11, 5, 0}}});
    p.nets.push_back({1, {{5, 0, 0}, {5, 11, 0}}});
    cases.push_back({"crossing nets (layer assignment)", std::move(p)});
  }
  {
    auto p = grid12();
    p.nets.push_back({0, {{3, 3, 0}, {3, 4, 0}}});
    cases.push_back({"adjacent pins", std::move(p)});
  }

  std::printf("=== Figure 6: maze-router unit tests (auto-graded) ===\n\n");
  std::vector<std::vector<std::string>> rows;
  int passed = 0;
  for (auto& c : cases) {
    const auto sol = route::route_all(c.problem);
    const auto g = grader::grade_routing(c.problem, sol);
    const bool ok = g.legal_nets == g.total_nets;
    passed += ok;
    rows.push_back({c.name, ok ? "PASS" : "FAIL",
                    util::format("wire %d, vias %d", g.total_wirelength,
                                 g.total_vias)});
  }
  std::printf("%s\n", util::render_table({"unit test", "grade", "metrics"}, rows).c_str());
  std::printf("%d/%d unit tests pass\n", passed,
              static_cast<int>(cases.size()));
  return passed == static_cast<int>(cases.size()) ? 0 : 1;
}
