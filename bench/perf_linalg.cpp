// Ax=b benchmarks: CG scaling on placement-like Laplacians, dense
// baselines, and the Jacobi-preconditioner ablation.

#include <benchmark/benchmark.h>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

linalg::SparseMatrix laplacian_2d(int side) {
  const int n = side * side;
  linalg::SparseMatrix a(n);
  auto idx = [&](int x, int y) { return y * side + x; };
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      double deg = 0.05;  // weak anchor (like the placer's regularization)
      if (x > 0) {
        a.add(idx(x, y), idx(x - 1, y), -1.0);
        deg += 1;
      }
      if (x + 1 < side) {
        a.add(idx(x, y), idx(x + 1, y), -1.0);
        deg += 1;
      }
      if (y > 0) {
        a.add(idx(x, y), idx(x, y - 1), -1.0);
        deg += 1;
      }
      if (y + 1 < side) {
        a.add(idx(x, y), idx(x, y + 1), -1.0);
        deg += 1;
      }
      a.add(idx(x, y), idx(x, y), deg);
    }
  }
  a.compress();
  return a;
}

void BM_CgLaplacian(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const bool precond = state.range(1) != 0;
  const auto a = laplacian_2d(side);
  // A varied RHS: the all-ones vector is an exact eigenvector of this
  // Laplacian (every row sums to the anchor weight), which would let plain
  // CG converge in one step and make the comparison degenerate.
  std::vector<double> b(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<double>(i % 7) - 3.0;
  int iters = 0;
  for (auto _ : state) {
    linalg::CgOptions opt;
    opt.jacobi_preconditioner = precond;
    const auto res = linalg::conjugate_gradient(a, b, opt);
    iters = res.iterations;
    state.counters["iterations"] = iters;
    benchmark::DoNotOptimize(res.x);
  }
  (void)iters;
  state.SetLabel(precond ? "Jacobi preconditioned" : "plain CG");
}
BENCHMARK(BM_CgLaplacian)
    ->Args({16, 1})
    ->Args({16, 0})
    ->Args({32, 1})
    ->Args({64, 1});

void BM_DenseCholesky(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(3);
  linalg::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = rng.next_gaussian() * 0.1;
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
    a.at(i, i) = n;
  }
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_cholesky(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DenseCholesky)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_SparseMatVec(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto a = laplacian_2d(side);
  std::vector<double> x(static_cast<std::size_t>(side) * static_cast<std::size_t>(side), 1.0);
  std::vector<double> y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y);
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_SparseMatVec)->Arg(32)->Arg(128);

}  // namespace
