// Figure 1 / §2.1: the EDA concept map. Reproduces the BDD-area snapshot
// as a bar chart (slide counts per concept) and checks the §2.1 totals:
// 948 slides, 102 concepts in the full course; 615 slides / 69 lectures
// after re-architecting (a 35% compression delivered in 1/3 of the time).

#include <cstdio>

#include "mooc/datasets.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

int main() {
  using namespace l2l;
  std::printf("=== Figure 1: concept map snapshot (BDD & Boolean algebra) ===\n\n");

  std::vector<util::BarDatum> bars;
  int snapshot_slides = 0;
  for (const auto& e : mooc::concept_map()) {
    if (e.topic != "BDDs" && e.topic != "Computational Boolean Algebra")
      continue;
    bars.push_back({e.name, static_cast<double>(e.slides)});
    snapshot_slides += e.slides;
  }
  util::BarChartOptions opt;
  opt.width = 40;
  opt.value_suffix = " slides";
  std::printf("%s\n", util::render_bar_chart(bars, opt).c_str());

  const auto totals = mooc::concept_map_totals();
  int full_slides = 0;
  for (const auto& e : mooc::concept_map()) full_slides += e.slides;

  std::printf("paper vs reproduction:\n");
  std::printf("%s",
              util::render_table(
                  {"metric", "paper", "repro"},
                  {{"full-course slides", "948",
                    util::format("%d", full_slides)},
                   {"unique concepts", "102",
                    util::format("%d", totals.unique_concepts)},
                   {"MOOC slides after re-architecting", "615",
                    util::format("%d", totals.mooc_slides)},
                   {"MOOC lectures", "69",
                    util::format("%d", totals.mooc_lectures)},
                   {"compression (MOOC/full)", "~65%",
                    util::format("%.0f%%", 100.0 * totals.mooc_slides /
                                               full_slides)}})
                  .c_str());
  return 0;
}
