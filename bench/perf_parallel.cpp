// Parallel execution core benchmarks: facade overhead, plus 1/2/4/8-thread
// scaling of every subsystem the pool backs -- SpMV, CG dot products,
// fault simulation, and batch grading. Run with
//   perf_parallel --benchmark_format=json --benchmark_out=BENCH_parallel.json
// (tools/run_benches.sh does this for every perf binary) to record the
// speedup trajectory machine-readably.

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "fault/faults.hpp"
#include "fault/simulator.hpp"
#include "gen/function_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/route_grader.hpp"
#include "linalg/cg.hpp"
#include "linalg/sparse.hpp"
#include "route/router.hpp"
#include "route/solution.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

/// Pentadiagonal SPD test matrix, the shape the quadratic placer builds.
linalg::SparseMatrix make_matrix(int n) {
  linalg::SparseMatrix a(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 6.0);
    for (const int off : {1, 17}) {
      if (i + off < n) {
        a.add(i, i + off, -1.0);
        a.add(i + off, i, -1.0);
      }
    }
  }
  a.compress();
  return a;
}

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost of an (almost) empty parallel region vs its range.
  const int threads = static_cast<int>(state.range(0));
  util::set_num_threads(threads);
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    util::parallel_for_chunks(0, 1 << 16, 1 << 10,
                              [&](std::int64_t b, std::int64_t e) {
                                sink.fetch_add(e - b,
                                               std::memory_order_relaxed);
                              });
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SpmvThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto a = make_matrix(200'000);
  std::vector<double> x(200'000, 1.0), y;
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 1e-3 * static_cast<double>(i % 97);
  util::set_num_threads(threads);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_SpmvThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CgThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto a = make_matrix(100'000);
  std::vector<double> b(100'000);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<double>(i % 13) - 6.0;
  util::set_num_threads(threads);
  double residual = 0;
  for (auto _ : state) {
    linalg::CgOptions opt;
    opt.max_iterations = 200;
    const auto res = linalg::conjugate_gradient(a, b, opt);
    residual = res.residual;
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["residual"] = residual;  // thread-invariant by design
}
BENCHMARK(BM_CgThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FaultSimThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto net = gen::adder_network(6);
  const auto faults = fault::enumerate_faults(net);
  util::set_num_threads(threads);
  int detected = 0;
  for (auto _ : state) {
    util::Rng rng(55);
    const auto res = fault::random_pattern_coverage(net, faults, 256, rng);
    detected = res.detected;
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["detected"] = detected;  // thread-invariant by design
}
BENCHMARK(BM_FaultSimThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GraderBatchThreadScaling(benchmark::State& state) {
  // The paper's load profile: many student submissions, one problem.
  const int threads = static_cast<int>(state.range(0));
  util::Rng rng(66);
  gen::RoutingGenOptions gopt;
  gopt.width = gopt.height = 48;
  gopt.num_nets = 30;
  const auto p = gen::generate_routing(gopt, rng);
  const auto good = route::write_solution(route::route_all(p));
  std::vector<std::string> submissions(64, good);
  util::set_num_threads(threads);
  double score = 0;
  for (auto _ : state) {
    const auto grades = grader::grade_routing_batch(p, submissions);
    score = grades.front().score;
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["submissions"] = static_cast<double>(submissions.size());
  state.counters["score"] = score;
}
BENCHMARK(BM_GraderBatchThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
