// SAT solver microbenchmarks + heuristic ablations: VSIDS and restarts on
// pigeonhole (UNSAT, learning-bound) and random 3-SAT near the phase
// transition.

#include <benchmark/benchmark.h>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

void add_pigeonhole(sat::Solver& s, int holes) {
  const int pigeons = holes + 1;
  s.reserve_vars(pigeons * holes);
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(sat::mk_lit(p * holes + h));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({~sat::mk_lit(p1 * holes + h), ~sat::mk_lit(p2 * holes + h)});
}

void add_random_3sat(sat::Solver& s, int vars, double ratio, util::Rng& rng) {
  s.reserve_vars(vars);
  const int clauses = static_cast<int>(ratio * vars);
  for (int k = 0; k < clauses; ++k) {
    std::vector<sat::Lit> c;
    while (c.size() < 3) {
      const sat::Lit p(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vars))),
                       rng.next_bool());
      bool dup = false;
      for (const auto q : c) dup |= q.var() == p.var();
      if (!dup) c.push_back(p);
    }
    s.add_clause(c);
  }
}

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const bool vsids = state.range(1) != 0;
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    sat::SolverOptions opt;
    opt.use_vsids = vsids;
    sat::Solver s(opt);
    add_pigeonhole(s, holes);
    benchmark::DoNotOptimize(s.solve());
    conflicts = s.stats().conflicts;
    state.counters["conflicts"] = static_cast<double>(conflicts);
  }
  (void)conflicts;
  state.SetLabel(vsids ? "VSIDS" : "static order");
}
BENCHMARK(BM_Pigeonhole)->Args({6, 1})->Args({6, 0})->Args({7, 1})->Iterations(1);

void BM_Random3SatPhaseTransition(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const bool restarts = state.range(1) != 0;
  std::int64_t conflicts = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    sat::SolverOptions opt;
    opt.use_restarts = restarts;
    sat::Solver s(opt);
    add_random_3sat(s, vars, 4.26, rng);
    benchmark::DoNotOptimize(s.solve());
    conflicts += s.stats().conflicts;
    state.counters["conflicts_total"] = static_cast<double>(conflicts);
  }
  state.SetLabel(restarts ? "Luby restarts" : "no restarts");
}
BENCHMARK(BM_Random3SatPhaseTransition)
    ->Args({60, 1})
    ->Args({60, 0})
    ->Args({90, 1})
    ->Iterations(3);

void BM_UnitPropagationThroughput(benchmark::State& state) {
  // Long implication chains: measures the watched-literal machinery.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    s.reserve_vars(n);
    for (int i = 0; i + 1 < n; ++i)
      s.add_clause({~sat::mk_lit(i), sat::mk_lit(i + 1)});
    s.add_clause({sat::mk_lit(0)});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_UnitPropagationThroughput)->Arg(1000)->Arg(10000);

void BM_WidePropagation(benchmark::State& state) {
  // Wide ternary implication layers: every assignment visits a long
  // watcher list, so this is the cache-miss profile the clause-arena +
  // blocker-watch layout targets (most visits end at the blocker).
  const int layers = static_cast<int>(state.range(0));
  const int width = 16;
  for (auto _ : state) {
    sat::Solver s;
    s.reserve_vars(layers * width);
    for (int l = 0; l + 1 < layers; ++l)
      for (int a = 0; a < width; ++a)
        for (int b = 0; b < width; ++b)
          s.add_clause({~sat::mk_lit(l * width + a), ~sat::mk_lit(l * width + b),
                        sat::mk_lit((l + 1) * width + (a + b) % width)});
    for (int a = 0; a < width; ++a) s.add_clause({sat::mk_lit(a)});
    benchmark::DoNotOptimize(s.solve());
    state.counters["propagations"] =
        static_cast<double>(s.stats().propagations);
  }
}
BENCHMARK(BM_WidePropagation)->Arg(16)->Arg(64);

void BM_ClauseIngestion(benchmark::State& state) {
  // add_clause throughput on a pre-generated 3-SAT instance: measures
  // per-clause allocation churn (unique_ptr-per-clause vs. one arena).
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(42);
  std::vector<std::vector<sat::Lit>> clauses;
  const int n_clauses = 4 * vars;
  clauses.reserve(static_cast<std::size_t>(n_clauses));
  for (int k = 0; k < n_clauses; ++k) {
    std::vector<sat::Lit> c;
    while (c.size() < 3) {
      const sat::Lit p(
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vars))),
          rng.next_bool());
      bool dup = false;
      for (const auto q : c) dup |= q.var() == p.var();
      if (!dup) c.push_back(p);
    }
    clauses.push_back(std::move(c));
  }
  for (auto _ : state) {
    sat::Solver s;
    s.reserve_vars(vars);
    for (const auto& c : clauses) s.add_clause(c);
    benchmark::DoNotOptimize(s.num_clauses());
  }
  state.SetItemsProcessed(state.iterations() * n_clauses);
}
BENCHMARK(BM_ClauseIngestion)->Arg(2000)->Arg(20000);

}  // namespace
