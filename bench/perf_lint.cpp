// Lint benchmarks: per-format rule-pack cost on growing artifacts, the
// pathological-input guard (hostile headers must cost milliseconds, not
// an engine budget), and lint_files scaling across the worker pool --
// the number that justifies running lint ahead of every grade.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

// A well-formed chain-of-ANDs BLIF with `blocks` logic nodes.
std::string synthetic_blif(int blocks) {
  std::string s = ".model chain\n.inputs x0 x1\n.outputs y\n";
  for (int i = 0; i < blocks; ++i) {
    const std::string in = i == 0 ? "x0" : "n" + std::to_string(i - 1);
    const std::string out =
        i + 1 == blocks ? "y" : "n" + std::to_string(i);
    s += ".names " + in + " x1 " + out + "\n11 1\n";
  }
  s += ".end\n";
  return s;
}

// A satisfiable-looking random 3-CNF with `clauses` clauses.
std::string synthetic_cnf(int vars, int clauses, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string s =
      "p cnf " + std::to_string(vars) + " " + std::to_string(clauses) + "\n";
  for (int c = 0; c < clauses; ++c) {
    for (int k = 0; k < 3; ++k) {
      const int v = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint32_t>(vars)));
      s += std::to_string(rng.next_below(2) ? v : -v) + " ";
    }
    s += "0\n";
  }
  return s;
}

void BM_LintBlifPack(benchmark::State& state) {
  const auto text = synthetic_blif(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto findings = lint::lint_blif(text);
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_LintBlifPack)->Arg(64)->Arg(512)->Arg(4096);

void BM_LintCnfPack(benchmark::State& state) {
  const auto text =
      synthetic_cnf(200, static_cast<int>(state.range(0)), 2026);
  for (auto _ : state) {
    auto findings = lint::lint_cnf(text);
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_LintCnfPack)->Arg(256)->Arg(2048)->Arg(16384);

// The guard every pack promises: a header that *declares* astronomical
// sizes must lint in time proportional to the bytes present, because the
// grading queue runs lint before any resource-guarded engine.
void BM_LintHostileHeaders(benchmark::State& state) {
  const std::vector<std::pair<std::string, std::string>> hostile = {
      {"huge.cnf", "p cnf 2000000000 2000000000\n1 2 0\n"},
      {"huge.problem", "grid 2000000000 2000000000 64\nobstacles 0\n"},
      {"huge.pla", ".i 1000000\n.o 1000000\n.p 2000000000\n"},
  };
  for (auto _ : state) {
    auto report = lint::lint_files(hostile);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LintHostileHeaders);

// Batch lint across the pool: Arg is the thread count; the batch is one
// submission-sized artifact per simulated student.
void BM_LintFilesScaling(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.emplace_back("hw" + std::to_string(i) + ".blif",
                       synthetic_blif(256));
    batch.emplace_back("hw" + std::to_string(i) + ".cnf",
                       synthetic_cnf(100, 512, 100 + i));
  }
  util::set_num_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = lint::lint_files(batch);
    benchmark::DoNotOptimize(report);
  }
  util::set_num_threads(0);
  state.counters["files"] = static_cast<double>(batch.size());
}
BENCHMARK(BM_LintFilesScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
