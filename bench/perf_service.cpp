// Grading-service benchmarks: what the persistent sharded daemon
// (mooc::GradingService) sustains tick over tick, and what the overload
// machinery -- admission quotas, shed policies, circuit breakers -- costs
// when a semester's deadline spike hits. The headline case is the
// million-student simulated semester from the ROADMAP: the service drains
// it under a queue cap far below the arrival rate, closes the books
// exactly (admitted + rejected + shed == arrivals), and reports sustained
// submissions/sec plus p50/p99 tick latency as bench counters.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/digest.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_service.hpp"
#include "mooc/journal.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace {

using namespace l2l;

/// The stand-in grader (same shape as tools/grading_service.cpp): a few
/// dozen digest rounds standing in for a real parse+verify pass.
double digest_grade(const std::string& s, const util::Budget& guard) {
  cache::Digest128 d = cache::digest_bytes(s);
  for (int r = 0; r < 32; ++r) {
    if (!guard.consume(1)) break;
    cache::Hasher h;
    h.u64(d.hi).u64(d.lo).str(s);
    d = h.finish();
  }
  return static_cast<double>(d.lo % 101);
}

mooc::SubmissionTrace make_trace(int students, int courses,
                                 std::uint32_t ticks) {
  mooc::TraceOptions topt;
  topt.num_students = students;
  topt.num_courses = courses;
  topt.ticks = ticks;
  util::Rng rng(7);
  return mooc::generate_submission_trace(topt, rng);
}

void report_service(benchmark::State& state, const mooc::ServiceResult& res) {
  const auto& s = res.stats;
  if (!res.accounting_ok()) {
    state.SkipWithError("accounting invariant broken: silent drop");
    return;
  }
  std::int64_t total_us = 0;
  for (const auto us : res.tick_duration_us) total_us += us;
  const double secs = static_cast<double>(total_us) / 1e6;
  state.counters["submissions_per_sec"] =
      secs > 0 ? static_cast<double>(s.admitted) / secs : 0.0;
  state.counters["tick_p50_us"] =
      static_cast<double>(mooc::tick_latency_percentile_us(res, 50.0));
  state.counters["tick_p99_us"] =
      static_cast<double>(mooc::tick_latency_percentile_us(res, 99.0));
  state.counters["arrivals"] = static_cast<double>(s.arrivals);
  state.counters["admitted"] = static_cast<double>(s.admitted);
  state.counters["rejected"] = static_cast<double>(s.rejected());
  state.counters["shed"] = static_cast<double>(s.shed);
  state.counters["breaker_trips"] = static_cast<double>(s.breaker_trips);
  state.counters["dedup_hits"] = static_cast<double>(s.dedup_hits);
}

/// Steady state: capacity comfortably above the arrival rate, the number
/// every overload case is compared against.
void BM_ServiceDrainSteady(benchmark::State& state) {
  const auto trace = make_trace(4000, 2, 120);
  mooc::ServiceOptions sopt;
  mooc::ServiceResult last;
  for (auto _ : state) {
    const mooc::GradingService service(sopt, digest_grade);
    last = service.run(trace);
    benchmark::DoNotOptimize(last.stats.admitted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  report_service(state, last);
}
BENCHMARK(BM_ServiceDrainSteady)->Unit(benchmark::kMillisecond);

/// Overload: queue cap and service rate far below the deadline spike, so
/// the shed/reject machinery carries most arrivals.
void BM_ServiceDrainOverload(benchmark::State& state) {
  const auto trace = make_trace(20000, 2, 120);
  mooc::ServiceOptions sopt;
  sopt.queue_cap = 64;
  sopt.admit_quota = 48;
  sopt.service_rate = 8;
  mooc::ServiceResult last;
  for (auto _ : state) {
    const mooc::GradingService service(sopt, digest_grade);
    last = service.run(trace);
    benchmark::DoNotOptimize(last.stats.shed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  report_service(state, last);
}
BENCHMARK(BM_ServiceDrainOverload)->Unit(benchmark::kMillisecond);

/// Fault storm mid-semester: breakers trip, courses degrade to lint-only,
/// half-open probes re-close them once the storm passes.
void BM_ServiceDrainFaultStorm(benchmark::State& state) {
  const auto trace = make_trace(8000, 2, 120);
  mooc::ServiceOptions sopt;
  sopt.storm_begin_tick = 40;
  sopt.storm_end_tick = 80;
  sopt.storm_transient_rate = 0.97;
  sopt.storm_stall_rate = 0.5;
  mooc::ServiceResult last;
  for (auto _ : state) {
    const mooc::GradingService service(sopt, digest_grade);
    last = service.run(trace);
    benchmark::DoNotOptimize(last.stats.breaker_trips);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  report_service(state, last);
}
BENCHMARK(BM_ServiceDrainFaultStorm)->Unit(benchmark::kMillisecond);

/// Journal write overhead: the steady-state drain again, but with every
/// decision journaled and flushed once per tick. Compare
/// submissions_per_sec against BM_ServiceDrainSteady -- the durability
/// tax the crash-recovery contract charges (ISSUE 10 budget: <= 5%).
void BM_ServiceJournaledDrain(benchmark::State& state) {
  const auto trace = make_trace(4000, 2, 120);
  mooc::ServiceOptions sopt;
  const auto path = (std::filesystem::temp_directory_path() /
                     "l2l_perf_service_journal.l2lj")
                        .string();
  mooc::RunRequest req;
  req.journal_path = path;
  mooc::ServiceResult last;
  std::int64_t journal_bytes = 0;
  for (auto _ : state) {
    const mooc::GradingService service(sopt, digest_grade);
    util::Status st;
    last = service.run(trace, req, st);
    if (!st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      break;
    }
    benchmark::DoNotOptimize(last.stats.admitted);
  }
  std::error_code ec;
  journal_bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(path, ec));
  std::filesystem::remove(path, ec);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  state.counters["journal_bytes"] = static_cast<double>(journal_bytes);
  report_service(state, last);
}
BENCHMARK(BM_ServiceJournaledDrain)->Unit(benchmark::kMillisecond);

/// Recovery latency: a semester killed cold at tick 60 of ~120, then
/// restarted with recover=true. The timed region is the full restarted
/// process -- journal scan, verified replay of the pre-crash prefix, and
/// the live completion of the drain. Each iteration restores the halted
/// journal bytes (outside the timer) so recovery always starts from the
/// same torn state.
void BM_ServiceRecovery(benchmark::State& state) {
  const auto trace = make_trace(4000, 2, 120);
  mooc::ServiceOptions sopt;
  const auto path = (std::filesystem::temp_directory_path() /
                     "l2l_perf_service_recovery.l2lj")
                        .string();
  // Prepare the halted journal once; keep its bytes to restore per
  // iteration (the recover run appends past them).
  {
    const mooc::GradingService service(sopt, digest_grade);
    mooc::RunRequest crash;
    crash.journal_path = path;
    crash.halt_after_ticks = 60;
    util::Status st;
    (void)service.run(trace, crash, st);
    if (!st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      return;
    }
  }
  std::string halted_bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    halted_bytes = ss.str();
  }
  mooc::ServiceResult last;
  for (auto _ : state) {
    state.PauseTiming();
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(halted_bytes.data(),
                static_cast<std::streamsize>(halted_bytes.size()));
    }
    state.ResumeTiming();
    const mooc::GradingService service(sopt, digest_grade);
    mooc::RunRequest recover;
    recover.journal_path = path;
    recover.recover = true;
    util::Status st;
    last = service.run(trace, recover, st);
    if (!st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      break;
    }
    benchmark::DoNotOptimize(last.stats.admitted);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".quarantine", ec);
  state.counters["replayed_ticks"] = 60.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  report_service(state, last);
}
BENCHMARK(BM_ServiceRecovery)->Unit(benchmark::kMillisecond);

/// The headline: a million registered students across four courses, a
/// queue cap orders of magnitude below the deadline-spike arrival rate,
/// zero silent drops. Iterations(1) keeps this a single full-semester
/// drain regardless of --quick; record_outcomes=false holds memory flat
/// at planet scale (the accounting runs off ServiceStats either way).
void BM_ServiceMillionStudentSemester(benchmark::State& state) {
  const auto trace = make_trace(1000000, 4, 400);
  mooc::ServiceOptions sopt;
  sopt.queue_cap = 256;
  sopt.admit_quota = 192;
  sopt.service_rate = 64;
  sopt.record_outcomes = false;
  mooc::ServiceResult last;
  for (auto _ : state) {
    const mooc::GradingService service(sopt, digest_grade);
    last = service.run(trace);
    benchmark::DoNotOptimize(last.stats.admitted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
  report_service(state, last);
}
BENCHMARK(BM_ServiceMillionStudentSemester)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
