// Placement benchmarks + ablations: clique vs star net models, recursion
// depth, annealing vs pure greedy descent, and multi-thread scaling of
// the quadratic solve (parallel SpMV + chunk-ordered CG reductions).

#include <benchmark/benchmark.h>

#include "gen/placement_gen.hpp"
#include "place/annealing.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "place/wirelength.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

gen::PlacementProblem problem(int cells, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::PlacementGenOptions opt;
  opt.num_cells = cells;
  return gen::generate_placement(opt, rng);
}

void BM_QuadraticNetModel(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const bool star = state.range(1) != 0;
  const auto p = problem(cells, 11);
  double h = 0;
  for (auto _ : state) {
    place::QuadraticOptions opt;
    opt.net_model = star ? place::NetModel::kStar : place::NetModel::kClique;
    const auto pl = place::place_quadratic(p, opt);
    h = place::hpwl(p, pl);
    state.counters["hpwl"] = h;
  }
  (void)h;
  state.SetLabel(star ? "star model" : "clique model");
}
BENCHMARK(BM_QuadraticNetModel)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({600, 0})
    ->Args({600, 1});

void BM_RecursionDepth(benchmark::State& state) {
  const int levels = static_cast<int>(state.range(0));
  const auto p = problem(400, 12);
  double h = 0;
  for (auto _ : state) {
    place::QuadraticOptions opt;
    opt.max_levels = levels;
    const auto pl = place::place_quadratic(p, opt);
    h = place::hpwl(p, pl);
    state.counters["hpwl"] = h;
  }
  (void)h;
}
BENCHMARK(BM_RecursionDepth)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_PlaceThreadScaling(benchmark::State& state) {
  // Thread scaling of the full recursive quadratic placement on the
  // largest generated netlist. The hpwl counter must be thread-invariant.
  const int threads = static_cast<int>(state.range(0));
  const auto p = problem(3000, 15);
  util::set_num_threads(threads);
  double h = 0;
  for (auto _ : state) {
    const auto pl = place::place_quadratic(p);
    h = place::hpwl(p, pl);
  }
  util::set_num_threads(0);
  state.counters["threads"] = threads;
  state.counters["hpwl"] = h;
}
BENCHMARK(BM_PlaceThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_AnnealVsGreedy(benchmark::State& state) {
  const bool greedy = state.range(0) != 0;
  const auto p = problem(150, 13);
  const place::Grid grid{14, 14, p.width, p.height};
  double final_cost = 0;
  for (auto _ : state) {
    util::Rng rng(7);
    const auto start = place::random_grid_placement(p, grid, rng);
    place::AnnealingOptions opt;
    opt.greedy = greedy;
    opt.moves_per_cell_per_stage = 8;
    place::AnnealingStats stats;
    benchmark::DoNotOptimize(place::anneal(p, grid, start, opt, rng, &stats));
    final_cost = stats.final_cost;
    state.counters["final_hpwl"] = final_cost;
  }
  (void)final_cost;
  state.SetLabel(greedy ? "greedy descent" : "simulated annealing");
}
BENCHMARK(BM_AnnealVsGreedy)->Arg(0)->Arg(1)->Iterations(1);

void BM_QuadraticSeedVsColdAnneal(benchmark::State& state) {
  // Flow ablation: annealing from a quadratic seed vs. from random.
  const bool quad_seed = state.range(0) != 0;
  const auto p = problem(150, 14);
  const place::Grid grid{14, 14, p.width, p.height};
  double final_cost = 0;
  for (auto _ : state) {
    util::Rng rng(9);
    const auto start =
        quad_seed ? place::legalize(p, place::place_quadratic(p), grid)
                  : place::random_grid_placement(p, grid, rng);
    place::AnnealingOptions opt;
    opt.moves_per_cell_per_stage = 6;
    place::AnnealingStats stats;
    benchmark::DoNotOptimize(place::anneal(p, grid, start, opt, rng, &stats));
    final_cost = stats.final_cost;
    state.counters["final_hpwl"] = final_cost;
  }
  (void)final_cost;
  state.SetLabel(quad_seed ? "quadratic seed" : "random seed");
}
BENCHMARK(BM_QuadraticSeedVsColdAnneal)->Arg(0)->Arg(1)->Iterations(1);

}  // namespace
