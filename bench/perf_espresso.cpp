// Two-level minimization benchmarks: the espresso loop vs. the exact
// Quine-McCluskey baseline, the single-pass (no REDUCE) ablation, and the
// raw cube-kernel microbenches that track the PCN data-layout trajectory
// (see DESIGN.md "Data layout & kernels").

#include <benchmark/benchmark.h>

#include <vector>

#include "cubes/cube.hpp"
#include "espresso/minimize.hpp"
#include "espresso/qm.hpp"
#include "gen/function_gen.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

/// Deterministic random cube set: every position uniformly neg/pos/dc.
std::vector<cubes::Cube> random_cubes(int vars, int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<cubes::Cube> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    cubes::Cube c(vars);
    for (int v = 0; v < vars; ++v)
      c.set_code(v, static_cast<cubes::Pcn>(rng.next_below(3) + 1));
    out.push_back(std::move(c));
  }
  return out;
}

void BM_CubeKernels(benchmark::State& state) {
  // The inner-loop quartet every espresso pass leans on: intersect,
  // distance, contains, num_literals, over all consecutive pairs of a
  // 256-cube set. Arg = arity; 224 crosses several 32-var word boundaries.
  const int vars = static_cast<int>(state.range(0));
  const auto cs = random_cubes(vars, 256, 7);
  std::int64_t acc = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < cs.size(); ++i) {
      const auto& a = cs[i];
      const auto& b = cs[i + 1];
      acc += a.distance(b);
      acc += a.contains(b) ? 1 : 0;
      const auto x = a.intersect(b);
      acc += x.num_literals();
      acc += x.is_empty() ? 1 : 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cs.size() - 1) * 4);
}
BENCHMARK(BM_CubeKernels)->Arg(16)->Arg(64)->Arg(224);

void BM_CubeConsensus(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto cs = random_cubes(vars, 256, 11);
  std::int64_t merged = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < cs.size(); ++i)
      if (auto c = cs[i].consensus(cs[i + 1])) merged += c->num_literals();
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_CubeConsensus)->Arg(16)->Arg(64)->Arg(224);

void BM_CoverContainment(benchmark::State& state) {
  // remove_contained_cubes is the O(n^2) contains() stress: sparse cubes
  // (mostly don't-care) so containment actually fires.
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(13);
  cubes::Cover base(vars);
  for (int i = 0; i < 192; ++i) {
    cubes::Cube c(vars);
    for (int k = 0; k < 4; ++k)
      c.set_code(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(vars))),
                 rng.next_bool() ? cubes::Pcn::kPos : cubes::Pcn::kNeg);
    base.add(std::move(c));
  }
  for (auto _ : state) {
    cubes::Cover work = base;
    work.remove_contained_cubes();
    benchmark::DoNotOptimize(work.size());
  }
  state.counters["cubes"] = base.size();
}
BENCHMARK(BM_CoverContainment)->Arg(16)->Arg(64)->Arg(224);

void BM_EspressoHeuristic(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const bool single_pass = state.range(1) != 0;
  util::Rng rng(99);
  const auto f = gen::random_cover(vars, 4 * vars, rng);
  int final_cubes = 0;
  for (auto _ : state) {
    espresso::MinimizeOptions opt;
    opt.single_pass = single_pass;
    const auto m = espresso::minimize(f, cubes::Cover(vars), opt, nullptr);
    final_cubes = m.size();
    state.counters["cubes_in"] = f.size();
    state.counters["cubes_out"] = final_cubes;
  }
  (void)final_cubes;
  state.SetLabel(single_pass ? "expand+irredundant only" : "full loop");
}
BENCHMARK(BM_EspressoHeuristic)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({7, 0})
    ->Args({7, 1});

void BM_ExactQuineMcCluskey(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(100);
  const auto ft = tt::TruthTable::random(vars, rng);
  const auto f = cubes::Cover::from_truth_table(ft);
  int cubes_out = 0;
  for (auto _ : state) {
    const auto m = espresso::exact_minimize(f);
    cubes_out = m.size();
    state.counters["cubes_out"] = cubes_out;
  }
  (void)cubes_out;
}
BENCHMARK(BM_ExactQuineMcCluskey)->Arg(4)->Arg(5)->Arg(6);

void BM_HeuristicVsExactGap(benchmark::State& state) {
  // Quality ablation: average cube-count gap on random 5-var functions.
  util::Rng rng(101);
  double gap = 0;
  int trials = 0;
  for (auto _ : state) {
    const auto ft = tt::TruthTable::random(5, rng);
    const auto f = cubes::Cover::from_truth_table(ft);
    if (f.empty()) continue;
    const auto h = espresso::minimize(f);
    const auto e = espresso::exact_minimize(f);
    gap += h.size() - e.size();
    ++trials;
    benchmark::DoNotOptimize(h.size());
  }
  if (trials) state.counters["avg_extra_cubes"] = gap / trials;
}
BENCHMARK(BM_HeuristicVsExactGap);

void BM_PrimeGeneration(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(102);
  const auto ft = tt::TruthTable::random(vars, rng);
  const auto f = cubes::Cover::from_truth_table(ft);
  std::size_t primes = 0;
  for (auto _ : state) {
    primes = espresso::all_primes(f, cubes::Cover(vars)).size();
    state.counters["primes"] = static_cast<double>(primes);
  }
  (void)primes;
}
BENCHMARK(BM_PrimeGeneration)->Arg(5)->Arg(7)->Arg(9);

}  // namespace
