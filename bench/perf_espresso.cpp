// Two-level minimization benchmarks: the espresso loop vs. the exact
// Quine-McCluskey baseline, and the single-pass (no REDUCE) ablation.

#include <benchmark/benchmark.h>

#include "espresso/minimize.hpp"
#include "espresso/qm.hpp"
#include "gen/function_gen.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using namespace l2l;

void BM_EspressoHeuristic(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const bool single_pass = state.range(1) != 0;
  util::Rng rng(99);
  const auto f = gen::random_cover(vars, 4 * vars, rng);
  int final_cubes = 0;
  for (auto _ : state) {
    espresso::MinimizeOptions opt;
    opt.single_pass = single_pass;
    const auto m = espresso::minimize(f, cubes::Cover(vars), opt, nullptr);
    final_cubes = m.size();
    state.counters["cubes_in"] = f.size();
    state.counters["cubes_out"] = final_cubes;
  }
  (void)final_cubes;
  state.SetLabel(single_pass ? "expand+irredundant only" : "full loop");
}
BENCHMARK(BM_EspressoHeuristic)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({7, 0})
    ->Args({7, 1});

void BM_ExactQuineMcCluskey(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(100);
  const auto ft = tt::TruthTable::random(vars, rng);
  const auto f = cubes::Cover::from_truth_table(ft);
  int cubes_out = 0;
  for (auto _ : state) {
    const auto m = espresso::exact_minimize(f);
    cubes_out = m.size();
    state.counters["cubes_out"] = cubes_out;
  }
  (void)cubes_out;
}
BENCHMARK(BM_ExactQuineMcCluskey)->Arg(4)->Arg(5)->Arg(6);

void BM_HeuristicVsExactGap(benchmark::State& state) {
  // Quality ablation: average cube-count gap on random 5-var functions.
  util::Rng rng(101);
  double gap = 0;
  int trials = 0;
  for (auto _ : state) {
    const auto ft = tt::TruthTable::random(5, rng);
    const auto f = cubes::Cover::from_truth_table(ft);
    if (f.empty()) continue;
    const auto h = espresso::minimize(f);
    const auto e = espresso::exact_minimize(f);
    gap += h.size() - e.size();
    ++trials;
    benchmark::DoNotOptimize(h.size());
  }
  if (trials) state.counters["avg_extra_cubes"] = gap / trials;
}
BENCHMARK(BM_HeuristicVsExactGap);

void BM_PrimeGeneration(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  util::Rng rng(102);
  const auto ft = tt::TruthTable::random(vars, rng);
  const auto f = cubes::Cover::from_truth_table(ft);
  std::size_t primes = 0;
  for (auto _ : state) {
    primes = espresso::all_primes(f, cubes::Cover(vars)).size();
    state.counters["primes"] = static_cast<double>(primes);
  }
  (void)primes;
}
BENCHMARK(BM_PrimeGeneration)->Arg(5)->Arg(7)->Arg(9);

}  // namespace
