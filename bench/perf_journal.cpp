// Journal-layer microbenchmarks (mooc/journal.hpp, mooc/shard_map.hpp):
// what the crash-recovery machinery itself costs, isolated from the
// grading loop it protects. Three questions:
//
//   * append -- frames/sec through JournalWriter with a once-per-tick
//     flush cadence (the write path every journaled drain pays);
//   * scan   -- bytes/sec through scan_journal's CRC-checked frame walk
//     (the recovery path's startup cost);
//   * ring   -- ShardMap course-ownership lookups/sec (paid per arrival
//     in sharded runs).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "mooc/grading_queue.hpp"
#include "mooc/grading_service.hpp"
#include "mooc/journal.hpp"
#include "mooc/shard_map.hpp"
#include "util/status.hpp"

namespace {

using namespace l2l;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

mooc::JournalHeader bench_header() {
  mooc::JournalHeader h;
  h.num_events = 1 << 20;
  return h;
}

/// A representative graded outcome: a couple of attempts, a short
/// diagnostic -- the frame size the write path sees in the wild.
mooc::SubmissionOutcome bench_outcome() {
  mooc::SubmissionOutcome out;
  out.kind = mooc::OutcomeKind::kGraded;
  out.score = 87.0;
  out.attempts = 2;
  out.status = util::Status::okay();
  return out;
}

/// Append throughput: ticks of 64 outcome frames plus the begin/end
/// marks, flushed per tick like the service does.
void BM_JournalAppend(benchmark::State& state) {
  const auto path = temp_path("l2l_perf_journal_append.l2lj");
  const auto out = bench_outcome();
  const mooc::FaultTally tally;
  constexpr int kPerTick = 64;
  std::int64_t frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mooc::JournalWriter writer;
    if (const auto st = writer.open(path, bench_header(), false); !st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      break;
    }
    state.ResumeTiming();
    for (std::uint32_t tick = 0; tick < 64; ++tick) {
      writer.tick_begin(tick);
      for (int i = 0; i < kPerTick; ++i)
        writer.outcome(static_cast<std::uint64_t>(tick) * kPerTick + i,
                       mooc::Disposition::kGraded, 0, false, false, out,
                       tally);
      if (const auto st = writer.tick_end(tick, 0x1234u + tick); !st.ok()) {
        state.SkipWithError(st.to_string().c_str());
        break;
      }
      frames += kPerTick + 2;
    }
    benchmark::DoNotOptimize(writer.bytes_written());
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  state.SetItemsProcessed(frames);
  state.counters["frames_per_tick"] = kPerTick + 2;
}
BENCHMARK(BM_JournalAppend)->Unit(benchmark::kMillisecond);

/// Scan/recovery read path: CRC-walk a complete journal of 64 ticks and
/// decode every frame.
void BM_JournalScan(benchmark::State& state) {
  const auto path = temp_path("l2l_perf_journal_scan.l2lj");
  const auto out = bench_outcome();
  const mooc::FaultTally tally;
  {
    mooc::JournalWriter writer;
    if (const auto st = writer.open(path, bench_header(), false); !st.ok()) {
      state.SkipWithError(st.to_string().c_str());
      return;
    }
    for (std::uint32_t tick = 0; tick < 64; ++tick) {
      writer.tick_begin(tick);
      for (int i = 0; i < 64; ++i)
        writer.outcome(static_cast<std::uint64_t>(tick) * 64 + i,
                       mooc::Disposition::kGraded, 0, false, false, out,
                       tally);
      (void)writer.tick_end(tick, 0x1234u + tick);
    }
  }
  std::error_code ec;
  const auto bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(path, ec));
  std::int64_t ticks = 0;
  for (auto _ : state) {
    const auto scan = mooc::scan_journal(path);
    if (!scan.status.ok() || !scan.found) {
      state.SkipWithError("scan failed");
      break;
    }
    ticks += static_cast<std::int64_t>(scan.ticks.size());
    benchmark::DoNotOptimize(scan.valid_bytes);
  }
  std::filesystem::remove(path, ec);
  state.SetBytesProcessed(state.iterations() * bytes);
  benchmark::DoNotOptimize(ticks);
}
BENCHMARK(BM_JournalScan)->Unit(benchmark::kMillisecond);

/// Ring lookup: the per-arrival cost of course ownership in a sharded
/// drain (binary search over num_shards * 64 points).
void BM_ShardMapLookup(benchmark::State& state) {
  const mooc::ShardMap map(static_cast<int>(state.range(0)));
  std::uint64_t acc = 0;
  std::uint32_t course = 0;
  for (auto _ : state) {
    acc += static_cast<std::uint64_t>(map.shard_for_course(course));
    course = (course + 1) & 0xfff;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardMapLookup)->Arg(4)->Arg(16);

}  // namespace
