// Timing benchmarks: STA scaling on structured netlists, Elmore
// evaluation on long wires, and gate-vs-wire delay share through the
// whole flow.

#include <benchmark/benchmark.h>

#include "flow/flow.hpp"
#include "gen/function_gen.hpp"
#include "timing/elmore.hpp"
#include "timing/sta.hpp"

namespace {

using namespace l2l;

void BM_StaAdder(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto net = gen::adder_network(bits);
  const auto delays = timing::unit_delays(net);
  double critical = 0;
  for (auto _ : state) {
    const auto res = timing::analyze(net, delays);
    critical = res.critical_delay;
    state.counters["critical_levels"] = critical;
  }
  (void)critical;
}
BENCHMARK(BM_StaAdder)->Arg(8)->Arg(32)->Arg(128);

void BM_ElmoreLongWire(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  route::NetRoute net;
  net.net_id = 0;
  for (int x = 0; x < length; ++x) net.cells.push_back({x, 0, 0});
  double delay = 0;
  for (auto _ : state) {
    const auto d = timing::net_sink_delays(net, {0, 0, 0},
                                           {{length - 1, 0, 0}});
    delay = d[0];
    // Quadratic growth with wire length: the Week-8 punchline.
    state.counters["elmore_delay"] = delay;
  }
  (void)delay;
}
BENCHMARK(BM_ElmoreLongWire)->Arg(16)->Arg(64)->Arg(256);

void BM_FullFlowTiming(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto net = gen::adder_network(bits);
  for (auto _ : state) {
    const auto res = flow::run_flow(net);
    state.counters["gate_delay"] = res.gate_delay;
    state.counters["with_wires"] = res.timing.critical_delay;
  }
}
BENCHMARK(BM_FullFlowTiming)->Arg(3)->Arg(5)->Iterations(1);

}  // namespace
