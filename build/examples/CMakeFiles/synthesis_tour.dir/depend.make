# Empty dependencies file for synthesis_tour.
# This may be replaced when dependencies are built.
