file(REMOVE_RECURSE
  "CMakeFiles/synthesis_tour.dir/synthesis_tour.cpp.o"
  "CMakeFiles/synthesis_tour.dir/synthesis_tour.cpp.o.d"
  "synthesis_tour"
  "synthesis_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
