file(REMOVE_RECURSE
  "CMakeFiles/chip_flow.dir/chip_flow.cpp.o"
  "CMakeFiles/chip_flow.dir/chip_flow.cpp.o.d"
  "chip_flow"
  "chip_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
