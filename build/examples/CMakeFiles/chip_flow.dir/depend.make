# Empty dependencies file for chip_flow.
# This may be replaced when dependencies are built.
