# Empty compiler generated dependencies file for homework_portal.
# This may be replaced when dependencies are built.
