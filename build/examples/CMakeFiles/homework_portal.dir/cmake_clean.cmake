file(REMOVE_RECURSE
  "CMakeFiles/homework_portal.dir/homework_portal.cpp.o"
  "CMakeFiles/homework_portal.dir/homework_portal.cpp.o.d"
  "homework_portal"
  "homework_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
