# Empty dependencies file for project_showcase.
# This may be replaced when dependencies are built.
