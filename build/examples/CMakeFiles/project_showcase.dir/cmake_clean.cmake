file(REMOVE_RECURSE
  "CMakeFiles/project_showcase.dir/project_showcase.cpp.o"
  "CMakeFiles/project_showcase.dir/project_showcase.cpp.o.d"
  "project_showcase"
  "project_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
