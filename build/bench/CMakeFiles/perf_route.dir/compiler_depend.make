# Empty compiler generated dependencies file for perf_route.
# This may be replaced when dependencies are built.
