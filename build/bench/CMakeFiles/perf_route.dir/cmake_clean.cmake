file(REMOVE_RECURSE
  "CMakeFiles/perf_route.dir/perf_route.cpp.o"
  "CMakeFiles/perf_route.dir/perf_route.cpp.o.d"
  "perf_route"
  "perf_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
