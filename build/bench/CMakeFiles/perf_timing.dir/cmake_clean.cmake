file(REMOVE_RECURSE
  "CMakeFiles/perf_timing.dir/perf_timing.cpp.o"
  "CMakeFiles/perf_timing.dir/perf_timing.cpp.o.d"
  "perf_timing"
  "perf_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
