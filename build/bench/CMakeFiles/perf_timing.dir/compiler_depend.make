# Empty compiler generated dependencies file for perf_timing.
# This may be replaced when dependencies are built.
