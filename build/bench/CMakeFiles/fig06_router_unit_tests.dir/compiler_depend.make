# Empty compiler generated dependencies file for fig06_router_unit_tests.
# This may be replaced when dependencies are built.
