file(REMOVE_RECURSE
  "CMakeFiles/fig06_router_unit_tests.dir/fig06_router_unit_tests.cpp.o"
  "CMakeFiles/fig06_router_unit_tests.dir/fig06_router_unit_tests.cpp.o.d"
  "fig06_router_unit_tests"
  "fig06_router_unit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_router_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
