file(REMOVE_RECURSE
  "CMakeFiles/perf_bdd.dir/perf_bdd.cpp.o"
  "CMakeFiles/perf_bdd.dir/perf_bdd.cpp.o.d"
  "perf_bdd"
  "perf_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
