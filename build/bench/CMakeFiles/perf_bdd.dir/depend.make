# Empty dependencies file for perf_bdd.
# This may be replaced when dependencies are built.
