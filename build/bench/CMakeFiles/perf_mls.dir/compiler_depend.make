# Empty compiler generated dependencies file for perf_mls.
# This may be replaced when dependencies are built.
