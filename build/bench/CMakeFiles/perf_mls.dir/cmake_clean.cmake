file(REMOVE_RECURSE
  "CMakeFiles/perf_mls.dir/perf_mls.cpp.o"
  "CMakeFiles/perf_mls.dir/perf_mls.cpp.o.d"
  "perf_mls"
  "perf_mls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
