# Empty compiler generated dependencies file for fig10_demographics.
# This may be replaced when dependencies are built.
