file(REMOVE_RECURSE
  "CMakeFiles/fig10_demographics.dir/fig10_demographics.cpp.o"
  "CMakeFiles/fig10_demographics.dir/fig10_demographics.cpp.o.d"
  "fig10_demographics"
  "fig10_demographics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_demographics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
