file(REMOVE_RECURSE
  "CMakeFiles/fig01_concept_map.dir/fig01_concept_map.cpp.o"
  "CMakeFiles/fig01_concept_map.dir/fig01_concept_map.cpp.o.d"
  "fig01_concept_map"
  "fig01_concept_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_concept_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
