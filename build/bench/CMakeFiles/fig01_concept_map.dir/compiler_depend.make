# Empty compiler generated dependencies file for fig01_concept_map.
# This may be replaced when dependencies are built.
