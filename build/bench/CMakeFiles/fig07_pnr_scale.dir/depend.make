# Empty dependencies file for fig07_pnr_scale.
# This may be replaced when dependencies are built.
