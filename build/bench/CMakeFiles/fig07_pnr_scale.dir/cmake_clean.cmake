file(REMOVE_RECURSE
  "CMakeFiles/fig07_pnr_scale.dir/fig07_pnr_scale.cpp.o"
  "CMakeFiles/fig07_pnr_scale.dir/fig07_pnr_scale.cpp.o.d"
  "fig07_pnr_scale"
  "fig07_pnr_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pnr_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
