# Empty dependencies file for fig11_wordcloud.
# This may be replaced when dependencies are built.
