file(REMOVE_RECURSE
  "CMakeFiles/fig11_wordcloud.dir/fig11_wordcloud.cpp.o"
  "CMakeFiles/fig11_wordcloud.dir/fig11_wordcloud.cpp.o.d"
  "fig11_wordcloud"
  "fig11_wordcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_wordcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
