# Empty compiler generated dependencies file for perf_espresso.
# This may be replaced when dependencies are built.
