file(REMOVE_RECURSE
  "CMakeFiles/perf_espresso.dir/perf_espresso.cpp.o"
  "CMakeFiles/perf_espresso.dir/perf_espresso.cpp.o.d"
  "perf_espresso"
  "perf_espresso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_espresso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
