# Empty compiler generated dependencies file for fig08_funnel.
# This may be replaced when dependencies are built.
