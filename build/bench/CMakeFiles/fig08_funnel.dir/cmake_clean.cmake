file(REMOVE_RECURSE
  "CMakeFiles/fig08_funnel.dir/fig08_funnel.cpp.o"
  "CMakeFiles/fig08_funnel.dir/fig08_funnel.cpp.o.d"
  "fig08_funnel"
  "fig08_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
