file(REMOVE_RECURSE
  "CMakeFiles/fig09_viewers.dir/fig09_viewers.cpp.o"
  "CMakeFiles/fig09_viewers.dir/fig09_viewers.cpp.o.d"
  "fig09_viewers"
  "fig09_viewers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_viewers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
