# Empty compiler generated dependencies file for fig09_viewers.
# This may be replaced when dependencies are built.
