# Empty compiler generated dependencies file for fig02_lectures.
# This may be replaced when dependencies are built.
