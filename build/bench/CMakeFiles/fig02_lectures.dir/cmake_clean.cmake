file(REMOVE_RECURSE
  "CMakeFiles/fig02_lectures.dir/fig02_lectures.cpp.o"
  "CMakeFiles/fig02_lectures.dir/fig02_lectures.cpp.o.d"
  "fig02_lectures"
  "fig02_lectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_lectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
