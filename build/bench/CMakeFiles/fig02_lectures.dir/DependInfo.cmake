
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_lectures.cpp" "bench/CMakeFiles/fig02_lectures.dir/fig02_lectures.cpp.o" "gcc" "bench/CMakeFiles/fig02_lectures.dir/fig02_lectures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mooc/CMakeFiles/l2l_mooc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/l2l_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
