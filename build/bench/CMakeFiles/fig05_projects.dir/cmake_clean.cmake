file(REMOVE_RECURSE
  "CMakeFiles/fig05_projects.dir/fig05_projects.cpp.o"
  "CMakeFiles/fig05_projects.dir/fig05_projects.cpp.o.d"
  "fig05_projects"
  "fig05_projects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_projects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
