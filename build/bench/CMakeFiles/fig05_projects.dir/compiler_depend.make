# Empty compiler generated dependencies file for fig05_projects.
# This may be replaced when dependencies are built.
