file(REMOVE_RECURSE
  "CMakeFiles/fig04_tool_portals.dir/fig04_tool_portals.cpp.o"
  "CMakeFiles/fig04_tool_portals.dir/fig04_tool_portals.cpp.o.d"
  "fig04_tool_portals"
  "fig04_tool_portals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_tool_portals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
