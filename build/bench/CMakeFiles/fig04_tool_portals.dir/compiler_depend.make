# Empty compiler generated dependencies file for fig04_tool_portals.
# This may be replaced when dependencies are built.
