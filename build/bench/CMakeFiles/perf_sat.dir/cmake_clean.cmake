file(REMOVE_RECURSE
  "CMakeFiles/perf_sat.dir/perf_sat.cpp.o"
  "CMakeFiles/perf_sat.dir/perf_sat.cpp.o.d"
  "perf_sat"
  "perf_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
