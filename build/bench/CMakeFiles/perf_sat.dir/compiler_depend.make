# Empty compiler generated dependencies file for perf_sat.
# This may be replaced when dependencies are built.
