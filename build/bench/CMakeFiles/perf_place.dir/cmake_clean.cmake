file(REMOVE_RECURSE
  "CMakeFiles/perf_place.dir/perf_place.cpp.o"
  "CMakeFiles/perf_place.dir/perf_place.cpp.o.d"
  "perf_place"
  "perf_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
