# Empty compiler generated dependencies file for perf_place.
# This may be replaced when dependencies are built.
