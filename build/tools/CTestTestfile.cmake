# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_kbdd_smoke "sh" "-c" "printf 'var a b c\\nf = (a & b) | !c\\nsatcount f\\nsize f\\n' | /root/repo/build/tools/kbdd_lite | grep -q 'satisfying'")
set_tests_properties(tool_kbdd_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_minisat_smoke "sh" "-c" "printf 'p cnf 2 2\\n1 2 0\\n-1 2 0\\n' | /root/repo/build/tools/minisat_lite | grep -q SATISFIABLE")
set_tests_properties(tool_minisat_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_minisat_unsat "sh" "-c" "printf 'p cnf 1 2\\n1 0\\n-1 0\\n' | /root/repo/build/tools/minisat_lite | grep -q UNSATISFIABLE")
set_tests_properties(tool_minisat_unsat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_espresso_smoke "sh" "-c" "printf '.i 2\\n.o 1\\n00 1\\n01 1\\n10 1\\n11 1\\n.e\\n' | /root/repo/build/tools/espresso_lite | grep -q '.p 1'")
set_tests_properties(tool_espresso_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sis_smoke "sh" "-c" "printf 'read_blif -\\n.model t\\n.inputs a b\\n.outputs y\\n.names a b y\\n11 1\\n.end\\nprint_stats\\nscript.algebraic\\nquit\\n' | /root/repo/build/tools/sis_lite | grep -q 'literals'")
set_tests_properties(tool_sis_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_axb_smoke "sh" "-c" "printf '2\\n2 -1\\n-1 2\\n0 3\\n' | /root/repo/build/tools/axb | grep -q 'x ='")
set_tests_properties(tool_axb_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sis_sample "sh" "-c" "/root/repo/build/tools/sis_lite data/sample.sis | grep -q 'mapped:'")
set_tests_properties(tool_sis_sample PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_kbdd_sample "sh" "-c" "/root/repo/build/tools/kbdd_lite data/sample.kbdd | grep -q 'EQUAL'")
set_tests_properties(tool_kbdd_sample PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_minisat_sample "sh" "-c" "/root/repo/build/tools/minisat_lite data/sample.cnf | grep -q 'SATISFIABLE'")
set_tests_properties(tool_minisat_sample PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_espresso_sample "sh" "-c" "/root/repo/build/tools/espresso_lite data/sample.pla --exact | grep -q '.e'")
set_tests_properties(tool_espresso_sample PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_axb_sample "sh" "-c" "/root/repo/build/tools/axb data/sample.axb --cg | grep -q 'x ='")
set_tests_properties(tool_axb_sample PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;46;add_test;/root/repo/tools/CMakeLists.txt;0;")
