# Empty compiler generated dependencies file for axb.
# This may be replaced when dependencies are built.
