file(REMOVE_RECURSE
  "CMakeFiles/axb.dir/axb.cpp.o"
  "CMakeFiles/axb.dir/axb.cpp.o.d"
  "axb"
  "axb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
