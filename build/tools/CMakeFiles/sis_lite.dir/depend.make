# Empty dependencies file for sis_lite.
# This may be replaced when dependencies are built.
