file(REMOVE_RECURSE
  "CMakeFiles/sis_lite.dir/sis_lite.cpp.o"
  "CMakeFiles/sis_lite.dir/sis_lite.cpp.o.d"
  "sis_lite"
  "sis_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sis_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
