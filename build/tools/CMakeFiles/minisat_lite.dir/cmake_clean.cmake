file(REMOVE_RECURSE
  "CMakeFiles/minisat_lite.dir/minisat_lite.cpp.o"
  "CMakeFiles/minisat_lite.dir/minisat_lite.cpp.o.d"
  "minisat_lite"
  "minisat_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minisat_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
