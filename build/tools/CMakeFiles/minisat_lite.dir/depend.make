# Empty dependencies file for minisat_lite.
# This may be replaced when dependencies are built.
