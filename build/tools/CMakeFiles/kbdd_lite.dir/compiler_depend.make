# Empty compiler generated dependencies file for kbdd_lite.
# This may be replaced when dependencies are built.
