file(REMOVE_RECURSE
  "CMakeFiles/kbdd_lite.dir/kbdd_lite.cpp.o"
  "CMakeFiles/kbdd_lite.dir/kbdd_lite.cpp.o.d"
  "kbdd_lite"
  "kbdd_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbdd_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
