# Empty compiler generated dependencies file for espresso_lite.
# This may be replaced when dependencies are built.
