file(REMOVE_RECURSE
  "CMakeFiles/espresso_lite.dir/espresso_lite.cpp.o"
  "CMakeFiles/espresso_lite.dir/espresso_lite.cpp.o.d"
  "espresso_lite"
  "espresso_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
