file(REMOVE_RECURSE
  "libl2l_homework.a"
)
