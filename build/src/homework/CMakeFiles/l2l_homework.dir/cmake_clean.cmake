file(REMOVE_RECURSE
  "CMakeFiles/l2l_homework.dir/quiz.cpp.o"
  "CMakeFiles/l2l_homework.dir/quiz.cpp.o.d"
  "libl2l_homework.a"
  "libl2l_homework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_homework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
