
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/homework/quiz.cpp" "src/homework/CMakeFiles/l2l_homework.dir/quiz.cpp.o" "gcc" "src/homework/CMakeFiles/l2l_homework.dir/quiz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cubes/CMakeFiles/l2l_cubes.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/l2l_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/l2l_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/espresso/CMakeFiles/l2l_espresso.dir/DependInfo.cmake"
  "/root/repo/build/src/mls/CMakeFiles/l2l_mls.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/l2l_network.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/l2l_route.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/l2l_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/l2l_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/l2l_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/l2l_util.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/l2l_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/l2l_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
