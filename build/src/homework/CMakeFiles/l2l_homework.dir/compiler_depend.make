# Empty compiler generated dependencies file for l2l_homework.
# This may be replaced when dependencies are built.
