
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/bdd_build.cpp" "src/network/CMakeFiles/l2l_network.dir/bdd_build.cpp.o" "gcc" "src/network/CMakeFiles/l2l_network.dir/bdd_build.cpp.o.d"
  "/root/repo/src/network/blif.cpp" "src/network/CMakeFiles/l2l_network.dir/blif.cpp.o" "gcc" "src/network/CMakeFiles/l2l_network.dir/blif.cpp.o.d"
  "/root/repo/src/network/cnf.cpp" "src/network/CMakeFiles/l2l_network.dir/cnf.cpp.o" "gcc" "src/network/CMakeFiles/l2l_network.dir/cnf.cpp.o.d"
  "/root/repo/src/network/equivalence.cpp" "src/network/CMakeFiles/l2l_network.dir/equivalence.cpp.o" "gcc" "src/network/CMakeFiles/l2l_network.dir/equivalence.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/l2l_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/l2l_network.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cubes/CMakeFiles/l2l_cubes.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/l2l_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/l2l_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/l2l_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/l2l_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
