# Empty compiler generated dependencies file for l2l_network.
# This may be replaced when dependencies are built.
