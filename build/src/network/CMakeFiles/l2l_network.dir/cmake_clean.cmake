file(REMOVE_RECURSE
  "CMakeFiles/l2l_network.dir/bdd_build.cpp.o"
  "CMakeFiles/l2l_network.dir/bdd_build.cpp.o.d"
  "CMakeFiles/l2l_network.dir/blif.cpp.o"
  "CMakeFiles/l2l_network.dir/blif.cpp.o.d"
  "CMakeFiles/l2l_network.dir/cnf.cpp.o"
  "CMakeFiles/l2l_network.dir/cnf.cpp.o.d"
  "CMakeFiles/l2l_network.dir/equivalence.cpp.o"
  "CMakeFiles/l2l_network.dir/equivalence.cpp.o.d"
  "CMakeFiles/l2l_network.dir/network.cpp.o"
  "CMakeFiles/l2l_network.dir/network.cpp.o.d"
  "libl2l_network.a"
  "libl2l_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
