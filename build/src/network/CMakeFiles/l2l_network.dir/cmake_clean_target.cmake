file(REMOVE_RECURSE
  "libl2l_network.a"
)
