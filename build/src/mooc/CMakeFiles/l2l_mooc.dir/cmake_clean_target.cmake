file(REMOVE_RECURSE
  "libl2l_mooc.a"
)
