file(REMOVE_RECURSE
  "CMakeFiles/l2l_mooc.dir/cohort.cpp.o"
  "CMakeFiles/l2l_mooc.dir/cohort.cpp.o.d"
  "CMakeFiles/l2l_mooc.dir/datasets.cpp.o"
  "CMakeFiles/l2l_mooc.dir/datasets.cpp.o.d"
  "CMakeFiles/l2l_mooc.dir/wordcloud.cpp.o"
  "CMakeFiles/l2l_mooc.dir/wordcloud.cpp.o.d"
  "libl2l_mooc.a"
  "libl2l_mooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_mooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
