# Empty dependencies file for l2l_mooc.
# This may be replaced when dependencies are built.
