file(REMOVE_RECURSE
  "CMakeFiles/l2l_place.dir/annealing.cpp.o"
  "CMakeFiles/l2l_place.dir/annealing.cpp.o.d"
  "CMakeFiles/l2l_place.dir/legalize.cpp.o"
  "CMakeFiles/l2l_place.dir/legalize.cpp.o.d"
  "CMakeFiles/l2l_place.dir/quadratic.cpp.o"
  "CMakeFiles/l2l_place.dir/quadratic.cpp.o.d"
  "CMakeFiles/l2l_place.dir/wirelength.cpp.o"
  "CMakeFiles/l2l_place.dir/wirelength.cpp.o.d"
  "libl2l_place.a"
  "libl2l_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
