file(REMOVE_RECURSE
  "libl2l_place.a"
)
