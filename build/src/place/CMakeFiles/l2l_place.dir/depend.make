# Empty dependencies file for l2l_place.
# This may be replaced when dependencies are built.
