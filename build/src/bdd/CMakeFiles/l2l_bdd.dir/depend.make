# Empty dependencies file for l2l_bdd.
# This may be replaced when dependencies are built.
