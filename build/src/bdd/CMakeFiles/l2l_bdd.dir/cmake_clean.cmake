file(REMOVE_RECURSE
  "CMakeFiles/l2l_bdd.dir/bdd.cpp.o"
  "CMakeFiles/l2l_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/l2l_bdd.dir/manager.cpp.o"
  "CMakeFiles/l2l_bdd.dir/manager.cpp.o.d"
  "CMakeFiles/l2l_bdd.dir/reorder.cpp.o"
  "CMakeFiles/l2l_bdd.dir/reorder.cpp.o.d"
  "libl2l_bdd.a"
  "libl2l_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
