file(REMOVE_RECURSE
  "libl2l_bdd.a"
)
