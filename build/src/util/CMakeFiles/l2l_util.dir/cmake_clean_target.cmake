file(REMOVE_RECURSE
  "libl2l_util.a"
)
