# Empty dependencies file for l2l_util.
# This may be replaced when dependencies are built.
