file(REMOVE_RECURSE
  "CMakeFiles/l2l_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/l2l_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/l2l_util.dir/log.cpp.o"
  "CMakeFiles/l2l_util.dir/log.cpp.o.d"
  "CMakeFiles/l2l_util.dir/rng.cpp.o"
  "CMakeFiles/l2l_util.dir/rng.cpp.o.d"
  "CMakeFiles/l2l_util.dir/strings.cpp.o"
  "CMakeFiles/l2l_util.dir/strings.cpp.o.d"
  "libl2l_util.a"
  "libl2l_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
