file(REMOVE_RECURSE
  "CMakeFiles/l2l_repair.dir/repair.cpp.o"
  "CMakeFiles/l2l_repair.dir/repair.cpp.o.d"
  "libl2l_repair.a"
  "libl2l_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
