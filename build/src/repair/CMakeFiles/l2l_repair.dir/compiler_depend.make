# Empty compiler generated dependencies file for l2l_repair.
# This may be replaced when dependencies are built.
