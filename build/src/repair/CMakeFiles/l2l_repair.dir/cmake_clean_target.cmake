file(REMOVE_RECURSE
  "libl2l_repair.a"
)
