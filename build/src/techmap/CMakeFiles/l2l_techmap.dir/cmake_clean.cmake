file(REMOVE_RECURSE
  "CMakeFiles/l2l_techmap.dir/library.cpp.o"
  "CMakeFiles/l2l_techmap.dir/library.cpp.o.d"
  "CMakeFiles/l2l_techmap.dir/mapper.cpp.o"
  "CMakeFiles/l2l_techmap.dir/mapper.cpp.o.d"
  "CMakeFiles/l2l_techmap.dir/subject_graph.cpp.o"
  "CMakeFiles/l2l_techmap.dir/subject_graph.cpp.o.d"
  "libl2l_techmap.a"
  "libl2l_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
