# Empty compiler generated dependencies file for l2l_techmap.
# This may be replaced when dependencies are built.
