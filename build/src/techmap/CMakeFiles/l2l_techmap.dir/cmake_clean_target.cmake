file(REMOVE_RECURSE
  "libl2l_techmap.a"
)
