# Empty dependencies file for l2l_geom.
# This may be replaced when dependencies are built.
