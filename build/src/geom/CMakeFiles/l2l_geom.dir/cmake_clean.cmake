file(REMOVE_RECURSE
  "CMakeFiles/l2l_geom.dir/drc.cpp.o"
  "CMakeFiles/l2l_geom.dir/drc.cpp.o.d"
  "CMakeFiles/l2l_geom.dir/extract.cpp.o"
  "CMakeFiles/l2l_geom.dir/extract.cpp.o.d"
  "CMakeFiles/l2l_geom.dir/scanline.cpp.o"
  "CMakeFiles/l2l_geom.dir/scanline.cpp.o.d"
  "libl2l_geom.a"
  "libl2l_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
