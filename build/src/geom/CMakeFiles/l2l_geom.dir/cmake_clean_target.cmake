file(REMOVE_RECURSE
  "libl2l_geom.a"
)
