# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tt")
subdirs("cubes")
subdirs("bdd")
subdirs("sat")
subdirs("espresso")
subdirs("network")
subdirs("mls")
subdirs("techmap")
subdirs("linalg")
subdirs("gen")
subdirs("place")
subdirs("route")
subdirs("timing")
subdirs("repair")
subdirs("grader")
subdirs("mooc")
subdirs("flow")
subdirs("partition")
subdirs("geom")
subdirs("fault")
subdirs("viz")
subdirs("homework")
