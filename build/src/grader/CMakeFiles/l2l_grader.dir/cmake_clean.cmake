file(REMOVE_RECURSE
  "CMakeFiles/l2l_grader.dir/place_grader.cpp.o"
  "CMakeFiles/l2l_grader.dir/place_grader.cpp.o.d"
  "CMakeFiles/l2l_grader.dir/route_grader.cpp.o"
  "CMakeFiles/l2l_grader.dir/route_grader.cpp.o.d"
  "libl2l_grader.a"
  "libl2l_grader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_grader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
