file(REMOVE_RECURSE
  "libl2l_grader.a"
)
