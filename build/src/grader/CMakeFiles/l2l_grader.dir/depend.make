# Empty dependencies file for l2l_grader.
# This may be replaced when dependencies are built.
