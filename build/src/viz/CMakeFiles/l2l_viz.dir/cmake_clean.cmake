file(REMOVE_RECURSE
  "CMakeFiles/l2l_viz.dir/svg.cpp.o"
  "CMakeFiles/l2l_viz.dir/svg.cpp.o.d"
  "libl2l_viz.a"
  "libl2l_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
