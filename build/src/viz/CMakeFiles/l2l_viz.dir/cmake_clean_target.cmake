file(REMOVE_RECURSE
  "libl2l_viz.a"
)
