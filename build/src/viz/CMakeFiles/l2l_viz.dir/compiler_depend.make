# Empty compiler generated dependencies file for l2l_viz.
# This may be replaced when dependencies are built.
