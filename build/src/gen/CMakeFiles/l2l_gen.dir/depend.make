# Empty dependencies file for l2l_gen.
# This may be replaced when dependencies are built.
