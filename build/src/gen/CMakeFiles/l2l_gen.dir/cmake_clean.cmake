file(REMOVE_RECURSE
  "CMakeFiles/l2l_gen.dir/function_gen.cpp.o"
  "CMakeFiles/l2l_gen.dir/function_gen.cpp.o.d"
  "CMakeFiles/l2l_gen.dir/placement_gen.cpp.o"
  "CMakeFiles/l2l_gen.dir/placement_gen.cpp.o.d"
  "CMakeFiles/l2l_gen.dir/routing_gen.cpp.o"
  "CMakeFiles/l2l_gen.dir/routing_gen.cpp.o.d"
  "libl2l_gen.a"
  "libl2l_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
