file(REMOVE_RECURSE
  "libl2l_gen.a"
)
