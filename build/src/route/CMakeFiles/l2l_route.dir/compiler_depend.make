# Empty compiler generated dependencies file for l2l_route.
# This may be replaced when dependencies are built.
