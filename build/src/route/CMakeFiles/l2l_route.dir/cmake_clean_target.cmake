file(REMOVE_RECURSE
  "libl2l_route.a"
)
