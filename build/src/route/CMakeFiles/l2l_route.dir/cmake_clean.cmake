file(REMOVE_RECURSE
  "CMakeFiles/l2l_route.dir/maze.cpp.o"
  "CMakeFiles/l2l_route.dir/maze.cpp.o.d"
  "CMakeFiles/l2l_route.dir/router.cpp.o"
  "CMakeFiles/l2l_route.dir/router.cpp.o.d"
  "CMakeFiles/l2l_route.dir/solution.cpp.o"
  "CMakeFiles/l2l_route.dir/solution.cpp.o.d"
  "libl2l_route.a"
  "libl2l_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
