file(REMOVE_RECURSE
  "CMakeFiles/l2l_linalg.dir/cg.cpp.o"
  "CMakeFiles/l2l_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/l2l_linalg.dir/dense.cpp.o"
  "CMakeFiles/l2l_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/l2l_linalg.dir/sparse.cpp.o"
  "CMakeFiles/l2l_linalg.dir/sparse.cpp.o.d"
  "libl2l_linalg.a"
  "libl2l_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
