# Empty dependencies file for l2l_linalg.
# This may be replaced when dependencies are built.
