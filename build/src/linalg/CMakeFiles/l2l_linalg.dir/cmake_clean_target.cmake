file(REMOVE_RECURSE
  "libl2l_linalg.a"
)
