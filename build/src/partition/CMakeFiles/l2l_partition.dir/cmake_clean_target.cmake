file(REMOVE_RECURSE
  "libl2l_partition.a"
)
