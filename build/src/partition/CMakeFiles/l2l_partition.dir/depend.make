# Empty dependencies file for l2l_partition.
# This may be replaced when dependencies are built.
