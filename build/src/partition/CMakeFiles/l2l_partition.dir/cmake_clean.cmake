file(REMOVE_RECURSE
  "CMakeFiles/l2l_partition.dir/fm.cpp.o"
  "CMakeFiles/l2l_partition.dir/fm.cpp.o.d"
  "CMakeFiles/l2l_partition.dir/hypergraph.cpp.o"
  "CMakeFiles/l2l_partition.dir/hypergraph.cpp.o.d"
  "CMakeFiles/l2l_partition.dir/kl.cpp.o"
  "CMakeFiles/l2l_partition.dir/kl.cpp.o.d"
  "libl2l_partition.a"
  "libl2l_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
