# Empty compiler generated dependencies file for l2l_timing.
# This may be replaced when dependencies are built.
