file(REMOVE_RECURSE
  "CMakeFiles/l2l_timing.dir/elmore.cpp.o"
  "CMakeFiles/l2l_timing.dir/elmore.cpp.o.d"
  "CMakeFiles/l2l_timing.dir/sta.cpp.o"
  "CMakeFiles/l2l_timing.dir/sta.cpp.o.d"
  "libl2l_timing.a"
  "libl2l_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
