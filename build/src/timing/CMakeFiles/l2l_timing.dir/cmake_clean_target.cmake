file(REMOVE_RECURSE
  "libl2l_timing.a"
)
