file(REMOVE_RECURSE
  "CMakeFiles/l2l_mls.dir/factor.cpp.o"
  "CMakeFiles/l2l_mls.dir/factor.cpp.o.d"
  "CMakeFiles/l2l_mls.dir/kernels.cpp.o"
  "CMakeFiles/l2l_mls.dir/kernels.cpp.o.d"
  "CMakeFiles/l2l_mls.dir/passes.cpp.o"
  "CMakeFiles/l2l_mls.dir/passes.cpp.o.d"
  "CMakeFiles/l2l_mls.dir/script.cpp.o"
  "CMakeFiles/l2l_mls.dir/script.cpp.o.d"
  "CMakeFiles/l2l_mls.dir/sop.cpp.o"
  "CMakeFiles/l2l_mls.dir/sop.cpp.o.d"
  "libl2l_mls.a"
  "libl2l_mls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_mls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
