file(REMOVE_RECURSE
  "libl2l_mls.a"
)
