# Empty compiler generated dependencies file for l2l_mls.
# This may be replaced when dependencies are built.
