# Empty compiler generated dependencies file for l2l_fault.
# This may be replaced when dependencies are built.
