file(REMOVE_RECURSE
  "libl2l_fault.a"
)
