file(REMOVE_RECURSE
  "CMakeFiles/l2l_fault.dir/atpg.cpp.o"
  "CMakeFiles/l2l_fault.dir/atpg.cpp.o.d"
  "CMakeFiles/l2l_fault.dir/faults.cpp.o"
  "CMakeFiles/l2l_fault.dir/faults.cpp.o.d"
  "CMakeFiles/l2l_fault.dir/simulator.cpp.o"
  "CMakeFiles/l2l_fault.dir/simulator.cpp.o.d"
  "libl2l_fault.a"
  "libl2l_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
