# Empty dependencies file for l2l_espresso.
# This may be replaced when dependencies are built.
