
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/espresso/minimize.cpp" "src/espresso/CMakeFiles/l2l_espresso.dir/minimize.cpp.o" "gcc" "src/espresso/CMakeFiles/l2l_espresso.dir/minimize.cpp.o.d"
  "/root/repo/src/espresso/pla.cpp" "src/espresso/CMakeFiles/l2l_espresso.dir/pla.cpp.o" "gcc" "src/espresso/CMakeFiles/l2l_espresso.dir/pla.cpp.o.d"
  "/root/repo/src/espresso/qm.cpp" "src/espresso/CMakeFiles/l2l_espresso.dir/qm.cpp.o" "gcc" "src/espresso/CMakeFiles/l2l_espresso.dir/qm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cubes/CMakeFiles/l2l_cubes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/l2l_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/l2l_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
