file(REMOVE_RECURSE
  "CMakeFiles/l2l_espresso.dir/minimize.cpp.o"
  "CMakeFiles/l2l_espresso.dir/minimize.cpp.o.d"
  "CMakeFiles/l2l_espresso.dir/pla.cpp.o"
  "CMakeFiles/l2l_espresso.dir/pla.cpp.o.d"
  "CMakeFiles/l2l_espresso.dir/qm.cpp.o"
  "CMakeFiles/l2l_espresso.dir/qm.cpp.o.d"
  "libl2l_espresso.a"
  "libl2l_espresso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_espresso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
