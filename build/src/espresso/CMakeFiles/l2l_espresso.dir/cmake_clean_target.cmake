file(REMOVE_RECURSE
  "libl2l_espresso.a"
)
