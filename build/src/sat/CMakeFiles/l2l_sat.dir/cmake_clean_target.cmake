file(REMOVE_RECURSE
  "libl2l_sat.a"
)
