file(REMOVE_RECURSE
  "CMakeFiles/l2l_sat.dir/dimacs.cpp.o"
  "CMakeFiles/l2l_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/l2l_sat.dir/solver.cpp.o"
  "CMakeFiles/l2l_sat.dir/solver.cpp.o.d"
  "libl2l_sat.a"
  "libl2l_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
