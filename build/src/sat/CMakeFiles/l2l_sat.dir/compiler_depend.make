# Empty compiler generated dependencies file for l2l_sat.
# This may be replaced when dependencies are built.
