# Empty compiler generated dependencies file for l2l_cubes.
# This may be replaced when dependencies are built.
