file(REMOVE_RECURSE
  "libl2l_cubes.a"
)
