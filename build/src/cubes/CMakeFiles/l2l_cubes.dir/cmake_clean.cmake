file(REMOVE_RECURSE
  "CMakeFiles/l2l_cubes.dir/cover.cpp.o"
  "CMakeFiles/l2l_cubes.dir/cover.cpp.o.d"
  "CMakeFiles/l2l_cubes.dir/cube.cpp.o"
  "CMakeFiles/l2l_cubes.dir/cube.cpp.o.d"
  "CMakeFiles/l2l_cubes.dir/urp.cpp.o"
  "CMakeFiles/l2l_cubes.dir/urp.cpp.o.d"
  "libl2l_cubes.a"
  "libl2l_cubes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_cubes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
