
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cubes/cover.cpp" "src/cubes/CMakeFiles/l2l_cubes.dir/cover.cpp.o" "gcc" "src/cubes/CMakeFiles/l2l_cubes.dir/cover.cpp.o.d"
  "/root/repo/src/cubes/cube.cpp" "src/cubes/CMakeFiles/l2l_cubes.dir/cube.cpp.o" "gcc" "src/cubes/CMakeFiles/l2l_cubes.dir/cube.cpp.o.d"
  "/root/repo/src/cubes/urp.cpp" "src/cubes/CMakeFiles/l2l_cubes.dir/urp.cpp.o" "gcc" "src/cubes/CMakeFiles/l2l_cubes.dir/urp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/l2l_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/l2l_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
