file(REMOVE_RECURSE
  "CMakeFiles/l2l_flow.dir/flow.cpp.o"
  "CMakeFiles/l2l_flow.dir/flow.cpp.o.d"
  "libl2l_flow.a"
  "libl2l_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
