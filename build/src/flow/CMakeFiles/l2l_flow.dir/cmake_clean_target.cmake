file(REMOVE_RECURSE
  "libl2l_flow.a"
)
