# Empty compiler generated dependencies file for l2l_flow.
# This may be replaced when dependencies are built.
