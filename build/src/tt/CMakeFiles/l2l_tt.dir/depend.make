# Empty dependencies file for l2l_tt.
# This may be replaced when dependencies are built.
