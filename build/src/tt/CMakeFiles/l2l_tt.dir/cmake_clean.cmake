file(REMOVE_RECURSE
  "CMakeFiles/l2l_tt.dir/truth_table.cpp.o"
  "CMakeFiles/l2l_tt.dir/truth_table.cpp.o.d"
  "libl2l_tt.a"
  "libl2l_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2l_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
