file(REMOVE_RECURSE
  "libl2l_tt.a"
)
