# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tt_test[1]_include.cmake")
include("/root/repo/build/tests/cubes_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/espresso_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/mls_test[1]_include.cmake")
include("/root/repo/build/tests/techmap_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/grader_test[1]_include.cmake")
include("/root/repo/build/tests/mooc_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/homework_test[1]_include.cmake")
