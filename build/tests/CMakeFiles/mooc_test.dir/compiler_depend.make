# Empty compiler generated dependencies file for mooc_test.
# This may be replaced when dependencies are built.
