file(REMOVE_RECURSE
  "CMakeFiles/mooc_test.dir/mooc_test.cpp.o"
  "CMakeFiles/mooc_test.dir/mooc_test.cpp.o.d"
  "mooc_test"
  "mooc_test.pdb"
  "mooc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mooc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
