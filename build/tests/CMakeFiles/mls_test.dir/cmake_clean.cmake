file(REMOVE_RECURSE
  "CMakeFiles/mls_test.dir/mls_test.cpp.o"
  "CMakeFiles/mls_test.dir/mls_test.cpp.o.d"
  "mls_test"
  "mls_test.pdb"
  "mls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
