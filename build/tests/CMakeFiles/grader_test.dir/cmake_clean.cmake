file(REMOVE_RECURSE
  "CMakeFiles/grader_test.dir/grader_test.cpp.o"
  "CMakeFiles/grader_test.dir/grader_test.cpp.o.d"
  "grader_test"
  "grader_test.pdb"
  "grader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
