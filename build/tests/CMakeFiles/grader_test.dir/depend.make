# Empty dependencies file for grader_test.
# This may be replaced when dependencies are built.
