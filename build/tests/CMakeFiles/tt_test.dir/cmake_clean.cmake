file(REMOVE_RECURSE
  "CMakeFiles/tt_test.dir/tt_test.cpp.o"
  "CMakeFiles/tt_test.dir/tt_test.cpp.o.d"
  "tt_test"
  "tt_test.pdb"
  "tt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
