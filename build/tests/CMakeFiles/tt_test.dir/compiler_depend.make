# Empty compiler generated dependencies file for tt_test.
# This may be replaced when dependencies are built.
