file(REMOVE_RECURSE
  "CMakeFiles/cubes_test.dir/cubes_test.cpp.o"
  "CMakeFiles/cubes_test.dir/cubes_test.cpp.o.d"
  "cubes_test"
  "cubes_test.pdb"
  "cubes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
