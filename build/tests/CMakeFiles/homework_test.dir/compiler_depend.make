# Empty compiler generated dependencies file for homework_test.
# This may be replaced when dependencies are built.
