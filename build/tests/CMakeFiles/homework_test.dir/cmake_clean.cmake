file(REMOVE_RECURSE
  "CMakeFiles/homework_test.dir/homework_test.cpp.o"
  "CMakeFiles/homework_test.dir/homework_test.cpp.o.d"
  "homework_test"
  "homework_test.pdb"
  "homework_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
