#include "fault/simulator.hpp"

#include <stdexcept>

namespace l2l::fault {

using network::Network;
using network::NodeId;
using network::NodeType;

namespace {

/// Bit-parallel evaluation with one node forced to a constant (the fault).
std::vector<std::uint64_t> simulate_with_fault(
    const Network& net, const std::vector<NodeId>& order,
    const std::vector<std::uint64_t>& input_words, const Fault& fault) {
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net.num_nodes()), 0);
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    value[static_cast<std::size_t>(net.inputs()[i])] = input_words[i];
  for (const NodeId id : order) {
    const auto& n = net.node(id);
    if (n.type != NodeType::kInput) {
      std::uint64_t acc = 0;
      for (const auto& cube : n.cover.cubes()) {
        std::uint64_t term = ~0ull;
        for (std::size_t k = 0; k < n.fanins.size(); ++k) {
          const auto code = cube.code(static_cast<int>(k));
          const std::uint64_t w = value[static_cast<std::size_t>(n.fanins[k])];
          if (code == cubes::Pcn::kPos) term &= w;
          else if (code == cubes::Pcn::kNeg) term &= ~w;
          else if (code == cubes::Pcn::kEmpty) term = 0;
        }
        acc |= term;
      }
      value[static_cast<std::size_t>(id)] = acc;
    }
    if (id == fault.node)
      value[static_cast<std::size_t>(id)] = fault.stuck_value ? ~0ull : 0ull;
  }
  return value;
}

}  // namespace

FaultSimResult simulate_faults(const Network& net,
                               const std::vector<Fault>& faults,
                               const std::vector<std::vector<bool>>& patterns) {
  FaultSimResult res;
  res.total_faults = static_cast<int>(faults.size());
  std::vector<bool> detected(faults.size(), false);
  const auto order = net.topological_order();

  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    std::vector<std::uint64_t> words(net.inputs().size(), 0);
    for (std::size_t k = 0; k < count; ++k) {
      const auto& pat = patterns[base + k];
      if (pat.size() != net.inputs().size())
        throw std::invalid_argument("simulate_faults: pattern arity mismatch");
      for (std::size_t i = 0; i < pat.size(); ++i)
        if (pat[i]) words[i] |= 1ull << k;
    }
    const std::uint64_t live_mask =
        count == 64 ? ~0ull : ((1ull << count) - 1);

    const auto good = net.simulate64(words);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detected[f]) continue;
      const auto bad = simulate_with_fault(net, order, words, faults[f]);
      for (const NodeId o : net.outputs()) {
        if ((good[static_cast<std::size_t>(o)] ^
             bad[static_cast<std::size_t>(o)]) & live_mask) {
          detected[f] = true;
          break;
        }
      }
    }
  }
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected[f])
      ++res.detected;
    else
      res.undetected.push_back(faults[f]);
  }
  return res;
}

FaultSimResult random_pattern_coverage(const Network& net,
                                       const std::vector<Fault>& faults,
                                       int num_patterns, util::Rng& rng) {
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(static_cast<std::size_t>(num_patterns));
  for (int k = 0; k < num_patterns; ++k) {
    std::vector<bool> pat;
    pat.reserve(net.inputs().size());
    for (std::size_t i = 0; i < net.inputs().size(); ++i)
      pat.push_back(rng.next_bool());
    patterns.push_back(std::move(pat));
  }
  return simulate_faults(net, faults, patterns);
}

}  // namespace l2l::fault
