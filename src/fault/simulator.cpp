#include "fault/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/parallel.hpp"

namespace l2l::fault {

using network::Network;
using network::NodeId;
using network::NodeType;

namespace {

/// Bit-parallel evaluation with one node forced to a constant (the fault).
std::vector<std::uint64_t> simulate_with_fault(
    const Network& net, const std::vector<NodeId>& order,
    const std::vector<std::uint64_t>& input_words, const Fault& fault) {
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net.num_nodes()), 0);
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    value[static_cast<std::size_t>(net.inputs()[i])] = input_words[i];
  for (const NodeId id : order) {
    const auto& n = net.node(id);
    if (n.type != NodeType::kInput) {
      std::uint64_t acc = 0;
      for (const auto& cube : n.cover.cubes()) {
        std::uint64_t term = ~0ull;
        for (std::size_t k = 0; k < n.fanins.size(); ++k) {
          const auto code = cube.code(static_cast<int>(k));
          const std::uint64_t w = value[static_cast<std::size_t>(n.fanins[k])];
          if (code == cubes::Pcn::kPos) term &= w;
          else if (code == cubes::Pcn::kNeg) term &= ~w;
          else if (code == cubes::Pcn::kEmpty) term = 0;
        }
        acc |= term;
      }
      value[static_cast<std::size_t>(id)] = acc;
    }
    if (id == fault.node)
      value[static_cast<std::size_t>(id)] = fault.stuck_value ? ~0ull : 0ull;
  }
  return value;
}

}  // namespace

FaultSimResult simulate_faults(const Network& net,
                               const std::vector<Fault>& faults,
                               const std::vector<std::vector<bool>>& patterns) {
  FaultSimResult res;
  res.total_faults = static_cast<int>(faults.size());
  const auto order = net.topological_order();

  // Pack the pattern batches and run the good machine once, up front; the
  // per-fault work then only reads this shared state.
  struct Batch {
    std::vector<std::uint64_t> words;
    std::uint64_t live_mask = 0;
    std::vector<std::uint64_t> good;
  };
  std::vector<Batch> batches;
  batches.reserve((patterns.size() + 63) / 64);
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    Batch batch;
    batch.words.assign(net.inputs().size(), 0);
    for (std::size_t k = 0; k < count; ++k) {
      const auto& pat = patterns[base + k];
      if (pat.size() != net.inputs().size())
        throw std::invalid_argument("simulate_faults: pattern arity mismatch");
      for (std::size_t i = 0; i < pat.size(); ++i)
        if (pat[i]) batch.words[i] |= 1ull << k;
    }
    batch.live_mask = count == 64 ? ~0ull : ((1ull << count) - 1);
    batch.good = net.simulate64(batch.words);
    batches.push_back(std::move(batch));
  }

  // Faults are independent: partition the fault list across the workers.
  // Each lane writes only its own detected[] bytes (uint8_t, not the
  // bit-packed vector<bool>, so neighbouring writes never share a byte);
  // the per-worker results merge into the output sequentially in fault
  // order below, so the report is identical at any thread count.
  std::vector<std::uint8_t> detected(faults.size(), 0);
  constexpr std::int64_t kFaultGrain = 4;
  util::parallel_for(
      0, static_cast<std::int64_t>(faults.size()), kFaultGrain,
      [&](std::int64_t f) {
        for (const auto& batch : batches) {
          const auto bad =
              simulate_with_fault(net, order, batch.words,
                                  faults[static_cast<std::size_t>(f)]);
          bool hit = false;
          for (const NodeId o : net.outputs()) {
            if ((batch.good[static_cast<std::size_t>(o)] ^
                 bad[static_cast<std::size_t>(o)]) & batch.live_mask) {
              hit = true;
              break;
            }
          }
          if (hit) {
            detected[static_cast<std::size_t>(f)] = 1;
            break;  // first detecting batch suffices, as before
          }
        }
      });

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected[f])
      ++res.detected;
    else
      res.undetected.push_back(faults[f]);
  }
  return res;
}

FaultSimResult random_pattern_coverage(const Network& net,
                                       const std::vector<Fault>& faults,
                                       int num_patterns, util::Rng& rng) {
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(static_cast<std::size_t>(num_patterns));
  for (int k = 0; k < num_patterns; ++k) {
    std::vector<bool> pat;
    pat.reserve(net.inputs().size());
    for (std::size_t i = 0; i < net.inputs().size(); ++i)
      pat.push_back(rng.next_bool());
    patterns.push_back(std::move(pat));
  }
  return simulate_faults(net, faults, patterns);
}

}  // namespace l2l::fault
