#pragma once
// Stuck-at fault machinery -- the "test" topic the course had to omit
// (§2.1) and survey respondents asked for (Fig. 11). Single stuck-at
// faults on node outputs, with equivalence-free enumeration and simple
// structural collapsing.

#include <string>
#include <vector>

#include "network/network.hpp"

namespace l2l::fault {

struct Fault {
  network::NodeId node = network::kNoNode;  ///< faulty signal (node output)
  bool stuck_value = false;                 ///< stuck-at-0 or stuck-at-1

  bool operator==(const Fault&) const = default;
  std::string to_string(const network::Network& net) const;
};

/// All single stuck-at faults on live node outputs (2 per node).
std::vector<Fault> enumerate_faults(const network::Network& net);

/// Cheap structural collapsing: for a single-fanin node whose function is
/// a buffer or inverter, the output faults are equivalent to (possibly
/// inverted) input faults and are dropped. Returns the collapsed list.
std::vector<Fault> collapse_faults(const network::Network& net,
                                   const std::vector<Fault>& faults);

}  // namespace l2l::fault
