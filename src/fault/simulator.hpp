#pragma once
// Parallel-pattern stuck-at fault simulation: 64 input vectors per pass
// using the network's bit-parallel simulator; a fault is detected when
// any primary output differs from the good machine on any pattern.

#include <vector>

#include "fault/faults.hpp"
#include "util/rng.hpp"

namespace l2l::fault {

struct FaultSimResult {
  int total_faults = 0;
  int detected = 0;
  std::vector<Fault> undetected;
  double coverage() const {
    return total_faults ? static_cast<double>(detected) / total_faults : 1.0;
  }
};

/// Simulate explicit patterns (each pattern = one bool per primary input).
FaultSimResult simulate_faults(const network::Network& net,
                               const std::vector<Fault>& faults,
                               const std::vector<std::vector<bool>>& patterns);

/// Random-pattern fault grading: `num_patterns` seeded random vectors.
FaultSimResult random_pattern_coverage(const network::Network& net,
                                       const std::vector<Fault>& faults,
                                       int num_patterns, util::Rng& rng);

}  // namespace l2l::fault
