#include "fault/atpg.hpp"

#include <stdexcept>

#include "network/cnf.hpp"
#include "sat/solver.hpp"

namespace l2l::fault {

using network::Network;
using network::NodeId;

namespace {

/// Structural fault injection: a copy of the network where the faulty
/// signal is replaced by the stuck constant. For logic nodes the node's
/// function becomes the constant; for primary inputs a constant node is
/// spliced into every consumer (the input itself stays on the interface).
Network inject_structural(const Network& net, const Fault& fault) {
  Network copy = net;
  if (copy.node(fault.node).type == network::NodeType::kInput) {
    const auto k = copy.add_constant("atpg_const", fault.stuck_value);
    for (NodeId id = 0; id < copy.num_nodes(); ++id) {
      if (copy.is_dead(id) || id == k) continue;
      if (copy.node(id).type != network::NodeType::kLogic) continue;
      auto fanins = copy.node(id).fanins;
      bool touched = false;
      for (auto& f : fanins)
        if (f == fault.node) {
          f = k;
          touched = true;
        }
      if (touched) copy.set_function(id, fanins, copy.node(id).cover);
    }
    return copy;
  }
  copy.set_function(fault.node, {},
                    fault.stuck_value ? cubes::Cover::universal(0)
                                      : cubes::Cover(0));
  return copy;
}

/// Shared miter construction: good and faulty copies over tied inputs,
/// returns the solver primed with "some output differs".
struct Miter {
  sat::Solver solver;
  network::CnfMapping good;
};

void build_miter(const Network& net, const Network& faulty, Miter& m) {
  using sat::mk_lit;
  m.good = network::encode_network(net, m.solver);
  const auto bad = network::encode_network(faulty, m.solver);
  for (std::size_t i = 0; i < net.inputs().size(); ++i) {
    const auto a = m.good.node_var[static_cast<std::size_t>(net.inputs()[i])];
    const auto b = bad.node_var[static_cast<std::size_t>(faulty.inputs()[i])];
    m.solver.add_clause({mk_lit(a, true), mk_lit(b, false)});
    m.solver.add_clause({mk_lit(a, false), mk_lit(b, true)});
  }
  std::vector<sat::Lit> any_diff;
  for (std::size_t o = 0; o < net.outputs().size(); ++o) {
    const auto ya = m.good.node_var[static_cast<std::size_t>(net.outputs()[o])];
    const auto yb = bad.node_var[static_cast<std::size_t>(faulty.outputs()[o])];
    const auto d = m.solver.new_var();
    m.solver.add_clause({mk_lit(d, true), mk_lit(ya, false), mk_lit(yb, false)});
    m.solver.add_clause({mk_lit(d, true), mk_lit(ya, true), mk_lit(yb, true)});
    m.solver.add_clause({mk_lit(d, false), mk_lit(ya, false), mk_lit(yb, true)});
    m.solver.add_clause({mk_lit(d, false), mk_lit(ya, true), mk_lit(yb, false)});
    any_diff.push_back(mk_lit(d, false));
  }
  m.solver.add_clause(any_diff);
}

}  // namespace

std::optional<std::vector<bool>> generate_test(const Network& net,
                                               const Fault& fault) {
  const Network faulty = inject_structural(net, fault);
  Miter m;
  build_miter(net, faulty, m);
  if (m.solver.solve() != sat::LBool::kTrue) return std::nullopt;
  std::vector<bool> vec;
  vec.reserve(net.inputs().size());
  for (const NodeId in : net.inputs())
    vec.push_back(
        m.solver.model_value(m.good.node_var[static_cast<std::size_t>(in)]));
  return vec;
}

AtpgResult run_atpg(const Network& net, const std::vector<Fault>& faults) {
  AtpgResult res;
  for (const auto& fault : faults) {
    auto vec = generate_test(net, fault);
    if (vec) {
      // Verify by simulation: the vector must actually detect the fault.
      const auto check = simulate_faults(net, {fault}, {*vec});
      if (check.detected == 1) {
        ++res.testable;
        res.tests.emplace_back(fault, std::move(*vec));
        continue;
      }
    }
    ++res.untestable;
    res.redundant.push_back(fault);
  }
  return res;
}

}  // namespace l2l::fault
