#pragma once
// SAT-based automatic test pattern generation: encode the good and faulty
// machines over shared inputs, assert some output differs, and solve. A
// satisfying model IS the test vector; UNSAT proves the fault untestable
// (redundant logic). Reuses the Week-2 miter machinery end to end.

#include <optional>

#include "fault/faults.hpp"
#include "fault/simulator.hpp"

namespace l2l::fault {

struct AtpgResult {
  /// Test vector per detectable fault order; nullopt = untestable.
  int testable = 0;
  int untestable = 0;
  std::vector<std::pair<Fault, std::vector<bool>>> tests;
  std::vector<Fault> redundant;
};

/// Generate a test vector for one fault; nullopt when untestable.
std::optional<std::vector<bool>> generate_test(const network::Network& net,
                                               const Fault& fault);

/// Run ATPG over a fault list. Each generated vector is verified by fault
/// simulation before being accepted (belt and braces).
AtpgResult run_atpg(const network::Network& net,
                    const std::vector<Fault>& faults);

}  // namespace l2l::fault
