#include "fault/faults.hpp"

#include "util/strings.hpp"

namespace l2l::fault {

using network::Network;
using network::NodeId;
using network::NodeType;

std::string Fault::to_string(const Network& net) const {
  return util::format("%s stuck-at-%d", net.node(node).name.c_str(),
                      stuck_value ? 1 : 0);
}

std::vector<Fault> enumerate_faults(const Network& net) {
  std::vector<Fault> out;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.is_dead(id)) continue;
    out.push_back({id, false});
    out.push_back({id, true});
  }
  return out;
}

std::vector<Fault> collapse_faults(const Network& net,
                                   const std::vector<Fault>& faults) {
  std::vector<Fault> out;
  for (const auto& f : faults) {
    const auto& n = net.node(f.node);
    if (n.type == NodeType::kLogic && n.fanins.size() == 1 &&
        n.cover.size() <= 1 && n.cover.num_literals() == 1) {
      // Buffer or inverter: output faults are equivalent to input faults.
      continue;
    }
    out.push_back(f);
  }
  return out;
}

}  // namespace l2l::fault
