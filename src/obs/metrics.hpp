#pragma once
// Deterministic metrics for every engine and service: named counters,
// gauges, and fixed-bucket histograms collected into per-thread shards.
//
// The MOOC's operators ran five cloud tools and two project graders at
// planet scale; understanding *why* a submission was slow, retried, or
// budget-killed needs per-stage numbers that are comparable across
// machines. The design contract mirrors the threading substrate's:
//
//   **Every deterministic metric is bit-identical at any L2L_THREADS.**
//
// Three rules deliver it:
//
//  1. Engines update metrics at deterministic algorithmic boundaries
//     (end of a solve, a negotiation iteration, a region solve, a
//     submission fold) -- inner loops keep accumulating into their cheap
//     local stats structs and flush the delta once, so instrumentation
//     costs nothing per iteration.
//  2. Counter, gauge-max, and histogram merges are commutative integer
//     sums/maxes over per-thread shards, so the totals cannot depend on
//     which lane did the work. Plain gauge_set is last-write and therefore
//     only legal from sequential program points.
//  3. Export renders names in sorted order, so the deterministic section
//     of the report is byte-stable (a golden file can pin it down).
//
// Wall-clock durations are *never* part of the deterministic export; they
// live in the span tracer (trace.hpp) and in the separate
// "nondeterministic" report section.
//
// Kill switch: L2L_OBS=0 disables collection at runtime. The flag is read
// once and cached; every entry point checks it once per flush/span, never
// per inner-loop increment.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace l2l::obs {

/// Collection on/off. Defaults to on; L2L_OBS=0 in the environment turns
/// it off (read once, cached).
bool enabled();

/// Test/bench override of the cached kill switch.
void set_enabled(bool on);

// ---- histograms ---------------------------------------------------------

/// Fixed power-of-two bucket edges: bucket i < kHistogramBuckets-1 counts
/// values <= 2^i; the last bucket is the overflow (+inf) bucket. Fixed
/// edges make shard merges element-wise integer sums.
inline constexpr int kHistogramBuckets = 22;

/// Upper bound of bucket i (1, 2, 4, ..., 2^20); the last bucket has no
/// bound (returns INT64_MAX).
std::int64_t histogram_bucket_bound(int i);

/// Index of the bucket that counts `v` (values < 1 land in bucket 0).
int histogram_bucket_index(std::int64_t v);

struct HistogramData {
  std::array<std::int64_t, kHistogramBuckets> buckets{};
  std::int64_t count = 0;
  std::int64_t sum = 0;

  void observe(std::int64_t v) {
    buckets[static_cast<std::size_t>(histogram_bucket_index(v))] += 1;
    count += 1;
    sum += v;
  }
  void merge(const HistogramData& o) {
    for (int i = 0; i < kHistogramBuckets; ++i)
      buckets[static_cast<std::size_t>(i)] +=
          o.buckets[static_cast<std::size_t>(i)];
    count += o.count;
    sum += o.sum;
  }
};

// ---- registry -----------------------------------------------------------

/// A merged, name-sorted view of the registry at one instant.
struct Snapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// The metrics store. Each mutating call lands in the calling thread's
/// shard (created on first touch, guarded by an uncontended per-shard
/// mutex); snapshot() locks the shard list and folds every shard with
/// commutative merges, then sorts by name -- so both the values and the
/// rendered bytes are independent of the thread schedule.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every engine reports into.
  static Registry& global();

  /// Add `delta` to counter `name` (monotone event tallies).
  void count(std::string_view name, std::int64_t delta = 1);

  /// Set gauge `name` (point-in-time value). Last write wins, so only
  /// call from sequential program points; use gauge_max under parallelism.
  void gauge_set(std::string_view name, std::int64_t value);

  /// Raise gauge `name` to at least `value` (commutative, parallel-safe).
  void gauge_max(std::string_view name, std::int64_t value);

  /// Record `value` into histogram `name`.
  void observe(std::string_view name, std::int64_t value);

  /// Merged view of every shard.
  Snapshot snapshot() const;

  /// The deterministic report section: counters, gauges, and histograms,
  /// one per line, sorted by name. Byte-identical at any L2L_THREADS for
  /// a deterministic workload -- this is what the golden-file test pins.
  std::string export_deterministic_text() const;

  /// Drop every recorded value (shards stay registered for their threads).
  void reset();

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;  // distinguishes registries in thread caches
  mutable std::mutex mu_;   // guards shards_ and gauges
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::int64_t> gauges_;
};

// ---- convenience entry points on the global registry --------------------
// All of them are no-ops when the kill switch is off; the check is one
// cached boolean load.

void count(std::string_view name, std::int64_t delta = 1);
void gauge_set(std::string_view name, std::int64_t value);
void gauge_max(std::string_view name, std::int64_t value);
void observe(std::string_view name, std::int64_t value);

}  // namespace l2l::obs
