#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"

namespace l2l::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct Tracer::Impl {
  struct Shard {
    std::mutex mu;
    int tid = 0;
    std::vector<SpanEvent> events;
  };

  std::mutex mu;  // guards shards and anchor
  std::vector<std::unique_ptr<Shard>> shards;
  std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  std::uint64_t epoch = 1;  // bumped by reset() to invalidate thread caches
  std::uint64_t id = 0;

  Shard& local_shard();
};

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

struct TraceShardCacheEntry {
  std::uint64_t tracer_id = 0;
  std::uint64_t epoch = 0;
  void* shard = nullptr;  // Tracer::Impl::Shard* (type is private)
};
thread_local TraceShardCacheEntry t_trace_cache;

}  // namespace

Tracer::Impl::Shard& Tracer::Impl::local_shard() {
  if (t_trace_cache.tracer_id == id && t_trace_cache.epoch == epoch &&
      t_trace_cache.shard != nullptr)
    return *static_cast<Shard*>(t_trace_cache.shard);
  std::lock_guard<std::mutex> lock(mu);
  shards.push_back(std::make_unique<Shard>());
  Shard* s = shards.back().get();
  s->tid = static_cast<int>(shards.size());
  t_trace_cache = {id, epoch, s};
  return *s;
}

Tracer::Tracer() : impl_(new Impl()) {
  impl_->id = g_next_tracer_id.fetch_add(1);
}

Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // leaked: threads may outlive exit
  return *t;
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - impl_->anchor)
      .count();
}

void Tracer::record(std::string_view name, std::string_view category,
                    std::int64_t start_us, std::int64_t duration_us) {
  Impl::Shard& s = impl_->local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= kMaxEventsPerShard) {
    obs::count("obs.trace.dropped");
    return;
  }
  SpanEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.start_us = start_us;
  e.duration_us = duration_us;
  e.tid = s.tid;
  s.events.push_back(std::move(e));
}

std::string Tracer::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> slock(shard->mu);
    for (const SpanEvent& e : shard->events) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      append_json_escaped(out, e.name);
      out += "\",\"cat\":\"";
      append_json_escaped(out, e.category.empty() ? "l2l" : e.category);
      out += "\",\"ph\":\"X\",\"ts\":";
      out += std::to_string(e.start_us);
      out += ",\"dur\":";
      out += std::to_string(e.duration_us);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(e.tid);
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string Tracer::text() const {
  std::map<std::string, SpanTotal> totals;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& shard : impl_->shards) {
      std::lock_guard<std::mutex> slock(shard->mu);
      for (const SpanEvent& e : shard->events) {
        SpanTotal& t = totals[e.name];
        t.count += 1;
        t.total_us += e.duration_us;
      }
    }
  }
  std::ostringstream os;
  for (const auto& [name, t] : totals)
    os << "span " << name << " count " << t.count << " total_us "
       << t.total_us << '\n';
  return os.str();
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->shards.clear();
  impl_->anchor = std::chrono::steady_clock::now();
  impl_->epoch += 1;  // any cached shard pointer is now stale
}

// ---- ScopedSpan ---------------------------------------------------------

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  active_ = true;
  name_ = std::string(name);
  category_ = std::string(category);
  start_us_ = Tracer::global().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::int64_t end = Tracer::global().now_us();
  Tracer::global().record(name_, category_, start_us_, end - start_us_);
  // Span counts are deterministic (one per scope entered); only the
  // durations above are wall-clock.
  Registry::global().count(std::string("span.") + name_);
}

// ---- combined report + file export --------------------------------------

std::string metrics_report() {
  std::string out = Registry::global().export_deterministic_text();
  out += "# nondeterministic\n";
  out += Tracer::global().text();
  return out;
}

bool write_metrics_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << metrics_report();
  return static_cast<bool>(f);
}

bool write_trace_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << Tracer::global().chrome_json();
  return static_cast<bool>(f);
}

ExportOnExit::~ExportOnExit() {
  if (!metrics_path.empty()) write_metrics_file(metrics_path);
  if (!trace_path.empty()) write_trace_file(trace_path);
}

}  // namespace l2l::obs
