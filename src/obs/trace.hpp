#pragma once
// Span-based tracing: ScopedSpan marks an interval of work (a flow stage,
// a SAT solve, one graded submission) and the Tracer collects completed
// spans into per-thread shards.
//
// Determinism split: every finished span also increments the counter
// `span.<name>` in the metrics registry -- span *counts* are part of the
// deterministic export. Wall-clock timestamps and durations are not; they
// appear only in the Chrome-trace JSON and in the clearly-labelled
// nondeterministic section of metrics_report().
//
// Chrome-trace export is the standard catapult format: open the file at
// chrome://tracing or https://ui.perfetto.dev and every span renders as a
// complete ("ph":"X") event on its thread's track. See DESIGN.md
// ("Observability") for a walkthrough of a grading-queue drain trace.

#include <cstdint>
#include <string>
#include <string_view>

namespace l2l::obs {

/// One completed span: microsecond start offset from the tracer's anchor
/// plus duration, on the recording thread's track.
struct SpanEvent {
  std::string name;
  std::string category;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  int tid = 0;
};

/// Aggregated per-name totals (for the plain-text export).
struct SpanTotal {
  std::int64_t count = 0;
  std::int64_t total_us = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every ScopedSpan reports into.
  static Tracer& global();

  /// Record a completed span (called by ~ScopedSpan; usable directly for
  /// intervals measured by other means). Shards are capped; once a thread
  /// has recorded kMaxEventsPerShard events further ones are dropped
  /// (the drop count is available as the counter `obs.trace.dropped`).
  void record(std::string_view name, std::string_view category,
              std::int64_t start_us, std::int64_t duration_us);

  /// Microseconds since this tracer's steady-clock anchor.
  std::int64_t now_us() const;

  /// Chrome-trace JSON ({"traceEvents":[...]}): load in chrome://tracing
  /// or Perfetto. Wall-clock values -- never part of deterministic output.
  std::string chrome_json() const;

  /// Plain-text aggregate: `span <name> count <n> total_us <t>` sorted by
  /// name. total_us is wall-clock and therefore nondeterministic.
  std::string text() const;

  /// Drop all recorded events and reset the clock anchor.
  void reset();

  static constexpr std::size_t kMaxEventsPerShard = std::size_t{1} << 16;

 private:
  struct Impl;
  Impl* impl_;
};

/// RAII span. The kill switch is checked once at construction; a disabled
/// span costs two branches total. On destruction the span is recorded in
/// the global tracer and `span.<name>` is incremented in the metrics
/// registry (deterministic count, nondeterministic duration).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::string category_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

// ---- combined report + file export --------------------------------------

/// The full metrics report: the deterministic section (registry export,
/// byte-stable across L2L_THREADS) followed by a `# nondeterministic`
/// header and the span duration aggregates.
std::string metrics_report();

/// Write metrics_report() / chrome_json() to `path`. Returns false (and
/// leaves no partial file guarantee) if the file cannot be opened.
bool write_metrics_file(const std::string& path);
bool write_trace_file(const std::string& path);

/// Tool-side helper: declare one at the top of main(), point it at the
/// --metrics/--trace paths (empty = skip), and the files are written on
/// every exit path that unwinds the stack.
class ExportOnExit {
 public:
  ExportOnExit() = default;
  ~ExportOnExit();
  ExportOnExit(const ExportOnExit&) = delete;
  ExportOnExit& operator=(const ExportOnExit&) = delete;

  std::string metrics_path;
  std::string trace_path;
};

}  // namespace l2l::obs
