#include "obs/metrics.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

namespace l2l::obs {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet resolved from env

bool resolve_enabled_from_env() {
  const char* v = std::getenv("L2L_OBS");
  if (v == nullptr) return true;
  std::string s(v);
  return !(s == "0" || s == "off" || s == "false" || s == "no");
}

}  // namespace

bool enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    e = resolve_enabled_from_env() ? 1 : 0;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::int64_t histogram_bucket_bound(int i) {
  if (i < 0) return 0;
  if (i >= kHistogramBuckets - 1)
    return std::numeric_limits<std::int64_t>::max();
  return std::int64_t{1} << i;
}

int histogram_bucket_index(std::int64_t v) {
  if (v <= 1) return 0;
  // Smallest i with v <= 2^i; 64 - clz(v - 1) for v >= 2.
  int i = 64 - std::countl_zero(static_cast<std::uint64_t>(v - 1));
  return i < kHistogramBuckets - 1 ? i : kHistogramBuckets - 1;
}

// ---- registry -----------------------------------------------------------

struct Registry::Shard {
  std::mutex mu;  // uncontended on the owning thread's hot path
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, std::int64_t, std::less<>> gauge_maxes;
  std::map<std::string, HistogramData, std::less<>> histograms;
};

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

// Per-thread cache of (registry id -> shard). Keyed by id, not address,
// so a destroyed-and-reallocated registry can never alias a stale entry.
struct ShardCacheEntry {
  std::uint64_t registry_id = 0;
  void* shard = nullptr;  // Registry::Shard* (type is private to Registry)
};
thread_local ShardCacheEntry t_shard_cache;

}  // namespace

Registry::Registry() : id_(g_next_registry_id.fetch_add(1)) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: threads may outlive exit
  return *r;
}

Registry::Shard& Registry::local_shard() {
  if (t_shard_cache.registry_id == id_ && t_shard_cache.shard != nullptr)
    return *static_cast<Shard*>(t_shard_cache.shard);
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  t_shard_cache = {id_, s};
  return *s;
}

void Registry::count(std::string_view name, std::int64_t delta) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    s.counters.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void Registry::gauge_set(std::string_view name, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

void Registry::gauge_max(std::string_view name, std::int64_t value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauge_maxes.find(name);
  if (it == s.gauge_maxes.end())
    s.gauge_maxes.emplace(std::string(name), value);
  else if (value > it->second)
    it->second = value;
}

void Registry::observe(std::string_view name, std::int64_t value) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    HistogramData h;
    h.observe(value);
    s.histograms.emplace(std::string(name), h);
  } else {
    it->second.observe(value);
  }
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.gauges = gauges_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, v] : shard->gauge_maxes) {
      auto it = out.gauges.find(name);
      if (it == out.gauges.end())
        out.gauges.emplace(name, v);
      else if (v > it->second)
        it->second = v;
    }
    for (const auto& [name, h] : shard->histograms)
      out.histograms[name].merge(h);
  }
  return out;
}

std::string Registry::export_deterministic_text() const {
  Snapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters)
    os << "counter " << name << ' ' << v << '\n';
  for (const auto& [name, v] : snap.gauges)
    os << "gauge " << name << ' ' << v << '\n';
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram " << name << " count " << h.count << " sum " << h.sum;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      const std::int64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      os << " le";
      if (i >= kHistogramBuckets - 1)
        os << "_inf";
      else
        os << histogram_bucket_bound(i);
      os << ':' << n;
    }
    os << '\n';
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.clear();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    shard->counters.clear();
    shard->gauge_maxes.clear();
    shard->histograms.clear();
  }
}

// ---- free helpers -------------------------------------------------------

void count(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  Registry::global().count(name, delta);
}

void gauge_set(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  Registry::global().gauge_set(name, value);
}

void gauge_max(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  Registry::global().gauge_max(name, value);
}

void observe(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  Registry::global().observe(name, value);
}

}  // namespace l2l::obs
