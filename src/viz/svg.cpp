#include "viz/svg.hpp"

#include <set>

#include "util/strings.hpp"

namespace l2l::viz {
namespace {

std::string svg_header(int w, int h) {
  return util::format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n"
      "<rect width=\"%d\" height=\"%d\" fill=\"#fafafa\"/>\n",
      w, h, w, h, w, h);
}

/// Deterministic categorical color per net id.
std::string net_color(int id) {
  static const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                   "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                                   "#bcbd22", "#17becf"};
  return kPalette[static_cast<std::size_t>(id) % 10];
}

}  // namespace

std::string placement_svg(const gen::PlacementProblem& problem,
                          const place::Grid& grid,
                          const place::GridPlacement& placement,
                          const SvgOptions& opt) {
  const double sx = opt.cell_pixels * grid.width /
                    std::max(1, grid.sites_per_row) / (grid.width / grid.sites_per_row);
  (void)sx;
  const int px = opt.cell_pixels;
  const int w = grid.sites_per_row * px;
  const int h = grid.rows * px;
  std::string out = svg_header(w + 2 * px, h + 2 * px);
  out += util::format("<g transform=\"translate(%d,%d)\">\n", px, px);

  if (opt.show_grid) {
    for (int r = 0; r <= grid.rows; ++r)
      out += util::format(
          "<line x1=\"0\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n",
          r * px, w, r * px);
    for (int c = 0; c <= grid.sites_per_row; ++c)
      out += util::format(
          "<line x1=\"%d\" y1=\"0\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n",
          c * px, c * px, h);
  }

  // Net bounding boxes (light).
  const auto cont = placement.to_continuous(grid);
  for (std::size_t n = 0; n < problem.nets.size(); ++n) {
    double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
    for (const auto& pin : problem.nets[n]) {
      double x, y;
      if (pin.is_pad) {
        x = problem.pads[static_cast<std::size_t>(pin.index)].x;
        y = problem.pads[static_cast<std::size_t>(pin.index)].y;
      } else {
        x = cont.x[static_cast<std::size_t>(pin.index)];
        y = cont.y[static_cast<std::size_t>(pin.index)];
      }
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
    out += util::format(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"none\" stroke=\"%s\" stroke-opacity=\"0.25\"/>\n",
        xmin / grid.width * w, ymin / grid.height * h,
        (xmax - xmin) / grid.width * w, (ymax - ymin) / grid.height * h,
        net_color(static_cast<int>(n)).c_str());
  }

  // Cells.
  for (std::size_t c = 0; c < placement.col.size(); ++c) {
    out += util::format(
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#4477aa\" "
        "stroke=\"#223\" rx=\"1\"><title>cell %d</title></rect>\n",
        placement.col[c] * px + 1, placement.row[c] * px + 1, px - 2, px - 2,
        static_cast<int>(c));
  }
  // Pads.
  for (const auto& pad : problem.pads) {
    const double x = pad.x / grid.width * w;
    const double y = pad.y / grid.height * h;
    out += util::format(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%d\" height=\"%d\" "
        "fill=\"#cc3311\" transform=\"rotate(45 %.1f %.1f)\">"
        "<title>%s</title></rect>\n",
        x - px / 3.0, y - px / 3.0, 2 * px / 3, 2 * px / 3, x, y,
        pad.name.c_str());
  }
  out += "</g>\n</svg>\n";
  return out;
}

std::string routing_svg(const gen::RoutingProblem& problem,
                        const route::RouteSolution& solution,
                        const SvgOptions& opt) {
  const int px = opt.cell_pixels;
  const int w = problem.width * px;
  const int h = problem.height * px;
  std::string out = svg_header(w, h);

  // Obstacles (both layers, darker when stacked).
  for (int layer = 0; layer < problem.num_layers; ++layer)
    for (int y = 0; y < problem.height; ++y)
      for (int x = 0; x < problem.width; ++x)
        if (problem.blocked[static_cast<std::size_t>(layer)]
                           [static_cast<std::size_t>(y) * static_cast<std::size_t>(problem.width) +
                            static_cast<std::size_t>(x)])
          out += util::format(
              "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
              "fill=\"#333\" fill-opacity=\"0.5\"/>\n",
              x * px, (problem.height - 1 - y) * px, px, px);

  // Wires: layer 0 solid, layer 1 translucent; vias as circles.
  for (const auto& net : solution.nets) {
    const auto color = net_color(net.net_id);
    std::set<std::pair<int, int>> l0, l1;
    for (const auto& c : net.cells) {
      (c.layer == 0 ? l0 : l1).insert({c.x, c.y});
      out += util::format(
          "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" "
          "fill-opacity=\"%s\"/>\n",
          c.x * px, (problem.height - 1 - c.y) * px, px, px, color.c_str(),
          c.layer == 0 ? "0.9" : "0.45");
    }
    for (const auto& [x, y] : l0)
      if (l1.count({x, y}))
        out += util::format(
            "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"none\" "
            "stroke=\"black\"/>\n",
            x * px + px / 2, (problem.height - 1 - y) * px + px / 2, px / 3);
  }
  // Pins.
  if (opt.show_pins) {
    for (const auto& net : problem.nets)
      for (const auto& pin : net.pins)
        out += util::format(
            "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" "
            "stroke=\"black\" stroke-width=\"1.5\"><title>net %d</title></rect>\n",
            pin.x * px + 1, (problem.height - 1 - pin.y) * px + 1, px - 2,
            px - 2, net.id);
  }
  out += "</svg>\n";
  return out;
}

}  // namespace l2l::viz
