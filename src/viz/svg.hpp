#pragma once
// SVG layout rendering -- the repository's stand-in for the MOOC's
// browser-based HTML5 layout viewer (§2.2, [16]): "it is just impossible
// to build layout tools if one cannot see the layout results". Drop the
// emitted .svg into any browser.

#include <string>

#include "place/legalize.hpp"
#include "route/router.hpp"

namespace l2l::viz {

struct SvgOptions {
  int cell_pixels = 10;   ///< pixels per grid unit
  bool show_grid = false;
  bool show_pins = true;
};

/// Render a legalized placement: cells as boxes, pads as diamonds, nets as
/// light bounding-box outlines.
std::string placement_svg(const gen::PlacementProblem& problem,
                          const place::Grid& grid,
                          const place::GridPlacement& placement,
                          const SvgOptions& opt = {});

/// Render a routed solution: layer 0 wires in one hue, layer 1 in another,
/// vias as circles, obstacles dark, pins as squares.
std::string routing_svg(const gen::RoutingProblem& problem,
                        const route::RouteSolution& solution,
                        const SvgOptions& opt = {});

}  // namespace l2l::viz
