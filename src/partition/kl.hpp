#pragma once
// Kernighan-Lin bipartitioning on the clique-expanded graph: pairwise
// swaps with best-prefix rollback. O(n^2) per pass -- the historical
// baseline FM improved on; kept as the comparison/ablation.

#include "partition/hypergraph.hpp"

namespace l2l::partition {

struct KlStats {
  int passes = 0;
  int initial_cut = 0;   ///< hyperedge cut of the start
  int final_cut = 0;     ///< hyperedge cut of the result
};

/// Refine an equal-sized bipartition with KL passes (swaps preserve
/// balance exactly).
Bipartition kl_refine(const Hypergraph& g, Bipartition start,
                      int max_passes = 8, KlStats* stats = nullptr);

}  // namespace l2l::partition
