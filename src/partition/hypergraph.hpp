#pragma once
// Hypergraph partitioning substrate (the full course's "partitioning"
// topic, §2: Kernighan-Lin and Fiduccia-Mattheyses). A hypergraph here is
// simply cells + hyperedges (nets); a bipartition assigns each cell a
// side, subject to a balance constraint, minimizing the cut (nets with
// pins on both sides).

#include <vector>

#include "gen/placement_gen.hpp"
#include "util/rng.hpp"

namespace l2l::partition {

struct Hypergraph {
  int num_cells = 0;
  std::vector<std::vector<int>> nets;      ///< net -> cell indices
  std::vector<std::vector<int>> nets_of;   ///< cell -> net indices (derived)

  static Hypergraph from_nets(int num_cells,
                              std::vector<std::vector<int>> nets);

  /// Drop pads / keep cell pins only from a placement problem.
  static Hypergraph from_placement(const gen::PlacementProblem& p);
};

struct Bipartition {
  std::vector<bool> side;  ///< per cell: false = left, true = right

  int count(bool s) const {
    int n = 0;
    for (const bool b : side) n += b == s;
    return n;
  }
};

/// Number of nets with pins on both sides.
int cut_size(const Hypergraph& g, const Bipartition& p);

/// Balanced random bipartition (exactly floor/ceil split).
Bipartition random_bipartition(const Hypergraph& g, util::Rng& rng);

/// Does the partition satisfy |left - right| <= tolerance?
bool is_balanced(const Bipartition& p, int tolerance);

}  // namespace l2l::partition
