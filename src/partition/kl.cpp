#include "partition/kl.hpp"

#include <algorithm>
#include <map>

namespace l2l::partition {
namespace {

/// Clique-expanded edge weights: each k-pin net contributes 1/(k-1) to
/// every cell pair, so a 2-pin net crossing the cut costs exactly 1.
std::map<std::pair<int, int>, double> clique_weights(const Hypergraph& g) {
  std::map<std::pair<int, int>, double> w;
  for (const auto& net : g.nets) {
    const double weight = 1.0 / static_cast<double>(net.size() - 1);
    for (std::size_t i = 0; i < net.size(); ++i)
      for (std::size_t j = i + 1; j < net.size(); ++j) {
        const auto key = std::minmax(net[i], net[j]);
        w[{key.first, key.second}] += weight;
      }
  }
  return w;
}

}  // namespace

Bipartition kl_refine(const Hypergraph& g, Bipartition start, int max_passes,
                      KlStats* stats) {
  KlStats local;
  local.initial_cut = cut_size(g, start);
  const auto weights = clique_weights(g);
  const int n = g.num_cells;

  auto edge = [&](int a, int b) {
    const auto key = std::minmax(a, b);
    const auto it = weights.find({key.first, key.second});
    return it == weights.end() ? 0.0 : it->second;
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    ++local.passes;
    std::vector<bool> locked(static_cast<std::size_t>(n), false);
    std::vector<std::pair<int, int>> swaps;
    std::vector<double> gains;
    // Tentatively swap pairs until all matched.
    Bipartition work = start;
    auto d_of = [&](int c) {
      double d = 0;
      for (int other = 0; other < n; ++other) {
        if (other == c) continue;
        const double w = edge(c, other);
        if (w == 0) continue;
        d += (work.side[static_cast<std::size_t>(other)] !=
              work.side[static_cast<std::size_t>(c)])
                 ? w
                 : -w;
      }
      return d;
    };
    const int pairs = n / 2;
    for (int step = 0; step < pairs; ++step) {
      int best_a = -1, best_b = -1;
      double best_gain = -1e300;
      for (int a2 = 0; a2 < n; ++a2) {
        if (locked[static_cast<std::size_t>(a2)] || work.side[static_cast<std::size_t>(a2)]) continue;
        const double da = d_of(a2);
        for (int b2 = 0; b2 < n; ++b2) {
          if (locked[static_cast<std::size_t>(b2)] || !work.side[static_cast<std::size_t>(b2)]) continue;
          const double gain2 = da + d_of(b2) - 2.0 * edge(a2, b2);
          if (gain2 > best_gain) {
            best_gain = gain2;
            best_a = a2;
            best_b = b2;
          }
        }
      }
      if (best_a < 0) break;
      work.side[static_cast<std::size_t>(best_a)] = true;
      work.side[static_cast<std::size_t>(best_b)] = false;
      locked[static_cast<std::size_t>(best_a)] = true;
      locked[static_cast<std::size_t>(best_b)] = true;
      swaps.emplace_back(best_a, best_b);
      gains.push_back(best_gain);
    }
    // Best prefix by cumulative gain.
    double cum = 0, best_cum = 0;
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < gains.size(); ++k) {
      cum += gains[k];
      if (cum > best_cum) {
        best_cum = cum;
        best_k = k + 1;
      }
    }
    if (best_k == 0) break;  // no improving prefix: converged
    for (std::size_t k = 0; k < best_k; ++k) {
      start.side[static_cast<std::size_t>(swaps[k].first)] = true;
      start.side[static_cast<std::size_t>(swaps[k].second)] = false;
    }
  }
  local.final_cut = cut_size(g, start);
  if (stats) *stats = local;
  return start;
}

}  // namespace l2l::partition
