#include "partition/hypergraph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace l2l::partition {

Hypergraph Hypergraph::from_nets(int num_cells,
                                 std::vector<std::vector<int>> nets) {
  Hypergraph g;
  g.num_cells = num_cells;
  for (auto& net : nets) {
    std::sort(net.begin(), net.end());
    net.erase(std::unique(net.begin(), net.end()), net.end());
    for (const int c : net)
      if (c < 0 || c >= num_cells)
        throw std::invalid_argument("Hypergraph: cell index out of range");
    if (net.size() >= 2) g.nets.push_back(std::move(net));
  }
  g.nets_of.resize(static_cast<std::size_t>(num_cells));
  for (std::size_t n = 0; n < g.nets.size(); ++n)
    for (const int c : g.nets[n])
      g.nets_of[static_cast<std::size_t>(c)].push_back(static_cast<int>(n));
  return g;
}

Hypergraph Hypergraph::from_placement(const gen::PlacementProblem& p) {
  std::vector<std::vector<int>> nets;
  for (const auto& net : p.nets) {
    std::vector<int> cells;
    for (const auto& pin : net)
      if (!pin.is_pad) cells.push_back(pin.index);
    nets.push_back(std::move(cells));
  }
  return from_nets(p.num_cells, std::move(nets));
}

int cut_size(const Hypergraph& g, const Bipartition& p) {
  int cut = 0;
  for (const auto& net : g.nets) {
    bool left = false, right = false;
    for (const int c : net)
      (p.side[static_cast<std::size_t>(c)] ? right : left) = true;
    cut += left && right;
  }
  return cut;
}

Bipartition random_bipartition(const Hypergraph& g, util::Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(g.num_cells));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Bipartition p;
  p.side.assign(static_cast<std::size_t>(g.num_cells), false);
  for (std::size_t k = order.size() / 2; k < order.size(); ++k)
    p.side[static_cast<std::size_t>(order[k])] = true;
  return p;
}

bool is_balanced(const Bipartition& p, int tolerance) {
  const int left = p.count(false);
  const int right = p.count(true);
  return std::abs(left - right) <= tolerance;
}

}  // namespace l2l::partition
