#pragma once
// Fiduccia-Mattheyses bipartitioning: single-cell moves, gain buckets,
// lock-after-move, best-prefix rollback per pass.

#include "partition/hypergraph.hpp"

namespace l2l::partition {

struct FmOptions {
  int balance_tolerance = 2;  ///< max |left - right|; moving one cell
                              ///< changes the difference by 2, so 2 is
                              ///< the tightest workable bound
  int max_passes = 16;
};

struct FmStats {
  int passes = 0;
  int initial_cut = 0;
  int final_cut = 0;
  long long moves_considered = 0;
};

/// Improve `start` in place with FM passes; returns the improved partition
/// (balance of the start is preserved within tolerance).
Bipartition fm_refine(const Hypergraph& g, Bipartition start,
                      const FmOptions& opt = {}, FmStats* stats = nullptr);

/// Random start + FM refinement.
Bipartition fm_partition(const Hypergraph& g, util::Rng& rng,
                         const FmOptions& opt = {}, FmStats* stats = nullptr);

}  // namespace l2l::partition
