#include "partition/fm.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace l2l::partition {
namespace {

/// One FM pass. Returns the best cut seen and leaves `p` at that prefix.
int fm_pass(const Hypergraph& g, Bipartition& p, int tolerance,
            long long& moves_considered) {
  const int n = g.num_cells;

  // Per-net side counts.
  std::vector<int> count0(g.nets.size(), 0), count1(g.nets.size(), 0);
  for (std::size_t e = 0; e < g.nets.size(); ++e)
    for (const int c : g.nets[e])
      (p.side[static_cast<std::size_t>(c)] ? count1[e] : count0[e])++;

  // Initial gains.
  std::vector<int> gain(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < n; ++c) {
    const bool s = p.side[static_cast<std::size_t>(c)];
    for (const int e : g.nets_of[static_cast<std::size_t>(c)]) {
      const int from = s ? count1[static_cast<std::size_t>(e)]
                         : count0[static_cast<std::size_t>(e)];
      const int to = s ? count0[static_cast<std::size_t>(e)]
                       : count1[static_cast<std::size_t>(e)];
      if (from == 1) ++gain[static_cast<std::size_t>(c)];
      if (to == 0) --gain[static_cast<std::size_t>(c)];
    }
  }

  // Gain "bucket": ordered set of (-gain, cell) for O(log n) extraction.
  std::set<std::pair<int, int>> bucket;
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  for (int c = 0; c < n; ++c) bucket.insert({-gain[static_cast<std::size_t>(c)], c});

  auto update_gain = [&](int c, int delta) {
    if (locked[static_cast<std::size_t>(c)]) return;
    bucket.erase({-gain[static_cast<std::size_t>(c)], c});
    gain[static_cast<std::size_t>(c)] += delta;
    bucket.insert({-gain[static_cast<std::size_t>(c)], c});
  };

  int left = p.count(false);
  int right = p.count(true);
  int cut = cut_size(g, p);
  int best_cut = cut;
  int best_prefix = 0;

  std::vector<int> move_order;
  move_order.reserve(static_cast<std::size_t>(n));

  for (int step = 0; step < n; ++step) {
    // Highest-gain unlocked cell whose move keeps balance.
    int chosen = -1;
    for (const auto& [ng, c] : bucket) {
      ++moves_considered;
      const bool s = p.side[static_cast<std::size_t>(c)];
      const int new_diff = s ? (left + 1) - (right - 1) : (left - 1) - (right + 1);
      if (std::abs(new_diff) <= tolerance) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) break;

    const bool from_side = p.side[static_cast<std::size_t>(chosen)];
    // Lock the base cell first: its recorded gain must not be perturbed by
    // its own move's neighbour updates.
    const int chosen_gain = gain[static_cast<std::size_t>(chosen)];
    bucket.erase({-chosen_gain, chosen});
    locked[static_cast<std::size_t>(chosen)] = true;
    // Update neighbour gains with the standard before/after rules.
    for (const int e : g.nets_of[static_cast<std::size_t>(chosen)]) {
      auto& from = from_side ? count1[static_cast<std::size_t>(e)]
                             : count0[static_cast<std::size_t>(e)];
      auto& to = from_side ? count0[static_cast<std::size_t>(e)]
                           : count1[static_cast<std::size_t>(e)];
      // Before the move.
      if (to == 0) {
        for (const int d : g.nets[static_cast<std::size_t>(e)]) update_gain(d, +1);
      } else if (to == 1) {
        for (const int d : g.nets[static_cast<std::size_t>(e)])
          if (p.side[static_cast<std::size_t>(d)] != from_side) update_gain(d, -1);
      }
      --from;
      ++to;
      // After the move.
      if (from == 0) {
        for (const int d : g.nets[static_cast<std::size_t>(e)]) update_gain(d, -1);
      } else if (from == 1) {
        for (const int d : g.nets[static_cast<std::size_t>(e)])
          if (p.side[static_cast<std::size_t>(d)] == from_side && d != chosen)
            update_gain(d, +1);
      }
    }
    cut -= chosen_gain;
    p.side[static_cast<std::size_t>(chosen)] = !from_side;
    if (from_side) {
      --right;
      ++left;
    } else {
      --left;
      ++right;
    }
    move_order.push_back(chosen);
    if (cut < best_cut) {
      best_cut = cut;
      best_prefix = static_cast<int>(move_order.size());
    }
  }

  // Roll back to the best prefix.
  for (std::size_t k = move_order.size(); k > static_cast<std::size_t>(best_prefix); --k) {
    const int c = move_order[k - 1];
    p.side[static_cast<std::size_t>(c)] = !p.side[static_cast<std::size_t>(c)];
  }
  return best_cut;
}

}  // namespace

Bipartition fm_refine(const Hypergraph& g, Bipartition start,
                      const FmOptions& opt, FmStats* stats) {
  if (static_cast<int>(start.side.size()) != g.num_cells)
    throw std::invalid_argument("fm_refine: partition size mismatch");
  FmStats local;
  local.initial_cut = cut_size(g, start);
  int best = local.initial_cut;
  for (int pass = 0; pass < opt.max_passes; ++pass) {
    ++local.passes;
    const int cut =
        fm_pass(g, start, opt.balance_tolerance, local.moves_considered);
    if (cut >= best) break;
    best = cut;
  }
  local.final_cut = cut_size(g, start);
  if (stats) *stats = local;
  return start;
}

Bipartition fm_partition(const Hypergraph& g, util::Rng& rng,
                         const FmOptions& opt, FmStats* stats) {
  return fm_refine(g, random_bipartition(g, rng), opt, stats);
}

}  // namespace l2l::partition
