#include "cache/digest.hpp"

#include <array>
#include <cstring>

namespace l2l::cache {

namespace {

// Odd multiplicative constants per lane (from the splitmix64/xxh family);
// the exact values are part of the on-disk format -- changing them is a
// cache-version bump, not a tweak.
constexpr std::uint64_t kMulA = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kMulB = 0xc2b2ae3d27d4eb4full;
constexpr std::uint64_t kInitA = 0x8c773be1f6bb3cc1ull;
constexpr std::uint64_t kInitB = 0x5851f42d4c957f2dull;

std::uint64_t splitmix64_fin(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t rotl(std::uint64_t v, int s) {
  return (v << s) | (v >> (64 - s));
}

}  // namespace

std::string Digest128::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t w = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const auto byte = static_cast<unsigned>((w >> shift) & 0xff);
    out[static_cast<std::size_t>(2 * i)] = kHex[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kHex[byte & 0xf];
  }
  return out;
}

Hasher::Hasher() : a_(kInitA), b_(kInitB) {}

void Hasher::absorb_word(std::uint64_t w) {
  a_ = rotl(a_ ^ (w * kMulA), 29) * kMulB;
  b_ = rotl(b_ ^ (w * kMulB), 31) * kMulA;
}

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  total_ += n;
  // Fill a partial chunk left over from the previous call first.
  while (pending_n_ > 0 && pending_n_ < 8 && n > 0) {
    pending_[pending_n_++] = *p++;
    --n;
  }
  if (pending_n_ == 8) {
    std::uint64_t w = 0;
    for (int i = 7; i >= 0; --i) w = (w << 8) | pending_[i];  // little-endian
    absorb_word(w);
    pending_n_ = 0;
  }
  while (n >= 8) {
    std::uint64_t w = 0;
    for (int i = 7; i >= 0; --i) w = (w << 8) | p[i];  // little-endian
    absorb_word(w);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    pending_[pending_n_++] = *p++;
    --n;
  }
  return *this;
}

Hasher& Hasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Hasher& Hasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, 8);
}

Hasher& Hasher::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

Digest128 Hasher::finish() {
  // Flush the tail chunk zero-padded; the total length absorbed below
  // keeps ("a") and ("a\0") distinct.
  if (pending_n_ > 0) {
    std::uint64_t w = 0;
    for (std::size_t i = pending_n_; i-- > 0;) w = (w << 8) | pending_[i];
    absorb_word(w);
    pending_n_ = 0;
  }
  const std::uint64_t len = total_;
  Digest128 d;
  d.hi = splitmix64_fin(a_ ^ rotl(b_, 17) ^ (len * kMulA));
  d.lo = splitmix64_fin(b_ ^ rotl(a_, 23) ^ (len * kMulB) ^ d.hi);
  return d;
}

Digest128 digest_bytes(std::string_view data) {
  Hasher h;
  h.bytes(data.data(), data.size());
  return h.finish();
}

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  // Table built on first use from the reflected polynomial; byte-at-a-time
  // is plenty for journal frames (a few hundred bytes each).
  static const auto kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const char ch : data)
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace l2l::cache
