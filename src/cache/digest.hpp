#pragma once
// Seedless, platform-stable 128-bit content digest -- the keying primitive
// of the result cache. The MOOC dedup contract ("the same submission is
// graded once, planet-wide") needs a digest that is:
//
//   * seedless and process-independent, so a key computed today matches a
//     key computed by another worker tomorrow (the persistent tier depends
//     on this -- file names ARE digests);
//   * byte-order defined (input bytes are consumed little-endian
//     explicitly, not via memcpy-of-host-words), so x86 and ARM workers
//     agree;
//   * wide enough (128 bits) that accidental collisions across tens of
//     millions of submissions are out of the picture.
//
// The construction is two independent 64-bit lanes over 8-byte chunks,
// each lane a multiply-xorshift absorb with its own odd constants,
// cross-mixed and finalized with the splitmix64 finalizer. This is not a
// cryptographic hash -- students cannot poison the cache because the value
// stored under a key is the *output of grading that exact content*; a
// collision merely replays another submission's honest report.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace l2l::cache {

struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest128&) const = default;
  bool operator<(const Digest128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex chars (hi then lo) -- the persistent tier's file
  /// name component, and the form golden tests pin.
  std::string hex() const;
};

/// Incremental hasher. Feed any mix of raw bytes and typed fields; typed
/// appends are length/tag-framed so ("ab","c") never collides with
/// ("a","bc") and an empty string is distinguishable from an absent field.
class Hasher {
 public:
  Hasher();

  /// Raw bytes, no framing (building block for the typed appends).
  Hasher& bytes(const void* data, std::size_t n);

  /// Length-framed string: appends the size then the bytes.
  Hasher& str(std::string_view s);

  /// Fixed-width little-endian integer.
  Hasher& u64(std::uint64_t v);
  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Hasher& i32(std::int32_t v) {
    return u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  Hasher& boolean(bool v) { return u64(v ? 1 : 0); }

  /// Bit-exact double (IEEE-754 bits, not a decimal rendering).
  Hasher& f64(double v);

  /// Finish and return the digest. The hasher may not be reused after.
  Digest128 finish();

 private:
  void absorb_word(std::uint64_t w);

  std::uint64_t a_, b_;
  std::uint64_t total_ = 0;
  unsigned char pending_[8];
  std::size_t pending_n_ = 0;
};

/// One-shot convenience over Hasher::bytes.
Digest128 digest_bytes(std::string_view data);

/// CRC-32 (the reflected 0xEDB88320 polynomial, as in zlib/gzip) -- the
/// per-frame integrity check of the grading-service journal. The 128-bit
/// digest above keys *content* across processes; the CRC's job is only
/// to reject a torn or bit-flipped frame during journal recovery, where
/// a 4-byte trailer per frame beats a 16-byte one and the well-known
/// polynomial makes the on-disk format auditable with standard tools.
/// Pass the previous return value as `seed` to checksum incrementally
/// (seed 0 == one-shot over the concatenation).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace l2l::cache
