#pragma once
// l2l::cache -- the content-addressed result cache behind every engine
// facade (see l2l/api.hpp) and the grading-queue submission dedup.
//
// The MOOC graded tens of thousands of near-identical ASCII submissions;
// the ROADMAP north star is "never compute the same answer twice". The
// cache delivers that as deterministic memoization:
//
//   key   = (engine id, canonical-input digest, config digest)
//   value = the engine's result, serialized to bytes by the facade
//
// Both digests come from the seedless 128-bit hash in digest.hpp, so keys
// are stable across processes, machines, and time -- which is what makes
// the optional persistent tier (L2L_CACHE_DIR) work: an entry written by
// one worker is a hit for every other worker.
//
// Determinism contract (the same one obs and the thread pool carry):
// cached and uncached runs produce byte-identical *results* -- a facade
// only stores complete, deterministic outputs, and skips the cache
// entirely for wall-clock-limited runs, whose truncation point is not
// reproducible. Hit/miss/evict counters flow through l2l::obs per-thread
// shards and export byte-identically at any L2L_THREADS *provided the
// call sequence is deterministic*; the parallel consumers (grading queue,
// batch graders) arrange that by deduplicating work in a sequential
// pre-pass, so which lookups hit and which miss never depends on the
// thread schedule.
//
// In-memory tier: an LRU sharded by key hash (fixed shard count,
// independent of L2L_THREADS), bounded in entries and bytes per shard.
// Persistent tier: one file per entry under L2L_CACHE_DIR, written to a
// temp name and atomically renamed; a versioned header plus payload
// checksum is validated on read, and a corrupt or truncated entry is
// quarantined (renamed *.quarantine) instead of crashing or being
// believed.
//
// Kill switch: L2L_CACHE=0 (or Cache-level set_enabled(false)) makes
// lookup always miss and insert a no-op, restoring compute-everything
// seed behavior exactly.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cache/digest.hpp"

namespace l2l::cache {

/// Process-wide kill switch. Defaults to on; L2L_CACHE=0/off/false/no in
/// the environment turns it off (read once, cached).
bool enabled();

/// Test/tool override of the cached kill switch.
void set_enabled(bool on);

/// The content-addressed key. `engine` is a short stable id ("sat",
/// "grader.route", "mooc.queue", ...); `input` digests the canonical
/// input text; `config` digests every option that changes the result.
struct CacheKey {
  std::string engine;
  Digest128 input;
  Digest128 config;

  bool operator==(const CacheKey&) const = default;

  /// "engine-<input hex>-<config hex>" -- the persistent tier file stem.
  std::string file_stem() const;
};

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  std::int64_t bytes = 0;    ///< current in-memory payload bytes
  std::int64_t entries = 0;  ///< current in-memory entry count
};

struct CacheOptions {
  /// In-memory bound per shard (16 fixed shards); least-recently-used
  /// entries are evicted past either limit.
  std::int64_t max_entries_per_shard = 512;
  std::int64_t max_bytes_per_shard = 8ll << 20;
  /// Persistent tier directory; empty = in-memory only. Seeded from
  /// L2L_CACHE_DIR for the global cache.
  std::string disk_dir;
};

class Cache {
 public:
  explicit Cache(CacheOptions opt = {});
  ~Cache();
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// The process-wide cache every facade shares. Its disk tier comes from
  /// L2L_CACHE_DIR (read once at first use).
  static Cache& global();

  /// Look `key` up: memory first, then the persistent tier (a disk hit is
  /// promoted into memory). nullopt on miss or when disabled.
  std::optional<std::string> lookup(const CacheKey& key);

  /// Store `value` under `key` in memory and, when a disk dir is
  /// configured, on disk (atomic rename; an existing entry is
  /// overwritten). No-op when disabled.
  void insert(const CacheKey& key, std::string_view value);

  /// Drop every in-memory entry (the disk tier is untouched). Tests use
  /// this to get a cold cache deterministically.
  void clear();

  /// Point the persistent tier somewhere else (empty = memory only).
  void set_disk_dir(std::string dir);
  std::string disk_dir() const;

  /// Merged totals across shards (monotone counters + current occupancy).
  CacheStats stats() const;

 private:
  struct Shard;
  struct Impl;
  void insert_memory_only(const CacheKey& key, std::string_view value);
  std::unique_ptr<Impl> impl_;
};

// ---- serialization helpers ----------------------------------------------
// Length-prefixed records: the facades serialize results as a sequence of
// byte strings ("<len>\n<bytes>"), immune to any escaping concerns. A
// Reader that runs past the end or over a malformed prefix reports
// failure instead of throwing -- a corrupt disk entry must degrade to a
// miss, never a crash.

/// Append one length-prefixed record to `out`.
void append_record(std::string& out, std::string_view record);

/// Append an integer / bit-exact double as a record.
void append_i64(std::string& out, std::int64_t v);
void append_f64(std::string& out, double v);

class RecordReader {
 public:
  explicit RecordReader(std::string_view data) : data_(data) {}

  /// Read the next record; false (and failed() latched) on malformed or
  /// exhausted input.
  bool next(std::string_view& record);
  bool next_i64(std::int64_t& v);
  bool next_f64(double& v);
  bool next_string(std::string& s);

  /// True when every byte was consumed and nothing failed -- facades
  /// require this before trusting a deserialized result.
  bool complete() const { return !failed_ && pos_ == data_.size(); }
  bool failed() const { return failed_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace l2l::cache
