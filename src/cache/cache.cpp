#include "cache/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace l2l::cache {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet resolved from env

bool resolve_enabled_from_env() {
  const char* v = std::getenv("L2L_CACHE");
  if (v == nullptr) return true;
  std::string s(v);
  return !(s == "0" || s == "off" || s == "false" || s == "no");
}

// On-disk entry format (version bumps invalidate old entries safely --
// an unknown version reads as corrupt and is quarantined):
//
//   L2LCACHE 1
//   engine <id>
//   input <32 hex>
//   config <32 hex>
//   bytes <payload length>
//   check <16 hex, low 64 digest bits of the payload>
//   <payload bytes>
constexpr const char* kMagic = "L2LCACHE";
constexpr int kFormatVersion = 1;

}  // namespace

bool enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    e = resolve_enabled_from_env() ? 1 : 0;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string CacheKey::file_stem() const {
  return engine + "-" + input.hex() + "-" + config.hex();
}

// ---- sharded LRU ---------------------------------------------------------

struct Cache::Shard {
  struct Entry {
    CacheKey key;
    std::string value;
  };
  std::mutex mu;
  std::list<Entry> lru;  // front = most recent
  // Key -> list position. std::map keeps the invariant gate happy (no
  // unordered iteration anywhere near an export path).
  std::map<std::string, std::list<Entry>::iterator> index;
  std::int64_t bytes = 0;
  std::int64_t hits = 0, misses = 0, inserts = 0, evictions = 0;
};

struct Cache::Impl {
  static constexpr int kShards = 16;  // fixed: independent of L2L_THREADS
  CacheOptions opt;
  mutable std::mutex dir_mu;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<std::int64_t> total_bytes{0};  // cross-shard occupancy gauge

  explicit Impl(CacheOptions o) : opt(std::move(o)) {
    for (int i = 0; i < kShards; ++i)
      shards.push_back(std::make_unique<Shard>());
  }

  Shard& shard_for(const CacheKey& key) {
    // Shard choice is a pure function of the key, so the same key always
    // lands in the same shard regardless of thread schedule.
    const auto i = static_cast<std::size_t>(
        (key.input.lo ^ key.config.hi) % static_cast<std::uint64_t>(kShards));
    return *shards[i];
  }

  std::string dir() const {
    std::lock_guard<std::mutex> lock(dir_mu);
    return opt.disk_dir;
  }
};

Cache::Cache(CacheOptions opt) : impl_(std::make_unique<Impl>(std::move(opt))) {}
Cache::~Cache() = default;

Cache& Cache::global() {
  static Cache* c = [] {
    CacheOptions opt;
    if (const char* dir = std::getenv("L2L_CACHE_DIR"); dir != nullptr)
      opt.disk_dir = dir;
    return new Cache(std::move(opt));  // leaked: threads may outlive exit
  }();
  return *c;
}

namespace {

/// Read + validate one persistent entry. Returns the payload, or nullopt
/// with *corrupt set when the file exists but fails validation.
std::optional<std::string> read_disk_entry(const std::string& path,
                                           const CacheKey& key,
                                           bool* corrupt) {
  *corrupt = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // plain miss
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Header: six whitespace-framed lines, then the raw payload.
  std::size_t pos = 0;
  auto next_line = [&](std::string& line) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string line;
  auto bad = [&] {
    *corrupt = true;
    return std::nullopt;
  };
  if (!next_line(line)) return bad();
  {
    const auto tok = util::split(line);
    if (tok.size() != 2 || tok[0] != kMagic) return bad();
    const auto ver = util::parse_int(tok[1]);
    if (!ver || *ver != kFormatVersion) return bad();
  }
  auto expect_field = [&](const char* name, const std::string& want) {
    if (!next_line(line)) return false;
    const auto tok = util::split(line);
    return tok.size() == 2 && tok[0] == name && tok[1] == want;
  };
  if (!expect_field("engine", key.engine)) return bad();
  if (!expect_field("input", key.input.hex())) return bad();
  if (!expect_field("config", key.config.hex())) return bad();
  if (!next_line(line)) return bad();
  std::int64_t payload_len = -1;
  {
    const auto tok = util::split(line);
    if (tok.size() != 2 || tok[0] != "bytes") return bad();
    const auto n = util::parse_int64(tok[1]);
    if (!n || *n < 0) return bad();
    payload_len = *n;
  }
  if (!next_line(line)) return bad();
  std::string want_check;
  {
    const auto tok = util::split(line);
    if (tok.size() != 2 || tok[0] != "check") return bad();
    want_check = tok[1];
  }
  if (text.size() - pos != static_cast<std::size_t>(payload_len)) return bad();
  std::string payload = text.substr(pos);
  const Digest128 d = digest_bytes(payload);
  if (Digest128{0, d.lo}.hex().substr(16) != want_check) return bad();
  return payload;
}

void quarantine(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantine", ec);
  if (ec) std::filesystem::remove(path, ec);  // fall back to dropping it
  obs::count("cache.disk.quarantined");
}

}  // namespace

std::optional<std::string> Cache::lookup(const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  const std::string stem = key.file_stem();
  Shard& sh = impl_->shard_for(key);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(stem);
    if (it != sh.index.end()) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      ++sh.hits;
      obs::count("cache.hit");
      obs::count("cache.hit." + key.engine);
      return it->second->value;
    }
    ++sh.misses;
  }
  // Persistent tier (outside the shard lock: disk I/O must not serialize
  // unrelated lookups).
  const std::string dir = impl_->dir();
  if (!dir.empty()) {
    const std::string path = dir + "/" + stem + ".l2lc";
    bool corrupt = false;
    if (auto payload = read_disk_entry(path, key, &corrupt)) {
      obs::count("cache.hit");
      obs::count("cache.disk.hit");
      obs::count("cache.hit." + key.engine);
      insert_memory_only(key, *payload);
      return payload;
    }
    if (corrupt) quarantine(path);
  }
  obs::count("cache.miss");
  obs::count("cache.miss." + key.engine);
  return std::nullopt;
}

void Cache::insert(const CacheKey& key, std::string_view value) {
  if (!enabled()) return;
  insert_memory_only(key, value);
  const std::string dir = impl_->dir();
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem = key.file_stem();
  const std::string path = dir + "/" + stem + ".l2lc";
  // Unique temp name per thread+key, then atomic rename: a reader never
  // sees a half-written entry, and concurrent writers of the same key
  // both produce the same bytes so last-rename-wins is harmless.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << std::this_thread::get_id();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable disk tier degrades to memory-only
    const Digest128 d = digest_bytes(value);
    out << kMagic << ' ' << kFormatVersion << '\n'
        << "engine " << key.engine << '\n'
        << "input " << key.input.hex() << '\n'
        << "config " << key.config.hex() << '\n'
        << "bytes " << value.size() << '\n'
        << "check " << Digest128{0, d.lo}.hex().substr(16) << '\n';
    out.write(value.data(), static_cast<std::streamsize>(value.size()));
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  obs::count("cache.disk.writes");
}

void Cache::insert_memory_only(const CacheKey& key, std::string_view value) {
  Shard& sh = impl_->shard_for(key);
  const std::string stem = key.file_stem();
  std::int64_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (const auto it = sh.index.find(stem); it != sh.index.end()) {
      delta -= static_cast<std::int64_t>(it->second->value.size());
      delta += static_cast<std::int64_t>(value.size());
      sh.bytes += delta;
      it->second->value.assign(value);
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    } else {
      sh.lru.push_front(Shard::Entry{key, std::string(value)});
      sh.index.emplace(stem, sh.lru.begin());
      delta += static_cast<std::int64_t>(value.size());
      sh.bytes += delta;
      ++sh.inserts;
      obs::count("cache.insert");
    }
    // Evict past either bound, least-recent first.
    while (static_cast<std::int64_t>(sh.lru.size()) >
               impl_->opt.max_entries_per_shard ||
           (sh.bytes > impl_->opt.max_bytes_per_shard && sh.lru.size() > 1)) {
      const auto& victim = sh.lru.back();
      const auto vbytes = static_cast<std::int64_t>(victim.value.size());
      sh.bytes -= vbytes;
      delta -= vbytes;
      sh.index.erase(victim.key.file_stem());
      sh.lru.pop_back();
      ++sh.evictions;
      obs::count("cache.evict");
    }
  }
  const std::int64_t total =
      impl_->total_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  obs::gauge_max("cache.bytes", total);
}

void Cache::clear() {
  for (auto& sh : impl_->shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->index.clear();
    sh->bytes = 0;
  }
  impl_->total_bytes.store(0, std::memory_order_relaxed);
}

void Cache::set_disk_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(impl_->dir_mu);
  impl_->opt.disk_dir = std::move(dir);
}

std::string Cache::disk_dir() const { return impl_->dir(); }

CacheStats Cache::stats() const {
  CacheStats out;
  for (const auto& sh : impl_->shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    out.hits += sh->hits;
    out.misses += sh->misses;
    out.inserts += sh->inserts;
    out.evictions += sh->evictions;
    out.bytes += sh->bytes;
    out.entries += static_cast<std::int64_t>(sh->lru.size());
  }
  return out;
}

// ---- serialization helpers ----------------------------------------------

void append_record(std::string& out, std::string_view record) {
  out += std::to_string(record.size());
  out += '\n';
  out.append(record.data(), record.size());
}

void append_i64(std::string& out, std::int64_t v) {
  append_record(out, std::to_string(v));
}

void append_f64(std::string& out, double v) {
  // Stored as the signed reinterpretation of the IEEE bits so the
  // exception-free parse_int64 round-trips it exactly.
  std::int64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_record(out, std::to_string(bits));
}

bool RecordReader::next(std::string_view& record) {
  if (failed_) return false;
  const auto nl = data_.find('\n', pos_);
  if (nl == std::string_view::npos) {
    failed_ = true;
    return false;
  }
  const auto len =
      util::parse_int64(std::string_view(data_.data() + pos_, nl - pos_));
  if (!len || *len < 0 ||
      nl + 1 + static_cast<std::size_t>(*len) > data_.size()) {
    failed_ = true;
    return false;
  }
  record = data_.substr(nl + 1, static_cast<std::size_t>(*len));
  pos_ = nl + 1 + static_cast<std::size_t>(*len);
  return true;
}

bool RecordReader::next_i64(std::int64_t& v) {
  std::string_view rec;
  if (!next(rec)) return false;
  const auto parsed = util::parse_int64(rec);
  if (!parsed) {
    failed_ = true;
    return false;
  }
  v = *parsed;
  return true;
}

bool RecordReader::next_f64(double& v) {
  std::string_view rec;
  if (!next(rec)) return false;
  const auto parsed = util::parse_int64(rec);
  if (!parsed) {
    failed_ = true;
    return false;
  }
  std::uint64_t bits = static_cast<std::uint64_t>(*parsed);
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool RecordReader::next_string(std::string& s) {
  std::string_view rec;
  if (!next(rec)) return false;
  s.assign(rec);
  return true;
}

}  // namespace l2l::cache
