#pragma once
// The unified engine API: one include, every facade. Tools, the flow,
// the graders, and external embedders call these Request/Result pairs
// instead of reaching into engine internals; each facade owns the
// content-addressed cache keying for its engine (see src/cache/), so a
// repeated request -- same input text, same config -- is answered from
// the result cache with a byte-identical result.
//
//   api::solve_sat         DIMACS CNF            (minisat_lite portal)
//   api::run_bdd_script    kbdd calculator       (kbdd_lite portal)
//   api::minimize_pla      two-level minimizer   (espresso_lite portal)
//   api::synthesize_esop   exact ESOP synthesis  (esop_exact portal)
//   api::optimize_blif     algebraic script      (sis_lite portal / flow)
//   api::solve_axb         A x = b               (axb portal)
//   api::place_and_legalize  quadratic placement (flow stage)
//   api::route_nets        maze routing          (flow stage)
//   api::grade_route_submission / grade_place_submission  auto-graders
//
// Caching is controlled per-request (use_cache), globally (L2L_CACHE=0),
// and persisted across processes with L2L_CACHE_DIR (see README).
//
// Every Request struct inherits api::RequestBase (api/base.hpp): the
// shared wall-clock limit + cache policy, and the one cacheability rule
// (a time limit marks a result non-reproducible and bypasses the cache).

#include "api/base.hpp"

#include "api/axb.hpp"
#include "api/bdd.hpp"
#include "api/esop.hpp"
#include "api/espresso.hpp"
#include "api/grade.hpp"
#include "api/mls.hpp"
#include "api/place.hpp"
#include "api/route.hpp"
#include "api/sat.hpp"
