#include "espresso/qm.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

#include "cubes/urp.hpp"

namespace l2l::espresso {

using cubes::Cover;
using cubes::Cube;
using cubes::Pcn;

namespace {

/// Compact cube for QM merging: care mask + values on care positions.
struct MaskCube {
  std::uint64_t care = 0;   // bit v set = variable v appears
  std::uint64_t value = 0;  // phase of appearing variables (subset of care)
  bool operator<(const MaskCube& o) const {
    return care != o.care ? care < o.care : value < o.value;
  }
  bool operator==(const MaskCube& o) const = default;
};

Cube to_cube(const MaskCube& m, int n) {
  Cube c(n);
  for (int v = 0; v < n; ++v) {
    if (!((m.care >> v) & 1)) continue;
    c.set_code(v, ((m.value >> v) & 1) ? Pcn::kPos : Pcn::kNeg);
  }
  return c;
}

}  // namespace

std::vector<Cube> all_primes(const Cover& f, const Cover& dc) {
  const int n = f.num_vars();
  if (n > 20)
    throw std::invalid_argument("all_primes: too many inputs for QM");
  const auto care_tt = (f | dc).to_truth_table();

  // Level 0: all minterms of f | dc.
  std::set<MaskCube> level;
  const std::uint64_t full =
      n == 64 ? ~0ull : ((1ull << n) - 1);
  for (const std::uint64_t m : care_tt.minterms())
    level.insert(MaskCube{full, m});

  std::vector<Cube> primes;
  while (!level.empty()) {
    std::set<MaskCube> next;
    std::set<MaskCube> merged;
    // Try all pairs with identical care masks differing in exactly one bit.
    std::vector<MaskCube> items(level.begin(), level.end());
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        if (items[i].care != items[j].care) continue;
        const std::uint64_t diff = items[i].value ^ items[j].value;
        if (std::popcount(diff) != 1) continue;
        next.insert(MaskCube{items[i].care & ~diff, items[i].value & ~diff});
        merged.insert(items[i]);
        merged.insert(items[j]);
      }
    }
    for (const auto& m : items)
      if (!merged.count(m)) primes.push_back(to_cube(m, n));
    level = std::move(next);
  }
  return primes;
}

namespace {

struct CoverProblem {
  std::vector<std::vector<int>> rows;  // row -> column (prime) indices
  std::vector<int> cost;               // column cost
};

/// Branch-and-bound over the cyclic core.
struct Bnb {
  const CoverProblem& p;
  std::vector<bool> col_banned;
  std::vector<bool> row_done;
  std::vector<int> best;  // best column set found
  int best_cost;
  std::int64_t nodes = 0;

  explicit Bnb(const CoverProblem& problem)
      : p(problem),
        col_banned(problem.cost.size(), false),
        row_done(problem.rows.size(), false),
        best_cost(0) {
    // Start with the trivial solution: take one column per row greedily.
    for (const auto c : greedy()) best.push_back(c);
    for (const auto c : best) best_cost += p.cost[static_cast<std::size_t>(c)];
  }

  std::vector<int> greedy() const {
    std::vector<bool> covered(p.rows.size(), false);
    std::vector<int> chosen;
    for (;;) {
      // Pick the column covering the most uncovered rows per unit cost.
      std::vector<int> count(p.cost.size(), 0);
      bool any = false;
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (covered[r]) continue;
        any = true;
        for (const int c : p.rows[r]) ++count[static_cast<std::size_t>(c)];
      }
      if (!any) break;
      int bestc = -1;
      double best_ratio = -1;
      for (std::size_t c = 0; c < count.size(); ++c) {
        if (count[c] == 0) continue;
        const double ratio = static_cast<double>(count[c]) / p.cost[c];
        if (ratio > best_ratio) {
          best_ratio = ratio;
          bestc = static_cast<int>(c);
        }
      }
      chosen.push_back(bestc);
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (covered[r]) continue;
        for (const int c : p.rows[r])
          if (c == bestc) {
            covered[r] = true;
            break;
          }
      }
    }
    return chosen;
  }

  void search(std::vector<int>& chosen, int cost) {
    ++nodes;
    if (cost >= best_cost) return;  // bound
    // Find an uncovered row with the fewest available columns.
    int pick_row = -1;
    std::size_t pick_width = ~0ull;
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      if (row_done[r]) continue;
      bool covered = false;
      std::size_t width = 0;
      for (const int c : p.rows[r]) {
        if (col_banned[static_cast<std::size_t>(c)]) continue;
        for (const int ch : chosen)
          if (ch == c) {
            covered = true;
            break;
          }
        if (covered) break;
        ++width;
      }
      if (covered) continue;
      if (width == 0) return;  // dead end: row uncoverable
      if (width < pick_width) {
        pick_width = width;
        pick_row = static_cast<int>(r);
      }
    }
    if (pick_row < 0) {
      // All rows covered: record improvement.
      best = chosen;
      best_cost = cost;
      return;
    }
    // Branch on each available column of the chosen row.
    for (const int c : p.rows[static_cast<std::size_t>(pick_row)]) {
      if (col_banned[static_cast<std::size_t>(c)]) continue;
      chosen.push_back(c);
      search(chosen, cost + p.cost[static_cast<std::size_t>(c)]);
      chosen.pop_back();
      // Exclude this column in subsequent branches of this node.
      col_banned[static_cast<std::size_t>(c)] = true;
    }
    // Restore bans set at this node.
    for (const int c : p.rows[static_cast<std::size_t>(pick_row)])
      col_banned[static_cast<std::size_t>(c)] = false;
  }
};

}  // namespace

Cover exact_minimize(const Cover& f, const Cover& dc, ExactStats* stats) {
  const int n = f.num_vars();
  ExactStats local;
  const auto primes = all_primes(f, dc);
  local.num_primes = static_cast<int>(primes.size());

  // Rows: ON-set minterms (DC minterms need not be covered).
  const auto on_tt = f.to_truth_table();
  const auto dc_tt = dc.to_truth_table();
  std::vector<std::uint64_t> minterms;
  for (const std::uint64_t m : on_tt.minterms())
    if (!dc_tt.get(m)) minterms.push_back(m);

  if (minterms.empty()) {
    if (stats) *stats = local;
    return Cover(n);
  }

  CoverProblem problem;
  problem.cost.reserve(primes.size());
  for (const auto& p : primes) problem.cost.push_back(1000 + p.num_literals());
  problem.rows.reserve(minterms.size());
  for (const std::uint64_t m : minterms) {
    std::vector<int> cols;
    for (std::size_t c = 0; c < primes.size(); ++c)
      if (primes[c].eval(m)) cols.push_back(static_cast<int>(c));
    problem.rows.push_back(std::move(cols));
  }

  // Essential columns: rows covered by exactly one prime.
  std::vector<bool> chosen_col(primes.size(), false);
  for (const auto& row : problem.rows)
    if (row.size() == 1) {
      if (!chosen_col[static_cast<std::size_t>(row[0])]) ++local.num_essential;
      chosen_col[static_cast<std::size_t>(row[0])] = true;
    }
  // Remove rows covered by essential columns.
  CoverProblem core;
  core.cost = problem.cost;
  for (const auto& row : problem.rows) {
    bool covered = false;
    for (const int c : row)
      if (chosen_col[static_cast<std::size_t>(c)]) {
        covered = true;
        break;
      }
    if (!covered) core.rows.push_back(row);
  }

  std::vector<int> extra;
  if (!core.rows.empty()) {
    Bnb bnb(core);
    std::vector<int> chosen;
    bnb.search(chosen, 0);
    local.branch_nodes = bnb.nodes;
    extra = bnb.best;
  }

  Cover out(n);
  for (std::size_t c = 0; c < primes.size(); ++c)
    if (chosen_col[c]) out.add(primes[c]);
  for (const int c : extra) out.add(primes[static_cast<std::size_t>(c)]);
  out.remove_contained_cubes();
  if (stats) *stats = local;
  return out;
}

Cover exact_minimize(const Cover& f) {
  return exact_minimize(f, Cover(f.num_vars()), nullptr);
}

}  // namespace l2l::espresso
