#include "espresso/pla.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::espresso {

Pla parse_pla(const std::string& text) {
  Pla pla;
  int declared_outputs = -1;
  std::vector<std::string> output_names;
  std::istringstream in(text);
  std::string line;
  bool saw_i = false;
  // The .i/.o headers size allocations; a hostile ".o 2000000000" (or a
  // negative count wrapping to a huge size_t) must be rejected here.
  constexpr int kMaxPlanes = 4096;
  auto parse_header_count = [&](const std::vector<std::string>& tok,
                                const char* what) {
    if (tok.size() < 2)
      throw std::invalid_argument(std::string("PLA: ") + what +
                                  " needs a count");
    const auto v = util::parse_int(tok[1]);
    if (!v || *v < 0 || *v > kMaxPlanes)
      throw std::invalid_argument(std::string("PLA: bad ") + what +
                                  " count '" + tok[1] + "'");
    return *v;
  };
  while (std::getline(in, line)) {
    auto t = std::string(util::trim(line));
    if (t.empty() || t[0] == '#') continue;
    if (t[0] == '.') {
      const auto tok = util::split(t);
      if (tok[0] == ".i") {
        pla.num_inputs = parse_header_count(tok, ".i");
        saw_i = true;
      } else if (tok[0] == ".o") {
        declared_outputs = parse_header_count(tok, ".o");
        pla.outputs.resize(static_cast<std::size_t>(declared_outputs));
        for (int k = 0; k < declared_outputs; ++k) {
          pla.outputs[static_cast<std::size_t>(k)].on = cubes::Cover(pla.num_inputs);
          pla.outputs[static_cast<std::size_t>(k)].dc = cubes::Cover(pla.num_inputs);
          pla.outputs[static_cast<std::size_t>(k)].name = util::format("y%d", k);
        }
      } else if (tok[0] == ".ilb") {
        pla.input_names.assign(tok.begin() + 1, tok.end());
      } else if (tok[0] == ".ob") {
        for (std::size_t k = 0; k + 1 < tok.size() && k < pla.outputs.size(); ++k)
          pla.outputs[k].name = tok[k + 1];
      } else if (tok[0] == ".p" || tok[0] == ".type") {
        // cube count / type hints: accepted and ignored
      } else if (tok[0] == ".e" || tok[0] == ".end") {
        break;
      } else {
        throw std::invalid_argument("PLA: unknown directive " + tok[0]);
      }
      continue;
    }
    // Cube line.
    if (!saw_i || declared_outputs < 0)
      throw std::invalid_argument("PLA: cube before .i/.o header");
    const auto tok = util::split(t);
    if (tok.size() != 2)
      throw std::invalid_argument("PLA: cube line must have input and output planes");
    if (static_cast<int>(tok[0].size()) != pla.num_inputs)
      throw std::invalid_argument("PLA: input plane width mismatch");
    if (static_cast<int>(tok[1].size()) != declared_outputs)
      throw std::invalid_argument("PLA: output plane width mismatch");
    const auto cube = cubes::Cube::parse(tok[0]);
    for (int k = 0; k < declared_outputs; ++k) {
      const char c = tok[1][static_cast<std::size_t>(k)];
      if (c == '1')
        pla.outputs[static_cast<std::size_t>(k)].on.add(cube);
      else if (c == '-' || c == '2')
        pla.outputs[static_cast<std::size_t>(k)].dc.add(cube);
      else if (c != '0' && c != '~')
        throw std::invalid_argument("PLA: bad output plane character");
    }
  }
  if (!saw_i) throw std::invalid_argument("PLA: missing .i header");
  if (pla.input_names.empty())
    for (int i = 0; i < pla.num_inputs; ++i)
      pla.input_names.push_back(util::format("x%d", i));
  return pla;
}

std::string write_pla(const Pla& pla) {
  std::string out = util::format(".i %d\n.o %d\n", pla.num_inputs,
                                 pla.num_outputs());
  out += ".ilb " + util::join(pla.input_names, " ") + "\n";
  out += ".ob";
  for (const auto& o : pla.outputs) out += " " + o.name;
  out += "\n.type fr\n";
  // Collect all distinct cubes; emit output plane per cube.
  std::vector<std::pair<cubes::Cube, std::string>> rows;
  for (std::size_t k = 0; k < pla.outputs.size(); ++k) {
    auto emit = [&](const cubes::Cover& cover, char mark) {
      for (const auto& c : cover.cubes()) {
        bool found = false;
        for (auto& [cube, plane] : rows) {
          if (cube == c && plane[k] == '0') {
            plane[k] = mark;
            found = true;
            break;
          }
        }
        if (!found) {
          std::string plane(pla.outputs.size(), '0');
          plane[k] = mark;
          rows.emplace_back(c, plane);
        }
      }
    };
    emit(pla.outputs[k].on, '1');
    emit(pla.outputs[k].dc, '-');
  }
  out += util::format(".p %d\n", static_cast<int>(rows.size()));
  for (const auto& [cube, plane] : rows)
    out += cube.to_string() + " " + plane + "\n";
  out += ".e\n";
  return out;
}

}  // namespace l2l::espresso
