#pragma once
// Heuristic two-level minimization in the style of Espresso [9,10]
// (Week 3: "Logic Synthesis I"). The classic loop:
//
//     do { EXPAND; IRREDUNDANT; REDUCE; } while (cost improves);
//
// EXPAND      grows each cube into a prime against the OFF-set;
// IRREDUNDANT drops cubes covered by the rest of the cover (plus DC);
// REDUCE      shrinks each cube to the smallest cube still covering its
//             exclusive minterms, giving EXPAND room to escape local minima.
//
// All operations are (F, D)-aware: the don't-care set D participates in
// covering checks but never appears in the result.

#include "cubes/cover.hpp"

namespace l2l::espresso {

struct MinimizeStats {
  int iterations = 0;
  int initial_cubes = 0;
  int final_cubes = 0;
  int initial_literals = 0;
  int final_literals = 0;
};

struct MinimizeOptions {
  int max_iterations = 20;
  bool single_pass = false;  ///< expand+irredundant only (ablation)
};

/// EXPAND: raise each cube of `f` to a prime implicant of (f, dc). `offset`
/// must be the complement of f|dc.
cubes::Cover expand(const cubes::Cover& f, const cubes::Cover& offset);

/// IRREDUNDANT: greedily drop cubes covered by the remaining cover plus dc.
cubes::Cover irredundant(const cubes::Cover& f, const cubes::Cover& dc);

/// REDUCE: shrink each cube to the supercube of its exclusive part.
cubes::Cover reduce(const cubes::Cover& f, const cubes::Cover& dc);

/// The full Espresso loop. Returns a cover G with f <= G|dc-agnostic
/// containment: f - dc <= G <= f + dc.
cubes::Cover minimize(const cubes::Cover& f, const cubes::Cover& dc,
                      const MinimizeOptions& options = {},
                      MinimizeStats* stats = nullptr);

/// Convenience overload with an empty DC set.
cubes::Cover minimize(const cubes::Cover& f);

/// Verification helper: G is a legal implementation of (f, dc), i.e.
/// f # dc <= G <= f | dc.
bool is_legal_implementation(const cubes::Cover& g, const cubes::Cover& f,
                             const cubes::Cover& dc);

}  // namespace l2l::espresso
