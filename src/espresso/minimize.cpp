#include "espresso/minimize.hpp"

#include <algorithm>

#include "cubes/urp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace l2l::espresso {

using cubes::Cover;
using cubes::Cube;
using cubes::Pcn;

namespace {

/// Does cube c intersect any cube of r?
bool intersects(const Cube& c, const Cover& r) {
  for (const auto& rc : r.cubes())
    if (c.distance(rc) == 0) return true;
  return false;
}

/// Smallest cube containing every cube of g (the "supercube"):
/// positionwise OR, one word-parallel or_with per cube.
Cube supercube(const Cover& g) {
  if (g.empty()) return Cube(g.num_vars());  // callers guard; universal
  Cube s = g.cube(0);
  for (int i = 1; i < g.size(); ++i) s.or_with(g.cube(i));
  return s;
}

}  // namespace

Cover expand(const Cover& f, const Cover& offset) {
  Cover out(f.num_vars());
  std::vector<Cube> done;
  for (const auto& orig : f.cubes()) {
    Cube c = orig;
    // Greedy raising: repeatedly pick the literal whose removal keeps the
    // cube disjoint from the OFF-set and frees the most OFF-set blocking
    // (heuristic: just first-feasible in variable order, then retry --
    // adequate at course scale and still yields primes).
    bool raised = true;
    while (raised) {
      raised = false;
      for (int v = 0; v < c.num_vars(); ++v) {
        if (c.code(v) == Pcn::kDontCare) continue;
        Cube trial = c;
        trial.set_code(v, Pcn::kDontCare);
        if (!intersects(trial, offset)) {
          c = trial;
          raised = true;
        }
      }
    }
    // Single-cube containment cleanup keeps EXPAND from stuffing the cover
    // with duplicates of the same prime.
    bool contained = false;
    for (const auto& d : done)
      if (d.contains(c)) {
        contained = true;
        break;
      }
    if (!contained) {
      done.push_back(c);
      out.add(std::move(c));
    }
  }
  return out;
}

Cover irredundant(const Cover& f, const Cover& dc) {
  // Greedy: try to drop each cube (largest first so small leftovers are
  // preferentially kept as the exclusive covers).
  std::vector<int> order(static_cast<std::size_t>(f.size()));
  for (int i = 0; i < f.size(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return f.cube(a).num_literals() > f.cube(b).num_literals();
  });
  std::vector<bool> alive(static_cast<std::size_t>(f.size()), true);
  for (const int i : order) {
    Cover rest = dc;
    for (int j = 0; j < f.size(); ++j)
      if (j != i && alive[static_cast<std::size_t>(j)]) rest.add(f.cube(j));
    if (cubes::cover_contains_cube(rest, f.cube(i)))
      alive[static_cast<std::size_t>(i)] = false;
  }
  Cover out(f.num_vars());
  for (int i = 0; i < f.size(); ++i)
    if (alive[static_cast<std::size_t>(i)]) out.add(f.cube(i));
  return out;
}

Cover reduce(const Cover& f, const Cover& dc) {
  // Process largest cubes first; each cube shrinks against the rest of the
  // *current* (partially reduced) cover, preserving the overall function.
  std::vector<Cube> current(f.cubes());
  std::vector<int> order(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return current[static_cast<std::size_t>(a)].num_literals() <
           current[static_cast<std::size_t>(b)].num_literals();
  });
  for (const int i : order) {
    const Cube& c = current[static_cast<std::size_t>(i)];
    Cover rest = dc;
    for (std::size_t j = 0; j < current.size(); ++j)
      if (static_cast<int>(j) != i) rest.add(current[j]);
    // Exclusive part of c: c AND NOT rest; replace c by its supercube.
    const Cover exclusive = cubes::sharp(Cover(f.num_vars(), {c}), rest);
    if (exclusive.empty()) continue;  // fully covered; irredundant removes it
    current[static_cast<std::size_t>(i)] = supercube(exclusive);
  }
  Cover out(f.num_vars());
  for (auto& c : current) out.add(std::move(c));
  return out;
}

Cover minimize(const Cover& f, const Cover& dc, const MinimizeOptions& options,
               MinimizeStats* stats) {
  MinimizeStats local;
  local.initial_cubes = f.size();
  local.initial_literals = f.num_literals();

  const Cover offset = cubes::complement(f | dc);
  Cover g = f;
  g.remove_contained_cubes();
  int best_cost = -1;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++local.iterations;
    g = expand(g, offset);
    g = irredundant(g, dc);
    const int cost = g.size() * 1000 + g.num_literals();
    if (best_cost >= 0 && cost >= best_cost) break;
    best_cost = cost;
    if (options.single_pass) break;
    g = reduce(g, dc);
  }
  // Always finish on an expanded, irredundant cover.
  g = irredundant(expand(g, offset), dc);

  local.final_cubes = g.size();
  local.final_literals = g.num_literals();
  if (stats) *stats = local;
  if (obs::enabled()) {
    obs::count("espresso.minimize_calls");
    obs::count("espresso.iterations", local.iterations);
    obs::count("espresso.cubes_in", local.initial_cubes);
    obs::count("espresso.cubes_out", local.final_cubes);
    obs::observe("espresso.literals_saved",
                 std::max(0, local.initial_literals - local.final_literals));
  }
  return g;
}

Cover minimize(const Cover& f) {
  return minimize(f, Cover(f.num_vars()), MinimizeOptions{}, nullptr);
}

bool is_legal_implementation(const Cover& g, const Cover& f, const Cover& dc) {
  // Lower bound: every minterm of f not in dc must be covered by g.
  const Cover must = cubes::sharp(f, dc);
  for (const auto& c : must.cubes())
    if (!cubes::cover_contains_cube(g, c)) return false;
  // Upper bound: g must stay inside f | dc.
  const Cover allowed = f | dc;
  for (const auto& c : g.cubes())
    if (!cubes::cover_contains_cube(allowed, c)) return false;
  return true;
}

}  // namespace l2l::espresso
