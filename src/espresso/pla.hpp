#pragma once
// Berkeley PLA-format I/O (the input format of the Espresso tool [9,10]
// deployed as a MOOC cloud portal).
//
// Supported subset: .i .o .p .ilb .ob .type fr|f .e; cube lines are
// "<input-plane> <output-plane>" with '0','1','-' inputs and '0','1','-'
// outputs ('-' in the output plane marks a don't-care for type fr).

#include <string>
#include <vector>

#include "cubes/cover.hpp"

namespace l2l::espresso {

/// One logical output of a PLA: ON-set and DC-set covers over the inputs.
struct PlaOutput {
  std::string name;
  cubes::Cover on;  ///< ON-set
  cubes::Cover dc;  ///< don't-care set
};

struct Pla {
  int num_inputs = 0;
  std::vector<std::string> input_names;
  std::vector<PlaOutput> outputs;

  int num_outputs() const { return static_cast<int>(outputs.size()); }
};

/// Parse PLA text. Throws std::invalid_argument on malformed input.
Pla parse_pla(const std::string& text);

/// Serialize (type fr; '-' output plane entries for DC cubes).
std::string write_pla(const Pla& pla);

}  // namespace l2l::espresso
