#pragma once
// Exact two-level minimization: Quine-McCluskey prime generation followed
// by branch-and-bound unate covering with essential-column extraction and
// row/column dominance. Exponential, so only for small functions -- the
// perf bench uses it as the quality baseline for the Espresso heuristic.

#include <cstdint>
#include <vector>

#include "cubes/cover.hpp"

namespace l2l::espresso {

/// All prime implicants of (f, dc) by iterated merging of minterms.
/// Practical up to ~14 inputs.
std::vector<cubes::Cube> all_primes(const cubes::Cover& f,
                                    const cubes::Cover& dc);

struct ExactStats {
  int num_primes = 0;
  int num_essential = 0;
  std::int64_t branch_nodes = 0;
};

/// Minimum-cost prime cover of f with don't-cares dc. Cost of a prime is
/// 1000 + literal count, so cube count dominates and literals break ties.
cubes::Cover exact_minimize(const cubes::Cover& f, const cubes::Cover& dc,
                            ExactStats* stats = nullptr);

cubes::Cover exact_minimize(const cubes::Cover& f);

}  // namespace l2l::espresso
