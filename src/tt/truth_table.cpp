#include "tt/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace l2l::tt {
namespace {

constexpr int kWordBits = 64;

std::size_t words_for(int num_vars) {
  const std::uint64_t bits = 1ull << num_vars;
  return static_cast<std::size_t>((bits + kWordBits - 1) / kWordBits);
}

// Mask of valid bits in the last word for functions of < 6 variables.
std::uint64_t tail_mask(int num_vars) {
  const std::uint64_t bits = 1ull << num_vars;
  return bits >= kWordBits ? ~0ull : (1ull << bits) - 1;
}

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 26)
    throw std::invalid_argument("TruthTable: num_vars out of range [0,26]");
  words_.assign(words_for(num_vars), 0);
}

TruthTable TruthTable::from_bits(const std::string& bits) {
  if (bits.empty() || (bits.size() & (bits.size() - 1)) != 0)
    throw std::invalid_argument("TruthTable::from_bits: length must be 2^n");
  const int n = std::countr_zero(bits.size());
  TruthTable t(n);
  for (std::size_t m = 0; m < bits.size(); ++m) {
    if (bits[m] == '1')
      t.set(m, true);
    else if (bits[m] != '0')
      throw std::invalid_argument("TruthTable::from_bits: bits must be 0/1");
  }
  return t;
}

TruthTable TruthTable::variable(int num_vars, int i) {
  if (i < 0 || i >= num_vars)
    throw std::invalid_argument("TruthTable::variable: index out of range");
  TruthTable t(num_vars);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m)
    if ((m >> i) & 1) t.set(m, true);
  return t;
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    for (auto& w : t.words_) w = ~0ull;
    t.words_.back() &= tail_mask(num_vars);
  }
  return t;
}

TruthTable TruthTable::random(int num_vars, util::Rng& rng) {
  TruthTable t(num_vars);
  for (auto& w : t.words_) w = rng.next_u64();
  t.words_.back() &= tail_mask(num_vars);
  return t;
}

bool TruthTable::get(std::uint64_t minterm) const {
  return (words_[minterm / kWordBits] >> (minterm % kWordBits)) & 1;
}

void TruthTable::set(std::uint64_t minterm, bool value) {
  const std::uint64_t mask = 1ull << (minterm % kWordBits);
  if (value)
    words_[minterm / kWordBits] |= mask;
  else
    words_[minterm / kWordBits] &= ~mask;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

bool TruthTable::is_constant_zero() const {
  for (auto w : words_)
    if (w) return false;
  return true;
}

bool TruthTable::is_constant_one() const {
  return count_ones() == num_minterms();
}

bool TruthTable::is_independent_of(int i) const {
  return cofactor(i, false) == cofactor(i, true);
}

TruthTable TruthTable::cofactor(int i, bool value) const {
  if (i < 0 || i >= num_vars_)
    throw std::invalid_argument("TruthTable::cofactor: index out of range");
  TruthTable out(num_vars_);
  const std::uint64_t stride = 1ull << i;
  for (std::uint64_t m = 0; m < num_minterms(); ++m) {
    // Project m onto the half-space x_i = value, then copy to both halves.
    const std::uint64_t src = value ? (m | stride) : (m & ~stride);
    if (get(src)) out.set(m, true);
  }
  return out;
}

TruthTable TruthTable::operator~() const {
  TruthTable out(num_vars_);
  for (std::size_t k = 0; k < words_.size(); ++k) out.words_[k] = ~words_[k];
  out.words_.back() &= tail_mask(num_vars_);
  return out;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  check_same_arity(o);
  TruthTable out(num_vars_);
  for (std::size_t k = 0; k < words_.size(); ++k)
    out.words_[k] = words_[k] & o.words_[k];
  return out;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  check_same_arity(o);
  TruthTable out(num_vars_);
  for (std::size_t k = 0; k < words_.size(); ++k)
    out.words_[k] = words_[k] | o.words_[k];
  return out;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  check_same_arity(o);
  TruthTable out(num_vars_);
  for (std::size_t k = 0; k < words_.size(); ++k)
    out.words_[k] = words_[k] ^ o.words_[k];
  return out;
}

bool TruthTable::operator==(const TruthTable& o) const {
  return num_vars_ == o.num_vars_ && words_ == o.words_;
}

bool TruthTable::implies(const TruthTable& o) const {
  check_same_arity(o);
  for (std::size_t k = 0; k < words_.size(); ++k)
    if (words_[k] & ~o.words_[k]) return false;
  return true;
}

std::string TruthTable::to_bits() const {
  std::string out(num_minterms(), '0');
  for (std::uint64_t m = 0; m < num_minterms(); ++m)
    if (get(m)) out[m] = '1';
  return out;
}

std::vector<std::uint64_t> TruthTable::minterms() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t m = 0; m < num_minterms(); ++m)
    if (get(m)) out.push_back(m);
  return out;
}

void TruthTable::check_same_arity(const TruthTable& o) const {
  if (num_vars_ != o.num_vars_)
    throw std::invalid_argument("TruthTable: arity mismatch");
}

}  // namespace l2l::tt
