#pragma once
// Explicit truth tables.
//
// A TruthTable stores the complete function table of a Boolean function of
// n variables as a packed bit vector of 2^n entries. It is deliberately
// exponential: its job in this repository is to be the *semantics oracle*
// that every symbolic representation (cube covers, BDDs, CNF, logic
// networks) is property-tested against, and to implement small exact
// operations (e.g. Quine-McCluskey minterm enumeration).
//
// Variable 0 is the least-significant index bit: minterm m has variable i
// equal to bit i of m.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace l2l::tt {

class TruthTable {
 public:
  /// The all-zero function of `num_vars` variables (num_vars <= 26).
  explicit TruthTable(int num_vars = 0);

  /// Build from a minterm string, LSB first: "0110" is XOR of 2 vars.
  /// Length must be a power of two.
  static TruthTable from_bits(const std::string& bits);

  /// The projection function x_i over n variables.
  static TruthTable variable(int num_vars, int i);

  /// Constant function.
  static TruthTable constant(int num_vars, bool value);

  /// Uniformly random function (deterministic given the Rng state).
  static TruthTable random(int num_vars, util::Rng& rng);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms() const { return 1ull << num_vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  /// Number of minterms where the function is 1.
  std::uint64_t count_ones() const;

  bool is_constant_zero() const;
  bool is_constant_one() const;

  /// True if the function does not depend on variable i.
  bool is_independent_of(int i) const;

  /// Positive/negative cofactor with respect to variable i (same num_vars;
  /// the result is independent of variable i).
  TruthTable cofactor(int i, bool value) const;

  /// Existential / universal quantification of variable i.
  TruthTable exists(int i) const { return cofactor(i, false) | cofactor(i, true); }
  TruthTable forall(int i) const { return cofactor(i, false) & cofactor(i, true); }

  /// Boolean difference d f / d x_i = f_xi XOR f_xi'.
  TruthTable boolean_difference(int i) const {
    return cofactor(i, false) ^ cofactor(i, true);
  }

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  bool operator==(const TruthTable& o) const;

  /// True if this implies o (this <= o pointwise).
  bool implies(const TruthTable& o) const;

  /// Minterm string, LSB first (inverse of from_bits).
  std::string to_bits() const;

  /// All minterms where the function is 1, ascending.
  std::vector<std::uint64_t> minterms() const;

 private:
  void check_same_arity(const TruthTable& o) const;
  int num_vars_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace l2l::tt
