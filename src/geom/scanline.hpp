#pragma once
// Computational geometry for layout checking (the full course's
// "computational geometry for DRC/extraction" topic): axis-aligned
// rectangles and a scanline sweep for overlap and spacing queries.

#include <cstdint>
#include <vector>

namespace l2l::geom {

/// Closed integer rectangle on a layer: [x1, x2] x [y1, y2], x1 <= x2,
/// y1 <= y2 (grid coordinates; a single grid cell is x1 == x2).
struct Rect {
  int x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  int layer = 0;
  int owner = -1;  ///< net id or any tag; -1 = untagged

  bool overlaps(const Rect& o) const {
    return layer == o.layer && x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 &&
           o.y1 <= y2;
  }
  /// L-infinity gap between rectangles on the same layer (0 if touching
  /// or overlapping).
  int gap(const Rect& o) const;
  std::int64_t area() const {
    return static_cast<std::int64_t>(x2 - x1 + 1) *
           static_cast<std::int64_t>(y2 - y1 + 1);
  }
};

/// All overlapping pairs of same-layer rectangles (indices into the input),
/// found by an x-sweep with a y-sorted active set. O(n log n + k·s) where
/// s is the active-band size.
std::vector<std::pair<int, int>> overlapping_pairs(const std::vector<Rect>& rects);

/// Pairs of same-layer rectangles with different owners whose gap is
/// positive but smaller than `min_space` (spacing violations; overlaps are
/// reported by overlapping_pairs instead).
std::vector<std::pair<int, int>> spacing_violations(
    const std::vector<Rect>& rects, int min_space);

}  // namespace l2l::geom
