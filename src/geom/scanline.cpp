#include "geom/scanline.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace l2l::geom {

int Rect::gap(const Rect& o) const {
  const int dx = std::max({0, o.x1 - x2, x1 - o.x2});
  const int dy = std::max({0, o.y1 - y2, y1 - o.y2});
  return std::max(dx, dy);
}

namespace {

struct Event {
  int x;
  bool add;   // add precedes remove at the same x (closed rectangles)
  int index;  // rect index
  bool operator<(const Event& o) const {
    if (x != o.x) return x < o.x;
    return add > o.add;
  }
};

/// Generic sweep: calls `visit(i, j)` for every same-layer pair whose
/// x-ranges (expanded by `x_slack`) intersect and whose y-ranges (expanded
/// by `y_slack`) intersect.
template <typename Visitor>
void sweep(const std::vector<Rect>& rects, int x_slack, int y_slack,
           Visitor&& visit) {
  // Partition by layer: sweeps are independent.
  std::map<int, std::vector<int>> by_layer;
  for (std::size_t i = 0; i < rects.size(); ++i)
    by_layer[rects[i].layer].push_back(static_cast<int>(i));

  for (const auto& [layer, indices] : by_layer) {
    std::vector<Event> events;
    events.reserve(indices.size() * 2);
    for (const int i : indices) {
      events.push_back({rects[static_cast<std::size_t>(i)].x1 - x_slack, true, i});
      events.push_back({rects[static_cast<std::size_t>(i)].x2 + 1, false, i});
    }
    std::sort(events.begin(), events.end());

    // Active set ordered by y1 so the y-band scan can stop early.
    std::multimap<int, int> active;  // y1 -> rect index
    for (const auto& ev : events) {
      const auto& r = rects[static_cast<std::size_t>(ev.index)];
      if (!ev.add) {
        for (auto it = active.find(r.y1); it != active.end() && it->first == r.y1; ++it)
          if (it->second == ev.index) {
            active.erase(it);
            break;
          }
        continue;
      }
      // Visit active rects whose y-interval intersects r's (with slack).
      for (auto it = active.begin(); it != active.end(); ++it) {
        const auto& a = rects[static_cast<std::size_t>(it->second)];
        if (a.y1 > r.y2 + y_slack) break;  // sorted by y1: nothing below
        if (a.y2 + y_slack >= r.y1) visit(it->second, ev.index);
      }
      active.emplace(r.y1, ev.index);
    }
  }
}

}  // namespace

std::vector<std::pair<int, int>> overlapping_pairs(const std::vector<Rect>& rects) {
  std::vector<std::pair<int, int>> out;
  sweep(rects, 0, 0, [&](int a, int b) {
    if (rects[static_cast<std::size_t>(a)].overlaps(rects[static_cast<std::size_t>(b)]))
      out.emplace_back(std::min(a, b), std::max(a, b));
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<int, int>> spacing_violations(
    const std::vector<Rect>& rects, int min_space) {
  std::vector<std::pair<int, int>> out;
  sweep(rects, min_space, min_space, [&](int a, int b) {
    const auto& ra = rects[static_cast<std::size_t>(a)];
    const auto& rb = rects[static_cast<std::size_t>(b)];
    if (ra.owner == rb.owner) return;
    const int g = ra.gap(rb);
    if (g > 0 && g < min_space)
      out.emplace_back(std::min(a, b), std::max(a, b));
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace l2l::geom
