#include "geom/drc.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace l2l::geom {

std::string DrcResult::report() const {
  std::string out = util::format("DRC: %d rectangles, %d violations\n",
                                 rect_count,
                                 static_cast<int>(violations.size()));
  for (const auto& v : violations)
    out += util::format(
        "  %s: net %d [%d,%d-%d,%d L%d] vs net %d [%d,%d-%d,%d L%d]\n",
        v.kind == DrcViolation::Kind::kShort ? "SHORT" : "SPACING", v.net_a,
        v.where_a.x1, v.where_a.y1, v.where_a.x2, v.where_a.y2,
        v.where_a.layer, v.net_b, v.where_b.x1, v.where_b.y1, v.where_b.x2,
        v.where_b.y2, v.where_b.layer);
  return out;
}

std::vector<Rect> rects_from_solution(const route::RouteSolution& sol) {
  std::vector<Rect> rects;
  for (const auto& net : sol.nets) {
    if (net.cells.empty()) continue;
    // Cells sorted by (layer, y, x) merge into maximal horizontal runs.
    auto cells = net.cells;
    std::sort(cells.begin(), cells.end());
    Rect run{cells[0].x, cells[0].y, cells[0].x, cells[0].y, cells[0].layer,
             net.net_id};
    for (std::size_t k = 1; k < cells.size(); ++k) {
      const auto& c = cells[k];
      if (c.layer == run.layer && c.y == run.y1 && c.x == run.x2 + 1) {
        run.x2 = c.x;
      } else {
        rects.push_back(run);
        run = Rect{c.x, c.y, c.x, c.y, c.layer, net.net_id};
      }
    }
    rects.push_back(run);
  }
  return rects;
}

DrcResult check_drc(const route::RouteSolution& sol, int min_space) {
  DrcResult res;
  const auto rects = rects_from_solution(sol);
  res.rect_count = static_cast<int>(rects.size());

  for (const auto& [a, b] : overlapping_pairs(rects)) {
    const auto& ra = rects[static_cast<std::size_t>(a)];
    const auto& rb = rects[static_cast<std::size_t>(b)];
    if (ra.owner == rb.owner) continue;  // same net: legal
    res.violations.push_back(
        {DrcViolation::Kind::kShort, ra.owner, rb.owner, ra, rb});
  }
  if (min_space > 1) {
    for (const auto& [a, b] : spacing_violations(rects, min_space)) {
      const auto& ra = rects[static_cast<std::size_t>(a)];
      const auto& rb = rects[static_cast<std::size_t>(b)];
      res.violations.push_back(
          {DrcViolation::Kind::kSpacing, ra.owner, rb.owner, ra, rb});
    }
  }
  return res;
}

}  // namespace l2l::geom
