#pragma once
// Design-rule checking over routed layouts: convert each net's grid cells
// into maximal horizontal wire segments (rectangles), then check shorts
// (same-layer overlap between different nets) and minimum spacing.

#include <string>
#include <vector>

#include "geom/scanline.hpp"
#include "route/router.hpp"

namespace l2l::geom {

struct DrcViolation {
  enum class Kind { kShort, kSpacing };
  Kind kind;
  int net_a = -1, net_b = -1;
  Rect where_a, where_b;
};

struct DrcResult {
  std::vector<DrcViolation> violations;
  int rect_count = 0;
  bool clean() const { return violations.empty(); }
  std::string report() const;
};

/// Maximal-run rectangles per net: consecutive same-(y, layer) cells merge
/// into one horizontal segment rect, tagged with the net id.
std::vector<Rect> rects_from_solution(const route::RouteSolution& sol);

/// Check a routed solution. `min_space` = 1 means adjacent cells of
/// different nets are legal (the grid's own rule); larger values emulate
/// a stricter process.
DrcResult check_drc(const route::RouteSolution& sol, int min_space = 1);

}  // namespace l2l::geom
