#include "geom/extract.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "util/strings.hpp"

namespace l2l::geom {
namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
};

}  // namespace

ExtractionResult extract_connectivity(const route::RouteSolution& sol) {
  ExtractionResult res;
  std::map<route::GridPoint, int> index;
  auto add_point = [&](const route::GridPoint& p) {
    if (!index.count(p)) {
      index[p] = static_cast<int>(res.cells.size());
      res.cells.push_back(p);
    }
  };

  // "Draw" each net: scaled cell pads, wire midpoints between the net's
  // own adjacent cells, via cuts (layer 2) between its stacked cells.
  for (const auto& net : sol.nets) {
    std::set<route::GridPoint> cells(net.cells.begin(), net.cells.end());
    for (const auto& c : cells) {
      add_point({2 * c.x, 2 * c.y, c.layer});
      const route::GridPoint right{c.x + 1, c.y, c.layer};
      const route::GridPoint up{c.x, c.y + 1, c.layer};
      const route::GridPoint above{c.x, c.y, c.layer + 1};
      if (cells.count(right)) add_point({2 * c.x + 1, 2 * c.y, c.layer});
      if (cells.count(up)) add_point({2 * c.x, 2 * c.y + 1, c.layer});
      if (cells.count(above)) add_point({2 * c.x, 2 * c.y, 2});
    }
  }

  // Blind extraction over the drawn points: in-plane adjacency on metal
  // layers; metal-to-cut stacking connects the two metal layers.
  UnionFind uf(static_cast<int>(res.cells.size()));
  for (const auto& [c, i] : index) {
    if (c.layer <= 1) {
      const route::GridPoint nbrs[2] = {{c.x + 1, c.y, c.layer},
                                        {c.x, c.y + 1, c.layer}};
      for (const auto& n : nbrs)
        if (const auto it = index.find(n); it != index.end())
          uf.unite(i, it->second);
    } else {  // cut: connects metal 0 and metal 1 at the same point
      for (int metal = 0; metal <= 1; ++metal)
        if (const auto it = index.find({c.x, c.y, metal}); it != index.end())
          uf.unite(i, it->second);
    }
  }

  std::map<int, int> compact;
  res.component.resize(res.cells.size());
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    const int root = uf.find(static_cast<int>(i));
    const auto [it, fresh] = compact.try_emplace(root, res.num_components);
    if (fresh) ++res.num_components;
    res.component[i] = it->second;
  }
  return res;
}

std::string LvsResult::report() const {
  if (clean) return "LVS: clean\n";
  std::string out = "LVS: FAILED\n";
  for (const int n : opens) out += util::format("  open on net %d\n", n);
  for (const auto& [a, b] : shorts)
    out += util::format("  short between nets %d and %d\n", a, b);
  return out;
}

LvsResult lvs(const gen::RoutingProblem& problem,
              const route::RouteSolution& sol) {
  LvsResult res;
  const auto ext = extract_connectivity(sol);
  std::map<route::GridPoint, int> comp_of;
  for (std::size_t i = 0; i < ext.cells.size(); ++i)
    comp_of[ext.cells[i]] = ext.component[i];

  // Map each intended net to the set of components its pins landed in
  // (pins live at scaled coordinates in the drawn geometry).
  std::map<int, std::set<int>> comps_of_net;
  for (const auto& net : problem.nets) {
    auto& comps = comps_of_net[net.id];
    for (const auto& pin : net.pins) {
      const auto it =
          comp_of.find({2 * pin.x, 2 * pin.y, pin.layer});
      if (it == comp_of.end()) {
        comps.insert(-1 - net.id);  // missing pin: unique pseudo-component
      } else {
        comps.insert(it->second);
      }
    }
    if (comps.size() > 1) res.opens.push_back(net.id);
  }
  // Shorts: a component claimed by two different nets.
  std::map<int, int> net_of_comp;
  std::set<std::pair<int, int>> seen;
  for (const auto& [net_id, comps] : comps_of_net) {
    for (const int c : comps) {
      if (c < 0) continue;
      const auto [it, fresh] = net_of_comp.try_emplace(c, net_id);
      if (!fresh && it->second != net_id) {
        const auto key = std::minmax(it->second, net_id);
        if (seen.insert({key.first, key.second}).second)
          res.shorts.emplace_back(key.first, key.second);
      }
    }
  }
  res.clean = res.opens.empty() && res.shorts.empty();
  return res;
}

}  // namespace l2l::geom
