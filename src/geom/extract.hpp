#pragma once
// Connectivity extraction and LVS ("layout vs schematic"): rebuild the
// netlist from the *bare geometry* of a routed layout -- no net labels --
// and compare against the intended connectivity. Catches both opens (a
// net's pins in different extracted components) and shorts (two nets'
// pins in one component).

#include <string>
#include <vector>

#include "route/router.hpp"

namespace l2l::geom {

struct ExtractionResult {
  /// The extracted "drawn geometry" points, in 2x-scaled coordinates:
  /// grid cell (x, y) becomes point (2x, 2y); wire segments between
  /// consecutive cells of a net add midpoints; vias add cut-layer points.
  /// Adjacent *tracks* of different nets are therefore separated by a gap,
  /// exactly as real metal at half-pitch width would be.
  std::vector<route::GridPoint> cells;
  std::vector<int> component;
  int num_components = 0;
};

/// Blind connectivity extraction: each net's cells are first "drawn" as
/// scaled geometry (the only place net identity is used -- a net's cell
/// list is its drawn shape); extraction itself unions touching geometry
/// with no knowledge of labels.
ExtractionResult extract_connectivity(const route::RouteSolution& sol);

struct LvsResult {
  bool clean = false;
  /// Net ids whose pins ended up in more than one component.
  std::vector<int> opens;
  /// Pairs of net ids whose pins share a component.
  std::vector<std::pair<int, int>> shorts;
  std::string report() const;
};

/// Extract the layout and compare against the problem's intended pins.
LvsResult lvs(const gen::RoutingProblem& problem,
              const route::RouteSolution& sol);

}  // namespace l2l::geom
