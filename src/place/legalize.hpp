#pragma once
// Row legalization: snap a continuous placement onto standard-cell rows
// (distinct sites), preserving relative order.

#include <vector>

#include "gen/placement_gen.hpp"
#include "place/wirelength.hpp"

namespace l2l::place {

struct Grid {
  int rows = 0;
  int sites_per_row = 0;
  double width = 0.0, height = 0.0;

  double site_x(int col) const {
    return (col + 0.5) * width / sites_per_row;
  }
  double row_y(int row) const { return (row + 0.5) * height / rows; }
};

/// Site assignment: per cell, (column, row). All assignments distinct.
struct GridPlacement {
  std::vector<int> col, row;

  Placement to_continuous(const Grid& g) const;
};

/// Legalize by y-banding into rows then x-sorting into sites. Throws
/// std::invalid_argument when the grid has too few sites.
GridPlacement legalize(const gen::PlacementProblem& p, const Placement& pl,
                       const Grid& grid);

/// Verify all assignments are distinct and in range.
bool is_legal(const GridPlacement& gp, const Grid& grid);

}  // namespace l2l::place
