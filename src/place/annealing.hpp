#pragma once
// Simulated-annealing placement (the other Week-6 algorithm): cells on a
// site grid, pairwise swap/move perturbations, Metropolis acceptance with
// geometric cooling. Deterministic given the Rng seed.

#include "gen/placement_gen.hpp"
#include "place/legalize.hpp"
#include "util/rng.hpp"

namespace l2l::place {

struct AnnealingOptions {
  double initial_acceptance = 0.8;  ///< target acceptance rate to set T0
  double cooling = 0.92;            ///< geometric temperature factor
  int moves_per_cell_per_stage = 12;
  double stop_temperature_fraction = 1e-4;  ///< stop at T0 * fraction
  bool greedy = false;  ///< ablation: accept only improving moves (T = 0)
};

struct AnnealingStats {
  int stages = 0;
  long long moves = 0;
  long long accepted = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  double initial_temperature = 0.0;
};

/// Anneal starting from `start` (commonly a legalized quadratic placement
/// or a random assignment). Returns an is_legal() placement.
GridPlacement anneal(const gen::PlacementProblem& p, const Grid& grid,
                     const GridPlacement& start, const AnnealingOptions& opt,
                     util::Rng& rng, AnnealingStats* stats = nullptr);

/// Random legal starting placement.
GridPlacement random_grid_placement(const gen::PlacementProblem& p,
                                    const Grid& grid, util::Rng& rng);

}  // namespace l2l::place
