#pragma once
// Quadratic placement with recursive bipartition spreading, after the
// PROUD sea-of-gates placer [13] -- MOOC software Project 3.
//
// Minimizing the clique/star quadratic wirelength gives the linear system
// A x = b_x (independently for y). Pads anchor the system; without
// spreading all cells collapse toward the center, so the placer recurses:
// split the cells at the median, constrain each half to its region with
// external connections projected onto the region boundary, and re-solve.

#include "gen/placement_gen.hpp"
#include "place/wirelength.hpp"
#include "util/budget.hpp"

namespace l2l::place {

enum class NetModel {
  kClique,  ///< pairwise edges, weight 1/(k-1)
  kStar,    ///< auxiliary star node per net (extra variables)
};

struct QuadraticOptions {
  NetModel net_model = NetModel::kClique;
  int min_region_cells = 8;  ///< stop recursion below this many cells
  int max_levels = 8;
  double cg_tolerance = 1e-8;
  /// Optional resource guard (not owned; must outlive the call). Each
  /// region solve consumes one budget step; the CG inner loop polls the
  /// same guard's deadline per iteration. On exhaustion the recursion
  /// stops refining and the coarser parent-level placement is returned;
  /// QuadraticStats::status records why. Step-limited runs stop at a
  /// deterministic region.
  const util::Budget* budget = nullptr;
};

struct QuadraticStats {
  int regions_solved = 0;
  int levels = 0;
  int cg_iterations_total = 0;
  util::Status status;  ///< non-ok when a resource guard stopped refinement
};

/// Global (unconstrained) quadratic solve only -- one Ax=b per axis.
Placement solve_global(const gen::PlacementProblem& p,
                       const QuadraticOptions& opt = {},
                       QuadraticStats* stats = nullptr);

/// Full recursive-bipartition placement.
Placement place_quadratic(const gen::PlacementProblem& p,
                          const QuadraticOptions& opt = {},
                          QuadraticStats* stats = nullptr);

}  // namespace l2l::place
