#include "place/wirelength.hpp"

#include <algorithm>
#include <stdexcept>

namespace l2l::place {
namespace {

struct Box {
  double xmin, xmax, ymin, ymax;
};

Box net_box(const gen::PlacementProblem& p, const Placement& pl,
            const std::vector<gen::Pin>& net) {
  Box b{1e300, -1e300, 1e300, -1e300};
  for (const auto& pin : net) {
    double px, py;
    if (pin.is_pad) {
      px = p.pads[static_cast<std::size_t>(pin.index)].x;
      py = p.pads[static_cast<std::size_t>(pin.index)].y;
    } else {
      px = pl.x[static_cast<std::size_t>(pin.index)];
      py = pl.y[static_cast<std::size_t>(pin.index)];
    }
    b.xmin = std::min(b.xmin, px);
    b.xmax = std::max(b.xmax, px);
    b.ymin = std::min(b.ymin, py);
    b.ymax = std::max(b.ymax, py);
  }
  return b;
}

}  // namespace

double hpwl(const gen::PlacementProblem& p, const Placement& pl) {
  if (static_cast<int>(pl.x.size()) != p.num_cells ||
      static_cast<int>(pl.y.size()) != p.num_cells)
    throw std::invalid_argument("hpwl: placement size mismatch");
  double total = 0.0;
  for (const auto& net : p.nets) {
    const Box b = net_box(p, pl, net);
    total += (b.xmax - b.xmin) + (b.ymax - b.ymin);
  }
  return total;
}

double quadratic_wirelength(const gen::PlacementProblem& p,
                            const Placement& pl) {
  double total = 0.0;
  for (const auto& net : p.nets) {
    const auto k = net.size();
    if (k < 2) continue;
    const double w = 1.0 / static_cast<double>(k - 1);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        auto coord = [&](const gen::Pin& pin) {
          return pin.is_pad
                     ? std::make_pair(p.pads[static_cast<std::size_t>(pin.index)].x,
                                      p.pads[static_cast<std::size_t>(pin.index)].y)
                     : std::make_pair(pl.x[static_cast<std::size_t>(pin.index)],
                                      pl.y[static_cast<std::size_t>(pin.index)]);
        };
        const auto [xi, yi] = coord(net[i]);
        const auto [xj, yj] = coord(net[j]);
        total += w * ((xi - xj) * (xi - xj) + (yi - yj) * (yi - yj));
      }
    }
  }
  return total;
}

}  // namespace l2l::place
