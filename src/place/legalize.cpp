#include "place/legalize.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace l2l::place {

Placement GridPlacement::to_continuous(const Grid& g) const {
  Placement pl;
  pl.x.reserve(col.size());
  pl.y.reserve(col.size());
  for (std::size_t c = 0; c < col.size(); ++c) {
    pl.x.push_back(g.site_x(col[c]));
    pl.y.push_back(g.row_y(row[c]));
  }
  return pl;
}

GridPlacement legalize(const gen::PlacementProblem& p, const Placement& pl,
                       const Grid& grid) {
  const int n = p.num_cells;
  if (grid.rows * grid.sites_per_row < n)
    throw std::invalid_argument("legalize: not enough sites");

  // Rows get balanced capacity; cells are banded by y order.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return pl.y[static_cast<std::size_t>(a)] < pl.y[static_cast<std::size_t>(b)];
  });

  GridPlacement gp;
  gp.col.assign(static_cast<std::size_t>(n), 0);
  gp.row.assign(static_cast<std::size_t>(n), 0);

  const int base = n / grid.rows;
  const int extra = n % grid.rows;
  std::size_t cursor = 0;
  for (int r = 0; r < grid.rows; ++r) {
    const int count = base + (r < extra ? 1 : 0);
    std::vector<int> band(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                          order.begin() + static_cast<std::ptrdiff_t>(cursor + static_cast<std::size_t>(count)));
    cursor += static_cast<std::size_t>(count);
    std::sort(band.begin(), band.end(), [&](int a, int b) {
      return pl.x[static_cast<std::size_t>(a)] < pl.x[static_cast<std::size_t>(b)];
    });
    // Spread the band across the row, keeping x order.
    for (std::size_t k = 0; k < band.size(); ++k) {
      const int col = static_cast<int>(
          k * static_cast<std::size_t>(grid.sites_per_row) / band.size());
      gp.col[static_cast<std::size_t>(band[k])] = col;
      gp.row[static_cast<std::size_t>(band[k])] = r;
    }
    // Collisions from the rounding above: shift right to free sites.
    std::set<int> taken;
    for (std::size_t k = 0; k < band.size(); ++k) {
      int col = gp.col[static_cast<std::size_t>(band[k])];
      while (taken.count(col)) ++col;
      if (col >= grid.sites_per_row)
        throw std::logic_error("legalize: row overflow");
      taken.insert(col);
      gp.col[static_cast<std::size_t>(band[k])] = col;
    }
  }
  return gp;
}

bool is_legal(const GridPlacement& gp, const Grid& grid) {
  std::set<std::pair<int, int>> seen;
  for (std::size_t c = 0; c < gp.col.size(); ++c) {
    if (gp.col[c] < 0 || gp.col[c] >= grid.sites_per_row) return false;
    if (gp.row[c] < 0 || gp.row[c] >= grid.rows) return false;
    if (!seen.insert({gp.col[c], gp.row[c]}).second) return false;
  }
  return true;
}

}  // namespace l2l::place
