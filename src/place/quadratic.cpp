#include "place/quadratic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/cg.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace l2l::place {
namespace {

struct Region {
  double xmin, xmax, ymin, ymax;
  double cx() const { return 0.5 * (xmin + xmax); }
  double cy() const { return 0.5 * (ymin + ymax); }
};

double clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

/// Solve the quadratic program for `cells` constrained to `region`;
/// all other pins are fixed at their current (projected) coordinates.
void solve_region(const gen::PlacementProblem& p, const QuadraticOptions& opt,
                  const std::vector<int>& cells, const Region& region,
                  Placement& pl, QuadraticStats* stats) {
  if (cells.empty()) return;
  // Resource guard: one step per region solve. An exhausted guard leaves
  // the cells at their coarser parent-level coordinates.
  if (opt.budget && (!opt.budget->consume(1) || opt.budget->exhausted())) {
    if (stats && stats->status.ok()) {
      stats->status = opt.budget->status();
      if (stats->status.ok())
        stats->status = util::Status::budget("placement region budget exhausted");
    }
    return;
  }
  std::vector<int> var_of(static_cast<std::size_t>(p.num_cells), -1);
  for (std::size_t k = 0; k < cells.size(); ++k)
    var_of[static_cast<std::size_t>(cells[k])] = static_cast<int>(k);

  // Star model appends one variable per net with at least one free pin.
  int num_vars = static_cast<int>(cells.size());
  std::vector<int> star_var(p.nets.size(), -1);
  if (opt.net_model == NetModel::kStar) {
    for (std::size_t n = 0; n < p.nets.size(); ++n) {
      for (const auto& pin : p.nets[n])
        if (!pin.is_pad && var_of[static_cast<std::size_t>(pin.index)] >= 0) {
          star_var[n] = num_vars++;
          break;
        }
    }
  }

  linalg::SparseMatrix ax(num_vars);
  std::vector<double> bx(static_cast<std::size_t>(num_vars), 0.0);
  std::vector<double> by(static_cast<std::size_t>(num_vars), 0.0);
  // One symmetric matrix serves both axes (same connectivity); only the
  // right-hand sides differ.

  auto fixed_coord = [&](const gen::Pin& pin) {
    double px, py;
    if (pin.is_pad) {
      px = p.pads[static_cast<std::size_t>(pin.index)].x;
      py = p.pads[static_cast<std::size_t>(pin.index)].y;
    } else {
      px = pl.x[static_cast<std::size_t>(pin.index)];
      py = pl.y[static_cast<std::size_t>(pin.index)];
    }
    // PROUD-style projection of external pins onto the region boundary.
    return std::make_pair(clamp(px, region.xmin, region.xmax),
                          clamp(py, region.ymin, region.ymax));
  };

  for (std::size_t n = 0; n < p.nets.size(); ++n) {
    const auto& net = p.nets[n];
    if (net.size() < 2) continue;

    if (opt.net_model == NetModel::kClique) {
      const double w = 1.0 / static_cast<double>(net.size() - 1);
      for (std::size_t i = 0; i < net.size(); ++i) {
        const int vi = net[i].is_pad
                           ? -1
                           : var_of[static_cast<std::size_t>(net[i].index)];
        for (std::size_t j = i + 1; j < net.size(); ++j) {
          const int vj = net[j].is_pad
                             ? -1
                             : var_of[static_cast<std::size_t>(net[j].index)];
          if (vi < 0 && vj < 0) continue;
          if (vi >= 0 && vj >= 0) {
            ax.add(vi, vi, w);
            ax.add(vj, vj, w);
            ax.add(vi, vj, -w);
            ax.add(vj, vi, -w);
          } else {
            const int v = vi >= 0 ? vi : vj;
            const auto [fx, fy] = fixed_coord(vi >= 0 ? net[j] : net[i]);
            ax.add(v, v, w);
            bx[static_cast<std::size_t>(v)] += w * fx;
            by[static_cast<std::size_t>(v)] += w * fy;
          }
        }
      }
    } else {
      const int s = star_var[n];
      if (s < 0) continue;  // no free pin: net is inert in this region
      const double w =
          static_cast<double>(net.size()) / static_cast<double>(net.size() - 1);
      for (const auto& pin : net) {
        const int v = pin.is_pad ? -1 : var_of[static_cast<std::size_t>(pin.index)];
        if (v >= 0) {
          ax.add(v, v, w);
          ax.add(s, s, w);
          ax.add(v, s, -w);
          ax.add(s, v, -w);
        } else {
          const auto [fx, fy] = fixed_coord(pin);
          ax.add(s, s, w);
          bx[static_cast<std::size_t>(s)] += w * fx;
          by[static_cast<std::size_t>(s)] += w * fy;
        }
      }
    }
  }

  // Weak anchor to the region center removes the translation null space
  // when a region has no external connections.
  constexpr double kAnchor = 1e-6;
  for (int v = 0; v < num_vars; ++v) {
    ax.add(v, v, kAnchor);
    bx[static_cast<std::size_t>(v)] += kAnchor * region.cx();
    by[static_cast<std::size_t>(v)] += kAnchor * region.cy();
  }

  ax.compress();
  linalg::CgOptions cg;
  cg.tolerance = opt.cg_tolerance;
  cg.max_iterations = 4 * num_vars + 100;
  cg.budget = opt.budget;  // CG polls the deadline, never consumes steps
  const auto rx = linalg::conjugate_gradient(ax, bx, cg);
  const auto ry = linalg::conjugate_gradient(ax, by, cg);
  if (stats) {
    ++stats->regions_solved;
    stats->cg_iterations_total += rx.iterations + ry.iterations;
  }
  // Region solves happen sequentially on the caller's thread (the CG
  // inside is what parallelizes), so direct registry updates here are
  // deterministic. The residual trajectory is recorded as -log2(residual)
  // so tighter convergence lands in higher buckets.
  if (obs::enabled()) {
    const std::int64_t iters = rx.iterations + ry.iterations;
    obs::count("place.regions_solved");
    obs::count("place.cg_iterations", iters);
    obs::observe("place.cg_iterations_per_region", iters);
    const double res = std::max(rx.residual, ry.residual);
    std::int64_t negexp = 0;
    if (res > 0.0 && std::isfinite(res))
      negexp = std::max(0, -std::ilogb(res));
    obs::observe("place.cg_residual_negexp", negexp);
  }
  for (std::size_t k = 0; k < cells.size(); ++k) {
    pl.x[static_cast<std::size_t>(cells[k])] =
        clamp(rx.x[k], region.xmin, region.xmax);
    pl.y[static_cast<std::size_t>(cells[k])] =
        clamp(ry.x[k], region.ymin, region.ymax);
  }
}

void recurse(const gen::PlacementProblem& p, const QuadraticOptions& opt,
             std::vector<int> cells, const Region& region, int level,
             Placement& pl, QuadraticStats* stats) {
  solve_region(p, opt, cells, region, pl, stats);
  if (stats) stats->levels = std::max(stats->levels, level + 1);
  if (static_cast<int>(cells.size()) <= opt.min_region_cells ||
      level >= opt.max_levels)
    return;
  // Stop partitioning once the guard has tripped: the placement so far is
  // the coarse result we hand back.
  if (opt.budget && opt.budget->exhausted()) return;

  // Alternate cut direction; split the *cells* at the median so both
  // halves hold equal area, and the *region* at its geometric middle.
  const bool cut_x = (level % 2) == 0;
  std::sort(cells.begin(), cells.end(), [&](int a, int b) {
    return cut_x ? pl.x[static_cast<std::size_t>(a)] < pl.x[static_cast<std::size_t>(b)]
                 : pl.y[static_cast<std::size_t>(a)] < pl.y[static_cast<std::size_t>(b)];
  });
  const std::size_t half = cells.size() / 2;
  std::vector<int> lo(cells.begin(), cells.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<int> hi(cells.begin() + static_cast<std::ptrdiff_t>(half), cells.end());

  Region rlo = region, rhi = region;
  if (cut_x) {
    rlo.xmax = region.cx();
    rhi.xmin = region.cx();
  } else {
    rlo.ymax = region.cy();
    rhi.ymin = region.cy();
  }
  // Seed the halves by clamping current positions into their sub-regions.
  for (const int c : lo) {
    pl.x[static_cast<std::size_t>(c)] = clamp(pl.x[static_cast<std::size_t>(c)], rlo.xmin, rlo.xmax);
    pl.y[static_cast<std::size_t>(c)] = clamp(pl.y[static_cast<std::size_t>(c)], rlo.ymin, rlo.ymax);
  }
  for (const int c : hi) {
    pl.x[static_cast<std::size_t>(c)] = clamp(pl.x[static_cast<std::size_t>(c)], rhi.xmin, rhi.xmax);
    pl.y[static_cast<std::size_t>(c)] = clamp(pl.y[static_cast<std::size_t>(c)], rhi.ymin, rhi.ymax);
  }
  recurse(p, opt, std::move(lo), rlo, level + 1, pl, stats);
  recurse(p, opt, std::move(hi), rhi, level + 1, pl, stats);
}

}  // namespace

Placement solve_global(const gen::PlacementProblem& p,
                       const QuadraticOptions& opt, QuadraticStats* stats) {
  Placement pl;
  pl.x.assign(static_cast<std::size_t>(p.num_cells), p.width / 2);
  pl.y.assign(static_cast<std::size_t>(p.num_cells), p.height / 2);
  std::vector<int> all(static_cast<std::size_t>(p.num_cells));
  std::iota(all.begin(), all.end(), 0);
  solve_region(p, opt, all, Region{0, p.width, 0, p.height}, pl, stats);
  return pl;
}

Placement place_quadratic(const gen::PlacementProblem& p,
                          const QuadraticOptions& opt, QuadraticStats* stats) {
  obs::ScopedSpan span("place.quadratic");
  obs::count("place.calls");
  Placement pl;
  pl.x.assign(static_cast<std::size_t>(p.num_cells), p.width / 2);
  pl.y.assign(static_cast<std::size_t>(p.num_cells), p.height / 2);
  std::vector<int> all(static_cast<std::size_t>(p.num_cells));
  std::iota(all.begin(), all.end(), 0);
  recurse(p, opt, std::move(all), Region{0, p.width, 0, p.height}, 0, pl, stats);
  return pl;
}

}  // namespace l2l::place
