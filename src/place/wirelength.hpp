#pragma once
// Placement objective functions (Week 6).

#include <vector>

#include "gen/placement_gen.hpp"

namespace l2l::place {

/// A continuous placement: coordinates per cell.
struct Placement {
  std::vector<double> x, y;
};

/// Half-perimeter wirelength: sum over nets of the pin bounding box
/// half-perimeter. The standard placement quality metric.
double hpwl(const gen::PlacementProblem& p, const Placement& pl);

/// Quadratic (squared Euclidean, clique-model) wirelength -- what the
/// quadratic placer actually minimizes; reported for comparison.
double quadratic_wirelength(const gen::PlacementProblem& p, const Placement& pl);

}  // namespace l2l::place
