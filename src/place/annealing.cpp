#include "place/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace l2l::place {
namespace {

/// Incremental-HPWL evaluation state.
struct State {
  const gen::PlacementProblem& p;
  const Grid& grid;
  std::vector<int> col, row;                 // per cell
  std::vector<int> occupant;                 // per site: cell or -1
  std::vector<std::vector<int>> nets_of;     // cell -> net indices

  State(const gen::PlacementProblem& prob, const Grid& g,
        const GridPlacement& start)
      : p(prob), grid(g), col(start.col), row(start.row),
        occupant(static_cast<std::size_t>(g.rows) * static_cast<std::size_t>(g.sites_per_row), -1),
        nets_of(static_cast<std::size_t>(prob.num_cells)) {
    for (int c = 0; c < prob.num_cells; ++c)
      occupant[site_index(col[static_cast<std::size_t>(c)], row[static_cast<std::size_t>(c)])] = c;
    for (std::size_t n = 0; n < prob.nets.size(); ++n)
      for (const auto& pin : prob.nets[n])
        if (!pin.is_pad)
          nets_of[static_cast<std::size_t>(pin.index)].push_back(static_cast<int>(n));
  }

  std::size_t site_index(int c, int r) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(grid.sites_per_row) +
           static_cast<std::size_t>(c);
  }

  double net_hpwl(int n) const {
    double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
    for (const auto& pin : p.nets[static_cast<std::size_t>(n)]) {
      double px, py;
      if (pin.is_pad) {
        px = p.pads[static_cast<std::size_t>(pin.index)].x;
        py = p.pads[static_cast<std::size_t>(pin.index)].y;
      } else {
        px = grid.site_x(col[static_cast<std::size_t>(pin.index)]);
        py = grid.row_y(row[static_cast<std::size_t>(pin.index)]);
      }
      xmin = std::min(xmin, px);
      xmax = std::max(xmax, px);
      ymin = std::min(ymin, py);
      ymax = std::max(ymax, py);
    }
    return (xmax - xmin) + (ymax - ymin);
  }

  double total_hpwl() const {
    double t = 0.0;
    for (std::size_t n = 0; n < p.nets.size(); ++n)
      t += net_hpwl(static_cast<int>(n));
    return t;
  }
};

}  // namespace

GridPlacement random_grid_placement(const gen::PlacementProblem& p,
                                    const Grid& grid, util::Rng& rng) {
  const auto sites = static_cast<std::size_t>(grid.rows) *
                     static_cast<std::size_t>(grid.sites_per_row);
  if (sites < static_cast<std::size_t>(p.num_cells))
    throw std::invalid_argument("random_grid_placement: not enough sites");
  std::vector<std::size_t> order(sites);
  for (std::size_t i = 0; i < sites; ++i) order[i] = i;
  rng.shuffle(order);
  GridPlacement gp;
  gp.col.resize(static_cast<std::size_t>(p.num_cells));
  gp.row.resize(static_cast<std::size_t>(p.num_cells));
  for (int c = 0; c < p.num_cells; ++c) {
    gp.col[static_cast<std::size_t>(c)] =
        static_cast<int>(order[static_cast<std::size_t>(c)] %
                         static_cast<std::size_t>(grid.sites_per_row));
    gp.row[static_cast<std::size_t>(c)] =
        static_cast<int>(order[static_cast<std::size_t>(c)] /
                         static_cast<std::size_t>(grid.sites_per_row));
  }
  return gp;
}

GridPlacement anneal(const gen::PlacementProblem& p, const Grid& grid,
                     const GridPlacement& start, const AnnealingOptions& opt,
                     util::Rng& rng, AnnealingStats* stats) {
  State st(p, grid, start);
  AnnealingStats local;
  local.initial_cost = st.total_hpwl();
  double cost = local.initial_cost;

  // Affected-net scratch shared across moves.
  std::vector<int> touched;
  auto try_move = [&](double temperature) {
    // Pick a random cell and a random target site.
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.num_cells)));
    const int tc = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(grid.sites_per_row)));
    const int tr = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(grid.rows)));
    const int b = st.occupant[st.site_index(tc, tr)];
    if (b == a) return false;

    touched.clear();
    for (const int n : st.nets_of[static_cast<std::size_t>(a)]) touched.push_back(n);
    if (b >= 0)
      for (const int n : st.nets_of[static_cast<std::size_t>(b)]) touched.push_back(n);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    double before = 0.0;
    for (const int n : touched) before += st.net_hpwl(n);

    // Apply: move a to (tc,tr); b (if any) to a's old site.
    const int ac = st.col[static_cast<std::size_t>(a)];
    const int ar = st.row[static_cast<std::size_t>(a)];
    st.col[static_cast<std::size_t>(a)] = tc;
    st.row[static_cast<std::size_t>(a)] = tr;
    st.occupant[st.site_index(tc, tr)] = a;
    if (b >= 0) {
      st.col[static_cast<std::size_t>(b)] = ac;
      st.row[static_cast<std::size_t>(b)] = ar;
      st.occupant[st.site_index(ac, ar)] = b;
    } else {
      st.occupant[st.site_index(ac, ar)] = -1;
    }

    double after = 0.0;
    for (const int n : touched) after += st.net_hpwl(n);
    const double delta = after - before;

    const bool accept =
        delta <= 0.0 ||
        (!opt.greedy && temperature > 0.0 &&
         rng.next_double() < std::exp(-delta / temperature));
    if (accept) {
      cost += delta;
      return true;
    }
    // Undo.
    st.col[static_cast<std::size_t>(a)] = ac;
    st.row[static_cast<std::size_t>(a)] = ar;
    st.occupant[st.site_index(ac, ar)] = a;
    if (b >= 0) {
      st.col[static_cast<std::size_t>(b)] = tc;
      st.row[static_cast<std::size_t>(b)] = tr;
      st.occupant[st.site_index(tc, tr)] = b;
    } else {
      st.occupant[st.site_index(tc, tr)] = -1;
    }
    return false;
  };

  // Estimate T0 from the positive-delta distribution so that the initial
  // acceptance rate is roughly opt.initial_acceptance.
  double t0 = 0.0;
  {
    double sum_pos = 0.0;
    int n_pos = 0;
    const double snapshot = cost;
    for (int k = 0; k < 100; ++k) {
      const double before = cost;
      try_move(1e18);  // accept everything to sample the delta landscape
      const double d = cost - before;
      if (d > 0) {
        sum_pos += d;
        ++n_pos;
      }
    }
    const double mean_pos = n_pos > 0 ? sum_pos / n_pos : 1.0;
    t0 = -mean_pos / std::log(opt.initial_acceptance);
    (void)snapshot;
  }
  local.initial_temperature = t0;

  const long long moves_per_stage =
      static_cast<long long>(opt.moves_per_cell_per_stage) * p.num_cells;
  double temperature = opt.greedy ? 0.0 : t0;
  const double t_stop = t0 * opt.stop_temperature_fraction;
  for (;;) {
    ++local.stages;
    for (long long m = 0; m < moves_per_stage; ++m) {
      ++local.moves;
      if (try_move(temperature)) ++local.accepted;
    }
    if (opt.greedy) {
      if (local.stages >= 4) break;  // greedy converges fast; bounded stages
    } else {
      temperature *= opt.cooling;
      if (temperature < t_stop) break;
    }
  }

  local.final_cost = st.total_hpwl();
  if (stats) *stats = local;
  GridPlacement out;
  out.col = std::move(st.col);
  out.row = std::move(st.row);
  return out;
}

}  // namespace l2l::place
