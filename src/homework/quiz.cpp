#include "homework/quiz.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cubes/urp.hpp"
#include "espresso/qm.hpp"
#include "gen/function_gen.hpp"
#include "mls/factor.hpp"
#include "mls/sop.hpp"
#include "network/network.hpp"
#include "route/maze.hpp"
#include "sat/solver.hpp"
#include "timing/sta.hpp"
#include "util/strings.hpp"

namespace l2l::homework {
namespace {

bdd::Bdd cover_to_bdd(const cubes::Cover& f, bdd::Manager& mgr) {
  bdd::Bdd r = mgr.zero();
  for (const auto& c : f.cubes()) {
    bdd::Bdd term = mgr.one();
    for (int v = 0; v < f.num_vars(); ++v) {
      if (c.code(v) == cubes::Pcn::kPos) term = term & mgr.var(v);
      if (c.code(v) == cubes::Pcn::kNeg) term = term & mgr.nvar(v);
    }
    r = r | term;
  }
  return r;
}

}  // namespace

Quiz urp_tautology_quiz(util::Rng& rng) {
  // Mix wide cubes so tautologies actually occur in the pool.
  const int n = 3 + static_cast<int>(rng.next_below(2));
  cubes::Cover f(n);
  const int k = 3 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < k; ++i) {
    cubes::Cube c(n);
    for (int v = 0; v < n; ++v) {
      switch (rng.next_below(4)) {  // bias toward don't-cares
        case 0: c.set_code(v, cubes::Pcn::kNeg); break;
        case 1: c.set_code(v, cubes::Pcn::kPos); break;
        default: break;
      }
    }
    f.add(std::move(c));
  }
  Quiz q;
  q.topic = "Week 1: Computational Boolean Algebra";
  q.question = util::format(
      "Using the unate recursive paradigm, is the following %d-variable "
      "cover a tautology? (yes/no)\n%s", n, f.to_string().c_str());
  q.answer = cubes::is_tautology(f) ? "yes" : "no";
  return q;
}

Quiz bdd_size_quiz(util::Rng& rng) {
  const int n = 4;
  const auto f = gen::random_cover(n, 3 + static_cast<int>(rng.next_below(3)), rng);
  bdd::Manager mgr(n);
  const auto b = cover_to_bdd(f, mgr);
  Quiz q;
  q.topic = "Week 2: BDDs";
  q.question = util::format(
      "Build the ROBDD (complement edges, variable order x0<x1<x2<x3) for "
      "the SOP below. How many decision nodes does it have?\n%s",
      f.to_string().c_str());
  q.answer = util::format("%d", static_cast<int>(b.size()));
  return q;
}

Quiz sat_quiz(util::Rng& rng) {
  const int nv = 4 + static_cast<int>(rng.next_below(3));
  const int nc = nv * 3 + static_cast<int>(rng.next_below(10));
  std::string text;
  sat::Solver solver;
  solver.reserve_vars(nv);
  bool consistent = true;
  for (int k = 0; k < nc; ++k) {
    std::vector<sat::Lit> clause;
    std::string line;
    while (clause.size() < 3) {
      const auto v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nv)));
      bool dup = false;
      for (const auto& l : clause) dup |= l.var() == v;
      if (dup) continue;
      const bool neg = rng.next_bool();
      clause.push_back(sat::Lit(v, neg));
      line += util::format("%d ", neg ? -(v + 1) : v + 1);
    }
    text += line + "0\n";
    consistent = solver.add_clause(clause) && consistent;
  }
  Quiz q;
  q.topic = "Week 2: SAT";
  q.question = util::format(
      "Is this CNF over %d variables satisfiable? (sat/unsat)\n%s", nv,
      text.c_str());
  const auto res = consistent ? solver.solve() : sat::LBool::kFalse;
  q.answer = res == sat::LBool::kTrue ? "sat" : "unsat";
  return q;
}

Quiz espresso_quiz(util::Rng& rng) {
  const int n = 4;
  const auto f = gen::random_cover(n, 4 + static_cast<int>(rng.next_below(4)), rng);
  const auto exact = espresso::exact_minimize(f);
  Quiz q;
  q.topic = "Week 3: Two-Level Synthesis";
  q.question = util::format(
      "What is the minimum number of product terms in any SOP for the "
      "function below (exact two-level minimization)?\n%s",
      f.to_string().c_str());
  q.answer = util::format("%d", exact.size());
  return q;
}

Quiz factoring_quiz(util::Rng& rng) {
  // Positive-unate SOP over 5 signals, as in the lecture examples.
  mls::Sop f;
  const int terms = 4 + static_cast<int>(rng.next_below(3));
  for (int t = 0; t < terms; ++t) {
    mls::Term term;
    const int lits = 2 + static_cast<int>(rng.next_below(2));
    while (static_cast<int>(term.size()) < lits) {
      const int v = static_cast<int>(rng.next_below(5));
      if (!std::count(term.begin(), term.end(), 2 * v)) term.push_back(2 * v);
    }
    std::sort(term.begin(), term.end());
    f.push_back(std::move(term));
  }
  f = mls::normalized(std::move(f));
  const auto expr = mls::factor(f);

  network::Network names;
  for (int v = 0; v < 5; ++v)
    names.add_input(std::string(1, static_cast<char>('a' + v)));
  Quiz q;
  q.topic = "Week 4: Multi-Level Synthesis";
  q.question = util::format(
      "Algebraically factor F = %s. How many literals does the best "
      "factored form found by the good-factor recursion have?",
      mls::sop_to_string(names, f).c_str());
  q.answer = util::format("%d", mls::expr_literals(expr));
  return q;
}

Quiz placement_quiz(util::Rng& rng) {
  // Cell c between pads at 0 and L with net weights w1 (left) and w2
  // (right): optimum x = w2 L / (w1 + w2). Integer-friendly instances.
  const int length = 10 * (1 + static_cast<int>(rng.next_below(5)));
  const int w1 = 1 + static_cast<int>(rng.next_below(4));
  const int w2 = 1 + static_cast<int>(rng.next_below(4));
  Quiz q;
  q.topic = "Week 6: Placement";
  q.question = util::format(
      "A movable cell connects to a pad at x=0 with weight %d and to a pad "
      "at x=%d with weight %d. Minimizing quadratic wirelength, where does "
      "the cell sit? (two decimals)", w1, length, w2);
  q.answer = util::format(
      "%.2f", static_cast<double>(w2) * length / (w1 + w2));
  return q;
}

Quiz routing_quiz(util::Rng& rng) {
  gen::RoutingGenOptions opt;
  opt.width = opt.height = 12;
  opt.num_nets = 1;
  opt.obstacle_fraction = 0.15;
  auto p = gen::generate_routing(opt, rng);
  route::RouteCosts costs;
  costs.via = 3.0;
  costs.bend = 0.0;
  costs.preferred_directions = false;
  route::Occupancy occ(p);
  const auto path = route::find_path(occ, {p.nets[0].pins[0]},
                                     {p.nets[0].pins[1]}, 0, costs);
  Quiz q;
  q.topic = "Week 7: Routing";
  std::string obstacles;
  for (int layer = 0; layer < 2; ++layer)
    for (int y = 0; y < p.height; ++y)
      for (int x = 0; x < p.width; ++x)
        if (p.is_blocked({x, y, layer}))
          obstacles += util::format("(%d %d %d) ", x, y, layer);
  q.question = util::format(
      "On a 12x12 2-layer grid (wire cost 1, via cost 3, no direction "
      "penalty), what is the cheapest route cost from (%d %d %d) to "
      "(%d %d %d)? Obstacles: %s(answer 'unroutable' if blocked)",
      p.nets[0].pins[0].x, p.nets[0].pins[0].y, p.nets[0].pins[0].layer,
      p.nets[0].pins[1].x, p.nets[0].pins[1].y, p.nets[0].pins[1].layer,
      obstacles.c_str());
  q.answer = path ? util::format("%.0f", path->cost) : "unroutable";
  return q;
}

Quiz timing_quiz(util::Rng& rng) {
  gen::NetworkGenOptions opt;
  opt.num_inputs = 4;
  opt.num_nodes = 8 + static_cast<int>(rng.next_below(6));
  opt.num_outputs = 2;
  const auto net = gen::random_network(opt, rng);
  const auto res = timing::analyze(net, timing::unit_delays(net));
  Quiz q;
  q.topic = "Week 8: Timing";
  std::string edges;
  for (network::NodeId id = 0; id < net.num_nodes(); ++id) {
    const auto& n = net.node(id);
    if (n.type != network::NodeType::kLogic) continue;
    edges += n.name + "(";
    for (std::size_t k = 0; k < n.fanins.size(); ++k) {
      if (k) edges += ",";
      edges += net.node(n.fanins[k]).name;
    }
    edges += ") ";
  }
  q.question = util::format(
      "Each gate below has unit delay; inputs arrive at t=0. What is the "
      "critical (maximum) output arrival time?\ngates: %s", edges.c_str());
  q.answer = util::format("%.0f", res.critical_delay);
  return q;
}

std::vector<Quiz> weekly_assignment(int week, std::uint64_t seed, int count) {
  util::Rng rng(seed * 1000003ull + static_cast<std::uint64_t>(week));
  std::vector<Quiz> out;
  for (int k = 0; k < count; ++k) {
    switch (week) {
      case 1: out.push_back(urp_tautology_quiz(rng)); break;
      case 2: out.push_back(k % 2 ? sat_quiz(rng) : bdd_size_quiz(rng)); break;
      case 3: out.push_back(espresso_quiz(rng)); break;
      case 4: out.push_back(factoring_quiz(rng)); break;
      case 5: out.push_back(factoring_quiz(rng)); break;  // mapping week reuses factoring drills
      case 6: out.push_back(placement_quiz(rng)); break;
      case 7: out.push_back(routing_quiz(rng)); break;
      case 8: out.push_back(timing_quiz(rng)); break;
      default:
        throw std::invalid_argument("weekly_assignment: week must be 1..8");
    }
  }
  return out;
}

bool grade_answer(const Quiz& quiz, const std::string& submitted) {
  auto canon = [](const std::string& s) {
    std::string out;
    for (const char c : s)
      if (!std::isspace(static_cast<unsigned char>(c)))
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
  };
  return canon(quiz.answer) == canon(submitted);
}

}  // namespace l2l::homework
