#pragma once
// Randomized auto-gradable homework generation -- the §2.2 infrastructure:
// "to combat cheating ... one must over-supply problems and over-supply
// solutions ... randomize each assignment at delivery time".
//
// Each generator produces an "individualized" problem instance (ASCII
// question) together with its machine-checkable answer, computed by the
// corresponding engine in this repository. Deterministic per seed, so the
// same student token always sees the same quiz.

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace l2l::homework {

struct Quiz {
  std::string topic;     ///< e.g. "Week 2: BDDs"
  std::string question;  ///< ASCII problem statement
  std::string answer;    ///< canonical answer string
};

/// Week 1: is a random cube cover a tautology? (URP)
Quiz urp_tautology_quiz(util::Rng& rng);

/// Week 2: BDD node count of a random 4-var function under the natural
/// variable order.
Quiz bdd_size_quiz(util::Rng& rng);

/// Week 2: satisfiability of a small random 3-CNF.
Quiz sat_quiz(util::Rng& rng);

/// Week 3: minimum cube count (exact two-level minimization).
Quiz espresso_quiz(util::Rng& rng);

/// Week 4: literal count of the best factored form found.
Quiz factoring_quiz(util::Rng& rng);

/// Week 6: optimal x-position of a mobile cell between two pads under
/// quadratic wirelength (a one-variable Ax=b).
Quiz placement_quiz(util::Rng& rng);

/// Week 7: cheapest maze-route cost between two pins on a gridded die
/// with obstacles (unit wire cost, given via cost).
Quiz routing_quiz(util::Rng& rng);

/// Week 8: critical path length (unit delays) of a random DAG.
Quiz timing_quiz(util::Rng& rng);

/// A full assignment: `count` quizzes for the given week (1..8),
/// individualized by seed.
std::vector<Quiz> weekly_assignment(int week, std::uint64_t seed, int count);

/// Auto-grader: case/whitespace-insensitive comparison.
bool grade_answer(const Quiz& quiz, const std::string& submitted);

}  // namespace l2l::homework
