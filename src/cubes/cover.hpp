#pragma once
// Cube covers: a list of cubes denoting a sum-of-products.

#include <string>
#include <vector>

#include "cubes/cube.hpp"
#include "tt/truth_table.hpp"

namespace l2l::cubes {

class Cover {
 public:
  Cover() = default;

  /// Empty cover (constant 0) over `num_vars` variables.
  explicit Cover(int num_vars) : num_vars_(num_vars) {}

  /// Cover made of the given cubes (all must share the arity).
  Cover(int num_vars, std::vector<Cube> cubes);

  /// Parse one cube string per line ('0','1','-'); blank lines skipped.
  static Cover parse(int num_vars, const std::string& text);

  /// The constant-1 cover (a single universal cube).
  static Cover universal(int num_vars);

  /// Exact cover of a truth table: one cube per minterm (canonical SOP).
  static Cover from_truth_table(const tt::TruthTable& f);

  int num_vars() const { return num_vars_; }
  int size() const { return static_cast<int>(cubes_.size()); }
  bool empty() const { return cubes_.empty(); }

  const std::vector<Cube>& cubes() const { return cubes_; }
  const Cube& cube(int i) const { return cubes_[static_cast<std::size_t>(i)]; }

  /// Append a cube; cubes that are already empty are silently dropped.
  void add(Cube c);

  /// Pre-size the cube list (building paths know their upper bounds).
  void reserve(int n) { cubes_.reserve(static_cast<std::size_t>(n)); }

  /// Total literal count across all cubes -- the classic 2-level cost.
  int num_literals() const;

  /// OR of two covers: concatenation.
  Cover operator|(const Cover& o) const;

  /// AND of two covers: pairwise cube intersection, empties dropped.
  Cover operator&(const Cover& o) const;

  /// Cofactor of the whole cover with respect to literal (var, phase).
  Cover cofactor(int var, bool phase) const;

  /// Shannon expansion building blocks: the cover restricted to cubes that
  /// do / don't depend on `var` (used by the URP merge step).
  bool depends_on(int var) const;

  /// Drop cubes single-cube-contained in another cube of the cover, and
  /// duplicate cubes. (Not a full irredundancy pass -- see espresso.)
  void remove_contained_cubes();

  /// Evaluate on a minterm.
  bool eval(std::uint64_t minterm) const;

  /// Expand to an explicit truth table (num_vars must be small).
  tt::TruthTable to_truth_table() const;

  /// One cube string per line.
  std::string to_string() const;

  /// Canonical form: sorted, deduplicated (for comparisons in tests).
  Cover sorted() const;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace l2l::cubes
