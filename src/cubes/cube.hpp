#pragma once
// Positional cube notation (PCN).
//
// This is the course's Week 1 representation and the data structure of MOOC
// software Project 1 ("Boolean Data Structures & Computation (URP, PCN)").
// Each variable in a cube carries a 2-bit code:
//
//   01  variable appears complemented  (x')
//   10  variable appears true          (x)
//   11  variable does not appear       (don't care)
//   00  contradiction (empty cube)     -- never stored in a normalized cube
//
// A cube is a product term; a Cover (cover.hpp) is a list of cubes and
// denotes their OR (sum-of-products).
//
// Data layout (see DESIGN.md "Data layout & kernels"): the 2-bit codes are
// packed 32 variables per uint64_t word, with variable 0 in the MOST
// significant field of word 0. That big-endian-in-word order makes plain
// word comparison agree with the historical positionwise lexicographic
// canonical order, while keeping every kernel (intersect, contains,
// distance, literal counts, empty detection) word-parallel. Unused fields
// in the trailing word -- and entirely unused inline words -- are padded
// with the don't-care code 11 so the representation is canonical and the
// defaulted operator== is exact. Cubes of up to 64 variables (every course
// workload) live entirely in the two inline words: no heap allocation.

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace l2l::cubes {

/// The 2-bit PCN code for one variable position.
enum class Pcn : std::uint8_t {
  kEmpty = 0b00,     ///< contradiction
  kNeg = 0b01,       ///< x' in the product
  kPos = 0b10,       ///< x in the product
  kDontCare = 0b11,  ///< variable absent
};

/// Bitwise AND of codes = cube intersection per position.
inline Pcn operator&(Pcn a, Pcn b) {
  return static_cast<Pcn>(static_cast<std::uint8_t>(a) &
                          static_cast<std::uint8_t>(b));
}
/// Bitwise OR of codes (used by cube "raising" during EXPAND).
inline Pcn operator|(Pcn a, Pcn b) {
  return static_cast<Pcn>(static_cast<std::uint8_t>(a) |
                          static_cast<std::uint8_t>(b));
}

class Cube {
 public:
  Cube() = default;

  /// The universal cube (all positions don't-care) over `num_vars` variables.
  explicit Cube(int num_vars);

  /// Parse the classic "input plane" string: one char per variable,
  /// '0' = complemented, '1' = true, '-' or '2' = absent. E.g. "1-0" = a c'.
  static Cube parse(const std::string& s);

  int num_vars() const { return num_vars_; }

  Pcn code(int var) const {
    const auto v = static_cast<std::uint32_t>(var);
    return static_cast<Pcn>((words()[v >> kVarShift] >> field_shift(v)) & 3u);
  }
  void set_code(int var, Pcn c) {
    const auto v = static_cast<std::uint32_t>(var);
    std::uint64_t& w = words()[v >> kVarShift];
    const int s = field_shift(v);
    w = (w & ~(std::uint64_t{3} << s)) |
        (static_cast<std::uint64_t>(c) << s);
  }

  // The kernel quartet below is defined inline: espresso's inner loops
  // call these on every cube pair, and with the definitions visible the
  // compiler collapses the word loop (1-2 iterations for course-sized
  // cubes) into straight-line branch-free code on the inline words.

  /// Number of variables that appear (positions not don't-care).
  int num_literals() const {
    const int nw = num_words();
    const std::uint64_t* w = words();
    int dc = 0;
    for (int i = 0; i < nw; ++i)
      dc += std::popcount(w[i] & (w[i] >> 1) & kLoMask);
    return nw * kVarsPerWord - dc;
  }

  /// True if some position has code 00 (the cube denotes the empty set).
  bool is_empty() const {
    const int nw = num_words();
    const std::uint64_t* w = words();
    for (int i = 0; i < nw; ++i)
      if (((w[i] | (w[i] >> 1)) & kLoMask) != kLoMask) return true;
    return false;
  }

  /// True if every position is don't-care (the cube denotes everything).
  bool is_universal() const {
    const int nw = num_words();
    const std::uint64_t* w = words();
    for (int i = 0; i < nw; ++i)
      if (w[i] != kAllDontCare) return false;
    return true;
  }

  /// Cube intersection: positionwise AND. Result may be empty.
  Cube intersect(const Cube& o) const {
    Cube out = *this;  // copy, then AND in place: no redundant DC fill
    const int nw = num_words();
    const std::uint64_t* b = o.words();
    std::uint64_t* r = out.words();
    for (int i = 0; i < nw; ++i) r[i] &= b[i];
    return out;
  }

  /// True if this cube's point set contains o's (o implies this).
  /// Positionwise: code(this) must be a superset of code(o).
  bool contains(const Cube& o) const {
    const int nw = num_words();
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    for (int i = 0; i < nw; ++i)
      if ((a[i] & b[i]) != b[i]) return false;
    return true;
  }

  /// Count of positions where the positionwise AND would be 00. Distance 1
  /// means the cubes can be merged/consensused; 0 means they intersect.
  int distance(const Cube& o) const {
    const int nw = num_words();
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    int d = 0;
    for (int i = 0; i < nw; ++i) {
      const std::uint64_t x = a[i] & b[i];
      d += std::popcount(~(x | (x >> 1)) & kLoMask);
    }
    return d;
  }

  /// Consensus on the (unique) conflicting variable when distance == 1.
  /// Returns nullopt when distance != 1.
  std::optional<Cube> consensus(const Cube& o) const;

  /// The cofactor of this cube with respect to literal (var, phase):
  /// nullopt if the cube requires the opposite phase (it vanishes),
  /// otherwise the cube with that position raised to don't-care.
  std::optional<Cube> cofactor(int var, bool phase) const;

  /// Positionwise OR with o ("raising"): this becomes the supercube of
  /// {this, o}. Word-parallel; used by espresso's REDUCE supercube step.
  Cube& or_with(const Cube& o) {
    const int nw = num_words();
    std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    for (int i = 0; i < nw; ++i) a[i] |= b[i];
    return *this;
  }

  /// Complemented-literal count: used for unateness bookkeeping.
  bool has_positive_literal(int var) const { return code(var) == Pcn::kPos; }
  bool has_negative_literal(int var) const { return code(var) == Pcn::kNeg; }

  /// Evaluate the cube on a minterm (bit i of m = value of variable i).
  bool eval(std::uint64_t minterm) const;

  /// Input-plane string ('0','1','-').
  std::string to_string() const;

  bool operator==(const Cube& o) const = default;

  /// Lexicographic order on codes; gives covers a canonical sort.
  /// (Bit-identical to the historical std::vector<Pcn> comparison.)
  bool operator<(const Cube& o) const;

 private:
  static constexpr int kVarShift = 5;        // 32 variables per word
  static constexpr int kVarsPerWord = 32;
  static constexpr int kInlineWords = 2;     // <= 64 vars: no heap
  static constexpr std::uint64_t kAllDontCare = ~std::uint64_t{0};
  /// Bits at every field's LOW bit position (even bits).
  static constexpr std::uint64_t kLoMask = 0x5555555555555555ull;

  /// Shift of variable v's 2-bit field inside its word (big-endian).
  static int field_shift(std::uint32_t v) {
    return 62 - 2 * static_cast<int>(v & (kVarsPerWord - 1));
  }
  int num_words() const { return (num_vars_ + kVarsPerWord - 1) >> kVarShift; }
  const std::uint64_t* words() const {
    return num_vars_ > kInlineWords * kVarsPerWord ? big_.data() : inline_;
  }
  std::uint64_t* words() {
    return num_vars_ > kInlineWords * kVarsPerWord ? big_.data() : inline_;
  }

  int num_vars_ = 0;
  std::uint64_t inline_[kInlineWords] = {kAllDontCare, kAllDontCare};
  std::vector<std::uint64_t> big_;  // engaged only when num_vars_ > 64
};

}  // namespace l2l::cubes
