#pragma once
// Positional cube notation (PCN).
//
// This is the course's Week 1 representation and the data structure of MOOC
// software Project 1 ("Boolean Data Structures & Computation (URP, PCN)").
// Each variable in a cube carries a 2-bit code:
//
//   01  variable appears complemented  (x')
//   10  variable appears true          (x)
//   11  variable does not appear       (don't care)
//   00  contradiction (empty cube)     -- never stored in a normalized cube
//
// A cube is a product term; a Cover (cover.hpp) is a list of cubes and
// denotes their OR (sum-of-products).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace l2l::cubes {

/// The 2-bit PCN code for one variable position.
enum class Pcn : std::uint8_t {
  kEmpty = 0b00,     ///< contradiction
  kNeg = 0b01,       ///< x' in the product
  kPos = 0b10,       ///< x in the product
  kDontCare = 0b11,  ///< variable absent
};

/// Bitwise AND of codes = cube intersection per position.
inline Pcn operator&(Pcn a, Pcn b) {
  return static_cast<Pcn>(static_cast<std::uint8_t>(a) &
                          static_cast<std::uint8_t>(b));
}
/// Bitwise OR of codes (used by cube "raising" during EXPAND).
inline Pcn operator|(Pcn a, Pcn b) {
  return static_cast<Pcn>(static_cast<std::uint8_t>(a) |
                          static_cast<std::uint8_t>(b));
}

class Cube {
 public:
  Cube() = default;

  /// The universal cube (all positions don't-care) over `num_vars` variables.
  explicit Cube(int num_vars);

  /// Parse the classic "input plane" string: one char per variable,
  /// '0' = complemented, '1' = true, '-' or '2' = absent. E.g. "1-0" = a c'.
  static Cube parse(const std::string& s);

  int num_vars() const { return static_cast<int>(codes_.size()); }

  Pcn code(int var) const { return codes_[static_cast<std::size_t>(var)]; }
  void set_code(int var, Pcn c) { codes_[static_cast<std::size_t>(var)] = c; }

  /// Number of variables that appear (positions not don't-care).
  int num_literals() const;

  /// True if some position has code 00 (the cube denotes the empty set).
  bool is_empty() const;

  /// True if every position is don't-care (the cube denotes everything).
  bool is_universal() const;

  /// Cube intersection: positionwise AND. Result may be empty.
  Cube intersect(const Cube& o) const;

  /// True if this cube's point set contains o's (o implies this).
  /// Positionwise: code(this) must be a superset of code(o).
  bool contains(const Cube& o) const;

  /// Count of positions where the positionwise AND would be 00. Distance 1
  /// means the cubes can be merged/consensused; 0 means they intersect.
  int distance(const Cube& o) const;

  /// Consensus on the (unique) conflicting variable when distance == 1.
  /// Returns nullopt when distance != 1.
  std::optional<Cube> consensus(const Cube& o) const;

  /// The cofactor of this cube with respect to literal (var, phase):
  /// nullopt if the cube requires the opposite phase (it vanishes),
  /// otherwise the cube with that position raised to don't-care.
  std::optional<Cube> cofactor(int var, bool phase) const;

  /// Complemented-literal count: used for unateness bookkeeping.
  bool has_positive_literal(int var) const { return code(var) == Pcn::kPos; }
  bool has_negative_literal(int var) const { return code(var) == Pcn::kNeg; }

  /// Evaluate the cube on a minterm (bit i of m = value of variable i).
  bool eval(std::uint64_t minterm) const;

  /// Input-plane string ('0','1','-').
  std::string to_string() const;

  bool operator==(const Cube& o) const = default;

  /// Lexicographic order on codes; gives covers a canonical sort.
  bool operator<(const Cube& o) const { return codes_ < o.codes_; }

 private:
  std::vector<Pcn> codes_;
};

}  // namespace l2l::cubes
