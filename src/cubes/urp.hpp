#pragma once
// The Unate Recursive Paradigm (URP).
//
// Week 1 of the course: recursive cofactoring on a "most binate" splitting
// variable, with unate covers as the easy terminal cases. These routines
// are the computational heart of MOOC software Project 1.

#include "cubes/cover.hpp"

namespace l2l::cubes {

/// Splitting-variable heuristic: the most *binate* variable (appears in the
/// most cubes counting both phases, ties broken by the more balanced
/// phase split, then lowest index). Returns -1 when no variable appears.
int select_split_var(const Cover& f);

/// True if the cover is unate: no variable appears in both phases.
bool is_unate(const Cover& f);

/// URP tautology check: does the cover equal constant 1?
bool is_tautology(const Cover& f);

/// Does cover `f` contain cube `c` (c => f)? Implemented as the classic
/// reduction: f contains c iff the cofactor of f with respect to c is a
/// tautology.
bool cover_contains_cube(const Cover& f, const Cube& c);

/// Do two covers denote the same function?
bool covers_equal(const Cover& f, const Cover& g);

/// URP complement. The result is a (generally non-minimal) SOP for f'.
Cover complement(const Cover& f);

/// Sharp: the cover of f AND NOT g.
Cover sharp(const Cover& f, const Cover& g);

/// XOR via complements: f g' + f' g.
Cover exclusive_or(const Cover& f, const Cover& g);

/// Existential quantification of one variable: f_x + f_x'.
Cover exists(const Cover& f, int var);

/// Universal quantification of one variable: f_x AND f_x'.
Cover forall(const Cover& f, int var);

/// Boolean difference df/dx = f_x XOR f_x'.
Cover boolean_difference(const Cover& f, int var);

/// Recursive SOP simplification (the course's SIMPLIFY): Shannon-split on
/// the most binate variable, simplify the cofactors, merge with x·F1 + x'·F0
/// and containment cleanup; returns the input when no improvement is found.
Cover simplify(const Cover& f);

}  // namespace l2l::cubes
