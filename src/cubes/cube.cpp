#include "cubes/cube.hpp"

#include <stdexcept>

namespace l2l::cubes {

Cube::Cube(int num_vars)
    : codes_(static_cast<std::size_t>(num_vars), Pcn::kDontCare) {
  if (num_vars < 0) throw std::invalid_argument("Cube: negative arity");
}

Cube Cube::parse(const std::string& s) {
  Cube c(static_cast<int>(s.size()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '0': c.codes_[i] = Pcn::kNeg; break;
      case '1': c.codes_[i] = Pcn::kPos; break;
      case '-':
      case '2': c.codes_[i] = Pcn::kDontCare; break;
      default:
        throw std::invalid_argument("Cube::parse: bad character in cube");
    }
  }
  return c;
}

int Cube::num_literals() const {
  int n = 0;
  for (Pcn c : codes_)
    if (c != Pcn::kDontCare) ++n;
  return n;
}

bool Cube::is_empty() const {
  for (Pcn c : codes_)
    if (c == Pcn::kEmpty) return true;
  return false;
}

bool Cube::is_universal() const {
  for (Pcn c : codes_)
    if (c != Pcn::kDontCare) return false;
  return true;
}

Cube Cube::intersect(const Cube& o) const {
  Cube out(num_vars());
  for (int v = 0; v < num_vars(); ++v) out.codes_[static_cast<std::size_t>(v)] = code(v) & o.code(v);
  return out;
}

bool Cube::contains(const Cube& o) const {
  for (int v = 0; v < num_vars(); ++v) {
    // this contains o iff every code of o is a subset of this's code.
    const auto a = static_cast<std::uint8_t>(code(v));
    const auto b = static_cast<std::uint8_t>(o.code(v));
    if ((a & b) != b) return false;
  }
  return true;
}

int Cube::distance(const Cube& o) const {
  int d = 0;
  for (int v = 0; v < num_vars(); ++v)
    if ((code(v) & o.code(v)) == Pcn::kEmpty) ++d;
  return d;
}

std::optional<Cube> Cube::consensus(const Cube& o) const {
  int conflict = -1;
  for (int v = 0; v < num_vars(); ++v) {
    if ((code(v) & o.code(v)) == Pcn::kEmpty) {
      if (conflict >= 0) return std::nullopt;  // distance > 1
      conflict = v;
    }
  }
  if (conflict < 0) return std::nullopt;  // distance 0
  Cube out = intersect(o);
  out.set_code(conflict, Pcn::kDontCare);
  return out;
}

std::optional<Cube> Cube::cofactor(int var, bool phase) const {
  const Pcn need = phase ? Pcn::kPos : Pcn::kNeg;
  const Pcn have = code(var);
  if (have != Pcn::kDontCare && have != need) return std::nullopt;
  Cube out = *this;
  out.set_code(var, Pcn::kDontCare);
  return out;
}

bool Cube::eval(std::uint64_t minterm) const {
  for (int v = 0; v < num_vars(); ++v) {
    const bool value = (minterm >> v) & 1;
    const Pcn c = code(v);
    if (c == Pcn::kPos && !value) return false;
    if (c == Pcn::kNeg && value) return false;
    if (c == Pcn::kEmpty) return false;
  }
  return true;
}

std::string Cube::to_string() const {
  std::string s(static_cast<std::size_t>(num_vars()), '-');
  for (int v = 0; v < num_vars(); ++v) {
    switch (code(v)) {
      case Pcn::kNeg: s[static_cast<std::size_t>(v)] = '0'; break;
      case Pcn::kPos: s[static_cast<std::size_t>(v)] = '1'; break;
      case Pcn::kDontCare: break;
      case Pcn::kEmpty: s[static_cast<std::size_t>(v)] = '!'; break;
    }
  }
  return s;
}

}  // namespace l2l::cubes
