#include "cubes/cube.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace l2l::cubes {

// Word-parallel kernel idioms (fields are the 2-bit codes, 32 per word;
// kLoMask selects every field's low bit):
//   nonzero(w)  = (w | w>>1) & kLoMask   -- bit set where field != 00
//   dontcare(w) = (w & w>>1) & kLoMask   -- bit set where field == 11
// Padding fields are 11, so they never count as empty, never count as
// literals, and survive AND/OR against other padding unchanged.

Cube::Cube(int num_vars) {
  if (num_vars < 0) throw std::invalid_argument("Cube: negative arity");
  num_vars_ = num_vars;
  const int w = num_words();
  if (w > kInlineWords)
    big_.assign(static_cast<std::size_t>(w), kAllDontCare);
}

Cube Cube::parse(const std::string& s) {
  Cube c(static_cast<int>(s.size()));
  std::uint64_t* w = c.words();
  std::uint64_t acc = 0;
  int filled = 0;
  int word = 0;
  for (const char ch : s) {
    std::uint64_t code;
    switch (ch) {
      case '0': code = static_cast<std::uint64_t>(Pcn::kNeg); break;
      case '1': code = static_cast<std::uint64_t>(Pcn::kPos); break;
      case '-':
      case '2': code = static_cast<std::uint64_t>(Pcn::kDontCare); break;
      default:
        throw std::invalid_argument("Cube::parse: bad character in cube");
    }
    acc = (acc << 2) | code;
    if (++filled == kVarsPerWord) {
      w[word++] = acc;
      acc = 0;
      filled = 0;
    }
  }
  if (filled > 0) {
    const int rest = kVarsPerWord - filled;  // in (0, 32)
    acc <<= 2 * rest;
    acc |= (std::uint64_t{1} << (2 * rest)) - 1;  // pad with don't-care
    w[word] = acc;
  }
  return c;
}

std::optional<Cube> Cube::consensus(const Cube& o) const {
  const int nw = num_words();
  const std::uint64_t* a = words();
  const std::uint64_t* b = o.words();
  int conflict = -1;
  for (int i = 0; i < nw; ++i) {
    const std::uint64_t x = a[i] & b[i];
    const std::uint64_t empties = ~(x | (x >> 1)) & kLoMask;
    if (empties == 0) continue;
    if (conflict >= 0 || std::popcount(empties) > 1)
      return std::nullopt;  // distance > 1
    // The single set bit is the field's low bit; map it back to a slot.
    const int bit = std::countr_zero(empties);
    conflict = i * kVarsPerWord + (62 - bit) / 2;
  }
  if (conflict < 0) return std::nullopt;  // distance 0
  Cube out = intersect(o);
  out.set_code(conflict, Pcn::kDontCare);
  return out;
}

std::optional<Cube> Cube::cofactor(int var, bool phase) const {
  const Pcn need = phase ? Pcn::kPos : Pcn::kNeg;
  const Pcn have = code(var);
  if (have != Pcn::kDontCare && have != need) return std::nullopt;
  Cube out = *this;
  out.set_code(var, Pcn::kDontCare);
  return out;
}

bool Cube::eval(std::uint64_t minterm) const {
  for (int v = 0; v < num_vars_; ++v) {
    const bool value = v < 64 && ((minterm >> v) & 1);
    const Pcn c = code(v);
    if (c == Pcn::kPos && !value) return false;
    if (c == Pcn::kNeg && value) return false;
    if (c == Pcn::kEmpty) return false;
  }
  return true;
}

std::string Cube::to_string() const {
  std::string s(static_cast<std::size_t>(num_vars_), '-');
  for (int v = 0; v < num_vars_; ++v) {
    switch (code(v)) {
      case Pcn::kNeg: s[static_cast<std::size_t>(v)] = '0'; break;
      case Pcn::kPos: s[static_cast<std::size_t>(v)] = '1'; break;
      case Pcn::kDontCare: break;
      case Pcn::kEmpty: s[static_cast<std::size_t>(v)] = '!'; break;
    }
  }
  return s;
}

bool Cube::operator<(const Cube& o) const {
  if (num_vars_ == o.num_vars_) {
    // Variable 0 sits in the most significant field of word 0, so plain
    // word comparison IS the positionwise lexicographic order; the
    // padding fields are identical (all don't-care) on both sides.
    const int nw = num_words();
    const std::uint64_t* a = words();
    const std::uint64_t* b = o.words();
    for (int i = 0; i < nw; ++i)
      if (a[i] != b[i]) return a[i] < b[i];
    return false;
  }
  // Mixed arity (not produced by Cover, kept for std::vector<Pcn> parity):
  // compare the common prefix, then the shorter cube orders first.
  const int n = std::min(num_vars_, o.num_vars_);
  for (int v = 0; v < n; ++v) {
    const auto a = static_cast<std::uint8_t>(code(v));
    const auto b = static_cast<std::uint8_t>(o.code(v));
    if (a != b) return a < b;
  }
  return num_vars_ < o.num_vars_;
}

}  // namespace l2l::cubes
