#include "cubes/cover.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::cubes {

Cover::Cover(int num_vars, std::vector<Cube> cubes) : num_vars_(num_vars) {
  cubes_.reserve(cubes.size());
  for (auto& c : cubes) add(std::move(c));
}

Cover Cover::parse(int num_vars, const std::string& text) {
  Cover out(num_vars);
  out.reserve(static_cast<int>(
                  std::count(text.begin(), text.end(), '\n')) +
              1);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto t = util::trim(line);
    if (t.empty()) continue;
    Cube c = Cube::parse(std::string(t));
    if (c.num_vars() != num_vars)
      throw std::invalid_argument("Cover::parse: cube arity mismatch");
    out.add(std::move(c));
  }
  return out;
}

Cover Cover::universal(int num_vars) {
  Cover out(num_vars);
  out.add(Cube(num_vars));
  return out;
}

Cover Cover::from_truth_table(const tt::TruthTable& f) {
  Cover out(f.num_vars());
  out.reserve(static_cast<int>(f.minterms().size()));
  for (std::uint64_t m : f.minterms()) {
    Cube c(f.num_vars());
    for (int v = 0; v < f.num_vars(); ++v)
      c.set_code(v, ((m >> v) & 1) ? Pcn::kPos : Pcn::kNeg);
    out.add(std::move(c));
  }
  return out;
}

void Cover::add(Cube c) {
  if (c.num_vars() != num_vars_)
    throw std::invalid_argument("Cover::add: cube arity mismatch");
  if (!c.is_empty()) cubes_.push_back(std::move(c));
}

int Cover::num_literals() const {
  int n = 0;
  for (const auto& c : cubes_) n += c.num_literals();
  return n;
}

Cover Cover::operator|(const Cover& o) const {
  if (num_vars_ != o.num_vars_)
    throw std::invalid_argument("Cover::operator|: arity mismatch");
  Cover out = *this;
  out.reserve(size() + o.size());
  for (const auto& c : o.cubes_) out.add(c);
  return out;
}

Cover Cover::operator&(const Cover& o) const {
  if (num_vars_ != o.num_vars_)
    throw std::invalid_argument("Cover::operator&: arity mismatch");
  Cover out(num_vars_);
  out.reserve(static_cast<int>(
      std::min<std::size_t>(cubes_.size() * o.cubes_.size(), 4096)));
  for (const auto& a : cubes_)
    for (const auto& b : o.cubes_) out.add(a.intersect(b));
  return out;
}

Cover Cover::cofactor(int var, bool phase) const {
  Cover out(num_vars_);
  out.reserve(size());
  for (const auto& c : cubes_)
    if (auto cf = c.cofactor(var, phase)) out.add(std::move(*cf));
  return out;
}

bool Cover::depends_on(int var) const {
  for (const auto& c : cubes_)
    if (c.code(var) != Pcn::kDontCare) return true;
  return false;
}

void Cover::remove_contained_cubes() {
  std::vector<bool> dead(cubes_.size(), false);
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cubes_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (cubes_[j].contains(cubes_[i]) &&
          !(cubes_[i] == cubes_[j] && i < j)) {
        dead[i] = true;
        break;
      }
    }
  }
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i)
    if (!dead[i]) kept.push_back(std::move(cubes_[i]));
  cubes_ = std::move(kept);
}

bool Cover::eval(std::uint64_t minterm) const {
  for (const auto& c : cubes_)
    if (c.eval(minterm)) return true;
  return false;
}

tt::TruthTable Cover::to_truth_table() const {
  tt::TruthTable f(num_vars_);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m)
    if (eval(m)) f.set(m, true);
  return f;
}

std::string Cover::to_string() const {
  std::string out;
  for (const auto& c : cubes_) {
    out += c.to_string();
    out += '\n';
  }
  return out;
}

Cover Cover::sorted() const {
  Cover out = *this;
  std::sort(out.cubes_.begin(), out.cubes_.end());
  out.cubes_.erase(std::unique(out.cubes_.begin(), out.cubes_.end()),
                   out.cubes_.end());
  return out;
}

}  // namespace l2l::cubes
