#include "cubes/urp.hpp"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace l2l::cubes {
namespace {

/// Merge step of the URP: x'·f0 + x·f1, re-attaching the splitting literal.
Cover merge_shannon(int var, const Cover& f0, const Cover& f1) {
  Cover out(f0.num_vars());
  out.reserve(f0.size() + f1.size());
  for (const auto& c : f0.cubes()) {
    Cube withLit = c;
    withLit.set_code(var, Pcn::kNeg);
    out.add(std::move(withLit));
  }
  for (const auto& c : f1.cubes()) {
    Cube withLit = c;
    withLit.set_code(var, Pcn::kPos);
    out.add(std::move(withLit));
  }
  return out;
}

}  // namespace

int select_split_var(const Cover& f) {
  const int n = f.num_vars();
  std::vector<int> pos(static_cast<std::size_t>(n), 0);
  std::vector<int> neg(static_cast<std::size_t>(n), 0);
  for (const auto& c : f.cubes()) {
    for (int v = 0; v < n; ++v) {
      if (c.code(v) == Pcn::kPos) ++pos[static_cast<std::size_t>(v)];
      if (c.code(v) == Pcn::kNeg) ++neg[static_cast<std::size_t>(v)];
    }
  }
  int best = -1;
  bool best_binate = false;
  int best_count = 0;
  int best_balance = 0;
  for (int v = 0; v < n; ++v) {
    const int p = pos[static_cast<std::size_t>(v)];
    const int q = neg[static_cast<std::size_t>(v)];
    if (p + q == 0) continue;
    const bool binate = p > 0 && q > 0;
    const int count = p + q;
    const int balance = -std::abs(p - q);
    // Prefer binate over unate; then most occurrences; then most balanced.
    const auto key = std::make_tuple(binate, count, balance);
    const auto best_key = std::make_tuple(best_binate, best_count, best_balance);
    if (best < 0 || key > best_key) {
      best = v;
      best_binate = binate;
      best_count = count;
      best_balance = balance;
    }
  }
  return best;
}

bool is_unate(const Cover& f) {
  for (int v = 0; v < f.num_vars(); ++v) {
    bool p = false, q = false;
    for (const auto& c : f.cubes()) {
      if (c.code(v) == Pcn::kPos) p = true;
      if (c.code(v) == Pcn::kNeg) q = true;
    }
    if (p && q) return false;
  }
  return true;
}

bool is_tautology(const Cover& f) {
  if (f.empty()) return false;
  for (const auto& c : f.cubes())
    if (c.is_universal()) return true;
  // Terminal case: a unate cover with no universal cube is not a tautology
  // (each cube misses the point that negates one of its literals, and
  // unateness lets us pick a single witness consistent across cubes).
  if (is_unate(f)) return false;
  const int v = select_split_var(f);
  return is_tautology(f.cofactor(v, false)) &&
         is_tautology(f.cofactor(v, true));
}

bool cover_contains_cube(const Cover& f, const Cube& c) {
  Cover g = f;
  for (int v = 0; v < c.num_vars(); ++v) {
    if (c.code(v) == Pcn::kPos)
      g = g.cofactor(v, true);
    else if (c.code(v) == Pcn::kNeg)
      g = g.cofactor(v, false);
  }
  return is_tautology(g);
}

bool covers_equal(const Cover& f, const Cover& g) {
  for (const auto& c : f.cubes())
    if (!cover_contains_cube(g, c)) return false;
  for (const auto& c : g.cubes())
    if (!cover_contains_cube(f, c)) return false;
  return true;
}

Cover complement(const Cover& f) {
  const int n = f.num_vars();
  if (f.empty()) return Cover::universal(n);
  for (const auto& c : f.cubes())
    if (c.is_universal()) return Cover(n);
  if (f.size() == 1) {
    // De Morgan on a single cube: OR of opposite single-literal cubes.
    Cover out(n);
    const Cube& c = f.cube(0);
    for (int v = 0; v < n; ++v) {
      if (c.code(v) == Pcn::kDontCare) continue;
      Cube lit(n);
      lit.set_code(v, c.code(v) == Pcn::kPos ? Pcn::kNeg : Pcn::kPos);
      out.add(std::move(lit));
    }
    return out;
  }
  const int v = select_split_var(f);
  Cover r = merge_shannon(v, complement(f.cofactor(v, false)),
                          complement(f.cofactor(v, true)));
  r.remove_contained_cubes();
  return r;
}

Cover sharp(const Cover& f, const Cover& g) { return f & complement(g); }

Cover exclusive_or(const Cover& f, const Cover& g) {
  return (f & complement(g)) | (complement(f) & g);
}

Cover exists(const Cover& f, int var) {
  return f.cofactor(var, false) | f.cofactor(var, true);
}

Cover forall(const Cover& f, int var) {
  Cover r = f.cofactor(var, false) & f.cofactor(var, true);
  r.remove_contained_cubes();
  return r;
}

Cover boolean_difference(const Cover& f, int var) {
  return exclusive_or(f.cofactor(var, false), f.cofactor(var, true));
}

Cover simplify(const Cover& f) {
  if (f.size() <= 1) return f;
  if (is_unate(f)) {
    Cover out = f;
    out.remove_contained_cubes();
    return out;
  }
  const int v = select_split_var(f);
  Cover merged = merge_shannon(v, simplify(f.cofactor(v, false)),
                               simplify(f.cofactor(v, true)));
  // Lift cubes that no longer need the splitting literal: if x'·c and x·c
  // both appear they merge; remove_contained_cubes plus a consensus sweep
  // handles the common cases cheaply.
  Cover lifted(f.num_vars());
  lifted.reserve(merged.size());
  for (const auto& c : merged.cubes()) {
    Cube dropped = c;
    dropped.set_code(v, Pcn::kDontCare);
    if (cover_contains_cube(merged, dropped))
      lifted.add(std::move(dropped));
    else
      lifted.add(c);
  }
  lifted.remove_contained_cubes();
  return lifted.num_literals() < f.num_literals() ? lifted : f;
}

}  // namespace l2l::cubes
