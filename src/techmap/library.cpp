#include "techmap/library.hpp"

namespace l2l::techmap {

std::unique_ptr<Pattern> Pattern::leaf_of(int i) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kLeaf;
  p->leaf = i;
  return p;
}

std::unique_ptr<Pattern> Pattern::inv(std::unique_ptr<Pattern> a) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kInv;
  p->kids.push_back(std::move(a));
  return p;
}

std::unique_ptr<Pattern> Pattern::nand(std::unique_ptr<Pattern> a,
                                       std::unique_ptr<Pattern> b) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kNand;
  p->kids.push_back(std::move(a));
  p->kids.push_back(std::move(b));
  return p;
}

const Cell* Library::find(const std::string& name) const {
  for (const auto& c : cells)
    if (c.name == name) return &c;
  return nullptr;
}

namespace {

using P = Pattern;

Cell make_cell(std::string name, int inputs, double area, double delay,
               const std::string& sop) {
  Cell c;
  c.name = std::move(name);
  c.num_inputs = inputs;
  c.area = area;
  c.delay = delay;
  c.function = cubes::Cover::parse(inputs, sop);
  return c;
}

}  // namespace

Library nand2_inv_library() {
  Library lib;
  {
    Cell inv = make_cell("INV", 1, 2, 1.0, "0\n");
    inv.patterns.push_back(P::inv(P::leaf_of(0)));
    lib.cells.push_back(std::move(inv));
  }
  {
    Cell nand2 = make_cell("NAND2", 2, 3, 1.0, "0-\n-0\n");
    nand2.patterns.push_back(P::nand(P::leaf_of(0), P::leaf_of(1)));
    lib.cells.push_back(std::move(nand2));
  }
  return lib;
}

Library default_library() {
  Library lib = nand2_inv_library();
  {
    // NAND3 = (abc)' : NAND(INV(NAND(a,b)), c)
    Cell c = make_cell("NAND3", 3, 4, 1.1, "0--\n-0-\n--0\n");
    c.patterns.push_back(
        P::nand(P::inv(P::nand(P::leaf_of(0), P::leaf_of(1))), P::leaf_of(2)));
    c.patterns.push_back(
        P::nand(P::leaf_of(2), P::inv(P::nand(P::leaf_of(0), P::leaf_of(1)))));
    lib.cells.push_back(std::move(c));
  }
  {
    // NAND4 = (abcd)': balanced and chain shapes.
    Cell c = make_cell("NAND4", 4, 5, 1.2, "0---\n-0--\n--0-\n---0\n");
    c.patterns.push_back(
        P::nand(P::inv(P::nand(P::leaf_of(0), P::leaf_of(1))),
                P::inv(P::nand(P::leaf_of(2), P::leaf_of(3)))));
    c.patterns.push_back(P::nand(
        P::inv(P::nand(P::inv(P::nand(P::leaf_of(0), P::leaf_of(1))),
                       P::leaf_of(2))),
        P::leaf_of(3)));
    lib.cells.push_back(std::move(c));
  }
  {
    // AND2 = ab : INV(NAND(a,b))
    Cell c = make_cell("AND2", 2, 4, 1.4, "11\n");
    c.patterns.push_back(P::inv(P::nand(P::leaf_of(0), P::leaf_of(1))));
    lib.cells.push_back(std::move(c));
  }
  {
    // OR2 = a+b : NAND(INV(a), INV(b))
    Cell c = make_cell("OR2", 2, 4, 1.4, "1-\n-1\n");
    c.patterns.push_back(P::nand(P::inv(P::leaf_of(0)), P::inv(P::leaf_of(1))));
    lib.cells.push_back(std::move(c));
  }
  {
    // NOR2 = (a+b)' : INV(NAND(INV(a), INV(b)))
    Cell c = make_cell("NOR2", 2, 4, 1.4, "00\n");
    c.patterns.push_back(
        P::inv(P::nand(P::inv(P::leaf_of(0)), P::inv(P::leaf_of(1)))));
    lib.cells.push_back(std::move(c));
  }
  {
    // AOI21 = (ab + c)' : INV(NAND(NAND(a,b), INV(c)))
    Cell c = make_cell("AOI21", 3, 4, 1.6, "0-0\n-00\n");
    c.patterns.push_back(P::inv(
        P::nand(P::nand(P::leaf_of(0), P::leaf_of(1)), P::inv(P::leaf_of(2)))));
    lib.cells.push_back(std::move(c));
  }
  {
    // AOI22 = (ab + cd)' : INV(NAND(NAND(a,b), NAND(c,d)))
    Cell c = make_cell("AOI22", 4, 5, 1.8, "0-0-\n0--0\n-00-\n-0-0\n");
    c.patterns.push_back(P::inv(P::nand(P::nand(P::leaf_of(0), P::leaf_of(1)),
                                        P::nand(P::leaf_of(2), P::leaf_of(3)))));
    lib.cells.push_back(std::move(c));
  }
  {
    // XOR2 = ab' + a'b : NAND(NAND(a, INV(b)), NAND(INV(a), b)).
    // Leaves repeat: both 0-leaves must bind to the same subject node.
    Cell c = make_cell("XOR2", 2, 5, 1.9, "10\n01\n");
    c.patterns.push_back(
        P::nand(P::nand(P::leaf_of(0), P::inv(P::leaf_of(1))),
                P::nand(P::inv(P::leaf_of(0)), P::leaf_of(1))));
    lib.cells.push_back(std::move(c));
  }
  return lib;
}

}  // namespace l2l::techmap
