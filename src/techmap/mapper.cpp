#include "techmap/mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::techmap {
namespace {

struct Match {
  const Cell* cell = nullptr;
  std::vector<int> leaves;  // subject node per cell input
};

/// Try to match `pat` rooted at subject node `n`. Internal pattern nodes
/// may only bind single-fanout subject nodes (tree-covering boundary rule),
/// except at the match root. Repeated pattern leaves must bind consistently.
bool try_match(const SubjectGraph& g, const Pattern& pat, int n, bool is_root,
               std::vector<int>& binding) {
  const auto& sn = g.nodes[static_cast<std::size_t>(n)];
  if (pat.kind == Pattern::Kind::kLeaf) {
    auto& slot = binding[static_cast<std::size_t>(pat.leaf)];
    if (slot >= 0 && slot != n) return false;
    slot = n;
    return true;
  }
  if (!is_root && sn.fanout_count > 1) return false;  // boundary: leaf only
  if (pat.kind == Pattern::Kind::kInv) {
    if (sn.kind != SubjectNode::Kind::kInv) return false;
    return try_match(g, *pat.kids[0], sn.a, false, binding);
  }
  // NAND: try both input orders, undoing bindings between attempts.
  if (sn.kind != SubjectNode::Kind::kNand) return false;
  const auto saved = binding;
  if (try_match(g, *pat.kids[0], sn.a, false, binding) &&
      try_match(g, *pat.kids[1], sn.b, false, binding))
    return true;
  binding = saved;
  if (try_match(g, *pat.kids[0], sn.b, false, binding) &&
      try_match(g, *pat.kids[1], sn.a, false, binding))
    return true;
  binding = saved;
  return false;
}

std::vector<Match> matches_at(const SubjectGraph& g, const Library& lib, int n) {
  std::vector<Match> out;
  const auto& sn = g.nodes[static_cast<std::size_t>(n)];
  if (sn.kind != SubjectNode::Kind::kInv && sn.kind != SubjectNode::Kind::kNand)
    return out;
  for (const auto& cell : lib.cells) {
    for (const auto& pat : cell.patterns) {
      std::vector<int> binding(static_cast<std::size_t>(cell.num_inputs), -1);
      if (try_match(g, *pat, n, true, binding)) {
        // All leaves must be bound (patterns use every input).
        if (std::all_of(binding.begin(), binding.end(),
                        [](int x) { return x >= 0; }))
          out.push_back({&cell, binding});
      }
    }
  }
  return out;
}

}  // namespace

MapResult map_subject_graph(const SubjectGraph& g, const Library& lib,
                            MapObjective objective) {
  if (!lib.find("INV") || !lib.find("NAND2"))
    throw std::invalid_argument("map: library must contain INV and NAND2");

  const std::size_t n_nodes = g.nodes.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_cost(n_nodes, kInf);
  std::vector<Match> best_match(n_nodes);

  auto is_gate = [&](int n) {
    const auto k = g.nodes[static_cast<std::size_t>(n)].kind;
    return k == SubjectNode::Kind::kInv || k == SubjectNode::Kind::kNand;
  };
  auto boundary = [&](int n) {
    return !is_gate(n) ||
           g.nodes[static_cast<std::size_t>(n)].fanout_count > 1;
  };

  // Index order is topological (builders append bottom-up).
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (!is_gate(static_cast<int>(n))) {
      best_cost[n] = 0.0;  // inputs/constants are free leaves
      continue;
    }
    for (auto& m : matches_at(g, lib, static_cast<int>(n))) {
      double cost = objective == MapObjective::kArea ? m.cell->area
                                                     : m.cell->delay;
      for (const int leaf : m.leaves) {
        const double leaf_cost =
            objective == MapObjective::kArea
                ? (boundary(leaf) ? 0.0 : best_cost[static_cast<std::size_t>(leaf)])
                : best_cost[static_cast<std::size_t>(leaf)];
        if (objective == MapObjective::kArea)
          cost += leaf_cost;
        else
          cost = std::max(cost, m.cell->delay + leaf_cost);
      }
      if (cost < best_cost[n]) {
        best_cost[n] = cost;
        best_match[n] = std::move(m);
      }
    }
    if (best_cost[n] == kInf)
      throw std::logic_error("map: no match found for a subject node");
  }

  // Collect the roots actually needed: outputs plus, transitively, every
  // match leaf that is itself a gate.
  MapResult result;
  network::Network& out = result.netlist;
  std::vector<network::NodeId> signal(n_nodes, network::kNoNode);

  for (std::size_t i = 0; i < g.inputs.size(); ++i)
    signal[static_cast<std::size_t>(g.inputs[i])] =
        out.add_input(g.nodes[static_cast<std::size_t>(g.inputs[i])].name);

  int gate_counter = 0;
  auto realize = [&](auto&& self, int n) -> network::NodeId {
    auto& sig = signal[static_cast<std::size_t>(n)];
    if (sig != network::kNoNode) return sig;
    const auto& sn = g.nodes[static_cast<std::size_t>(n)];
    if (sn.kind == SubjectNode::Kind::kConst) {
      sig = out.add_constant(util::format("const%d", gate_counter++),
                             sn.const_value);
      return sig;
    }
    const Match& m = best_match[static_cast<std::size_t>(n)];
    std::vector<network::NodeId> fanins;
    fanins.reserve(m.leaves.size());
    for (const int leaf : m.leaves) fanins.push_back(self(self, leaf));
    const auto name = util::format("g%d_%s", gate_counter++, m.cell->name.c_str());
    sig = out.add_logic(name, std::move(fanins), m.cell->function);
    result.gates.push_back({m.cell->name, n, m.leaves});
    result.total_area += m.cell->area;
    return sig;
  };

  for (std::size_t o = 0; o < g.outputs.size(); ++o) {
    const network::NodeId driver = realize(realize, g.outputs[o]);
    const std::string& want = g.output_names[o];
    if (out.node(driver).name == want && out.node(driver).type ==
                                             network::NodeType::kLogic) {
      out.mark_output(driver);
    } else {
      // Buffer to give the output its interface name.
      const auto buf = out.add_logic(want, {driver},
                                     cubes::Cover::parse(1, "1\n"));
      out.mark_output(buf);
    }
  }

  // Critical delay over the mapped netlist (constant cell delays; the
  // output interface buffers are free).
  std::map<std::string, double> delay_of;
  for (const auto& c : lib.cells) delay_of[c.name] = c.delay;
  std::vector<double> arrival(static_cast<std::size_t>(out.num_nodes()), 0.0);
  for (const network::NodeId id : out.topological_order()) {
    const auto& node = out.node(id);
    if (node.type == network::NodeType::kInput) continue;
    double in_arrival = 0.0;
    for (const network::NodeId f : node.fanins)
      in_arrival = std::max(in_arrival, arrival[static_cast<std::size_t>(f)]);
    // Gate names are "g<i>_<CELL>"; interface buffers and constants add 0.
    double d = 0.0;
    const auto underscore = node.name.find('_');
    if (underscore != std::string::npos) {
      const auto it = delay_of.find(node.name.substr(underscore + 1));
      if (it != delay_of.end()) d = it->second;
    }
    arrival[static_cast<std::size_t>(id)] = in_arrival + d;
  }
  for (const network::NodeId o : out.outputs())
    result.critical_delay =
        std::max(result.critical_delay, arrival[static_cast<std::size_t>(o)]);
  return result;
}

MapResult technology_map(const network::Network& net, const Library& lib,
                         MapObjective objective) {
  return map_subject_graph(build_subject_graph(net), lib, objective);
}

}  // namespace l2l::techmap
