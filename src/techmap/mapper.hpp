#pragma once
// DP tree covering over the subject graph: the classic "recursive tree
// covering" algorithm the course teaches in Week 5. Multi-fanout subject
// nodes are covering boundaries; within a tree, each node picks the
// library match minimizing area (or arrival time in delay mode).

#include <string>
#include <vector>

#include "network/network.hpp"
#include "techmap/library.hpp"
#include "techmap/subject_graph.hpp"

namespace l2l::techmap {

enum class MapObjective { kArea, kDelay };

struct GateInstance {
  std::string cell;             ///< library cell name
  int root = -1;                ///< subject node implemented by this gate
  std::vector<int> leaves;      ///< subject nodes feeding each cell input
};

struct MapResult {
  std::vector<GateInstance> gates;
  double total_area = 0.0;
  double critical_delay = 0.0;  ///< max arrival over outputs (cell delays)
  /// The mapped netlist: inputs mirror the source network; one logic node
  /// per gate instance; outputs carry the source output names.
  network::Network netlist;
};

/// Map a subject graph against a library. Throws std::invalid_argument if
/// the library cannot implement some node (it must contain INV and NAND2).
MapResult map_subject_graph(const SubjectGraph& g, const Library& lib,
                            MapObjective objective);

/// Convenience: factor + decompose + map a logic network.
MapResult technology_map(const network::Network& net, const Library& lib,
                         MapObjective objective = MapObjective::kArea);

}  // namespace l2l::techmap
