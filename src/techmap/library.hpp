#pragma once
// Standard-cell library model for tree-covering technology mapping
// (Week 5: "Technology Mapping (recursive tree covering)").
//
// Each cell carries one or more *pattern trees* over the NAND2/INV subject
// basis. Pattern leaves are numbered; a leaf number may repeat (e.g. XOR),
// in which case all occurrences must bind to the same subject node.

#include <memory>
#include <string>
#include <vector>

#include "cubes/cover.hpp"

namespace l2l::techmap {

/// A node of a pattern tree.
struct Pattern {
  enum class Kind { kLeaf, kInv, kNand };
  Kind kind = Kind::kLeaf;
  int leaf = 0;                                  ///< for kLeaf: input index
  std::vector<std::unique_ptr<Pattern>> kids;    ///< 1 for INV, 2 for NAND

  static std::unique_ptr<Pattern> leaf_of(int i);
  static std::unique_ptr<Pattern> inv(std::unique_ptr<Pattern> a);
  static std::unique_ptr<Pattern> nand(std::unique_ptr<Pattern> a,
                                       std::unique_ptr<Pattern> b);
};

struct Cell {
  std::string name;
  int num_inputs = 0;
  double area = 0.0;
  double delay = 0.0;  ///< constant pin-to-pin delay (load-independent)
  /// Cell function as an SOP over inputs 0..num_inputs-1.
  cubes::Cover function;
  /// Alternative pattern trees matching this cell.
  std::vector<std::unique_ptr<Pattern>> patterns;
};

struct Library {
  std::vector<Cell> cells;
  const Cell* find(const std::string& name) const;
};

/// The course's teaching library: INV, NAND2..NAND4, AND2, OR2, NOR2,
/// AOI21, AOI22, XOR2. Areas/delays follow the classic lecture numbers.
Library default_library();

/// A degenerate library with only INV and NAND2 (ablation baseline: what
/// the subject graph costs with no pattern sharing).
Library nand2_inv_library();

}  // namespace l2l::techmap
