#include "techmap/subject_graph.hpp"

#include <map>
#include <stdexcept>

#include "mls/factor.hpp"
#include "mls/sop.hpp"

namespace l2l::techmap {

int SubjectGraph::num_nand() const {
  int n = 0;
  for (const auto& s : nodes)
    if (s.kind == SubjectNode::Kind::kNand) ++n;
  return n;
}

int SubjectGraph::num_inv() const {
  int n = 0;
  for (const auto& s : nodes)
    if (s.kind == SubjectNode::Kind::kInv) ++n;
  return n;
}

std::vector<bool> SubjectGraph::simulate(
    const std::vector<bool>& input_values) const {
  std::vector<bool> v(nodes.size(), false);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    v[static_cast<std::size_t>(inputs[i])] = input_values[i];
  // Nodes are created bottom-up, so index order is topological.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    switch (n.kind) {
      case SubjectNode::Kind::kInput:
        break;
      case SubjectNode::Kind::kConst:
        v[i] = n.const_value;
        break;
      case SubjectNode::Kind::kInv:
        v[i] = !v[static_cast<std::size_t>(n.a)];
        break;
      case SubjectNode::Kind::kNand:
        v[i] = !(v[static_cast<std::size_t>(n.a)] &&
                 v[static_cast<std::size_t>(n.b)]);
        break;
    }
  }
  return v;
}

namespace {

/// Structural-hashing builder for the NAND/INV basis.
class Builder {
 public:
  explicit Builder(SubjectGraph& g) : g_(g) {}

  int input(const std::string& name) {
    g_.nodes.push_back({SubjectNode::Kind::kInput, -1, -1, false, 0, name});
    return static_cast<int>(g_.nodes.size()) - 1;
  }

  int constant(bool v) {
    const auto key = std::make_tuple(-2, v ? 1 : 0, 0);
    if (auto it = hash_.find(key); it != hash_.end()) return it->second;
    g_.nodes.push_back({SubjectNode::Kind::kConst, -1, -1, v, 0, ""});
    const int id = static_cast<int>(g_.nodes.size()) - 1;
    hash_.emplace(key, id);
    return id;
  }

  int inv(int a) {
    // INV(INV(x)) = x.
    if (g_.nodes[static_cast<std::size_t>(a)].kind == SubjectNode::Kind::kInv)
      return g_.nodes[static_cast<std::size_t>(a)].a;
    if (g_.nodes[static_cast<std::size_t>(a)].kind == SubjectNode::Kind::kConst)
      return constant(!g_.nodes[static_cast<std::size_t>(a)].const_value);
    const auto key = std::make_tuple(-1, a, 0);
    if (auto it = hash_.find(key); it != hash_.end()) return it->second;
    g_.nodes.push_back({SubjectNode::Kind::kInv, a, -1, false, 0, ""});
    const int id = static_cast<int>(g_.nodes.size()) - 1;
    hash_.emplace(key, id);
    return id;
  }

  int nand(int a, int b) {
    auto kind_of = [&](int x) { return g_.nodes[static_cast<std::size_t>(x)].kind; };
    if (kind_of(a) == SubjectNode::Kind::kConst)
      return g_.nodes[static_cast<std::size_t>(a)].const_value ? inv(b)
                                                               : constant(true);
    if (kind_of(b) == SubjectNode::Kind::kConst)
      return g_.nodes[static_cast<std::size_t>(b)].const_value ? inv(a)
                                                               : constant(true);
    if (a > b) std::swap(a, b);  // commutative canonical order
    const auto key = std::make_tuple(a, b, 1);
    if (auto it = hash_.find(key); it != hash_.end()) return it->second;
    g_.nodes.push_back({SubjectNode::Kind::kNand, a, b, false, 0, ""});
    const int id = static_cast<int>(g_.nodes.size()) - 1;
    hash_.emplace(key, id);
    return id;
  }

  int and2(int a, int b) { return inv(nand(a, b)); }
  int or2(int a, int b) { return nand(inv(a), inv(b)); }

 private:
  SubjectGraph& g_;
  std::map<std::tuple<int, int, int>, int> hash_;
};

}  // namespace

SubjectGraph build_subject_graph(const network::Network& net) {
  SubjectGraph g;
  Builder b(g);

  std::vector<int> subject_of(static_cast<std::size_t>(net.num_nodes()), -1);
  for (const network::NodeId id : net.inputs()) {
    const int s = b.input(net.node(id).name);
    subject_of[static_cast<std::size_t>(id)] = s;
    g.inputs.push_back(s);
  }

  for (const network::NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type == network::NodeType::kInput) continue;

    const mls::Sop sop = mls::sop_of_node(net, id);
    const mls::Expr e = mls::factor(sop);

    // Recursively decompose the factored expression, balancing n-ary
    // AND/OR into 2-input trees.
    auto decompose = [&](auto&& self, const mls::Expr& x) -> int {
      switch (x.kind) {
        case mls::Expr::Kind::kConst0:
          return b.constant(false);
        case mls::Expr::Kind::kConst1:
          return b.constant(true);
        case mls::Expr::Kind::kLit: {
          const int s =
              subject_of[static_cast<std::size_t>(mls::glit_signal(x.lit))];
          if (s < 0)
            throw std::logic_error("subject graph: fanin not yet built");
          return mls::glit_negated(x.lit) ? b.inv(s) : s;
        }
        case mls::Expr::Kind::kAnd:
        case mls::Expr::Kind::kOr: {
          std::vector<int> kids;
          kids.reserve(x.operands.size());
          for (const auto& k : x.operands) kids.push_back(self(self, k));
          // Balanced reduction keeps depth logarithmic.
          while (kids.size() > 1) {
            std::vector<int> next;
            for (std::size_t i = 0; i + 1 < kids.size(); i += 2)
              next.push_back(x.kind == mls::Expr::Kind::kAnd
                                 ? b.and2(kids[i], kids[i + 1])
                                 : b.or2(kids[i], kids[i + 1]));
            if (kids.size() % 2) next.push_back(kids.back());
            kids = std::move(next);
          }
          return kids[0];
        }
      }
      return -1;
    };
    subject_of[static_cast<std::size_t>(id)] = decompose(decompose, e);
  }

  for (const network::NodeId o : net.outputs()) {
    g.outputs.push_back(subject_of[static_cast<std::size_t>(o)]);
    g.output_names.push_back(net.node(o).name);
  }

  // Prune nodes unreachable from the outputs (the structural-hashing
  // builder can leave dead inverters behind when INV(INV(x)) collapses);
  // dead nodes would otherwise inflate fanout counts and create spurious
  // covering boundaries. Inputs are interface and always kept.
  std::vector<bool> live(g.nodes.size(), false);
  {
    std::vector<int> stack(g.outputs.begin(), g.outputs.end());
    for (const int i : g.inputs) stack.push_back(i);
    while (!stack.empty()) {
      const int n = stack.back();
      stack.pop_back();
      if (live[static_cast<std::size_t>(n)]) continue;
      live[static_cast<std::size_t>(n)] = true;
      const auto& sn = g.nodes[static_cast<std::size_t>(n)];
      if (sn.a >= 0) stack.push_back(sn.a);
      if (sn.b >= 0) stack.push_back(sn.b);
    }
  }
  std::vector<int> remap(g.nodes.size(), -1);
  std::vector<SubjectNode> kept;
  kept.reserve(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    SubjectNode n = g.nodes[i];
    if (n.a >= 0) n.a = remap[static_cast<std::size_t>(n.a)];
    if (n.b >= 0) n.b = remap[static_cast<std::size_t>(n.b)];
    kept.push_back(std::move(n));
  }
  g.nodes = std::move(kept);
  for (int& o : g.outputs) o = remap[static_cast<std::size_t>(o)];
  for (int& i : g.inputs) i = remap[static_cast<std::size_t>(i)];

  // Fanout counts (outputs count as fanout so internal cover boundaries
  // respect output visibility).
  for (const auto& n : g.nodes) {
    if (n.a >= 0) ++g.nodes[static_cast<std::size_t>(n.a)].fanout_count;
    if (n.b >= 0) ++g.nodes[static_cast<std::size_t>(n.b)].fanout_count;
  }
  for (const int o : g.outputs) ++g.nodes[static_cast<std::size_t>(o)].fanout_count;
  return g;
}

}  // namespace l2l::techmap
