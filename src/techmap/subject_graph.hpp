#pragma once
// Subject-graph construction: decompose an arbitrary logic network into
// the canonical NAND2/INV basis that tree covering matches against.
// Nodes are structurally hashed, so shared subexpressions converge.

#include <cstdint>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace l2l::techmap {

struct SubjectNode {
  enum class Kind { kInput, kInv, kNand, kConst };
  Kind kind = Kind::kInput;
  int a = -1, b = -1;       ///< fanins (a only for INV)
  bool const_value = false; ///< for kConst
  int fanout_count = 0;     ///< filled after construction
  std::string name;         ///< for inputs: network name
};

struct SubjectGraph {
  std::vector<SubjectNode> nodes;
  /// For each primary output of the source network: subject node index.
  std::vector<int> outputs;
  std::vector<std::string> output_names;
  /// For each primary input of the source network: subject node index.
  std::vector<int> inputs;

  int num_nand() const;
  int num_inv() const;

  /// Evaluate on a primary-input assignment (inputs() order of the source
  /// network). Test/verification helper.
  std::vector<bool> simulate(const std::vector<bool>& input_values) const;
};

/// Build the subject graph. Every node SOP is algebraically factored first
/// (mls::factor), then the factored form is decomposed into 2-input NANDs
/// and inverters with structural hashing.
SubjectGraph build_subject_graph(const network::Network& net);

}  // namespace l2l::techmap
