#include "mooc/grading_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::mooc {
namespace {

/// splitmix64: the standard 64-bit finalizer. Good enough to turn
/// (seed, submission, attempt) into an independent uniform draw.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t submission,
                 std::uint64_t attempt, std::uint64_t salt) {
  std::uint64_t h = splitmix64(seed ^ splitmix64(submission ^ salt));
  h = splitmix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

QueueResult drain_queue(const std::vector<std::string>& submissions,
                        const GradeFn& grade, const QueueOptions& opt) {
  obs::ScopedSpan span("mooc.queue.drain", "mooc");
  QueueResult res;
  res.outcomes.resize(submissions.size());
  // Per-submission tallies filled in parallel, folded into stats after the
  // barrier so the totals never depend on commit order.
  struct Tally {
    int transients = 0;
    int stalls = 0;
  };
  std::vector<Tally> tallies(submissions.size());

  util::parallel_for(
      0, static_cast<std::int64_t>(submissions.size()), 1,
      [&](std::int64_t s) {
        const auto i = static_cast<std::size_t>(s);
        // Per-submission span: a Chrome trace of a drain shows each worker
        // lane's grading intervals, retries included in one span.
        obs::ScopedSpan sub_span("mooc.queue.submission", "mooc");
        auto& out = res.outcomes[i];

        // Pre-grade lint: deterministic, so it runs once -- a submission
        // that lints dirty will lint dirty on every retry too. Errors
        // reject before any grading attempt is spent.
        if (opt.lint) {
          const auto findings = opt.lint(submissions[i]);
          bool fatal = false;
          for (const auto& d : findings)
            fatal = fatal || d.severity == util::Severity::kError;
          if (fatal) {
            out.kind = OutcomeKind::kRejected;
            out.status = util::Status::parse_error("rejected by lint");
            out.diagnostic =
                util::format("lint rejected the submission (%d finding(s)):\n",
                             static_cast<int>(findings.size())) +
                util::render_diagnostics(findings);
            return;
          }
        }

        const int max_attempts = 1 + std::max(0, opt.max_retries);
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          ++out.attempts;
          if (attempt > 0)
            out.backoff_ticks += opt.backoff_base_ticks << (attempt - 1);

          // Injected worker faults, decided by hash alone so the outcome
          // is identical regardless of which lane runs this submission.
          const auto ui = static_cast<std::uint64_t>(i);
          const auto ua = static_cast<std::uint64_t>(attempt);
          if (uniform01(opt.fault_seed, ui, ua, 0x7261776bull) <
              opt.transient_fault_rate) {
            ++tallies[i].transients;
            out.status = util::Status::internal("injected transient fault");
            out.diagnostic = util::format(
                "worker crashed on attempt %d (injected)", attempt + 1);
            continue;  // retry
          }
          if (uniform01(opt.fault_seed, ui, ua, 0x7374616cull) <
              opt.stall_rate) {
            ++tallies[i].stalls;
            out.status = util::Status::timeout("injected worker stall");
            out.diagnostic = util::format(
                "worker stalled on attempt %d (injected)", attempt + 1);
            continue;  // retry
          }

          util::Budget guard;
          if (opt.step_limit >= 0) guard.set_step_limit(opt.step_limit);
          if (opt.time_limit_ms >= 0) guard.set_deadline_ms(opt.time_limit_ms);
          try {
            const double score = grade(submissions[i], guard);
            if (guard.exhausted()) {
              // Deterministic resource exhaustion: the same submission
              // would exhaust the same budget again, so don't retry.
              out.kind = OutcomeKind::kBudget;
              out.status = guard.status();
              out.diagnostic = "submission exceeded its grading budget";
              return;
            }
            out.kind = OutcomeKind::kGraded;
            out.score = score;
            out.status = util::Status::okay();
            out.diagnostic.clear();
            return;
          } catch (const util::BudgetExceededError& e) {
            out.kind = OutcomeKind::kBudget;
            out.status = e.status();
            out.diagnostic = "submission exceeded its grading budget";
            return;  // deterministic: no retry
          } catch (const std::exception& e) {
            // Poison input: grading threw. Retried (the throw could have
            // been environmental), converted to kFailed when retries run
            // out.
            out.status = util::Status::internal(e.what());
            out.diagnostic =
                util::format("grader error: %s", e.what());
            continue;
          } catch (...) {
            out.status = util::Status::internal("unknown grader error");
            out.diagnostic = "grader error: unknown";
            continue;
          }
        }
        // All attempts consumed without a graded result.
        out.kind = out.status.code == util::StatusCode::kInternalError &&
                           out.diagnostic.rfind("grader error", 0) == 0
                       ? OutcomeKind::kFailed
                       : OutcomeKind::kExhausted;
      });

  for (std::size_t i = 0; i < submissions.size(); ++i) {
    const auto& out = res.outcomes[i];
    res.stats.total_attempts += out.attempts;
    res.stats.injected_transients += tallies[i].transients;
    res.stats.injected_stalls += tallies[i].stalls;
    switch (out.kind) {
      case OutcomeKind::kGraded: ++res.stats.graded; break;
      case OutcomeKind::kFailed: ++res.stats.failed; break;
      case OutcomeKind::kBudget: ++res.stats.budget_exceeded; break;
      case OutcomeKind::kExhausted: ++res.stats.retries_exhausted; break;
      case OutcomeKind::kRejected: ++res.stats.lint_rejected; break;
    }
  }
  // Metrics flush from the sequential fold: every number below comes from
  // the already-deterministic QueueStats, not from the worker lanes.
  if (obs::enabled()) {
    obs::count("mooc.queue.drains");
    obs::count("mooc.queue.submissions",
               static_cast<std::int64_t>(submissions.size()));
    obs::count("mooc.queue.graded", res.stats.graded);
    obs::count("mooc.queue.failed", res.stats.failed);
    obs::count("mooc.queue.budget_exceeded", res.stats.budget_exceeded);
    obs::count("mooc.queue.retries_exhausted", res.stats.retries_exhausted);
    obs::count("mooc.queue.lint_rejected", res.stats.lint_rejected);
    obs::count("mooc.queue.attempts", res.stats.total_attempts);
    obs::count("mooc.queue.transients", res.stats.injected_transients);
    obs::count("mooc.queue.stalls", res.stats.injected_stalls);
    for (const auto& out : res.outcomes)
      obs::observe("mooc.queue.attempts_per_submission", out.attempts);
  }
  return res;
}

}  // namespace l2l::mooc
