#include "mooc/grading_queue.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "cache/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::mooc {
namespace {

constexpr std::uint64_t kQueueFormatVersion = 1;

/// splitmix64: the standard 64-bit finalizer. Good enough to turn
/// (seed, submission, attempt) into an independent uniform draw.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t submission,
                 std::uint64_t attempt, std::uint64_t salt) {
  std::uint64_t h = splitmix64(seed ^ splitmix64(submission ^ salt));
  h = splitmix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool lint_pre_grade_rejects(const std::string& submission,
                            const QueueOptions& opt, SubmissionOutcome& out) {
  if (!opt.lint) return false;
  const auto findings = opt.lint(submission);
  bool fatal = false;
  for (const auto& d : findings)
    fatal = fatal || d.severity == util::Severity::kError;
  if (!fatal) return false;
  out.kind = OutcomeKind::kRejected;
  out.status = util::Status::parse_error("rejected by lint");
  out.diagnostic =
      util::format("lint rejected the submission (%d finding(s)):\n",
                   static_cast<int>(findings.size())) +
      util::render_diagnostics(findings);
  return true;
}

void grade_one_submission(std::uint64_t fault_key,
                          const std::string& submission, const GradeFn& grade,
                          const QueueOptions& opt, SubmissionOutcome& out,
                          FaultTally& tally) {
  const int max_attempts = 1 + std::max(0, opt.max_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++out.attempts;
    if (attempt > 0) {
      // Exponential backoff with the shift clamped to 30 and the running
      // total saturated: at max_retries = 64 a naive `base << (attempt-1)`
      // shifts past the width of int (UB) long before the loop ends.
      const int shift = std::min(attempt - 1, 30);
      constexpr auto kMaxTicks =
          static_cast<std::int64_t>(std::numeric_limits<int>::max());
      const std::int64_t step = std::min(
          static_cast<std::int64_t>(opt.backoff_base_ticks) << shift,
          kMaxTicks);
      out.backoff_ticks = static_cast<int>(std::min(
          static_cast<std::int64_t>(out.backoff_ticks) + step, kMaxTicks));
    }

    // Injected worker faults, decided by hash alone so the outcome
    // is identical regardless of which lane runs this submission.
    const auto ui = fault_key;
    const auto ua = static_cast<std::uint64_t>(attempt);
    if (uniform01(opt.fault_seed, ui, ua, 0x7261776bull) <
        opt.transient_fault_rate) {
      ++tally.transients;
      out.status = util::Status::internal("injected transient fault");
      out.diagnostic =
          util::format("worker crashed on attempt %d (injected)", attempt + 1);
      continue;  // retry
    }
    if (uniform01(opt.fault_seed, ui, ua, 0x7374616cull) < opt.stall_rate) {
      ++tally.stalls;
      out.status = util::Status::timeout("injected worker stall");
      out.diagnostic =
          util::format("worker stalled on attempt %d (injected)", attempt + 1);
      continue;  // retry
    }

    util::Budget guard;
    if (opt.step_limit >= 0) guard.set_step_limit(opt.step_limit);
    if (opt.time_limit_ms >= 0) guard.set_deadline_ms(opt.time_limit_ms);
    try {
      const double score = grade(submission, guard);
      if (guard.exhausted()) {
        // Deterministic resource exhaustion: the same submission
        // would exhaust the same budget again, so don't retry.
        out.kind = OutcomeKind::kBudget;
        out.status = guard.status();
        out.diagnostic = "submission exceeded its grading budget";
        return;
      }
      out.kind = OutcomeKind::kGraded;
      out.score = score;
      out.status = util::Status::okay();
      out.diagnostic.clear();
      return;
    } catch (const util::BudgetExceededError& e) {
      out.kind = OutcomeKind::kBudget;
      out.status = e.status();
      out.diagnostic = "submission exceeded its grading budget";
      return;  // deterministic: no retry
    } catch (const std::exception& e) {
      // Poison input: grading threw. Retried (the throw could have
      // been environmental), converted to kFailed when retries run
      // out.
      out.status = util::Status::internal(e.what());
      out.diagnostic = util::format("grader error: %s", e.what());
      continue;
    } catch (...) {
      out.status = util::Status::internal("unknown grader error");
      out.diagnostic = "grader error: unknown";
      continue;
    }
  }
  // All attempts consumed without a graded result.
  out.kind = out.status.code == util::StatusCode::kInternalError &&
                     out.diagnostic.rfind("grader error", 0) == 0
                 ? OutcomeKind::kFailed
                 : OutcomeKind::kExhausted;
}

std::string serialize_outcome(const SubmissionOutcome& out) {
  std::string bytes;
  cache::append_i64(bytes, static_cast<std::int64_t>(out.kind));
  cache::append_f64(bytes, out.score);
  cache::append_i64(bytes, out.attempts);
  cache::append_i64(bytes, out.backoff_ticks);
  cache::append_i64(bytes, static_cast<std::int64_t>(out.status.code));
  cache::append_record(bytes, out.status.message);
  cache::append_record(bytes, out.diagnostic);
  return bytes;
}

bool deserialize_outcome(std::string_view bytes, SubmissionOutcome& out) {
  cache::RecordReader in(bytes);
  std::int64_t kind = 0, attempts = 0, backoff = 0, code = 0;
  if (!in.next_i64(kind) || !in.next_f64(out.score) ||
      !in.next_i64(attempts) || !in.next_i64(backoff) || !in.next_i64(code) ||
      !in.next_string(out.status.message) || !in.next_string(out.diagnostic) ||
      !in.complete())
    return false;
  if (kind < 0 || kind > static_cast<std::int64_t>(OutcomeKind::kRejected))
    return false;
  if (code < 0 ||
      code > static_cast<std::int64_t>(util::StatusCode::kInternalError))
    return false;
  out.kind = static_cast<OutcomeKind>(kind);
  out.attempts = static_cast<int>(attempts);
  out.backoff_ticks = static_cast<int>(backoff);
  out.status.code = static_cast<util::StatusCode>(code);
  return true;
}

namespace {

void fold_stats(QueueResult& res, const std::vector<FaultTally>& tallies) {
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    const auto& out = res.outcomes[i];
    res.stats.total_attempts += out.attempts;
    res.stats.injected_transients += tallies[i].transients;
    res.stats.injected_stalls += tallies[i].stalls;
    switch (out.kind) {
      case OutcomeKind::kGraded: ++res.stats.graded; break;
      case OutcomeKind::kFailed: ++res.stats.failed; break;
      case OutcomeKind::kBudget: ++res.stats.budget_exceeded; break;
      case OutcomeKind::kExhausted: ++res.stats.retries_exhausted; break;
      case OutcomeKind::kRejected: ++res.stats.lint_rejected; break;
    }
  }
}

void export_metrics(const QueueResult& res, std::size_t submissions,
                    bool cached_path) {
  // Metrics flush from the sequential fold: every number below comes from
  // the already-deterministic QueueStats, not from the worker lanes.
  if (!obs::enabled()) return;
  obs::count("mooc.queue.drains");
  obs::count("mooc.queue.submissions", static_cast<std::int64_t>(submissions));
  obs::count("mooc.queue.graded", res.stats.graded);
  obs::count("mooc.queue.failed", res.stats.failed);
  obs::count("mooc.queue.budget_exceeded", res.stats.budget_exceeded);
  obs::count("mooc.queue.retries_exhausted", res.stats.retries_exhausted);
  obs::count("mooc.queue.lint_rejected", res.stats.lint_rejected);
  obs::count("mooc.queue.attempts", res.stats.total_attempts);
  obs::count("mooc.queue.transients", res.stats.injected_transients);
  obs::count("mooc.queue.stalls", res.stats.injected_stalls);
  if (cached_path) {
    // Only the dedup path emits its counters: with L2L_CACHE=0 the
    // metric export stays byte-identical to the pre-cache service.
    obs::count("mooc.queue.deduped", res.stats.deduped);
    obs::count("mooc.queue.cache_hits", res.stats.cache_hits);
    obs::count("mooc.queue.lint_rejected_cached",
               res.stats.lint_rejected_cached);
  }
  for (const auto& out : res.outcomes)
    obs::observe("mooc.queue.attempts_per_submission", out.attempts);
}

/// The original grade-everything path: no digests, no dedup. Runs when
/// the cache kill switch is off, byte-identical to the pre-cache queue.
QueueResult drain_uncached(const std::vector<std::string>& submissions,
                           const GradeFn& grade, const QueueOptions& opt) {
  QueueResult res;
  res.outcomes.resize(submissions.size());
  std::vector<FaultTally> tallies(submissions.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(submissions.size()), 1,
      [&](std::int64_t s) {
        const auto i = static_cast<std::size_t>(s);
        // Per-submission span: a Chrome trace of a drain shows each worker
        // lane's grading intervals, retries included in one span.
        obs::ScopedSpan sub_span("mooc.queue.submission", "mooc");
        auto& out = res.outcomes[i];
        if (lint_pre_grade_rejects(submissions[i], opt, out)) return;
        grade_one_submission(static_cast<std::uint64_t>(i), submissions[i], grade,
                             opt, out, tallies[i]);
      });
  fold_stats(res, tallies);
  export_metrics(res, submissions.size(), /*cached_path=*/false);
  return res;
}

}  // namespace

QueueResult drain_queue(const std::vector<std::string>& submissions,
                        const GradeFn& grade, const QueueOptions& opt) {
  obs::ScopedSpan span("mooc.queue.drain", "mooc");
  if (!cache::enabled()) return drain_uncached(submissions, grade, opt);

  QueueResult res;
  res.outcomes.resize(submissions.size());
  std::vector<FaultTally> tallies(submissions.size());

  // Injected faults are keyed by submission index, so two identical
  // submissions legitimately differ in outcome under fault injection:
  // full-outcome dedup only applies when the simulation is fault-free and
  // deterministic (no wall clock). Lint replay is always safe -- the lint
  // verdict is a pure function of the submission bytes.
  const bool dedup_outcomes = opt.transient_fault_rate == 0.0 &&
                              opt.stall_rate == 0.0 && opt.time_limit_ms < 0;

  // Sequential pre-pass: digest every submission, map duplicates to their
  // first occurrence, and run lint once per unique upload. Sequential so
  // hit/miss/dedup decisions never depend on the thread schedule.
  std::vector<std::size_t> canonical(submissions.size());
  std::vector<char> rejected(submissions.size(), 0);
  std::vector<cache::Digest128> digests(submissions.size());
  {
    std::map<cache::Digest128, std::size_t> first;
    for (std::size_t i = 0; i < submissions.size(); ++i) {
      digests[i] = cache::digest_bytes(submissions[i]);
      const auto [it, fresh] = first.emplace(digests[i], i);
      canonical[i] = it->second;
      if (fresh) {
        rejected[i] =
            lint_pre_grade_rejects(submissions[i], opt, res.outcomes[i]);
      } else if (rejected[canonical[i]]) {
        // Identical resubmission of a rejected upload: replay the
        // verdict without re-running the lint pack.
        res.outcomes[i] = res.outcomes[canonical[i]];
        rejected[i] = 1;
        ++res.stats.lint_rejected_cached;
      }
    }
  }

  // Cross-drain replay (opt-in via cache_domain): look finished outcomes
  // up under (submission digest, queue-config digest). Still sequential.
  cache::Digest128 config{};
  std::vector<char> replayed(submissions.size(), 0);
  const bool cross_drain = dedup_outcomes && !opt.cache_domain.empty();
  if (cross_drain) {
    cache::Hasher h;
    h.u64(kQueueFormatVersion)
        .str(opt.cache_domain)
        .i32(opt.max_retries)
        .i32(opt.backoff_base_ticks)
        .i64(opt.step_limit)
        .u64(opt.fault_seed)
        .boolean(static_cast<bool>(opt.lint));
    config = h.finish();
    for (std::size_t i = 0; i < submissions.size(); ++i) {
      if (canonical[i] != i || rejected[i]) continue;
      const cache::CacheKey key{"mooc.queue", digests[i], config};
      if (const auto hit = cache::Cache::global().lookup(key)) {
        if (deserialize_outcome(*hit, res.outcomes[i])) {
          replayed[i] = 1;
          ++res.stats.cache_hits;
        }
      }
    }
  }

  // Work list: first occurrences that still need grading. Without
  // outcome dedup (fault injection on), every non-rejected submission
  // grades itself -- same work as the uncached path.
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    if (rejected[canonical[i]] || replayed[i]) continue;
    if (dedup_outcomes ? canonical[i] == i : !rejected[i]) work.push_back(i);
  }

  util::parallel_for(
      0, static_cast<std::int64_t>(work.size()), 1, [&](std::int64_t s) {
        const auto i = work[static_cast<std::size_t>(s)];
        obs::ScopedSpan sub_span("mooc.queue.submission", "mooc");
        grade_one_submission(static_cast<std::uint64_t>(i), submissions[i], grade,
                             opt, res.outcomes[i], tallies[i]);
      });

  // Sequential epilogue: persist fresh outcomes, then replay duplicates
  // in submission order.
  if (cross_drain) {
    for (const std::size_t i : work) {
      if (canonical[i] != i) continue;
      const cache::CacheKey key{"mooc.queue", digests[i], config};
      cache::Cache::global().insert(key, serialize_outcome(res.outcomes[i]));
    }
  }
  if (dedup_outcomes) {
    for (std::size_t i = 0; i < submissions.size(); ++i) {
      if (canonical[i] == i || rejected[i]) continue;
      res.outcomes[i] = res.outcomes[canonical[i]];
      ++res.stats.deduped;
    }
  }

  fold_stats(res, tallies);
  export_metrics(res, submissions.size(), /*cached_path=*/true);
  return res;
}

}  // namespace l2l::mooc
