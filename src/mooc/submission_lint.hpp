#pragma once
// Pre-grade submission checks for the grading queue/service: factories
// producing the QueueOptions::lint callback. Kept in its own translation
// unit so the queue core stays free of the lint/sema dependency -- only
// deployments that opt into pre-grade checking link the analyzer in.

#include <functional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace l2l::mooc {

/// The QueueOptions::lint shape: body in, diagnostics out. Any
/// error-severity diagnostic rejects the submission (kRejected) without
/// spending a grading attempt -- including on the breaker-open degraded
/// path, which still runs this callback.
using SubmissionLint =
    std::function<std::vector<util::Diagnostic>(const std::string&)>;

/// Semantic pre-grade: run l2l::sema on each submission body. The portal
/// "course <name> <assignment>" header line is skipped when present and
/// the remainder is format-sniffed (BLIF/CNF/PLA get their passes, other
/// formats pass clean). With `require_header`, a missing header line is
/// itself an error -- the generated-trace portal rule, composed here so
/// `--lint --sema` keeps both behaviors. Pure in the bytes: verdicts
/// replay deterministically.
SubmissionLint sema_submission_lint(bool require_header = false);

}  // namespace l2l::mooc
