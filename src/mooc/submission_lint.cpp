#include "mooc/submission_lint.hpp"

#include "sema/sema.hpp"

namespace l2l::mooc {

SubmissionLint sema_submission_lint(bool require_header) {
  return [require_header](const std::string& body) {
    std::vector<util::Diagnostic> out;
    if (require_header && body.rfind("course ", 0) != 0)
      out.push_back(util::make_error(
          1, 1, "submission is missing the course header"));
    auto findings = sema::analyze_submission(body);
    out.insert(out.end(), findings.begin(), findings.end());
    return out;
  };
}

}  // namespace l2l::mooc
