#pragma once
// A stochastic MOOC cohort simulator.
//
// The paper's evaluation data is Coursera's (proprietary) enrollment log;
// per the substitution policy we model each participant as an agent with
// an engagement level drawn at registration, and per-stage survival
// probabilities calibrated to the published funnel (Fig. 8). The benches
// compare simulated aggregates against the paper's numbers and use the
// model to answer parametric what-ifs (e.g. course length vs. completion,
// the effect the paper cites for choosing a 10-week course).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace l2l::mooc {

struct CohortOptions {
  int registered = 17500;
  int num_videos = 69;
  int num_homeworks = 8;
  int num_projects = 4;

  /// Probability a registrant ever shows up (paper: ~1/2 never do).
  double show_up_rate = 0.411;  // 7191 / 17500
  /// Per-video continuation probability for an engaged viewer; the decay
  /// from ~7000 to ~2000 across 69 videos gives ~0.982 per video.
  double video_continue_rate = 0.982;
  /// Probability a viewer attempts homework (paper: ~1/5).
  double homework_rate = 0.1915;  // 1377 / 7191
  /// Probability a homework-doer tries a software project (~1/4).
  double project_rate = 0.268;  // 369 / 1377
  /// Probability a homework-doer sits the final (~40% of those engaged).
  double final_exam_rate = 0.385;  // 530 / 1377
  /// Probability a final-sitter earns the certificate.
  double certificate_rate = 0.728;  // 386 / 530
};

struct Participant {
  int age = 0;
  bool female = false;
  std::string country;
  bool showed_up = false;
  int videos_watched = 0;
  bool did_homework = false;
  bool did_project = false;
  bool took_final = false;
  bool certified = false;
};

struct CohortResult {
  std::vector<Participant> people;
  /// Funnel counts in Fig. 8 order: registered, watched, homework,
  /// project, final, certificate.
  std::vector<int> funnel;
  /// Viewers per video (Fig. 9 series).
  std::vector<int> viewers_per_video;
  /// Country histogram (percent), Fig. 10.
  std::vector<std::pair<std::string, double>> by_country;
  double average_age = 0;
  double female_percent = 0;
};

/// Run the simulator. Deterministic per seed.
CohortResult simulate_cohort(const CohortOptions& opt, util::Rng& rng);

/// Relative error helper for bench reporting: |sim - ref| / ref.
double relative_error(double simulated, double reference);

// ---- submission traces ---------------------------------------------------
// The load generator behind the persistent GradingService
// (grading_service.hpp): the funnel model above says who participates;
// this one says *when they upload what*. Scaled to 1M+ students the trace
// reproduces the operational shape the paper's grading machinery faced --
// deadline-clustered bursts of duplicate-heavy traffic, resubmissions
// riding behind first attempts -- as a deterministic function of the seed.

struct TraceOptions {
  int num_students = 17500;  ///< registrants (paper's funnel top)
  int num_courses = 1;       ///< courses sharing the grading fleet
  /// Semester length in scheduler ticks. Arrivals cluster just before
  /// each homework deadline (every `deadline_every` ticks).
  std::uint32_t ticks = 200;
  std::uint32_t deadline_every = 25;
  /// Probability a registrant submits at all (the funnel's homework leg:
  /// show_up_rate * homework_rate puts the paper at ~0.079; the default
  /// is deliberately hotter so service benches stress the queues).
  double participation_rate = 0.4;
  /// Submissions per participating student: 1 first attempt plus a
  /// geometric number of resubmits with this continue probability.
  double resubmit_rate = 0.55;
  int max_submissions = 8;
  /// Uploads draw their bodies from a per-course pool this large --
  /// small pools give the 90%-duplicate traffic the dedup layer feeds on.
  int unique_bodies_per_course = 512;
  int body_bytes = 96;  ///< bytes per pool body (digesting is not free)
};

/// One upload. `body` indexes SubmissionTrace::bodies (uploads are pooled
/// so a million-event trace does not hold a million strings); the event's
/// index in SubmissionTrace::events is its submission id -- ids ascend in
/// (arrival_tick, generation) order and break every scheduler tie.
struct SubmissionEvent {
  std::uint32_t course = 0;
  std::uint32_t student = 0;
  std::uint32_t body = 0;
  std::uint32_t arrival_tick = 0;
  std::uint32_t deadline_tick = 0;
  std::uint8_t lane = 0;  ///< 0 = first submit, 1 = resubmit
};

struct SubmissionTrace {
  std::vector<SubmissionEvent> events;  ///< sorted by (arrival_tick, id)
  std::vector<std::string> bodies;      ///< shared body pool
  std::uint32_t ticks = 0;
  int num_courses = 1;
};

/// Validate a TraceOptions before generation. kInvalidArgument (with the
/// offending knob named) when any bound is violated:
///
///   num_students >= 0            num_courses in [1, 4096]
///   ticks >= 2                   deadline_every in [2, ticks]
///   participation_rate in [0,1]  resubmit_rate in [0,1]
///   max_submissions >= 1         unique_bodies_per_course in [1, 1'000'000]
///   body_bytes in [24, 1'000'000]
///
/// The caps are sanity rails, not tuning limits: past them a "trace" is
/// either degenerate (courses with no deadline cycle) or an accidental
/// multi-gigabyte allocation from a flag typo. Tools check this before
/// generate_submission_trace and map the failure to exit code 3.
util::Status validate(const TraceOptions& opt);

/// Generate a trace. Deterministic per (opt, rng seed); events come back
/// stably sorted by arrival tick so the service's arrival sweep is a
/// single pointer walk. Callers feeding user input should validate()
/// first -- generation itself assumes the bounds hold.
SubmissionTrace generate_submission_trace(const TraceOptions& opt,
                                          util::Rng& rng);

}  // namespace l2l::mooc
