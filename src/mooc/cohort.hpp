#pragma once
// A stochastic MOOC cohort simulator.
//
// The paper's evaluation data is Coursera's (proprietary) enrollment log;
// per the substitution policy we model each participant as an agent with
// an engagement level drawn at registration, and per-stage survival
// probabilities calibrated to the published funnel (Fig. 8). The benches
// compare simulated aggregates against the paper's numbers and use the
// model to answer parametric what-ifs (e.g. course length vs. completion,
// the effect the paper cites for choosing a 10-week course).

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace l2l::mooc {

struct CohortOptions {
  int registered = 17500;
  int num_videos = 69;
  int num_homeworks = 8;
  int num_projects = 4;

  /// Probability a registrant ever shows up (paper: ~1/2 never do).
  double show_up_rate = 0.411;  // 7191 / 17500
  /// Per-video continuation probability for an engaged viewer; the decay
  /// from ~7000 to ~2000 across 69 videos gives ~0.982 per video.
  double video_continue_rate = 0.982;
  /// Probability a viewer attempts homework (paper: ~1/5).
  double homework_rate = 0.1915;  // 1377 / 7191
  /// Probability a homework-doer tries a software project (~1/4).
  double project_rate = 0.268;  // 369 / 1377
  /// Probability a homework-doer sits the final (~40% of those engaged).
  double final_exam_rate = 0.385;  // 530 / 1377
  /// Probability a final-sitter earns the certificate.
  double certificate_rate = 0.728;  // 386 / 530
};

struct Participant {
  int age = 0;
  bool female = false;
  std::string country;
  bool showed_up = false;
  int videos_watched = 0;
  bool did_homework = false;
  bool did_project = false;
  bool took_final = false;
  bool certified = false;
};

struct CohortResult {
  std::vector<Participant> people;
  /// Funnel counts in Fig. 8 order: registered, watched, homework,
  /// project, final, certificate.
  std::vector<int> funnel;
  /// Viewers per video (Fig. 9 series).
  std::vector<int> viewers_per_video;
  /// Country histogram (percent), Fig. 10.
  std::vector<std::pair<std::string, double>> by_country;
  double average_age = 0;
  double female_percent = 0;
};

/// Run the simulator. Deterministic per seed.
CohortResult simulate_cohort(const CohortOptions& opt, util::Rng& rng);

/// Relative error helper for bench reporting: |sim - ref| / ref.
double relative_error(double simulated, double reference);

}  // namespace l2l::mooc
