#pragma once
// The paper's published datasets, transcribed from the text and figures of
// Rutenbar, "The First EDA MOOC", DAC 2014. These are the ground truth the
// figure benches compare the cohort simulator against.
//
// Where the paper gives exact numbers (Fig. 8 funnel, §2.1 slide counts,
// §4 demographics) we use them verbatim; where a figure shows a shape
// without a table (Fig. 1 bars, Fig. 2 per-video minutes, Fig. 9 viewer
// decay) we encode the stated aggregates (69 videos, 15 min average, 17
// total hours; ~7000 -> ~2000 viewer decay with landmarks) and per-item
// values consistent with the figure.

#include <string>
#include <vector>

namespace l2l::mooc {

// ---- §2.1 / Figure 1: the concept map ---------------------------------

struct ConceptEntry {
  std::string topic;    ///< course topic group (e.g. "BDDs")
  std::string name;     ///< one of the 102 unique concepts
  int slides = 0;       ///< slide count in the 948-slide full course
};

/// Fig. 1's BDD-area snapshot of the concept map, plus aggregate totals
/// for the remaining topic groups so the full 948 slides / 102 concepts
/// bookkeeping reproduces (§2.1).
const std::vector<ConceptEntry>& concept_map();

struct ConceptMapTotals {
  int total_slides_full_course = 948;  ///< paper §2.1
  int unique_concepts = 102;           ///< paper §2.1
  int mooc_slides = 615;               ///< after re-architecting
  int mooc_lectures = 69;
};
ConceptMapTotals concept_map_totals();

// ---- Figure 2: the 69 lecture videos -----------------------------------

struct LectureVideo {
  std::string id;      ///< e.g. "3.2" (week.index)
  int week = 0;        ///< 1..8 topics; 9 = tool tutorials
  std::string topic;
  double minutes = 0;  ///< video length
};

/// All 69 videos. Lengths are synthesized to match the paper's stated
/// aggregates exactly: average 15 minutes, ~17 total hours.
const std::vector<LectureVideo>& lecture_videos();

// ---- Figure 8: the participation funnel ---------------------------------

struct FunnelStage {
  std::string name;
  int count = 0;
};

/// The published funnel: 17500 registered -> 7191 watched -> 1377 homework
/// -> 369 software -> 530 final exam -> 386 certificates.
const std::vector<FunnelStage>& participation_funnel();

// ---- Figure 9: per-video viewers ----------------------------------------

/// Viewer counts per lecture video (1..69): a decay from ~7000 to ~2000
/// matching the landmarks called out in the paper (7000 intro viewers,
/// 5000 mid-course, ~2000 completed all).
const std::vector<int>& viewers_per_video();

// ---- Figure 10 / §4: demographics ---------------------------------------

struct CountryShare {
  std::string country;
  double percent = 0;  ///< of participants
};
const std::vector<CountryShare>& participation_by_country();

struct Demographics {
  double average_age = 30;
  int min_age = 15;
  int max_age = 75;
  double bachelors_percent = 30;
  double ms_phd_percent = 29;
  double male_percent = 88;
  double female_percent = 12;
};
Demographics demographics();

// ---- Figure 11: survey word cloud ---------------------------------------

struct SurveyWord {
  std::string word;
  int weight = 0;  ///< relative frequency in survey responses
};
const std::vector<SurveyWord>& survey_topics();

}  // namespace l2l::mooc
