#pragma once
// The persistent grading service: the planet-scale operational loop the
// paper's "large regression suite for a commercial EDA tool" actually ran
// as. Where drain_queue (grading_queue.hpp) is a one-shot batch over a
// pre-materialized vector, the service is a tick-driven daemon over
// multi-course sharded bounded queues, built to survive what a semester
// throws at it:
//
//   * admission control  -- per-course per-tick arrival quotas; an
//                           arrival past the quota (or past a full queue
//                           under the `none` shed policy) is rejected
//                           with a recorded reason, never dropped;
//   * backpressure       -- per-course queue caps; when arrivals outrun
//                           capacity a deterministic shed policy evicts
//                           lowest-priority, oldest-deadline work first
//                           and records every eviction as an outcome;
//   * priority lanes     -- first submits outrank resubmits; within a
//                           lane the scheduler is earliest-deadline-first
//                           with ties broken by submission id;
//   * circuit breakers   -- per course: K consecutive injected-fault
//                           failures trip the breaker, scheduled work is
//                           degraded to lint-only grading while open, and
//                           half-open probes on a deterministic tick
//                           schedule re-close it when the fault storm
//                           passes;
//   * dedup & replay     -- byte-identical uploads replay the first
//                           outcome (in-run dedup) and, with a
//                           cache_domain, across runs through the PR 5
//                           result cache -- both decided sequentially so
//                           hits never depend on the thread schedule.
//
// Determinism contract: scheduling, admission, shedding, breaker
// transitions, dedup, and every exported metric are bit-identical at any
// L2L_THREADS. Only the per-tick wall-clock latencies (kept out of the
// obs registry, in ServiceResult::tick_duration_us) vary run to run.
// Workers matter only inside one tick's scheduled batch, which is graded
// via parallel_for into pre-assigned slots and folded sequentially in
// schedule order.
//
// Accounting contract (the "zero silent drops" invariant the tests pin):
//
//   admitted + rejected + shed == arrivals
//
// where `admitted` counts submissions that reached a terminal grading
// outcome (graded / failed / budget / exhausted / lint-rejected /
// degraded), `rejected` counts admission-time refusals, and `shed` counts
// queue evictions. Every trace event owns exactly one ServiceOutcome.

#include <cstdint>
#include <string>
#include <vector>

#include "mooc/cohort.hpp"
#include "mooc/grading_queue.hpp"
#include "util/status.hpp"

namespace l2l::mooc {

enum class ShedPolicy {
  /// Evict lowest-priority lane first; within the lane, the entry with
  /// the oldest (smallest) deadline, ties broken by smallest submission
  /// id. Rationale: past-deadline work is the least useful to finish and
  /// the resubmit lane always outranks losing a first attempt.
  kOldestDeadline,
  /// Evict lowest-priority lane first; within the lane, the newest
  /// arrival (largest submission id). "You joined an overloaded queue
  /// last, you leave it first."
  kNewestFirst,
  /// Never evict: a full queue rejects new arrivals at admission instead.
  kNone,
};

/// Parse "oldest-deadline" / "newest-first" / "none" (the --shed-policy
/// spellings). Returns false on anything else.
bool parse_shed_policy(const std::string& text, ShedPolicy& out);
const char* shed_policy_name(ShedPolicy policy);

struct ServiceOptions {
  /// Per-course bound on queued-but-unserviced submissions (both lanes
  /// together). The knob that turns overload into shed/reject instead of
  /// unbounded memory.
  int queue_cap = 1024;
  /// Per-course per-tick admission quota: arrivals beyond it are
  /// rejected with kRejectedQuota. <= 0 admits nothing.
  int admit_quota = 256;
  /// Per-course submissions scheduled for service each tick (>= 1).
  int service_rate = 64;
  ShedPolicy shed_policy = ShedPolicy::kOldestDeadline;

  /// Circuit breaker: trips after this many consecutive
  /// injected-fault failures (kExhausted outcomes) in one course.
  int breaker_threshold = 8;
  /// While open, a half-open probe (one full-grade submission) runs every
  /// this many ticks; everything else in the course is lint-only.
  int breaker_probe_interval = 16;

  /// Fault storm window [storm_begin_tick, storm_end_tick): during these
  /// ticks the storm rates REPLACE queue.transient_fault_rate /
  /// queue.stall_rate. Deterministic -- the window is tick-defined, the
  /// draws are keyed by submission id.
  std::uint32_t storm_begin_tick = 0;
  std::uint32_t storm_end_tick = 0;
  double storm_transient_rate = 0.0;
  double storm_stall_rate = 0.0;

  /// Retry/backoff/budget/fault/lint/cache_domain knobs, shared verbatim
  /// with drain_queue. cache_domain here stores outcomes under engine id
  /// "mooc.service".
  QueueOptions queue;

  /// Record one ServiceOutcome per trace event (tests, reports). The
  /// stats/counters accounting is identical either way.
  bool record_outcomes = true;

  /// Logical sharding (shard_map.hpp): with num_shards > 1 this process
  /// walks the whole trace but owns only the courses the consistent-hash
  /// ring assigns to `shard` -- foreign events are skipped entirely
  /// (not arrivals, not rejections), preserving trace-wide submission
  /// ids so fault draws match the single-process run. merge_sharded()
  /// reassembles the N partial results into the 1-process result.
  int num_shards = 1;
  int shard = 0;
};

/// Terminal disposition of one arrival. The first six are "admitted"
/// (serviced through the grade or degrade path); the last three never
/// reached a grader.
enum class Disposition : std::uint8_t {
  kGraded = 0,     ///< full grade, callback returned a score
  kFailed,         ///< callback threw on every attempt (poison input)
  kBudget,         ///< per-submission budget exhausted
  kExhausted,      ///< injected faults on every attempt
  kLintRejected,   ///< lint found errors (full or degraded mode)
  kDegraded,       ///< breaker open: serviced lint-only, no score
  kRejectedQuota,  ///< admission: per-tick course quota exceeded
  kRejectedFull,   ///< admission: queue at cap under ShedPolicy::kNone
  kShed,           ///< admitted, then evicted by the shed policy
};

const char* disposition_name(Disposition d);

struct ServiceOutcome {
  Disposition disposition = Disposition::kGraded;
  std::uint8_t lane = 0;
  /// Outcome replayed from the in-run dedup table or the result cache
  /// instead of grading.
  bool replayed = false;
  std::uint16_t attempts = 0;
  util::StatusCode status = util::StatusCode::kOk;
  /// Tick of the terminal decision (service, rejection, or shed).
  std::uint32_t final_tick = 0;
  std::int32_t backoff_ticks = 0;
  double score = 0.0;  ///< valid when disposition == kGraded
  /// Failure description for serviced submissions. Empty for
  /// rejected/shed outcomes -- at planet scale the disposition itself is
  /// the reason, and a million identical strings help nobody.
  std::string diagnostic;

  /// Field-wise equality -- the recovery and shard-merge tests compare
  /// whole outcome vectors against the uninterrupted run's.
  bool operator==(const ServiceOutcome&) const = default;
};

struct ServiceStats {
  std::int64_t ticks = 0;
  std::int64_t arrivals = 0;
  std::int64_t admitted = 0;  ///< serviced to a terminal grading outcome
  std::int64_t rejected_quota = 0;
  std::int64_t rejected_full = 0;
  std::int64_t shed = 0;
  std::int64_t graded = 0;
  std::int64_t degraded = 0;
  std::int64_t failed = 0;
  std::int64_t budget_exceeded = 0;
  std::int64_t retries_exhausted = 0;
  std::int64_t lint_rejected = 0;
  std::int64_t dedup_hits = 0;   ///< in-run duplicate replays
  std::int64_t cache_hits = 0;   ///< cross-run result-cache replays
  std::int64_t breaker_trips = 0;
  std::int64_t breaker_probes = 0;
  std::int64_t breaker_recoveries = 0;
  std::int64_t total_attempts = 0;
  std::int64_t injected_transients = 0;
  std::int64_t injected_stalls = 0;
  std::int64_t peak_depth_first = 0;     ///< max lane-0 depth (any course)
  std::int64_t peak_depth_resubmit = 0;  ///< max lane-1 depth (any course)

  std::int64_t rejected() const { return rejected_quota + rejected_full; }

  bool operator==(const ServiceStats&) const = default;
};

struct ServiceResult {
  /// One outcome per trace event, indexed by submission id. Empty when
  /// ServiceOptions::record_outcomes is false.
  std::vector<ServiceOutcome> outcomes;
  ServiceStats stats;
  /// Wall-clock duration of each tick, microseconds. Nondeterministic by
  /// nature, so it lives here and NEVER in the obs registry (whose export
  /// must stay byte-identical across runs and thread counts).
  std::vector<std::int64_t> tick_duration_us;

  /// The run stopped at RunRequest::halt_after_ticks (the crash
  /// harness's simulated kill) -- queues were NOT drained and the
  /// accounting identity is not expected to hold yet.
  bool halted = false;

  /// The zero-silent-drops invariant.
  bool accounting_ok() const {
    return stats.admitted + stats.rejected() + stats.shed == stats.arrivals;
  }
};

/// Exact percentile (nearest-rank) over tick_duration_us; 0 if empty.
std::int64_t tick_latency_percentile_us(const ServiceResult& res, double pct);

/// Durability controls for one run() invocation -- everything that is
/// about THIS process's lifetime rather than the service's semantics
/// (and so stays out of the journal's config digest).
struct RunRequest {
  /// Non-empty: journal every decision to this file (mooc/journal.hpp),
  /// flushed once per tick.
  std::string journal_path;
  /// Replay an existing journal at journal_path before grading anything:
  /// the torn tail is quarantined, the complete-tick prefix is replayed
  /// to the exact pre-crash state (journaled outcomes substituted, all
  /// re-derived decisions verified), then the drain continues live,
  /// appending. A missing/empty journal degrades to a fresh start; a
  /// journal for a different trace or config is refused.
  bool recover = false;
  /// >= 0: stop before processing tick N -- the deterministic stand-in
  /// for SIGKILL the crash-recovery harness sweeps. The result is
  /// marked halted and the accounting identity is not enforced.
  std::int64_t halt_after_ticks = -1;
};

/// The persistent sharded grading daemon. Construct with options and the
/// grading callback, then run() a trace: the loop ticks from 0 until the
/// last arrival is consumed AND every course queue has drained, so no
/// submission is left behind even when overload pushes service past the
/// trace's nominal semester end.
class GradingService {
 public:
  GradingService(ServiceOptions opt, GradeFn grade);

  /// Drive the service over one trace. May be called repeatedly (e.g. a
  /// warm re-run against the same cache_domain); each run starts with
  /// empty queues and closed breakers.
  ServiceResult run(const SubmissionTrace& trace) const;

  /// The journal-aware form: same loop, plus whatever `req` asks for.
  /// `status` is non-ok when the journal cannot be written, a recovery
  /// header does not match this (trace, options) pair, or replay
  /// diverges from the journaled decisions -- in every case the partial
  /// result must not be trusted.
  ServiceResult run(const SubmissionTrace& trace, const RunRequest& req,
                    util::Status& status) const;

 private:
  ServiceOptions opt_;
  GradeFn grade_;
};

}  // namespace l2l::mooc
