#pragma once
// Survey-response mining (Figure 11): tokenize free-text survey answers,
// drop stop words, count frequencies, and render a text "word cloud"
// (size-sorted weighted list -- the terminal version of Fig. 11).

#include <string>
#include <utility>
#include <vector>

namespace l2l::mooc {

/// Count non-stop-word token frequencies across responses (case-folded).
std::vector<std::pair<std::string, int>> count_words(
    const std::vector<std::string>& responses);

/// Render counts as a text cloud: words repeated proportionally to weight,
/// largest first, e.g. "VERIFICATION(42) timing(38) ...".
std::string render_word_cloud(
    const std::vector<std::pair<std::string, int>>& counts, int max_words = 30);

/// Deterministic synthetic survey: expands the published Fig. 11 word
/// weights into free-text responses (the inverse of count_words), so the
/// mining pipeline can be exercised end to end.
std::vector<std::string> synthesize_survey_responses(std::uint64_t seed);

}  // namespace l2l::mooc
