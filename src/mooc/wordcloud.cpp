#include "mooc/wordcloud.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "mooc/datasets.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace l2l::mooc {
namespace {

const std::set<std::string>& stop_words() {
  static const std::set<std::string> kStop = {
      "the", "a",  "an", "and", "or",   "of", "to",  "in", "on", "for",
      "i",   "we", "it", "is",  "was",  "be", "would", "like", "please",
      "see", "do", "did", "you", "course", "want", "wanted", "cover",
  };
  return kStop;
}

}  // namespace

std::vector<std::pair<std::string, int>> count_words(
    const std::vector<std::string>& responses) {
  std::map<std::string, int> counts;
  for (const auto& r : responses) {
    for (const auto& tok : util::split(util::to_lower(r), " \t\r\n.,;:!?()")) {
      if (tok.size() < 3 && tok != "sat" && tok != "bdd" && tok != "drc")
        continue;
      if (stop_words().count(tok)) continue;
      ++counts[tok];
    }
  }
  std::vector<std::pair<std::string, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::string render_word_cloud(
    const std::vector<std::pair<std::string, int>>& counts, int max_words) {
  std::string out;
  int emitted = 0;
  const int top = counts.empty() ? 1 : counts.front().second;
  for (const auto& [word, n] : counts) {
    if (emitted >= max_words) break;
    std::string w = word;
    // "Bigger" words in caps, medium capitalized, small lowercase.
    if (n * 3 >= top * 2) {
      for (auto& c : w) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else if (n * 3 >= top) {
      w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    }
    out += util::format("%s(%d) ", w.c_str(), n);
    ++emitted;
  }
  if (!out.empty()) out.back() = '\n';
  return out;
}

std::vector<std::string> synthesize_survey_responses(std::uint64_t seed) {
  util::Rng rng(seed);
  // Expand the published weights into individual one-line answers.
  // Template words are all stop words or too short to count, so mining
  // recovers exactly the embedded topic weights.
  std::vector<std::string> pool;
  for (const auto& w : survey_topics())
    for (int k = 0; k < w.weight; ++k)
      pool.push_back("please do cover " + w.word + " in the course");
  rng.shuffle(pool);
  return pool;
}

}  // namespace l2l::mooc
