#pragma once
// A fault-injecting simulator of the MOOC's grading queue -- the service
// path the paper describes as "a large regression suite for a commercial
// EDA tool" run against planet-scale student uploads. The queue wraps an
// arbitrary grading callback with the production failure modes:
//
//   * slow submissions   (the grader runs long; the per-submission budget
//                         cuts it off deterministically),
//   * poison inputs      (the grader throws; the barrier converts the
//                         escape into a diagnostic outcome),
//   * transient worker faults and stalls (injected; retried with bounded
//                         exponential backoff until max_retries).
//
// Fault injection is deterministic: whether attempt k of submission i
// faults is a pure hash of (fault_seed, i, k), independent of thread
// schedule, so a draining run is bit-identical at any L2L_THREADS value
// and a test can assert exact per-submission outcomes.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/budget.hpp"
#include "util/status.hpp"

namespace l2l::mooc {

struct QueueOptions {
  /// Retries per submission after the first attempt (injected faults and
  /// grader exceptions retry; deterministic budget exhaustion does not --
  /// a submission that blew its step budget once will blow it again).
  int max_retries = 2;
  /// Simulated backoff before retry r: backoff_base_ticks << (r - 1),
  /// with the shift clamped (and the accumulated total saturated at
  /// INT_MAX) so max_retries = 64 is well-defined, not UB. Recorded in
  /// the outcome, never slept -- the simulator models the schedule, the
  /// test asserts it.
  int backoff_base_ticks = 1;
  /// Per-submission step budget handed to the grading callback (< 0 =
  /// unlimited). Deterministic guard -- see util::Budget.
  std::int64_t step_limit = -1;
  /// Per-submission wall-clock limit in ms (< 0 = none). Nondeterministic;
  /// off by default.
  std::int64_t time_limit_ms = -1;
  /// Fault injection. Rates are per-attempt probabilities in [0, 1],
  /// derived from splitmix64(fault_seed, submission, attempt).
  std::uint64_t fault_seed = 0;
  double transient_fault_rate = 0.0;  ///< worker "crash" before grading
  double stall_rate = 0.0;            ///< worker "stall" (times out, retried)
  /// Optional pre-grade lint stage (e.g. a l2l::lint rule pack bound to
  /// the assignment's format). Runs once per submission before the first
  /// grading attempt; any error-severity diagnostic rejects the
  /// submission (kRejected) without spending a grading attempt, and the
  /// rendered findings land in the outcome's diagnostic. Deterministic,
  /// so rejection is never retried -- and with the result cache enabled,
  /// never re-run for a byte-identical resubmission either (the digest
  /// pre-pass replays the verdict; see lint_rejected_cached).
  std::function<std::vector<util::Diagnostic>(const std::string&)> lint;
  /// Cross-drain outcome replay domain. Empty (default): identical
  /// submissions are deduplicated within one drain only. Non-empty: the
  /// caller asserts that this string identifies the grading callback +
  /// lint pack (e.g. "hw7.route-v1"), and finished outcomes are stored
  /// in the global result cache under engine id "mooc.queue" so a later
  /// drain with the same domain and options replays them without
  /// grading. Only consulted when fault injection is off (rates 0) --
  /// injected faults are keyed by submission index, so their outcomes
  /// are not content-addressable.
  std::string cache_domain;
};

enum class OutcomeKind {
  kGraded,        ///< callback returned a score
  kFailed,        ///< callback threw on every attempt (poison input)
  kBudget,        ///< per-submission budget exhausted (not retried)
  kExhausted,     ///< injected faults on every attempt; retries spent
  kRejected,      ///< pre-grade lint found errors; grading never ran
};

struct SubmissionOutcome {
  OutcomeKind kind = OutcomeKind::kGraded;
  double score = 0.0;          ///< valid when kind == kGraded
  int attempts = 0;            ///< attempts actually consumed
  int backoff_ticks = 0;       ///< total simulated backoff before success/giving up
  util::Status status;         ///< non-ok for every kind but kGraded
  std::string diagnostic;      ///< human-readable failure description
};

struct QueueStats {
  int graded = 0;
  int failed = 0;
  int budget_exceeded = 0;
  int retries_exhausted = 0;
  int lint_rejected = 0;
  int total_attempts = 0;
  int injected_transients = 0;
  int injected_stalls = 0;
  /// Submissions whose outcome was replayed from an identical earlier
  /// submission in the same drain (the sequential digest pre-pass).
  int deduped = 0;
  /// Submissions answered from the cross-drain result cache
  /// (QueueOptions::cache_domain).
  int cache_hits = 0;
  /// Identical resubmissions of a lint-rejected upload that were rejected
  /// again without re-running the lint pack.
  int lint_rejected_cached = 0;
};

struct QueueResult {
  std::vector<SubmissionOutcome> outcomes;  ///< in submission order
  QueueStats stats;
};

/// Injected-fault counts observed while grading one submission. Kept
/// separate from SubmissionOutcome so replaying an outcome (dedup, cache)
/// never replays the fault tallies that were not actually incurred.
struct FaultTally {
  int transients = 0;
  int stalls = 0;
};

/// The grading callback: score one submission under the given resource
/// guard. May throw (the queue isolates it); may honor the budget (the
/// queue checks it afterwards either way).
using GradeFn =
    std::function<double(const std::string& submission, const util::Budget&)>;

/// Drain `submissions` through `grade` across the worker pool. Outcome
/// order matches submission order; with wall-clock limits disabled the
/// result is bit-identical at any L2L_THREADS value.
///
/// With the result cache enabled (the default; L2L_CACHE=0 restores the
/// grade-everything path exactly), a sequential digest pre-pass
/// deduplicates the drain: byte-identical submissions are linted once,
/// and -- when fault injection is off -- graded once, with every
/// duplicate replaying the first occurrence's outcome. Because the
/// pre-pass is sequential, which submissions hit and which miss never
/// depends on the thread schedule.
QueueResult drain_queue(const std::vector<std::string>& submissions,
                        const GradeFn& grade, const QueueOptions& opt = {});

/// One submission through the full attempt loop: injected faults, budget
/// guard, exception barrier, bounded retries with saturating exponential
/// backoff. Fault draws are a pure hash of (opt.fault_seed, fault_key,
/// attempt) -- callers choose a schedule-independent key (drain_queue uses
/// the queue index, the GradingService the trace-wide submission id), so
/// the outcome never depends on which worker lane runs it. Shared by
/// drain_queue and the persistent GradingService (grading_service.hpp).
void grade_one_submission(std::uint64_t fault_key,
                          const std::string& submission, const GradeFn& grade,
                          const QueueOptions& opt, SubmissionOutcome& out,
                          FaultTally& tally);

/// Pre-grade lint for one submission: runs QueueOptions::lint (when set)
/// and, on any error-severity finding, fills `out` with the kRejected
/// verdict and returns true. Pure in the submission bytes, so verdicts
/// are always replayable. Shared by drain_queue and the GradingService.
bool lint_pre_grade_rejects(const std::string& submission,
                            const QueueOptions& opt, SubmissionOutcome& out);

/// The result-cache wire format for a finished outcome (engine ids
/// "mooc.queue" and "mooc.service" share it). deserialize returns false
/// on any truncated/corrupt/out-of-range payload -- a failed decode is a
/// cache miss, never a trusted outcome.
std::string serialize_outcome(const SubmissionOutcome& out);
bool deserialize_outcome(std::string_view bytes, SubmissionOutcome& out);

}  // namespace l2l::mooc
