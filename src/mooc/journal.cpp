#include "mooc/journal.hpp"

#include <filesystem>
#include <sstream>

#include "cache/cache.hpp"
#include "obs/metrics.hpp"

namespace l2l::mooc {
namespace {

// Frame sizes: 1 type byte + 4 length bytes + payload + 4 CRC bytes.
constexpr std::size_t kFrameOverhead = 9;
// Payload cap: a frame claiming more is corrupt, not big. The largest
// legitimate payload is one outcome (a diagnostic string tops out around
// the grade callback's message sizes), far under this.
constexpr std::size_t kMaxPayload = std::size_t{1} << 26;

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// Read one frame at `pos`. False on truncation, an unknown type byte, an
/// oversized length, or a CRC mismatch -- the caller treats every one of
/// those as "the trustworthy prefix ends here".
bool next_frame(std::string_view data, std::size_t& pos,
                JournalFrameType& type, std::string_view& payload) {
  if (pos + kFrameOverhead > data.size()) return false;
  const auto raw_type = static_cast<unsigned char>(data[pos]);
  if (raw_type < static_cast<unsigned>(JournalFrameType::kHeader) ||
      raw_type > static_cast<unsigned>(JournalFrameType::kRunEnd))
    return false;
  const std::uint32_t len = get_u32le(data.data() + pos + 1);
  if (len > kMaxPayload || pos + kFrameOverhead + len > data.size())
    return false;
  const std::string_view checked(data.data() + pos, 5 + len);
  const std::uint32_t want = get_u32le(data.data() + pos + 5 + len);
  if (cache::crc32(checked) != want) return false;
  type = static_cast<JournalFrameType>(raw_type);
  payload = data.substr(pos + 5, len);
  pos += kFrameOverhead + len;
  return true;
}

// ---- payload codecs ------------------------------------------------------
// Built from the cache layer's length-prefixed records; every decode
// range-checks enums and requires reader.complete(), so a syntactically
// valid frame with semantic garbage is still rejected.

void append_u64(std::string& out, std::uint64_t v) {
  cache::append_i64(out, static_cast<std::int64_t>(v));
}

bool next_u64(cache::RecordReader& r, std::uint64_t& v) {
  std::int64_t s = 0;
  if (!r.next_i64(s)) return false;
  v = static_cast<std::uint64_t>(s);
  return true;
}

bool next_enum(cache::RecordReader& r, std::int64_t max, std::uint8_t& v) {
  std::int64_t s = 0;
  if (!r.next_i64(s) || s < 0 || s > max) return false;
  v = static_cast<std::uint8_t>(s);
  return true;
}

std::string encode_header(const JournalHeader& h) {
  std::string p;
  append_u64(p, h.version);
  append_u64(p, h.trace_digest.hi);
  append_u64(p, h.trace_digest.lo);
  append_u64(p, h.config_digest.hi);
  append_u64(p, h.config_digest.lo);
  append_u64(p, h.num_events);
  append_u64(p, h.shard);
  append_u64(p, h.num_shards);
  return p;
}

bool decode_header(std::string_view payload, JournalHeader& h) {
  cache::RecordReader r(payload);
  std::uint64_t shard = 0, num_shards = 0;
  if (!next_u64(r, h.version) || !next_u64(r, h.trace_digest.hi) ||
      !next_u64(r, h.trace_digest.lo) || !next_u64(r, h.config_digest.hi) ||
      !next_u64(r, h.config_digest.lo) || !next_u64(r, h.num_events) ||
      !next_u64(r, shard) || !next_u64(r, num_shards) || !r.complete())
    return false;
  h.shard = static_cast<std::uint32_t>(shard);
  h.num_shards = static_cast<std::uint32_t>(num_shards);
  return true;
}

constexpr std::int64_t kMaxDisposition =
    static_cast<std::int64_t>(Disposition::kShed);

bool decode_rejected(std::string_view payload, JournaledRejection& out) {
  cache::RecordReader r(payload);
  std::uint8_t d = 0;
  if (!next_u64(r, out.id) || !next_enum(r, kMaxDisposition, d) ||
      !next_enum(r, 1, out.lane) || !r.complete())
    return false;
  out.disposition = static_cast<Disposition>(d);
  return out.disposition == Disposition::kRejectedQuota ||
         out.disposition == Disposition::kRejectedFull;
}

bool decode_shed(std::string_view payload, JournaledShed& out) {
  cache::RecordReader r(payload);
  return next_u64(r, out.id) && next_enum(r, 1, out.lane) && r.complete();
}

bool decode_replayed(std::string_view payload, JournaledReplay& out) {
  cache::RecordReader r(payload);
  std::uint8_t src = 0, d = 0;
  std::string_view body;
  if (!next_u64(r, out.id) ||
      !next_enum(r, static_cast<std::int64_t>(ReplaySource::kCache), src) ||
      !next_enum(r, kMaxDisposition, d) || !next_enum(r, 1, out.lane) ||
      !r.next(body) || !r.complete())
    return false;
  out.source = static_cast<ReplaySource>(src);
  out.disposition = static_cast<Disposition>(d);
  return deserialize_outcome(body, out.outcome);
}

bool decode_outcome(std::string_view payload, JournaledOutcome& out) {
  cache::RecordReader r(payload);
  std::uint8_t d = 0, degraded = 0, probe = 0;
  std::string_view body;
  std::int64_t transients = 0, stalls = 0;
  if (!next_u64(r, out.id) || !next_enum(r, kMaxDisposition, d) ||
      !next_enum(r, 1, out.lane) || !next_enum(r, 1, degraded) ||
      !next_enum(r, 1, probe) || !r.next(body) || !r.next_i64(transients) ||
      !r.next_i64(stalls) || !r.complete())
    return false;
  out.disposition = static_cast<Disposition>(d);
  out.degraded = degraded != 0;
  out.probe = probe != 0;
  out.tally.transients = static_cast<int>(transients);
  out.tally.stalls = static_cast<int>(stalls);
  return deserialize_outcome(body, out.outcome);
}

bool decode_breaker(std::string_view payload, JournaledBreaker& out) {
  cache::RecordReader r(payload);
  std::uint64_t course = 0;
  std::uint8_t action = 0;
  if (!next_u64(r, course) ||
      !next_enum(r, static_cast<std::int64_t>(BreakerAction::kRecover),
                 action) ||
      !r.complete())
    return false;
  out.course = static_cast<std::uint32_t>(course);
  out.action = static_cast<BreakerAction>(action);
  return true;
}

bool decode_tick_mark(std::string_view payload, std::uint32_t& tick,
                      std::uint64_t* check) {
  cache::RecordReader r(payload);
  std::uint64_t t = 0;
  if (!next_u64(r, t)) return false;
  if (check != nullptr && !next_u64(r, *check)) return false;
  if (!r.complete()) return false;
  tick = static_cast<std::uint32_t>(t);
  return true;
}

/// The cache tier's write discipline: full bytes to "<path>.tmp", then
/// one atomic rename. Readers (and a second recovery after a crash mid-
/// recovery) never see a partial file.
util::Status write_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return util::Status::internal("journal: cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return util::Status::internal("journal: short write to " + tmp);
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Status::internal("journal: cannot rename into " + path);
  }
  return util::Status::okay();
}

JournalScan scan_impl(const std::string& path, std::string* raw_out) {
  JournalScan out;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return out;  // fresh start
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.status = util::Status::internal("journal: cannot read " + path);
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();
  if (raw_out != nullptr) *raw_out = data;
  const auto size = static_cast<std::int64_t>(data.size());

  std::size_t pos = 0;
  JournalFrameType type{};
  std::string_view payload;
  if (!next_frame(data, pos, type, payload) ||
      type != JournalFrameType::kHeader || !decode_header(payload, out.header) ||
      out.header.version != kJournalFormatVersion) {
    // No trustworthy header: the whole file is a torn tail and the drain
    // starts from scratch.
    out.torn_bytes = size;
    return out;
  }
  out.found = true;
  out.valid_bytes = static_cast<std::int64_t>(pos);

  JournalTick cur;
  bool in_tick = false;
  while (pos < data.size() && !out.run_complete) {
    if (!next_frame(data, pos, type, payload)) break;
    bool ok = true;
    switch (type) {
      case JournalFrameType::kHeader:
        ok = false;  // a second header is corruption, not a format
        break;
      case JournalFrameType::kTickBegin:
        ok = !in_tick && decode_tick_mark(payload, cur.tick, nullptr);
        if (ok) {
          in_tick = true;
          cur.rejections.clear();
          cur.sheds.clear();
          cur.replays.clear();
          cur.outcomes.clear();
          cur.breakers.clear();
          cur.stats_check = 0;
        }
        break;
      case JournalFrameType::kRejected:
        ok = in_tick && decode_rejected(payload, cur.rejections.emplace_back());
        break;
      case JournalFrameType::kShed:
        ok = in_tick && decode_shed(payload, cur.sheds.emplace_back());
        break;
      case JournalFrameType::kReplayed:
        ok = in_tick && decode_replayed(payload, cur.replays.emplace_back());
        break;
      case JournalFrameType::kOutcome:
        ok = in_tick && decode_outcome(payload, cur.outcomes.emplace_back());
        break;
      case JournalFrameType::kBreaker:
        ok = in_tick && decode_breaker(payload, cur.breakers.emplace_back());
        break;
      case JournalFrameType::kTickEnd: {
        std::uint32_t tick = 0;
        ok = in_tick && decode_tick_mark(payload, tick, &cur.stats_check) &&
             tick == cur.tick;
        if (ok) {
          out.ticks.push_back(cur);
          in_tick = false;
          out.valid_bytes = static_cast<std::int64_t>(pos);
        }
        break;
      }
      case JournalFrameType::kRunEnd: {
        std::uint64_t check = 0;
        cache::RecordReader r(payload);
        // The closing checksum must agree with the last tick's -- one
        // more way a spliced or fabricated tail fails to parse.
        ok = !in_tick && next_u64(r, check) && r.complete() &&
             (out.ticks.empty() || out.ticks.back().stats_check == check);
        if (ok) {
          out.run_complete = true;
          out.valid_bytes = static_cast<std::int64_t>(pos);
        }
        break;
      }
    }
    if (!ok) break;
  }
  out.torn_bytes = size - out.valid_bytes;
  // A header with nothing after it carries no decisions; treat the lone
  // header as part of the valid prefix (found stays true, zero ticks).
  return out;
}

}  // namespace

JournalScan scan_journal(const std::string& path) {
  return scan_impl(path, nullptr);
}

JournalScan recover_journal(const std::string& path) {
  std::string raw;
  JournalScan scan = scan_impl(path, &raw);
  obs::count("journal.recoveries");
  if (!scan.status.ok() || scan.torn_bytes == 0) return scan;

  // Quarantine the torn tail next to the journal, then rewrite the
  // frame-valid prefix -- both atomically, so a crash mid-recovery
  // leaves either the old journal or the repaired pair, never a mix.
  const auto valid = static_cast<std::size_t>(scan.valid_bytes);
  const std::string_view tail(raw.data() + valid, raw.size() - valid);
  if (auto st = write_atomic(path + ".quarantine", tail); !st.ok()) {
    scan.status = st;
    return scan;
  }
  if (scan.found) {
    if (auto st =
            write_atomic(path, std::string_view(raw.data(), valid));
        !st.ok()) {
      scan.status = st;
      return scan;
    }
  } else {
    // Nothing trustworthy at all: drop the original so the writer
    // starts a fresh journal.
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  obs::count("journal.quarantined_tails");
  obs::count("journal.quarantined_bytes", scan.torn_bytes);
  return scan;
}

// ---- JournalWriter -------------------------------------------------------

util::Status JournalWriter::open(const std::string& path,
                                 const JournalHeader& header, bool append) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  out_.open(path, append ? std::ios::binary | std::ios::app
                         : std::ios::binary | std::ios::trunc);
  if (!out_) return util::Status::internal("journal: cannot open " + path);
  if (append) return util::Status::okay();
  frame(JournalFrameType::kHeader, encode_header(header));
  return flush();
}

void JournalWriter::frame(JournalFrameType type, std::string_view payload) {
  const std::size_t start = pending_.size();
  pending_.push_back(static_cast<char>(type));
  put_u32le(pending_, static_cast<std::uint32_t>(payload.size()));
  pending_.append(payload.data(), payload.size());
  const std::string_view checked(pending_.data() + start,
                                 pending_.size() - start);
  put_u32le(pending_, cache::crc32(checked));
  ++frames_;
}

util::Status JournalWriter::flush() {
  if (!pending_.empty()) {
    out_.write(pending_.data(),
               static_cast<std::streamsize>(pending_.size()));
    out_.flush();
    if (!out_.good())
      return util::Status::internal("journal: write failed (disk full?)");
    bytes_written_ += static_cast<std::int64_t>(pending_.size());
    obs::count("journal.bytes_appended",
               static_cast<std::int64_t>(pending_.size()));
    obs::count("journal.frames_appended", frames_);
    obs::count("journal.flushes");
    pending_.clear();
    frames_ = 0;
  }
  return util::Status::okay();
}

void JournalWriter::tick_begin(std::uint32_t tick) {
  std::string p;
  append_u64(p, tick);
  frame(JournalFrameType::kTickBegin, p);
}

void JournalWriter::rejected(std::uint64_t id, Disposition d,
                             std::uint8_t lane) {
  std::string p;
  append_u64(p, id);
  append_u64(p, static_cast<std::uint64_t>(d));
  append_u64(p, lane);
  frame(JournalFrameType::kRejected, p);
}

void JournalWriter::shed(std::uint64_t id, std::uint8_t lane) {
  std::string p;
  append_u64(p, id);
  append_u64(p, lane);
  frame(JournalFrameType::kShed, p);
}

void JournalWriter::replayed(std::uint64_t id, ReplaySource source,
                             Disposition d, std::uint8_t lane,
                             const SubmissionOutcome& out) {
  std::string p;
  append_u64(p, id);
  append_u64(p, static_cast<std::uint64_t>(source));
  append_u64(p, static_cast<std::uint64_t>(d));
  append_u64(p, lane);
  cache::append_record(p, serialize_outcome(out));
  frame(JournalFrameType::kReplayed, p);
}

void JournalWriter::outcome(std::uint64_t id, Disposition d,
                            std::uint8_t lane, bool degraded, bool probe,
                            const SubmissionOutcome& out,
                            const FaultTally& tally) {
  std::string p;
  append_u64(p, id);
  append_u64(p, static_cast<std::uint64_t>(d));
  append_u64(p, lane);
  append_u64(p, degraded ? 1 : 0);
  append_u64(p, probe ? 1 : 0);
  cache::append_record(p, serialize_outcome(out));
  cache::append_i64(p, tally.transients);
  cache::append_i64(p, tally.stalls);
  frame(JournalFrameType::kOutcome, p);
}

void JournalWriter::breaker(std::uint32_t course, BreakerAction action) {
  std::string p;
  append_u64(p, course);
  append_u64(p, static_cast<std::uint64_t>(action));
  frame(JournalFrameType::kBreaker, p);
}

util::Status JournalWriter::tick_end(std::uint32_t tick,
                                     std::uint64_t stats_check) {
  std::string p;
  append_u64(p, tick);
  append_u64(p, stats_check);
  frame(JournalFrameType::kTickEnd, p);
  return flush();
}

util::Status JournalWriter::run_end(std::uint64_t stats_check) {
  std::string p;
  append_u64(p, stats_check);
  frame(JournalFrameType::kRunEnd, p);
  return flush();
}

// ---- digests -------------------------------------------------------------

cache::Digest128 trace_digest(const SubmissionTrace& trace) {
  cache::Hasher h;
  h.i32(trace.num_courses);
  h.u64(trace.ticks);
  h.u64(trace.bodies.size());
  for (const auto& b : trace.bodies) h.str(b);
  h.u64(trace.events.size());
  for (const auto& e : trace.events)
    h.u64(e.course)
        .u64(e.student)
        .u64(e.body)
        .u64(e.arrival_tick)
        .u64(e.deadline_tick)
        .u64(e.lane);
  return h.finish();
}

cache::Digest128 service_config_digest(const ServiceOptions& opt) {
  cache::Hasher h;
  h.u64(kJournalFormatVersion)
      .i32(opt.queue_cap)
      .i32(opt.admit_quota)
      .i32(opt.service_rate)
      .i32(static_cast<std::int32_t>(opt.shed_policy))
      .i32(opt.breaker_threshold)
      .i32(opt.breaker_probe_interval)
      .u64(opt.storm_begin_tick)
      .u64(opt.storm_end_tick)
      .f64(opt.storm_transient_rate)
      .f64(opt.storm_stall_rate)
      .i32(opt.queue.max_retries)
      .i32(opt.queue.backoff_base_ticks)
      .i64(opt.queue.step_limit)
      .i64(opt.queue.time_limit_ms)
      .u64(opt.queue.fault_seed)
      .f64(opt.queue.transient_fault_rate)
      .f64(opt.queue.stall_rate)
      .boolean(static_cast<bool>(opt.queue.lint))
      .str(opt.queue.cache_domain)
      .boolean(cache::enabled());
  return h.finish();
}

std::uint64_t stats_checksum(const ServiceStats& s) {
  cache::Hasher h;
  h.i64(s.ticks)
      .i64(s.arrivals)
      .i64(s.admitted)
      .i64(s.rejected_quota)
      .i64(s.rejected_full)
      .i64(s.shed)
      .i64(s.graded)
      .i64(s.degraded)
      .i64(s.failed)
      .i64(s.budget_exceeded)
      .i64(s.retries_exhausted)
      .i64(s.lint_rejected)
      .i64(s.dedup_hits)
      .i64(s.cache_hits)
      .i64(s.breaker_trips)
      .i64(s.breaker_probes)
      .i64(s.breaker_recoveries)
      .i64(s.total_attempts)
      .i64(s.injected_transients)
      .i64(s.injected_stalls)
      .i64(s.peak_depth_first)
      .i64(s.peak_depth_resubmit);
  return h.finish().lo;
}

}  // namespace l2l::mooc
