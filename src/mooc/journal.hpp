#pragma once
// The grading service's crash-recovery journal: an append-only,
// CRC-framed, versioned binary log of every decision the deterministic
// tick loop makes -- admissions, sheds, dedup/cache replays, grade
// outcomes, breaker transitions, tick boundaries. The design leans on
// the service's determinism contract instead of fighting it:
//
//   * The loop's CONTROL FLOW (admission, shedding, scheduling, dedup,
//     breaker arithmetic) is a pure function of (trace, options), so
//     recovery re-derives it by re-running the loop. The journal's job
//     is the two things a fresh process cannot re-derive: the grade
//     callback's outcomes (substituted positionally into each replayed
//     tick's batch) and the warm cross-run cache's hit/miss pattern.
//   * Everything re-derived is still VERIFIED against the journal frame
//     by frame -- ids, dispositions, breaker transitions, and a running
//     ServiceStats checksum at every tick boundary. A mismatch is a
//     hard kInternal error, never a silent "best effort": a journal is
//     replayed exactly or not at all.
//   * Frames are flushed once per tick, so the on-disk journal is
//     always a prefix of complete ticks plus (after a crash) a torn
//     tail. Recovery scans to the last frame-valid kTickEnd, quarantines
//     the tail bytes next to the journal (atomic tmp+rename, the cache
//     tier's discipline), rewrites the valid prefix the same way, and
//     replays -- so a process killed at ANY byte offset restarts into
//     the exact pre-crash state: byte-identical outcomes, obs counters,
//     and accounting at any L2L_THREADS.
//
// Frame layout (all integers little-endian):
//
//   [u8 type][u32 payload_len][payload][u32 crc32(type|len|payload)]
//
// with payloads built from the cache layer's length-prefixed records
// (cache::append_record / RecordReader), and SubmissionOutcome bodies
// reusing the result-cache wire format (serialize_outcome). CRC-32 is
// cache::crc32. A header frame opens the file carrying the format
// version plus the trace/config digests and the shard coordinates; a
// recovery against a journal whose digests do not match the live run is
// refused (kInvalidArgument) -- replaying someone else's decisions is
// worse than regrading.
//
// The journal.* obs counters describe the journal I/O THIS process
// performed (frames appended, ticks replayed, tails quarantined); they
// are the one metric family that legitimately differs between an
// uninterrupted run and a crash+recovery pair, and the byte-identity
// tests filter them accordingly (see tests/journal_test.cpp).

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "cache/digest.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_queue.hpp"
#include "mooc/grading_service.hpp"
#include "util/status.hpp"

namespace l2l::mooc {

/// Bump on any frame/payload layout change; recovery refuses a version
/// it does not speak.
inline constexpr std::uint64_t kJournalFormatVersion = 1;

enum class JournalFrameType : std::uint8_t {
  kHeader = 1,     ///< version, digests, shard coordinates
  kTickBegin = 2,  ///< tick number
  kRejected = 3,   ///< admission refusal (quota / queue-full)
  kShed = 4,       ///< queue eviction by the shed policy
  kReplayed = 5,   ///< dedup-memo or cross-run-cache replay
  kOutcome = 6,    ///< one graded batch slot (outcome + fault tally)
  kBreaker = 7,    ///< circuit-breaker transition
  kTickEnd = 8,    ///< tick number + running ServiceStats checksum
  kRunEnd = 9,     ///< final ServiceStats checksum; the drain finished
};

/// Which sequential replay path answered a scheduled submission. The
/// memo sources are re-derived during recovery and only verified; kCache
/// is substituted from the journal (a fresh process's cache is cold, and
/// consulting it live would fork history from the original run's).
enum class ReplaySource : std::uint8_t {
  kLintMemo = 0,      ///< in-run lint-rejection memo
  kDegradedMemo = 1,  ///< breaker-open lint-clean memo
  kFullMemo = 2,      ///< in-run full-outcome memo
  kCache = 3,         ///< cross-run result cache (cache_domain)
};

enum class BreakerAction : std::uint8_t {
  kTrip = 0,       ///< closed -> open (threshold consecutive fault fails)
  kProbeFail = 1,  ///< half-open probe failed; probe schedule restarts
  kRecover = 2,    ///< half-open probe passed; open -> closed
};

struct JournalHeader {
  std::uint64_t version = kJournalFormatVersion;
  cache::Digest128 trace_digest;   ///< mooc::trace_digest of the input
  cache::Digest128 config_digest;  ///< mooc::service_config_digest
  std::uint64_t num_events = 0;
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 1;

  bool operator==(const JournalHeader&) const = default;
};

struct JournaledRejection {
  std::uint64_t id = 0;
  Disposition disposition = Disposition::kRejectedQuota;
  std::uint8_t lane = 0;
};

struct JournaledShed {
  std::uint64_t id = 0;
  std::uint8_t lane = 0;
};

struct JournaledReplay {
  std::uint64_t id = 0;
  ReplaySource source = ReplaySource::kFullMemo;
  Disposition disposition = Disposition::kGraded;
  std::uint8_t lane = 0;
  /// The replayed outcome; substituted during recovery for kCache,
  /// audit-only for the re-derivable memo sources.
  SubmissionOutcome outcome;
};

struct JournaledOutcome {
  std::uint64_t id = 0;
  Disposition disposition = Disposition::kGraded;
  std::uint8_t lane = 0;
  bool degraded = false;
  bool probe = false;
  SubmissionOutcome outcome;
  FaultTally tally;
};

struct JournaledBreaker {
  std::uint32_t course = 0;
  BreakerAction action = BreakerAction::kTrip;
};

/// One complete tick's frames, decoded. Within each vector the original
/// append order is preserved (arrival order for rejections/sheds,
/// schedule order for replays, fold order for outcomes/breakers).
struct JournalTick {
  std::uint32_t tick = 0;
  std::vector<JournaledRejection> rejections;
  std::vector<JournaledShed> sheds;
  std::vector<JournaledReplay> replays;
  std::vector<JournaledOutcome> outcomes;
  std::vector<JournaledBreaker> breakers;
  std::uint64_t stats_check = 0;  ///< from the closing kTickEnd frame
};

struct JournalScan {
  /// A frame-valid header was found. False for a missing file AND for a
  /// file whose very first frame is corrupt -- in both cases recovery
  /// starts the drain from scratch (quarantining the bytes, if any).
  bool found = false;
  JournalHeader header;
  std::vector<JournalTick> ticks;  ///< complete ticks only, in order
  bool run_complete = false;       ///< a valid kRunEnd closed the file
  std::int64_t valid_bytes = 0;    ///< prefix ending at the last complete tick
  std::int64_t torn_bytes = 0;     ///< trailing bytes past that prefix
  /// Non-ok only for environment-level failures (unreadable file with
  /// the path present, quarantine write failure). Corruption is NOT an
  /// error -- it is the expected post-crash state, reported via
  /// torn_bytes and a shorter ticks vector.
  util::Status status;
};

/// Decode as much of the journal as can be trusted. Read-only: the file
/// is not modified, whatever its state.
JournalScan scan_journal(const std::string& path);

/// scan_journal + quarantine: any torn tail is moved to
/// "<path>.quarantine" and the journal is rewritten to its frame-valid
/// prefix, both via tmp+atomic-rename so a crash DURING recovery still
/// leaves a consistent pair. Counts journal.recoveries /
/// journal.quarantined_tails / journal.quarantined_bytes.
JournalScan recover_journal(const std::string& path);

/// Append-side of the journal. Frames accumulate in memory and hit the
/// file once per tick (tick_end flushes), so a kill leaves at most one
/// torn tick -- which recovery drops and regrades. Not thread-safe; the
/// service writes only from its sequential program points.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Open fresh (truncate + header frame, parent dirs created) or for
  /// append after a recover_journal pass (the header is already on
  /// disk and is NOT rewritten).
  util::Status open(const std::string& path, const JournalHeader& header,
                    bool append);

  void tick_begin(std::uint32_t tick);
  void rejected(std::uint64_t id, Disposition d, std::uint8_t lane);
  void shed(std::uint64_t id, std::uint8_t lane);
  void replayed(std::uint64_t id, ReplaySource source, Disposition d,
                std::uint8_t lane, const SubmissionOutcome& out);
  void outcome(std::uint64_t id, Disposition d, std::uint8_t lane,
               bool degraded, bool probe, const SubmissionOutcome& out,
               const FaultTally& tally);
  void breaker(std::uint32_t course, BreakerAction action);

  /// Close the tick and flush every pending frame to disk. A non-ok
  /// status (disk full, file gone) aborts the run -- a journaled service
  /// that cannot journal must not keep grading.
  util::Status tick_end(std::uint32_t tick, std::uint64_t stats_check);
  /// The drain finished; append the closing frame and flush.
  util::Status run_end(std::uint64_t stats_check);

  std::int64_t bytes_written() const { return bytes_written_; }

 private:
  void frame(JournalFrameType type, std::string_view payload);
  util::Status flush();

  std::ofstream out_;
  std::string pending_;
  std::int64_t bytes_written_ = 0;
  std::int64_t frames_ = 0;
};

/// Canonical digest of a submission trace (courses, bodies, events) --
/// the journal header's "this log belongs to that input" pin.
cache::Digest128 trace_digest(const SubmissionTrace& trace);

/// Canonical digest of every ServiceOptions knob that feeds a decision
/// the journal records, INCLUDING the process-wide cache kill switch
/// (cache::enabled() changes the dedup paths) and the storm window.
/// Excludes record_outcomes (presentation only) and the shard
/// coordinates (header fields of their own).
cache::Digest128 service_config_digest(const ServiceOptions& opt);

/// Order-pinned checksum over every ServiceStats field -- the per-tick
/// "never trusted" guard: replay recomputes it and any drift from the
/// journaled value aborts recovery with kInternal.
std::uint64_t stats_checksum(const ServiceStats& s);

}  // namespace l2l::mooc
