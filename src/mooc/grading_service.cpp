#include "mooc/grading_service.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "cache/cache.hpp"
#include "mooc/journal.hpp"
#include "mooc/shard_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace l2l::mooc {
namespace {

constexpr std::uint64_t kServiceFormatVersion = 1;

/// One queued submission. `id` is the trace-wide submission id -- it keys
/// the fault draws (so outcomes are schedule-independent), breaks every
/// EDF tie, and orders "newest" for the newest-first shed policy.
struct Entry {
  std::uint64_t id = 0;
  std::uint32_t body = 0;
  std::uint32_t arrival = 0;
  std::uint32_t deadline = 0;
  std::uint8_t lane = 0;
};

/// One priority lane of one course: an EDF index (deadline, id) plus the
/// id-ordered entry store. Both are ordered containers, so pops and
/// evictions are total-order decisions -- no hashing, no schedule input.
struct LaneQueue {
  std::set<std::pair<std::uint64_t, std::uint64_t>> edf;
  std::map<std::uint64_t, Entry> by_id;

  std::size_t size() const { return by_id.size(); }

  void insert(const Entry& e) {
    edf.emplace(e.deadline, e.id);
    by_id.emplace(e.id, e);
  }

  Entry take(std::uint64_t id) {
    auto it = by_id.find(id);
    Entry e = it->second;
    by_id.erase(it);
    edf.erase({e.deadline, e.id});
    return e;
  }

  /// Earliest deadline, ties to the smallest submission id.
  Entry pop_edf() { return take(edf.begin()->second); }

  /// The shed victim under `policy` (never called on an empty lane).
  Entry evict(ShedPolicy policy) {
    if (policy == ShedPolicy::kNewestFirst)
      return take(by_id.rbegin()->first);
    return pop_edf();  // oldest deadline
  }
};

struct CourseState {
  LaneQueue lanes[2];  // 0 = first submits, 1 = resubmits
  int admitted_this_tick = 0;
  // Circuit breaker.
  bool open = false;
  int consecutive = 0;
  std::uint64_t opened_tick = 0;

  std::size_t depth() const { return lanes[0].size() + lanes[1].size(); }

  /// Service order: the first-submit lane outranks resubmits.
  Entry pop() {
    return lanes[0].size() ? lanes[0].pop_edf() : lanes[1].pop_edf();
  }

  /// Shed order: resubmits go first; a first submit is only evicted when
  /// the resubmit lane is already empty.
  Entry evict(ShedPolicy policy) {
    return lanes[1].size() ? lanes[1].evict(policy) : lanes[0].evict(policy);
  }
};

/// Full-outcome dedup/replay is sound only when this tick's effective
/// options are fault-free and wall-clock-free: injected faults are keyed
/// by submission id, so identical bodies legitimately diverge under them.
bool tick_is_sound(const QueueOptions& q) {
  return q.transient_fault_rate == 0.0 && q.stall_rate == 0.0 &&
         q.time_limit_ms < 0;
}

Disposition to_disposition(OutcomeKind kind, bool degraded) {
  if (kind == OutcomeKind::kRejected) return Disposition::kLintRejected;
  if (degraded) return Disposition::kDegraded;
  switch (kind) {
    case OutcomeKind::kGraded: return Disposition::kGraded;
    case OutcomeKind::kFailed: return Disposition::kFailed;
    case OutcomeKind::kBudget: return Disposition::kBudget;
    case OutcomeKind::kExhausted: return Disposition::kExhausted;
    case OutcomeKind::kRejected: break;  // handled above
  }
  return Disposition::kGraded;
}

}  // namespace

bool parse_shed_policy(const std::string& text, ShedPolicy& out) {
  if (text == "oldest-deadline") {
    out = ShedPolicy::kOldestDeadline;
    return true;
  }
  if (text == "newest-first") {
    out = ShedPolicy::kNewestFirst;
    return true;
  }
  if (text == "none") {
    out = ShedPolicy::kNone;
    return true;
  }
  return false;
}

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kOldestDeadline: return "oldest-deadline";
    case ShedPolicy::kNewestFirst: return "newest-first";
    case ShedPolicy::kNone: return "none";
  }
  return "?";
}

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::kGraded: return "graded";
    case Disposition::kFailed: return "failed";
    case Disposition::kBudget: return "budget";
    case Disposition::kExhausted: return "exhausted";
    case Disposition::kLintRejected: return "lint-rejected";
    case Disposition::kDegraded: return "degraded";
    case Disposition::kRejectedQuota: return "rejected-quota";
    case Disposition::kRejectedFull: return "rejected-full";
    case Disposition::kShed: return "shed";
  }
  return "?";
}

std::int64_t tick_latency_percentile_us(const ServiceResult& res, double pct) {
  if (res.tick_duration_us.empty()) return 0;
  std::vector<std::int64_t> sorted = res.tick_duration_us;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

GradingService::GradingService(ServiceOptions opt, GradeFn grade)
    : opt_(std::move(opt)), grade_(std::move(grade)) {
  opt_.queue_cap = std::max(opt_.queue_cap, 1);
  opt_.admit_quota = std::max(opt_.admit_quota, 0);
  opt_.service_rate = std::max(opt_.service_rate, 1);
  opt_.breaker_threshold = std::max(opt_.breaker_threshold, 1);
  opt_.breaker_probe_interval = std::max(opt_.breaker_probe_interval, 1);
  opt_.num_shards = std::max(opt_.num_shards, 1);
  opt_.shard = std::clamp(opt_.shard, 0, opt_.num_shards - 1);
}

ServiceResult GradingService::run(const SubmissionTrace& trace) const {
  util::Status status;
  return run(trace, RunRequest{}, status);
}

ServiceResult GradingService::run(const SubmissionTrace& trace,
                                  const RunRequest& req,
                                  util::Status& status) const {
  status = util::Status::okay();
  obs::ScopedSpan run_span("mooc.service.run", "mooc");
  ServiceResult res;
  auto& stats = res.stats;
  const auto& events = trace.events;
  const int num_courses = std::max(trace.num_courses, 1);
  if (opt_.record_outcomes) res.outcomes.resize(events.size());

  // Sharding: this process owns only the courses the ring assigns to
  // opt_.shard. Foreign events are skipped before ANY accounting so the
  // trace-wide submission ids (and the fault draws they key) line up
  // with the single-process run.
  const bool sharded = opt_.num_shards > 1;
  const ShardMap shard_map(opt_.num_shards);
  std::vector<bool> owned(static_cast<std::size_t>(num_courses), true);
  if (sharded)
    for (int c = 0; c < num_courses; ++c)
      owned[static_cast<std::size_t>(c)] =
          shard_map.shard_for_course(static_cast<std::uint32_t>(c)) ==
          opt_.shard;

  // Journal setup: on a fresh run open/truncate and write the header; on
  // recovery quarantine the torn tail, verify the header pins THIS
  // (trace, options, shard) triple, take the complete ticks for replay,
  // and reopen for append so the continued drain extends the same log.
  const bool journaling = !req.journal_path.empty();
  JournalWriter writer;
  std::vector<JournalTick> replay_ticks;
  bool journal_run_complete = false;
  if (journaling) {
    JournalHeader header;
    header.trace_digest = trace_digest(trace);
    header.config_digest = service_config_digest(opt_);
    header.num_events = events.size();
    header.shard = static_cast<std::uint32_t>(opt_.shard);
    header.num_shards = static_cast<std::uint32_t>(opt_.num_shards);
    bool append = false;
    if (req.recover) {
      JournalScan scan = recover_journal(req.journal_path);
      if (!scan.status.ok()) {
        status = scan.status;
        return res;
      }
      if (scan.found) {
        if (!(scan.header == header)) {
          status = util::Status::invalid(
              "journal header mismatch: " + req.journal_path +
              " was written for a different trace, config, or shard");
          return res;
        }
        replay_ticks = std::move(scan.ticks);
        journal_run_complete = scan.run_complete;
        append = true;
      }
    }
    if (util::Status st = writer.open(req.journal_path, header, append);
        !st.ok()) {
      status = st;
      return res;
    }
  }
  std::size_t replay_idx = 0;

  // The per-tick effective options: the storm window swaps the fault
  // rates wholesale, everything else rides along unchanged.
  const QueueOptions& base = opt_.queue;
  QueueOptions storm = opt_.queue;
  storm.transient_fault_rate = opt_.storm_transient_rate;
  storm.stall_rate = opt_.storm_stall_rate;

  // Dedup/replay infrastructure, all consulted and updated at sequential
  // program points only. Off entirely under the cache kill switch, which
  // restores the grade-everything service exactly.
  const bool use_cache = cache::enabled();
  std::vector<cache::Digest128> body_digests;
  if (use_cache) {
    body_digests.reserve(trace.bodies.size());
    for (const auto& b : trace.bodies)
      body_digests.push_back(cache::digest_bytes(b));
  }
  cache::Digest128 config{};
  const bool cross_run = use_cache && !opt_.queue.cache_domain.empty();
  if (cross_run) {
    cache::Hasher h;
    h.u64(kServiceFormatVersion)
        .str(opt_.queue.cache_domain)
        .i32(opt_.queue.max_retries)
        .i32(opt_.queue.backoff_base_ticks)
        .i64(opt_.queue.step_limit)
        .u64(opt_.queue.fault_seed)
        .boolean(static_cast<bool>(opt_.queue.lint));
    config = h.finish();
  }
  // Lint verdicts are pure in the submission bytes, so they replay on any
  // tick; full outcomes replay only across sound ticks.
  std::map<cache::Digest128, SubmissionOutcome> lint_rejected_memo;
  std::set<cache::Digest128> lint_clean;
  std::map<cache::Digest128, SubmissionOutcome> full_done;

  auto record = [&](std::uint64_t id, Disposition d, std::uint8_t lane,
                    bool replayed, std::uint32_t tick,
                    const SubmissionOutcome* out) {
    if (!opt_.record_outcomes) return;
    auto& slot = res.outcomes[static_cast<std::size_t>(id)];
    slot.disposition = d;
    slot.lane = lane;
    slot.replayed = replayed;
    slot.final_tick = tick;
    if (out != nullptr) {
      slot.attempts = static_cast<std::uint16_t>(
          std::clamp(out->attempts, 0, 0xffff));
      slot.status = out->status.code;
      slot.backoff_ticks = out->backoff_ticks;
      slot.score = out->score;
      slot.diagnostic = out->diagnostic;
    }
  };

  auto count_serviced = [&](Disposition d, const SubmissionOutcome& out,
                            std::uint32_t tick, std::uint32_t arrival) {
    ++stats.admitted;
    stats.total_attempts += out.attempts;
    switch (d) {
      case Disposition::kGraded: ++stats.graded; break;
      case Disposition::kDegraded: ++stats.degraded; break;
      case Disposition::kFailed: ++stats.failed; break;
      case Disposition::kBudget: ++stats.budget_exceeded; break;
      case Disposition::kExhausted: ++stats.retries_exhausted; break;
      case Disposition::kLintRejected: ++stats.lint_rejected; break;
      default: break;  // rejected/shed never reach here
    }
    obs::observe("mooc.service.wait_ticks",
                 static_cast<std::int64_t>(tick) - arrival);
  };

  std::vector<CourseState> courses(static_cast<std::size_t>(num_courses));
  struct BatchItem {
    Entry e;
    int course = 0;
    bool degraded = false;
    bool probe = false;
  };
  std::vector<BatchItem> batch;
  std::vector<SubmissionOutcome> bouts;
  std::vector<FaultTally> btallies;
  // Per-slot flags the replay-mode workers set when the re-run lint
  // verdict disagrees with the journaled outcome (folded into one
  // divergence error sequentially -- workers never touch `status`).
  std::vector<unsigned char> lint_mismatch;

  std::size_t next_event = 0;
  std::int64_t queued = 0;
  std::uint64_t tick64 = 0;
  while (next_event < events.size() || queued > 0) {
    if (req.halt_after_ticks >= 0 &&
        tick64 >= static_cast<std::uint64_t>(req.halt_after_ticks)) {
      // The crash harness's deterministic SIGKILL: stop cold, queues
      // full, accounting open. Journal frames for finished ticks are
      // already flushed; nothing for this tick ever will be.
      res.halted = true;
      break;
    }
    const std::int64_t t0 = obs::Tracer::global().now_us();
    obs::ScopedSpan tick_span("mooc.service.tick", "mooc");
    const auto tick = static_cast<std::uint32_t>(tick64);
    const QueueOptions& qopt =
        (tick64 >= opt_.storm_begin_tick && tick64 < opt_.storm_end_tick)
            ? storm
            : base;
    const bool sound = tick_is_sound(qopt);

    // Replay vs write mode for this tick. While journaled ticks remain
    // we VERIFY every re-derived decision against them (and substitute
    // what cannot be re-derived); past the journal's end we are the
    // live process again and append.
    const JournalTick* jt =
        replay_idx < replay_ticks.size() ? &replay_ticks[replay_idx] : nullptr;
    const bool replaying = jt != nullptr;
    const bool writing = journaling && !replaying;
    std::size_t jrej = 0, jshed = 0, jrepl = 0, jbrk = 0;
    auto diverge = [&](const char* what) {
      if (status.ok())
        status = util::Status::internal(
            std::string("journal replay diverged (") + what + ") at tick " +
            std::to_string(tick));
    };
    if (replaying && jt->tick != tick) diverge("tick number");
    if (writing) writer.tick_begin(tick);

    auto note_rejected = [&](std::uint64_t id, Disposition d,
                             std::uint8_t lane) {
      if (writing) {
        writer.rejected(id, d, lane);
      } else if (replaying) {
        if (jrej >= jt->rejections.size() || jt->rejections[jrej].id != id ||
            jt->rejections[jrej].disposition != d)
          diverge("admission rejection");
        else
          ++jrej;
      }
    };
    auto note_shed = [&](std::uint64_t id, std::uint8_t lane) {
      if (writing) {
        writer.shed(id, lane);
      } else if (replaying) {
        if (jshed >= jt->sheds.size() || jt->sheds[jshed].id != id)
          diverge("shed victim");
        else
          ++jshed;
      }
    };
    // Memo replays are re-derived; the journal only audits them.
    auto note_memo_replay = [&](std::uint64_t id, ReplaySource src) {
      if (replaying) {
        if (jrepl >= jt->replays.size() || jt->replays[jrepl].id != id ||
            jt->replays[jrepl].source != src)
          diverge("dedup replay");
        else
          ++jrepl;
      }
    };
    auto note_breaker = [&](int ci, BreakerAction action) {
      if (writing) {
        writer.breaker(static_cast<std::uint32_t>(ci), action);
      } else if (replaying) {
        if (jbrk >= jt->breakers.size() ||
            jt->breakers[jbrk].course != static_cast<std::uint32_t>(ci) ||
            jt->breakers[jbrk].action != action)
          diverge("breaker transition");
        else
          ++jbrk;
      }
    };

    // ---- arrivals: admission control and backpressure -------------------
    for (auto& c : courses) c.admitted_this_tick = 0;
    while (next_event < events.size() &&
           events[next_event].arrival_tick <= tick) {
      const auto id = static_cast<std::uint64_t>(next_event);
      const auto& ev = events[next_event];
      ++next_event;
      const auto course_idx =
          static_cast<std::size_t>(ev.course %
                                   static_cast<std::uint32_t>(num_courses));
      if (!owned[course_idx]) continue;  // another shard's course
      ++stats.arrivals;
      auto& course = courses[course_idx];
      if (course.admitted_this_tick >= opt_.admit_quota) {
        ++stats.rejected_quota;
        note_rejected(id, Disposition::kRejectedQuota, ev.lane);
        record(id, Disposition::kRejectedQuota, ev.lane, false, tick, nullptr);
        continue;
      }
      ++course.admitted_this_tick;
      const Entry e{id, ev.body, ev.arrival_tick, ev.deadline_tick, ev.lane};
      if (course.depth() >= static_cast<std::size_t>(opt_.queue_cap)) {
        if (opt_.shed_policy == ShedPolicy::kNone) {
          ++stats.rejected_full;
          note_rejected(id, Disposition::kRejectedFull, ev.lane);
          record(id, Disposition::kRejectedFull, ev.lane, false, tick,
                 nullptr);
          continue;
        }
        // Insert the newcomer first, then evict the policy's victim --
        // which may be the newcomer itself. Either way the eviction is a
        // recorded outcome, never a silent drop.
        course.lanes[e.lane].insert(e);
        const Entry victim = course.evict(opt_.shed_policy);
        ++stats.shed;
        note_shed(victim.id, victim.lane);
        record(victim.id, Disposition::kShed, victim.lane, false, tick,
               nullptr);
        continue;
      }
      course.lanes[e.lane].insert(e);
      ++queued;
    }
    if (!status.ok()) return res;
    for (const auto& c : courses) {
      stats.peak_depth_first = std::max(
          stats.peak_depth_first, static_cast<std::int64_t>(c.lanes[0].size()));
      stats.peak_depth_resubmit =
          std::max(stats.peak_depth_resubmit,
                   static_cast<std::int64_t>(c.lanes[1].size()));
    }

    // ---- sequential scheduling: pops, replays, batch assembly ------------
    batch.clear();
    for (int ci = 0; ci < num_courses; ++ci) {
      auto& course = courses[static_cast<std::size_t>(ci)];
      // Half-open probe: while the breaker is open, the first pop on every
      // probe_interval-th tick after the trip grades for real; replay is
      // disallowed for probes so a cache hit can't fake a recovery.
      bool probe_pending =
          course.open && tick64 > course.opened_tick &&
          (tick64 - course.opened_tick) %
                  static_cast<std::uint64_t>(opt_.breaker_probe_interval) ==
              0;
      for (int served = 0; served < opt_.service_rate && course.depth() > 0;
           ++served) {
        const Entry e = course.pop();
        --queued;
        bool probe = false;
        bool degraded = false;
        if (course.open) {
          if (probe_pending) {
            probe = true;
            probe_pending = false;
          } else {
            degraded = true;
          }
        }
        if (use_cache && !probe) {
          const auto& dig = body_digests[e.body];
          if (const auto it = lint_rejected_memo.find(dig);
              it != lint_rejected_memo.end()) {
            ++stats.dedup_hits;
            if (writing)
              writer.replayed(e.id, ReplaySource::kLintMemo,
                              Disposition::kLintRejected, e.lane, it->second);
            else
              note_memo_replay(e.id, ReplaySource::kLintMemo);
            count_serviced(Disposition::kLintRejected, it->second, tick,
                           e.arrival);
            record(e.id, Disposition::kLintRejected, e.lane, true, tick,
                   &it->second);
            continue;
          }
          if (degraded) {
            if (lint_clean.count(dig) != 0) {
              ++stats.dedup_hits;
              SubmissionOutcome out;  // lint-only pass: no attempts, ok
              if (writing)
                writer.replayed(e.id, ReplaySource::kDegradedMemo,
                                Disposition::kDegraded, e.lane, out);
              else
                note_memo_replay(e.id, ReplaySource::kDegradedMemo);
              count_serviced(Disposition::kDegraded, out, tick, e.arrival);
              record(e.id, Disposition::kDegraded, e.lane, true, tick, &out);
              continue;
            }
          } else if (sound) {
            if (const auto it = full_done.find(dig); it != full_done.end()) {
              ++stats.dedup_hits;
              const Disposition d = to_disposition(it->second.kind, false);
              if (writing)
                writer.replayed(e.id, ReplaySource::kFullMemo, d, e.lane,
                                it->second);
              else
                note_memo_replay(e.id, ReplaySource::kFullMemo);
              count_serviced(d, it->second, tick, e.arrival);
              record(e.id, d, e.lane, true, tick, &it->second);
              continue;
            }
            if (cross_run) {
              if (replaying) {
                // Substitute the journaled cache verdict instead of
                // consulting the live (cold) cache: the original run's
                // hit/miss pattern is part of the history being replayed.
                if (jrepl < jt->replays.size() &&
                    jt->replays[jrepl].id == e.id &&
                    jt->replays[jrepl].source == ReplaySource::kCache) {
                  SubmissionOutcome out = jt->replays[jrepl].outcome;
                  ++jrepl;
                  ++stats.cache_hits;
                  const Disposition d = to_disposition(out.kind, false);
                  count_serviced(d, out, tick, e.arrival);
                  record(e.id, d, e.lane, true, tick, &out);
                  full_done.emplace(dig, std::move(out));
                  continue;
                }
                // No kCache frame for this id: the original run missed
                // here too; fall through to the batch, where the
                // journaled outcome is substituted positionally.
              } else {
                const cache::CacheKey key{"mooc.service", dig, config};
                SubmissionOutcome out;
                if (const auto hit = cache::Cache::global().lookup(key);
                    hit && deserialize_outcome(*hit, out)) {
                  ++stats.cache_hits;
                  const Disposition d = to_disposition(out.kind, false);
                  if (writing)
                    writer.replayed(e.id, ReplaySource::kCache, d, e.lane,
                                    out);
                  count_serviced(d, out, tick, e.arrival);
                  record(e.id, d, e.lane, true, tick, &out);
                  full_done.emplace(dig, std::move(out));
                  continue;
                }
              }
            }
          }
        }
        batch.push_back(BatchItem{e, ci, degraded, probe});
      }
    }
    if (!status.ok()) return res;

    // ---- parallel service of the tick's batch ----------------------------
    // Pre-assigned slots, grain 1; every fault draw is keyed by the
    // submission id, so the slot contents are lane-schedule-independent.
    // During replay the journaled outcomes are substituted into the slots
    // up front (verified positionally) and the workers re-run ONLY the
    // pure lint stage -- its verdict cross-checks the substituted kind,
    // and its per-rule obs counters keep the export byte-identical to
    // the uninterrupted run's.
    obs::observe("mooc.service.batch_size",
                 static_cast<std::int64_t>(batch.size()));
    bouts.assign(batch.size(), SubmissionOutcome{});
    btallies.assign(batch.size(), FaultTally{});
    if (replaying) {
      if (jt->outcomes.size() != batch.size()) {
        diverge("batch size");
      } else {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const JournaledOutcome& jo = jt->outcomes[i];
          if (jo.id != batch[i].e.id || jo.degraded != batch[i].degraded ||
              jo.probe != batch[i].probe) {
            diverge("batch slot");
            break;
          }
          bouts[i] = jo.outcome;
          btallies[i] = jo.tally;
        }
      }
      if (!status.ok()) return res;
      lint_mismatch.assign(batch.size(), 0);
    }
    util::parallel_for(
        0, static_cast<std::int64_t>(batch.size()), 1, [&](std::int64_t s) {
          const auto i = static_cast<std::size_t>(s);
          const BatchItem& item = batch[i];
          const std::string& body = trace.bodies[item.e.body];
          obs::ScopedSpan grade_span("mooc.service.grade", "mooc");
          auto& out = bouts[i];
          if (replaying) {
            SubmissionOutcome probe_out;
            const bool rejects = lint_pre_grade_rejects(body, qopt, probe_out);
            if (rejects != (out.kind == OutcomeKind::kRejected))
              lint_mismatch[i] = 1;
            return;
          }
          if (lint_pre_grade_rejects(body, qopt, out)) return;
          if (item.degraded) {
            out.kind = OutcomeKind::kGraded;  // mapped to kDegraded in fold
            out.status = util::Status::okay();
            return;
          }
          grade_one_submission(item.e.id, body, grade_, qopt, out,
                               btallies[i]);
        });
    if (replaying) {
      for (std::size_t i = 0; i < batch.size(); ++i)
        if (lint_mismatch[i] != 0) {
          diverge("lint verdict");
          break;
        }
      if (!status.ok()) return res;
      obs::count("journal.ticks_replayed");
      if (!batch.empty())
        obs::count("journal.outcomes_replayed",
                   static_cast<std::int64_t>(batch.size()));
    }

    // ---- sequential fold: stats, memoization, breaker transitions --------
    for (std::size_t s = 0; s < batch.size(); ++s) {
      const BatchItem& item = batch[s];
      auto& out = bouts[s];
      auto& course = courses[static_cast<std::size_t>(item.course)];
      stats.injected_transients += btallies[s].transients;
      stats.injected_stalls += btallies[s].stalls;
      const Disposition d = to_disposition(out.kind, item.degraded);
      if (writing)
        writer.outcome(item.e.id, d, item.e.lane, item.degraded, item.probe,
                       out, btallies[s]);
      count_serviced(d, out, tick, item.e.arrival);
      if (use_cache) {
        const auto& dig = body_digests[item.e.body];
        if (out.kind == OutcomeKind::kRejected) {
          lint_rejected_memo.emplace(dig, out);
        } else {
          lint_clean.insert(dig);
          if (!item.degraded && sound) {
            if (cross_run)
              cache::Cache::global().insert({"mooc.service", dig, config},
                                            serialize_outcome(out));
            full_done.emplace(dig, out);
          }
        }
      }
      const bool fault_fail =
          !item.degraded && out.kind == OutcomeKind::kExhausted;
      if (!course.open) {
        if (fault_fail) {
          if (++course.consecutive >= opt_.breaker_threshold) {
            course.open = true;
            course.opened_tick = tick64;
            course.consecutive = 0;
            ++stats.breaker_trips;
            note_breaker(item.course, BreakerAction::kTrip);
          }
        } else if (!item.degraded) {
          course.consecutive = 0;
        }
      } else if (item.probe) {
        ++stats.breaker_probes;
        if (fault_fail) {
          course.opened_tick = tick64;  // probe failed: restart the schedule
          note_breaker(item.course, BreakerAction::kProbeFail);
        } else {
          course.open = false;
          course.consecutive = 0;
          ++stats.breaker_recoveries;
          note_breaker(item.course, BreakerAction::kRecover);
        }
      }
      record(item.e.id, d, item.e.lane, false, tick, &out);
    }
    if (!status.ok()) return res;

    ++stats.ticks;
    const std::uint64_t check = stats_checksum(stats);
    if (writing) {
      if (util::Status st = writer.tick_end(tick, check); !st.ok()) {
        status = st;
        return res;
      }
    } else if (replaying) {
      // The tick must be consumed EXACTLY: leftover frames mean the
      // original run made decisions this replay did not.
      if (jrej != jt->rejections.size()) diverge("unconsumed rejections");
      if (jshed != jt->sheds.size()) diverge("unconsumed sheds");
      if (jrepl != jt->replays.size()) diverge("unconsumed replays");
      if (jbrk != jt->breakers.size()) diverge("unconsumed breakers");
      if (check != jt->stats_check) diverge("stats checksum");
      if (!status.ok()) return res;
      ++replay_idx;
    }
    res.tick_duration_us.push_back(obs::Tracer::global().now_us() - t0);
    ++tick64;
  }

  if (replay_idx < replay_ticks.size() && !res.halted) {
    status = util::Status::internal(
        "journal contains more complete ticks than the drain produced");
    return res;
  }
  if (journaling && !res.halted && !journal_run_complete) {
    if (util::Status st = writer.run_end(stats_checksum(stats)); !st.ok()) {
      status = st;
      return res;
    }
  }

  // Metrics flush, sequential, every name emitted even at zero so the
  // golden export's shape does not depend on which paths a run exercised.
  // A halted (simulated-kill) run skips it, like the real dead process
  // would have -- the recovered process flushes the merged totals.
  if (obs::enabled() && !res.halted) {
    obs::count("mooc.service.runs");
    obs::count("mooc.service.ticks", stats.ticks);
    obs::count("mooc.service.arrivals", stats.arrivals);
    obs::count("mooc.service.admitted", stats.admitted);
    obs::count("mooc.service.rejected.quota", stats.rejected_quota);
    obs::count("mooc.service.rejected.queue_full", stats.rejected_full);
    obs::count("mooc.service.shed", stats.shed);
    obs::count("mooc.service.graded", stats.graded);
    obs::count("mooc.service.degraded", stats.degraded);
    obs::count("mooc.service.failed", stats.failed);
    obs::count("mooc.service.budget_exceeded", stats.budget_exceeded);
    obs::count("mooc.service.retries_exhausted", stats.retries_exhausted);
    obs::count("mooc.service.lint_rejected", stats.lint_rejected);
    obs::count("mooc.service.dedup_hits", stats.dedup_hits);
    obs::count("mooc.service.cache_hits", stats.cache_hits);
    obs::count("mooc.service.breaker.trips", stats.breaker_trips);
    obs::count("mooc.service.breaker.probes", stats.breaker_probes);
    obs::count("mooc.service.breaker.recoveries", stats.breaker_recoveries);
    obs::count("mooc.service.attempts", stats.total_attempts);
    obs::count("mooc.service.transients", stats.injected_transients);
    obs::count("mooc.service.stalls", stats.injected_stalls);
    obs::gauge_set("mooc.service.lane.first.peak_depth",
                   stats.peak_depth_first);
    obs::gauge_set("mooc.service.lane.resubmit.peak_depth",
                   stats.peak_depth_resubmit);
  }
  return res;
}

}  // namespace l2l::mooc
