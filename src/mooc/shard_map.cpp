#include "mooc/shard_map.hpp"

#include <algorithm>

namespace l2l::mooc {
namespace {

// The ring seed is part of the sharding contract (see header): changing
// it re-homes every course, so it is a constant, not an option.
constexpr std::uint64_t kRingSeed = 0x6c326c2d73686172ull;  // "l2l-shar"

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t ring_point(std::uint64_t shard, std::uint64_t vnode) {
  return splitmix64(splitmix64(kRingSeed ^ (shard * 0x100000001b3ull)) ^
                    vnode);
}

std::uint64_t course_point(std::uint32_t course) {
  return splitmix64(kRingSeed ^ (0x9e3779b97f4a7c15ull + course));
}

}  // namespace

ShardMap::ShardMap(int num_shards) : num_shards_(std::max(num_shards, 1)) {
  ring_.reserve(static_cast<std::size_t>(num_shards_) * kShardVirtualNodes);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(num_shards_); ++s)
    for (int v = 0; v < kShardVirtualNodes; ++v)
      ring_.emplace_back(ring_point(s, static_cast<std::uint64_t>(v)), s);
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::shard_for_course(std::uint32_t course) const {
  if (num_shards_ == 1) return 0;
  const std::uint64_t p = course_point(course);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(p, std::uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return static_cast<int>(it->second);
}

std::vector<int> ShardMap::courses_per_shard(int num_courses) const {
  std::vector<int> counts(static_cast<std::size_t>(num_shards_), 0);
  for (int c = 0; c < num_courses; ++c)
    ++counts[static_cast<std::size_t>(
        shard_for_course(static_cast<std::uint32_t>(c)))];
  return counts;
}

ServiceResult merge_sharded(const SubmissionTrace& trace, const ShardMap& map,
                            const std::vector<ServiceResult>& parts,
                            util::Status& status) {
  status = util::Status::okay();
  ServiceResult merged;
  if (static_cast<int>(parts.size()) != map.num_shards()) {
    status = util::Status::invalid("merge_sharded: part count != num_shards");
    return merged;
  }
  const int num_courses = std::max(trace.num_courses, 1);

  // Outcomes: each submission belongs to exactly one shard (its course's
  // owner); merge only when every part recorded outcomes.
  bool have_outcomes = true;
  for (const auto& p : parts)
    have_outcomes = have_outcomes && p.outcomes.size() == trace.events.size();
  if (have_outcomes) {
    merged.outcomes.resize(trace.events.size());
    for (std::size_t id = 0; id < trace.events.size(); ++id) {
      const auto course = trace.events[id].course %
                          static_cast<std::uint32_t>(num_courses);
      const int owner = map.shard_for_course(course);
      merged.outcomes[id] = parts[static_cast<std::size_t>(owner)].outcomes[id];
    }
  }

  auto& m = merged.stats;
  for (const auto& p : parts) {
    const auto& s = p.stats;
    m.ticks = std::max(m.ticks, s.ticks);
    m.arrivals += s.arrivals;
    m.admitted += s.admitted;
    m.rejected_quota += s.rejected_quota;
    m.rejected_full += s.rejected_full;
    m.shed += s.shed;
    m.graded += s.graded;
    m.degraded += s.degraded;
    m.failed += s.failed;
    m.budget_exceeded += s.budget_exceeded;
    m.retries_exhausted += s.retries_exhausted;
    m.lint_rejected += s.lint_rejected;
    m.dedup_hits += s.dedup_hits;
    m.cache_hits += s.cache_hits;
    m.breaker_trips += s.breaker_trips;
    m.breaker_probes += s.breaker_probes;
    m.breaker_recoveries += s.breaker_recoveries;
    m.total_attempts += s.total_attempts;
    m.injected_transients += s.injected_transients;
    m.injected_stalls += s.injected_stalls;
    m.peak_depth_first = std::max(m.peak_depth_first, s.peak_depth_first);
    m.peak_depth_resubmit =
        std::max(m.peak_depth_resubmit, s.peak_depth_resubmit);
    merged.halted = merged.halted || p.halted;
  }

  // Sequential-drain wall clock: tick t of the merged run costs the sum
  // of every shard's tick t. Nondeterministic, like every duration here.
  for (const auto& p : parts) {
    if (p.tick_duration_us.size() > merged.tick_duration_us.size())
      merged.tick_duration_us.resize(p.tick_duration_us.size(), 0);
    for (std::size_t t = 0; t < p.tick_duration_us.size(); ++t)
      merged.tick_duration_us[t] += p.tick_duration_us[t];
  }

  if (!merged.halted && !merged.accounting_ok())
    status = util::Status::internal(
        "merge_sharded: accounting identity broken after merge");
  return merged;
}

}  // namespace l2l::mooc
