#include "mooc/cohort.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mooc/datasets.hpp"

namespace l2l::mooc {

CohortResult simulate_cohort(const CohortOptions& opt, util::Rng& rng) {
  CohortResult res;
  res.people.reserve(static_cast<std::size_t>(opt.registered));
  res.viewers_per_video.assign(static_cast<std::size_t>(opt.num_videos), 0);

  // Country sampling distribution from the published shares.
  const auto& shares = participation_by_country();
  double share_total = 0;
  for (const auto& s : shares) share_total += s.percent;

  const auto demo = demographics();

  int watched = 0, homework = 0, project = 0, final_exam = 0, cert = 0;
  for (int k = 0; k < opt.registered; ++k) {
    Participant p;
    // Age: mostly normal around the published mean, with a small uniform
    // tail so a 17.5k cohort actually spans the published 15..75 extremes.
    if (rng.next_bool(0.97)) {
      p.age = static_cast<int>(
          std::lround(demo.average_age + 8.5 * rng.next_gaussian()));
    } else {
      p.age = static_cast<int>(
          demo.min_age + rng.next_below(static_cast<std::uint64_t>(
                             demo.max_age - demo.min_age + 1)));
    }
    p.age = std::clamp(p.age, demo.min_age, demo.max_age);
    p.female = rng.next_double() * 100.0 < demo.female_percent;
    {
      double pick = rng.next_double() * share_total;
      for (const auto& s : shares) {
        pick -= s.percent;
        if (pick <= 0) {
          p.country = s.country;
          break;
        }
      }
      if (p.country.empty()) p.country = shares.back().country;
    }

    p.showed_up = rng.next_bool(opt.show_up_rate);
    if (p.showed_up) {
      ++watched;
      // Watch videos until the per-video continuation coin fails.
      int v = 0;
      while (v < opt.num_videos) {
        ++res.viewers_per_video[static_cast<std::size_t>(v)];
        ++v;
        if (!rng.next_bool(opt.video_continue_rate)) break;
      }
      p.videos_watched = v;
      p.did_homework = rng.next_bool(opt.homework_rate);
      if (p.did_homework) {
        ++homework;
        p.did_project = rng.next_bool(opt.project_rate);
        if (p.did_project) ++project;
        p.took_final = rng.next_bool(opt.final_exam_rate);
        if (p.took_final) {
          ++final_exam;
          p.certified = rng.next_bool(opt.certificate_rate);
          if (p.certified) ++cert;
        }
      }
    }
    res.people.push_back(std::move(p));
  }

  res.funnel = {opt.registered, watched, homework, project, final_exam, cert};

  std::map<std::string, int> country_count;
  for (const auto& p : res.people) ++country_count[p.country];
  for (const auto& [c, n] : country_count)
    res.by_country.emplace_back(
        c, 100.0 * n / static_cast<double>(opt.registered));
  std::sort(res.by_country.begin(), res.by_country.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  double age_sum = 0;
  int females = 0;
  for (const auto& p : res.people) {
    age_sum += p.age;
    females += p.female;
  }
  res.average_age = age_sum / static_cast<double>(opt.registered);
  res.female_percent = 100.0 * females / static_cast<double>(opt.registered);
  return res;
}

double relative_error(double simulated, double reference) {
  if (reference == 0) return simulated == 0 ? 0 : 1;
  return std::abs(simulated - reference) / std::abs(reference);
}

util::Status validate(const TraceOptions& opt) {
  auto bad = [](const std::string& what) {
    return util::Status::invalid("TraceOptions: " + what);
  };
  if (opt.num_students < 0) return bad("num_students must be >= 0");
  if (opt.num_courses < 1 || opt.num_courses > 4096)
    return bad("num_courses must be in [1, 4096]");
  if (opt.ticks < 2) return bad("ticks must be >= 2");
  if (opt.deadline_every < 2 || opt.deadline_every > opt.ticks)
    return bad("deadline_every must be in [2, ticks]");
  if (!(opt.participation_rate >= 0.0 && opt.participation_rate <= 1.0))
    return bad("participation_rate must be in [0, 1]");
  if (!(opt.resubmit_rate >= 0.0 && opt.resubmit_rate <= 1.0))
    return bad("resubmit_rate must be in [0, 1]");
  if (opt.max_submissions < 1) return bad("max_submissions must be >= 1");
  if (opt.unique_bodies_per_course < 1 ||
      opt.unique_bodies_per_course > 1'000'000)
    return bad("unique_bodies_per_course must be in [1, 1000000]");
  if (opt.body_bytes < 24 || opt.body_bytes > 1'000'000)
    return bad("body_bytes must be in [24, 1000000]");
  return util::Status::okay();
}

SubmissionTrace generate_submission_trace(const TraceOptions& opt,
                                          util::Rng& rng) {
  SubmissionTrace trace;
  trace.ticks = std::max<std::uint32_t>(opt.ticks, 2);
  trace.num_courses = std::max(opt.num_courses, 1);
  const auto courses = static_cast<std::uint32_t>(trace.num_courses);
  const auto pool = static_cast<std::uint32_t>(
      std::max(opt.unique_bodies_per_course, 1));
  const auto body_bytes =
      static_cast<std::size_t>(std::max(opt.body_bytes, 24));

  // The shared body pool: per-course blocks of `pool` distinct uploads.
  // Students draw from the pool rather than composing fresh text, so the
  // trace is duplicate-heavy by construction -- the traffic shape the
  // digest/dedup layer exists for.
  trace.bodies.reserve(static_cast<std::size_t>(courses) * pool);
  for (std::uint32_t c = 0; c < courses; ++c) {
    for (std::uint32_t b = 0; b < pool; ++b) {
      std::string body = "course " + std::to_string(c) + " solution variant " +
                         std::to_string(b) + "\n";
      while (body.size() < body_bytes)
        body.push_back(static_cast<char>('a' + rng.next_below(26)));
      trace.bodies.push_back(std::move(body));
    }
  }

  // Homework deadlines, one every deadline_every ticks.
  const std::uint32_t every = std::max<std::uint32_t>(opt.deadline_every, 2);
  std::vector<std::uint32_t> deadlines;
  for (std::uint32_t d = every; d < trace.ticks; d += every)
    deadlines.push_back(d);
  if (deadlines.empty()) deadlines.push_back(trace.ticks - 1);

  for (int s = 0; s < opt.num_students; ++s) {
    if (!rng.next_bool(opt.participation_rate)) continue;
    const auto course = static_cast<std::uint32_t>(rng.next_below(courses));
    // 1 first attempt + geometric resubmits, capped.
    int n = 1;
    while (n < std::max(opt.max_submissions, 1) &&
           rng.next_bool(opt.resubmit_rate))
      ++n;
    const std::uint32_t deadline =
        deadlines[static_cast<std::size_t>(rng.next_below(deadlines.size()))];
    // Deadline clustering: the min of two uniform offsets piles arrivals
    // onto the last few ticks before the deadline (procrastination has a
    // triangular density, per every grading-ops postmortem ever written).
    std::uint32_t offset = static_cast<std::uint32_t>(std::min(
        rng.next_below(every), rng.next_below(every)));
    std::uint32_t arrival = deadline > offset ? deadline - offset : 0;
    for (int k = 0; k < n; ++k) {
      SubmissionEvent ev;
      ev.course = course;
      ev.student = static_cast<std::uint32_t>(s);
      ev.body = course * pool + static_cast<std::uint32_t>(
                                    rng.next_below(pool));
      ev.arrival_tick = std::min(arrival, trace.ticks - 1);
      ev.deadline_tick = std::max(deadline, ev.arrival_tick);
      ev.lane = k == 0 ? std::uint8_t{0} : std::uint8_t{1};
      trace.events.push_back(ev);
      // Resubmits trail the previous attempt by a short think time.
      arrival += 1 + static_cast<std::uint32_t>(rng.next_below(every / 2 + 1));
    }
  }

  // Stable sort keeps generation order inside a tick, so the trace (and
  // therefore every submission id) is a pure function of (opt, seed).
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const SubmissionEvent& a, const SubmissionEvent& b) {
                     return a.arrival_tick < b.arrival_tick;
                   });
  return trace;
}

}  // namespace l2l::mooc
