#include "mooc/cohort.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mooc/datasets.hpp"

namespace l2l::mooc {

CohortResult simulate_cohort(const CohortOptions& opt, util::Rng& rng) {
  CohortResult res;
  res.people.reserve(static_cast<std::size_t>(opt.registered));
  res.viewers_per_video.assign(static_cast<std::size_t>(opt.num_videos), 0);

  // Country sampling distribution from the published shares.
  const auto& shares = participation_by_country();
  double share_total = 0;
  for (const auto& s : shares) share_total += s.percent;

  const auto demo = demographics();

  int watched = 0, homework = 0, project = 0, final_exam = 0, cert = 0;
  for (int k = 0; k < opt.registered; ++k) {
    Participant p;
    // Age: mostly normal around the published mean, with a small uniform
    // tail so a 17.5k cohort actually spans the published 15..75 extremes.
    if (rng.next_bool(0.97)) {
      p.age = static_cast<int>(
          std::lround(demo.average_age + 8.5 * rng.next_gaussian()));
    } else {
      p.age = static_cast<int>(
          demo.min_age + rng.next_below(static_cast<std::uint64_t>(
                             demo.max_age - demo.min_age + 1)));
    }
    p.age = std::clamp(p.age, demo.min_age, demo.max_age);
    p.female = rng.next_double() * 100.0 < demo.female_percent;
    {
      double pick = rng.next_double() * share_total;
      for (const auto& s : shares) {
        pick -= s.percent;
        if (pick <= 0) {
          p.country = s.country;
          break;
        }
      }
      if (p.country.empty()) p.country = shares.back().country;
    }

    p.showed_up = rng.next_bool(opt.show_up_rate);
    if (p.showed_up) {
      ++watched;
      // Watch videos until the per-video continuation coin fails.
      int v = 0;
      while (v < opt.num_videos) {
        ++res.viewers_per_video[static_cast<std::size_t>(v)];
        ++v;
        if (!rng.next_bool(opt.video_continue_rate)) break;
      }
      p.videos_watched = v;
      p.did_homework = rng.next_bool(opt.homework_rate);
      if (p.did_homework) {
        ++homework;
        p.did_project = rng.next_bool(opt.project_rate);
        if (p.did_project) ++project;
        p.took_final = rng.next_bool(opt.final_exam_rate);
        if (p.took_final) {
          ++final_exam;
          p.certified = rng.next_bool(opt.certificate_rate);
          if (p.certified) ++cert;
        }
      }
    }
    res.people.push_back(std::move(p));
  }

  res.funnel = {opt.registered, watched, homework, project, final_exam, cert};

  std::map<std::string, int> country_count;
  for (const auto& p : res.people) ++country_count[p.country];
  for (const auto& [c, n] : country_count)
    res.by_country.emplace_back(
        c, 100.0 * n / static_cast<double>(opt.registered));
  std::sort(res.by_country.begin(), res.by_country.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  double age_sum = 0;
  int females = 0;
  for (const auto& p : res.people) {
    age_sum += p.age;
    females += p.female;
  }
  res.average_age = age_sum / static_cast<double>(opt.registered);
  res.female_percent = 100.0 * females / static_cast<double>(opt.registered);
  return res;
}

double relative_error(double simulated, double reference) {
  if (reference == 0) return simulated == 0 ? 0 : 1;
  return std::abs(simulated - reference) / std::abs(reference);
}

}  // namespace l2l::mooc
