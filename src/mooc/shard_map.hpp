#pragma once
// Consistent hashing of course ids across N logical grading shards --
// the "multi-machine" half of the crash-recovery story. Each shard is a
// full GradingService process that walks the SAME trace and skips every
// event whose course it does not own (so trace-wide submission ids, and
// with them the fault draws they key, are identical in every shard),
// journals to its own file, and drains independently. A sequential
// merge then reassembles the single-process result.
//
// Why consistent hashing instead of course % N: adding a machine to a
// semester in flight must not re-home every course (re-homing moves a
// course's in-run dedup memos and breaker state to a cold shard).
// With V virtual nodes per shard on a shared 64-bit ring, going from N
// to N+1 shards moves ~1/(N+1) of the courses, and the ring is a pure
// function of a FIXED seed baked into this file -- every process,
// today or next semester, derives the same ownership from (num_shards)
// alone. Nothing about the mapping is configuration.
//
// The merge is exact, not approximate, because every piece of service
// state is per-course: queues, quotas, breakers, and -- for generated
// traces, whose bodies embed their course id -- the dedup/cache memos
// too. The N-shard drain therefore equals the 1-process drain
// submission for submission; tests/journal_test.cpp pins that equality
// field by field, and merge_sharded() re-checks the accounting identity
// on the way through.

#include <cstdint>
#include <vector>

#include "mooc/cohort.hpp"
#include "mooc/grading_service.hpp"
#include "util/status.hpp"

namespace l2l::mooc {

/// Virtual nodes per shard on the ring. More nodes = flatter course
/// distribution; 64 keeps the max/min course load within ~2x at a few
/// shards, plenty for logical sharding.
inline constexpr int kShardVirtualNodes = 64;

class ShardMap {
 public:
  /// Builds the ring for `num_shards` (clamped to >= 1) with
  /// kShardVirtualNodes points per shard. Deterministic: the ring
  /// depends on num_shards alone.
  explicit ShardMap(int num_shards);

  int num_shards() const { return num_shards_; }

  /// Owner of a course id: the first ring point clockwise from
  /// hash(course), wrapping at the top. Pure and process-independent.
  int shard_for_course(std::uint32_t course) const;

  /// Course count per shard over [0, num_courses) -- distribution
  /// checks and the tool's sharding report line.
  std::vector<int> courses_per_shard(int num_courses) const;

 private:
  int num_shards_ = 1;
  /// Sorted (point, shard) ring; ties broken by shard id so the ring is
  /// a total order regardless of sort stability.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// Reassemble the single-process ServiceResult from N per-shard drains
/// of the SAME trace (parts[s] must come from a service run with
/// num_shards = map.num_shards(), shard = s). Outcomes are taken from
/// each submission's owning shard; counters are summed; ticks and peak
/// depths are maxed (shards tick in lockstep over the same trace
/// clock). Status is non-ok if the parts are malformed (wrong count,
/// missing outcomes, accounting broken); tick_duration_us is summed
/// per tick across shards (the sequential-drain wall clock).
ServiceResult merge_sharded(const SubmissionTrace& trace, const ShardMap& map,
                            const std::vector<ServiceResult>& parts,
                            util::Status& status);

}  // namespace l2l::mooc
