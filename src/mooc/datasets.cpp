#include "mooc/datasets.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace l2l::mooc {

const std::vector<ConceptEntry>& concept_map() {
  // The Fig. 1 snapshot enumerates the BDD-area concepts with their slide
  // bars (longest ~35 slides for the ITE/hash-table implementation entry).
  // The other topic groups are aggregated so group sums plus the BDD area
  // total the course's 948 slides over 102 concepts.
  static const std::vector<ConceptEntry> kMap = {
      // Computational Boolean Algebra area (Fig. 1 upper block).
      {"Computational Boolean Algebra", "Shannon cofactors", 8},
      {"Computational Boolean Algebra", "Boolean difference", 7},
      {"Computational Boolean Algebra", "Quantification defns", 6},
      {"Computational Boolean Algebra", "Network repair", 12},
      {"Computational Boolean Algebra", "Compute strategies", 9},
      {"Computational Boolean Algebra", "URP", 18},
      // BDD area (Fig. 1 lower block).
      {"BDDs", "BDD basic defns, ROBDD", 14},
      {"BDDs", "Building, Var order, Simple SAT", 22},
      {"BDDs", "Multi root, Garbage-collect", 10},
      {"BDDs", "Negation arc", 8},
      {"BDDs", "Ops, Restrict & ITE", 25},
      {"BDDs", "ITE implementation, hash tables", 35},
      // Remaining topic groups, aggregated (slide totals per group chosen
      // so the full course sums to 948 slides across 102 concepts).
      {"SAT", "CNF, DPLL, BCP, implication graphs", 60},
      {"2-Level Synthesis", "Espresso loop, expand/irredundant/reduce", 88},
      {"Multi-Level Synthesis", "Algebraic model, kernels, factoring", 112},
      {"Don't Cares", "SDC/ODC computation", 48},
      {"Tech Mapping", "Tree covering, pattern matching", 64},
      {"Placement", "Quadratic, annealing, legalization", 118},
      {"Routing", "Maze routing, multi-layer, vias", 96},
      {"Timing", "Static timing, Elmore delay", 92},
      {"Layout/Geometry", "Scanline, DRC, extraction", 54},
      {"Partitioning", "KL/FM", 42},
  };
  return kMap;
}

ConceptMapTotals concept_map_totals() { return ConceptMapTotals{}; }

const std::vector<LectureVideo>& lecture_videos() {
  static const std::vector<LectureVideo> kVideos = [] {
    // 69 videos across 8 topic weeks plus tool tutorials, engineered to
    // hit the paper's aggregates exactly: total 1035 minutes (69 * 15
    // average, 17.25 hours ~ "17 total lecture hours").
    struct WeekSpec {
      int week;
      const char* topic;
      int count;
    };
    const WeekSpec weeks[] = {
        {1, "Computational Boolean Algebra", 8},
        {2, "Formal Verification: BDDs & SAT", 10},
        {3, "Logic Synthesis I (2-level)", 8},
        {4, "Logic Synthesis II (multi-level)", 9},
        {5, "Technology Mapping", 7},
        {6, "Placement", 8},
        {7, "Routing", 8},
        {8, "Timing", 7},
        {9, "Tool Tutorials", 4},
    };
    std::vector<LectureVideo> out;
    // Deterministic length pattern between 9 and 21 minutes averaging 15.
    const double pattern[] = {15, 12, 18, 9, 21, 14, 16, 13, 17, 15};
    int k = 0;
    double total = 0;
    for (const auto& w : weeks) {
      for (int i = 0; i < w.count; ++i) {
        LectureVideo v;
        v.week = w.week;
        v.topic = w.topic;
        v.id = util::format("%d.%d", w.week, i + 1);
        v.minutes = pattern[k % 10];
        total += v.minutes;
        ++k;
        out.push_back(std::move(v));
      }
    }
    // Adjust the last video so the total is exactly 69 * 15 = 1035 min.
    out.back().minutes += 1035.0 - total;
    return out;
  }();
  return kVideos;
}

const std::vector<FunnelStage>& participation_funnel() {
  static const std::vector<FunnelStage> kFunnel = {
      {"Registered participants at peak", 17500},
      {"Watched a video", 7191},
      {"Did a homework", 1377},
      {"Tried a software assignment", 369},
      {"Took the Final Exam", 530},
      {"Statement of Accomplishment certificates", 386},
  };
  return kFunnel;
}

const std::vector<int>& viewers_per_video() {
  static const std::vector<int> kViewers = [] {
    // Exponential decay from ~7000 (intro) through ~5000 (mid-course,
    // "roughly DAC'13 attendance") to ~2000 (watched everything), with a
    // small deterministic ripple as in Fig. 9.
    std::vector<int> out;
    const int n = 69;
    // Exponential decay pinned to the landmarks: f(0)=7000, f(1)=2000,
    // passing near 5000 in the first third.
    constexpr double kFloor = 1700.0, kAmp = 5300.0;
    const double k = std::log(kAmp / (2000.0 - kFloor));
    for (int i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / (n - 1);
      const double base = kFloor + kAmp * std::exp(-k * t);
      const double ripple = 120.0 * std::cos(i * 1.7);
      out.push_back(static_cast<int>(std::lround(base + ripple)));
    }
    out.front() = 7000;
    out.back() = 2000;
    return out;
  }();
  return kViewers;
}

const std::vector<CountryShare>& participation_by_country() {
  // Fig. 10 buckets: US and India dominate; notable Brazil and Egypt.
  static const std::vector<CountryShare> kCountries = {
      {"United States", 29.7}, {"India", 22.0},   {"China", 4.8},
      {"Brazil", 3.5},         {"Egypt", 2.8},    {"Germany", 2.5},
      {"United Kingdom", 2.3}, {"Canada", 2.1},   {"Spain", 1.9},
      {"Russia", 1.8},         {"Greece", 1.5},   {"Pakistan", 1.4},
      {"France", 1.3},         {"Taiwan", 1.2},   {"South Korea", 1.1},
      {"Other", 20.1},
  };
  return kCountries;
}

Demographics demographics() { return Demographics{}; }

const std::vector<SurveyWord>& survey_topics() {
  // Fig. 11 word cloud: requested additional/expanded topics.
  static const std::vector<SurveyWord> kWords = {
      {"verification", 42}, {"timing", 38},    {"synthesis", 35},
      {"placement", 30},    {"routing", 30},   {"layout", 28},
      {"SAT", 24},          {"BDD", 22},       {"simulation", 21},
      {"testing", 20},      {"physical", 18},  {"sequential", 17},
      {"low-power", 16},    {"FPGA", 15},      {"parasitic", 12},
      {"extraction", 12},   {"floorplanning", 11}, {"clock", 10},
      {"analog", 9},        {"DRC", 8},        {"great", 14},
      {"thanks", 12},       {"awesome", 9},    {"more", 25},
  };
  return kWords;
}

}  // namespace l2l::mooc
