#include "esop/esop.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace l2l::esop {

namespace {

using cubes::Cover;
using cubes::Cube;
using cubes::Pcn;
using sat::LBool;
using sat::Lit;
using sat::Var;

// Flushes the esop.* counters once per synthesize call on every exit
// path (proved, budget-stopped, rejected, internal). The search loop
// only touches the local SynthesisStats; obs sees one batched update.
class SynthMetricsFlusher {
 public:
  explicit SynthMetricsFlusher(const SynthesisResult& result)
      : result_(obs::enabled() ? &result : nullptr), span_("esop.synthesize") {}
  ~SynthMetricsFlusher() {
    if (result_ == nullptr) return;
    const SynthesisStats& s = result_->stats;
    obs::count("esop.synth_calls");
    obs::count("esop.queries_sat", s.queries_sat);
    obs::count("esop.queries_unsat", s.queries_unsat);
    obs::count("esop.queries_undef", s.queries_undef);
    obs::count("esop.encoded_terms", s.encoded_terms);
    obs::count("esop.sat_conflicts", s.conflicts);
    obs::count("esop.sat_propagations", s.propagations);
    obs::count("esop.sat_decisions", s.decisions);
    obs::count("esop.terms_out", result_->terms);
    obs::count("esop.verify_points", s.verify_points);
    if (result_->minimal) obs::count("esop.minimal_proven");
    if (!result_->status.ok()) obs::count("esop.partial_results");
    obs::observe("esop.terms_per_call", result_->terms);
    obs::observe("esop.queries_per_call",
                 s.queries_sat + s.queries_unsat + s.queries_undef);
  }

 private:
  const SynthesisResult* result_;  // null when collection is disabled
  obs::ScopedSpan span_;
};

/// The incremental CNF encoding. Term levels are appended on demand;
/// level k's constraint "XOR of terms 1..k equals f" hangs off the
/// assumption literal sel(k), so one solver serves every query of the
/// gallop-then-binary-search schedule and keeps its learnt clauses.
class Encoder {
 public:
  Encoder(const tt::TruthTable& f, const SynthesisOptions& opt) : f_(f) {
    n_ = f.num_vars();
    m_count_ = f.num_minterms();
    sat::SolverOptions sopt;
    sopt.conflict_limit = opt.conflict_limit;
    sopt.budget = opt.budget;
    solver_ = std::make_unique<sat::Solver>(sopt);
  }

  /// Append term levels until `terms` are encoded.
  void ensure_encoded(int terms) {
    while (num_levels() < terms) add_level();
  }

  int num_levels() const { return static_cast<int>(sel_.size()); }

  /// The "<= k terms" query (k <= num_levels()).
  LBool query(int k) {
    return solver_->solve({Lit(sel_[static_cast<std::size_t>(k - 1)], false)});
  }

  /// Decode the current model's first `k` levels into an ESOP cover:
  /// annihilated terms (both polarity selectors set on some variable)
  /// are dropped, and XOR-cancelling duplicate cubes are removed in
  /// pairs -- both are the identity under XOR semantics.
  Cover decode(int k) const {
    std::vector<Cube> cubes;
    for (int j = 0; j < k; ++j) {
      Cube c(n_);
      bool dead = false;
      for (int i = 0; i < n_ && !dead; ++i) {
        const bool p = solver_->model_value(pos(j, i));
        const bool q = solver_->model_value(neg(j, i));
        if (p && q)
          dead = true;  // annihilated: the term is constant 0
        else if (p)
          c.set_code(i, Pcn::kPos);
        else if (q)
          c.set_code(i, Pcn::kNeg);
      }
      if (!dead) cubes.push_back(c);
    }
    // t ^ t == 0: drop duplicate cubes pairwise, keeping one copy of any
    // odd-multiplicity run. Sorting also canonicalizes the output order.
    std::sort(cubes.begin(), cubes.end());
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes.size();) {
      std::size_t run = i + 1;
      while (run < cubes.size() && cubes[run] == cubes[i]) ++run;
      if ((run - i) % 2 == 1) kept.push_back(cubes[i]);
      i = run;
    }
    return Cover(n_, std::move(kept));
  }

  const util::Status& stop_reason() const { return solver_->stop_reason(); }
  const sat::SolverStats& solver_stats() const { return solver_->stats(); }
  int num_solver_vars() const { return solver_->num_vars(); }
  int num_solver_clauses() const { return solver_->num_clauses(); }

 private:
  Var pos(int j, int i) const {
    return selector_base_[static_cast<std::size_t>(j)] + 2 * i;
  }
  Var neg(int j, int i) const {
    return selector_base_[static_cast<std::size_t>(j)] + 2 * i + 1;
  }

  /// Encode one more term level: selectors, per-minterm term values,
  /// the XOR ladder hop, and the level's output assumption.
  void add_level() {
    const int j = num_levels();
    selector_base_.push_back(solver_->num_vars());
    for (int i = 0; i < n_; ++i) {
      solver_->new_var();  // pos(j, i)
      solver_->new_var();  // neg(j, i)
    }
    std::vector<Var> term(m_count_);   // t(j, m)
    std::vector<Var> chain(m_count_);  // c(j, m)
    for (std::uint64_t m = 0; m < m_count_; ++m)
      term[static_cast<std::size_t>(m)] = solver_->new_var();
    if (j == 0) {
      chain = term;  // c(1, m) is t(1, m): no ladder hop at the base
    } else {
      for (std::uint64_t m = 0; m < m_count_; ++m)
        chain[static_cast<std::size_t>(m)] = solver_->new_var();
    }
    const Var sel = solver_->new_var();
    sel_.push_back(sel);

    std::vector<Lit> all_killers;
    for (std::uint64_t m = 0; m < m_count_; ++m) {
      const Lit t(term[static_cast<std::size_t>(m)], false);
      // t(j,m) <-> no selector kills the term on minterm m. The killer
      // for variable i is the selector of the phase m does NOT satisfy.
      all_killers.clear();
      all_killers.push_back(t);
      for (int i = 0; i < n_; ++i) {
        const Var killer = ((m >> i) & 1) ? neg(j, i) : pos(j, i);
        solver_->add_clause({~t, Lit(killer, true)});
        all_killers.push_back(Lit(killer, false));
      }
      solver_->add_clause(all_killers);
      const Lit c(chain[static_cast<std::size_t>(m)], false);
      if (j > 0) {
        // c(j,m) = c(j-1,m) ^ t(j,m), as the 4-clause biconditional.
        const Lit prev(prev_chain_[static_cast<std::size_t>(m)], false);
        solver_->add_clause({~c, prev, t});
        solver_->add_clause({~c, ~prev, ~t});
        solver_->add_clause({c, ~prev, t});
        solver_->add_clause({c, prev, ~t});
      }
      // sel(j) -> c(j,m) agrees with f on m.
      solver_->add_clause({Lit(sel, true), f_.get(m) ? c : ~c});
    }
    prev_chain_ = std::move(chain);
    if (j > 0) add_symmetry_break(j);
  }

  /// Break the j! term-permutation symmetry: force level j-1's selector
  /// vector <=_lex level j's. Any ESOP's terms can be sorted into this
  /// order, and the annihilated all-ones pattern is lex-maximal, so the
  /// "pad a short ESOP with dead terms" extension that makes the <= k
  /// query monotone still works -- dead terms sort to the end. The win
  /// is in the UNSAT proofs: without this, every refutation at k-1 has
  /// to implicitly refute all (k-1)! orderings of the same cover.
  ///
  /// Standard prefix-equality chain over the 2n selector bits: aux e_i
  /// is forced true while the prefixes agree, and (e_{i-1} & a_i) -> b_i
  /// enforces the order at the first disagreement.
  void add_symmetry_break(int j) {
    Lit eq(0, false);  // e_{i-1}; unused until i > 0
    for (int i = 0; i < 2 * n_; ++i) {
      const Lit a(selector_base_[static_cast<std::size_t>(j - 1)] + i, false);
      const Lit b(selector_base_[static_cast<std::size_t>(j)] + i, false);
      if (i == 0) {
        solver_->add_clause({~a, b});
      } else {
        solver_->add_clause({~eq, ~a, b});
      }
      if (i + 1 == 2 * n_) break;  // e over the full width is never used
      const Lit next(solver_->new_var(), false);
      if (i == 0) {
        // e_1 <- (a_1 = b_1).
        solver_->add_clause({~a, ~b, next});
        solver_->add_clause({a, b, next});
      } else {
        solver_->add_clause({~eq, ~a, ~b, next});
        solver_->add_clause({~eq, a, b, next});
      }
      eq = next;
    }
  }

  const tt::TruthTable& f_;
  int n_ = 0;
  std::uint64_t m_count_ = 0;
  std::unique_ptr<sat::Solver> solver_;
  std::vector<Var> selector_base_;  // per level: first selector var
  std::vector<Var> prev_chain_;     // c(j-1, m) for the next ladder hop
  std::vector<Var> sel_;            // per level: the assumption literal
};

}  // namespace

bool eval_esop(const Cover& cover, std::uint64_t minterm) {
  bool v = false;
  for (const Cube& c : cover.cubes()) v ^= c.eval(minterm);
  return v;
}

tt::TruthTable esop_truth_table(const Cover& cover) {
  tt::TruthTable out(cover.num_vars());
  for (std::uint64_t m = 0; m < out.num_minterms(); ++m)
    out.set(m, eval_esop(cover, m));
  return out;
}

Cover minterm_esop(const tt::TruthTable& f) {
  Cover out(f.num_vars());
  out.reserve(static_cast<int>(f.count_ones()));
  for (const std::uint64_t m : f.minterms()) {
    Cube c(f.num_vars());
    for (int i = 0; i < f.num_vars(); ++i)
      c.set_code(i, ((m >> i) & 1) ? Pcn::kPos : Pcn::kNeg);
    out.add(c);
  }
  return out;
}

namespace {

/// Verify a decoded cover point-for-point against f. Any mismatch means
/// the encoding or decode is broken: the contract is "internal error,
/// never a wrong answer".
bool verify_cover(const Cover& cover, const tt::TruthTable& f,
                  SynthesisStats& stats) {
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
    ++stats.verify_points;
    if (eval_esop(cover, m) != f.get(m)) return false;
  }
  return true;
}

void absorb_solver_stats(const Encoder& enc, SynthesisResult& result) {
  result.stats.conflicts = enc.solver_stats().conflicts;
  result.stats.propagations = enc.solver_stats().propagations;
  result.stats.decisions = enc.solver_stats().decisions;
  result.stats.encoded_terms = enc.num_levels();
  result.stats.solver_vars = enc.num_solver_vars();
  result.stats.solver_clauses = enc.num_solver_clauses();
}

}  // namespace

SynthesisResult synthesize_minimum(const tt::TruthTable& f,
                                   const SynthesisOptions& opt) {
  SynthesisResult result;
  SynthMetricsFlusher flusher(result);

  const int n = f.num_vars();
  if (n > kMaxVars) {
    result.status = util::Status::invalid(
        "esop: " + std::to_string(n) + " variables exceeds the cap of " +
        std::to_string(kMaxVars));
    return result;
  }
  if (f.is_constant_zero()) {
    result.cover = Cover(n);
    result.terms = 0;
    result.minimal = true;
    result.lower_bound = 0;
    result.upper_bound = 0;
    return result;
  }

  // The canonical minterm cover is the always-feasible starting bracket:
  // whatever happens below, the caller gets a correct ESOP back.
  const int on_set = static_cast<int>(f.count_ones());
  result.cover = minterm_esop(f);
  result.terms = on_set;
  result.upper_bound = on_set;
  result.lower_bound = 1;
  if (!verify_cover(result.cover, f, result.stats)) {
    result.status = util::Status::internal("esop: minterm fallback failed verification");
    return result;
  }

  int cap = opt.max_terms >= 0 ? opt.max_terms
                               : std::min(on_set, kDefaultMaxTerms);
  cap = std::min(cap, on_set);
  if (cap < 1) {
    result.status = util::Status::budget(
        "esop: term cap 0 cannot fit a non-zero function (minimum >= 1)");
    return result;
  }

  Encoder enc(f, opt);
  int lo = 1;        // minimal size is proven to be >= lo
  int best = on_set; // best achieved size (the fallback, then models)
  bool have_model = false;

  // Gallop upward (1, 2, 4, ...) until the first SAT level brackets the
  // minimum from above, then binary-search [lo, best) on the same solver.
  int probe = 1;
  while (true) {
    enc.ensure_encoded(probe);
    const LBool r = enc.query(probe);
    if (r == LBool::kUndef) {
      ++result.stats.queries_undef;
      absorb_solver_stats(enc, result);
      result.status = enc.stop_reason().ok()
                          ? util::Status::budget("esop: solver stopped early")
                          : enc.stop_reason();
      return result;  // partial: [lo, on_set] bracket, fallback cover
    }
    if (r == LBool::kTrue) {
      ++result.stats.queries_sat;
      Cover decoded = enc.decode(probe);
      if (!verify_cover(decoded, f, result.stats) || decoded.size() < lo) {
        absorb_solver_stats(enc, result);
        result.status = util::Status::internal(
            "esop: decoded model failed verification at k=" +
            std::to_string(probe));
        return result;
      }
      best = decoded.size();
      result.cover = std::move(decoded);
      result.terms = best;
      result.upper_bound = best;
      have_model = true;
      break;
    }
    ++result.stats.queries_unsat;
    lo = probe + 1;
    result.lower_bound = lo;
    if (probe >= cap) {
      absorb_solver_stats(enc, result);
      if (cap >= on_set) {
        // The canonical minterm cover IS an ESOP of size on_set, so
        // UNSAT at on_set can only mean the encoding is wrong.
        result.status = util::Status::internal(
            "esop: encoding refuted the canonical minterm cover at k=" +
            std::to_string(on_set));
      } else {
        result.status = util::Status::budget(
            "esop: term cap " + std::to_string(cap) +
            " exhausted without a feasible ESOP (minimum >= " +
            std::to_string(lo) + ")");
      }
      return result;
    }
    probe = std::min(2 * probe, cap);
  }

  while (lo < best) {
    const int mid = lo + (best - lo) / 2;  // lo <= mid < best
    enc.ensure_encoded(mid);
    const LBool r = enc.query(mid);
    if (r == LBool::kUndef) {
      ++result.stats.queries_undef;
      absorb_solver_stats(enc, result);
      result.status = enc.stop_reason().ok()
                          ? util::Status::budget("esop: solver stopped early")
                          : enc.stop_reason();
      result.lower_bound = lo;
      return result;  // partial: best verified cover so far
    }
    if (r == LBool::kTrue) {
      ++result.stats.queries_sat;
      Cover decoded = enc.decode(mid);
      if (!verify_cover(decoded, f, result.stats) || decoded.size() < lo) {
        absorb_solver_stats(enc, result);
        result.status = util::Status::internal(
            "esop: decoded model failed verification at k=" +
            std::to_string(mid));
        return result;
      }
      best = decoded.size();
      result.cover = std::move(decoded);
      result.terms = best;
      result.upper_bound = best;
    } else {
      ++result.stats.queries_unsat;
      lo = mid + 1;
    }
  }

  (void)have_model;
  result.lower_bound = best;
  result.minimal = true;
  absorb_solver_stats(enc, result);
  return result;
}

}  // namespace l2l::esop
