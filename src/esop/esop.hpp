#pragma once
// SAT-based exact ESOP synthesis -- the eighth engine.
//
// An ESOP (exclusive-or sum of products) represents a Boolean function as
// the XOR of product terms: f = t_1 ^ t_2 ^ ... ^ t_k. This module answers
// the *exact* question "what is the minimum k for f?" by encoding "does f
// have an ESOP with <= k terms?" as CNF over selector/polarity variables
// and solving it with the in-repo CDCL solver (sat::Solver). The search
// over k runs on ONE incremental solver: each candidate term level adds
// its clauses once, and a per-level assumption literal activates the
// constraint "the XOR of the first k terms equals f", so galloping up and
// binary-searching down reuse every learnt clause.
//
// Encoding (per term level j, over an n-variable function with 2^n
// minterms; see DESIGN.md "Exact synthesis (ESOP)" for the full layout):
//
//   pos(j,i), neg(j,i)  selector/polarity vars: x_i / x_i' appears in
//                       term j. Both set = the term is annihilated
//                       (constant 0), which is what makes the query
//                       monotone in k -- an ESOP with < k live terms
//                       extends to k by adding annihilated terms.
//   t(j,m)              term j's value on minterm m, defined by
//                       t <-> AND_i !killer(j,i,m) where killer is the
//                       selector that zeroes the term on m's phase of i.
//   c(j,m)              XOR ladder: c(1,m) = t(1,m),
//                       c(j,m) = c(j-1,m) ^ t(j,m).
//   sel(j)              level assumption: sel(j) -> (c(j,m) = f(m)) for
//                       every minterm m. solve({sel(k)}) is the <= k query.
//
// The decoded model is ALWAYS re-evaluated against the input truth table
// before it is returned; a mismatch is an internal error (StatusCode::
// kInternalError, tool exit 5), never a wrong answer. Budget/conflict
// exhaustion returns the best verified cover found so far plus proven
// [lower_bound, upper_bound] brackets -- a partial Status, not a throw.
//
// Everything here is sequential and deterministic: no wall-clock reads,
// no unordered containers, and the esop.* obs counters are flushed once
// per synthesize call, so exports are byte-identical at any L2L_THREADS.

#include <cstdint>

#include "cubes/cover.hpp"
#include "tt/truth_table.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"

namespace l2l::esop {

/// Hard arity cap: the encoding enumerates all 2^n minterms, so requests
/// beyond this are rejected up front (StatusCode::kInvalidInput) before
/// any allocation happens.
inline constexpr int kMaxVars = 16;

/// Cap on encoded term levels when the caller does not set one: the CNF
/// grows by O(2^n * n) clauses per level, so a runaway search must stop
/// at a deterministic point instead of exhausting memory.
inline constexpr int kDefaultMaxTerms = 128;

struct SynthesisOptions {
  /// Cap on the number of product terms considered. -1 = derive from the
  /// function (min of the ON-set size and kDefaultMaxTerms). If the true
  /// minimum exceeds the cap the result is a partial Status
  /// (kBudgetExceeded) carrying the canonical minterm fallback cover.
  int max_terms = -1;
  /// Conflict cap per SAT query (-1 = unlimited). Deterministic.
  std::int64_t conflict_limit = -1;
  /// Optional resource guard threaded into every SAT query (not owned;
  /// must outlive the call). Step unit: one SAT propagation. A tripped
  /// guard stops the search at the next conflict boundary.
  const util::Budget* budget = nullptr;
};

struct SynthesisStats {
  int queries_sat = 0;
  int queries_unsat = 0;
  int queries_undef = 0;   ///< stopped by conflict limit / budget
  int encoded_terms = 0;   ///< term levels built into the solver
  std::int64_t solver_vars = 0;
  std::int64_t solver_clauses = 0;
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  std::int64_t decisions = 0;
  std::int64_t verify_points = 0;  ///< minterms re-evaluated during verify
};

struct SynthesisResult {
  /// The best verified ESOP found: cubes are XOR-combined (NOT the OR
  /// semantics of a plain Cover). Present whenever upper_bound >= 0,
  /// even on budget exhaustion.
  cubes::Cover cover;
  int terms = 0;          ///< cover.size(), the achieved term count
  bool minimal = false;   ///< proven: no ESOP with terms-1 products exists
  int lower_bound = 0;    ///< proven lower bound on the minimum size
  int upper_bound = -1;   ///< best achieved size; -1 = nothing found (n/a)
  /// kOk when minimality was proven; kBudgetExceeded with the partial
  /// bracket when a guard tripped; kInvalidInput for arity violations;
  /// kInternalError if a decoded model failed verification.
  util::Status status;
  SynthesisStats stats;
};

/// Find a minimum-term ESOP for `f`. Deterministic for deterministic
/// options (no wall-clock deadline in the budget).
SynthesisResult synthesize_minimum(const tt::TruthTable& f,
                                   const SynthesisOptions& opt = {});

/// Evaluate a cover under ESOP (XOR-of-products) semantics on a minterm.
bool eval_esop(const cubes::Cover& cover, std::uint64_t minterm);

/// Expand an ESOP cover to its truth table (num_vars must be small).
tt::TruthTable esop_truth_table(const cubes::Cover& cover);

/// The canonical fallback: one term per ON minterm. Minterms are pairwise
/// disjoint, so their XOR equals their OR equals f. Always feasible.
cubes::Cover minterm_esop(const tt::TruthTable& f);

}  // namespace l2l::esop
