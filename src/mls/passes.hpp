#pragma once
// Network-level multi-level synthesis passes (the SIS command set the MOOC
// exposed through its cloud portal): sweep, eliminate, kernel/cube
// extraction, resubstitution, and don't-care simplification.
//
// Every pass preserves the network's primary-output functions; the test
// suite verifies this with BDD/SAT equivalence checks.

#include "network/network.hpp"

namespace l2l::mls {

/// Constant propagation plus buffer/inverter absorption, then removal of
/// dangling logic. Returns number of nodes eliminated.
int sweep(network::Network& net);

/// Collapse logic nodes into their fanouts when doing so does not grow the
/// network by more than `threshold` literals (SIS `eliminate`). Nodes used
/// in negative phase are complemented via URP when small enough.
/// Returns number of nodes eliminated.
int eliminate(network::Network& net, int threshold = 0);

/// Greedy common-kernel extraction (SIS `gkx`-lite): repeatedly materialize
/// the kernel with the best aggregate literal savings as a new node and
/// divide it into every cover it benefits. Returns new node count.
int extract_kernels(network::Network& net, int max_new_nodes = 1000);

/// Greedy common-cube extraction (SIS `gcx`-lite). Returns new node count.
int extract_cubes(network::Network& net, int max_new_nodes = 1000);

/// Algebraic resubstitution: try dividing each node by every other node's
/// function (positive phase). Returns number of successful substitutions.
int resubstitute(network::Network& net);

/// Two-level minimize every node cover independently (espresso, no DCs).
/// Returns literal savings.
int simplify_nodes(network::Network& net);

/// Espresso each node against its satisfiability don't-cares, computed
/// exactly with BDDs over the primary inputs. Nodes with more than
/// `max_fanins` fanins, or networks with more than `max_inputs` primary
/// inputs, are skipped. Returns literal savings.
int simplify_with_sdc(network::Network& net, int max_fanins = 8,
                      int max_inputs = 20);

}  // namespace l2l::mls
