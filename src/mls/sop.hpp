#pragma once
// The algebraic model's working representation (Week 4: "Logic Synthesis
// II: algebraic model, factoring, don't cares").
//
// Multi-level algebra treats x and x' as *distinct, unrelated* literals.
// A Term is a sorted product of global literals; an Sop is a sum of terms.
// Global literal encoding: 2*signal + (negated ? 1 : 0), where signal is a
// network NodeId.

#include <string>
#include <vector>

#include "network/network.hpp"

namespace l2l::mls {

using GLit = int;

inline GLit mk_glit(network::NodeId signal, bool negated) {
  return 2 * signal + (negated ? 1 : 0);
}
inline network::NodeId glit_signal(GLit l) { return l / 2; }
inline bool glit_negated(GLit l) { return l & 1; }

/// A product term: strictly increasing literal list. Empty = constant 1.
using Term = std::vector<GLit>;

/// A sum of products. Empty = constant 0.
using Sop = std::vector<Term>;

/// Extract a node's SOP in global-literal form.
Sop sop_of_node(const network::Network& net, network::NodeId id);

/// Install an SOP as the node's function (fanins recomputed from the
/// literals' signals).
void set_node_sop(network::Network& net, network::NodeId id, const Sop& sop);

/// Total literal count.
int sop_literals(const Sop& f);

/// Does term `a` contain every literal of `b` (b divides a)?
bool term_contains(const Term& a, const Term& b);

/// Product of two terms (nullopt-free: algebraic model assumes disjoint
/// supports, but shared literals simply merge; x * x' is the caller's
/// responsibility to avoid).
Term term_product(const Term& a, const Term& b);

/// a / b: remove b's literals from a. Precondition: term_contains(a, b).
Term term_quotient(const Term& a, const Term& b);

/// Largest common cube (literal intersection) of all terms.
Term common_cube(const Sop& f);

/// Is the SOP cube-free (common cube is empty and it has >= 2 terms)?
bool is_cube_free(const Sop& f);

/// Normalize: sort terms, drop duplicates and single-cube containments.
Sop normalized(Sop f);

/// Weak (algebraic) division: f = d * quotient + remainder, where the
/// product is algebraic. Returns {quotient, remainder}; quotient is empty
/// when d does not divide f.
std::pair<Sop, Sop> divide(const Sop& f, const Sop& d);

/// Algebraic product d * q plus remainder r.
Sop multiply_add(const Sop& d, const Sop& q, const Sop& r);

/// Human-readable rendering using network names, e.g. "a b' + c".
std::string sop_to_string(const network::Network& net, const Sop& f);

}  // namespace l2l::mls
