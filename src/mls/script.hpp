#pragma once
// The canned optimization script, in the spirit of SIS's script.algebraic:
// the sequence of passes the course walks through in Week 4.

#include <string>

#include "network/network.hpp"

namespace l2l::mls {

struct ScriptStats {
  int literals_before = 0;
  int literals_after = 0;
  int nodes_before = 0;
  int nodes_after = 0;
  int swept = 0;
  int eliminated = 0;
  int kernels_extracted = 0;
  int cubes_extracted = 0;
  int resubstitutions = 0;

  std::string to_string() const;
};

struct ScriptOptions {
  int eliminate_threshold = 0;
  bool use_sdc_simplify = true;
  int passes = 2;
};

/// Run the algebraic script in place. The network's primary-output
/// functions are preserved (verified by the test suite with BDD/SAT
/// equivalence checks).
ScriptStats optimize(network::Network& net, const ScriptOptions& opt = {});

}  // namespace l2l::mls
