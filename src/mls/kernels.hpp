#pragma once
// Kernels and co-kernels of an algebraic SOP (Brayton/McMullen): the
// cube-free primary divisors that drive factoring and common-subexpression
// extraction in MIS/SIS [11,12].

#include <vector>

#include "mls/sop.hpp"

namespace l2l::mls {

struct KernelEntry {
  Sop kernel;       ///< cube-free quotient
  Term co_kernel;   ///< the cube it was divided by
};

/// All kernels of f (including f itself when cube-free), via the classic
/// recursive literal-cofactoring algorithm with the index-ordering prune.
std::vector<KernelEntry> all_kernels(const Sop& f);

/// Level-0 kernels only (kernels with no kernels other than themselves).
std::vector<KernelEntry> level0_kernels(const Sop& f);

/// Literal-count value of extracting divisor d from f: literals saved when
/// f is rewritten as d*q + r with a single new literal standing for d.
/// Negative values mean extraction does not pay.
int division_value(const Sop& f, const Sop& d);

}  // namespace l2l::mls
