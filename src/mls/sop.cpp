#include "mls/sop.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace l2l::mls {

using network::Network;
using network::NodeId;

Sop sop_of_node(const Network& net, NodeId id) {
  const auto& n = net.node(id);
  Sop out;
  out.reserve(static_cast<std::size_t>(n.cover.size()));
  for (const auto& cube : n.cover.cubes()) {
    Term t;
    for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k) {
      const auto code = cube.code(k);
      if (code == cubes::Pcn::kDontCare) continue;
      t.push_back(mk_glit(n.fanins[static_cast<std::size_t>(k)],
                          code == cubes::Pcn::kNeg));
    }
    std::sort(t.begin(), t.end());
    out.push_back(std::move(t));
  }
  return normalized(std::move(out));
}

void set_node_sop(Network& net, NodeId id, const Sop& sop) {
  // Collect the signal set.
  std::set<NodeId> signals;
  for (const auto& t : sop)
    for (const GLit l : t) signals.insert(glit_signal(l));
  std::vector<NodeId> fanins(signals.begin(), signals.end());
  std::map<NodeId, int> index;
  for (std::size_t k = 0; k < fanins.size(); ++k)
    index[fanins[k]] = static_cast<int>(k);

  cubes::Cover cover(static_cast<int>(fanins.size()));
  for (const auto& t : sop) {
    cubes::Cube c(static_cast<int>(fanins.size()));
    for (const GLit l : t) {
      const int k = index[glit_signal(l)];
      const auto want = glit_negated(l) ? cubes::Pcn::kNeg : cubes::Pcn::kPos;
      if (c.code(k) != cubes::Pcn::kDontCare && c.code(k) != want)
        c.set_code(k, cubes::Pcn::kEmpty);  // x & x' in one term: empty
      else
        c.set_code(k, want);
    }
    cover.add(std::move(c));
  }
  net.set_function(id, std::move(fanins), std::move(cover));
}

int sop_literals(const Sop& f) {
  int n = 0;
  for (const auto& t : f) n += static_cast<int>(t.size());
  return n;
}

bool term_contains(const Term& a, const Term& b) {
  return std::includes(a.begin(), a.end(), b.begin(), b.end());
}

Term term_product(const Term& a, const Term& b) {
  Term out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Term term_quotient(const Term& a, const Term& b) {
  Term out;
  out.reserve(a.size() - b.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

Term common_cube(const Sop& f) {
  if (f.empty()) return {};
  Term acc = f.front();
  for (std::size_t i = 1; i < f.size() && !acc.empty(); ++i) {
    Term next;
    std::set_intersection(acc.begin(), acc.end(), f[i].begin(), f[i].end(),
                          std::back_inserter(next));
    acc = std::move(next);
  }
  return acc;
}

bool is_cube_free(const Sop& f) {
  return f.size() >= 2 && common_cube(f).empty();
}

Sop normalized(Sop f) {
  for (auto& t : f) {
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
  }
  std::sort(f.begin(), f.end());
  f.erase(std::unique(f.begin(), f.end()), f.end());
  // Single-cube containment: drop terms containing another term.
  Sop out;
  for (std::size_t i = 0; i < f.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < f.size(); ++j) {
      if (i == j) continue;
      if (term_contains(f[i], f[j]) && !(f[i] == f[j] && i < j)) {
        contained = true;
        break;
      }
    }
    if (!contained) out.push_back(f[i]);
  }
  return out;
}

std::pair<Sop, Sop> divide(const Sop& f, const Sop& d) {
  if (d.empty()) throw std::invalid_argument("divide: divisor is constant 0");
  // Quotient = intersection over divisor terms of {c / d_i : d_i | c}.
  Sop quotient;
  bool first = true;
  for (const auto& dt : d) {
    Sop partial;
    for (const auto& ft : f)
      if (term_contains(ft, dt)) partial.push_back(term_quotient(ft, dt));
    std::sort(partial.begin(), partial.end());
    if (first) {
      quotient = std::move(partial);
      first = false;
    } else {
      Sop meet;
      std::set_intersection(quotient.begin(), quotient.end(), partial.begin(),
                            partial.end(), std::back_inserter(meet));
      quotient = std::move(meet);
    }
    if (quotient.empty()) break;
  }
  // Remainder = f minus the product terms.
  std::set<Term> product_terms;
  for (const auto& qt : quotient)
    for (const auto& dt : d) product_terms.insert(term_product(qt, dt));
  Sop remainder;
  for (const auto& ft : f)
    if (!product_terms.count(ft)) remainder.push_back(ft);
  return {quotient, remainder};
}

Sop multiply_add(const Sop& d, const Sop& q, const Sop& r) {
  Sop out = r;
  for (const auto& dt : d)
    for (const auto& qt : q) out.push_back(term_product(dt, qt));
  return normalized(std::move(out));
}

std::string sop_to_string(const Network& net, const Sop& f) {
  if (f.empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i) out += " + ";
    if (f[i].empty()) {
      out += "1";
      continue;
    }
    for (std::size_t k = 0; k < f[i].size(); ++k) {
      if (k) out += " ";
      out += net.node(glit_signal(f[i][k])).name;
      if (glit_negated(f[i][k])) out += "'";
    }
  }
  return out;
}

}  // namespace l2l::mls
