#include "mls/kernels.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace l2l::mls {
namespace {

/// Distinct literals of f in ascending order.
std::vector<GLit> literals_of(const Sop& f) {
  std::set<GLit> s;
  for (const auto& t : f)
    for (const GLit l : t) s.insert(l);
  return {s.begin(), s.end()};
}

int count_terms_with(const Sop& f, GLit l) {
  int n = 0;
  for (const auto& t : f)
    if (std::binary_search(t.begin(), t.end(), l)) ++n;
  return n;
}

struct KernelCollector {
  std::set<std::pair<Sop, Term>> seen;
  std::vector<KernelEntry> out;
  std::vector<GLit> lits;  // global literal universe of the root SOP

  void record(const Sop& k, const Term& co) {
    auto key = std::make_pair(k, co);
    if (seen.insert(std::move(key)).second) out.push_back({k, co});
  }

  // The classic KERNEL(j, g) recursion. `co` is the accumulated co-kernel.
  void recurse(std::size_t j, const Sop& g, const Term& co) {
    for (std::size_t i = j; i < lits.size(); ++i) {
      const GLit l = lits[i];
      if (count_terms_with(g, l) < 2) continue;
      // c = common cube of the terms of g containing l.
      Sop with_l;
      for (const auto& t : g)
        if (std::binary_search(t.begin(), t.end(), l)) with_l.push_back(t);
      Term c = common_cube(with_l);
      // Prune: if c contains a literal with index < i, this kernel will be
      // (was) found from that literal instead.
      bool pruned = false;
      for (const GLit cl : c) {
        const auto pos = std::lower_bound(lits.begin(), lits.end(), cl) -
                         lits.begin();
        if (static_cast<std::size_t>(pos) < i) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      Sop quotient;
      for (const auto& t : with_l) quotient.push_back(term_quotient(t, c));
      std::sort(quotient.begin(), quotient.end());
      const Term new_co = term_product(co, c);
      record(quotient, new_co);
      recurse(i + 1, quotient, new_co);
    }
  }
};

}  // namespace

std::vector<KernelEntry> all_kernels(const Sop& f) {
  KernelCollector kc;
  kc.lits = literals_of(f);
  if (is_cube_free(f)) kc.record(f, {});
  kc.recurse(0, f, {});
  return kc.out;
}

std::vector<KernelEntry> level0_kernels(const Sop& f) {
  std::vector<KernelEntry> out;
  for (const auto& k : all_kernels(f)) {
    // Level 0: no literal appears in >= 2 terms of the kernel.
    bool level0 = true;
    for (const GLit l : literals_of(k.kernel))
      if (count_terms_with(k.kernel, l) >= 2) {
        level0 = false;
        break;
      }
    if (level0) out.push_back(k);
  }
  return out;
}

int division_value(const Sop& f, const Sop& d) {
  const auto [q, r] = divide(f, d);
  if (q.empty()) return -sop_literals(d) - 1;
  // Rewritten cost: q terms each gain 1 literal (the new signal), plus the
  // remainder, plus the divisor node itself.
  const int before = sop_literals(f);
  const int after = sop_literals(q) + static_cast<int>(q.size()) +
                    sop_literals(r) + sop_literals(d);
  return before - after;
}

}  // namespace l2l::mls
