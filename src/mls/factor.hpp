#pragma once
// Algebraic factoring: rewrite an SOP as a nested AND/OR expression with
// fewer literals (Week 4). Implements the "good factor" recursion: divide
// by the best kernel, factor quotient/divisor/remainder recursively.

#include <memory>
#include <string>

#include "mls/sop.hpp"

namespace l2l::mls {

/// A factored Boolean expression.
struct Expr {
  enum class Kind { kConst0, kConst1, kLit, kAnd, kOr };
  Kind kind = Kind::kConst0;
  GLit lit = 0;                   ///< valid when kind == kLit
  std::vector<Expr> operands;     ///< valid for kAnd / kOr

  static Expr constant(bool v) {
    Expr e;
    e.kind = v ? Kind::kConst1 : Kind::kConst0;
    return e;
  }
  static Expr literal(GLit l) {
    Expr e;
    e.kind = Kind::kLit;
    e.lit = l;
    return e;
  }
};

/// Number of literal leaves in the expression (the factored-form cost).
int expr_literals(const Expr& e);

/// Flatten back to an SOP (for verification).
Sop expr_to_sop(const Expr& e);

/// Render with network names, e.g. "(a + b') (c + d) + e".
std::string expr_to_string(const network::Network& net, const Expr& e);

/// Good-factor the SOP. The result computes the same algebraic function
/// with expr_literals(result) <= sop_literals(f).
Expr factor(const Sop& f);

}  // namespace l2l::mls
