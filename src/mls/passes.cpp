#include "mls/passes.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "cubes/urp.hpp"
#include "espresso/minimize.hpp"
#include "mls/kernels.hpp"
#include "mls/sop.hpp"
#include "network/bdd_build.hpp"
#include "util/strings.hpp"

namespace l2l::mls {

using network::Network;
using network::NodeId;
using network::NodeType;

namespace {

/// Is the node's function constant? Returns 0/1, or -1 if not constant.
int constant_value(const Network& net, NodeId id) {
  const auto& n = net.node(id);
  if (n.type != NodeType::kLogic) return -1;
  if (n.cover.empty()) return 0;
  for (const auto& c : n.cover.cubes())
    if (c.is_universal()) return 1;
  if (cubes::is_tautology(n.cover)) return 1;
  return -1;
}

/// If the node is a buffer/inverter (function == single literal), return
/// that literal; otherwise nullopt.
std::optional<GLit> as_single_literal(const Network& net, NodeId id) {
  const auto& n = net.node(id);
  if (n.type != NodeType::kLogic) return std::nullopt;
  const Sop s = sop_of_node(net, id);
  if (s.size() == 1 && s[0].size() == 1) return s[0][0];
  return std::nullopt;
}

/// Substitute a constant value for a signal inside an SOP.
Sop substitute_constant(const Sop& f, NodeId signal, bool value) {
  Sop out;
  for (const auto& t : f) {
    Term nt;
    bool dead = false;
    for (const GLit l : t) {
      if (glit_signal(l) != signal) {
        nt.push_back(l);
        continue;
      }
      const bool lit_value = glit_negated(l) ? !value : value;
      if (!lit_value) {
        dead = true;  // term contains a false literal
        break;
      }
      // true literal: drop it
    }
    if (!dead) out.push_back(std::move(nt));
  }
  return normalized(std::move(out));
}

/// Substitute literal `from` (and its complement) by literal `to` (phase-
/// adjusted) inside an SOP -- used for buffer/inverter absorption.
Sop substitute_literal(const Sop& f, NodeId signal, GLit target) {
  Sop out;
  for (const auto& t : f) {
    Term nt;
    for (const GLit l : t) {
      if (glit_signal(l) != signal) {
        nt.push_back(l);
      } else {
        // l = signal^phase; signal = target (a literal). So l becomes
        // target with phase XORed.
        const GLit repl = mk_glit(glit_signal(target),
                                  glit_negated(target) ^ glit_negated(l));
        nt.push_back(repl);
      }
    }
    std::sort(nt.begin(), nt.end());
    // x & x' may appear after substitution: detect and drop the term.
    bool contradictory = false;
    for (std::size_t i = 0; i + 1 < nt.size(); ++i)
      if (glit_signal(nt[i]) == glit_signal(nt[i + 1]) && nt[i] != nt[i + 1])
        contradictory = true;
    nt.erase(std::unique(nt.begin(), nt.end()), nt.end());
    if (!contradictory) out.push_back(std::move(nt));
  }
  return normalized(std::move(out));
}

/// Transitive fanin set of `id` (including id).
std::set<NodeId> transitive_fanin(const Network& net, NodeId id) {
  std::set<NodeId> seen;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const NodeId f : net.node(n).fanins) stack.push_back(f);
  }
  return seen;
}

/// The SOP of a node's complement (via URP on its local cover), expressed
/// in global literals. nullopt when too wide to complement cheaply.
std::optional<Sop> complement_sop(const Network& net, NodeId id,
                                  int max_fanins = 10) {
  const auto& n = net.node(id);
  if (static_cast<int>(n.fanins.size()) > max_fanins) return std::nullopt;
  const auto comp = cubes::complement(n.cover);
  Sop out;
  for (const auto& cube : comp.cubes()) {
    Term t;
    for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k) {
      const auto code = cube.code(k);
      if (code == cubes::Pcn::kDontCare) continue;
      t.push_back(mk_glit(n.fanins[static_cast<std::size_t>(k)],
                          code == cubes::Pcn::kNeg));
    }
    std::sort(t.begin(), t.end());
    out.push_back(std::move(t));
  }
  return normalized(std::move(out));
}

/// Substitute a full SOP (and its complement SOP) for a signal inside f.
/// Positive occurrences distribute `pos`; negative occurrences distribute
/// `neg`.
Sop substitute_sop(const Sop& f, NodeId signal, const Sop& pos, const Sop& neg) {
  Sop out;
  for (const auto& t : f) {
    // Split the term into the part without `signal` and the phases used.
    Term rest;
    bool uses_pos = false, uses_neg = false;
    for (const GLit l : t) {
      if (glit_signal(l) == signal) {
        (glit_negated(l) ? uses_neg : uses_pos) = true;
      } else {
        rest.push_back(l);
      }
    }
    if (!uses_pos && !uses_neg) {
      out.push_back(t);
      continue;
    }
    Sop expansion{rest};
    if (uses_pos) {
      Sop next;
      for (const auto& a : expansion)
        for (const auto& b : pos) next.push_back(term_product(a, b));
      expansion = std::move(next);
    }
    if (uses_neg) {
      Sop next;
      for (const auto& a : expansion)
        for (const auto& b : neg) next.push_back(term_product(a, b));
      expansion = std::move(next);
    }
    // Drop contradictory terms (x and x' in one product).
    for (auto& nt : expansion) {
      std::sort(nt.begin(), nt.end());
      bool contradictory = false;
      for (std::size_t i = 0; i + 1 < nt.size(); ++i)
        if (glit_signal(nt[i]) == glit_signal(nt[i + 1]) && nt[i] != nt[i + 1])
          contradictory = true;
      if (!contradictory) {
        nt.erase(std::unique(nt.begin(), nt.end()), nt.end());
        out.push_back(std::move(nt));
      }
    }
  }
  return normalized(std::move(out));
}

}  // namespace

int sweep(Network& net) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto fanouts = net.fanouts();
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.is_dead(id)) continue;
      const auto& n = net.node(id);
      if (n.type != NodeType::kLogic) continue;
      if (fanouts[static_cast<std::size_t>(id)].empty()) continue;

      const int cv = constant_value(net, id);
      const auto lit = cv < 0 ? as_single_literal(net, id) : std::nullopt;
      if (cv < 0 && !lit) continue;
      // Don't rewrite through primary outputs' driver itself; rewriting its
      // *fanouts* is always safe.
      for (const NodeId fo : fanouts[static_cast<std::size_t>(id)]) {
        if (net.is_dead(fo)) continue;
        Sop s = sop_of_node(net, fo);
        s = cv >= 0 ? substitute_constant(s, id, cv == 1)
                    : substitute_literal(s, id, *lit);
        set_node_sop(net, fo, s);
        changed = true;
      }
    }
  }
  removed += net.sweep_dangling();
  return removed;
}

int eliminate(Network& net, int threshold) {
  int eliminated = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto fanouts = net.fanouts();
    // Output drivers cannot be eliminated (their name is the interface).
    std::set<NodeId> output_set(net.outputs().begin(), net.outputs().end());
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.is_dead(id) || output_set.count(id)) continue;
      const auto& n = net.node(id);
      if (n.type != NodeType::kLogic) continue;
      std::vector<NodeId> fos = fanouts[static_cast<std::size_t>(id)];
      std::sort(fos.begin(), fos.end());
      fos.erase(std::unique(fos.begin(), fos.end()), fos.end());
      if (fos.empty()) continue;

      const Sop pos = sop_of_node(net, id);
      const auto neg_opt = complement_sop(net, id);
      if (!neg_opt) continue;

      // Trial-rewrite all fanouts; compute the literal delta.
      int before = sop_literals(pos);
      int after = 0;
      std::vector<std::pair<NodeId, Sop>> rewrites;
      bool feasible = true;
      for (const NodeId fo : fos) {
        if (net.is_dead(fo)) continue;
        const Sop s = sop_of_node(net, fo);
        const Sop ns = substitute_sop(s, id, pos, *neg_opt);
        // Guard against blowup.
        if (sop_literals(ns) > 4 * (sop_literals(s) + before) + 16) {
          feasible = false;
          break;
        }
        before += sop_literals(s);
        after += sop_literals(ns);
        rewrites.emplace_back(fo, ns);
      }
      if (!feasible || after - before > threshold) continue;
      for (auto& [fo, s] : rewrites) set_node_sop(net, fo, s);
      changed = true;
      ++eliminated;
    }
    net.sweep_dangling();
  }
  return eliminated;
}

namespace {

int g_extract_counter = 0;

std::string fresh_name(const Network& net, const char* prefix) {
  for (;;) {
    auto name = util::format("%s%d", prefix, g_extract_counter++);
    if (!net.find(name)) return name;
  }
}

}  // namespace

int extract_kernels(Network& net, int max_new_nodes) {
  int created = 0;
  while (created < max_new_nodes) {
    // Gather kernels from every logic node. Per-node saving excludes the
    // divisor's own literal cost, which is paid exactly once on extraction.
    auto node_saving = [](const Sop& f, const Sop& d) {
      const auto [q, r] = divide(f, d);
      if (q.empty()) return -1;
      return sop_literals(f) -
             (sop_literals(q) + static_cast<int>(q.size()) + sop_literals(r));
    };
    std::map<Sop, int> saving;  // canonical kernel -> sum of per-node savings
    std::vector<NodeId> logic_nodes;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.is_dead(id) || net.node(id).type != NodeType::kLogic) continue;
      logic_nodes.push_back(id);
      const Sop f = sop_of_node(net, id);
      if (f.size() < 2) continue;
      for (const auto& k : all_kernels(f)) {
        if (k.kernel.size() < 2) continue;
        const int s = node_saving(f, k.kernel);
        if (s > 0) saving[k.kernel] += s;
      }
    }
    const Sop* best = nullptr;
    int best_value = 0;
    for (const auto& [k, s] : saving) {
      const int v = s - sop_literals(k);  // divisor built once
      if (v > best_value) {
        best = &k;
        best_value = v;
      }
    }
    if (!best || best_value <= 0) break;

    // Materialize the kernel as a new node.
    Network& n = net;
    const auto name = fresh_name(n, "ker_");
    const NodeId knode = n.add_logic(name, {}, cubes::Cover(0));
    set_node_sop(n, knode, *best);
    ++created;

    // Divide it into every node that benefits (skip its own fanin cone to
    // stay acyclic).
    const auto cone = transitive_fanin(net, knode);
    for (const NodeId id : logic_nodes) {
      if (cone.count(id)) continue;
      const Sop f = sop_of_node(net, id);
      if (node_saving(f, *best) <= 0) continue;
      const auto [q, r] = divide(f, *best);
      if (q.empty()) continue;
      Sop rewritten = r;
      for (const auto& qt : q)
        rewritten.push_back(term_product(qt, Term{mk_glit(knode, false)}));
      set_node_sop(net, id, normalized(std::move(rewritten)));
    }
  }
  net.sweep_dangling();
  return created;
}

int extract_cubes(Network& net, int max_new_nodes) {
  int created = 0;
  while (created < max_new_nodes) {
    // Candidate cubes: pairwise term intersections of size >= 2.
    std::map<Term, int> occurrences;
    std::vector<std::pair<NodeId, Sop>> sops;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.is_dead(id) || net.node(id).type != NodeType::kLogic) continue;
      sops.emplace_back(id, sop_of_node(net, id));
    }
    std::set<Term> candidates;
    std::vector<Term> all_terms;
    for (const auto& [id, f] : sops)
      for (const auto& t : f)
        if (t.size() >= 2) all_terms.push_back(t);
    for (std::size_t i = 0; i < all_terms.size(); ++i)
      for (std::size_t j = i + 1; j < all_terms.size(); ++j) {
        Term c;
        std::set_intersection(all_terms[i].begin(), all_terms[i].end(),
                              all_terms[j].begin(), all_terms[j].end(),
                              std::back_inserter(c));
        if (c.size() >= 2) candidates.insert(std::move(c));
      }
    for (const auto& t : all_terms)
      for (const auto& c : candidates)
        if (term_contains(t, c))
          ++occurrences[c];
    const Term* best = nullptr;
    int best_value = 0;
    for (const auto& [c, occ] : occurrences) {
      // Replacing |c| literals by 1 in occ terms; new node costs |c|.
      const int v = occ * (static_cast<int>(c.size()) - 1) -
                    static_cast<int>(c.size());
      if (v > best_value) {
        best = &c;
        best_value = v;
      }
    }
    if (!best || best_value <= 0) break;

    const auto name = fresh_name(net, "cub_");
    const NodeId cnode = net.add_logic(name, {}, cubes::Cover(0));
    set_node_sop(net, cnode, Sop{*best});
    ++created;

    const auto cone = transitive_fanin(net, cnode);
    for (const auto& [id, f] : sops) {
      if (cone.count(id)) continue;
      bool touched = false;
      Sop rewritten;
      for (const auto& t : f) {
        if (term_contains(t, *best)) {
          Term nt = term_quotient(t, *best);
          nt = term_product(nt, Term{mk_glit(cnode, false)});
          rewritten.push_back(std::move(nt));
          touched = true;
        } else {
          rewritten.push_back(t);
        }
      }
      if (touched) set_node_sop(net, id, normalized(std::move(rewritten)));
    }
  }
  net.sweep_dangling();
  return created;
}

int resubstitute(Network& net) {
  int substitutions = 0;
  std::vector<NodeId> logic_nodes;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (!net.is_dead(id) && net.node(id).type == NodeType::kLogic)
      logic_nodes.push_back(id);

  for (const NodeId target : logic_nodes) {
    if (net.is_dead(target)) continue;
    for (const NodeId divisor : logic_nodes) {
      if (divisor == target || net.is_dead(divisor)) continue;
      // Acyclicity: divisor's cone must not contain target.
      if (transitive_fanin(net, divisor).count(target)) continue;
      const Sop f = sop_of_node(net, target);
      const Sop d = sop_of_node(net, divisor);
      if (d.empty() || d.size() >= f.size()) continue;
      // The divisor node already exists, so its own literal cost (which
      // division_value charges) is already paid: add it back.
      if (division_value(f, d) + sop_literals(d) <= 0) continue;
      const auto [q, r] = divide(f, d);
      if (q.empty()) continue;
      Sop rewritten = r;
      for (const auto& qt : q)
        rewritten.push_back(term_product(qt, Term{mk_glit(divisor, false)}));
      set_node_sop(net, target, normalized(std::move(rewritten)));
      ++substitutions;
    }
  }
  net.sweep_dangling();
  return substitutions;
}

int simplify_nodes(Network& net) {
  int saved = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.is_dead(id) || net.node(id).type != NodeType::kLogic) continue;
    auto& n = net.node(id);
    if (n.fanins.empty()) continue;
    const int before = n.cover.num_literals();
    auto minimized = espresso::minimize(n.cover);
    if (minimized.num_literals() < before) {
      saved += before - minimized.num_literals();
      net.set_function(id, n.fanins, std::move(minimized));
    }
  }
  return saved;
}

int simplify_with_sdc(Network& net, int max_fanins, int max_inputs) {
  if (static_cast<int>(net.inputs().size()) > max_inputs) return 0;
  bdd::Manager mgr(static_cast<int>(net.inputs().size()));
  const auto bdds = network::build_bdds(net, mgr);

  int saved = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.is_dead(id) || net.node(id).type != NodeType::kLogic) continue;
    const auto& n = net.node(id);
    const int arity = static_cast<int>(n.fanins.size());
    if (arity == 0 || arity > max_fanins) continue;

    // SDC: fanin-space minterms that no primary-input assignment produces.
    cubes::Cover dc(arity);
    for (std::uint64_t m = 0; m < (1ull << arity); ++m) {
      bdd::Bdd feasible = mgr.one();
      for (int k = 0; k < arity && !feasible.is_zero(); ++k) {
        const auto& fk = bdds.node[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(k)])];
        feasible = feasible & (((m >> k) & 1) ? fk : !fk);
      }
      if (feasible.is_zero()) {
        cubes::Cube c(arity);
        for (int k = 0; k < arity; ++k)
          c.set_code(k, ((m >> k) & 1) ? cubes::Pcn::kPos : cubes::Pcn::kNeg);
        dc.add(std::move(c));
      }
    }
    if (dc.empty()) {
      const int before = n.cover.num_literals();
      auto minimized = espresso::minimize(n.cover);
      if (minimized.num_literals() < before) {
        saved += before - minimized.num_literals();
        net.set_function(id, n.fanins, std::move(minimized));
      }
      continue;
    }
    const int before = n.cover.num_literals();
    auto minimized = espresso::minimize(n.cover, dc);
    if (minimized.num_literals() < before) {
      saved += before - minimized.num_literals();
      net.set_function(id, n.fanins, std::move(minimized));
    }
  }
  return saved;
}

}  // namespace l2l::mls
