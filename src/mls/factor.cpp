#include "mls/factor.hpp"

#include <algorithm>
#include <map>

#include "mls/kernels.hpp"

namespace l2l::mls {

int expr_literals(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConst0:
    case Expr::Kind::kConst1:
      return 0;
    case Expr::Kind::kLit:
      return 1;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      int n = 0;
      for (const auto& k : e.operands) n += expr_literals(k);
      return n;
    }
  }
  return 0;
}

Sop expr_to_sop(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConst0:
      return {};
    case Expr::Kind::kConst1:
      return {Term{}};
    case Expr::Kind::kLit:
      return {Term{e.lit}};
    case Expr::Kind::kOr: {
      Sop out;
      for (const auto& k : e.operands) {
        const Sop s = expr_to_sop(k);
        out.insert(out.end(), s.begin(), s.end());
      }
      return normalized(std::move(out));
    }
    case Expr::Kind::kAnd: {
      Sop out{Term{}};
      for (const auto& k : e.operands) {
        const Sop s = expr_to_sop(k);
        Sop next;
        for (const auto& a : out)
          for (const auto& b : s) next.push_back(term_product(a, b));
        out = normalized(std::move(next));
      }
      return out;
    }
  }
  return {};
}

std::string expr_to_string(const network::Network& net, const Expr& e) {
  auto lit_str = [&](GLit l) {
    return net.node(glit_signal(l)).name + (glit_negated(l) ? "'" : "");
  };
  switch (e.kind) {
    case Expr::Kind::kConst0:
      return "0";
    case Expr::Kind::kConst1:
      return "1";
    case Expr::Kind::kLit:
      return lit_str(e.lit);
    case Expr::Kind::kAnd: {
      std::string out;
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        const auto& k = e.operands[i];
        if (i) out += " ";
        if (k.kind == Expr::Kind::kOr)
          out += "(" + expr_to_string(net, k) + ")";
        else
          out += expr_to_string(net, k);
      }
      return out;
    }
    case Expr::Kind::kOr: {
      std::string out;
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) out += " + ";
        out += expr_to_string(net, e.operands[i]);
      }
      return out;
    }
  }
  return "?";
}

namespace {

Expr and_of(Expr a, Expr b) {
  if (a.kind == Expr::Kind::kConst1) return b;
  if (b.kind == Expr::Kind::kConst1) return a;
  if (a.kind == Expr::Kind::kConst0 || b.kind == Expr::Kind::kConst0)
    return Expr::constant(false);
  Expr e;
  e.kind = Expr::Kind::kAnd;
  auto absorb = [&](Expr& x) {
    if (x.kind == Expr::Kind::kAnd)
      for (auto& k : x.operands) e.operands.push_back(std::move(k));
    else
      e.operands.push_back(std::move(x));
  };
  absorb(a);
  absorb(b);
  return e;
}

Expr or_of(Expr a, Expr b) {
  if (a.kind == Expr::Kind::kConst0) return b;
  if (b.kind == Expr::Kind::kConst0) return a;
  if (a.kind == Expr::Kind::kConst1 || b.kind == Expr::Kind::kConst1)
    return Expr::constant(true);
  Expr e;
  e.kind = Expr::Kind::kOr;
  auto absorb = [&](Expr& x) {
    if (x.kind == Expr::Kind::kOr)
      for (auto& k : x.operands) e.operands.push_back(std::move(k));
    else
      e.operands.push_back(std::move(x));
  };
  absorb(a);
  absorb(b);
  return e;
}

Expr term_expr(const Term& t) {
  if (t.empty()) return Expr::constant(true);
  Expr e = Expr::literal(t[0]);
  for (std::size_t i = 1; i < t.size(); ++i)
    e = and_of(std::move(e), Expr::literal(t[i]));
  return e;
}

Expr flat_expr(const Sop& f) {
  if (f.empty()) return Expr::constant(false);
  Expr e = term_expr(f[0]);
  for (std::size_t i = 1; i < f.size(); ++i)
    e = or_of(std::move(e), term_expr(f[i]));
  return e;
}

}  // namespace

Expr factor(const Sop& f) {
  if (f.empty()) return Expr::constant(false);
  if (f.size() == 1) return term_expr(f[0]);

  // Pull out the common cube first: f = c * f' with f' cube-free.
  const Term c = common_cube(f);
  if (!c.empty()) {
    Sop rest;
    for (const auto& t : f) rest.push_back(term_quotient(t, c));
    return and_of(term_expr(c), factor(normalized(std::move(rest))));
  }

  // Choose the best kernel divisor.
  const auto kernels = all_kernels(f);
  const Sop* best = nullptr;
  int best_value = 0;
  for (const auto& k : kernels) {
    if (k.kernel.size() < 2) continue;
    if (k.kernel == f) continue;
    const int v = division_value(f, k.kernel);
    if (best == nullptr || v > best_value) {
      best = &k.kernel;
      best_value = v;
    }
  }
  if (best == nullptr) return flat_expr(f);

  const auto [q, r] = divide(f, *best);
  if (q.empty()) return flat_expr(f);
  Expr product = and_of(factor(normalized(Sop(q))), factor(normalized(Sop(*best))));
  if (r.empty()) return product;
  return or_of(std::move(product), factor(normalized(Sop(r))));
}

}  // namespace l2l::mls
