#include "mls/script.hpp"

#include "mls/passes.hpp"
#include "util/strings.hpp"

namespace l2l::mls {

std::string ScriptStats::to_string() const {
  return util::format(
      "literals %d -> %d, nodes %d -> %d (swept %d, eliminated %d, "
      "kernels %d, cubes %d, resubs %d)",
      literals_before, literals_after, nodes_before, nodes_after, swept,
      eliminated, kernels_extracted, cubes_extracted, resubstitutions);
}

ScriptStats optimize(network::Network& net, const ScriptOptions& opt) {
  ScriptStats stats;
  stats.literals_before = net.num_literals();
  stats.nodes_before = net.num_logic_nodes();

  for (int pass = 0; pass < opt.passes; ++pass) {
    stats.swept += sweep(net);
    simplify_nodes(net);
    stats.eliminated += eliminate(net, opt.eliminate_threshold);
    stats.kernels_extracted += extract_kernels(net);
    stats.cubes_extracted += extract_cubes(net);
    stats.resubstitutions += resubstitute(net);
    if (opt.use_sdc_simplify)
      simplify_with_sdc(net);
    else
      simplify_nodes(net);
    stats.swept += sweep(net);
  }

  stats.literals_after = net.num_literals();
  stats.nodes_after = net.num_logic_nodes();
  return stats;
}

}  // namespace l2l::mls
