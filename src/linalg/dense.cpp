#include "linalg/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace l2l::linalg {

std::optional<std::vector<double>> solve_gauss(DenseMatrix a,
                                               std::vector<double> b) {
  const int n = a.rows();
  if (a.cols() != n || static_cast<int>(b.size()) != n)
    throw std::invalid_argument("solve_gauss: dimension mismatch");

  for (int k = 0; k < n; ++k) {
    // Partial pivoting.
    int pivot = k;
    for (int i = k + 1; i < n; ++i)
      if (std::abs(a.at(i, k)) > std::abs(a.at(pivot, k))) pivot = i;
    if (std::abs(a.at(pivot, k)) < 1e-14) return std::nullopt;
    if (pivot != k) {
      for (int j = 0; j < n; ++j) std::swap(a.at(k, j), a.at(pivot, j));
      std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
    }
    for (int i = k + 1; i < n; ++i) {
      const double f = a.at(i, k) / a.at(k, k);
      if (f == 0.0) continue;
      for (int j = k; j < n; ++j) a.at(i, j) -= f * a.at(k, j);
      b[static_cast<std::size_t>(i)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j)
      acc -= a.at(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc / a.at(i, i);
  }
  return x;
}

std::optional<std::vector<double>> solve_cholesky(const DenseMatrix& a,
                                                  const std::vector<double>& b) {
  const int n = a.rows();
  if (a.cols() != n || static_cast<int>(b.size()) != n)
    throw std::invalid_argument("solve_cholesky: dimension mismatch");

  // A = L L^T, lower-triangular L.
  DenseMatrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (int k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (s <= 0.0) return std::nullopt;  // not positive definite
        l.at(i, i) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }
  // Forward then backward substitution.
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double acc = b[static_cast<std::size_t>(i)];
    for (int k = 0; k < i; ++k) acc -= l.at(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = acc / l.at(i, i);
  }
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (int k = i + 1; k < n; ++k) acc -= l.at(k, i) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = acc / l.at(i, i);
  }
  return x;
}

}  // namespace l2l::linalg
