#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

namespace l2l::linalg {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CgResult conjugate_gradient(const SparseMatrix& a, const std::vector<double>& b,
                            const CgOptions& options) {
  const auto n = static_cast<std::size_t>(a.size());
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: size mismatch");

  CgResult res;
  res.x.assign(n, 0.0);
  const double bnorm = std::sqrt(dot(b, b));
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  std::vector<double> precond(n, 1.0);
  if (options.jacobi_preconditioner) {
    const auto d = a.diagonal();
    for (std::size_t i = 0; i < n; ++i)
      precond[i] = d[i] > 0.0 ? 1.0 / d[i] : 1.0;
  }

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = precond[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (int it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or p in null space): bail out
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    res.iterations = it + 1;
    res.residual = std::sqrt(dot(r, r)) / bnorm;
    if (res.residual < options.tolerance) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = precond[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace l2l::linalg
