#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace l2l::linalg {
namespace {

/// Vector-op chunk size: large enough that small placer systems run
/// inline, small enough that the big bench systems split across lanes.
constexpr std::int64_t kGrain = 4096;

/// Chunked dot product: per-chunk partials summed in chunk order, so the
/// value is bit-identical at any thread count (the chunking is fixed by
/// kGrain, not by the lane count).
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return util::parallel_reduce<double>(
      0, static_cast<std::int64_t>(a.size()), kGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
          s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        return s;
      },
      [](double x, double y) { return x + y; });
}

}  // namespace

CgResult conjugate_gradient(const SparseMatrix& a, const std::vector<double>& b,
                            const CgOptions& options) {
  const auto n = static_cast<std::size_t>(a.size());
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: size mismatch");

  CgResult res;
  res.x.assign(n, 0.0);
  const double bnorm = std::sqrt(dot(b, b));
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  std::vector<double> precond(n, 1.0);
  if (options.jacobi_preconditioner) {
    const auto d = a.diagonal();
    for (std::size_t i = 0; i < n; ++i)
      precond[i] = d[i] > 0.0 ? 1.0 / d[i] : 1.0;
  }

  const auto sn = static_cast<std::int64_t>(n);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = precond[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (int it = 0; it < options.max_iterations; ++it) {
    if (options.budget && options.budget->exhausted()) break;
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or p in null space): bail out
    const double alpha = rz / pap;
    util::parallel_for_chunks(0, sn, kGrain,
                              [&](std::int64_t lo, std::int64_t hi) {
                                for (std::int64_t k = lo; k < hi; ++k) {
                                  const auto i = static_cast<std::size_t>(k);
                                  res.x[i] += alpha * p[i];
                                  r[i] -= alpha * ap[i];
                                }
                              });
    res.iterations = it + 1;
    res.residual = std::sqrt(dot(r, r)) / bnorm;
    if (res.residual < options.tolerance) {
      res.converged = true;
      return res;
    }
    util::parallel_for_chunks(0, sn, kGrain,
                              [&](std::int64_t lo, std::int64_t hi) {
                                for (std::int64_t k = lo; k < hi; ++k) {
                                  const auto i = static_cast<std::size_t>(k);
                                  z[i] = precond[i] * r[i];
                                }
                              });
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    util::parallel_for_chunks(0, sn, kGrain,
                              [&](std::int64_t lo, std::int64_t hi) {
                                for (std::int64_t k = lo; k < hi; ++k) {
                                  const auto i = static_cast<std::size_t>(k);
                                  p[i] = z[i] + beta * p[i];
                                }
                              });
  }
  return res;
}

}  // namespace l2l::linalg
